(* Tests for the deterministic simulation substrate. *)

module Rng = Kamino_sim.Rng
module Clock = Kamino_sim.Clock
module Pqueue = Kamino_sim.Pqueue
module Stats = Kamino_sim.Stats
module Engine = Kamino_sim.Engine

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_distinct_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different streams" false (Rng.int64 a = Rng.int64 b)

let test_rng_copy_independent () =
  let a = Rng.create 7 in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.int64 a) (Rng.int64 b);
  ignore (Rng.int64 a);
  (* advancing [a] does not advance [b] *)
  let a' = Rng.int64 a and b' = Rng.int64 b in
  Alcotest.(check bool) "desynchronized after divergence" false (a' = b')

let test_rng_split () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  Alcotest.(check bool) "split stream differs" false (Rng.int64 a = Rng.int64 b)

let test_rng_bounds () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done;
  for _ = 1 to 1000 do
    let f = Rng.float r in
    Alcotest.(check bool) "float in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_rng_int_invalid () =
  let r = Rng.create 3 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_bernoulli () =
  let r = Rng.create 11 in
  let hits = ref 0 in
  let n = 10000 in
  for _ = 1 to n do
    if Rng.bernoulli r 0.3 then incr hits
  done;
  let freq = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "frequency near 0.3" true (freq > 0.25 && freq < 0.35)

let test_rng_shuffle_permutes () =
  let r = Rng.create 13 in
  let a = Array.init 100 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 100 Fun.id) sorted

let test_clock_basic () =
  let c = Clock.create () in
  Alcotest.(check int) "starts at zero" 0 (Clock.now c);
  Clock.advance c 100;
  Alcotest.(check int) "advanced" 100 (Clock.now c);
  Alcotest.(check int) "wait incurred" 50 (Clock.advance_to c 150);
  Alcotest.(check int) "no backwards move" 0 (Clock.advance_to c 10);
  Alcotest.(check int) "still at 150" 150 (Clock.now c)

let test_clock_negative () =
  let c = Clock.create () in
  Alcotest.check_raises "negative advance"
    (Invalid_argument "Clock.advance: negative duration") (fun () -> Clock.advance c (-1))

let test_pqueue_ordering () =
  let q = Pqueue.create () in
  List.iter (fun p -> Pqueue.push q p p) [ 5; 1; 4; 1; 3; 9; 2 ];
  let out = ref [] in
  let rec drain () =
    match Pqueue.pop q with
    | Some (p, _) ->
        out := p :: !out;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "sorted ascending" [ 1; 1; 2; 3; 4; 5; 9 ] (List.rev !out)

let test_pqueue_fifo_ties () =
  let q = Pqueue.create () in
  Pqueue.push q 1 "a";
  Pqueue.push q 1 "b";
  Pqueue.push q 1 "c";
  let next () = match Pqueue.pop q with Some (_, v) -> v | None -> "?" in
  let first = next () in
  let second = next () in
  let third = next () in
  Alcotest.(check (list string)) "insertion order on ties" [ "a"; "b"; "c" ]
    [ first; second; third ]

let test_pqueue_qcheck =
  QCheck.Test.make ~name:"pqueue pops in sorted order" ~count:200
    QCheck.(list small_int)
    (fun prios ->
      let q = Pqueue.create () in
      List.iter (fun p -> Pqueue.push q p ()) prios;
      let rec drain acc =
        match Pqueue.pop q with Some (p, ()) -> drain (p :: acc) | None -> List.rev acc
      in
      drain [] = List.sort compare prios)

let test_stats () =
  let s = Stats.create () in
  List.iter (fun x -> Stats.add s x) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  Alcotest.(check (float 1e-9)) "mean" 3.0 (Stats.mean s);
  Alcotest.(check (float 1e-9)) "median" 3.0 (Stats.percentile s 50.0);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.min_value s);
  Alcotest.(check (float 1e-9)) "max" 5.0 (Stats.max_value s);
  Alcotest.(check int) "count" 5 (Stats.count s);
  (* adding after a percentile query must still work *)
  Stats.add s 11.0;
  Alcotest.(check (float 1e-9)) "max after re-sort" 11.0 (Stats.max_value s)

let test_stats_percentile_interpolation () =
  let s = Stats.create () in
  List.iter (fun x -> Stats.add s x) [ 0.0; 10.0 ];
  Alcotest.(check (float 1e-9)) "p25 interpolates" 2.5 (Stats.percentile s 25.0)

let test_stats_stddev () =
  let s = Stats.create () in
  List.iter (fun x -> Stats.add s x) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check (float 1e-9)) "known stddev" 2.0 (Stats.stddev s)

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () in
  Stats.add a 1.0;
  Stats.add b 3.0;
  let m = Stats.merge a b in
  Alcotest.(check int) "merged count" 2 (Stats.count m);
  Alcotest.(check (float 1e-9)) "merged mean" 2.0 (Stats.mean m)

let test_engine_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~at:30 (fun () -> log := 30 :: !log);
  Engine.schedule e ~at:10 (fun () -> log := 10 :: !log);
  Engine.schedule e ~at:20 (fun () -> log := 20 :: !log);
  let n = Engine.run e in
  Alcotest.(check int) "three events" 3 n;
  Alcotest.(check (list int)) "time order" [ 10; 20; 30 ] (List.rev !log);
  Alcotest.(check int) "clock at last event" 30 (Engine.now e)

let test_engine_cascading () =
  let e = Engine.create () in
  let fired = ref [] in
  Engine.schedule e ~at:5 (fun () ->
      fired := 5 :: !fired;
      Engine.schedule_after e ~delay:7 (fun () -> fired := 12 :: !fired));
  ignore (Engine.run e);
  Alcotest.(check (list int)) "cascaded event at 12" [ 5; 12 ] (List.rev !fired)

let test_engine_run_until () =
  let e = Engine.create () in
  let fired = ref 0 in
  List.iter (fun at -> Engine.schedule e ~at (fun () -> incr fired)) [ 1; 2; 3; 10; 20 ];
  ignore (Engine.run_until e ~deadline:5);
  Alcotest.(check int) "only early events" 3 !fired;
  Alcotest.(check int) "two pending" 2 (Engine.pending e)

let test_engine_past_clamped () =
  let e = Engine.create () in
  let order = ref [] in
  Engine.schedule e ~at:10 (fun () ->
      order := "a" :: !order;
      (* schedule "in the past" — must clamp to now, not error *)
      Engine.schedule e ~at:3 (fun () -> order := "b" :: !order));
  ignore (Engine.run e);
  Alcotest.(check (list string)) "clamped event ran" [ "a"; "b" ] (List.rev !order);
  Alcotest.(check int) "time never went backwards" 10 (Engine.now e)

let () =
  Alcotest.run "sim"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "distinct seeds" `Quick test_rng_distinct_seeds;
          Alcotest.test_case "copy independent" `Quick test_rng_copy_independent;
          Alcotest.test_case "split" `Quick test_rng_split;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "invalid bound" `Quick test_rng_int_invalid;
          Alcotest.test_case "bernoulli" `Quick test_rng_bernoulli;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
        ] );
      ( "clock",
        [
          Alcotest.test_case "basic" `Quick test_clock_basic;
          Alcotest.test_case "negative advance" `Quick test_clock_negative;
        ] );
      ( "pqueue",
        [
          Alcotest.test_case "ordering" `Quick test_pqueue_ordering;
          Alcotest.test_case "fifo ties" `Quick test_pqueue_fifo_ties;
          QCheck_alcotest.to_alcotest test_pqueue_qcheck;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats;
          Alcotest.test_case "percentile interpolation" `Quick
            test_stats_percentile_interpolation;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "merge" `Quick test_stats_merge;
        ] );
      ( "event engine",
        [
          Alcotest.test_case "ordering" `Quick test_engine_ordering;
          Alcotest.test_case "cascading" `Quick test_engine_cascading;
          Alcotest.test_case "run_until" `Quick test_engine_run_until;
          Alcotest.test_case "past clamped" `Quick test_engine_past_clamped;
        ] );
    ]
