(* Tests for the workload library: zipfian distribution shape, YCSB op
   mixes, the virtual-time driver, and TPC-C-lite consistency. *)

module Rng = Kamino_sim.Rng
module Clock = Kamino_sim.Clock
module Stats = Kamino_sim.Stats
module Engine = Kamino_core.Engine
module Kv = Kamino_kv.Kv
module Zipf = Kamino_workload.Zipf
module Ycsb = Kamino_workload.Ycsb
module Driver = Kamino_workload.Driver
module Tpcc = Kamino_workload.Tpcc

let test_zipf_bounds () =
  let z = Zipf.create ~n:1000 ~theta:0.99 in
  let rng = Rng.create 1 in
  for _ = 1 to 5000 do
    let r = Zipf.sample z rng in
    Alcotest.(check bool) "rank in range" true (r >= 0 && r < 1000);
    let k = Zipf.sample_scrambled z rng in
    Alcotest.(check bool) "scrambled in range" true (k >= 0 && k < 1000)
  done

let test_zipf_skew () =
  let z = Zipf.create ~n:10000 ~theta:0.99 in
  let rng = Rng.create 2 in
  let top10 = ref 0 and n = 50000 in
  for _ = 1 to n do
    if Zipf.sample z rng < 10 then incr top10
  done;
  let frac = float_of_int !top10 /. float_of_int n in
  (* With theta=0.99 and n=10k, the top-10 ranks draw roughly 30-45%. *)
  Alcotest.(check bool)
    (Printf.sprintf "top-10 ranks dominate (%.2f)" frac)
    true (frac > 0.25 && frac < 0.55)

let test_zipf_scramble_spreads () =
  let z = Zipf.create ~n:10000 ~theta:0.99 in
  let rng = Rng.create 3 in
  (* After scrambling, the hottest keys should not be the lowest ranks. *)
  let seen = Hashtbl.create 64 in
  for _ = 1 to 20000 do
    let k = Zipf.sample_scrambled z rng in
    Hashtbl.replace seen k (1 + Option.value ~default:0 (Hashtbl.find_opt seen k))
  done;
  let hottest = Hashtbl.fold (fun k c (bk, bc) -> if c > bc then (k, c) else (bk, bc)) seen (0, 0) in
  Alcotest.(check bool) "hottest key is scattered" true (fst hottest > 100)

(* Chi-square goodness-of-fit of [Zipf.sample] against the exact rank
   probabilities p_i = i^-theta / zeta_n(theta). The sampler is the
   Gray/YCSB inverse-CDF approximation, so the statistic carries a small
   deterministic bias on top of sampling noise — at n=200, theta=0.99 and
   100k draws it sits near 275 (pure noise over 24 bins would be ~25-50).
   The thresholds are set at roughly twice that: far below any structurally
   wrong sampler (a uniform impostor scores ~190,000; mis-parameterized
   theta scores in the thousands) while leaving headroom over the
   approximation's own bias. Low ranks are tested individually where the
   mass is; the tail is pooled into doubling bins so every expected count
   stays well above the chi-square validity floor of ~5. *)
let chi_square ~n ~theta ~samples ~seed =
  let z = Zipf.create ~n ~theta in
  let zetan = ref 0.0 in
  for i = 1 to n do
    zetan := !zetan +. (1.0 /. Float.pow (float_of_int i) theta)
  done;
  let p r = 1.0 /. (Float.pow (float_of_int (r + 1)) theta *. !zetan) in
  let counts = Array.make n 0 in
  let rng = Rng.create seed in
  for _ = 1 to samples do
    let r = Zipf.sample z rng in
    counts.(r) <- counts.(r) + 1
  done;
  let chi2 = ref 0.0 in
  let add_bin lo hi =
    let obs = ref 0 and expect = ref 0.0 in
    for r = lo to hi do
      obs := !obs + counts.(r);
      expect := !expect +. p r
    done;
    let e = !expect *. float_of_int samples in
    let d = float_of_int !obs -. e in
    chi2 := !chi2 +. (d *. d /. e)
  in
  for r = 0 to min 19 (n - 1) do
    add_bin r r
  done;
  let lo = ref 20 and w = ref 20 in
  while !lo < n do
    let hi = min (n - 1) (!lo + !w - 1) in
    add_bin !lo hi;
    lo := hi + 1;
    w := !w * 2
  done;
  !chi2

let test_zipf_chi_square () =
  let check ~n ~theta ~limit =
    let chi2 = chi_square ~n ~theta ~samples:100_000 ~seed:4242 in
    Alcotest.(check bool)
      (Printf.sprintf "chi2 for n=%d theta=%.2f within bound (%.1f < %.1f)" n theta chi2
         limit)
      true (chi2 < limit)
  in
  check ~n:200 ~theta:0.99 ~limit:600.0;
  check ~n:1000 ~theta:0.99 ~limit:600.0;
  check ~n:200 ~theta:0.5 ~limit:300.0

(* The whole point of seeding: a fixed seed must reproduce the exact key
   sequence, and the scramble must stay a pure function of the rank. *)
let test_zipf_scrambled_deterministic () =
  let sequence seed =
    let z = Zipf.create ~n:4096 ~theta:0.99 in
    let rng = Rng.create seed in
    List.init 1000 (fun _ -> Zipf.sample_scrambled z rng)
  in
  Alcotest.(check (list int)) "same seed, same key stream" (sequence 99) (sequence 99);
  Alcotest.(check bool) "different seed, different key stream" true
    (sequence 99 <> sequence 100);
  (* sample_scrambled = scramble-of-sample: replaying the rank stream
     through a parallel RNG must reproduce the key stream via the same
     pure hash, pinning the composition (not just the end-to-end values). *)
  let z = Zipf.create ~n:4096 ~theta:0.99 in
  let r1 = Rng.create 7 and r2 = Rng.create 7 in
  for _ = 1 to 1000 do
    let rank = Zipf.sample z r1 in
    let key = Zipf.sample_scrambled z r2 in
    Alcotest.(check int) "key stream = scramble of rank stream"
      (Zipf.scramble 4096 rank) key;
    Alcotest.(check bool) "key in range" true (key >= 0 && key < 4096)
  done

let test_zipf_invalid () =
  Alcotest.(check bool) "bad n" true
    (try ignore (Zipf.create ~n:0 ~theta:0.9); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad theta" true
    (try ignore (Zipf.create ~n:10 ~theta:1.5); false with Invalid_argument _ -> true)

let mix_of workload n =
  let t = Ycsb.create workload ~record_count:1000 ~theta:0.99 in
  let rng = Rng.create 7 in
  let counts = Hashtbl.create 4 in
  for _ = 1 to n do
    let op = Ycsb.next t rng in
    let name = Ycsb.op_name op in
    Hashtbl.replace counts name (1 + Option.value ~default:0 (Hashtbl.find_opt counts name))
  done;
  fun name -> float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts name)) /. float_of_int n

let test_ycsb_mixes () =
  let near x target = Float.abs (x -. target) < 0.03 in
  let a = mix_of Ycsb.A 20000 in
  Alcotest.(check bool) "A reads ~50%" true (near (a "read") 0.5);
  Alcotest.(check bool) "A updates ~50%" true (near (a "update") 0.5);
  let b = mix_of Ycsb.B 20000 in
  Alcotest.(check bool) "B reads ~95%" true (near (b "read") 0.95);
  let c = mix_of Ycsb.C 20000 in
  Alcotest.(check bool) "C all reads" true (c "read" = 1.0);
  let d = mix_of Ycsb.D 20000 in
  Alcotest.(check bool) "D inserts ~5%" true (near (d "insert") 0.05);
  let f = mix_of Ycsb.F 20000 in
  Alcotest.(check bool) "F rmw ~50%" true (near (f "rmw") 0.5)

let test_ycsb_e_scans () =
  let t = Ycsb.create Ycsb.E ~record_count:500 ~theta:0.9 in
  let rng = Rng.create 21 in
  let scans = ref 0 and inserts = ref 0 in
  for _ = 1 to 2000 do
    match Ycsb.next t rng with
    | Ycsb.Scan (k, n) ->
        incr scans;
        Alcotest.(check bool) "scan start in space" true (k >= 0 && k < Ycsb.key_space t);
        Alcotest.(check bool) "scan length sane" true (n >= 1 && n <= 100)
    | Ycsb.Insert _ -> incr inserts
    | _ -> Alcotest.fail "E only scans and inserts"
  done;
  let frac = float_of_int !scans /. 2000.0 in
  Alcotest.(check bool) "~95% scans" true (frac > 0.92 && frac < 0.98)

let test_ycsb_insert_grows_keyspace () =
  let t = Ycsb.create Ycsb.D ~record_count:100 ~theta:0.9 in
  let rng = Rng.create 11 in
  let before = Ycsb.key_space t in
  let inserts = ref 0 in
  for _ = 1 to 1000 do
    match Ycsb.next t rng with
    | Ycsb.Insert k ->
        Alcotest.(check int) "insert key is fresh" (before + !inserts) k;
        incr inserts
    | Ycsb.Read k -> Alcotest.(check bool) "read within space" true (k < Ycsb.key_space t)
    | _ -> ()
  done;
  Alcotest.(check int) "key space grew" (before + !inserts) (Ycsb.key_space t)

let test_driver_virtual_time () =
  let config = { Engine.default_config with Engine.heap_bytes = 2 lsl 20 } in
  let e = Engine.create ~config ~kind:Engine.Kamino_simple ~seed:3 () in
  let kv = Kv.create e ~value_size:64 ~node_size:512 in
  for k = 0 to 99 do
    Kv.put kv k "seed"
  done;
  let rng = Rng.create 5 in
  let result =
    Driver.run ~engine:e ~clients:4 ~total_ops:400 ~step:(fun ~client:_ () ->
        let k = Rng.int rng 100 in
        if Rng.bool rng then begin
          Kv.put kv k "updated";
          "update"
        end
        else begin
          ignore (Kv.get kv k);
          "read"
        end)
  in
  Alcotest.(check int) "all ops ran" 400 result.Driver.total_ops;
  Alcotest.(check bool) "time advanced" true (result.Driver.elapsed_ns > 0);
  Alcotest.(check bool) "throughput positive" true (result.Driver.throughput_mops > 0.0);
  let reads = Option.get (Driver.latency_of result "read") in
  let updates = Option.get (Driver.latency_of result "update") in
  Alcotest.(check int) "labels partition ops" 400 (Stats.count reads + Stats.count updates);
  (* 4 clients overlapping in virtual time must finish faster than the sum
     of their busy times (otherwise there is no concurrency at all). *)
  let total_busy = Stats.sum (Driver.all_latencies result) in
  Alcotest.(check bool) "clients overlap" true
    (float_of_int result.Driver.elapsed_ns < total_busy)

let test_driver_more_clients_more_throughput () =
  let run clients =
    let config = { Engine.default_config with Engine.heap_bytes = 2 lsl 20 } in
    let e = Engine.create ~config ~kind:Engine.Kamino_simple ~seed:3 () in
    let kv = Kv.create e ~value_size:64 ~node_size:512 in
    for k = 0 to 999 do
      Kv.put kv k "seed"
    done;
    let rng = Rng.create 5 in
    (Driver.run ~engine:e ~clients ~total_ops:1000 ~step:(fun ~client:_ () ->
         ignore (Kv.get kv (Rng.int rng 1000));
         "read")).Driver.throughput_mops
  in
  let t1 = run 1 and t4 = run 4 in
  Alcotest.(check bool)
    (Printf.sprintf "4 clients (%.2f) beat 1 (%.2f)" t4 t1)
    true (t4 > t1 *. 2.0)

let test_tpcc_runs_and_stays_consistent () =
  List.iter
    (fun kind ->
      let name = Engine.kind_name kind in
      let config = { Engine.default_config with Engine.heap_bytes = 8 lsl 20 } in
      let e = Engine.create ~config ~kind ~seed:17 () in
      let rng = Rng.create 23 in
      let t =
        Tpcc.setup e ~warehouses:2 ~districts_per_w:4 ~customers_per_district:20 ~items:100
          ~rng
      in
      let counts = Hashtbl.create 8 in
      for _ = 1 to 500 do
        let kind = Tpcc.run_mix t rng in
        let key = Tpcc.kind_name kind in
        Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
      done;
      (match Tpcc.consistency_check t with
      | Ok () -> ()
      | Error err -> Alcotest.failf "%s: inconsistent after mix: %s" name err);
      Alcotest.(check bool) (name ^ ": new-orders ran") true
        (Hashtbl.mem counts "new-order");
      Alcotest.(check bool) (name ^ ": payments ran") true (Hashtbl.mem counts "payment"))
    [ Engine.Undo_logging; Engine.Kamino_simple ]

let test_tpcc_consistent_across_crash () =
  let config = { Engine.default_config with Engine.heap_bytes = 8 lsl 20 } in
  let e = Engine.create ~config ~kind:Engine.Kamino_simple ~seed:19 () in
  let rng = Rng.create 29 in
  let t =
    Tpcc.setup e ~warehouses:1 ~districts_per_w:4 ~customers_per_district:10 ~items:50 ~rng
  in
  for i = 1 to 200 do
    ignore (Tpcc.run_mix t rng);
    if i mod 50 = 0 then begin
      Engine.crash e;
      Engine.recover e;
      match Tpcc.consistency_check t with
      | Ok () -> ()
      | Error err -> Alcotest.failf "inconsistent after crash %d: %s" i err
    end
  done

let () =
  Alcotest.run "workload"
    [
      ( "zipf",
        [
          Alcotest.test_case "bounds" `Quick test_zipf_bounds;
          Alcotest.test_case "skew" `Quick test_zipf_skew;
          Alcotest.test_case "scramble spreads" `Quick test_zipf_scramble_spreads;
          Alcotest.test_case "chi-square vs exact rank probabilities" `Quick
            test_zipf_chi_square;
          Alcotest.test_case "scrambled sampling is deterministic" `Quick
            test_zipf_scrambled_deterministic;
          Alcotest.test_case "invalid args" `Quick test_zipf_invalid;
        ] );
      ( "ycsb",
        [
          Alcotest.test_case "op mixes" `Quick test_ycsb_mixes;
          Alcotest.test_case "inserts grow key space" `Quick test_ycsb_insert_grows_keyspace;
          Alcotest.test_case "workload E scans" `Quick test_ycsb_e_scans;
        ] );
      ( "driver",
        [
          Alcotest.test_case "virtual time accounting" `Quick test_driver_virtual_time;
          Alcotest.test_case "scaling with clients" `Quick
            test_driver_more_clients_more_throughput;
        ] );
      ( "tpcc",
        [
          Alcotest.test_case "runs and stays consistent" `Quick
            test_tpcc_runs_and_stays_consistent;
          Alcotest.test_case "consistent across crashes" `Quick
            test_tpcc_consistent_across_crash;
        ] );
    ]
