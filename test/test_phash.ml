(* Tests for the persistent hash table and the volatile LRU queue used by
   the dynamic backup. *)

module Rng = Kamino_sim.Rng
module Clock = Kamino_sim.Clock
module Region = Kamino_nvm.Region
module Phash = Kamino_core.Phash
module Lru = Kamino_core.Lru

let make ?(capacity = 64) ?(crash_mode = Region.Drop_unflushed) ?(seed = 1) () =
  let clock = Clock.create () in
  let r =
    Region.create ~crash_mode ~rng:(Rng.create seed) ~clock
      ~size:(Phash.required_size ~capacity) ()
  in
  (Phash.format r ~capacity, r)

let test_insert_find_remove () =
  let h, _ = make () in
  Phash.insert h ~key:100 ~value:1;
  Phash.insert h ~key:200 ~value:2;
  Alcotest.(check (option int)) "find 100" (Some 1) (Phash.find h ~key:100);
  Alcotest.(check (option int)) "find 200" (Some 2) (Phash.find h ~key:200);
  Alcotest.(check (option int)) "absent" None (Phash.find h ~key:300);
  Alcotest.(check int) "count" 2 (Phash.count h);
  Alcotest.(check bool) "remove present" true (Phash.remove h ~key:100);
  Alcotest.(check bool) "remove absent" false (Phash.remove h ~key:100);
  Alcotest.(check (option int)) "gone" None (Phash.find h ~key:100);
  Alcotest.(check int) "count after remove" 1 (Phash.count h)

let test_overwrite () =
  let h, _ = make () in
  Phash.insert h ~key:5 ~value:10;
  Phash.insert h ~key:5 ~value:20;
  Alcotest.(check (option int)) "overwritten" (Some 20) (Phash.find h ~key:5);
  Alcotest.(check int) "no duplicate" 1 (Phash.count h)

let test_tombstone_reuse () =
  let h, _ = make ~capacity:16 () in
  (* Fill, delete, and re-insert repeatedly: tombstones must be reused, and
     probing must still find keys past tombstones. *)
  for round = 1 to 50 do
    for k = 1 to 12 do
      Phash.insert h ~key:(k * 1000) ~value:(round * k)
    done;
    for k = 1 to 12 do
      Alcotest.(check (option int))
        (Printf.sprintf "round %d key %d" round k)
        (Some (round * k))
        (Phash.find h ~key:(k * 1000))
    done;
    for k = 1 to 12 do
      ignore (Phash.remove h ~key:(k * 1000))
    done
  done;
  Alcotest.(check int) "empty at end" 0 (Phash.count h)

let test_invalid_key () =
  let h, _ = make () in
  Alcotest.(check bool) "non-positive key rejected" true
    (try
       Phash.insert h ~key:0 ~value:1;
       false
     with Invalid_argument _ -> true)

let test_persistence_across_crash () =
  let h, r = make () in
  Phash.insert h ~key:11 ~value:101;
  Phash.insert h ~key:22 ~value:202;
  ignore (Phash.remove h ~key:11);
  Region.crash r;
  let h' = Phash.open_existing r in
  Alcotest.(check (option int)) "surviving entry" (Some 202) (Phash.find h' ~key:22);
  Alcotest.(check (option int)) "removed entry gone" None (Phash.find h' ~key:11);
  Alcotest.(check int) "count rebuilt" 1 (Phash.count h')

let test_no_half_inserts_on_crash () =
  (* The two-step publish discipline: whatever the crash timing, a key that
     is visible must map to the value that was being inserted (never
     garbage). *)
  for seed = 1 to 60 do
    let h, r = make ~crash_mode:Region.Words_survive_randomly ~seed () in
    Phash.insert h ~key:7 ~value:70;
    (* A second insert that may tear. *)
    (try Phash.insert h ~key:9 ~value:90 with _ -> ());
    Region.crash r;
    let h' = Phash.open_existing r in
    Alcotest.(check (option int)) "stable entry intact" (Some 70) (Phash.find h' ~key:7);
    match Phash.find h' ~key:9 with
    | None -> ()
    | Some v -> Alcotest.(check int) "published value correct" 90 v
  done

let model_qcheck =
  QCheck.Test.make ~name:"phash matches Hashtbl model" ~count:100
    QCheck.(small_list (pair (int_range 1 50) (option small_int)))
    (fun ops ->
      let h, _ = make ~capacity:256 () in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (k, v) ->
          match v with
          | Some v ->
              Phash.insert h ~key:k ~value:v;
              Hashtbl.replace model k v
          | None ->
              ignore (Phash.remove h ~key:k);
              Hashtbl.remove model k)
        ops;
      Hashtbl.fold (fun k v acc -> acc && Phash.find h ~key:k = Some v) model true
      && Phash.count h = Hashtbl.length model)

(* --- Capacity: overload and incremental resize --- *)

(* Fixed-size region (no resize headroom): the table serves load factors
   0.5 and 0.9 correctly, fills to 1.0, and the insert past full raises
   the typed [Overload] — never a silent wedge or a string failwith. *)
let test_load_factors () =
  let capacity = 64 in
  let check_load h n =
    for k = 1 to n do
      Phash.insert h ~key:(k * 7919) ~value:k
    done;
    for k = 1 to n do
      Alcotest.(check (option int))
        (Printf.sprintf "load %d/%d key %d" n capacity k)
        (Some k)
        (Phash.find h ~key:(k * 7919))
    done;
    Alcotest.(check int) "count" n (Phash.count h)
  in
  let h, _ = make ~capacity () in
  check_load h (capacity / 2);
  (* 0.5 *)
  let h, _ = make ~capacity () in
  check_load h (capacity * 9 / 10);
  (* 0.9 *)
  let h, _ = make ~capacity () in
  check_load h capacity;
  (* 1.0: completely full, every key still reachable *)
  Alcotest.(check bool) "not resizing (no headroom)" false (Phash.resizing h);
  match Phash.insert h ~key:999_999 ~value:1 with
  | () -> Alcotest.fail "insert past capacity must raise Overload"
  | exception Phash.Overload { capacity = c; count } ->
      Alcotest.(check int) "overload capacity" capacity c;
      Alcotest.(check int) "overload count" capacity count

(* Region sized with [chain_size ~doublings]: crossing the load trigger
   arms a split migration; inserts keep landing while old entries drain
   over, and the table ends with doubled capacity and zero loss. *)
let test_transparent_resize () =
  let capacity = 32 in
  let clock = Clock.create () in
  let r =
    Region.create ~rng:(Rng.create 3) ~clock
      ~size:(Phash.chain_size ~capacity ~doublings:2) ()
  in
  let h = Phash.format r ~capacity in
  let n = 100 in
  (* > 2x initial capacity: needs both doublings *)
  for k = 1 to n do
    Phash.insert h ~key:(k * 131) ~value:k
  done;
  Alcotest.(check int) "count after growth" n (Phash.count h);
  Alcotest.(check bool) "capacity grew" true (Phash.capacity h > capacity);
  Alcotest.(check bool) "migrations completed" true (Phash.migrations h >= 1);
  for k = 1 to n do
    Alcotest.(check (option int))
      (Printf.sprintf "key %d after resize" k)
      (Some k)
      (Phash.find h ~key:(k * 131))
  done;
  (* Overwrites and removes stay correct whatever table a key lives in. *)
  Phash.insert h ~key:131 ~value:1001;
  Alcotest.(check (option int)) "overwrite post-resize" (Some 1001) (Phash.find h ~key:131);
  Alcotest.(check bool) "remove post-resize" true (Phash.remove h ~key:(2 * 131));
  Alcotest.(check (option int)) "removed gone" None (Phash.find h ~key:(2 * 131));
  Alcotest.(check int) "count tracks" (n - 1) (Phash.count h)

(* Crash at every insert index, under both crash modes: reopening must
   recover every completed insert with its exact value — including
   crashes that land mid-migration, where [open_existing] finishes the
   interrupted split before serving. *)
let test_resize_crash_sweep () =
  (* capacity 16 with two doublings tops out at 64 slots; 60 inserts cross
     both arm thresholds (>14 and >28) without overloading the final table. *)
  let n = 60 in
  List.iter
    (fun crash_mode ->
      List.iter
        (fun seed ->
          for crash_at = 0 to n do
            let clock = Clock.create () in
            let r =
              Region.create ~crash_mode ~rng:(Rng.create (seed + (crash_at * 97)))
                ~clock
                ~size:(Phash.chain_size ~capacity:16 ~doublings:2) ()
            in
            let h = Phash.format r ~capacity:16 in
            for k = 1 to crash_at do
              Phash.insert h ~key:(k * 4093) ~value:(k * 3)
            done;
            Region.crash r;
            let h' = Phash.open_existing r in
            Alcotest.(check bool) "no migration pending after reopen" false
              (Phash.resizing h');
            Alcotest.(check int)
              (Printf.sprintf "count at crash_at=%d" crash_at)
              crash_at (Phash.count h');
            for k = 1 to crash_at do
              Alcotest.(check (option int))
                (Printf.sprintf "crash_at=%d key %d" crash_at k)
                (Some (k * 3))
                (Phash.find h' ~key:(k * 4093))
            done;
            (* The reopened table must keep working, through more growth. *)
            for k = crash_at + 1 to n do
              Phash.insert h' ~key:(k * 4093) ~value:(k * 3)
            done;
            Alcotest.(check int) "final count" n (Phash.count h')
          done)
        [ 1; 2 ])
    [ Region.Drop_unflushed; Region.Words_survive_randomly ]

let test_iter () =
  let h, _ = make () in
  Phash.insert h ~key:1 ~value:10;
  Phash.insert h ~key:2 ~value:20;
  let acc = ref [] in
  Phash.iter h (fun ~key ~value -> acc := (key, value) :: !acc);
  Alcotest.(check (list (pair int int))) "all entries" [ (1, 10); (2, 20) ]
    (List.sort compare !acc)

(* --- LRU --- *)

let test_lru_order () =
  let q = Lru.create () in
  List.iter (Lru.touch q) [ 1; 2; 3 ];
  Alcotest.(check (option int)) "LRU is 1" (Some 1)
    (Lru.evict_candidate q ~locked:(fun _ -> false));
  Lru.touch q 1;
  (* 1 becomes MRU; 2 is now LRU *)
  Alcotest.(check (option int)) "after touch LRU is 2" (Some 2)
    (Lru.evict_candidate q ~locked:(fun _ -> false))

let test_lru_skips_locked () =
  let q = Lru.create () in
  List.iter (Lru.touch q) [ 1; 2; 3 ];
  Alcotest.(check (option int)) "skips locked LRU" (Some 2)
    (Lru.evict_candidate q ~locked:(fun k -> k = 1));
  Alcotest.(check (option int)) "all locked" None
    (Lru.evict_candidate q ~locked:(fun _ -> true))

let test_lru_remove () =
  let q = Lru.create () in
  List.iter (Lru.touch q) [ 1; 2; 3 ];
  Lru.remove q 2;
  Alcotest.(check int) "length" 2 (Lru.length q);
  Alcotest.(check bool) "gone" false (Lru.mem q 2);
  let order = ref [] in
  Lru.iter_lru_order q (fun k -> order := k :: !order);
  Alcotest.(check (list int)) "remaining order (MRU first)" [ 3; 1 ] !order

let test_lru_remove_head_tail () =
  let q = Lru.create () in
  List.iter (Lru.touch q) [ 1; 2; 3 ];
  Lru.remove q 3;
  (* MRU *)
  Lru.remove q 1;
  (* LRU *)
  Alcotest.(check (option int)) "middle remains" (Some 2)
    (Lru.evict_candidate q ~locked:(fun _ -> false));
  Lru.remove q 2;
  Alcotest.(check (option int)) "empty" None (Lru.evict_candidate q ~locked:(fun _ -> false));
  (* removing from empty is a no-op *)
  Lru.remove q 2

let lru_model_qcheck =
  QCheck.Test.make ~name:"lru eviction order matches a list model" ~count:100
    QCheck.(small_list (int_range 0 9))
    (fun touches ->
      let q = Lru.create () in
      let model = ref [] in
      List.iter
        (fun k ->
          Lru.touch q k;
          model := k :: List.filter (fun x -> x <> k) !model)
        touches;
      let expect = match List.rev !model with [] -> None | k :: _ -> Some k in
      Lru.evict_candidate q ~locked:(fun _ -> false) = expect)

let () =
  Alcotest.run "phash_lru"
    [
      ( "phash",
        [
          Alcotest.test_case "insert/find/remove" `Quick test_insert_find_remove;
          Alcotest.test_case "overwrite" `Quick test_overwrite;
          Alcotest.test_case "tombstone reuse" `Quick test_tombstone_reuse;
          Alcotest.test_case "invalid key" `Quick test_invalid_key;
          Alcotest.test_case "iter" `Quick test_iter;
          QCheck_alcotest.to_alcotest model_qcheck;
        ] );
      ( "phash capacity",
        [
          Alcotest.test_case "load factors 0.5/0.9/1.0 + Overload" `Quick
            test_load_factors;
          Alcotest.test_case "transparent incremental resize" `Quick
            test_transparent_resize;
          Alcotest.test_case "resize crash sweep" `Quick test_resize_crash_sweep;
        ] );
      ( "phash durability",
        [
          Alcotest.test_case "persists across crash" `Quick test_persistence_across_crash;
          Alcotest.test_case "no half inserts" `Quick test_no_half_inserts_on_crash;
        ] );
      ( "lru",
        [
          Alcotest.test_case "order" `Quick test_lru_order;
          Alcotest.test_case "skips locked" `Quick test_lru_skips_locked;
          Alcotest.test_case "remove" `Quick test_lru_remove;
          Alcotest.test_case "remove head/tail" `Quick test_lru_remove_head_tail;
          QCheck_alcotest.to_alcotest lru_model_qcheck;
        ] );
    ]
