(* Functional tests of the transaction engine across every kind: commit and
   abort semantics, allocation, CoW redirection, locking/virtual-time
   behaviour, and the backup applier. *)

module Clock = Kamino_sim.Clock
module Region = Kamino_nvm.Region
module Heap = Kamino_heap.Heap
module Engine = Kamino_core.Engine
module Backup = Kamino_core.Backup
module Applier = Kamino_core.Applier

let small_config =
  {
    Engine.default_config with
    Engine.heap_bytes = 1 lsl 20;
    log_slots = 32;
    data_log_bytes = 1 lsl 18;
  }

let all_kinds =
  [
    Engine.No_logging;
    Engine.Undo_logging;
    Engine.Cow;
    Engine.Kamino_simple;
    Engine.Kamino_dynamic { alpha = 0.5; policy = Backup.Lru_policy };
  ]

let atomic_kinds = List.tl all_kinds

let make kind = Engine.create ~config:small_config ~kind ~seed:42 ()

let for_each_kind kinds f =
  List.iter (fun k -> f (Engine.kind_name k) (make k)) kinds

(* --- commit semantics --- *)

let test_commit_visible () =
  for_each_kind all_kinds (fun name e ->
      let p =
        Engine.with_tx e (fun tx ->
            let p = Engine.alloc tx 64 in
            Engine.write_int64 tx p 0 123L;
            Engine.write_string tx p 8 "hello";
            p)
      in
      Alcotest.(check int64) (name ^ ": int64 committed") 123L (Engine.peek_int64 e p 0);
      Alcotest.(check string) (name ^ ": string committed") "hello" (Engine.peek_string e p 8 5))

let test_read_own_writes () =
  for_each_kind all_kinds (fun name e ->
      Engine.with_tx e (fun tx ->
          let p = Engine.alloc tx 64 in
          Engine.write_int tx p 0 7;
          Alcotest.(check int) (name ^ ": reads own write") 7 (Engine.read_int tx p 0));
      (* and across two transactions on an existing object *)
      let p = Engine.with_tx e (fun tx -> Engine.alloc tx 64) in
      Engine.with_tx e (fun tx ->
          Engine.add tx p;
          Engine.write_int tx p 8 21;
          Alcotest.(check int) (name ^ ": second tx sees own write") 21
            (Engine.read_int tx p 8)))

let test_abort_restores () =
  for_each_kind atomic_kinds (fun name e ->
      let p =
        Engine.with_tx e (fun tx ->
            let p = Engine.alloc tx 64 in
            Engine.write_int64 tx p 0 1L;
            p)
      in
      let tx = Engine.begin_tx e in
      Engine.add tx p;
      Engine.write_int64 tx p 0 999L;
      Engine.abort tx;
      Alcotest.(check int64) (name ^ ": abort restores value") 1L (Engine.peek_int64 e p 0))

let test_abort_undoes_alloc () =
  for_each_kind atomic_kinds (fun name e ->
      let live_before = Heap.live_objects (Engine.heap e) in
      let tx = Engine.begin_tx e in
      let p = Engine.alloc tx 64 in
      Engine.write_int64 tx p 0 5L;
      Engine.abort tx;
      Alcotest.(check int)
        (name ^ ": allocation rolled back")
        live_before
        (Heap.live_objects (Engine.heap e));
      Alcotest.(check bool) (name ^ ": heap still valid") true
        (Heap.validate (Engine.heap e) = Ok ()))

let test_abort_undoes_free () =
  for_each_kind atomic_kinds (fun name e ->
      let p =
        Engine.with_tx e (fun tx ->
            let p = Engine.alloc tx 64 in
            Engine.write_int64 tx p 0 77L;
            p)
      in
      let tx = Engine.begin_tx e in
      Engine.free tx p;
      Engine.abort tx;
      Alcotest.(check bool) (name ^ ": object still allocated") true
        (Heap.is_allocated (Engine.heap e) p);
      Alcotest.(check int64) (name ^ ": contents intact") 77L (Engine.peek_int64 e p 0);
      Alcotest.(check bool) (name ^ ": heap valid") true
        (Heap.validate (Engine.heap e) = Ok ()))

let test_free_then_realloc () =
  for_each_kind all_kinds (fun name e ->
      let p = Engine.with_tx e (fun tx -> Engine.alloc tx 128) in
      Engine.with_tx e (fun tx -> Engine.free tx p);
      let q = Engine.with_tx e (fun tx -> Engine.alloc tx 128) in
      Alcotest.(check int) (name ^ ": slot reused") p q;
      Alcotest.(check bool) (name ^ ": heap valid") true
        (Heap.validate (Engine.heap e) = Ok ()))

let test_cow_add_write_free_commit () =
  (* The tricky CoW path: modify a redirected object, then free it in the
     same transaction, then commit. *)
  let e = make Engine.Cow in
  let p =
    Engine.with_tx e (fun tx ->
        let p = Engine.alloc tx 64 in
        Engine.write_int64 tx p 0 1L;
        p)
  in
  Engine.with_tx e (fun tx ->
      Engine.add tx p;
      Engine.write_int64 tx p 0 2L;
      Engine.free tx p);
  Alcotest.(check bool) "object freed" false (Heap.is_allocated (Engine.heap e) p);
  Alcotest.(check bool) "heap valid" true (Heap.validate (Engine.heap e) = Ok ());
  (* and the slot is reusable *)
  let q = Engine.with_tx e (fun tx -> Engine.alloc tx 64) in
  Alcotest.(check int) "slot reused" p q

let test_cow_add_write_free_abort () =
  let e = make Engine.Cow in
  let p =
    Engine.with_tx e (fun tx ->
        let p = Engine.alloc tx 64 in
        Engine.write_int64 tx p 0 1L;
        p)
  in
  let tx = Engine.begin_tx e in
  Engine.add tx p;
  Engine.write_int64 tx p 0 2L;
  Engine.free tx p;
  Engine.abort tx;
  Alcotest.(check bool) "object restored" true (Heap.is_allocated (Engine.heap e) p);
  Alcotest.(check int64) "original value restored" 1L (Engine.peek_int64 e p 0);
  Alcotest.(check bool) "heap valid" true (Heap.validate (Engine.heap e) = Ok ())

let test_no_logging_abort_raises () =
  let e = make Engine.No_logging in
  let tx = Engine.begin_tx e in
  let _ = Engine.alloc tx 64 in
  Alcotest.(check bool) "abort raises" true
    (try
       Engine.abort tx;
       false
     with Engine.Error (Engine.Abort_unsupported _) -> true)

let test_write_without_intent_rejected () =
  for_each_kind atomic_kinds (fun name e ->
      let p = Engine.with_tx e (fun tx -> Engine.alloc tx 64) in
      let tx = Engine.begin_tx e in
      Alcotest.(check bool) (name ^ ": undeclared write rejected") true
        (try
           Engine.write_int64 tx p 0 1L;
           false
         with Engine.Error (Engine.Missing_intent _) -> true);
      (try Engine.abort tx with _ -> ()))

let test_serial_tx_enforced () =
  let e = make Engine.Kamino_simple in
  let _tx = Engine.begin_tx e in
  Alcotest.(check bool) "second begin rejected" true
    (try
       ignore (Engine.begin_tx e);
       false
     with Engine.Error Engine.Tx_already_active -> true)

let test_set_root () =
  for_each_kind atomic_kinds (fun name e ->
      let p =
        Engine.with_tx e (fun tx ->
            let p = Engine.alloc tx 64 in
            Engine.set_root tx p;
            p)
      in
      Alcotest.(check int) (name ^ ": root committed") p (Engine.root e);
      (* abort of a root change restores it *)
      let q = Engine.with_tx e (fun tx -> Engine.alloc tx 64) in
      let tx = Engine.begin_tx e in
      Engine.set_root tx q;
      Engine.abort tx;
      Alcotest.(check int) (name ^ ": root change aborted") p (Engine.root e))

let test_add_field_semantics () =
  for_each_kind atomic_kinds (fun name e ->
      let p =
        Engine.with_tx e (fun tx ->
            let p = Engine.alloc tx 1024 in
            Engine.write_int64 tx p 0 1L;
            Engine.write_int64 tx p 512 2L;
            p)
      in
      (* field-granular intent: only the declared bytes are writable *)
      Engine.with_tx e (fun tx ->
          Engine.add_field tx p 512 8;
          Engine.write_int64 tx p 512 22L;
          Alcotest.(check int64) (name ^ ": reads own field write") 22L
            (Engine.read_int64 tx p 512));
      Alcotest.(check int64) (name ^ ": field committed") 22L (Engine.peek_int64 e p 512);
      Alcotest.(check int64) (name ^ ": rest untouched") 1L (Engine.peek_int64 e p 0);
      (* a write outside the declared field is rejected — except on the
         dynamic backup, where add_field deliberately falls back to
         whole-object intents (per-object copy tracking, as in the paper) *)
      (match Engine.kind e with
      | Engine.Kamino_dynamic _ -> ()
      | _ ->
          let tx = Engine.begin_tx e in
          Engine.add_field tx p 0 8;
          Alcotest.(check bool) (name ^ ": outside field rejected") true
            (try
               Engine.write_int64 tx p 512 0L;
               false
             with Engine.Error (Engine.Missing_intent _) -> true);
          (try Engine.abort tx with _ -> ()));
      (* abort of a field write restores only via the field range *)
      let tx = Engine.begin_tx e in
      Engine.add_field tx p 512 8;
      Engine.write_int64 tx p 512 99L;
      Engine.abort tx;
      Alcotest.(check int64) (name ^ ": field abort restores") 22L (Engine.peek_int64 e p 512);
      (* invalid field ranges rejected *)
      let tx = Engine.begin_tx e in
      Alcotest.(check bool) (name ^ ": oversized field rejected") true
        (try
           Engine.add_field tx p 1020 16;
           false
         with Invalid_argument _ -> true);
      (try Engine.abort tx with _ -> ()))

let test_add_field_crash_recovery () =
  List.iter
    (fun kind ->
      let name = Engine.kind_name kind in
      let e = make kind in
      let p =
        Engine.with_tx e (fun tx ->
            let p = Engine.alloc tx 1024 in
            Engine.write_int64 tx p 256 7L;
            p)
      in
      (* crash mid-transaction with a field intent in flight *)
      let tx = Engine.begin_tx e in
      Engine.add_field tx p 256 8;
      Engine.write_int64 tx p 256 1000L;
      Engine.crash e;
      Engine.recover e;
      Alcotest.(check int64) (name ^ ": field rolled back after crash") 7L
        (Engine.peek_int64 e p 256))
    [ Engine.Undo_logging; Engine.Cow; Engine.Kamino_simple ]

let test_add_field_whole_object_covers () =
  let e = make Engine.Kamino_simple in
  let p = Engine.with_tx e (fun tx -> Engine.alloc tx 256) in
  Engine.with_tx e (fun tx ->
      Engine.add tx p;
      (* a later field declaration is subsumed by the whole-object intent *)
      Engine.add_field tx p 8 8;
      Engine.write_int64 tx p 8 5L);
  Alcotest.(check int64) "covered write committed" 5L (Engine.peek_int64 e p 8)

let test_with_tx_aborts_on_exception () =
  let e = make Engine.Undo_logging in
  let p =
    Engine.with_tx e (fun tx ->
        let p = Engine.alloc tx 64 in
        Engine.write_int64 tx p 0 10L;
        p)
  in
  (try
     Engine.with_tx e (fun tx ->
         Engine.add tx p;
         Engine.write_int64 tx p 0 11L;
         failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int64) "exception rolled back" 10L (Engine.peek_int64 e p 0)

(* --- Kamino-specific behaviour --- *)

let test_kamino_backup_catches_up () =
  let e = make Engine.Kamino_simple in
  let p =
    Engine.with_tx e (fun tx ->
        let p = Engine.alloc tx 64 in
        Engine.write_int64 tx p 0 42L;
        p)
  in
  Engine.drain_backup e;
  (* the backup region now holds the committed value at the same offset *)
  match Engine.backup e with
  | Some b ->
      ignore b;
      let m = Engine.metrics e in
      Alcotest.(check bool) "applier ran" true (m.Engine.applier_tasks >= 1);
      (match Engine.verify_backup e with
      | Ok () -> ()
      | Error err -> Alcotest.failf "backup invariant: %s" err);
      ignore p
  | None -> Alcotest.fail "kamino engine has a backup"

let test_kamino_abort_after_committed_predecessor () =
  (* Commit a value, then abort an update of the same object: rollback must
     restore the *committed* value, i.e. the backup had to catch up before
     the second transaction could write. *)
  let e = make Engine.Kamino_simple in
  let p =
    Engine.with_tx e (fun tx ->
        let p = Engine.alloc tx 64 in
        Engine.write_int64 tx p 0 1L;
        p)
  in
  Engine.with_tx e (fun tx ->
      Engine.add tx p;
      Engine.write_int64 tx p 0 2L);
  (* no explicit drain: the dependent add must sync the applier itself *)
  let tx = Engine.begin_tx e in
  Engine.add tx p;
  Engine.write_int64 tx p 0 3L;
  Engine.abort tx;
  Alcotest.(check int64) "abort restores last committed value" 2L (Engine.peek_int64 e p 0)

let test_kamino_dependent_tx_waits () =
  let e = make Engine.Kamino_simple in
  (* A large object, so propagating it to the backup takes longer than the
     fixed transaction overheads and a back-to-back dependent writer really
     has to wait. *)
  let p =
    Engine.with_tx e (fun tx ->
        let p = Engine.alloc tx 65536 in
        Engine.write_int64 tx p 0 1L;
        p)
  in
  Engine.drain_backup e;
  (* First writer commits at T; its lock releases at the applier finish
     time > T. A dependent transaction starting immediately must observe a
     lock wait; an independent one must not. *)
  Engine.with_tx e (fun tx ->
      Engine.add tx p;
      Engine.write_int64 tx p 0 2L);
  let waits_before = (Engine.metrics e).Engine.lock_wait_events in
  Engine.with_tx e (fun tx ->
      Engine.add tx p;
      Engine.write_int64 tx p 0 3L);
  let waits_dependent = (Engine.metrics e).Engine.lock_wait_events in
  Alcotest.(check bool) "dependent tx waited" true (waits_dependent > waits_before);
  (* An independent transaction (touching a pre-allocated, unrelated
     object) proceeds without waiting. *)
  let q =
    Engine.with_tx e (fun tx ->
        let q = Engine.alloc tx 1024 in
        Engine.write_int64 tx q 0 1L;
        q)
  in
  Engine.drain_backup e;
  Kamino_sim.Clock.advance (Engine.clock e) 100_000;
  let waits_before_ind = (Engine.metrics e).Engine.lock_wait_events in
  Engine.with_tx e (fun tx ->
      Engine.add tx q;
      Engine.write_int64 tx q 0 2L);
  let waits_independent = (Engine.metrics e).Engine.lock_wait_events in
  Alcotest.(check int) "independent tx did not wait" waits_before_ind waits_independent

let test_kamino_commit_faster_than_undo () =
  (* The headline claim, at microbenchmark scale: committing an update of a
     1 KB object costs less virtual time with Kamino-Tx than with undo
     logging, because no copy is made in the critical path. *)
  let run kind =
    let e = make kind in
    let p =
      Engine.with_tx e (fun tx ->
          let p = Engine.alloc tx 1024 in
          Engine.write_int64 tx p 0 1L;
          p)
    in
    Engine.drain_backup e;
    let t0 = Engine.now e in
    for i = 1 to 50 do
      Engine.with_tx e (fun tx ->
          Engine.add tx p;
          Engine.write_int64 tx p 0 (Int64.of_int i));
      (* space the transactions out so they are not dependent *)
      Clock.advance (Engine.clock e) 10_000
    done;
    Engine.now e - t0
  in
  let undo = run Engine.Undo_logging and kamino = run Engine.Kamino_simple in
  Alcotest.(check bool)
    (Printf.sprintf "kamino (%d ns) < undo (%d ns)" kamino undo)
    true (kamino < undo)

let test_kamino_dynamic_miss_then_hit () =
  let e = make (Engine.Kamino_dynamic { alpha = 0.5; policy = Backup.Lru_policy }) in
  let p =
    Engine.with_tx e (fun tx ->
        let p = Engine.alloc tx 1024 in
        Engine.write_int64 tx p 0 1L;
        p)
  in
  let m1 = Engine.metrics e in
  Engine.with_tx e (fun tx ->
      Engine.add tx p;
      Engine.write_int64 tx p 0 2L);
  let m2 = Engine.metrics e in
  Alcotest.(check bool) "first touches miss" true (m1.Engine.backup_misses > 0);
  Alcotest.(check bool) "re-update hits" true (m2.Engine.backup_hits > m1.Engine.backup_hits)

let test_kamino_dynamic_eviction () =
  let e = make (Engine.Kamino_dynamic { alpha = 0.02; policy = Backup.Lru_policy }) in
  (* Touch far more objects than the 2% backup can hold. *)
  let ptrs =
    List.init 64 (fun i ->
        Engine.with_tx e (fun tx ->
            let p = Engine.alloc tx 1024 in
            Engine.write_int64 tx p 0 (Int64.of_int i);
            p))
  in
  List.iteri
    (fun i p ->
      Engine.with_tx e (fun tx ->
          Engine.add tx p;
          Engine.write_int64 tx p 0 (Int64.of_int (i * 2))))
    ptrs;
  let m = Engine.metrics e in
  Alcotest.(check bool) "evictions happened" true (m.Engine.backup_evictions > 0);
  (* Values must still be correct after all the churn. *)
  List.iteri
    (fun i p ->
      Alcotest.(check int64) "value survives churn" (Int64.of_int (i * 2))
        (Engine.peek_int64 e p 0))
    ptrs

let test_metrics_storage () =
  let simple = make Engine.Kamino_simple in
  let dynamic = make (Engine.Kamino_dynamic { alpha = 0.1; policy = Backup.Lru_policy }) in
  let undo = make Engine.Undo_logging in
  let s k = (Engine.metrics k).Engine.storage_bytes in
  Alcotest.(check bool) "simple ~ 2x heap" true (s simple >= 2 * small_config.Engine.heap_bytes);
  Alcotest.(check bool) "dynamic < simple" true (s dynamic < s simple);
  Alcotest.(check bool) "undo < simple" true (s undo < s simple)

let test_intent_log_slot_backpressure () =
  (* Only 2 log slots: many committed-but-unapplied transactions must not
     wedge the engine — begin_tx drains the applier for a slot. *)
  let config = { small_config with Engine.log_slots = 2 } in
  let e = Engine.create ~config ~kind:Engine.Kamino_simple ~seed:1 () in
  let p =
    Engine.with_tx e (fun tx ->
        let p = Engine.alloc tx 64 in
        Engine.write_int64 tx p 0 0L;
        p)
  in
  for i = 1 to 50 do
    Engine.with_tx e (fun tx ->
        Engine.add tx p;
        Engine.write_int64 tx p 0 (Int64.of_int i))
  done;
  Alcotest.(check int64) "all commits landed" 50L (Engine.peek_int64 e p 0)

let test_oom_mid_tx_aborts_cleanly () =
  for_each_kind atomic_kinds (fun name e ->
      (* Exhaust the heap inside one transaction; with_tx must abort and the
         engine must stay usable. *)
      (try
         Engine.with_tx e (fun tx ->
             for _ = 1 to 1_000_000 do
               ignore (Engine.alloc tx 65536)
             done)
       with Out_of_memory | Failure _ -> ());
      Alcotest.(check bool) (name ^ ": heap valid after failed giant tx") true
        (Heap.validate (Engine.heap e) = Ok ());
      let p =
        Engine.with_tx e (fun tx ->
            let p = Engine.alloc tx 64 in
            Engine.write_int64 tx p 0 11L;
            p)
      in
      Alcotest.(check int64) (name ^ ": engine usable after OOM") 11L
        (Engine.peek_int64 e p 0))

let test_double_commit_rejected () =
  let e = make Engine.Kamino_simple in
  let tx = Engine.begin_tx e in
  let _ = Engine.alloc tx 64 in
  Engine.commit tx;
  Alcotest.(check bool) "second commit raises" true
    (try
       Engine.commit tx;
       false
     with Engine.Error Engine.Tx_finished -> true);
  Alcotest.(check bool) "abort after commit raises" true
    (try
       Engine.abort tx;
       false
     with Engine.Error Engine.Tx_finished -> true)

let test_read_only_tx_cheap () =
  (* Read-only transactions must not touch the logs at all. *)
  List.iter
    (fun kind ->
      let name = Engine.kind_name kind in
      let e = make kind in
      let p =
        Engine.with_tx e (fun tx ->
            let p = Engine.alloc tx 64 in
            Engine.write_int64 tx p 0 5L;
            p)
      in
      Engine.drain_backup e;
      let m0 = (Engine.metrics e).Engine.applier_tasks in
      let t0 = Engine.now e in
      Engine.with_tx e (fun tx -> ignore (Engine.read_int64 tx p 0));
      let dt = Engine.now e - t0 in
      Alcotest.(check int) (name ^ ": no applier work for reads") m0
        (Engine.metrics e).Engine.applier_tasks;
      Alcotest.(check bool)
        (Printf.sprintf "%s: read tx cheap (%d ns)" name dt)
        true (dt < 2000))
    [ Engine.Undo_logging; Engine.Kamino_simple ]

let test_verify_backup_detects_divergence () =
  (* Negative test: silently corrupt the backup and check the invariant
     checker notices. *)
  let e = make Engine.Kamino_simple in
  let p =
    Engine.with_tx e (fun tx ->
        let p = Engine.alloc tx 64 in
        Engine.write_int64 tx p 0 1L;
        p)
  in
  Engine.drain_backup e;
  Alcotest.(check bool) "clean backup verifies" true (Engine.verify_backup e = Ok ());
  (* bypass the engine: scribble on the main heap without any transaction *)
  Region.write_int64 (Engine.main_region e) p 0xDEADL;
  Alcotest.(check bool) "divergence detected" true (Engine.verify_backup e <> Ok ())

let test_clock_switching_multiclient () =
  let e = make Engine.Kamino_simple in
  let c1 = Engine.clock e in
  let p =
    Engine.with_tx e (fun tx ->
        let p = Engine.alloc tx 64 in
        Engine.write_int64 tx p 0 1L;
        p)
  in
  let t1 = Clock.now c1 in
  let c2 = Clock.create () in
  Engine.set_clock e c2;
  Engine.with_tx e (fun tx ->
      Engine.add tx p;
      Engine.write_int64 tx p 0 2L);
  Alcotest.(check int) "client 1 clock unchanged" t1 (Clock.now c1);
  Alcotest.(check bool) "client 2 charged" true (Clock.now c2 > 0)

let () =
  Alcotest.run "engine"
    [
      ( "commit/abort",
        [
          Alcotest.test_case "commit visible" `Quick test_commit_visible;
          Alcotest.test_case "read own writes" `Quick test_read_own_writes;
          Alcotest.test_case "abort restores" `Quick test_abort_restores;
          Alcotest.test_case "abort undoes alloc" `Quick test_abort_undoes_alloc;
          Alcotest.test_case "abort undoes free" `Quick test_abort_undoes_free;
          Alcotest.test_case "free then realloc" `Quick test_free_then_realloc;
          Alcotest.test_case "no-logging abort raises" `Quick test_no_logging_abort_raises;
          Alcotest.test_case "with_tx aborts on exception" `Quick
            test_with_tx_aborts_on_exception;
          Alcotest.test_case "add_field semantics" `Quick test_add_field_semantics;
          Alcotest.test_case "add_field crash recovery" `Quick test_add_field_crash_recovery;
          Alcotest.test_case "add_field covered by whole object" `Quick
            test_add_field_whole_object_covers;
          Alcotest.test_case "set_root" `Quick test_set_root;
        ] );
      ( "cow",
        [
          Alcotest.test_case "add+write+free+commit" `Quick test_cow_add_write_free_commit;
          Alcotest.test_case "add+write+free+abort" `Quick test_cow_add_write_free_abort;
        ] );
      ( "discipline",
        [
          Alcotest.test_case "write without intent rejected" `Quick
            test_write_without_intent_rejected;
          Alcotest.test_case "serial transactions enforced" `Quick test_serial_tx_enforced;
        ] );
      ( "kamino",
        [
          Alcotest.test_case "backup catches up" `Quick test_kamino_backup_catches_up;
          Alcotest.test_case "abort after committed predecessor" `Quick
            test_kamino_abort_after_committed_predecessor;
          Alcotest.test_case "dependent tx waits" `Quick test_kamino_dependent_tx_waits;
          Alcotest.test_case "commit faster than undo" `Quick
            test_kamino_commit_faster_than_undo;
          Alcotest.test_case "dynamic miss then hit" `Quick test_kamino_dynamic_miss_then_hit;
          Alcotest.test_case "dynamic eviction" `Quick test_kamino_dynamic_eviction;
          Alcotest.test_case "storage accounting" `Quick test_metrics_storage;
          Alcotest.test_case "verify_backup detects divergence" `Quick
            test_verify_backup_detects_divergence;
          Alcotest.test_case "slot backpressure" `Quick test_intent_log_slot_backpressure;
          Alcotest.test_case "OOM mid-tx aborts cleanly" `Quick test_oom_mid_tx_aborts_cleanly;
          Alcotest.test_case "double commit rejected" `Quick test_double_commit_rejected;
          Alcotest.test_case "read-only txs are cheap" `Quick test_read_only_tx_cheap;
          Alcotest.test_case "multi-client clocks" `Quick test_clock_switching_multiclient;
        ] );
    ]
