(* Tests for the persistent doubly-linked list (the paper's Figure 4
   example): ordering, link symmetry, transactional atomicity of the
   relinking operations, and crash recovery. *)

module Engine = Kamino_core.Engine
module Backup = Kamino_core.Backup
module Heap = Kamino_heap.Heap
module Plist = Kamino_index.Plist
module Rng = Kamino_sim.Rng

let config =
  {
    Engine.default_config with
    Engine.heap_bytes = 1 lsl 20;
    log_slots = 32;
    data_log_bytes = 1 lsl 19;
  }

let kinds =
  [
    Engine.Undo_logging;
    Engine.Cow;
    Engine.Kamino_simple;
    Engine.Kamino_dynamic { alpha = 0.4; policy = Backup.Lru_policy };
  ]

let make kind =
  let e = Engine.create ~config ~kind ~seed:3 () in
  let l =
    Engine.with_tx e (fun tx ->
        let l = Plist.create tx in
        Engine.set_root tx (Plist.handle l);
        l)
  in
  (e, l)

let check_valid l ctx =
  match Plist.validate l with Ok () -> () | Error e -> Alcotest.failf "%s: %s" ctx e

let test_insert_ordered () =
  List.iter
    (fun kind ->
      let name = Engine.kind_name kind in
      let e, l = make kind in
      List.iter
        (fun k ->
          Engine.with_tx e (fun tx ->
              Alcotest.(check bool) (name ^ ": insert") true
                (Plist.insert tx l ~key:k ~value:(float_of_int k))))
        [ 5; 1; 9; 3; 7 ];
      Alcotest.(check (list (pair int (float 0.001))))
        (name ^ ": sorted")
        [ (1, 1.0); (3, 3.0); (5, 5.0); (7, 7.0); (9, 9.0) ]
        (Plist.to_list l);
      Alcotest.(check int) (name ^ ": length") 5 (Plist.length l);
      Engine.with_tx e (fun tx ->
          Alcotest.(check bool) (name ^ ": duplicate rejected") false
            (Plist.insert tx l ~key:5 ~value:0.0));
      check_valid l name)
    kinds

let test_delete_relinks () =
  let e, l = make Engine.Kamino_simple in
  List.iter
    (fun k -> Engine.with_tx e (fun tx -> ignore (Plist.insert tx l ~key:k ~value:0.0)))
    [ 1; 2; 3; 4 ];
  (* middle, head, tail, absent *)
  Engine.with_tx e (fun tx -> Alcotest.(check bool) "del middle" true (Plist.delete tx l ~key:2));
  check_valid l "after middle delete";
  Engine.with_tx e (fun tx -> Alcotest.(check bool) "del head" true (Plist.delete tx l ~key:1));
  check_valid l "after head delete";
  Engine.with_tx e (fun tx -> Alcotest.(check bool) "del tail" true (Plist.delete tx l ~key:4));
  check_valid l "after tail delete";
  Engine.with_tx e (fun tx -> Alcotest.(check bool) "del absent" false (Plist.delete tx l ~key:9));
  Alcotest.(check (list (pair int (float 0.001)))) "one left" [ (3, 0.0) ] (Plist.to_list l);
  (* freed nodes return to the allocator *)
  Alcotest.(check bool) "heap valid" true (Heap.validate (Engine.heap e) = Ok ())

let test_update_and_lookup () =
  let e, l = make Engine.Undo_logging in
  Engine.with_tx e (fun tx -> ignore (Plist.insert tx l ~key:10 ~value:1.5));
  Alcotest.(check (option (float 0.001))) "lookup" (Some 1.5) (Plist.lookup l ~key:10);
  Engine.with_tx e (fun tx ->
      Alcotest.(check bool) "update" true (Plist.update tx l ~key:10 ~value:2.5));
  Alcotest.(check (option (float 0.001))) "updated" (Some 2.5) (Plist.lookup l ~key:10);
  Alcotest.(check (option (float 0.001))) "absent" None (Plist.lookup l ~key:11);
  Engine.with_tx e (fun tx ->
      Alcotest.(check bool) "update absent" false (Plist.update tx l ~key:11 ~value:0.0))

let test_abort_atomicity () =
  List.iter
    (fun kind ->
      let name = Engine.kind_name kind in
      let e, l = make kind in
      List.iter
        (fun k -> Engine.with_tx e (fun tx -> ignore (Plist.insert tx l ~key:k ~value:0.0)))
        [ 1; 3; 5 ];
      let before = Plist.to_list l in
      (* abort an insert that relinks the middle of the list *)
      let tx = Engine.begin_tx e in
      ignore (Plist.insert tx l ~key:2 ~value:9.9);
      ignore (Plist.delete tx l ~key:5);
      Engine.abort tx;
      Alcotest.(check (list (pair int (float 0.001)))) (name ^ ": abort restores") before
        (Plist.to_list l);
      check_valid l (name ^ " after abort"))
    kinds

let test_crash_recovery_random_ops () =
  List.iter
    (fun kind ->
      let name = Engine.kind_name kind in
      let e, l = make kind in
      let l = ref l in
      let rng = Rng.create 99 in
      let module M = Map.Make (Int) in
      let model = ref M.empty in
      for round = 1 to 300 do
        let k = Rng.int rng 40 in
        (match Rng.int rng 3 with
        | 0 ->
            let v = float_of_int round in
            Engine.with_tx e (fun tx ->
                if Plist.insert tx !l ~key:k ~value:v then model := M.add k v !model)
        | 1 ->
            Engine.with_tx e (fun tx ->
                if Plist.delete tx !l ~key:k then model := M.remove k !model)
        | _ ->
            Engine.with_tx e (fun tx ->
                if Plist.update tx !l ~key:k ~value:(float_of_int round) then
                  model := M.add k (float_of_int round) !model));
        if round mod 60 = 0 then begin
          Engine.crash e;
          Engine.recover e;
          l := Plist.attach e (Engine.root e);
          check_valid !l (Printf.sprintf "%s after crash %d" name round)
        end
      done;
      Alcotest.(check int) (name ^ ": final length") (M.cardinal !model) (Plist.length !l);
      M.iter
        (fun k v ->
          Alcotest.(check (option (float 0.001)))
            (Printf.sprintf "%s: key %d" name k)
            (Some v) (Plist.lookup !l ~key:k))
        !model)
    kinds

let () =
  Alcotest.run "plist"
    [
      ( "operations",
        [
          Alcotest.test_case "insert ordered" `Quick test_insert_ordered;
          Alcotest.test_case "delete relinks" `Quick test_delete_relinks;
          Alcotest.test_case "update and lookup" `Quick test_update_and_lookup;
        ] );
      ( "atomicity",
        [
          Alcotest.test_case "abort atomicity" `Quick test_abort_atomicity;
          Alcotest.test_case "crash recovery random ops" `Quick
            test_crash_recovery_random_ops;
        ] );
    ]
