(* Tests for the intent log (Log Manager): slot lifecycle, barrier
   semantics, recovery scanning, and torn-record defence. *)

module Rng = Kamino_sim.Rng
module Clock = Kamino_sim.Clock
module Region = Kamino_nvm.Region
module Ilog = Kamino_core.Intent_log

let make ?(crash_mode = Region.Words_survive_randomly) ?(seed = 1) ?(n_slots = 8) () =
  let clock = Clock.create () in
  let size = Ilog.required_size ~max_user_threads:4 ~max_tx_entries:16 ~n_slots in
  let r = Region.create ~crash_mode ~rng:(Rng.create seed) ~clock ~size () in
  (Ilog.format r ~max_user_threads:4 ~max_tx_entries:16 ~n_slots, r)

let intent off len = { Ilog.off; len }

let test_slot_lifecycle () =
  let log, _ = make () in
  Alcotest.(check int) "all free" 8 (Ilog.free_slots log);
  let slot = Option.get (Ilog.begin_record log ~tx_id:1) in
  Alcotest.(check int) "one claimed" 7 (Ilog.free_slots log);
  Ilog.add_intent log slot (intent 100 32);
  Ilog.add_intent log slot (intent 200 64);
  Ilog.barrier log slot;
  Alcotest.(check int) "tx id" 1 (Ilog.slot_tx_id log slot);
  Alcotest.(check bool) "running" true (Ilog.slot_state log slot = Ilog.Running);
  Alcotest.(check (list (pair int int))) "intents recorded"
    [ (100, 32); (200, 64) ]
    (List.map (fun i -> (i.Ilog.off, i.Ilog.len)) (Ilog.intents log slot));
  Ilog.mark log slot Ilog.Committed;
  Alcotest.(check bool) "committed" true (Ilog.slot_state log slot = Ilog.Committed);
  Ilog.release log slot;
  Alcotest.(check int) "released" 8 (Ilog.free_slots log)

let test_exhaustion () =
  let log, _ = make ~n_slots:2 () in
  let s1 = Ilog.begin_record log ~tx_id:1 in
  Ilog.barrier log (Option.get s1);
  let s2 = Ilog.begin_record log ~tx_id:2 in
  Ilog.barrier log (Option.get s2);
  Alcotest.(check bool) "exhausted returns None" true (Ilog.begin_record log ~tx_id:3 = None)

let test_entry_limit () =
  let log, _ = make () in
  let slot = Option.get (Ilog.begin_record log ~tx_id:1) in
  for i = 1 to 16 do
    Ilog.add_intent log slot (intent (i * 64) 8)
  done;
  Alcotest.(check bool) "overflow raises" true
    (try
       Ilog.add_intent log slot (intent 9999 8);
       false
     with Failure _ -> true)

let test_recovery_scan_ordered () =
  let log, r = make () in
  let s1 = Option.get (Ilog.begin_record log ~tx_id:5) in
  Ilog.add_intent log s1 (intent 10 8);
  Ilog.mark log s1 Ilog.Committed;
  let s2 = Option.get (Ilog.begin_record log ~tx_id:6) in
  Ilog.add_intent log s2 (intent 20 8);
  Ilog.barrier log s2;
  Region.crash r;
  let log' = Ilog.open_existing r in
  let seen = ref [] in
  Ilog.iter_records log' (fun _ txid state intents ->
      seen := (txid, state, List.length intents) :: !seen);
  Alcotest.(check (list (triple int bool int)))
    "both records, ordered by tx id"
    [ (5, true, 1); (6, false, 1) ]
    (List.rev_map (fun (id, st, n) -> (id, st = Ilog.Committed, n)) !seen);
  Alcotest.(check int) "max tx id" 6 (Ilog.max_tx_id log')

let test_unbarriered_intents_invisible_after_crash () =
  (* Entries appended but never barriered may tear at a crash; recovery must
     only ever see a prefix of them, never garbage. Drop_unflushed makes the
     outcome deterministic: nothing survives. *)
  let log, r = make ~crash_mode:Region.Drop_unflushed () in
  let slot = Option.get (Ilog.begin_record log ~tx_id:1) in
  Ilog.add_intent log slot (intent 100 32);
  Region.crash r;
  let log' = Ilog.open_existing r in
  let records = ref 0 in
  Ilog.iter_records log' (fun _ _ _ _ -> incr records);
  Alcotest.(check int) "nothing durable" 0 !records

let test_barriered_intents_survive () =
  let log, r = make ~crash_mode:Region.Drop_unflushed () in
  let slot = Option.get (Ilog.begin_record log ~tx_id:1) in
  Ilog.add_intent log slot (intent 100 32);
  Ilog.barrier log slot;
  Ilog.add_intent log slot (intent 200 8);
  (* second intent not barriered *)
  Region.crash r;
  let log' = Ilog.open_existing r in
  let seen = ref [] in
  Ilog.iter_records log' (fun _ txid _ intents ->
      seen := (txid, List.map (fun i -> i.Ilog.off) intents) :: !seen);
  Alcotest.(check (list (pair int (list int)))) "only barriered prefix" [ (1, [ 100 ]) ] !seen

let test_slot_reuse_never_resurrects () =
  (* The dangerous pattern: a consumed record's slot is reused and the
     machine crashes mid-begin. The stale entries must not come back. *)
  let survived = ref 0 in
  for seed = 1 to 50 do
    let log, r = make ~seed ~n_slots:1 () in
    let s = Option.get (Ilog.begin_record log ~tx_id:1) in
    Ilog.add_intent log s (intent 4096 64);
    Ilog.mark log s Ilog.Committed;
    Ilog.release log s;
    (* reuse the slot; crash before the barrier *)
    let s2 = Option.get (Ilog.begin_record log ~tx_id:2) in
    Ilog.add_intent log s2 (intent 8192 32);
    Region.crash r;
    let log' = Ilog.open_existing r in
    Ilog.iter_records log' (fun _ txid _ intents ->
        List.iter
          (fun i ->
            (* Whatever survives must belong to tx 2; tx 1's consumed record
               must never reappear. *)
            if txid = 1 || i.Ilog.off = 4096 then incr survived)
          intents)
  done;
  Alcotest.(check int) "stale record never resurrected" 0 !survived

let torn_crash_qcheck =
  QCheck.Test.make ~name:"recovered intents are always a valid prefix" ~count:100
    QCheck.(pair small_int (small_list (pair small_int small_int)))
    (fun (seed, adds) ->
      let log, r = make ~seed:(seed + 1) () in
      let slot = Option.get (Ilog.begin_record log ~tx_id:7) in
      let added =
        List.filteri (fun i _ -> i < 16)
          (List.map (fun (o, l) -> (64 + abs o, 8 + (abs l mod 64))) adds)
      in
      List.iter (fun (off, len) -> Ilog.add_intent log slot (intent off len)) added;
      (* Crash without a barrier: any prefix may survive. *)
      Region.crash r;
      let log' = Ilog.open_existing r in
      let ok = ref true in
      Ilog.iter_records log' (fun _ txid _ intents ->
          if txid <> 7 then begin
            (* A torn begin_record header may surface with a stale or zero
               transaction id — benign as long as no intents validate
               against it. *)
            if intents <> [] then ok := false
          end
          else begin
            let expect = List.filteri (fun i _ -> i < List.length intents) added in
            let got = List.map (fun i -> (i.Ilog.off, i.Ilog.len)) intents in
            if got <> expect then ok := false
          end);
      !ok)

let test_open_validates () =
  let clock = Clock.create () in
  let r =
    Region.create ~crash_mode:Region.Drop_unflushed ~rng:(Rng.create 1) ~clock ~size:8192 ()
  in
  Alcotest.(check bool) "bad magic rejected" true
    (try
       ignore (Ilog.open_existing r);
       false
     with Failure _ -> true)

let () =
  Alcotest.run "intent_log"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "slot lifecycle" `Quick test_slot_lifecycle;
          Alcotest.test_case "exhaustion" `Quick test_exhaustion;
          Alcotest.test_case "entry limit" `Quick test_entry_limit;
          Alcotest.test_case "open validates" `Quick test_open_validates;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "ordered scan" `Quick test_recovery_scan_ordered;
          Alcotest.test_case "unbarriered intents invisible" `Quick
            test_unbarriered_intents_invisible_after_crash;
          Alcotest.test_case "barriered prefix survives" `Quick test_barriered_intents_survive;
          Alcotest.test_case "slot reuse never resurrects" `Quick
            test_slot_reuse_never_resurrects;
          QCheck_alcotest.to_alcotest torn_crash_qcheck;
        ] );
    ]
