(* Tests for the intent log (Log Manager): slot lifecycle, barrier
   semantics, recovery scanning, and torn-record defence. *)

module Rng = Kamino_sim.Rng
module Clock = Kamino_sim.Clock
module Region = Kamino_nvm.Region
module Ilog = Kamino_core.Intent_log
module IntSet = Set.Make (Int)

let make ?(crash_mode = Region.Words_survive_randomly) ?(seed = 1) ?(n_slots = 8) () =
  let clock = Clock.create () in
  let size = Ilog.required_size ~max_user_threads:4 ~max_tx_entries:16 ~n_slots in
  let r = Region.create ~crash_mode ~rng:(Rng.create seed) ~clock ~size () in
  (Ilog.format r ~max_user_threads:4 ~max_tx_entries:16 ~n_slots, r)

let intent off len = { Ilog.off; len }

let test_slot_lifecycle () =
  let log, _ = make () in
  Alcotest.(check int) "all free" 8 (Ilog.free_slots log);
  let slot = Option.get (Ilog.begin_record log ~tx_id:1) in
  Alcotest.(check int) "one claimed" 7 (Ilog.free_slots log);
  Ilog.add_intent log slot (intent 100 32);
  Ilog.add_intent log slot (intent 200 64);
  Ilog.barrier log slot;
  Alcotest.(check int) "tx id" 1 (Ilog.slot_tx_id log slot);
  Alcotest.(check bool) "running" true (Ilog.slot_state log slot = Ilog.Running);
  Alcotest.(check (list (pair int int))) "intents recorded"
    [ (100, 32); (200, 64) ]
    (List.map (fun i -> (i.Ilog.off, i.Ilog.len)) (Ilog.intents log slot));
  Ilog.mark log slot Ilog.Committed;
  Alcotest.(check bool) "committed" true (Ilog.slot_state log slot = Ilog.Committed);
  Ilog.release log slot;
  Alcotest.(check int) "released" 8 (Ilog.free_slots log)

let test_exhaustion () =
  let log, _ = make ~n_slots:2 () in
  let s1 = Ilog.begin_record log ~tx_id:1 in
  Ilog.barrier log (Option.get s1);
  let s2 = Ilog.begin_record log ~tx_id:2 in
  Ilog.barrier log (Option.get s2);
  Alcotest.(check bool) "exhausted returns None" true (Ilog.begin_record log ~tx_id:3 = None)

let test_entry_limit () =
  let log, _ = make () in
  let slot = Option.get (Ilog.begin_record log ~tx_id:1) in
  for i = 1 to 16 do
    Ilog.add_intent log slot (intent (i * 64) 8)
  done;
  Alcotest.(check bool) "overflow raises" true
    (try
       Ilog.add_intent log slot (intent 9999 8);
       false
     with Failure _ -> true)

let test_recovery_scan_ordered () =
  let log, r = make () in
  let s1 = Option.get (Ilog.begin_record log ~tx_id:5) in
  Ilog.add_intent log s1 (intent 10 8);
  Ilog.mark log s1 Ilog.Committed;
  let s2 = Option.get (Ilog.begin_record log ~tx_id:6) in
  Ilog.add_intent log s2 (intent 20 8);
  Ilog.barrier log s2;
  Region.crash r;
  let log' = Ilog.open_existing r in
  let seen = ref [] in
  Ilog.iter_records log' (fun _ txid state intents ->
      seen := (txid, state, List.length intents) :: !seen);
  Alcotest.(check (list (triple int bool int)))
    "both records, ordered by tx id"
    [ (5, true, 1); (6, false, 1) ]
    (List.rev_map (fun (id, st, n) -> (id, st = Ilog.Committed, n)) !seen);
  Alcotest.(check int) "max tx id" 6 (Ilog.max_tx_id log')

let test_unbarriered_intents_invisible_after_crash () =
  (* Entries appended but never barriered may tear at a crash; recovery must
     only ever see a prefix of them, never garbage. Drop_unflushed makes the
     outcome deterministic: nothing survives. *)
  let log, r = make ~crash_mode:Region.Drop_unflushed () in
  let slot = Option.get (Ilog.begin_record log ~tx_id:1) in
  Ilog.add_intent log slot (intent 100 32);
  Region.crash r;
  let log' = Ilog.open_existing r in
  let records = ref 0 in
  Ilog.iter_records log' (fun _ _ _ _ -> incr records);
  Alcotest.(check int) "nothing durable" 0 !records

let test_barriered_intents_survive () =
  let log, r = make ~crash_mode:Region.Drop_unflushed () in
  let slot = Option.get (Ilog.begin_record log ~tx_id:1) in
  Ilog.add_intent log slot (intent 100 32);
  Ilog.barrier log slot;
  Ilog.add_intent log slot (intent 200 8);
  (* second intent not barriered *)
  Region.crash r;
  let log' = Ilog.open_existing r in
  let seen = ref [] in
  Ilog.iter_records log' (fun _ txid _ intents ->
      seen := (txid, List.map (fun i -> i.Ilog.off) intents) :: !seen);
  Alcotest.(check (list (pair int (list int)))) "only barriered prefix" [ (1, [ 100 ]) ] !seen

let test_slot_reuse_never_resurrects () =
  (* The dangerous pattern: a consumed record's slot is reused and the
     machine crashes mid-begin. The stale entries must not come back. *)
  let survived = ref 0 in
  for seed = 1 to 50 do
    let log, r = make ~seed ~n_slots:1 () in
    let s = Option.get (Ilog.begin_record log ~tx_id:1) in
    Ilog.add_intent log s (intent 4096 64);
    Ilog.mark log s Ilog.Committed;
    Ilog.release log s;
    (* reuse the slot; crash before the barrier *)
    let s2 = Option.get (Ilog.begin_record log ~tx_id:2) in
    Ilog.add_intent log s2 (intent 8192 32);
    Region.crash r;
    let log' = Ilog.open_existing r in
    Ilog.iter_records log' (fun _ txid _ intents ->
        List.iter
          (fun i ->
            (* Whatever survives must belong to tx 2; tx 1's consumed record
               must never reappear. *)
            if txid = 1 || i.Ilog.off = 4096 then incr survived)
          intents)
  done;
  Alcotest.(check int) "stale record never resurrected" 0 !survived

let torn_crash_qcheck =
  QCheck.Test.make ~name:"recovered intents are always a valid prefix" ~count:100
    QCheck.(pair small_int (small_list (pair small_int small_int)))
    (fun (seed, adds) ->
      let log, r = make ~seed:(seed + 1) () in
      let slot = Option.get (Ilog.begin_record log ~tx_id:7) in
      let added =
        List.filteri (fun i _ -> i < 16)
          (List.map (fun (o, l) -> (64 + abs o, 8 + (abs l mod 64))) adds)
      in
      List.iter (fun (off, len) -> Ilog.add_intent log slot (intent off len)) added;
      (* Crash without a barrier: any prefix may survive. *)
      Region.crash r;
      let log' = Ilog.open_existing r in
      let ok = ref true in
      Ilog.iter_records log' (fun _ txid _ intents ->
          if txid <> 7 then begin
            (* A torn begin_record header may surface with a stale or zero
               transaction id — benign as long as no intents validate
               against it. *)
            if intents <> [] then ok := false
          end
          else begin
            let expect = List.filteri (fun i _ -> i < List.length intents) added in
            let got = List.map (fun i -> (i.Ilog.off, i.Ilog.len)) intents in
            if got <> expect then ok := false
          end);
      !ok)

(* --- Coalescing ----------------------------------------------------------- *)

(* Byte-set oracle for the coalescer. *)
let cover intents =
  List.fold_left
    (fun acc { Ilog.off; len } ->
      List.fold_left (fun acc b -> IntSet.add b acc) acc
        (List.init len (fun i -> off + i)))
    IntSet.empty intents

let sorted_disjoint intents =
  let rec check = function
    | { Ilog.off = o1; len = l1 } :: ({ Ilog.off = o2; _ } as r2) :: rest ->
        (* strictly disjoint AND non-adjacent: adjacency would mean the
           coalescer left a merge on the table *)
        o1 + l1 < o2 && check (r2 :: rest)
    | [ _ ] | [] -> true
  in
  check intents

let range_gen =
  QCheck.(
    small_list (pair (int_bound 4096) (int_bound 96))
    |> map (List.map (fun (off, len) -> { Ilog.off; len })))

let coalesce_exact_qcheck =
  QCheck.Test.make ~name:"exact coalescing covers the same bytes, sorted, disjoint"
    ~count:500 range_gen (fun intents ->
      let merged = Ilog.coalesce intents in
      IntSet.equal (cover intents) (cover merged) && sorted_disjoint merged)

let coalesce_line_qcheck =
  QCheck.Test.make
    ~name:"line-threshold coalescing covers a superset within the same cache lines"
    ~count:500 range_gen (fun intents ->
      let merged = Ilog.coalesce ~line:64 intents in
      let input = cover intents and output = cover merged in
      IntSet.subset input output
      && sorted_disjoint merged
      (* every extra byte must share a 64 B line with an input byte: the
         threshold merge never reaches across a line it does not touch *)
      && IntSet.for_all
           (fun b -> IntSet.exists (fun b' -> b / 64 = b' / 64) input)
           (IntSet.diff output input))

let test_coalesce_examples () =
  let pairs intents = List.map (fun i -> (i.Ilog.off, i.Ilog.len)) intents in
  Alcotest.(check (list (pair int int))) "overlap merges"
    [ (0, 12) ]
    (pairs (Ilog.coalesce [ intent 0 8; intent 4 8 ]));
  Alcotest.(check (list (pair int int))) "adjacency merges"
    [ (0, 16) ]
    (pairs (Ilog.coalesce [ intent 8 8; intent 0 8 ]));
  Alcotest.(check (list (pair int int))) "gap survives exact mode"
    [ (0, 8); (16, 8) ]
    (pairs (Ilog.coalesce [ intent 16 8; intent 0 8 ]));
  Alcotest.(check (list (pair int int))) "same-line gap merges at line granularity"
    [ (0, 24) ]
    (pairs (Ilog.coalesce ~line:64 [ intent 16 8; intent 0 8 ]));
  Alcotest.(check (list (pair int int))) "cross-line gap survives line granularity"
    [ (56, 8); (72, 8) ]
    (pairs (Ilog.coalesce ~line:64 [ intent 72 8; intent 56 8 ]));
  Alcotest.(check (list (pair int int))) "empty ranges dropped" []
    (pairs (Ilog.coalesce [ intent 10 0 ]))

(* add_intent_merged: merges with the previous entry only inside the
   unflushed window, and always records the exact union. *)
let test_add_intent_merged () =
  let log, _ = make () in
  let slot = Option.get (Ilog.begin_record log ~tx_id:1) in
  let i1, m1 = Ilog.add_intent_merged log slot (intent 100 8) in
  Alcotest.(check bool) "first entry is appended" false m1;
  Alcotest.(check (pair int int)) "recorded as is" (100, 8) (i1.Ilog.off, i1.Ilog.len);
  let i2, m2 = Ilog.add_intent_merged log slot (intent 108 8) in
  Alcotest.(check bool) "adjacent entry merges" true m2;
  Alcotest.(check (pair int int)) "union recorded" (100, 16) (i2.Ilog.off, i2.Ilog.len);
  let _, m3 = Ilog.add_intent_merged log slot (intent 104 4) in
  Alcotest.(check bool) "contained entry is a no-op merge" true m3;
  let _, m4 = Ilog.add_intent_merged log slot (intent 200 8) in
  Alcotest.(check bool) "distant entry appends" false m4;
  Alcotest.(check (list (pair int int))) "log holds the merged set"
    [ (100, 16); (200, 8) ]
    (List.map (fun i -> (i.Ilog.off, i.Ilog.len)) (Ilog.intents log slot));
  (* a barrier closes the merge window: even an adjacent range must append *)
  Ilog.barrier log slot;
  let _, m5 = Ilog.add_intent_merged log slot (intent 208 8) in
  Alcotest.(check bool) "no merge across a barrier" false m5;
  Alcotest.(check (list (pair int int))) "flushed entry untouched"
    [ (100, 16); (200, 8); (208, 8) ]
    (List.map (fun i -> (i.Ilog.off, i.Ilog.len)) (Ilog.intents log slot))

let test_add_intent_merged_crash_exact () =
  (* Merged entries barriered then crashed must recover as the exact
     union — never wider (recovery's disjointness rule). *)
  let log, r = make ~crash_mode:Region.Drop_unflushed () in
  let slot = Option.get (Ilog.begin_record log ~tx_id:3) in
  ignore (Ilog.add_intent_merged log slot (intent 64 16));
  ignore (Ilog.add_intent_merged log slot (intent 80 16));
  ignore (Ilog.add_intent_merged log slot (intent 72 8));
  Ilog.barrier log slot;
  Region.crash r;
  let log' = Ilog.open_existing r in
  let seen = ref [] in
  Ilog.iter_records log' (fun _ txid _ intents ->
      seen := (txid, List.map (fun i -> (i.Ilog.off, i.Ilog.len)) intents) :: !seen);
  Alcotest.(check (list (pair int (list (pair int int)))))
    "one exact-union entry survives"
    [ (3, [ (64, 32) ]) ]
    !seen

let test_open_validates () =
  let clock = Clock.create () in
  let r =
    Region.create ~crash_mode:Region.Drop_unflushed ~rng:(Rng.create 1) ~clock ~size:8192 ()
  in
  Alcotest.(check bool) "bad magic rejected" true
    (try
       ignore (Ilog.open_existing r);
       false
     with Failure _ -> true)

let () =
  Alcotest.run "intent_log"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "slot lifecycle" `Quick test_slot_lifecycle;
          Alcotest.test_case "exhaustion" `Quick test_exhaustion;
          Alcotest.test_case "entry limit" `Quick test_entry_limit;
          Alcotest.test_case "open validates" `Quick test_open_validates;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "ordered scan" `Quick test_recovery_scan_ordered;
          Alcotest.test_case "unbarriered intents invisible" `Quick
            test_unbarriered_intents_invisible_after_crash;
          Alcotest.test_case "barriered prefix survives" `Quick test_barriered_intents_survive;
          Alcotest.test_case "slot reuse never resurrects" `Quick
            test_slot_reuse_never_resurrects;
          QCheck_alcotest.to_alcotest torn_crash_qcheck;
        ] );
      ( "coalescing",
        [
          Alcotest.test_case "examples" `Quick test_coalesce_examples;
          QCheck_alcotest.to_alcotest coalesce_exact_qcheck;
          QCheck_alcotest.to_alcotest coalesce_line_qcheck;
          Alcotest.test_case "add_intent_merged window" `Quick test_add_intent_merged;
          Alcotest.test_case "merged entry recovers exactly" `Quick
            test_add_intent_merged_crash_exact;
        ] );
    ]
