(* Tests for the chaos schedule explorer: the bounded exploration budget,
   deterministic replay, the oracle self-test (a deliberately broken
   recovery must be caught and shrunk), the §5.2 promotion-window crash,
   stale-probe rejection, and schedule serialization. *)

module Engine = Kamino_core.Engine
module Op = Kamino_chain.Op
module Async = Kamino_chain.Async_chain
module Chaos = Kamino_chaos.Chaos

(* --- bounded exploration --------------------------------------------------- *)

(* The tier-1 budget: ≥500 distinct fault schedules across both chain
   modes, every run green under both oracles. *)
let test_bounded_sweep () =
  let seen = Hashtbl.create 1024 in
  let explored = ref 0 in
  List.iter
    (fun mode ->
      for seed = 1 to 250 do
        let o = Chaos.explore ~mode ~seed () in
        (match o.Chaos.verdict with
        | Ok () -> ()
        | Error e ->
            Alcotest.failf "mode %s seed %d failed: %s\n%s" (Chaos.mode_name mode) seed e
              o.Chaos.history);
        incr explored;
        Hashtbl.replace seen
          (Chaos.mode_name mode ^ "\n" ^ Chaos.schedule_to_string o.Chaos.schedule)
          ()
      done)
    [ Async.Traditional; Async.Kamino_chain ];
  Alcotest.(check bool)
    (Printf.sprintf "explored %d runs, %d distinct schedules (want >= 500)" !explored
       (Hashtbl.length seen))
    true
    (Hashtbl.length seen >= 500)

let test_deterministic_replay () =
  List.iter
    (fun mode ->
      let a = Chaos.explore ~mode ~seed:17 () in
      let b = Chaos.explore ~mode ~seed:17 () in
      Alcotest.(check string)
        (Chaos.mode_name mode ^ ": byte-identical history")
        a.Chaos.history b.Chaos.history;
      Alcotest.(check bool)
        (Chaos.mode_name mode ^ ": same verdict")
        true
        (a.Chaos.verdict = b.Chaos.verdict);
      (* Replaying the recorded schedule through [run] reproduces the
         faulted half of the explore exactly. *)
      let c =
        Chaos.run ~mode ~seed:17 ~ops:a.Chaos.ops ~schedule:a.Chaos.schedule ()
      in
      Alcotest.(check string)
        (Chaos.mode_name mode ^ ": replay from schedule")
        a.Chaos.history c.Chaos.history)
    [ Async.Traditional; Async.Kamino_chain ]

(* --- oracle self-test ------------------------------------------------------ *)

(* A harness is only as good as the bugs it can catch: under a recovery
   that forgets the in-flight window on reboot, some schedule must fail
   the durable-prefix oracle, and the failure must shrink to a handful of
   faults that still reproduce it. *)
let test_broken_recovery_caught () =
  let recovery_fault = Async.Drop_inflight_on_reboot in
  let mode = Async.Kamino_chain in
  let failing = ref None in
  let seed = ref 1 in
  while !failing = None && !seed <= 60 do
    let o = Chaos.explore ~recovery_fault ~mode ~seed:!seed () in
    (match o.Chaos.verdict with
    | Error _ -> failing := Some o
    | Ok () -> ());
    incr seed
  done;
  match !failing with
  | None -> Alcotest.fail "broken recovery never caught in 60 seeds"
  | Some o ->
      (match o.Chaos.verdict with
      | Error e ->
          Alcotest.(check bool)
            ("durable-prefix oracle named: " ^ e)
            true
            (String.length e >= 14 && String.sub e 0 14 = "durable-prefix")
      | Ok () -> assert false);
      let shrunk =
        Chaos.shrink ~recovery_fault ~mode ~seed:o.Chaos.seed ~ops:o.Chaos.ops
          o.Chaos.schedule
      in
      Alcotest.(check bool)
        (Printf.sprintf "shrunk to %d fault(s) (want <= 5)" (List.length shrunk))
        true
        (List.length shrunk <= 5);
      let replay =
        Chaos.run ~recovery_fault ~mode ~seed:o.Chaos.seed ~ops:o.Chaos.ops
          ~schedule:shrunk ()
      in
      Alcotest.(check bool) "shrunk schedule still fails" true (replay.Chaos.verdict <> Ok ());
      (* The same shrunk schedule under a correct recovery passes: the
         fault is in the mutated protocol, not in the oracle. *)
      let healthy =
        Chaos.run ~mode ~seed:o.Chaos.seed ~ops:o.Chaos.ops ~schedule:shrunk ()
      in
      Alcotest.(check bool) "correct recovery passes the same schedule" true
        (healthy.Chaos.verdict = Ok ())

(* --- §5.2: crash during head promotion ------------------------------------- *)

(* Fail-stop the Kamino head, then quick-reboot the new head while its
   backup build is still pending. The promotion must survive the crash
   (the build re-fires), and the chain must converge consistently. *)
let test_crash_during_promotion () =
  let c =
    Async.create
      ~engine_config:{ Engine.default_config with Engine.heap_bytes = 1 lsl 18 }
      ~hop_ns:5000 ~rpc_ns:500 ~promote_ns:40_000 ~mode:Async.Kamino_chain ~f:2
      ~value_size:64 ~node_size:512 ~seed:3 ()
  in
  let acked = ref 0 in
  for k = 0 to 19 do
    Async.submit c ~at:(k * 2_000)
      (Op.Put (k mod 5, Printf.sprintf "v%d" k))
      ~on_complete:(fun _ -> incr acked)
  done;
  let t_fail = 15_000 in
  Async.fail_stop c ~at:t_fail 0;
  (* Land the reboot squarely inside the promotion window. *)
  Async.quick_reboot c ~at:(t_fail + 20_000) ~downtime_ns:3_000 1;
  ignore (Async.run c);
  Alcotest.(check (list int)) "survivors" [ 1; 2; 3 ] (Async.members c);
  Alcotest.(check bool) "promotion completed" true (Async.promotion_pending c = None);
  Alcotest.(check bool) "new head has a local backup" true
    (Engine.kind (Async.engine_at c 1) = Engine.Kamino_simple);
  (match Engine.verify_backup (Async.engine_at c 1) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "new head backup diverged: %s" e);
  (match Async.replicas_consistent c with
  | Ok () -> ()
  | Error e -> Alcotest.failf "replicas diverged: %s" e);
  (* Writes the old head executed but had not yet forwarded die with it,
     unacknowledged — only the ones that reached the survivors complete. *)
  Alcotest.(check bool)
    (Printf.sprintf "surviving writes acknowledged (%d/20)" !acked)
    true (!acked >= 10);
  (* Every survivor applied the same op set. *)
  let head_applied = Async.applied_seqs c 1 in
  List.iter
    (fun m ->
      Alcotest.(check (list int))
        (Printf.sprintf "replica %d applied set" m)
        head_applied (Async.applied_seqs c m))
    (Async.members c)

(* --- stale-view probes ----------------------------------------------------- *)

let test_stale_probe_dropped () =
  let c =
    Async.create
      ~engine_config:{ Engine.default_config with Engine.heap_bytes = 1 lsl 18 }
      ~hop_ns:5000 ~rpc_ns:500 ~mode:Async.Kamino_chain ~f:2 ~value_size:64
      ~node_size:512 ~seed:5 ()
  in
  Async.submit c ~at:1_000 (Op.Put (0, "legit")) ~on_complete:(fun _ -> ());
  Async.inject_stale_probe c ~at:4_000 2;
  ignore (Async.run c);
  Alcotest.(check bool) "probe counted as a stale drop" true (Async.stale_drops c >= 1);
  List.iter
    (fun m ->
      Alcotest.(check (option string))
        (Printf.sprintf "replica %d unaffected" m)
        (Some "legit")
        (Kamino_kv.Kv.get (Async.kv_at c m) 0))
    (Async.members c);
  match Async.replicas_consistent c with
  | Ok () -> ()
  | Error e -> Alcotest.failf "replicas diverged: %s" e

(* --- schedule serialization ------------------------------------------------ *)

let test_schedule_roundtrip () =
  let schedule = Chaos.gen_schedule ~seed:9 ~faults:12 ~nodes:4 ~events:300 in
  Alcotest.(check int) "drew the requested faults" 12 (List.length schedule);
  (match Chaos.schedule_of_string (Chaos.schedule_to_string schedule) with
  | Ok parsed ->
      Alcotest.(check bool) "roundtrip preserves the schedule" true (parsed = schedule)
  | Error e -> Alcotest.failf "roundtrip failed to parse: %s" e);
  (* Comments and blank lines are tolerated; junk is rejected with a line
     number. *)
  (match Chaos.schedule_of_string "# header\n\nreboot node=1 at-event=5 downtime-ns=0\n" with
  | Ok [ Chaos.Reboot { node = 1; at_event = 5; downtime_ns = 0 } ] -> ()
  | Ok _ -> Alcotest.fail "parsed into the wrong schedule"
  | Error e -> Alcotest.failf "failed to parse commented schedule: %s" e);
  match Chaos.schedule_of_string "reboot node=1\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a schedule missing fields"

let () =
  Alcotest.run "chaos"
    [
      ( "explorer",
        [
          Alcotest.test_case "bounded sweep: 500 distinct schedules, both modes" `Slow
            test_bounded_sweep;
          Alcotest.test_case "deterministic replay" `Quick test_deterministic_replay;
        ] );
      ( "oracles",
        [
          Alcotest.test_case "broken recovery caught and shrunk" `Quick
            test_broken_recovery_caught;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "crash during head promotion" `Quick
            test_crash_during_promotion;
          Alcotest.test_case "stale probe dropped" `Quick test_stale_probe_dropped;
        ] );
      ( "serialization",
        [ Alcotest.test_case "schedule roundtrip" `Quick test_schedule_roundtrip ] );
    ]
