(* Sharded façade tests.

   - Router: deterministic, in range, spreads dense key spaces.
   - Isolation: each shard of an N-shard façade is bit-identical — same
     simulated clocks, same NVM counters — to a standalone engine created
     with the same derived seed and driven with the same sub-workload.
   - Scaling: the applier-bound uniform-key YCSB-A cell gains >= 2x
     aggregate simulated throughput at 4 shards (the acceptance gate the
     bench's `--shards` curve tracks in CI).
   - Cross-shard transactions: all-or-nothing with and without crashes,
     marker lifecycle, abort path. *)

module Rng = Kamino_sim.Rng
module Clock = Kamino_sim.Clock
module Cost_model = Kamino_nvm.Cost_model
module Region = Kamino_nvm.Region
module Engine = Kamino_core.Engine
module Kv = Kamino_kv.Kv
module Shard = Kamino_shard.Shard
module Shard_kv = Kamino_shard.Shard_kv
module Shard_driver = Kamino_shard.Shard_driver
module Shard_router = Kamino_shard.Shard_router
module Mailbox = Kamino_shard.Mailbox
module Stats = Kamino_sim.Stats
module Obs = Kamino_obs.Obs
module Sink = Kamino_obs.Sink
module Driver = Kamino_workload.Driver

let config =
  {
    Engine.default_config with
    Engine.heap_bytes = 8 * 1024 * 1024;
    log_slots = 8;
    data_log_bytes = 1 lsl 18;
    cost = Cost_model.slow_nvm;
  }

(* --- router ---------------------------------------------------------------- *)

let test_router () =
  List.iter
    (fun shards ->
      let counts = Array.make shards 0 in
      for key = 0 to 4095 do
        let i = Shard.route_key ~shards key in
        if i < 0 || i >= shards then
          Alcotest.failf "route_key ~shards:%d %d = %d out of range" shards key i;
        Alcotest.(check int)
          (Printf.sprintf "route_key %d deterministic" key)
          i
          (Shard.route_key ~shards key);
        counts.(i) <- counts.(i) + 1
      done;
      (* A dense key space must spread: no shard starved or hogging. *)
      Array.iteri
        (fun i c ->
          let fair = 4096 / shards in
          if c < fair / 2 || c > fair * 2 then
            Alcotest.failf "shards=%d: shard %d owns %d of 4096 keys (fair %d)"
              shards i c fair)
        counts)
    [ 1; 2; 4; 8 ]

(* The lease fast path is what keeps the parallel driver's per-op router
   overhead flat: with zero leases in flight, a service drive costs
   exactly one atomic load of the park gate and never touches the
   mailbox. The counters are exact on a single domain. *)
let test_service_fast_path () =
  let s = Shard.create ~config ~kind:Engine.Kamino_simple ~seed:3 ~shards:4 () in
  let router = Shard_router.create s in
  Shard_router.attach router ~domains:2;
  let n = 1_000 in
  for _ = 1 to n do
    Shard_router.service router ~domain:0;
    Shard_router.service router ~domain:1
  done;
  Alcotest.(check int) "every drive counted" (2 * n)
    (Shard_router.service_calls router);
  Alcotest.(check int) "exactly one atomic load per drive" (2 * n)
    (Shard_router.service_loads router);
  Alcotest.(check int) "no mailbox drains without leases" 0
    (Shard_router.service_drains router);
  (* A home-hosted multi-shard exclusive takes the coordinator lock but
     leases nobody — the fast-path accounting must not move. *)
  Shard_router.attach router ~domains:1;
  let loads = Shard_router.service_loads router in
  Shard_router.exclusive router ~from:0 [ 0; 1 ] (fun () -> ());
  Alcotest.(check int) "lock without foreign hosts loads nothing" loads
    (Shard_router.service_loads router);
  Alcotest.(check int) "and still never drains" 0
    (Shard_router.service_drains router)

(* --- per-shard isolation --------------------------------------------------- *)

(* The uniform-key YCSB-A cell from the bench, parameterized so the same
   client streams can drive a façade or a standalone mirror. *)
let payload = String.make 1000 'k'

let load_kv kv records =
  for k = 0 to records - 1 do
    Shard_kv.put kv k payload
  done;
  Shard.drain_backups (Shard_kv.shard kv)

let owned_keys s records =
  let own = Array.make (Shard.shards s) [] in
  for k = records - 1 downto 0 do
    own.(Shard.route s k) <- k :: own.(Shard.route s k)
  done;
  Array.map Array.of_list own

let step_op ~own ~rngs store ~client ~shard_id =
  let keys = own.(shard_id) in
  let rng = rngs.(client) in
  let k = keys.(Rng.int rng (Array.length keys)) in
  if Rng.int rng 100 < 50 then begin
    ignore (Kv.get store k);
    "read"
  end
  else begin
    Kv.put store k payload;
    "update"
  end

let run_sharded ?(domains = 1) ~shards ~clients ~total_ops ~records ~seed () =
  let s = Shard.create ~config ~kind:Engine.Kamino_simple ~seed ~shards () in
  let kv = Shard_kv.create s ~value_size:1024 ~node_size:1024 in
  load_kv kv records;
  let own = owned_keys s records in
  let rngs = Array.init clients (fun c -> Rng.create (777 + c)) in
  let router = Shard_router.create s in
  let r =
    Shard_driver.run ~domains ~router ~shard:s ~clients ~total_ops
      ~step:(fun ~client ~shard_id () ->
        step_op ~own ~rngs (Shard_kv.store kv shard_id) ~client ~shard_id)
      ()
  in
  (s, r)

(* Standalone mirror of façade shard [target]: an engine created with the
   façade's derived seed, loaded with the shard's slice of the key space
   in the same order, driven by the same pinned clients (same rng streams,
   same quotas) in min-clock order. *)
let run_standalone ~shards ~clients ~total_ops ~records ~seed ~target =
  let e = Engine.create ~config ~kind:Engine.Kamino_simple ~seed:(seed + target) () in
  let kv = Kv.create e ~value_size:1024 ~node_size:1024 in
  (* Reconstruct the shard's key slice with the façade's router. *)
  let own_all = Array.make shards [] in
  for k = records - 1 downto 0 do
    own_all.(Shard.route_key ~shards k) <- k :: own_all.(Shard.route_key ~shards k)
  done;
  let own = Array.map Array.of_list own_all in
  Array.iter (fun k -> Kv.put kv k payload) own.(target);
  Engine.drain_backup e;
  let rngs = Array.init clients (fun c -> Rng.create (777 + c)) in
  let mine = List.filter (fun c -> c mod shards = target) (List.init clients Fun.id) in
  let quota =
    List.map
      (fun c -> (c, (total_ops / clients) + if c < total_ops mod clients then 1 else 0))
      mine
    |> List.to_seq |> Hashtbl.of_seq
  in
  let start = Engine.now e in
  let clocks =
    List.map (fun c -> (c, Clock.create_at start)) mine |> List.to_seq
    |> Hashtbl.of_seq
  in
  let remaining = ref (Hashtbl.fold (fun _ q acc -> acc + q) quota 0) in
  while !remaining > 0 do
    let client = ref (-1) and behind = ref max_int in
    List.iter
      (fun c ->
        let p = Clock.now (Hashtbl.find clocks c) - start in
        if Hashtbl.find quota c > 0 && p < !behind then begin
          client := c;
          behind := p
        end)
      mine;
    let c = !client in
    Hashtbl.replace quota c (Hashtbl.find quota c - 1);
    decr remaining;
    Engine.set_clock e (Hashtbl.find clocks c);
    ignore (step_op ~own ~rngs kv ~client:c ~shard_id:target)
  done;
  e

let counters_equal a b =
  a.Region.stores = b.Region.stores
  && a.Region.bytes_stored = b.Region.bytes_stored
  && a.Region.loads = b.Region.loads
  && a.Region.bytes_loaded = b.Region.bytes_loaded
  && a.Region.lines_flushed = b.Region.lines_flushed
  && a.Region.fences = b.Region.fences
  && a.Region.bytes_copied = b.Region.bytes_copied

let test_isolation () =
  let shards = 4 and clients = 8 and total_ops = 2000 and records = 1024 in
  let seed = 90210 in
  let s, _r = run_sharded ~shards ~clients ~total_ops ~records ~seed () in
  for target = 0 to shards - 1 do
    let solo = run_standalone ~shards ~clients ~total_ops ~records ~seed ~target in
    let se = Shard.engine s target in
    (* Same final simulated instant: the last client to run on the shard
       parks the engine clock, and both executions end on the same op. *)
    Alcotest.(check int)
      (Printf.sprintf "shard %d sim-ns equals standalone run" target)
      (Engine.now solo) (Engine.now se);
    Alcotest.(check int)
      (Printf.sprintf "shard %d committed count" target)
      (Engine.metrics solo).Engine.committed (Engine.metrics se).Engine.committed;
    if not (counters_equal (Engine.main_counters se) (Engine.main_counters solo)) then
      Alcotest.failf "shard %d NVM counters diverge from the standalone engine"
        target
  done

(* --- scaling --------------------------------------------------------------- *)

let test_scaling () =
  let cell shards =
    let _s, r = run_sharded ~shards ~clients:8 ~total_ops:8000 ~records:2048 ~seed:90210 () in
    r.Kamino_workload.Driver.throughput_mops
  in
  let one = cell 1 in
  let four = cell 4 in
  if four < 2.0 *. one then
    Alcotest.failf "4-shard aggregate %.4f M ops/s is below 2x the 1-shard %.4f" four
      one

(* --- parallel execution (OCaml 5 domains) ----------------------------------- *)

(* The float fields compare with [=]: bit-identity, not tolerance — the
   merge order in [Shard_driver] is domain-count-independent by design. *)
let result_fingerprint (r : Driver.result) =
  ( r.Driver.total_ops,
    r.Driver.elapsed_ns,
    r.Driver.throughput_mops,
    r.Driver.mean_latency_ns,
    List.map (fun (l, s) -> (l, Stats.count s, Stats.sum s)) r.Driver.latencies )

let shard_fingerprints s =
  Array.init (Shard.shards s) (fun i -> Engine.fingerprint (Shard.engine s i))

(* The determinism contract: simulated time, NVM counters, heap images and
   the merged driver result are bit-identical whatever the domain count. *)
let test_parallel_oracle () =
  let shards = 4 and clients = 9 and total_ops = 2500 and records = 1024 in
  List.iter
    (fun seed ->
      let s1, r1 =
        run_sharded ~domains:1 ~shards ~clients ~total_ops ~records ~seed ()
      in
      let base_fp = shard_fingerprints s1 in
      let base_r = result_fingerprint r1 in
      List.iter
        (fun domains ->
          let sn, rn =
            run_sharded ~domains ~shards ~clients ~total_ops ~records ~seed ()
          in
          Array.iteri
            (fun i fp ->
              if fp <> base_fp.(i) then
                Alcotest.failf
                  "seed=%d domains=%d: shard %d heap/counter fingerprint diverges"
                  seed domains i)
            (shard_fingerprints sn);
          Alcotest.(check int)
            (Printf.sprintf "seed=%d domains=%d committed" seed domains)
            (Shard.committed s1) (Shard.committed sn);
          if result_fingerprint rn <> base_r then
            Alcotest.failf "seed=%d domains=%d: driver result diverges" seed
              domains)
        [ 2; 3; 4 ])
    [ 7; 90210; 4242 ]

(* Lane decomposition: the parallel executor's per-shard operation streams
   (which client ran each op, in order) equal the projection of the global
   furthest-behind schedule onto each shard. The reference is reimplemented
   here over a second identically-seeded façade. *)
let prop_parallel_stream =
  QCheck.Test.make ~count:15
    ~name:"parallel per-shard streams match the global schedule"
    QCheck.(quad (int_range 1 1000) (int_range 1 4) (int_range 1 9) (int_range 0 400))
    (fun (seed, shards, clients, total_ops) ->
      let records = 512 in
      let domains = 1 + (seed mod 4) in
      (* Reference: one loop over every client at once, always the globally
         furthest-behind next (ties to the lowest client id). *)
      let streams_ref = Array.make shards [] in
      (let s = Shard.create ~config ~kind:Engine.Kamino_simple ~seed ~shards () in
       let kv = Shard_kv.create s ~value_size:1024 ~node_size:1024 in
       load_kv kv records;
       let own = owned_keys s records in
       let rngs = Array.init clients (fun c -> Rng.create (777 + c)) in
       let home = Array.init clients (fun c -> Shard_driver.home ~shards c) in
       let starts = Array.init shards (fun i -> Engine.now (Shard.engine s i)) in
       let clocks = Array.init clients (fun c -> Clock.create_at starts.(home.(c))) in
       let quota =
         Array.init clients (fun c ->
             (total_ops / clients) + if c < total_ops mod clients then 1 else 0)
       in
       for _ = 1 to total_ops do
         let pick = ref (-1) and behind = ref max_int in
         for c = 0 to clients - 1 do
           let p = Clock.now clocks.(c) - starts.(home.(c)) in
           if quota.(c) > 0 && p < !behind then begin
             pick := c;
             behind := p
           end
         done;
         let c = !pick in
         let i = home.(c) in
         quota.(c) <- quota.(c) - 1;
         Shard.set_clock s i clocks.(c);
         ignore (step_op ~own ~rngs (Shard_kv.store kv i) ~client:c ~shard_id:i);
         streams_ref.(i) <- c :: streams_ref.(i)
       done);
      (* Candidate: the domain executor, recording who ran on each shard.
         Each stream cell is written only by its shard's executor domain. *)
      let streams_par = Array.make shards [] in
      (let s = Shard.create ~config ~kind:Engine.Kamino_simple ~seed ~shards () in
       let kv = Shard_kv.create s ~value_size:1024 ~node_size:1024 in
       load_kv kv records;
       let own = owned_keys s records in
       let rngs = Array.init clients (fun c -> Rng.create (777 + c)) in
       let router = Shard_router.create s in
       ignore
         (Shard_driver.run ~domains ~router ~shard:s ~clients ~total_ops
            ~step:(fun ~client ~shard_id () ->
              streams_par.(shard_id) <- client :: streams_par.(shard_id);
              step_op ~own ~rngs (Shard_kv.store kv shard_id) ~client ~shard_id)
            ()));
      Array.iteri
        (fun i ref_stream ->
          if streams_par.(i) <> ref_stream then
            QCheck.Test.fail_reportf
              "shard %d: parallel stream diverges from the global schedule (%d vs %d ops)"
              i
              (List.length streams_par.(i))
              (List.length ref_stream))
        streams_ref;
      true)

(* Byte-identical Perfetto traces across domain counts: per-shard rings
   (each mutated only by its executor domain), merged afterwards on the
   deterministic (track, ts) order. *)
let test_parallel_trace_identity () =
  let shards = 4 and clients = 8 and total_ops = 1500 and records = 512 in
  let trace domains =
    let rings = Array.init shards (fun _ -> Obs.create ~capacity:8192 ()) in
    let s =
      Shard.create ~config ~shard_obs:rings ~kind:Engine.Kamino_simple ~seed:90210
        ~shards ()
    in
    let kv = Shard_kv.create s ~value_size:1024 ~node_size:1024 in
    load_kv kv records;
    let own = owned_keys s records in
    let rngs = Array.init clients (fun c -> Rng.create (777 + c)) in
    let router = Shard_router.create s in
    ignore
      (Shard_driver.run ~domains ~router ~shard:s ~clients ~total_ops
         ~step:(fun ~client ~shard_id () ->
           step_op ~own ~rngs (Shard_kv.store kv shard_id) ~client ~shard_id)
         ());
    Sink.perfetto_string (Obs.merged rings)
  in
  let base = trace 1 in
  Alcotest.(check bool) "trace is non-trivial" true (String.length base > 1000);
  List.iter
    (fun domains ->
      if trace domains <> base then
        Alcotest.failf "domains=%d: merged Perfetto trace differs from domains=1"
          domains)
    [ 2; 4 ]

(* Cross-shard transactions from inside the parallel executor: one client
   periodically issues a [multi_put] spanning every shard, routed through
   the router's lease protocol. Leased operations are linearizable (not
   bit-scheduled), so the check is semantic: the batch lands atomically,
   the store validates, and the backups converge. The spanning keys live
   outside the preloaded range so no other client overwrites them. *)
let test_cross_domain_multi_put () =
  let shards = 4 and clients = 8 and total_ops = 2000 and records = 512 in
  let s = Shard.create ~config ~kind:Engine.Kamino_simple ~seed:77 ~shards () in
  let kv = Shard_kv.create s ~value_size:1024 ~node_size:1024 in
  load_kv kv records;
  let own = owned_keys s records in
  let rngs = Array.init clients (fun c -> Rng.create (777 + c)) in
  let router = Shard_router.create s in
  (* One fresh key per shard, outside [0, records). *)
  let span =
    Array.to_list
      (Array.init shards (fun i ->
           let k = ref records in
           while Shard.route s !k <> i do
             incr k
           done;
           !k))
  in
  let stamps = ref 0 and ops0 = ref 0 in
  (* Both refs belong to client 0 alone, hence to one executor domain. *)
  ignore
    (Shard_driver.run ~domains:shards ~router ~shard:s ~clients ~total_ops
       ~step:(fun ~client ~shard_id () ->
         if client = 0 then begin
           incr ops0;
           if !ops0 mod 50 = 0 then begin
             incr stamps;
             Shard_kv.multi_put ~router ~from:shard_id kv
               (List.map (fun k -> (k, Printf.sprintf "stamp%d" !stamps)) span);
             "multi"
           end
           else step_op ~own ~rngs (Shard_kv.store kv shard_id) ~client ~shard_id
         end
         else step_op ~own ~rngs (Shard_kv.store kv shard_id) ~client ~shard_id)
       ());
  Alcotest.(check bool) "issued cross-shard transactions" true (!stamps > 0);
  Alcotest.(check bool) "router leased foreign domains" true
    (Shard_router.crossed router > 0);
  let expect = Printf.sprintf "stamp%d" !stamps in
  List.iter
    (fun k ->
      match Shard_kv.get kv k with
      | Some got when got = expect -> ()
      | v ->
          Alcotest.failf "key %d after parallel multi_put run: %s, expected %S" k
            (Option.value ~default:"<none>" v)
            expect)
    span;
  (match Shard_kv.validate kv with Ok () -> () | Error e -> Alcotest.fail e);
  match Shard.verify_backups s with Ok () -> () | Error e -> Alcotest.fail e

(* --- cross-shard transactions ---------------------------------------------- *)

let make_cross ~shards ~seed =
  let s = Shard.create ~config ~kind:Engine.Kamino_simple ~seed ~shards () in
  (* One 64-byte cell per shard, stamped through cross-shard commits. *)
  let cells =
    Array.init shards (fun i ->
        Shard.with_tx s i (fun tx ->
            let p = Engine.alloc tx 64 in
            Engine.write_int64 tx p 0 0L;
            p))
  in
  (s, cells)

let stamp_all s cells ids stamp ?on_step () =
  Shard.with_cross_tx ?on_step s ids (fun tx_of ->
      List.iter
        (fun i ->
          let tx = tx_of i in
          Engine.add tx cells.(i);
          Engine.write_int64 tx cells.(i) 0 stamp)
        ids)

let check_cells s cells ids ~expect context =
  List.iter
    (fun i ->
      let v = Engine.peek_int64 (Shard.engine s i) cells.(i) 0 in
      if v <> expect then
        Alcotest.failf "%s: shard %d cell is %Ld, expected %Ld" context i v expect)
    ids

let test_cross_commit () =
  let s, cells = make_cross ~shards:4 ~seed:11 in
  let ids = [ 0; 1; 2; 3 ] in
  stamp_all s cells ids 42L ();
  check_cells s cells ids ~expect:42L "cross-shard commit";
  Alcotest.(check int) "marker cleared after commit" 0
    (Region.read_int (Shard.marker_region s) 0);
  (* Partial participant lists work too, and leave bystanders alone. *)
  stamp_all s cells [ 1; 3 ] 43L ();
  check_cells s cells [ 1; 3 ] ~expect:43L "partial cross-shard commit";
  check_cells s cells [ 0; 2 ] ~expect:42L "bystander shards untouched";
  match Shard.verify_backups s with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

exception Boom

let test_cross_abort () =
  let s, cells = make_cross ~shards:3 ~seed:12 in
  let ids = [ 0; 1; 2 ] in
  stamp_all s cells ids 7L ();
  (match
     Shard.with_cross_tx s ids (fun tx_of ->
         List.iter
           (fun i ->
             let tx = tx_of i in
             Engine.add tx cells.(i);
             Engine.write_int64 tx cells.(i) 0 666L)
           ids;
         raise Boom)
   with
  | () -> Alcotest.fail "exception swallowed"
  | exception Boom -> ());
  check_cells s cells ids ~expect:7L "abort rolled every shard back";
  (* The engines are usable afterwards. *)
  stamp_all s cells ids 8L ();
  check_cells s cells ids ~expect:8L "commit after abort"

exception Crashed

(* Crash at every protocol step: before the marker's valid flag is durable
   the transaction must vanish everywhere; from [Marker_written] on it
   must land everywhere. *)
let test_cross_crash_at_each_step () =
  let ids = [ 0; 1; 2 ] in
  (* Step indices: 0,1,2 = Prepared; 3 = Marker_written; 4,5,6 = Committed;
     7 = Marker_cleared. *)
  for crash_at = 0 to 7 do
    let s, cells = make_cross ~shards:3 ~seed:(100 + crash_at) in
    stamp_all s cells ids 1L ();
    let count = ref 0 in
    let on_step _ =
      if !count = crash_at then begin
        Shard.crash s;
        raise Crashed
      end;
      incr count
    in
    (match stamp_all s cells ids 2L ~on_step () with
    | () -> Alcotest.failf "crash_at=%d: protocol completed" crash_at
    | exception Crashed -> ());
    Shard.recover s;
    let expect = if crash_at < 3 then 1L else 2L in
    check_cells s cells ids ~expect
      (Printf.sprintf "crash_at=%d recovery" crash_at);
    Alcotest.(check int)
      (Printf.sprintf "crash_at=%d marker retired" crash_at)
      0
      (Region.read_int (Shard.marker_region s) 0);
    (* Recovered façade keeps working, including another cross commit. *)
    stamp_all s cells ids 3L ();
    check_cells s cells ids ~expect:3L
      (Printf.sprintf "crash_at=%d post-recovery commit" crash_at);
    match Shard.verify_backups s with
    | Ok () -> ()
    | Error e -> Alcotest.failf "crash_at=%d: %s" crash_at e
  done

(* --- sharded kv ------------------------------------------------------------ *)

let test_multi_put () =
  let s = Shard.create ~config ~kind:Engine.Kamino_simple ~seed:21 ~shards:4 () in
  let kv = Shard_kv.create s ~value_size:256 ~node_size:1024 in
  let bindings = List.init 16 (fun k -> (k, Printf.sprintf "v%d" k)) in
  Shard_kv.multi_put kv bindings;
  List.iter
    (fun (k, v) ->
      match Shard_kv.get kv k with
      | Some got when got = v -> ()
      | Some got -> Alcotest.failf "key %d: %S, expected %S" k got v
      | None -> Alcotest.failf "key %d missing after multi_put" k)
    bindings;
  Alcotest.(check int) "size sums shards" 16 (Shard_kv.size kv);
  (* Crash right after the marker is durable: the whole batch must land. *)
  let update = List.init 16 (fun k -> (k, Printf.sprintf "w%d" k)) in
  let count = ref 0 in
  (match
     Shard_kv.multi_put kv update ~on_step:(fun step ->
         (match step with
         | Shard.Marker_written ->
             Shard.crash s;
             raise Crashed
         | _ -> ());
         incr count)
   with
  | () -> Alcotest.fail "crash hook did not fire"
  | exception Crashed -> ());
  Shard.recover s;
  let kv = Shard_kv.reattach s in
  List.iter
    (fun (k, v) ->
      match Shard_kv.get kv k with
      | Some got when got = v -> ()
      | Some got -> Alcotest.failf "key %d after crash: %S, expected %S" k got v
      | None -> Alcotest.failf "key %d missing after recovery" k)
    update;
  match Shard_kv.validate kv with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

(* --- snapshot reads -------------------------------------------------------- *)

(* Routed sharded snapshot reads are bit-identical to standalone per-shard
   engines at equal watermarks: shard [i] of a façade seeded [s] serves
   exactly what [Engine.create ~seed:(s + i)] serves after the same
   routed sub-workload — same watermark pair, same values. *)
let prop_snapshot_mirror =
  QCheck.Test.make ~count:20 ~name:"sharded snapshot reads mirror standalone shards"
    QCheck.(
      pair (int_range 1 1000)
        (list_of_size Gen.(int_range 1 40)
           (pair (int_range 0 63) (int_range 1 64))))
    (fun (seed, ops) ->
      let shards = 4 in
      let value_of k len = String.make len (Char.chr (Char.code 'a' + (k mod 26))) in
      let s = Shard.create ~config ~kind:Engine.Kamino_simple ~seed ~shards () in
      let kv = Shard_kv.create s ~value_size:256 ~node_size:1024 in
      List.iter (fun (k, len) -> Shard_kv.put kv k (value_of k len)) ops;
      Shard.drain_backups s;
      let solo =
        Array.init shards (fun i ->
            let e = Engine.create ~config ~kind:Engine.Kamino_simple ~seed:(seed + i) () in
            let kvi = Kv.create e ~value_size:256 ~node_size:1024 in
            List.iter
              (fun (k, len) ->
                if Shard.route_key ~shards k = i then Kv.put kvi k (value_of k len))
              ops;
            Engine.drain_backup e;
            (e, kvi))
      in
      let wms = Shard.watermarks s in
      Array.iteri
        (fun i (e, _) ->
          if wms.(i) <> Engine.snapshot_watermark e then
            QCheck.Test.fail_reportf "shard %d watermark diverges from standalone" i)
        solo;
      let keys = List.sort_uniq compare (List.map fst ops) in
      List.iter
        (fun k ->
          let i = Shard.route s k in
          let _, kvi = solo.(i) in
          let routed = Shard_kv.snapshot_get kv k in
          let standalone = Kv.snapshot_get kvi k in
          if routed <> standalone then
            QCheck.Test.fail_reportf
              "key %d (shard %d): routed snapshot %s, standalone %s" k i
              (Option.value ~default:"<none>" routed)
              (Option.value ~default:"<none>" standalone))
        keys;
      true)

(* A snapshot multi-get is never blocked by a concurrent cross-shard
   [multi_put]'s lock set: probed at [Marker_written] — every participant
   prepared, every write lock held on every shard — it must return the
   pre-transaction values, as genuine backup hits (the locked fallback
   would trip over the open transactions). *)
let test_snapshot_during_multi_put () =
  let s = Shard.create ~config ~kind:Engine.Kamino_simple ~seed:31 ~shards:4 () in
  let kv = Shard_kv.create s ~value_size:256 ~node_size:1024 in
  let keys = List.init 16 Fun.id in
  List.iter (fun k -> Shard_kv.put kv k (Printf.sprintf "old%d" k)) keys;
  Shard.drain_backups s;
  let fallbacks () =
    let n = ref 0 in
    for i = 0 to Shard.shards s - 1 do
      n := !n + (Engine.metrics (Shard.engine s i)).Engine.snapshot_fallbacks
    done;
    !n
  in
  let fb0 = fallbacks () in
  let probes = ref 0 in
  let observed = ref [] in
  Shard_kv.multi_put kv
    (List.map (fun k -> (k, Printf.sprintf "new%d" k)) keys)
    ~on_step:(fun step ->
      match step with
      | Shard.Marker_written ->
          let reader = Clock.create_at 0 in
          observed := Shard_kv.snapshot_multi_get ~clock:reader kv keys;
          incr probes
      | _ -> ());
  Alcotest.(check int) "probe fired at Marker_written" 1 !probes;
  List.iter
    (fun (k, v) ->
      let expect = Printf.sprintf "old%d" k in
      match v with
      | Some got when got = expect -> ()
      | Some got ->
          Alcotest.failf "key %d under multi_put locks: %S, expected %S" k got expect
      | None -> Alcotest.failf "key %d missing under multi_put locks" k)
    !observed;
  Alcotest.(check int) "all probes were backup hits, zero fallbacks" fb0 (fallbacks ());
  (* Once the batch commits and propagates, snapshots serve the new values. *)
  Shard.drain_backups s;
  List.iter
    (fun k ->
      match Shard_kv.snapshot_get kv k with
      | Some got when got = Printf.sprintf "new%d" k -> ()
      | v ->
          Alcotest.failf "key %d after drain: %s" k
            (Option.value ~default:"<none>" v))
    keys

let () =
  Alcotest.run "shard"
    [
      ( "router",
        [
          Alcotest.test_case "deterministic, in range, spreads" `Quick test_router;
          Alcotest.test_case "lease-free service is one atomic load" `Quick
            test_service_fast_path;
        ] );
      ( "isolation",
        [
          Alcotest.test_case "per-shard sim-ns equals a standalone engine" `Quick
            test_isolation;
        ] );
      ( "scaling",
        [ Alcotest.test_case "4 shards >= 2x aggregate ops/s" `Quick test_scaling ] );
      ( "parallel",
        [
          Alcotest.test_case "bit-identical across domain counts" `Quick
            test_parallel_oracle;
          QCheck_alcotest.to_alcotest prop_parallel_stream;
          Alcotest.test_case "merged Perfetto trace byte-identical" `Quick
            test_parallel_trace_identity;
          Alcotest.test_case "cross-shard multi_put under domains" `Quick
            test_cross_domain_multi_put;
        ] );
      ( "cross-shard",
        [
          Alcotest.test_case "commit is atomic across shards" `Quick test_cross_commit;
          Alcotest.test_case "user exception aborts every participant" `Quick
            test_cross_abort;
          Alcotest.test_case "crash at every protocol step is all-or-nothing" `Quick
            test_cross_crash_at_each_step;
        ] );
      ( "kv",
        [ Alcotest.test_case "multi_put atomic, crash-safe" `Quick test_multi_put ] );
      ( "snapshot",
        [
          QCheck_alcotest.to_alcotest prop_snapshot_mirror;
          Alcotest.test_case "multi-get never blocks on multi_put locks" `Quick
            test_snapshot_during_multi_put;
        ] );
    ]
