(* Tests for the observability subsystem: the event ring (wraparound,
   drop accounting, the null tracer), the metrics registry (deterministic
   log2-bucket percentiles), the Perfetto sink's document shape, seed
   determinism of traces, and — the load-bearing invariant — that turning
   tracing on changes no simulated nanosecond, no NVM counter, and no
   crash-recovery or chaos outcome (DESIGN.md §8/§10). *)

module Rng = Kamino_sim.Rng
module Engine = Kamino_core.Engine
module Kv = Kamino_kv.Kv
module Obs = Kamino_obs.Obs
module Metrics = Kamino_obs.Metrics
module Sink = Kamino_obs.Sink
module Async = Kamino_chain.Async_chain
module Chaos = Kamino_chaos.Chaos

(* --- event ring ------------------------------------------------------------ *)

let test_ring_wraparound () =
  let o = Obs.create ~capacity:16 () in
  Alcotest.(check bool) "enabled" true (Obs.enabled o);
  Alcotest.(check int) "capacity honored" 16 (Obs.capacity o);
  for i = 0 to 39 do
    Obs.emit o ~kind:Obs.k_commit ~track:1 ~ts:(i * 10) ~dur:1 ~a:i ~b:0 ~c:0
  done;
  Alcotest.(check int) "ring holds capacity" 16 (Obs.length o);
  Alcotest.(check int) "overflow counted as drops" 24 (Obs.dropped o);
  Alcotest.(check int) "total = held + dropped" 40 (Obs.total o);
  (* Survivors are exactly the newest [capacity] events, oldest first. *)
  let got = ref [] in
  Obs.iter o (fun ~kind:_ ~track:_ ~ts:_ ~dur:_ ~a ~b:_ ~c:_ -> got := a :: !got);
  Alcotest.(check (list int)) "newest events survive, in order"
    (List.init 16 (fun i -> 24 + i))
    (List.rev !got);
  Obs.reset o;
  Alcotest.(check int) "reset empties the ring" 0 (Obs.length o);
  Alcotest.(check int) "reset clears drops" 0 (Obs.dropped o)

let test_null_tracer () =
  Alcotest.(check bool) "null is disabled" false (Obs.enabled Obs.null);
  Obs.emit Obs.null ~kind:Obs.k_flush ~track:0 ~ts:1 ~dur:1 ~a:1 ~b:1 ~c:1;
  Obs.name_track Obs.null 3 "ghost";
  Alcotest.(check int) "null records nothing" 0 (Obs.length Obs.null);
  Alcotest.(check (list (pair int string))) "null names nothing" [] (Obs.tracks Obs.null)

(* --- multi-ring merge -------------------------------------------------------- *)

let test_merged_order () =
  let a = Obs.create ~capacity:8 () in
  let b = Obs.create ~capacity:8 () in
  Obs.name_track a 1 "one";
  Obs.name_track b 0 "zero";
  Obs.emit a ~kind:Obs.k_commit ~track:1 ~ts:5 ~dur:1 ~a:50 ~b:0 ~c:0;
  Obs.emit a ~kind:Obs.k_commit ~track:1 ~ts:10 ~dur:1 ~a:51 ~b:0 ~c:0;
  Obs.emit b ~kind:Obs.k_commit ~track:0 ~ts:7 ~dur:1 ~a:52 ~b:0 ~c:0;
  let m = Obs.merged [| a; b |] in
  let got = ref [] in
  Obs.iter m (fun ~kind:_ ~track ~ts ~dur:_ ~a ~b:_ ~c:_ ->
      got := (track, ts, a) :: !got);
  Alcotest.(check (list (triple int int int)))
    "sorted by (track, ts)"
    [ (0, 7, 52); (1, 5, 50); (1, 10, 51) ]
    (List.rev !got);
  Alcotest.(check (list (pair int string)))
    "track names union"
    [ (0, "zero"); (1, "one") ]
    (List.sort compare (Obs.tracks m));
  Alcotest.(check int) "no drops" 0 (Obs.dropped m);
  Alcotest.(check bool) "all-null input merges to null" false
    (Obs.enabled (Obs.merged [| Obs.null |]))

(* The parallel driver's invariant, stressed directly: one ring per domain,
   each mutated only by its owner, merged afterwards — across a 4 x 10k
   event burst nothing is lost, duplicated, or reordered within a track. *)
let test_merged_domain_stress () =
  let domains = 4 and events = 10_000 in
  let rings = Array.init domains (fun _ -> Obs.create ~capacity:16_384 ()) in
  let worker d () =
    let r = rings.(d) in
    for i = 0 to events - 1 do
      Obs.emit r ~kind:Obs.k_commit ~track:d ~ts:i ~dur:1 ~a:(succ i) ~b:d ~c:0
    done
  in
  let spawned = Array.init (domains - 1) (fun k -> Domain.spawn (worker (k + 1))) in
  worker 0 ();
  Array.iter Domain.join spawned;
  let m = Obs.merged rings in
  Alcotest.(check int) "no event lost across domains" (domains * events)
    (Obs.length m);
  Alcotest.(check int) "no drops" 0 (Obs.dropped m);
  let next = Array.make domains 0 in
  Obs.iter m (fun ~kind:_ ~track ~ts ~dur:_ ~a ~b ~c:_ ->
      if b <> track then Alcotest.failf "track %d: payload crossed rings" track;
      if ts <> next.(track) || a <> succ ts then
        Alcotest.failf "track %d: saw ts=%d a=%d, expected ts=%d (lost or duplicated)"
          track ts a next.(track);
      next.(track) <- ts + 1);
  Array.iteri
    (fun d n -> Alcotest.(check int) (Printf.sprintf "track %d complete" d) events n)
    next

(* --- metrics registry ------------------------------------------------------- *)

let test_metrics_counters () =
  let r = Metrics.create () in
  let c = Metrics.counter r "engine.committed" in
  Metrics.incr c;
  Metrics.add c 4;
  Alcotest.(check int) "incr + add" 5 (Metrics.value c);
  let c' = Metrics.counter r "engine.committed" in
  Metrics.incr c';
  Alcotest.(check int) "same name, same handle" 6 (Metrics.value c);
  Metrics.set c 42;
  Alcotest.(check int) "set overwrites" 42 (Metrics.value c);
  let names =
    Metrics.fold_counters r ~init:[] ~f:(fun acc name v -> (name, v) :: acc)
  in
  Alcotest.(check (list (pair string int)))
    "fold enumerates sorted"
    [ ("engine.committed", 42) ]
    (List.rev names)

let test_metrics_percentiles () =
  let r = Metrics.create () in
  let h = Metrics.hist r "wait" in
  for v = 1 to 100 do
    Metrics.observe h v
  done;
  Alcotest.(check int) "count" 100 (Metrics.count h);
  Alcotest.(check int) "max" 100 (Metrics.max_value h);
  Alcotest.(check (float 0.001)) "mean" 50.5 (Metrics.mean h);
  (* Log2 buckets: rank 50 lands in bucket [32,63], reported as its upper
     bound; the top ranks clamp to the observed max. *)
  Alcotest.(check int) "p50 = bucket upper bound" 63 (Metrics.percentile h 50.0);
  Alcotest.(check int) "p99 clamps to max" 100 (Metrics.percentile h 99.0);
  Metrics.observe h (-5);
  Alcotest.(check int) "negatives clamp to 0" 101 (Metrics.count h);
  let empty = Metrics.hist r "empty" in
  Alcotest.(check int) "empty percentile" 0 (Metrics.percentile empty 99.0);
  Alcotest.(check (float 0.001)) "empty mean" 0.0 (Metrics.mean empty)

(* --- a small deterministic engine workload ---------------------------------- *)

let config =
  {
    Engine.default_config with
    Engine.heap_bytes = 4 * 1024 * 1024;
    log_slots = 128;
    data_log_bytes = 2 * 1024 * 1024;
  }

let run_workload ?obs ?(crashes = false) kind =
  let e = Engine.create ~config ?obs ~kind ~seed:11 () in
  let kv = ref (Kv.create e ~value_size:256 ~node_size:512) in
  let rng = Rng.create 99 in
  let model = Hashtbl.create 64 in
  for round = 1 to 400 do
    let k = Rng.int rng 64 in
    (match Rng.int rng 3 with
    | 0 ->
        let v = Printf.sprintf "v%d" round in
        Kv.put !kv k v;
        Hashtbl.replace model k v
    | 1 ->
        ignore (Kv.delete !kv k);
        Hashtbl.remove model k
    | _ -> ignore (Kv.get !kv k));
    if crashes && Rng.int rng 40 = 0 then begin
      Engine.crash e;
      Engine.recover e;
      kv := Kv.reattach e
    end
  done;
  Engine.drain_backup e;
  let contents =
    Hashtbl.fold (fun k v acc -> Printf.sprintf "%d=%s" k v :: acc) model []
    |> List.sort compare |> String.concat ";"
  in
  (e, !kv, contents)

(* --- Perfetto sink ---------------------------------------------------------- *)

(* No JSON parser in the dependency set, so the shape check is structural:
   the exact envelope [json_of_cell]-style consumers depend on, balanced
   braces/brackets, and one object per recorded event. *)
let test_perfetto_shape () =
  let obs = Obs.create ~capacity:1024 () in
  let e, _, _ = run_workload ~obs Engine.Kamino_simple in
  let s = Sink.perfetto_string obs in
  let count c = String.fold_left (fun n ch -> if ch = c then n + 1 else n) 0 s in
  Alcotest.(check bool) "opens with traceEvents" true
    (String.length s > 16 && String.sub s 0 16 = {|{"traceEvents":[|});
  Alcotest.(check int) "braces balance" (count '{') (count '}');
  Alcotest.(check int) "brackets balance" (count '[') (count ']');
  let occurrences needle =
    let nl = String.length needle and sl = String.length s in
    let n = ref 0 in
    for i = 0 to sl - nl do
      if String.sub s i nl = needle then incr n
    done;
    !n
  in
  (* One event object per ring slot, plus one metadata record per named
     track; every record carries a phase tag. *)
  Alcotest.(check int) "every record has a phase"
    (Obs.length obs + List.length (Obs.tracks obs))
    (occurrences {|"ph":|});
  Alcotest.(check int) "thread names cover the tracks"
    (List.length (Obs.tracks obs))
    (occurrences {|"thread_name"|});
  Alcotest.(check bool) "declares the time unit" true
    (occurrences {|"displayTimeUnit":"ns"|} = 1);
  Alcotest.(check bool) "records drop accounting" true (occurrences {|"dropped":|} = 1);
  Alcotest.(check bool) "engine emitted spans" true (occurrences {|"ph":"X"|} > 0);
  ignore e

let test_trace_determinism () =
  let trace () =
    let obs = Obs.create ~capacity:4096 () in
    let _ = run_workload ~obs Engine.Kamino_simple in
    Sink.perfetto_string obs
  in
  let a = trace () and b = trace () in
  Alcotest.(check bool) "byte-identical trace for the same seed" true (a = b);
  Alcotest.(check bool) "trace is non-trivial" true (String.length a > 1000)

(* --- tracing must not perturb the simulation -------------------------------- *)

let engine_fingerprint e =
  let m = Engine.metrics e in
  let c = Engine.main_counters e in
  (Engine.now e, m, c)

let test_differential_ycsb () =
  List.iter
    (fun kind ->
      let plain, _, contents = run_workload kind in
      let obs = Obs.create () in
      let traced, _, contents' = run_workload ~obs kind in
      Alcotest.(check bool) "tracer saw the run" true (Obs.total obs > 0);
      Alcotest.(check bool) "same simulated time and counters" true
        (engine_fingerprint plain = engine_fingerprint traced);
      Alcotest.(check string) "same committed contents" contents contents')
    [
      Engine.Kamino_simple;
      Engine.Kamino_dynamic { alpha = 0.5; policy = Kamino_core.Backup.Lru_policy };
      Engine.Undo_logging;
    ]

let test_differential_crash_recovery () =
  let plain, kv_a, contents = run_workload ~crashes:true Engine.Kamino_simple in
  let obs = Obs.create () in
  let traced, kv_b, contents' = run_workload ~obs ~crashes:true Engine.Kamino_simple in
  Alcotest.(check bool) "same simulated time and counters" true
    (engine_fingerprint plain = engine_fingerprint traced);
  Alcotest.(check string) "same surviving contents" contents contents';
  Alcotest.(check bool) "both stores validate" true
    (Kv.validate kv_a = Ok () && Kv.validate kv_b = Ok ())

let test_differential_chaos () =
  List.iter
    (fun mode ->
      let plain = Chaos.explore ~mode ~seed:17 () in
      let obs = Obs.create () in
      let traced = Chaos.explore ~obs ~mode ~seed:17 () in
      Alcotest.(check bool) "tracer saw the run" true (Obs.total obs > 0);
      Alcotest.(check string)
        (Chaos.mode_name mode ^ ": byte-identical history")
        plain.Chaos.history traced.Chaos.history;
      Alcotest.(check bool)
        (Chaos.mode_name mode ^ ": same verdict and event count")
        true
        (plain.Chaos.verdict = traced.Chaos.verdict
        && plain.Chaos.events = traced.Chaos.events))
    [ Async.Traditional; Async.Kamino_chain ]

(* --- snapshot-read observability --------------------------------------------- *)

(* The same seeded write workload, with or without interleaved snapshot
   reads on a dedicated reader clock. Both arms draw the identical rng
   sequence (the probe key is drawn unconditionally) so the write paths
   are operation-for-operation the same. *)
let run_snapshot_workload ~reads kind =
  let e = Engine.create ~config ~kind ~seed:11 () in
  let kv = Kv.create e ~value_size:256 ~node_size:512 in
  let rng = Rng.create 99 in
  let reader = Kamino_sim.Clock.create_at 0 in
  (* Prime: propagate the store's creation so every probe is a genuine
     backup hit — a fallback would take the locked path and perturb the
     write-side clock, which is exactly what the A/B test forbids. *)
  Kv.put kv 0 "prime";
  Engine.drain_backup e;
  for round = 1 to 400 do
    let k = Rng.int rng 64 in
    (match Rng.int rng 3 with
    | 0 -> Kv.put kv k (Printf.sprintf "v%d" round)
    | 1 -> ignore (Kv.delete kv k)
    | _ -> ignore (Kv.get kv k));
    if Rng.int rng 5 = 0 then Engine.drain_backup e;
    let probe = Rng.int rng 64 in
    if reads then ignore (Kv.snapshot_get ~clock:reader kv probe)
  done;
  Engine.drain_backup e;
  e

let staleness_fingerprint e =
  let h = Metrics.hist (Engine.registry e) "engine.snapshot_staleness_ns" in
  ( Metrics.count h,
    Metrics.max_value h,
    Metrics.mean h,
    List.map (fun p -> Metrics.percentile h p) [ 50.0; 90.0; 99.0 ] )

let test_staleness_deterministic () =
  let a = run_snapshot_workload ~reads:true Engine.Kamino_simple in
  let b = run_snapshot_workload ~reads:true Engine.Kamino_simple in
  let ma = Engine.metrics a in
  Alcotest.(check bool) "probes hit the backup" true (ma.Engine.snapshot_hits > 0);
  Alcotest.(check int) "primed store never falls back" 0 ma.Engine.snapshot_fallbacks;
  Alcotest.(check bool) "staleness histogram is seed-deterministic" true
    (staleness_fingerprint a = staleness_fingerprint b);
  Alcotest.(check bool) "histogram counts every hit" true
    (let count, _, _, _ = staleness_fingerprint a in
     count = ma.Engine.snapshot_hits)

(* Snapshot reads are invisible to writers: the reads-on arm must show
   zero sim-ns drift and zero main-region NVM-counter drift against the
   reads-off arm (backup-region loads are the only difference, charged to
   the reader's own clock). *)
let test_snapshot_ab_invisible () =
  let off = run_snapshot_workload ~reads:false Engine.Kamino_simple in
  let on_ = run_snapshot_workload ~reads:true Engine.Kamino_simple in
  Alcotest.(check int) "0 sim-ns drift on the write path" (Engine.now off)
    (Engine.now on_);
  (* [main_counters] aggregates every region of the stack, backup
     included, so the reader's own load traffic is visible there — but
     the write side (stores, flushes, fences, copies) must not move by a
     single byte. *)
  (let a = Engine.main_counters off and b = Engine.main_counters on_ in
   let open Kamino_nvm.Region in
   Alcotest.(check bool) "0 write-side NVM counter drift" true
     (a.stores = b.stores
     && a.bytes_stored = b.bytes_stored
     && a.lines_flushed = b.lines_flushed
     && a.fences = b.fences
     && a.bytes_copied = b.bytes_copied);
   Alcotest.(check bool) "reader load traffic lands on the backup" true
     (b.loads > a.loads));
  let mo = Engine.metrics off and mn = Engine.metrics on_ in
  Alcotest.(check int) "same committed" mo.Engine.committed mn.Engine.committed;
  Alcotest.(check int) "same applier tasks" mo.Engine.applier_tasks
    mn.Engine.applier_tasks;
  Alcotest.(check bool) "reads-on arm actually read" true
    (mn.Engine.snapshot_hits > 0 && mo.Engine.snapshot_hits = 0)

(* --- registry wiring --------------------------------------------------------- *)

let test_engine_registry () =
  let e, _, _ = run_workload Engine.Kamino_simple in
  let m = Engine.metrics e in
  let reg = Engine.registry e in
  let get name =
    Metrics.fold_counters reg ~init:None ~f:(fun acc n v ->
        if n = name then Some v else acc)
  in
  Alcotest.(check (option int)) "committed" (Some m.Engine.committed)
    (get "engine.committed");
  Alcotest.(check (option int)) "applier tasks" (Some m.Engine.applier_tasks)
    (get "applier.tasks");
  Alcotest.(check (option int)) "storage gauge" (Some m.Engine.storage_bytes)
    (get "storage.bytes");
  let summary = Sink.summary_string reg in
  Alcotest.(check bool) "summary renders counters" true
    (String.length summary > 0
    &&
    let needle = "engine.committed" in
    let nl = String.length needle in
    let rec has i =
      i + nl <= String.length summary
      && (String.sub summary i nl = needle || has (i + 1))
    in
    has 0)

let () =
  Alcotest.run "obs"
    [
      ( "ring",
        [
          Alcotest.test_case "wraparound and drops" `Quick test_ring_wraparound;
          Alcotest.test_case "null tracer" `Quick test_null_tracer;
        ] );
      ( "merge",
        [
          Alcotest.test_case "deterministic (track, ts) order" `Quick
            test_merged_order;
          Alcotest.test_case "4-domain 10k-event burst, nothing lost" `Quick
            test_merged_domain_stress;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_metrics_counters;
          Alcotest.test_case "percentiles" `Quick test_metrics_percentiles;
        ] );
      ( "sink",
        [
          Alcotest.test_case "perfetto shape" `Quick test_perfetto_shape;
          Alcotest.test_case "trace determinism" `Quick test_trace_determinism;
        ] );
      ( "differential",
        [
          Alcotest.test_case "ycsb sim-time unchanged" `Quick test_differential_ycsb;
          Alcotest.test_case "crash recovery unchanged" `Quick
            test_differential_crash_recovery;
          Alcotest.test_case "chaos outcome unchanged" `Quick test_differential_chaos;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "staleness histogram deterministic per seed" `Quick
            test_staleness_deterministic;
          Alcotest.test_case "snapshot reads invisible to the write path" `Quick
            test_snapshot_ab_invisible;
        ] );
      ( "registry",
        [ Alcotest.test_case "engine wiring" `Quick test_engine_registry ] );
    ]
