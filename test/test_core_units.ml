(* White-box unit tests for the core components that the engine composes:
   the lock table's virtual-time semantics, the backup applier's timeline,
   and the backup manager's copy-tracking invariants. *)

module Clock = Kamino_sim.Clock
module Rng = Kamino_sim.Rng
module Region = Kamino_nvm.Region
module Heap = Kamino_heap.Heap
module Locks = Kamino_core.Locks
module Applier = Kamino_core.Applier
module Backup = Kamino_core.Backup
module Intent_log = Kamino_core.Intent_log

(* --- Locks ---------------------------------------------------------------- *)

let test_locks_uncontended () =
  let l = Locks.create () in
  Alcotest.(check int) "free lock acquired now" 105
    (Locks.acquire_write l 1 ~now:100 ~cost_ns:5.0);
  Alcotest.(check int) "read lock too" 205 (Locks.acquire_read l 2 ~now:200 ~cost_ns:5.0);
  Alcotest.(check int) "no waits recorded" 0 (Locks.wait_events l)

let test_locks_writer_blocks_writer () =
  let l = Locks.create () in
  ignore (Locks.acquire_write l 1 ~now:0 ~cost_ns:0.0);
  Locks.release_writes l [ 1 ] ~at:1000;
  Alcotest.(check int) "second writer waits for release" 1000
    (Locks.acquire_write l 1 ~now:300 ~cost_ns:0.0);
  Alcotest.(check int) "one wait event" 1 (Locks.wait_events l);
  Alcotest.(check int) "wait time recorded" 700 (Locks.waits l)

let test_locks_writer_blocks_reader_not_vice_versa () =
  let l = Locks.create () in
  ignore (Locks.acquire_write l 1 ~now:0 ~cost_ns:0.0);
  Locks.release_writes l [ 1 ] ~at:1000;
  Alcotest.(check int) "reader waits for writer" 1000
    (Locks.acquire_read l 1 ~now:100 ~cost_ns:0.0);
  Locks.release_reads l [ 1 ] ~at:2000;
  (* a later reader does NOT wait for the earlier reader *)
  Alcotest.(check int) "reader does not wait for reader" 1500
    (Locks.acquire_read l 1 ~now:1500 ~cost_ns:0.0);
  (* but a writer waits for the reader *)
  Alcotest.(check int) "writer waits for readers" 2000
    (Locks.acquire_write l 1 ~now:1200 ~cost_ns:0.0)

let test_locks_release_is_monotone () =
  let l = Locks.create () in
  ignore (Locks.acquire_write l 1 ~now:0 ~cost_ns:0.0);
  Locks.release_writes l [ 1 ] ~at:1000;
  (* an earlier release time must not pull the lock backwards *)
  Locks.release_writes l [ 1 ] ~at:500;
  Alcotest.(check int) "max of release times wins" 1000
    (Locks.acquire_write l 1 ~now:0 ~cost_ns:0.0)

let test_locks_active_tracking () =
  let l = Locks.create () in
  ignore (Locks.acquire_write l 7 ~now:0 ~cost_ns:0.0);
  Alcotest.(check bool) "held while active" true (Locks.held_by_active_tx l 7);
  Locks.release_writes l [ 7 ] ~at:10;
  Alcotest.(check bool) "released" false (Locks.held_by_active_tx l 7);
  Alcotest.(check bool) "unknown key not held" false (Locks.held_by_active_tx l 99)

let test_locks_last_task () =
  let l = Locks.create () in
  Alcotest.(check int) "no task yet" (-1) (Locks.last_writer_task l 3);
  Locks.set_last_writer_task l 3 42;
  Alcotest.(check int) "task recorded" 42 (Locks.last_writer_task l 3)

(* --- Applier -------------------------------------------------------------- *)

let make_ilog () =
  let clock = Clock.create () in
  let size = Intent_log.required_size ~max_user_threads:4 ~max_tx_entries:8 ~n_slots:8 in
  let r =
    Region.create ~crash_mode:Region.Drop_unflushed ~rng:(Rng.create 1) ~clock ~size ()
  in
  Intent_log.format r ~max_user_threads:4 ~max_tx_entries:8 ~n_slots:8

let test_applier_timeline () =
  let ilog = make_ilog () in
  let applied = ref [] in
  let a =
    Applier.create ~regions:[]
      ~apply:(fun ~tx_id ~slot ~ranges:_ ->
        applied := tx_id :: !applied;
        Intent_log.release ilog slot)
  in
  let slot1 = Option.get (Intent_log.begin_record ilog ~tx_id:1) in
  Intent_log.barrier ilog slot1;
  let slot2 = Option.get (Intent_log.begin_record ilog ~tx_id:2) in
  Intent_log.barrier ilog slot2;
  let id1, f1 = Applier.enqueue a ~commit_time:100 ~cost_ns:50.0 ~tx_id:1 ~slot:slot1 ~ranges:[] in
  let id2, f2 = Applier.enqueue a ~commit_time:120 ~cost_ns:50.0 ~tx_id:2 ~slot:slot2 ~ranges:[] in
  Alcotest.(check int) "first finishes at commit+cost" 150 f1;
  (* the second task starts when the first ends (150 > 120) *)
  Alcotest.(check int) "second queues behind first" 200 f2;
  Alcotest.(check int) "virtual now" 200 (Applier.virtual_now a);
  Alcotest.(check int) "nothing applied yet (lazy)" 0 (Applier.applied_through a);
  Applier.sync_through a id1;
  Alcotest.(check (list int)) "only first applied" [ 1 ] (List.rev !applied);
  Alcotest.(check int) "applied through first" id1 (Applier.applied_through a);
  Applier.drain a;
  Alcotest.(check (list int)) "both applied in order" [ 1; 2 ] (List.rev !applied);
  Alcotest.(check int) "applied through second" id2 (Applier.applied_through a);
  Alcotest.(check int) "queue empty" 0 (Applier.queued a)

let test_applier_idle_gap () =
  let ilog = make_ilog () in
  let a =
    Applier.create ~regions:[] ~apply:(fun ~tx_id:_ ~slot ~ranges:_ -> Intent_log.release ilog slot)
  in
  let slot = Option.get (Intent_log.begin_record ilog ~tx_id:1) in
  Intent_log.barrier ilog slot;
  let _, f1 = Applier.enqueue a ~commit_time:100 ~cost_ns:10.0 ~tx_id:1 ~slot ~ranges:[] in
  Alcotest.(check int) "task 1 done at 110" 110 f1;
  (* a task committed much later starts at its commit time, not at 110 *)
  let slot2 = Option.get (Intent_log.begin_record ilog ~tx_id:2) in
  Intent_log.barrier ilog slot2;
  let _, f2 = Applier.enqueue a ~commit_time:5000 ~cost_ns:10.0 ~tx_id:2 ~slot:slot2 ~ranges:[] in
  Alcotest.(check int) "idle gap respected" 5010 f2

let test_applier_drain_one () =
  let ilog = make_ilog () in
  let a =
    Applier.create ~regions:[] ~apply:(fun ~tx_id:_ ~slot ~ranges:_ -> Intent_log.release ilog slot)
  in
  Alcotest.(check (option int)) "drain on empty" None (Applier.drain_one a);
  let slot = Option.get (Intent_log.begin_record ilog ~tx_id:1) in
  let _, f = Applier.enqueue a ~commit_time:0 ~cost_ns:33.0 ~tx_id:1 ~slot ~ranges:[] in
  Alcotest.(check (option int)) "drain_one returns finish" (Some f) (Applier.drain_one a);
  Alcotest.(check int) "slot released back" 8 (Intent_log.free_slots ilog)

(* --- Backup --------------------------------------------------------------- *)

let make_dynamic () =
  let clock = Clock.create () in
  let mk size =
    Region.create ~crash_mode:Region.Drop_unflushed ~rng:(Rng.create 2) ~clock ~size ()
  in
  let main = mk 65536 in
  let slots = mk 16384 in
  let table = mk 8192 in
  (Backup.create_dynamic ~slots ~table ~policy:Backup.Lru_policy, main)

let no_pressure () = ()

let test_backup_roundtrip () =
  let b, main = make_dynamic () in
  Region.write_string main 1000 "versionA";
  Backup.ensure_copy b ~main ~off:1000 ~len:8 ~locked:(fun _ -> false) ~pressure:no_pressure;
  Alcotest.(check bool) "copy exists" true (Backup.has_copy b ~off:1000);
  Alcotest.(check int) "one miss" 1 (Backup.misses b);
  Region.write_string main 1000 "versionB";
  Alcotest.(check bool) "main rolled back" true (Backup.roll_back b ~main ~off:1000 ~len:8);
  Alcotest.(check string) "old version restored" "versionA" (Region.read_string main 1000 8);
  Region.write_string main 1000 "versionC";
  Backup.roll_forward b ~main ~off:1000 ~len:8;
  Region.write_string main 1000 "versionD";
  ignore (Backup.roll_back b ~main ~off:1000 ~len:8);
  Alcotest.(check string) "roll-forwarded version restored" "versionC"
    (Region.read_string main 1000 8)

let test_backup_hit_counting () =
  let b, main = make_dynamic () in
  Backup.ensure_copy b ~main ~off:64 ~len:32 ~locked:(fun _ -> false) ~pressure:no_pressure;
  Backup.ensure_copy b ~main ~off:64 ~len:32 ~locked:(fun _ -> false) ~pressure:no_pressure;
  Alcotest.(check int) "one miss" 1 (Backup.misses b);
  Alcotest.(check int) "one hit" 1 (Backup.hits b);
  Alcotest.(check int) "one resident" 1 (Backup.resident b)

let test_backup_eviction_pressure () =
  let b, main = make_dynamic () in
  (* slots region is 16 KiB; 1 KiB copies force evictions quickly *)
  for i = 0 to 31 do
    Backup.ensure_copy b ~main ~off:(1024 * (i + 1)) ~len:1000 ~locked:(fun _ -> false)
      ~pressure:no_pressure
  done;
  Alcotest.(check bool) "evictions happened" true (Backup.evictions b > 0);
  Alcotest.(check bool) "bounded residency" true (Backup.resident b <= 16);
  (* everything pinned -> pressure callback then failure *)
  let pressured = ref false in
  Alcotest.(check bool) "exhaustion raises when all pinned" true
    (try
       for i = 0 to 31 do
         Backup.ensure_copy b ~main ~off:(65536 - (1024 * (i + 1))) ~len:1000
           ~locked:(fun _ -> true)
           ~pressure:(fun () -> pressured := true)
       done;
       false
     with Failure _ -> true);
  Alcotest.(check bool) "pressure was signalled first" true !pressured

let test_backup_stale_length_replaced () =
  let b, main = make_dynamic () in
  Region.write_string main 2048 "old-size-contents!";
  Backup.ensure_copy b ~main ~off:2048 ~len:8 ~locked:(fun _ -> false) ~pressure:no_pressure;
  (* same offset, different length: the stale copy must be replaced, not
     reused (regression for the rolled-back-allocation corruption) *)
  Backup.ensure_copy b ~main ~off:2048 ~len:18 ~locked:(fun _ -> false) ~pressure:no_pressure;
  Alcotest.(check int) "second ensure was a miss" 2 (Backup.misses b);
  Region.write_string main 2048 "new-size-contents!";
  ignore (Backup.roll_back b ~main ~off:2048 ~len:18);
  Alcotest.(check string) "full-length restore" "old-size-contents!"
    (Region.read_string main 2048 18)

let test_backup_survives_crash () =
  let b, main = make_dynamic () in
  Region.write_string main 512 "precious";
  Region.persist_all main;
  Backup.ensure_copy b ~main ~off:512 ~len:8 ~locked:(fun _ -> false) ~pressure:no_pressure;
  (* crash the backup regions and reopen: mapping and slot content survive *)
  List.iter
    (fun (k, _, _) -> ignore k)
    (Backup.dump_mapping b);
  let b = Backup.reopen b in
  Alcotest.(check bool) "copy survives reopen" true (Backup.has_copy b ~off:512);
  Region.write_string main 512 "clobber!";
  ignore (Backup.roll_back b ~main ~off:512 ~len:8);
  Alcotest.(check string) "content restored after reopen" "precious"
    (Region.read_string main 512 8)

let () =
  Alcotest.run "core_units"
    [
      ( "locks",
        [
          Alcotest.test_case "uncontended" `Quick test_locks_uncontended;
          Alcotest.test_case "writer blocks writer" `Quick test_locks_writer_blocks_writer;
          Alcotest.test_case "reader/writer asymmetry" `Quick
            test_locks_writer_blocks_reader_not_vice_versa;
          Alcotest.test_case "release monotone" `Quick test_locks_release_is_monotone;
          Alcotest.test_case "active tracking" `Quick test_locks_active_tracking;
          Alcotest.test_case "last task" `Quick test_locks_last_task;
        ] );
      ( "applier",
        [
          Alcotest.test_case "timeline" `Quick test_applier_timeline;
          Alcotest.test_case "idle gap" `Quick test_applier_idle_gap;
          Alcotest.test_case "drain one" `Quick test_applier_drain_one;
        ] );
      ( "backup",
        [
          Alcotest.test_case "roundtrip" `Quick test_backup_roundtrip;
          Alcotest.test_case "hit counting" `Quick test_backup_hit_counting;
          Alcotest.test_case "eviction and pressure" `Quick test_backup_eviction_pressure;
          Alcotest.test_case "stale length replaced" `Quick test_backup_stale_length_replaced;
          Alcotest.test_case "survives crash" `Quick test_backup_survives_crash;
        ] );
    ]
