(* White-box unit tests for the core components that the engine composes:
   the lock table's virtual-time semantics, the backup applier's timeline,
   and the backup manager's copy-tracking invariants. *)

module Clock = Kamino_sim.Clock
module Rng = Kamino_sim.Rng
module Region = Kamino_nvm.Region
module Heap = Kamino_heap.Heap
module Locks = Kamino_core.Locks
module Applier = Kamino_core.Applier
module Backup = Kamino_core.Backup
module Intent_log = Kamino_core.Intent_log

(* --- Locks ---------------------------------------------------------------- *)

let test_locks_uncontended () =
  let l = Locks.create () in
  Alcotest.(check int) "free lock acquired now" 105
    (Locks.acquire_write l 1 ~now:100 ~cost_ns:5.0);
  Alcotest.(check int) "read lock too" 205 (Locks.acquire_read l 2 ~now:200 ~cost_ns:5.0);
  Alcotest.(check int) "no waits recorded" 0 (Locks.wait_events l)

let test_locks_writer_blocks_writer () =
  let l = Locks.create () in
  ignore (Locks.acquire_write l 1 ~now:0 ~cost_ns:0.0);
  Locks.release_writes l [ 1 ] ~at:1000;
  Alcotest.(check int) "second writer waits for release" 1000
    (Locks.acquire_write l 1 ~now:300 ~cost_ns:0.0);
  Alcotest.(check int) "one wait event" 1 (Locks.wait_events l);
  Alcotest.(check int) "wait time recorded" 700 (Locks.waits l)

let test_locks_writer_blocks_reader_not_vice_versa () =
  let l = Locks.create () in
  ignore (Locks.acquire_write l 1 ~now:0 ~cost_ns:0.0);
  Locks.release_writes l [ 1 ] ~at:1000;
  Alcotest.(check int) "reader waits for writer" 1000
    (Locks.acquire_read l 1 ~now:100 ~cost_ns:0.0);
  Locks.release_reads l [ 1 ] ~at:2000;
  (* a later reader does NOT wait for the earlier reader *)
  Alcotest.(check int) "reader does not wait for reader" 1500
    (Locks.acquire_read l 1 ~now:1500 ~cost_ns:0.0);
  (* but a writer waits for the reader *)
  Alcotest.(check int) "writer waits for readers" 2000
    (Locks.acquire_write l 1 ~now:1200 ~cost_ns:0.0)

let test_locks_release_is_monotone () =
  let l = Locks.create () in
  ignore (Locks.acquire_write l 1 ~now:0 ~cost_ns:0.0);
  Locks.release_writes l [ 1 ] ~at:1000;
  (* an earlier release time must not pull the lock backwards *)
  Locks.release_writes l [ 1 ] ~at:500;
  Alcotest.(check int) "max of release times wins" 1000
    (Locks.acquire_write l 1 ~now:0 ~cost_ns:0.0)

let test_locks_active_tracking () =
  let l = Locks.create () in
  ignore (Locks.acquire_write l 7 ~now:0 ~cost_ns:0.0);
  Alcotest.(check bool) "held while active" true (Locks.held_by_active_tx l 7);
  Locks.release_writes l [ 7 ] ~at:10;
  Alcotest.(check bool) "released" false (Locks.held_by_active_tx l 7);
  Alcotest.(check bool) "unknown key not held" false (Locks.held_by_active_tx l 99)

let test_locks_last_task () =
  let l = Locks.create () in
  Alcotest.(check int) "no task yet" (-1) (Locks.last_writer_task l 3);
  Locks.set_last_writer_task l 3 42;
  Alcotest.(check int) "task recorded" 42 (Locks.last_writer_task l 3)

let test_locks_striping () =
  Alcotest.(check int) "default stripe count" 16 (Locks.shard_count (Locks.create ()));
  Alcotest.(check int) "custom stripe count" 4
    (Locks.shard_count (Locks.create ~shards:4 ()));
  Alcotest.(check int) "degenerate request clamps to one shard" 1
    (Locks.shard_count (Locks.create ~shards:0 ()));
  (* semantics are shard-invariant: replay the same script against 1-shard
     and 16-shard tables and compare every acquire result *)
  let script =
    List.init 200 (fun i -> ((i * 7919) mod 4096, i mod 3, 100 * i))
  in
  let run shards =
    let l = Locks.create ~shards () in
    List.map
      (fun (key, op, now) ->
        match op with
        | 0 -> Locks.acquire_write l key ~now ~cost_ns:5.0
        | 1 -> Locks.acquire_read l key ~now ~cost_ns:5.0
        | _ ->
            Locks.release_writes l [ key ] ~at:(now + 50);
            0)
      script
  in
  Alcotest.(check (list int)) "one shard agrees with sixteen" (run 1) (run 16)

(* --- Applier -------------------------------------------------------------- *)

let make_ilog () =
  let clock = Clock.create () in
  let size = Intent_log.required_size ~max_user_threads:4 ~max_tx_entries:8 ~n_slots:8 in
  let r =
    Region.create ~crash_mode:Region.Drop_unflushed ~rng:(Rng.create 1) ~clock ~size ()
  in
  Intent_log.format r ~max_user_threads:4 ~max_tx_entries:8 ~n_slots:8

let test_applier_timeline () =
  let ilog = make_ilog () in
  let applied = ref [] in
  let a =
    Applier.create ~regions:[||]
      ~apply:(fun tasks ->
        List.iter
          (fun task ->
            applied := task.Applier.tx_id :: !applied;
            Intent_log.release ilog task.Applier.slot)
          tasks)
  in
  let slot1 = Option.get (Intent_log.begin_record ilog ~tx_id:1) in
  Intent_log.barrier ilog slot1;
  let slot2 = Option.get (Intent_log.begin_record ilog ~tx_id:2) in
  Intent_log.barrier ilog slot2;
  let id1, f1 = Applier.enqueue a ~commit_time:100 ~cost_ns:50.0 ~tx_id:1 ~slot:slot1 ~ranges:[] in
  let id2, f2 = Applier.enqueue a ~commit_time:120 ~cost_ns:50.0 ~tx_id:2 ~slot:slot2 ~ranges:[] in
  Alcotest.(check int) "first finishes at commit+cost" 150 f1;
  (* the second task starts when the first ends (150 > 120) *)
  Alcotest.(check int) "second queues behind first" 200 f2;
  Alcotest.(check int) "virtual now" 200 (Applier.virtual_now a);
  Alcotest.(check int) "nothing applied yet (lazy)" 0 (Applier.applied_through a);
  Applier.sync_through a id1;
  Alcotest.(check (list int)) "only first applied" [ 1 ] (List.rev !applied);
  Alcotest.(check int) "applied through first" id1 (Applier.applied_through a);
  Applier.drain a;
  Alcotest.(check (list int)) "both applied in order" [ 1; 2 ] (List.rev !applied);
  Alcotest.(check int) "applied through second" id2 (Applier.applied_through a);
  Alcotest.(check int) "queue empty" 0 (Applier.queued a)

let test_applier_idle_gap () =
  let ilog = make_ilog () in
  let a =
    Applier.create ~regions:[||]
      ~apply:(fun tasks ->
        List.iter (fun task -> Intent_log.release ilog task.Applier.slot) tasks)
  in
  let slot = Option.get (Intent_log.begin_record ilog ~tx_id:1) in
  Intent_log.barrier ilog slot;
  let _, f1 = Applier.enqueue a ~commit_time:100 ~cost_ns:10.0 ~tx_id:1 ~slot ~ranges:[] in
  Alcotest.(check int) "task 1 done at 110" 110 f1;
  (* a task committed much later starts at its commit time, not at 110 *)
  let slot2 = Option.get (Intent_log.begin_record ilog ~tx_id:2) in
  Intent_log.barrier ilog slot2;
  let _, f2 = Applier.enqueue a ~commit_time:5000 ~cost_ns:10.0 ~tx_id:2 ~slot:slot2 ~ranges:[] in
  Alcotest.(check int) "idle gap respected" 5010 f2

let test_applier_drain_one () =
  let ilog = make_ilog () in
  let a =
    Applier.create ~regions:[||]
      ~apply:(fun tasks ->
        List.iter (fun task -> Intent_log.release ilog task.Applier.slot) tasks)
  in
  Alcotest.(check (option int)) "drain on empty" None (Applier.drain_one a);
  let slot = Option.get (Intent_log.begin_record ilog ~tx_id:1) in
  let _, f = Applier.enqueue a ~commit_time:0 ~cost_ns:33.0 ~tx_id:1 ~slot ~ranges:[] in
  Alcotest.(check (option int)) "drain_one returns finish" (Some f) (Applier.drain_one a);
  Alcotest.(check int) "slot released back" 8 (Intent_log.free_slots ilog)

let test_applier_batching () =
  let ilog = make_ilog () in
  let batches = ref [] in
  let a =
    Applier.create ~regions:[||]
      ~apply:(fun tasks ->
        batches := List.map (fun task -> task.Applier.tx_id) tasks :: !batches;
        List.iter (fun task -> Intent_log.release ilog task.Applier.slot) tasks)
  in
  let enqueue tx_id =
    let slot = Option.get (Intent_log.begin_record ilog ~tx_id) in
    Intent_log.barrier ilog slot;
    ignore (Applier.enqueue a ~commit_time:0 ~cost_ns:10.0 ~tx_id ~slot ~ranges:[])
  in
  List.iter enqueue [ 1; 2; 3 ];
  Applier.drain a;
  Alcotest.(check (list (list int))) "one batch of three, in order" [ [ 1; 2; 3 ] ]
    (List.rev !batches);
  Alcotest.(check int) "batched tasks counted" 3 (Applier.tasks_batched a);
  Alcotest.(check int) "all applied" 3 (Applier.tasks_applied a);
  (* a single queued task drains as a batch of one and is not "batched" *)
  enqueue 4;
  Applier.drain a;
  Alcotest.(check (list (list int))) "singleton batch" [ [ 1; 2; 3 ]; [ 4 ] ]
    (List.rev !batches);
  Alcotest.(check int) "singleton not counted as batched" 3 (Applier.tasks_batched a);
  (* sync_through batches only the covered prefix *)
  enqueue 5;
  enqueue 6;
  enqueue 7;
  Applier.sync_through a (Applier.applied_through a + 2);
  Alcotest.(check (list (list int))) "prefix batch" [ [ 1; 2; 3 ]; [ 4 ]; [ 5; 6 ] ]
    (List.rev !batches);
  Applier.drain a

(* --- Backup --------------------------------------------------------------- *)

let make_dynamic ?(policy = Backup.Lru_policy) ?(slots_bytes = 16384) () =
  let clock = Clock.create () in
  let mk size =
    Region.create ~crash_mode:Region.Drop_unflushed ~rng:(Rng.create 2) ~clock ~size ()
  in
  let main = mk 65536 in
  let slots = mk slots_bytes in
  let table = mk 8192 in
  (Backup.create_dynamic ~slots ~table ~capacity:(Region.size table / 32) ~policy, main)

let no_pressure () = ()

let test_backup_roundtrip () =
  let b, main = make_dynamic () in
  Region.write_string main 1000 "versionA";
  Backup.ensure_copy b ~main ~off:1000 ~len:8 ~locked:(fun _ -> false) ~pressure:no_pressure;
  Alcotest.(check bool) "copy exists" true (Backup.has_copy b ~off:1000);
  Alcotest.(check int) "one miss" 1 (Backup.misses b);
  Region.write_string main 1000 "versionB";
  Alcotest.(check bool) "main rolled back" true (Backup.roll_back b ~main ~off:1000 ~len:8);
  Alcotest.(check string) "old version restored" "versionA" (Region.read_string main 1000 8);
  Region.write_string main 1000 "versionC";
  Backup.roll_forward b ~main ~off:1000 ~len:8;
  Region.write_string main 1000 "versionD";
  ignore (Backup.roll_back b ~main ~off:1000 ~len:8);
  Alcotest.(check string) "roll-forwarded version restored" "versionC"
    (Region.read_string main 1000 8)

let test_backup_hit_counting () =
  let b, main = make_dynamic () in
  Backup.ensure_copy b ~main ~off:64 ~len:32 ~locked:(fun _ -> false) ~pressure:no_pressure;
  Backup.ensure_copy b ~main ~off:64 ~len:32 ~locked:(fun _ -> false) ~pressure:no_pressure;
  Alcotest.(check int) "one miss" 1 (Backup.misses b);
  Alcotest.(check int) "one hit" 1 (Backup.hits b);
  Alcotest.(check int) "one resident" 1 (Backup.resident b)

let test_backup_eviction_pressure () =
  let b, main = make_dynamic () in
  (* slots region is 16 KiB; 1 KiB copies force evictions quickly *)
  for i = 0 to 31 do
    Backup.ensure_copy b ~main ~off:(1024 * (i + 1)) ~len:1000 ~locked:(fun _ -> false)
      ~pressure:no_pressure
  done;
  Alcotest.(check bool) "evictions happened" true (Backup.evictions b > 0);
  Alcotest.(check bool) "bounded residency" true (Backup.resident b <= 16);
  (* everything pinned -> pressure callback then failure *)
  let pressured = ref false in
  Alcotest.(check bool) "exhaustion raises when all pinned" true
    (try
       for i = 0 to 31 do
         Backup.ensure_copy b ~main ~off:(65536 - (1024 * (i + 1))) ~len:1000
           ~locked:(fun _ -> true)
           ~pressure:(fun () -> pressured := true)
       done;
       false
     with Failure _ -> true);
  Alcotest.(check bool) "pressure was signalled first" true !pressured

let test_backup_stale_length_replaced () =
  let b, main = make_dynamic () in
  Region.write_string main 2048 "old-size-contents!";
  Backup.ensure_copy b ~main ~off:2048 ~len:8 ~locked:(fun _ -> false) ~pressure:no_pressure;
  (* same offset, different length: the stale copy must be replaced, not
     reused (regression for the rolled-back-allocation corruption) *)
  Backup.ensure_copy b ~main ~off:2048 ~len:18 ~locked:(fun _ -> false) ~pressure:no_pressure;
  Alcotest.(check int) "second ensure was a miss" 2 (Backup.misses b);
  Region.write_string main 2048 "new-size-contents!";
  ignore (Backup.roll_back b ~main ~off:2048 ~len:18);
  Alcotest.(check string) "full-length restore" "old-size-contents!"
    (Region.read_string main 2048 18)

(* --- Eviction-policy properties ------------------------------------------- *)

(* A slots region of the minimum formattable size (data start 256 + 4096)
   holds exactly three 1024-byte copies (16-byte header + 1024 capacity per
   extent), so the fourth insertion must evict. *)
let tight_slots_bytes = 4352
let copy_len = 1000 (* class 1024 *)
let tight_capacity = 3

let offs_of_keys keys = List.map (fun k -> 1024 * k) keys

(* Random insertion storm with a pinned subset. Whatever the policy and the
   insertion/reinsertion order, a pinned resident copy must never be evicted
   as long as the pinned set itself fits in the slots region. *)
let pinned_never_evicted_qcheck policy name =
  QCheck.Test.make ~name ~count:200
    QCheck.(small_list (int_bound 15))
    (fun keys ->
      let b, main = make_dynamic ~policy ~slots_bytes:tight_slots_bytes () in
      (* Pin the first two distinct keys touched; everything else is fair
         game for eviction. *)
      let pinned = ref [] in
      let locked off = List.mem off !pinned in
      List.iter
        (fun key ->
          let off = 1024 * (key + 1) in
          if List.length !pinned < tight_capacity - 1
             && not (List.mem off !pinned)
          then pinned := off :: !pinned;
          Backup.ensure_copy b ~main ~off ~len:copy_len ~locked
            ~pressure:(fun () -> ()))
        keys;
      List.for_all (fun off -> Backup.has_copy b ~off) !pinned
      && Backup.resident b <= tight_capacity)

(* [ensure_copy] must raise only when the pinned working set genuinely
   exceeds the slots capacity — and must signal [pressure] first. With
   [n] distinct pinned keys the storm succeeds iff [n <= capacity]. *)
let exhaustion_iff_oversubscribed_qcheck policy name =
  QCheck.Test.make ~name ~count:100
    QCheck.(int_bound 5)
    (fun n ->
      let b, main = make_dynamic ~policy ~slots_bytes:tight_slots_bytes () in
      let offs = offs_of_keys (List.init n (fun i -> i + 1)) in
      let locked off = List.mem off offs in
      let pressured = ref false in
      let raised =
        try
          List.iter
            (fun off ->
              Backup.ensure_copy b ~main ~off ~len:copy_len ~locked
                ~pressure:(fun () -> pressured := true))
            offs;
          false
        with Failure _ -> true
      in
      if n <= tight_capacity then (not raised) && not !pressured
      else raised && !pressured)

(* The observable LRU/FIFO distinction: fill to capacity with A, B, C,
   re-touch A, then insert D. LRU evicts B (least recently used); FIFO
   ignores the re-touch and evicts A (first in). *)
let test_backup_policy_victim () =
  let victim policy =
    let b, main = make_dynamic ~policy ~slots_bytes:tight_slots_bytes () in
    let ensure off =
      Backup.ensure_copy b ~main ~off ~len:copy_len ~locked:(fun _ -> false)
        ~pressure:no_pressure
    in
    let a, bk, c, d = (1024, 2048, 3072, 4096) in
    ensure a; ensure bk; ensure c;
    Alcotest.(check int) "filled to capacity" tight_capacity (Backup.resident b);
    ensure a; (* hit: refreshes recency under LRU, a no-op under FIFO *)
    ensure d;
    Alcotest.(check int) "one eviction" 1 (Backup.evictions b);
    List.filter (fun off -> not (Backup.has_copy b ~off)) [ a; bk; c; d ]
  in
  Alcotest.(check (list int)) "LRU evicts the stale key" [ 2048 ]
    (victim Backup.Lru_policy);
  Alcotest.(check (list int)) "FIFO evicts the oldest insertion" [ 1024 ]
    (victim Backup.Fifo_policy)

let test_backup_survives_crash () =
  let b, main = make_dynamic () in
  Region.write_string main 512 "precious";
  Region.persist_all main;
  Backup.ensure_copy b ~main ~off:512 ~len:8 ~locked:(fun _ -> false) ~pressure:no_pressure;
  (* crash the backup regions and reopen: mapping and slot content survive *)
  List.iter
    (fun (k, _, _) -> ignore k)
    (Backup.dump_mapping b);
  let b = Backup.reopen b in
  Alcotest.(check bool) "copy survives reopen" true (Backup.has_copy b ~off:512);
  Region.write_string main 512 "clobber!";
  ignore (Backup.roll_back b ~main ~off:512 ~len:8);
  Alcotest.(check string) "content restored after reopen" "precious"
    (Region.read_string main 512 8)

let () =
  Alcotest.run "core_units"
    [
      ( "locks",
        [
          Alcotest.test_case "uncontended" `Quick test_locks_uncontended;
          Alcotest.test_case "writer blocks writer" `Quick test_locks_writer_blocks_writer;
          Alcotest.test_case "reader/writer asymmetry" `Quick
            test_locks_writer_blocks_reader_not_vice_versa;
          Alcotest.test_case "release monotone" `Quick test_locks_release_is_monotone;
          Alcotest.test_case "active tracking" `Quick test_locks_active_tracking;
          Alcotest.test_case "last task" `Quick test_locks_last_task;
          Alcotest.test_case "striping is transparent" `Quick test_locks_striping;
        ] );
      ( "applier",
        [
          Alcotest.test_case "timeline" `Quick test_applier_timeline;
          Alcotest.test_case "idle gap" `Quick test_applier_idle_gap;
          Alcotest.test_case "drain one" `Quick test_applier_drain_one;
          Alcotest.test_case "batched drain" `Quick test_applier_batching;
        ] );
      ( "backup",
        [
          Alcotest.test_case "roundtrip" `Quick test_backup_roundtrip;
          Alcotest.test_case "hit counting" `Quick test_backup_hit_counting;
          Alcotest.test_case "eviction and pressure" `Quick test_backup_eviction_pressure;
          Alcotest.test_case "stale length replaced" `Quick test_backup_stale_length_replaced;
          Alcotest.test_case "survives crash" `Quick test_backup_survives_crash;
        ] );
      ( "eviction policy",
        [
          QCheck_alcotest.to_alcotest
            (pinned_never_evicted_qcheck Backup.Lru_policy
               "LRU: pinned copies survive eviction storms");
          QCheck_alcotest.to_alcotest
            (pinned_never_evicted_qcheck Backup.Fifo_policy
               "FIFO: pinned copies survive eviction storms");
          QCheck_alcotest.to_alcotest
            (exhaustion_iff_oversubscribed_qcheck Backup.Lru_policy
               "LRU: raises iff pinned set exceeds capacity, pressure first");
          QCheck_alcotest.to_alcotest
            (exhaustion_iff_oversubscribed_qcheck Backup.Fifo_policy
               "FIFO: raises iff pinned set exceeds capacity, pressure first");
          Alcotest.test_case "LRU vs FIFO victim" `Quick test_backup_policy_victim;
        ] );
    ]
