(* Property coverage for the Vyukov bounded ring behind the shard
   router's cross-domain mailbox: capacity rounding, full-ring push
   refusal, wrap-around reuse of cells, and FIFO agreement with a model
   queue under randomized send/recv interleavings. Single-domain here —
   the cross-domain paths are exercised by the router tests; these pin
   the ring arithmetic itself. *)

module Mailbox = Kamino_shard.Mailbox

let test_capacity_rounding () =
  List.iter
    (fun (want, got) ->
      Alcotest.(check int)
        (Printf.sprintf "capacity %d rounds to %d" want got)
        got
        (Mailbox.capacity (Mailbox.create ~capacity:want)))
    [ (1, 2); (2, 2); (3, 4); (5, 8); (8, 8); (9, 16); (100, 128) ];
  Alcotest.check_raises "zero capacity rejected"
    (Invalid_argument "Mailbox.create: capacity must be positive") (fun () ->
      ignore (Mailbox.create ~capacity:0))

let test_full_ring_refuses () =
  let t = Mailbox.create ~capacity:4 in
  for i = 0 to 3 do
    Alcotest.(check bool) (Printf.sprintf "send %d accepted" i) true
      (Mailbox.try_send t i)
  done;
  Alcotest.(check bool) "full ring refuses" false (Mailbox.try_send t 99);
  (* One slot drains, exactly one send fits again. *)
  Alcotest.(check (option int)) "oldest out first" (Some 0) (Mailbox.try_recv t);
  Alcotest.(check bool) "freed slot accepts" true (Mailbox.try_send t 4);
  Alcotest.(check bool) "and is full again" false (Mailbox.try_send t 5)

(* Drive the ring through many times its capacity so every cell's
   sequence wraps repeatedly; FIFO order must hold throughout. The
   occupancy oscillates between full and empty on a period coprime with
   the capacity, so the wrap point lands on every cell. *)
let test_wraparound_reuse () =
  let t = Mailbox.create ~capacity:4 in
  let next_out = ref 0 in
  let occ = ref 0 in
  for i = 0 to 999 do
    Alcotest.(check bool) "send accepted" true (Mailbox.try_send t i);
    incr occ;
    let drain = if !occ >= Mailbox.capacity t then !occ else i mod 3 in
    for _ = 1 to drain do
      Alcotest.(check (option int)) "FIFO across wrap" (Some !next_out)
        (Mailbox.try_recv t);
      incr next_out;
      decr occ
    done
  done;
  let rec drain () =
    match Mailbox.try_recv t with
    | Some v ->
        Alcotest.(check int) "drain order" !next_out v;
        incr next_out;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check int) "every message came out exactly once" 1000 !next_out

(* QCheck: any interleaving of sends and recvs agrees with a model Queue
   bounded at the ring's rounded capacity — same accept/refuse decisions,
   same values, same final residue. *)
let fifo_model_prop =
  QCheck.Test.make ~name:"mailbox agrees with a bounded model queue" ~count:500
    QCheck.(
      pair (int_range 1 9)
        (small_list (pair bool (int_range 0 1000))))
    (fun (capacity, script) ->
      (* QCheck's int shrinker can step outside the declared range. *)
      let capacity = max 1 capacity in
      let t = Mailbox.create ~capacity in
      let cap = Mailbox.capacity t in
      let model = Queue.create () in
      List.for_all
        (fun (is_send, v) ->
          if is_send then begin
            let accepted = Mailbox.try_send t v in
            let model_accepts = Queue.length model < cap in
            if model_accepts then Queue.add v model;
            accepted = model_accepts
          end
          else
            match (Mailbox.try_recv t, Queue.take_opt model) with
            | Some a, Some b -> a = b
            | None, None -> true
            | _ -> false)
        script
      &&
      (* Residues match element-for-element. *)
      let rec residue () =
        match (Mailbox.try_recv t, Queue.take_opt model) with
        | Some a, Some b -> a = b && residue ()
        | None, None -> true
        | _ -> false
      in
      residue ())

let () =
  Alcotest.run "mailbox"
    [
      ( "ring",
        [
          Alcotest.test_case "capacity rounds to a power of two" `Quick
            test_capacity_rounding;
          Alcotest.test_case "full ring refuses sends" `Quick test_full_ring_refuses;
          Alcotest.test_case "wrap-around reuses cells in FIFO order" `Quick
            test_wraparound_reuse;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest fifo_model_prop ]);
    ]
