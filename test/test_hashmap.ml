(* Tests for the transactional persistent hash map: model-based behaviour,
   chain integrity, transactional atomicity, and crash recovery. *)

module Engine = Kamino_core.Engine
module Backup = Kamino_core.Backup
module Heap = Kamino_heap.Heap
module Hashmap = Kamino_index.Hashmap
module Rng = Kamino_sim.Rng

let config =
  {
    Engine.default_config with
    Engine.heap_bytes = 4 lsl 20;
    log_slots = 32;
    data_log_bytes = 1 lsl 20;
  }

let make ?(kind = Engine.Kamino_simple) ?(buckets = 256) () =
  let e = Engine.create ~config ~kind ~seed:77 () in
  let h =
    Engine.with_tx e (fun tx ->
        let h = Hashmap.create tx ~buckets in
        Engine.set_root tx (Hashmap.descriptor h);
        h)
  in
  (e, h)

let check_valid h ctx =
  match Hashmap.validate h with Ok () -> () | Error e -> Alcotest.failf "%s: %s" ctx e

let test_basic () =
  let e, h = make () in
  Engine.with_tx e (fun tx ->
      Alcotest.(check (option int)) "fresh insert" None (Hashmap.insert tx h 1 100);
      Alcotest.(check (option int)) "second key" None (Hashmap.insert tx h 2 200));
  Alcotest.(check (option int)) "find 1" (Some 100) (Hashmap.find h 1);
  Alcotest.(check (option int)) "find 2" (Some 200) (Hashmap.find h 2);
  Alcotest.(check (option int)) "absent" None (Hashmap.find h 3);
  Alcotest.(check int) "cardinal" 2 (Hashmap.cardinal h);
  Engine.with_tx e (fun tx ->
      Alcotest.(check (option int)) "replace returns old" (Some 100) (Hashmap.insert tx h 1 111));
  Alcotest.(check (option int)) "replaced" (Some 111) (Hashmap.find h 1);
  Alcotest.(check int) "no double count" 2 (Hashmap.cardinal h);
  check_valid h "basic"

let test_remove () =
  let e, h = make () in
  Engine.with_tx e (fun tx ->
      for k = 1 to 10 do
        ignore (Hashmap.insert tx h k (k * 10))
      done);
  Engine.with_tx e (fun tx ->
      Alcotest.(check (option int)) "remove present" (Some 50) (Hashmap.remove tx h 5);
      Alcotest.(check (option int)) "remove absent" None (Hashmap.remove tx h 5));
  Alcotest.(check (option int)) "gone" None (Hashmap.find h 5);
  Alcotest.(check int) "cardinal" 9 (Hashmap.cardinal h);
  check_valid h "after remove";
  Alcotest.(check bool) "heap valid (entry freed)" true
    (Heap.validate (Engine.heap e) = Ok ())

let test_collisions () =
  (* 256 buckets, 2000 keys: chains must work and stay consistent. *)
  let e, h = make ~buckets:256 () in
  for k = 0 to 1999 do
    Engine.with_tx e (fun tx -> ignore (Hashmap.insert tx h k k))
  done;
  Alcotest.(check int) "all inserted" 2000 (Hashmap.cardinal h);
  Alcotest.(check bool) "chains formed" true (Hashmap.max_chain h > 1);
  for k = 0 to 1999 do
    if Hashmap.find h k <> Some k then Alcotest.failf "key %d lost in chains" k
  done;
  (* delete every third key, including chain heads and middles *)
  for k = 0 to 1999 do
    if k mod 3 = 0 then Engine.with_tx e (fun tx -> ignore (Hashmap.remove tx h k))
  done;
  check_valid h "after chained removals";
  for k = 0 to 1999 do
    let expect = if k mod 3 = 0 then None else Some k in
    if Hashmap.find h k <> expect then Alcotest.failf "key %d wrong after removals" k
  done

let test_find_tx_sees_own_writes () =
  let e, h = make () in
  Engine.with_tx e (fun tx ->
      ignore (Hashmap.insert tx h 9 900);
      Alcotest.(check (option int)) "visible in tx" (Some 900) (Hashmap.find_tx tx h 9))

let test_abort_atomicity () =
  List.iter
    (fun kind ->
      let name = Engine.kind_name kind in
      let e, h = make ~kind () in
      Engine.with_tx e (fun tx ->
          for k = 1 to 20 do
            ignore (Hashmap.insert tx h k k)
          done);
      let tx = Engine.begin_tx e in
      ignore (Hashmap.insert tx h 100 100);
      ignore (Hashmap.remove tx h 7);
      ignore (Hashmap.insert tx h 7 777);
      Engine.abort tx;
      Alcotest.(check (option int)) (name ^ ": inserted key gone") None (Hashmap.find h 100);
      Alcotest.(check (option int)) (name ^ ": removed key restored") (Some 7)
        (Hashmap.find h 7);
      Alcotest.(check int) (name ^ ": cardinal restored") 20 (Hashmap.cardinal h);
      check_valid h (name ^ " after abort"))
    [ Engine.Undo_logging; Engine.Cow; Engine.Kamino_simple ]

let test_crash_recovery () =
  List.iter
    (fun kind ->
      let name = Engine.kind_name kind in
      let e, h = make ~kind () in
      let h = ref h in
      let rng = Rng.create 13 in
      let module M = Map.Make (Int) in
      let model = ref M.empty in
      for round = 1 to 400 do
        let k = Rng.int rng 80 in
        (match Rng.int rng 3 with
        | 0 ->
            Engine.with_tx e (fun tx -> ignore (Hashmap.insert tx !h k round));
            model := M.add k round !model
        | 1 ->
            Engine.with_tx e (fun tx -> ignore (Hashmap.remove tx !h k));
            model := M.remove k !model
        | _ ->
            Alcotest.(check (option int))
              (Printf.sprintf "%s lookup %d" name k)
              (M.find_opt k !model) (Hashmap.find !h k));
        if round mod 80 = 0 then begin
          Engine.crash e;
          Engine.recover e;
          h := Hashmap.attach e (Engine.root e);
          check_valid !h (Printf.sprintf "%s after crash %d" name round)
        end
      done;
      Alcotest.(check int) (name ^ ": final cardinal") (M.cardinal !model)
        (Hashmap.cardinal !h);
      M.iter
        (fun k v ->
          Alcotest.(check (option int))
            (Printf.sprintf "%s final %d" name k)
            (Some v) (Hashmap.find !h k))
        !model)
    [
      Engine.Undo_logging;
      Engine.Kamino_simple;
      Engine.Kamino_dynamic { alpha = 0.4; policy = Backup.Lru_policy };
    ]

let model_qcheck =
  QCheck.Test.make ~name:"hashmap matches Map model" ~count:40
    QCheck.(small_list (pair (int_range 0 300) (option small_int)))
    (fun ops ->
      let e, h = make ~buckets:256 () in
      let module M = Map.Make (Int) in
      let model = ref M.empty in
      List.iter
        (fun (k, v) ->
          match v with
          | Some v ->
              Engine.with_tx e (fun tx -> ignore (Hashmap.insert tx h k v));
              model := M.add k v !model
          | None ->
              Engine.with_tx e (fun tx -> ignore (Hashmap.remove tx h k));
              model := M.remove k !model)
        ops;
      Hashmap.validate h = Ok ()
      && Hashmap.cardinal h = M.cardinal !model
      && M.for_all (fun k v -> Hashmap.find h k = Some v) !model)

let test_iter_complete () =
  let e, h = make () in
  Engine.with_tx e (fun tx ->
      for k = 1 to 50 do
        ignore (Hashmap.insert tx h k (k * 2))
      done);
  let seen = ref [] in
  Hashmap.iter h (fun k v ->
      Alcotest.(check int) "value" (k * 2) v;
      seen := k :: !seen);
  Alcotest.(check (list int)) "all keys visited" (List.init 50 (fun i -> i + 1))
    (List.sort compare !seen)

let () =
  Alcotest.run "hashmap"
    [
      ( "operations",
        [
          Alcotest.test_case "basic" `Quick test_basic;
          Alcotest.test_case "remove" `Quick test_remove;
          Alcotest.test_case "collision chains" `Quick test_collisions;
          Alcotest.test_case "find_tx" `Quick test_find_tx_sees_own_writes;
          Alcotest.test_case "iter" `Quick test_iter_complete;
        ] );
      ( "atomicity",
        [
          Alcotest.test_case "abort" `Quick test_abort_atomicity;
          Alcotest.test_case "crash recovery" `Quick test_crash_recovery;
          QCheck_alcotest.to_alcotest model_qcheck;
        ] );
    ]
