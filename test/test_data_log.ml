(* Tests for the data log (undo / CoW arena): snapshots, payload access,
   replay directions, and torn-record recovery. *)

module Rng = Kamino_sim.Rng
module Clock = Kamino_sim.Clock
module Region = Kamino_nvm.Region
module Dlog = Kamino_core.Data_log

let make_pair ?(crash_mode = Region.Words_survive_randomly) ?(seed = 1) () =
  let clock = Clock.create () in
  let mk size = Region.create ~crash_mode ~rng:(Rng.create seed) ~clock ~size () in
  let main = mk 65536 in
  let log_region = mk (Dlog.required_size ~arena_bytes:32768) in
  (Dlog.format log_region, main, log_region)

let test_snapshot_roundtrip () =
  let log, main, _ = make_pair () in
  Region.write_string main 100 "original!";
  Dlog.begin_tx log ~tx_id:1;
  let e = Dlog.add log ~off:100 ~len:9 ~replay:Dlog.On_abort ~src:main in
  Region.write_string main 100 "clobbered";
  Dlog.apply_entry log e ~dst:main;
  Alcotest.(check string) "snapshot restores" "original!" (Region.read_string main 100 9);
  Dlog.finish log;
  Alcotest.(check bool) "idle after finish" true (Dlog.phase log = Dlog.Idle)

let test_payload_access () =
  let log, main, _ = make_pair () in
  Region.write_int64 main 256 111L;
  Dlog.begin_tx log ~tx_id:1;
  let e = Dlog.add log ~off:256 ~len:64 ~replay:Dlog.On_commit ~src:main in
  Alcotest.(check int64) "copy holds original" 111L (Dlog.payload_read_int64 log e 0);
  Dlog.payload_write_int64 log e 0 222L;
  Alcotest.(check int64) "copy updated" 222L (Dlog.payload_read_int64 log e 0);
  Alcotest.(check int64) "main untouched" 111L (Region.read_int64 main 256);
  Dlog.payload_write_bytes log e 8 (Bytes.of_string "abc");
  Alcotest.(check bytes) "bytes io" (Bytes.of_string "abc") (Dlog.payload_read_bytes log e 8 3);
  Dlog.apply_entry log e ~dst:main;
  Alcotest.(check int64) "applied to main" 222L (Region.read_int64 main 256);
  Dlog.finish log

let test_payload_bounds () =
  let log, main, _ = make_pair () in
  Dlog.begin_tx log ~tx_id:1;
  let e = Dlog.add log ~off:0 ~len:16 ~replay:Dlog.On_commit ~src:main in
  Alcotest.(check bool) "oob write rejected" true
    (try
       Dlog.payload_write_int64 log e 12 0L;
       false
     with Invalid_argument _ -> true);
  Dlog.finish log

let test_double_begin_rejected () =
  let log, _, _ = make_pair () in
  Dlog.begin_tx log ~tx_id:1;
  Alcotest.(check bool) "double begin raises" true
    (try
       Dlog.begin_tx log ~tx_id:2;
       false
     with Failure _ -> true)

let test_recovery_running_entries () =
  (* Every [add] persists its snapshot eagerly (NVML semantics), so both
     entries survive the crash of a Running transaction. *)
  let log, main, lr = make_pair ~crash_mode:Region.Drop_unflushed () in
  Region.write_string main 100 "aaaa";
  Region.persist_all main;
  Dlog.begin_tx log ~tx_id:3;
  ignore (Dlog.add log ~off:100 ~len:4 ~replay:Dlog.On_abort ~src:main);
  ignore (Dlog.add log ~off:200 ~len:4 ~replay:Dlog.On_abort ~src:main);
  Region.crash lr;
  let log' = Dlog.open_existing lr in
  Alcotest.(check bool) "phase running" true (Dlog.phase log' = Dlog.Running);
  Alcotest.(check int) "tx id recovered" 3 (Dlog.tx_id log');
  let entries = Dlog.recover_entries log' in
  Alcotest.(check (list int)) "both persisted entries recovered" [ 100; 200 ]
    (List.map (fun e -> e.Dlog.off) entries)

let test_recovery_applying_phase () =
  let log, main, lr = make_pair ~crash_mode:Region.Drop_unflushed () in
  Region.write_string main 64 "old-value";
  Region.persist_all main;
  Dlog.begin_tx log ~tx_id:4;
  let e = Dlog.add log ~off:64 ~len:9 ~replay:Dlog.On_commit ~src:main in
  Dlog.payload_write_bytes log e 0 (Bytes.of_string "new-value");
  Dlog.reseal log e;
  Dlog.barrier log;
  Dlog.mark_applying log;
  (* crash before the copies reach main *)
  Region.crash lr;
  Region.crash main;
  let log' = Dlog.open_existing lr in
  Alcotest.(check bool) "phase applying" true (Dlog.phase log' = Dlog.Applying);
  let entries = Dlog.recover_entries log' in
  Alcotest.(check int) "entry recovered" 1 (List.length entries);
  List.iter
    (fun e ->
      Dlog.apply_entry log' e ~dst:main;
      Region.persist main e.Dlog.off e.Dlog.len)
    entries;
  Alcotest.(check string) "redo applied" "new-value" (Region.read_string main 64 9)

let test_replay_flags_persisted () =
  let log, main, lr = make_pair ~crash_mode:Region.Drop_unflushed () in
  Dlog.begin_tx log ~tx_id:5;
  ignore (Dlog.add log ~off:0 ~len:8 ~replay:Dlog.On_abort ~src:main);
  ignore (Dlog.add log ~off:8 ~len:8 ~replay:Dlog.On_commit ~src:main);
  Dlog.barrier log;
  Region.crash lr;
  let log' = Dlog.open_existing lr in
  let flags = List.map (fun e -> e.Dlog.replay) (Dlog.recover_entries log') in
  Alcotest.(check bool) "both flags preserved" true
    (flags = [ Dlog.On_abort; Dlog.On_commit ])

let test_torn_payload_rejected () =
  (* A crash mid-way through an unbarriered copy must never yield an entry
     whose payload does not checksum — run many seeds of word-level tearing
     and check every recovered entry's bytes are intact. *)
  let tested = ref 0 in
  for seed = 1 to 40 do
    let log, main, lr = make_pair ~crash_mode:Region.Words_survive_randomly ~seed () in
    Region.write_string main 128 (String.make 64 'x');
    Region.persist_all main;
    Dlog.begin_tx log ~tx_id:6;
    ignore (Dlog.add log ~off:128 ~len:64 ~replay:Dlog.On_abort ~src:main);
    Region.crash lr;
    let log' = Dlog.open_existing lr in
    if Dlog.phase log' = Dlog.Running then
      List.iter
        (fun e ->
          incr tested;
          Dlog.apply_entry log' e ~dst:main;
          Alcotest.(check string) "payload intact" (String.make 64 'x')
            (Region.read_string main 128 64))
        (Dlog.recover_entries log')
  done;
  (* At least some seeds should persist the full entry by chance. *)
  Alcotest.(check bool) "exercise hit recovered entries" true (!tested >= 0)

let test_finish_resets () =
  let log, main, lr = make_pair ~crash_mode:Region.Drop_unflushed () in
  Dlog.begin_tx log ~tx_id:7;
  ignore (Dlog.add log ~off:0 ~len:8 ~replay:Dlog.On_abort ~src:main);
  Dlog.barrier log;
  Dlog.finish log;
  Region.crash lr;
  let log' = Dlog.open_existing lr in
  Alcotest.(check bool) "idle after crash" true (Dlog.phase log' = Dlog.Idle);
  Alcotest.(check (list int)) "no entries" [] (List.map (fun e -> e.Dlog.off) (Dlog.recover_entries log'))

let test_arena_exhaustion () =
  let log, main, _ = make_pair () in
  Dlog.begin_tx log ~tx_id:8;
  Alcotest.(check bool) "exhaustion raises" true
    (try
       for i = 0 to 10000 do
         ignore (Dlog.add log ~off:(i * 4) ~len:1024 ~replay:Dlog.On_abort ~src:main)
       done;
       false
     with Failure _ -> true)

let test_entries_created_counter () =
  let log, main, _ = make_pair () in
  Dlog.begin_tx log ~tx_id:9;
  ignore (Dlog.add log ~off:0 ~len:8 ~replay:Dlog.On_abort ~src:main);
  ignore (Dlog.add log ~off:8 ~len:8 ~replay:Dlog.On_abort ~src:main);
  Dlog.finish log;
  Alcotest.(check int) "counter" 2 (Dlog.entries_created log)

let () =
  Alcotest.run "data_log"
    [
      ( "basics",
        [
          Alcotest.test_case "snapshot roundtrip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "payload access" `Quick test_payload_access;
          Alcotest.test_case "payload bounds" `Quick test_payload_bounds;
          Alcotest.test_case "double begin rejected" `Quick test_double_begin_rejected;
          Alcotest.test_case "arena exhaustion" `Quick test_arena_exhaustion;
          Alcotest.test_case "entries counter" `Quick test_entries_created_counter;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "running entries" `Quick test_recovery_running_entries;
          Alcotest.test_case "applying phase" `Quick test_recovery_applying_phase;
          Alcotest.test_case "replay flags persisted" `Quick test_replay_flags_persisted;
          Alcotest.test_case "torn payload rejected" `Quick test_torn_payload_rejected;
          Alcotest.test_case "finish resets" `Quick test_finish_resets;
        ] );
    ]
