(* Tests for chain replication: both modes replicate correctly, timing
   reflects the pipeline, aborts stay local to the head, and the failure
   protocols (fail-stop, head promotion, quick reboot with peer-based
   recovery) preserve consistency. *)

module Clock = Kamino_sim.Clock
module Engine = Kamino_core.Engine
module Heap = Kamino_heap.Heap
module Kv = Kamino_kv.Kv
module Chain = Kamino_chain.Chain
module Rng = Kamino_sim.Rng

let engine_config =
  {
    Engine.default_config with
    Engine.heap_bytes = 2 lsl 20;
    log_slots = 32;
    data_log_bytes = 1 lsl 19;
  }

let make ?(mode = Chain.Kamino_chain { alpha = None }) ?(f = 2) () =
  Chain.create ~engine_config ~hop_ns:5000 ~mode ~f ~value_size:128 ~node_size:512 ~seed:77
    ()

let both_modes = [ ("traditional", Chain.Traditional); ("kamino", Chain.Kamino_chain { alpha = None }) ]

let test_replica_counts () =
  let trad = make ~mode:Chain.Traditional ~f:2 () in
  Alcotest.(check int) "traditional: f+1 replicas" 3 (Chain.length trad);
  let kam = make ~mode:(Chain.Kamino_chain { alpha = None }) ~f:2 () in
  Alcotest.(check int) "kamino: f+2 replicas" 4 (Chain.length kam)

let test_writes_replicate () =
  List.iter
    (fun (name, mode) ->
      let c = make ~mode () in
      let at = ref 0 in
      for k = 0 to 19 do
        at := Chain.put c ~at:!at k (Printf.sprintf "val-%d" k)
      done;
      (match Chain.replicas_consistent c with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" name e);
      let v, _ = Chain.get c ~at:!at 7 in
      Alcotest.(check (option string)) (name ^ ": read at tail") (Some "val-7") v)
    both_modes

let test_rmw_and_delete_replicate () =
  List.iter
    (fun (name, mode) ->
      let c = make ~mode () in
      let at = Chain.put c ~at:0 1 "base" in
      let applied, at = Chain.rmw c ~at 1 (fun s -> s ^ "+rmw") in
      Alcotest.(check bool) (name ^ ": rmw applied") true applied;
      let present, at = Chain.delete c ~at 1 in
      Alcotest.(check bool) (name ^ ": delete hit") true present;
      let v, _ = Chain.get c ~at 1 in
      Alcotest.(check (option string)) (name ^ ": deleted everywhere") None v;
      match Chain.replicas_consistent c with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" name e)
    both_modes

let test_write_latency_includes_hops () =
  List.iter
    (fun (name, mode) ->
      let c = make ~mode () in
      let done_at = Chain.put c ~at:0 1 "x" in
      let hops =
        match mode with
        | Chain.Traditional -> Chain.length c + 1  (* client->head + n-1 + tail->client *)
        | Chain.Kamino_chain _ -> Chain.length c  (* head-resident client: n-1 + ack *)
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: latency %d >= %d hops" name done_at (hops * 5000))
        true
        (done_at >= hops * 5000))
    both_modes

let test_kamino_chain_faster_than_traditional () =
  (* Same op stream, f=2: the Kamino chain commits without critical-path
     copies at any replica and saves a client hop, so writes complete
     sooner even with one extra replica in the chain. *)
  let run mode =
    let c = make ~mode ~f:2 () in
    let at = ref 0 in
    for k = 0 to 49 do
      at := Chain.put c ~at:!at k (String.make 100 'v')
    done;
    !at
  in
  let trad = run Chain.Traditional in
  let kam = run (Chain.Kamino_chain { alpha = None }) in
  Alcotest.(check bool)
    (Printf.sprintf "kamino (%d) < traditional (%d)" kam trad)
    true (kam < trad)

let test_storage_accounting () =
  let trad = make ~mode:Chain.Traditional ~f:2 () in
  let kam = make ~mode:(Chain.Kamino_chain { alpha = None }) ~f:2 () in
  (* Traditional: 3 nodes x (heap + undo arena). Kamino: 4 heaps + 1 backup
     = f+2+alpha heaps total; with these small arenas the kamino cluster is
     bigger in heap count but has no per-node copy arenas. *)
  Alcotest.(check bool) "kamino ~ (f+2+1) heaps" true
    (Chain.storage_bytes kam > 4 * engine_config.Engine.heap_bytes);
  Alcotest.(check bool) "traditional ~ (f+1) heaps" true
    (Chain.storage_bytes trad < Chain.storage_bytes kam)

let test_abort_stays_local () =
  List.iter
    (fun (name, mode) ->
      let c = make ~mode () in
      let at = Chain.put c ~at:0 5 "committed" in
      let _ = Chain.put_aborted c ~at 5 "aborted-value" in
      let v, _ = Chain.get c ~at:(at + 100000) 5 in
      Alcotest.(check (option string)) (name ^ ": abort invisible") (Some "committed") v;
      match Chain.replicas_consistent c with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s after abort: %s" name e)
    both_modes

let test_fail_stop_tail_and_mid () =
  let c = make ~f:2 () in
  let at = ref 0 in
  for k = 0 to 9 do
    at := Chain.put c ~at:!at k "v"
  done;
  Chain.fail_stop c 3;
  (* tail dies *)
  Alcotest.(check int) "3 replicas left" 3 (Chain.length c);
  at := Chain.put c ~at:!at 100 "after-tail-failure";
  Chain.fail_stop c 1;
  (* mid dies *)
  at := Chain.put c ~at:!at 101 "after-mid-failure";
  (match Chain.replicas_consistent c with
  | Ok () -> ()
  | Error e -> Alcotest.failf "after failures: %s" e);
  let v, _ = Chain.get c ~at:!at 101 in
  Alcotest.(check (option string)) "write after repairs" (Some "after-mid-failure") v

let test_head_failure_promotes () =
  let c = make ~f:2 () in
  let at = ref 0 in
  for k = 0 to 9 do
    at := Chain.put c ~at:!at k (Printf.sprintf "v%d" k)
  done;
  Chain.fail_stop c 0;
  (* head dies; replica 1 must become a Kamino head with a local backup *)
  Alcotest.(check int) "3 replicas left" 3 (Chain.length c);
  at := Chain.put c ~at:!at 50 "new-head-write";
  (* the new head can abort locally, which requires its new backup *)
  let _ = Chain.put_aborted c ~at:!at 50 "aborted" in
  let v, _ = Chain.get c ~at:!at 50 in
  Alcotest.(check (option string)) "new head works" (Some "new-head-write") v;
  match Chain.replicas_consistent c with
  | Ok () -> ()
  | Error e -> Alcotest.failf "after promotion: %s" e

let test_quick_reboot_head () =
  let c = make ~f:2 () in
  let at = ref 0 in
  for k = 0 to 9 do
    at := Chain.put c ~at:!at k "stable"
  done;
  Chain.quick_reboot c 0;
  (match Chain.replicas_consistent c with
  | Ok () -> ()
  | Error e -> Alcotest.failf "after head reboot: %s" e);
  at := Chain.put c ~at:!at 10 "post-reboot";
  let v, _ = Chain.get c ~at:!at 10 in
  Alcotest.(check (option string)) "head usable after reboot" (Some "post-reboot") v

let test_quick_reboot_mid_with_incomplete_tx () =
  (* Manufacture an incomplete transaction on a non-head replica, crash it,
     and verify the §5.3 roll-forward from the predecessor repairs it. *)
  let c = make ~f:2 () in
  let at = ref 0 in
  for k = 0 to 5 do
    at := Chain.put c ~at:!at k (Printf.sprintf "v%d" k)
  done;
  let mid_kv = Chain.kv_at c 2 in
  let mid_engine = Kv.engine mid_kv in
  let vptr = Option.get (Kv.value_ptr mid_kv 3) in
  (* Start a transaction on the replica directly and leave it incomplete. *)
  let tx = Engine.begin_tx mid_engine in
  Engine.add tx vptr;
  Engine.write_string tx vptr 8 "torn-write-data";
  Chain.quick_reboot c 2;
  (match Chain.replicas_consistent c with
  | Ok () -> ()
  | Error e -> Alcotest.failf "after mid reboot: %s" e);
  let v, _ = Chain.get c ~at:!at 3 in
  Alcotest.(check (option string)) "value restored from predecessor" (Some "v3") v

let test_cluster_restart () =
  List.iter
    (fun (name, mode) ->
      let c = make ~mode () in
      let at = ref 0 in
      for k = 0 to 19 do
        at := Chain.put c ~at:!at k (Printf.sprintf "v%d" k)
      done;
      (* Leave an incomplete transaction on a middle replica before the
         whole cluster loses power. *)
      (if mode <> Chain.Traditional then begin
         let mid_kv = Chain.kv_at c 2 in
         let vptr = Option.get (Kv.value_ptr mid_kv 9) in
         let tx = Engine.begin_tx (Kv.engine mid_kv) in
         Engine.add tx vptr;
         Engine.write_string tx vptr 8 "half-written"
       end);
      Chain.cluster_restart c;
      (match Chain.replicas_consistent c with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s cluster restart: %s" name e);
      at := Chain.put c ~at:!at 99 "post-restart";
      let v, _ = Chain.get c ~at:!at 99 in
      Alcotest.(check (option string)) (name ^ ": chain usable after restart")
        (Some "post-restart") v)
    both_modes

let test_inflight_completion_after_reboot () =
  let c = make ~f:2 () in
  let at = ref 0 in
  for k = 0 to 5 do
    at := Chain.put c ~at:!at k "base"
  done;
  (* A write reaches only the head and first mid, then the second mid
     reboots; drain must deliver the op to the remaining replicas. *)
  Chain.put_partial c ~at:!at ~upto:1 99 "inflight-value";
  Chain.quick_reboot c 2;
  (match Chain.replicas_consistent c with
  | Ok () -> ()
  | Error e -> Alcotest.failf "after inflight reboot: %s" e);
  let v, _ = Chain.get c ~at:(!at + 1000000) 99 in
  Alcotest.(check (option string)) "inflight write completed" (Some "inflight-value") v

let test_dependent_writes_wait_for_ack () =
  let c = make ~f:2 () in
  let t1 = Chain.put c ~at:0 1 "first" in
  (* Two writes issued before the first one's ack arrives: the independent
     one enters the chain immediately; the dependent one blocks at the
     head until the ack releases the locks, so it completes later. *)
  let t_ind = Chain.put c ~at:(t1 / 2) 2 "independent" in
  let t_dep = Chain.put c ~at:(t1 / 2) 1 "second" in
  Alcotest.(check bool) "dependent write serialized behind ack" true (t_dep >= t1);
  Alcotest.(check bool)
    (Printf.sprintf "independent (%d) completes before dependent (%d)" t_ind t_dep)
    true (t_ind < t_dep)

let test_random_workload_consistency () =
  List.iter
    (fun (name, mode) ->
      let c = make ~mode () in
      let rng = Rng.create 13 in
      let at = ref 0 in
      for _ = 1 to 200 do
        let k = Rng.int rng 30 in
        match Rng.int rng 4 with
        | 0 -> at := Chain.put c ~at:!at k (Printf.sprintf "p%d" k)
        | 1 ->
            let _, t = Chain.delete c ~at:!at k in
            at := t
        | 2 ->
            let _, t = Chain.rmw c ~at:!at k (fun s -> s ^ ".") in
            at := t
        | _ ->
            let _, t = Chain.get c ~at:!at k in
            at := t
      done;
      match Chain.replicas_consistent c with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s random workload: %s" name e)
    both_modes

module Membership = Kamino_chain.Membership

let test_membership_views () =
  let m = Membership.create ~members:[ 0; 1; 2; 3 ] ~failure_timeout_ns:1000 in
  Alcotest.(check int) "initial view id" 1 (Membership.current m).Membership.id;
  Alcotest.(check bool) "current accepted" true (Membership.validate m ~view_id:1 = `Current);
  let v2 = Membership.remove m 1 in
  Alcotest.(check int) "view id bumped" 2 v2.Membership.id;
  Alcotest.(check (list int)) "member removed" [ 0; 2; 3 ] v2.Membership.members;
  Alcotest.(check bool) "old view rejected" true
    (match Membership.validate m ~view_id:1 with `Stale v -> v.Membership.id = 2 | `Current -> false);
  let v3 = Membership.add_tail m 7 in
  Alcotest.(check (list int)) "tail appended" [ 0; 2; 3; 7 ] v3.Membership.members;
  Alcotest.(check bool) "duplicate member rejected" true
    (try ignore (Membership.add_tail m 7); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "removing non-member rejected" true
    (try ignore (Membership.remove m 99); false with Invalid_argument _ -> true)

let test_membership_neighbours () =
  let m = Membership.create ~members:[ 5; 6; 7 ] ~failure_timeout_ns:1000 in
  Alcotest.(check bool) "head" true (Membership.is_head m 5);
  Alcotest.(check (option int)) "head pred" None (Membership.predecessor m 5);
  Alcotest.(check (option int)) "mid pred" (Some 5) (Membership.predecessor m 6);
  Alcotest.(check (option int)) "mid succ" (Some 7) (Membership.successor m 6);
  Alcotest.(check (option int)) "tail succ" None (Membership.successor m 7);
  match Membership.rejoin m ~node:6 ~believed_view:1 with
  | `Member (_, Some 5, Some 7) -> ()
  | _ -> Alcotest.fail "rejoin neighbours wrong"

let test_membership_rejoin_removed () =
  let m = Membership.create ~members:[ 1; 2; 3 ] ~failure_timeout_ns:1000 in
  ignore (Membership.remove m 2);
  match Membership.rejoin m ~node:2 ~believed_view:1 with
  | `Removed v -> Alcotest.(check int) "told the current view" 2 v.Membership.id
  | `Member _ -> Alcotest.fail "removed node must not rejoin silently"

(* Random interleavings of the membership operations preserve the view
   invariants: every change installs a strictly larger view id; views stay
   head-first (a removal keeps the survivors' relative order, an addition
   appends at the tail); and the Figure-9 rejoin contract holds — a node
   removed from the view is always told [`Removed], a member always gets
   its model-predicted neighbours. *)
let membership_interleaving_qcheck =
  QCheck.Test.make ~name:"membership: random interleavings keep the view invariants"
    ~count:300
    QCheck.(list (pair (int_range 0 3) small_nat))
    (fun actions ->
      let m = Membership.create ~members:[ 0; 1; 2 ] ~failure_timeout_ns:1000 in
      let model = ref [ 0; 1; 2 ] in
      let removed = ref [] in
      let next_fresh = ref 3 in
      let last_id = ref (Membership.current m).Membership.id in
      let check_view label v =
        if v.Membership.id <= !last_id then
          QCheck.Test.fail_reportf "%s: view id %d not strictly increasing (last %d)"
            label v.Membership.id !last_id;
        last_id := v.Membership.id;
        if v.Membership.members <> !model then
          QCheck.Test.fail_reportf "%s: members [%s], model [%s]" label
            (String.concat ";" (List.map string_of_int v.Membership.members))
            (String.concat ";" (List.map string_of_int !model))
      in
      List.iter
        (fun (action, pick) ->
          match action with
          | 0 when List.length !model > 1 ->
              let victim = List.nth !model (pick mod List.length !model) in
              model := List.filter (fun n -> n <> victim) !model;
              removed := victim :: !removed;
              check_view "remove" (Membership.remove m victim)
          | 1 ->
              let fresh = !next_fresh in
              incr next_fresh;
              model := !model @ [ fresh ];
              check_view "add_tail" (Membership.add_tail m fresh)
          | 2 -> (
              (* Rejoin either a removed node or a member, with any stale
                 believed view. *)
              let pool = !removed @ !model in
              let node = List.nth pool (pick mod List.length pool) in
              let believed = 1 + (pick mod !last_id) in
              match Membership.rejoin m ~node ~believed_view:believed with
              | `Removed v ->
                  if List.mem node !model then
                    QCheck.Test.fail_reportf "member %d told `Removed" node;
                  if v.Membership.id <> !last_id then
                    QCheck.Test.fail_reportf "rejoin reported view %d, current is %d"
                      v.Membership.id !last_id
              | `Member (v, pred, succ) ->
                  if not (List.mem node !model) then
                    QCheck.Test.fail_reportf "removed node %d readmitted as member" node;
                  if v.Membership.id <> !last_id then
                    QCheck.Test.fail_reportf "rejoin reported view %d, current is %d"
                      v.Membership.id !last_id;
                  let idx = ref (-1) in
                  List.iteri (fun i n -> if n = node then idx := i) !model;
                  let expect_pred = if !idx = 0 then None else List.nth_opt !model (!idx - 1) in
                  let expect_succ = List.nth_opt !model (!idx + 1) in
                  if pred <> expect_pred || succ <> expect_succ then
                    QCheck.Test.fail_reportf "rejoin neighbours of %d wrong" node)
          | _ ->
              (* Validate: the current id passes, anything older is stale
                 and reports the current view. *)
              if Membership.validate m ~view_id:!last_id <> `Current then
                QCheck.Test.fail_reportf "current view id %d rejected" !last_id;
              if !last_id > 1 then
                match Membership.validate m ~view_id:(1 + (pick mod (!last_id - 1))) with
                | `Stale v when v.Membership.id = !last_id -> ()
                | `Stale v ->
                    QCheck.Test.fail_reportf "stale answer carried view %d, current %d"
                      v.Membership.id !last_id
                | `Current -> QCheck.Test.fail_reportf "stale view id accepted")
        actions;
      true)

let test_membership_failure_detector () =
  let m = Membership.create ~members:[ 1; 2 ] ~failure_timeout_ns:1000 in
  Membership.record_heartbeat m ~node:1 ~now:0;
  Membership.record_heartbeat m ~node:2 ~now:0;
  Alcotest.(check (list int)) "nobody suspected yet" [] (Membership.suspects m ~now:500);
  Membership.record_heartbeat m ~node:2 ~now:900;
  Alcotest.(check (list int)) "silent node suspected" [ 1 ] (Membership.suspects m ~now:1500)

let test_heartbeat_failure_detection_des () =
  (* Drive the failure detector from the discrete-event engine: replicas
     heartbeat every 1 ms; replica 2 goes silent at t = 5 ms (its last
     heartbeat lands at t = 4 ms); with the chain's 10 ms detection
     timeout, exactly replica 2 must be suspected shortly after t = 14 ms,
     after which the chain is repaired and keeps working. *)
  let module Sim = Kamino_sim.Engine in
  let c = make ~f:2 () in
  let m = Chain.membership c in
  let sim = Sim.create () in
  let silent_from = 5_000_000 in
  let node_ids = List.init (Chain.length c) Fun.id in
  let horizon = 20_000_000 in
  let rec schedule_heartbeats node at =
    if at <= horizon then
      Sim.schedule sim ~at (fun () ->
          if not (node = 2 && at >= silent_from) then begin
            Kamino_chain.Membership.record_heartbeat m ~node ~now:at;
            schedule_heartbeats node (at + 1_000_000)
          end)
  in
  List.iter (fun n -> schedule_heartbeats n 0) node_ids;
  let detected = ref None in
  let rec poll at =
    Sim.schedule sim ~at (fun () ->
        match Kamino_chain.Membership.suspects m ~now:at with
        | [] -> if at < horizon then poll (at + 500_000)
        | suspects -> detected := Some (at, suspects))
  in
  poll 1_000_000;
  ignore (Sim.run sim);
  (match !detected with
  | Some (at, [ 2 ]) ->
      let last_heartbeat = silent_from - 1_000_000 in
      Alcotest.(check bool)
        (Printf.sprintf "detected at %d" at)
        true
        (at > last_heartbeat + 10_000_000 && at <= last_heartbeat + 12_000_000)
  | Some (_, others) ->
      Alcotest.failf "wrong suspects: %s" (String.concat "," (List.map string_of_int others))
  | None -> Alcotest.fail "silent replica never suspected");
  (* act on the detection: remove the replica and keep serving *)
  Chain.fail_stop c 2;
  let at = Chain.put c ~at:25_000_000 1 "after-detection" in
  let v, _ = Chain.get c ~at 1 in
  Alcotest.(check (option string)) "chain repaired" (Some "after-detection") v

let test_add_replica_state_transfer () =
  let c = make ~f:2 () in
  let at = ref 0 in
  for k = 0 to 19 do
    at := Chain.put c ~at:!at k (Printf.sprintf "v%d" k)
  done;
  Chain.fail_stop c 3;
  Alcotest.(check int) "down to 3" 3 (Chain.length c);
  Chain.add_replica c;
  Alcotest.(check int) "back to 4" 4 (Chain.length c);
  (* the fresh tail must have received the full state *)
  (match Chain.replicas_consistent c with
  | Ok () -> ()
  | Error e -> Alcotest.failf "after state transfer: %s" e);
  at := Chain.put c ~at:!at 100 "post-join";
  let v, _ = Chain.get c ~at:!at 100 in
  Alcotest.(check (option string)) "new tail serves reads" (Some "post-join") v;
  (* views moved forward: remove + add *)
  Alcotest.(check int) "view id advanced" 3
    (Membership.current (Chain.membership c)).Membership.id

let () =
  Alcotest.run "chain"
    [
      ( "replication",
        [
          Alcotest.test_case "replica counts" `Quick test_replica_counts;
          Alcotest.test_case "writes replicate" `Quick test_writes_replicate;
          Alcotest.test_case "rmw and delete replicate" `Quick test_rmw_and_delete_replicate;
          Alcotest.test_case "random workload consistency" `Quick
            test_random_workload_consistency;
        ] );
      ( "timing",
        [
          Alcotest.test_case "latency includes hops" `Quick test_write_latency_includes_hops;
          Alcotest.test_case "kamino beats traditional" `Quick
            test_kamino_chain_faster_than_traditional;
          Alcotest.test_case "dependent writes wait for ack" `Quick
            test_dependent_writes_wait_for_ack;
          Alcotest.test_case "storage accounting" `Quick test_storage_accounting;
        ] );
      ( "aborts",
        [ Alcotest.test_case "abort stays local" `Quick test_abort_stays_local ] );
      ( "membership",
        [
          Alcotest.test_case "views" `Quick test_membership_views;
          Alcotest.test_case "neighbours" `Quick test_membership_neighbours;
          Alcotest.test_case "rejoin after removal" `Quick test_membership_rejoin_removed;
          QCheck_alcotest.to_alcotest membership_interleaving_qcheck;
          Alcotest.test_case "failure detector" `Quick test_membership_failure_detector;
          Alcotest.test_case "add replica state transfer" `Quick
            test_add_replica_state_transfer;
          Alcotest.test_case "heartbeat failure detection (DES)" `Quick
            test_heartbeat_failure_detection_des;
        ] );
      ( "failures",
        [
          Alcotest.test_case "fail-stop tail and mid" `Quick test_fail_stop_tail_and_mid;
          Alcotest.test_case "head failure promotes" `Quick test_head_failure_promotes;
          Alcotest.test_case "quick reboot head" `Quick test_quick_reboot_head;
          Alcotest.test_case "quick reboot mid with incomplete tx" `Quick
            test_quick_reboot_mid_with_incomplete_tx;
          Alcotest.test_case "inflight completes after reboot" `Quick
            test_inflight_completion_after_reboot;
          Alcotest.test_case "whole-cluster restart" `Quick test_cluster_restart;
        ] );
    ]
