(* Model-based crash test for transactional tree operations at scale-ish
   depth. A B+Tree with tiny nodes (node_size 96 -> 6 keys per node) is
   preloaded via the bulk-load path until its height is at least 4, then
   QCheck-generated insert/delete batches run as multi-object
   transactions — at that depth a single mutation routinely splits or
   merges several nodes, so each transaction's write set spans many
   objects.

   Atomic kinds additionally sweep a crash through {e every} mutation
   step of every batch: the batch is replayed with the power failing
   before step 0, before step 1, ..., and after the last step but before
   commit. After each recovery the tree must be bit-for-bit back at the
   pre-batch state (full rollback), structurally valid, and equal to the
   volatile map mirror. [No_logging] promises nothing mid-transaction,
   so it only crashes at operation boundaries — the same convention as
   the crash matrix. Both region crash modes are exercised. *)

module Engine = Kamino_core.Engine
module Backup = Kamino_core.Backup
module Btree = Kamino_index.Btree
module Region = Kamino_nvm.Region
module Rng = Kamino_sim.Rng
module M = Map.Make (Int)

exception Crashed

let config crash_mode =
  {
    Engine.default_config with
    Engine.heap_bytes = 4 lsl 20;
    log_slots = 64;
    data_log_bytes = 1 lsl 20;
    crash_mode;
  }

(* Values only need to be distinct integers; the tree stores any int64. *)
let v k = 500_000 + k

type spec = Plain of Engine.kind | Chain_head

let specs =
  [
    ("no-logging", Plain Engine.No_logging, false);
    ("undo", Plain Engine.Undo_logging, true);
    ("cow", Plain Engine.Cow, true);
    ("kamino-simple", Plain Engine.Kamino_simple, true);
    ( "kamino-dynamic",
      Plain (Engine.Kamino_dynamic { alpha = 0.3; policy = Backup.Lru_policy }),
      true );
    ("chain-head", Chain_head, true);
  ]

(* Preload [n] keys 0, 4, 8, ... through the transactional bulk-load
   path, one leaf-sized chunk per transaction. *)
let preload e tree n =
  let chunk = Btree.branching tree in
  let i = ref 0 in
  while !i < n do
    let m = min chunk (n - !i) in
    let base = !i in
    Engine.with_tx e (fun tx ->
        Btree.append_sorted tx tree
          (Array.init m (fun j ->
               let k = (base + j) * 4 in
               (k, v k))));
    i := !i + m
  done;
  List.init n (fun i -> i * 4) |> List.fold_left (fun m k -> M.add k (v k) m) M.empty

let make spec crash_mode =
  let config = config crash_mode in
  let e, tree =
    match spec with
    | Plain kind ->
        let e = Engine.create ~config ~kind ~seed:17 () in
        (e, Engine.with_tx e (fun tx -> Btree.create tx ~node_size:96))
    | Chain_head ->
        (* Chain heads format while still an [Intent_only] replica and are
           then promoted to a Kamino-simple head, as in §5.2. *)
        let e = Engine.create ~config ~kind:Engine.Intent_only ~seed:17 () in
        let tree = Engine.with_tx e (fun tx -> Btree.create tx ~node_size:96) in
        Engine.promote_to_kamino e;
        (e, tree)
  in
  Engine.with_tx e (fun tx -> Engine.set_root tx (Btree.descriptor tree));
  let model = preload e tree 320 in
  (e, tree, model)

let verify ctx tree model =
  (match Btree.validate tree with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: invalid tree: %s" ctx e);
  if Btree.cardinal tree <> M.cardinal model then
    Alcotest.failf "%s: cardinal %d, model %d" ctx (Btree.cardinal tree) (M.cardinal model);
  M.iter
    (fun k value ->
      if Btree.find tree k <> Some value then
        Alcotest.failf "%s: key %d missing or wrong" ctx k)
    model

let apply_batch tx tree batch =
  List.iter
    (fun (k, ins) ->
      if ins then ignore (Btree.insert tx tree k (v k)) else ignore (Btree.delete tx tree k))
    batch

let model_batch model batch =
  List.fold_left
    (fun m (k, ins) -> if ins then M.add k (v k) m else M.remove k m)
    model batch

let crash_recover e tree =
  Engine.crash e;
  Engine.recover e;
  tree := Btree.attach e (Engine.root e)

(* Replay [batch] with a crash injected before mutation step [crash_at]
   (crash_at = length means every step ran but commit did not). The
   transaction must roll back entirely. *)
let crash_mid_batch ctx e tree model batch crash_at =
  (try
     Engine.with_tx e (fun tx ->
         List.iteri
           (fun i (k, ins) ->
             if i = crash_at then begin
               Engine.crash e;
               raise Crashed
             end;
             if ins then ignore (Btree.insert tx !tree k (v k))
             else ignore (Btree.delete tx !tree k))
           batch;
         if crash_at >= List.length batch then begin
           Engine.crash e;
           raise Crashed
         end)
   with Crashed -> ());
  Engine.recover e;
  tree := Btree.attach e (Engine.root e);
  verify (Printf.sprintf "%s crash_at=%d" ctx crash_at) !tree model

let tree_tx_qcheck (kname, spec, atomic) crash_mode =
  let mode_name =
    match crash_mode with
    | Region.Drop_unflushed -> "drop-unflushed"
    | Region.Words_survive_randomly -> "words-survive"
    | Region.Lines_survive_randomly -> "lines-survive"
  in
  let name = Printf.sprintf "tree tx crash sweep (%s, %s)" kname mode_name in
  QCheck.Test.make ~name ~count:6
    QCheck.(pair small_int (list_of_size (Gen.int_range 24 40) (pair (int_range 0 1300) bool)))
    (fun (seed, ops) ->
      let e, tree0, model0 = make spec crash_mode in
      if Btree.height tree0 < 4 then
        Alcotest.failf "preloaded tree has height %d, wanted >= 4" (Btree.height tree0);
      let tree = ref tree0 in
      let model = ref model0 in
      let rng = Rng.create (seed + 31) in
      let batches =
        let rec group = function
          | [] -> []
          | l ->
              let n = min 4 (List.length l) in
              let rec take i = function
                | x :: rest when i < n ->
                    let hd, tl = take (i + 1) rest in
                    (x :: hd, tl)
                | rest -> ([], rest)
              in
              let b, rest = take 0 l in
              b :: group rest
        in
        group ops
      in
      List.iteri
        (fun bi batch ->
          let ctx = Printf.sprintf "%s/%s seed=%d batch=%d" kname mode_name seed bi in
          (* Atomic kinds: the power fails at every mutation step in turn;
             each time the transaction must vanish without trace. *)
          if atomic then
            for crash_at = 0 to List.length batch do
              crash_mid_batch ctx e tree !model batch crash_at
            done;
          (* Then the batch commits for real and the mirror advances. *)
          Engine.with_tx e (fun tx -> apply_batch tx !tree batch);
          model := model_batch !model batch;
          (* Operation-boundary crash — the only point [No_logging]
             promises anything about; all kinds take it. *)
          if Rng.int rng 3 = 0 then begin
            crash_recover e tree;
            verify (ctx ^ " (boundary)") !tree !model
          end)
        batches;
      verify (Printf.sprintf "%s/%s seed=%d final" kname mode_name seed) !tree !model;
      (* Structural mutations really happened: splits and merges at this
         depth mean the op mix above is meaningless if height collapsed. *)
      Btree.height !tree >= 4)

let () =
  let tests =
    List.concat_map
      (fun spec ->
        List.map
          (fun mode -> QCheck_alcotest.to_alcotest (tree_tx_qcheck spec mode))
          [ Region.Drop_unflushed; Region.Words_survive_randomly ])
      specs
  in
  Alcotest.run "tree_tx" [ ("crash sweep", tests) ]
