(* Tests for the asynchronous chain: the command language, the persistent
   operation queues, and the event-driven protocol with mid-propagation
   crash injection and exactly-once execution. *)

module Sim = Kamino_sim.Engine
module Rng = Kamino_sim.Rng
module Clock = Kamino_sim.Clock
module Region = Kamino_nvm.Region
module Engine = Kamino_core.Engine
module Kv = Kamino_kv.Kv
module Op = Kamino_chain.Op
module Opqueue = Kamino_chain.Opqueue
module Async = Kamino_chain.Async_chain

(* --- Op ------------------------------------------------------------------- *)

let test_op_roundtrip () =
  List.iter
    (fun op ->
      Alcotest.(check bool) "decode inverts encode" true
        (Op.equal op (Op.decode (Op.encode op))))
    [
      Op.Put (1, "value");
      Op.Put (0, "");
      Op.Delete 42;
      Op.Append (7, "suffix");
      Op.Put (max_int / 2, String.make 500 'x');
    ]

let test_op_decode_garbage () =
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "garbage %S rejected" s)
        true
        (try
           ignore (Op.decode s);
           false
         with Op.Decode_error _ -> true))
    [ ""; "x"; "P\x01"; "Q" ^ String.make 16 '\x00'; "P" ^ String.make 20 '\xff' ]

let test_op_apply () =
  let e =
    Engine.create
      ~config:{ Engine.default_config with Engine.heap_bytes = 1 lsl 20 }
      ~kind:Engine.Kamino_simple ~seed:1 ()
  in
  let kv = Kv.create e ~value_size:128 ~node_size:512 in
  Op.apply (Op.Put (1, "hello")) kv;
  Alcotest.(check (option string)) "put" (Some "hello") (Kv.get kv 1);
  Op.apply (Op.Append (1, "-world")) kv;
  Alcotest.(check (option string)) "append" (Some "hello-world") (Kv.get kv 1);
  Op.apply (Op.Append (2, "fresh")) kv;
  Alcotest.(check (option string)) "append to absent inserts" (Some "fresh") (Kv.get kv 2);
  Op.apply (Op.Delete 1) kv;
  Alcotest.(check (option string)) "delete" None (Kv.get kv 1)

let op_roundtrip_qcheck =
  QCheck.Test.make ~name:"random ops roundtrip through the wire format" ~count:200
    QCheck.(triple (int_range 0 3) (int_range 0 1_000_000) string)
    (fun (tag, key, payload) ->
      let op =
        match tag with
        | 0 -> Op.Put (key, payload)
        | 1 -> Op.Delete key
        | _ -> Op.Append (key, payload)
      in
      Op.equal op (Op.decode (Op.encode op)))

(* --- Opqueue ---------------------------------------------------------------- *)

let make_queue ?(crash_mode = Region.Drop_unflushed) ?(n_slots = 8) () =
  let clock = Clock.create () in
  let r =
    Region.create ~crash_mode ~rng:(Rng.create 4) ~clock
      ~size:(Opqueue.required_size ~slot_bytes:64 ~n_slots)
      ()
  in
  (Opqueue.format r ~slot_bytes:64 ~n_slots, r)

let test_queue_fifo () =
  let q, _ = make_queue () in
  Alcotest.(check bool) "empty" true (Opqueue.is_empty q);
  Alcotest.(check int) "seq 0" 0 (Opqueue.enqueue q "a");
  Alcotest.(check int) "seq 1" 1 (Opqueue.enqueue q "b");
  Alcotest.(check int) "length" 2 (Opqueue.length q);
  Alcotest.(check (option (pair int string))) "peek" (Some (0, "a")) (Opqueue.peek q);
  Alcotest.(check (option (pair int string))) "dequeue a" (Some (0, "a")) (Opqueue.dequeue q);
  Alcotest.(check (option (pair int string))) "dequeue b" (Some (1, "b")) (Opqueue.dequeue q);
  Alcotest.(check (option (pair int string))) "drained" None (Opqueue.dequeue q)

let test_queue_wraparound () =
  let q, _ = make_queue ~n_slots:4 () in
  for round = 0 to 24 do
    let seq = Opqueue.enqueue q (Printf.sprintf "p%d" round) in
    Alcotest.(check int) "seqs are global" round seq;
    Alcotest.(check (option (pair int string))) "fifo across wraps"
      (Some (round, Printf.sprintf "p%d" round))
      (Opqueue.dequeue q)
  done

let test_queue_full () =
  let q, _ = make_queue ~n_slots:2 () in
  ignore (Opqueue.enqueue q "a");
  ignore (Opqueue.enqueue q "b");
  Alcotest.(check bool) "full" true (Opqueue.is_full q);
  Alcotest.(check bool) "enqueue on full raises" true
    (try
       ignore (Opqueue.enqueue q "c");
       false
     with Failure _ -> true);
  ignore (Opqueue.dequeue q);
  Alcotest.(check int) "space reclaimed" 2 (Opqueue.enqueue q "c")

let test_queue_drop_through () =
  let q, _ = make_queue () in
  for i = 0 to 5 do
    ignore (Opqueue.enqueue q (string_of_int i))
  done;
  Opqueue.drop_through q 3;
  Alcotest.(check (option (pair int string))) "entries <= 3 dropped" (Some (4, "4"))
    (Opqueue.peek q);
  Opqueue.drop_through q 100;
  Alcotest.(check bool) "drop past tail empties" true (Opqueue.is_empty q)

let test_queue_crash_durability () =
  let q, r = make_queue () in
  ignore (Opqueue.enqueue q "one");
  ignore (Opqueue.enqueue q "two");
  ignore (Opqueue.dequeue q);
  Region.crash r;
  let q = Opqueue.open_existing r in
  Alcotest.(check int) "head survived" 1 (Opqueue.head_seq q);
  Alcotest.(check int) "tail survived" 2 (Opqueue.tail_seq q);
  Alcotest.(check (option (pair int string))) "contents survived" (Some (1, "two"))
    (Opqueue.peek q)

let test_queue_torn_publishes () =
  (* Word-random crashes after enqueues: the recovered queue must always be
     a well-formed window whose entries decode intact. *)
  for seed = 1 to 40 do
    let clock = Clock.create () in
    let r =
      Region.create ~crash_mode:Region.Words_survive_randomly ~rng:(Rng.create seed) ~clock
        ~size:(Opqueue.required_size ~slot_bytes:64 ~n_slots:8)
        ()
    in
    let q = Opqueue.format r ~slot_bytes:64 ~n_slots:8 in
    ignore (Opqueue.enqueue q "committed");
    (* crash possibly mid-way through the second publish *)
    ignore (Opqueue.enqueue q "racing");
    Region.crash r;
    let q = Opqueue.open_existing r in
    Opqueue.iter q (fun ~seq ~payload ->
        match seq with
        | 0 -> Alcotest.(check string) "entry 0 intact" "committed" payload
        | 1 -> Alcotest.(check string) "entry 1 intact" "racing" payload
        | _ -> Alcotest.failf "unexpected seq %d" seq)
  done

(* --- Async chain ------------------------------------------------------------ *)

let engine_config =
  {
    Engine.default_config with
    Engine.heap_bytes = 2 lsl 20;
    log_slots = 64;
    data_log_bytes = 1 lsl 19;
  }

let make_chain ?(mode = Async.Kamino_chain) () =
  Async.create ~engine_config ~hop_ns:5000 ~rpc_ns:500 ~mode ~f:2 ~value_size:128
    ~node_size:512 ~seed:99 ()

let test_async_replication () =
  List.iter
    (fun mode ->
      let c = make_chain ~mode () in
      let completions = ref [] in
      for k = 0 to 19 do
        Async.submit c ~at:(k * 1000)
          (Op.Put (k, Printf.sprintf "v%d" k))
          ~on_complete:(fun t -> completions := t :: !completions)
      done;
      ignore (Async.run c);
      Alcotest.(check int) "all completions fired" 20 (List.length !completions);
      (match Async.replicas_consistent c with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      for i = 0 to Async.length c - 1 do
        Alcotest.(check int)
          (Printf.sprintf "replica %d executed everything exactly once" i)
          20 (Async.executed_seq c i)
      done)
    [ Async.Kamino_chain; Async.Traditional ]

let test_async_completion_after_full_round_trip () =
  let c = make_chain () in
  let finish = ref 0 in
  Async.submit c ~at:0 (Op.Put (1, "x")) ~on_complete:(fun t -> finish := t);
  ignore (Async.run c);
  (* 3 forward hops + 1 ack hop at 5 us plus processing *)
  Alcotest.(check bool)
    (Printf.sprintf "completion (%d) covers 4 hops" !finish)
    true
    (!finish >= 4 * 5000)

let test_async_reads_at_tail () =
  let c = make_chain () in
  Async.submit c ~at:0 (Op.Put (5, "tailread")) ~on_complete:(fun _ -> ());
  let result = ref None in
  Async.read c ~at:1_000_000 5 ~on_result:(fun v _ -> result := v);
  ignore (Async.run c);
  Alcotest.(check (option string)) "read served by tail" (Some "tailread") !result

let test_async_quick_reboot_mid_propagation () =
  (* Crash a middle replica while a burst of writes is streaming through
     the chain; every write must still complete and replicate exactly
     once. *)
  List.iter
    (fun victim ->
      let c = make_chain () in
      let completed = ref 0 in
      for k = 0 to 39 do
        Async.submit c ~at:(k * 2000)
          (Op.Append (k mod 7, Printf.sprintf "+%d" k))
          ~on_complete:(fun _ -> incr completed)
      done;
      (* the reboot lands mid-burst *)
      Async.quick_reboot c ~at:41_000 victim;
      ignore (Async.run c);
      Alcotest.(check int)
        (Printf.sprintf "victim %d: all writes completed" victim)
        40 !completed;
      (match Async.replicas_consistent c with
      | Ok () -> ()
      | Error e -> Alcotest.failf "victim %d: %s" victim e);
      for i = 0 to Async.length c - 1 do
        Alcotest.(check int)
          (Printf.sprintf "victim %d: replica %d exactly-once" victim i)
          40 (Async.executed_seq c i)
      done)
    [ 0; 1; 2; 3 ]

let test_async_repeated_reboots_random () =
  let rng = Rng.create 5 in
  let c = make_chain () in
  let completed = ref 0 in
  let n = 100 in
  for k = 0 to n - 1 do
    Async.submit c ~at:(k * 3000)
      (Op.Put (k mod 17, Printf.sprintf "r%d" k))
      ~on_complete:(fun _ -> incr completed)
  done;
  for _ = 1 to 6 do
    Async.quick_reboot c
      ~at:(Rng.int rng (n * 3000))
      (Rng.int rng (Async.length c))
  done;
  ignore (Async.run c);
  Alcotest.(check int) "all writes completed" n !completed;
  match Async.replicas_consistent c with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

(* A persistent input-queue slot that decodes to garbage — bit rot under a
   valid queue checksum — must be detected when the rebooting replica
   re-drives its queue, and surfaced with the replica and slot rather than
   silently executed. *)
let test_corrupt_input_slot_detected () =
  let c = make_chain () in
  Async.submit c ~at:1_000 (Op.Put (0, "good")) ~on_complete:(fun _ -> ());
  ignore (Async.run c);
  (* Plant a corrupt envelope (valid sequence header, garbage command) in
     replica 1's persistent input queue, as in-place corruption would. *)
  let seq_header =
    let b = Bytes.create 8 in
    Bytes.set_int64_le b 0 99L;
    Bytes.to_string b
  in
  ignore (Opqueue.enqueue (Async.input_queue c 1) (seq_header ^ "Zjunk"));
  (match Async.reboot_now c 1 with
  | () -> Alcotest.fail "corrupt slot executed or ignored"
  | exception Async.Corrupt_entry { node; reason; _ } ->
      Alcotest.(check int) "names the replica" 1 node;
      Alcotest.(check bool) "carries the decoder's reason" true (String.length reason > 0));
  (* The garbage was never applied: sequence 99 is not in the replica's
     applied set and the committed state still holds only the good write. *)
  Alcotest.(check bool) "phantom sequence not applied" true
    (not (List.mem 99 (Async.applied_seqs c 1)));
  Alcotest.(check (option string)) "state unaffected" (Some "good") (Kv.get (Async.kv_at c 1) 0)

let test_async_agrees_with_sync_model () =
  (* The synchronous chain (used by the benchmarks) and this asynchronous
     protocol implementation model the same system; on an uncontended
     spaced write stream their client-visible latencies must agree
     closely. *)
  let hop = 5000 and rpc = 1000 in
  let n = 50 in
  let spacing = 200_000 in
  (* async *)
  let ac =
    Async.create ~engine_config ~hop_ns:hop ~rpc_ns:rpc ~mode:Async.Kamino_chain ~f:2
      ~value_size:128 ~node_size:512 ~seed:7 ()
  in
  let async_lat = ref 0.0 in
  for k = 0 to n - 1 do
    let at = k * spacing in
    Async.submit ac ~at (Op.Put (k, "x")) ~on_complete:(fun t ->
        async_lat := !async_lat +. float_of_int (t - at))
  done;
  ignore (Async.run ac);
  let async_mean = !async_lat /. float_of_int n in
  (* sync *)
  let module Chain = Kamino_chain.Chain in
  let sc =
    Chain.create ~engine_config ~hop_ns:hop ~rpc_ns:rpc
      ~mode:(Chain.Kamino_chain { alpha = None })
      ~f:2 ~value_size:128 ~node_size:512 ~seed:7 ()
  in
  let sync_lat = ref 0.0 in
  for k = 0 to n - 1 do
    let at = k * spacing in
    let t = Chain.put sc ~at k "x" in
    sync_lat := !sync_lat +. float_of_int (t - at)
  done;
  let sync_mean = !sync_lat /. float_of_int n in
  let ratio = async_mean /. sync_mean in
  Alcotest.(check bool)
    (Printf.sprintf "models agree (async %.0f ns vs sync %.0f ns)" async_mean sync_mean)
    true
    (ratio > 0.75 && ratio < 1.35)

let () =
  Alcotest.run "async_chain"
    [
      ( "op",
        [
          Alcotest.test_case "encode/decode roundtrip" `Quick test_op_roundtrip;
          Alcotest.test_case "decode rejects garbage" `Quick test_op_decode_garbage;
          Alcotest.test_case "apply semantics" `Quick test_op_apply;
          QCheck_alcotest.to_alcotest op_roundtrip_qcheck;
        ] );
      ( "opqueue",
        [
          Alcotest.test_case "fifo" `Quick test_queue_fifo;
          Alcotest.test_case "wraparound" `Quick test_queue_wraparound;
          Alcotest.test_case "full" `Quick test_queue_full;
          Alcotest.test_case "drop_through" `Quick test_queue_drop_through;
          Alcotest.test_case "crash durability" `Quick test_queue_crash_durability;
          Alcotest.test_case "torn publishes" `Quick test_queue_torn_publishes;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "replication" `Quick test_async_replication;
          Alcotest.test_case "full round-trip completion" `Quick
            test_async_completion_after_full_round_trip;
          Alcotest.test_case "reads at tail" `Quick test_async_reads_at_tail;
          Alcotest.test_case "quick reboot mid-propagation" `Quick
            test_async_quick_reboot_mid_propagation;
          Alcotest.test_case "repeated random reboots" `Quick
            test_async_repeated_reboots_random;
          Alcotest.test_case "corrupt input slot detected on reboot" `Quick
            test_corrupt_input_slot_detected;
          Alcotest.test_case "agrees with the synchronous model" `Quick
            test_async_agrees_with_sync_model;
        ] );
    ]
