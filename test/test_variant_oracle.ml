(* Differential refactor oracle for the engine-variant extraction.

   Every engine kind runs the same seeded workload mix (transactions,
   aborts where the kind supports them, crash/recover cycles between
   transactions) and is then reduced to a fingerprint: the final simulated
   nanosecond, the aggregate NVM counters over every region of the stack,
   and an FNV-1a hash of the main heap's byte image. The expected values
   below were recorded on the pre-refactor monolithic engine.ml; the
   extracted variant modules must reproduce them bit-for-bit — any drift
   in a single flush, fence, copied byte or simulated nanosecond fails
   the suite.

   Regenerate (only when a PR deliberately changes modelled behavior)
   with:  KAMINO_ORACLE_PRINT=1 dune exec test/test_variant_oracle.exe *)

module Rng = Kamino_sim.Rng
module Region = Kamino_nvm.Region
module Heap = Kamino_heap.Heap
module Engine = Kamino_core.Engine
module Backup = Kamino_core.Backup
module Shard = Kamino_shard.Shard
module Shard_kv = Kamino_shard.Shard_kv
module Shard_driver = Kamino_shard.Shard_driver
module Shard_router = Kamino_shard.Shard_router

let config =
  {
    Engine.default_config with
    Engine.heap_bytes = 1 lsl 20;
    log_slots = 16;
    data_log_bytes = 1 lsl 18;
  }

(* Kind table: name, builder, whether the kind can roll back locally. *)
let kinds =
  [
    ("no-logging", Engine.No_logging, false);
    ("undo-logging", Engine.Undo_logging, true);
    ("cow", Engine.Cow, true);
    ("kamino-simple", Engine.Kamino_simple, true);
    ( "kamino-dynamic",
      Engine.Kamino_dynamic { alpha = 0.3; policy = Backup.Lru_policy },
      true );
    ("intent-only", Engine.Intent_only, false);
  ]

let seeds = [ 1; 2; 3 ]

let stamp_object tx p size stamp =
  for w = 0 to (size / 8) - 1 do
    Engine.write_int64 tx p (w * 8) stamp
  done

(* One committed transaction: allocs, whole-object and field-granular
   updates, frees — the same op shapes the crash matrix drives. *)
let committed_tx rng e live =
  Engine.with_tx e (fun tx ->
      let n_ops = 1 + Rng.int rng 3 in
      for _ = 1 to n_ops do
        match Rng.int rng 10 with
        | 0 | 1 ->
            let size = [| 32; 64; 256 |].(Rng.int rng 3) in
            let p = Engine.alloc tx size in
            stamp_object tx p size (Rng.int64 rng);
            live := (p, size) :: !live
        | 2 when !live <> [] ->
            let ps = List.sort compare !live in
            let p, _ = List.nth ps (Rng.int rng (List.length ps)) in
            Engine.free tx p;
            live := List.filter (fun (q, _) -> q <> p) !live
        | _ when !live <> [] ->
            let ps = List.sort compare !live in
            let p, size = List.nth ps (Rng.int rng (List.length ps)) in
            if Rng.bool rng then
              for w = 0 to (size / 8) - 1 do
                Engine.add_field tx p (w * 8) 8
              done
            else Engine.add tx p;
            stamp_object tx p size (Rng.int64 rng)
        | _ -> ()
      done)

let aborted_tx rng e live =
  let tx = Engine.begin_tx e in
  (match List.sort compare !live with
  | [] -> ignore (Engine.alloc tx 64)
  | ps ->
      let p, size = List.nth ps (Rng.int rng (List.length ps)) in
      Engine.add tx p;
      stamp_object tx p size (Rng.int64 rng));
  Engine.abort tx

let run_workload kind can_abort seed =
  let e = Engine.create ~config ~kind ~seed () in
  let rng = Rng.create (seed * 7919) in
  let live = ref [] in
  for _round = 1 to 60 do
    match Rng.int rng 12 with
    | 0 when can_abort -> aborted_tx rng e live
    | 1 ->
        (* Crash between transactions, then recover. Deterministic: torn
           lines are drawn from the engine's own split RNGs. *)
        Engine.crash e;
        Engine.recover e;
        live := List.filter (fun (p, _) -> Heap.is_allocated (Engine.heap e) p) !live
    | _ -> committed_tx rng e live
  done;
  Engine.drain_backup e;
  e

(* FNV-1a over the main heap's volatile byte image (equals the persistent
   image after the final drain for every durable range we care about; what
   matters is that it is deterministic and covers every byte). *)
let heap_hash e =
  let r = Engine.main_region e in
  let h = ref 0x3bf29ce484222325 in
  let chunk = 4096 in
  let size = Region.size r in
  let off = ref 0 in
  while !off < size do
    let len = min chunk (size - !off) in
    let b = Region.read_bytes r !off len in
    for i = 0 to len - 1 do
      h := (!h lxor Char.code (Bytes.get b i)) * 0x100000001b3
    done;
    off := !off + len
  done;
  !h land max_int

let fingerprint kind can_abort seed =
  let e = run_workload kind can_abort seed in
  (* Counters and sim-ns first: hashing the heap performs loads. *)
  let sim = Engine.now e in
  let c = Engine.main_counters e in
  Printf.sprintf
    "sim=%d stores=%d bytes_stored=%d loads=%d bytes_loaded=%d flushed=%d \
     fences=%d copied=%d heap=%x"
    sim c.Region.stores c.Region.bytes_stored c.Region.loads c.Region.bytes_loaded
    c.Region.lines_flushed c.Region.fences c.Region.bytes_copied (heap_hash e)

(* Recorded on the pre-refactor monolithic engine (PR 5 baseline). *)
let expected =
  [
    ("no-logging/seed=1", "sim=74611 stores=1019 bytes_stored=10408 loads=1412 bytes_loaded=11296 flushed=193 fences=55 copied=0 heap=2548557fdb6a5ddf");
    ("no-logging/seed=2", "sim=69234 stores=1092 bytes_stored=10992 loads=1072 bytes_loaded=8576 flushed=181 fences=50 copied=0 heap=2a7893ab76fb0999");
    ("no-logging/seed=3", "sim=88579 stores=2063 bytes_stored=18480 loads=2829 bytes_loaded=22632 flushed=305 fences=58 copied=0 heap=1dd8f7d19f71bbc1");
    ("undo-logging/seed=1", "sim=1093669 stores=3783 bytes_stored=32688 loads=2453 bytes_loaded=26248 flushed=1475 fences=549 copied=10808 heap=15bb7a52914dce43");
    ("undo-logging/seed=2", "sim=887135 stores=3139 bytes_stored=26392 loads=1958 bytes_loaded=21376 flushed=1193 fences=459 copied=9704 heap=2a3b9e99e5b47915");
    ("undo-logging/seed=3", "sim=1482255 stores=5436 bytes_stored=45432 loads=3411 bytes_loaded=37656 flushed=2036 fences=737 copied=16200 heap=f41bdf358cb150a");
    ("cow/seed=1", "sim=1263268 stores=4528 bytes_stored=38648 loads=3335 bytes_loaded=39464 flushed=2109 fences=678 copied=19856 heap=15bb7a52914dce43");
    ("cow/seed=2", "sim=1030311 stores=3743 bytes_stored=31224 loads=2642 bytes_loaded=31768 flushed=1691 fences=569 copied=16352 heap=2a3b9e99e5b47915");
    ("cow/seed=3", "sim=1622873 stores=6293 bytes_stored=52288 loads=4639 bytes_loaded=57584 flushed=2902 fences=876 copied=30304 heap=f41bdf358cb150a");
    ("kamino-simple/seed=1", "sim=339624 stores=3081 bytes_stored=27072 loads=2677 bytes_loaded=21416 flushed=17133 fences=342 copied=1058648 heap=15bb7a52914dce43");
    ("kamino-simple/seed=2", "sim=331292 stores=2613 bytes_stored=22184 loads=2153 bytes_loaded=17224 flushed=17040 fences=322 copied=1056840 heap=2a3b9e99e5b47915");
    ("kamino-simple/seed=3", "sim=348099 stores=4404 bytes_stored=37176 loads=2933 bytes_loaded=23464 flushed=17321 fences=383 copied=1062488 heap=f41bdf358cb150a");
    ("kamino-dynamic/seed=1", "sim=363108 stores=2567 bytes_stored=93400 loads=90257 bytes_loaded=722056 flushed=2015 fences=518 copied=13304 heap=15bb7a52914dce43");
    ("kamino-dynamic/seed=2", "sim=356401 stores=2319 bytes_stored=89056 loads=89527 bytes_loaded=716216 flushed=1882 fences=480 copied=10712 heap=2a3b9e99e5b47915");
    ("kamino-dynamic/seed=3", "sim=142315 stores=3040 bytes_stored=95168 loads=4868 bytes_loaded=38944 flushed=2046 fences=447 copied=16232 heap=f41bdf358cb150a");
    ("intent-only/seed=1", "sim=103085 stores=2772 bytes_stored=24432 loads=2145 bytes_loaded=17160 flushed=519 fences=254 copied=0 heap=2548557fdb6a5ddf");
    ("intent-only/seed=2", "sim=93790 stores=2411 bytes_stored=21544 loads=1660 bytes_loaded=13280 flushed=466 fences=227 copied=0 heap=2a7893ab76fb0999");
    ("intent-only/seed=3", "sim=122527 stores=4948 bytes_stored=41560 loads=3861 bytes_loaded=30888 flushed=661 fences=275 copied=0 heap=1dd8f7d19f71bbc1");
  ]

(* --- sharded parallel oracle ------------------------------------------------ *)

(* The same recorded-fingerprint discipline, one level up: a 4-shard façade
   driven by the domain executor. The cell is fingerprinted per shard (sim
   ns, NVM counters, heap image hash) and must match the recorded value at
   EVERY domain count — so the parallel executor is pinned to the sequential
   baseline, and both are pinned across refactors. *)
let sharded_payload = String.make 200 'p'

let sharded_fingerprint ~domains seed =
  let shards = 4 and clients = 6 and total_ops = 600 and records = 256 in
  let s = Shard.create ~config ~kind:Engine.Kamino_simple ~seed ~shards () in
  let kv = Shard_kv.create s ~value_size:256 ~node_size:1024 in
  for k = 0 to records - 1 do
    Shard_kv.put kv k sharded_payload
  done;
  Shard.drain_backups s;
  let own = Array.make shards [] in
  for k = records - 1 downto 0 do
    own.(Shard.route s k) <- k :: own.(Shard.route s k)
  done;
  let own = Array.map Array.of_list own in
  let rngs = Array.init clients (fun c -> Rng.create ((seed * 131) + c)) in
  let router = Shard_router.create s in
  ignore
    (Shard_driver.run ~domains ~router ~shard:s ~clients ~total_ops
       ~step:(fun ~client ~shard_id () ->
         let keys = own.(shard_id) in
         let rng = rngs.(client) in
         let k = keys.(Rng.int rng (Array.length keys)) in
         let store = Shard_kv.store kv shard_id in
         if Rng.int rng 100 < 50 then begin
           ignore (Kamino_kv.Kv.get store k);
           "read"
         end
         else begin
           Kamino_kv.Kv.put store k sharded_payload;
           "update"
         end)
       ());
  String.concat " "
    (List.init shards (fun i ->
         let e = Shard.engine s i in
         let sim = Engine.now e in
         let c = Engine.main_counters e in
         Printf.sprintf "s%d{sim=%d st=%d fl=%d fe=%d cp=%d heap=%x}" i sim
           c.Region.stores c.Region.lines_flushed c.Region.fences
           c.Region.bytes_copied (heap_hash e)))

(* Recorded at domains=1 on this PR's driver; asserted at every domain
   count below. *)
let expected_sharded =
  [
    ("sharded/seed=1", "s0{sim=480285 st=3545 fl=21309 fe=1052 cp=1203832 heap=226b0fa79fc90eb2} s1{sim=479231 st=3602 fl=21335 fe=1075 cp=1203224 heap=19d9125e5804b2d5} s2{sim=482931 st=3007 fl=20617 fe=848 cp=1182224 heap=1a9d3e4ccd5bbed6} s3{sim=470463 st=2788 fl=20315 fe=795 cp=1173648 heap=29dddcee379e681c}");
    ("sharded/seed=2", "s0{sim=482042 st=3625 fl=21448 fe=1089 cp=1209112 heap=226b0fa79fc90eb2} s1{sim=475145 st=3476 fl=21234 fe=1040 cp=1202168 heap=19d9125e5804b2d5} s2{sim=485254 st=3079 fl=20696 fe=867 cp=1184336 heap=1a9d3e4ccd5bbed6} s3{sim=474311 st=2921 fl=20493 fe=841 cp=1179456 heap=29dddcee379e681c}");
    ("sharded/seed=3", "s0{sim=480490 st=3514 fl=21237 fe=1040 cp=1200136 heap=226b0fa79fc90eb2} s1{sim=478100 st=3534 fl=21241 fe=1047 cp=1200056 heap=19d9125e5804b2d5} s2{sim=483340 st=3026 fl=20656 fe=858 cp=1183808 heap=1a9d3e4ccd5bbed6} s3{sim=468154 st=2668 fl=20070 fe=733 cp=1163088 heap=29dddcee379e681c}");
  ]

let all_cells () =
  List.concat_map
    (fun (name, kind, can_abort) ->
      List.map
        (fun seed ->
          (Printf.sprintf "%s/seed=%d" name seed, fingerprint kind can_abort seed))
        seeds)
    kinds

let () =
  if Sys.getenv_opt "KAMINO_ORACLE_PRINT" <> None then begin
    List.iter
      (fun (cell, fp) -> Printf.printf "    (%S, %S);\n" cell fp)
      (all_cells ());
    List.iter
      (fun seed ->
        Printf.printf "    (%S, %S);\n"
          (Printf.sprintf "sharded/seed=%d" seed)
          (sharded_fingerprint ~domains:1 seed))
      seeds;
    exit 0
  end;
  let cases =
    List.map
      (fun (name, kind, can_abort) ->
        Alcotest.test_case name `Quick (fun () ->
            List.iter
              (fun seed ->
                let cell = Printf.sprintf "%s/seed=%d" name seed in
                let got = fingerprint kind can_abort seed in
                match List.assoc_opt cell expected with
                | None -> Alcotest.failf "%s: no recorded fingerprint" cell
                | Some want ->
                    if got <> want then
                      Alcotest.failf
                        "%s: fingerprint drifted\n  recorded: %s\n  current:  %s" cell
                        want got)
              seeds))
      kinds
  in
  let sharded_case =
    Alcotest.test_case "sharded-parallel" `Quick (fun () ->
        List.iter
          (fun seed ->
            let cell = Printf.sprintf "sharded/seed=%d" seed in
            match List.assoc_opt cell expected_sharded with
            | None -> Alcotest.failf "%s: no recorded fingerprint" cell
            | Some want ->
                List.iter
                  (fun domains ->
                    let got = sharded_fingerprint ~domains seed in
                    if got <> want then
                      Alcotest.failf
                        "%s at domains=%d: fingerprint drifted\n\
                        \  recorded: %s\n\
                        \  current:  %s" cell domains want got)
                  [ 1; 3 ])
          seeds)
  in
  Alcotest.run "variant_oracle"
    [ ("fingerprints", cases); ("sharded", [ sharded_case ]) ]
