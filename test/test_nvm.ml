(* Tests for the simulated NVM region: persistence semantics, cache-line
   dirty tracking, crash behaviour, and cost accounting. *)

module Rng = Kamino_sim.Rng
module Clock = Kamino_sim.Clock
module Region = Kamino_nvm.Region
module Cost_model = Kamino_nvm.Cost_model

let make ?(crash_mode = Region.Drop_unflushed) ?(size = 4096) ?(seed = 1) () =
  let clock = Clock.create () in
  let r = Region.create ~crash_mode ~rng:(Rng.create seed) ~clock ~size () in
  (r, clock)

let test_read_write_roundtrip () =
  let r, _ = make () in
  Region.write_int64 r 0 0x0123456789ABCDEFL;
  Alcotest.(check int64) "int64" 0x0123456789ABCDEFL (Region.read_int64 r 0);
  Region.write_int32 r 8 0x7FEDCBA9l;
  Alcotest.(check int32) "int32" 0x7FEDCBA9l (Region.read_int32 r 8);
  Region.write_int r 16 123456789;
  Alcotest.(check int) "int" 123456789 (Region.read_int r 16);
  Region.write_byte r 24 0xAB;
  Alcotest.(check int) "byte" 0xAB (Region.read_byte r 24);
  Region.write_string r 32 "hello nvm";
  Alcotest.(check string) "string" "hello nvm" (Region.read_string r 32 9)

let test_bounds_checked () =
  let r, _ = make ~size:128 () in
  Alcotest.(check bool) "write oob raises" true
    (try
       Region.write_int64 r 124 1L;
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "read oob raises" true
    (try
       ignore (Region.read_bytes r 120 16);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative offset raises" true
    (try
       ignore (Region.read_int64 r (-8));
       false
     with Invalid_argument _ -> true)

let test_unflushed_lost_on_crash () =
  let r, _ = make () in
  Region.write_int64 r 0 42L;
  Region.crash r;
  Alcotest.(check int64) "unflushed write lost" 0L (Region.read_int64 r 0)

let test_persisted_survives_crash () =
  let r, _ = make () in
  Region.write_int64 r 0 42L;
  Region.persist r 0 8;
  Region.write_int64 r 64 7L;
  (* second write unflushed *)
  Region.crash r;
  Alcotest.(check int64) "persisted survives" 42L (Region.read_int64 r 0);
  Alcotest.(check int64) "unflushed dropped" 0L (Region.read_int64 r 64)

let test_flush_is_line_granular () =
  let r, _ = make () in
  (* Two writes to the same 64 B line: flushing any byte of the line
     persists both. *)
  Region.write_int64 r 0 1L;
  Region.write_int64 r 8 2L;
  Region.flush r 0 1;
  Region.fence r;
  Region.crash r;
  Alcotest.(check int64) "first word" 1L (Region.read_int64 r 0);
  Alcotest.(check int64) "second word same line" 2L (Region.read_int64 r 8)

let test_is_persisted () =
  let r, _ = make () in
  Region.write_int64 r 0 1L;
  Alcotest.(check bool) "dirty before flush" false (Region.is_persisted r 0 8);
  Region.persist r 0 8;
  Alcotest.(check bool) "clean after flush" true (Region.is_persisted r 0 8);
  Alcotest.(check bool) "empty range is persisted" true (Region.is_persisted r 0 0)

let test_dirty_lines_counted () =
  let r, _ = make () in
  Alcotest.(check int) "initially clean" 0 (Region.dirty_lines r);
  Region.write_int64 r 0 1L;
  Region.write_int64 r 100 1L;
  Alcotest.(check int) "two dirty lines" 2 (Region.dirty_lines r);
  Region.flush_all r;
  Alcotest.(check int) "clean after flush_all" 0 (Region.dirty_lines r)

let test_crash_word_granularity () =
  (* With Words_survive_randomly, over many trials, an unflushed dirty word
     sometimes survives and sometimes does not. *)
  let survived = ref 0 and lost = ref 0 in
  for seed = 1 to 64 do
    let r, _ = make ~crash_mode:Region.Words_survive_randomly ~seed () in
    Region.write_int64 r 0 99L;
    Region.crash r;
    if Region.read_int64 r 0 = 99L then incr survived else incr lost
  done;
  Alcotest.(check bool) "some survive" true (!survived > 0);
  Alcotest.(check bool) "some are lost" true (!lost > 0)

let test_crash_never_invents_data () =
  (* Whatever the crash mode, post-crash contents of each word must equal
     either the pre-crash volatile value or the last persisted value. *)
  let r, _ = make ~crash_mode:Region.Words_survive_randomly ~size:1024 ~seed:9 () in
  let rng = Rng.create 77 in
  Region.write_int64 r 0 1L;
  Region.persist r 0 8;
  for _ = 1 to 200 do
    let off = Rng.int rng 128 * 8 in
    Region.write_int64 r off (Rng.int64 rng)
  done;
  let volatile = Array.init 128 (fun i -> Region.read_int64 r (i * 8)) in
  Region.crash r;
  for i = 0 to 127 do
    let v = Region.read_int64 r (i * 8) in
    let ok = v = volatile.(i) || v = 0L || (i = 0 && v = 1L) in
    Alcotest.(check bool) "word is old or new, never garbage" true ok
  done

let test_copy_between () =
  let src, _ = make () in
  let clock = Clock.create () in
  let dst =
    Region.create ~crash_mode:Region.Drop_unflushed ~rng:(Rng.create 2) ~clock ~size:4096 ()
  in
  Region.write_string src 10 "payload";
  Region.copy_between ~src ~src_off:10 ~dst ~dst_off:200 ~len:7;
  Alcotest.(check string) "copied" "payload" (Region.read_string dst 200 7);
  Alcotest.(check bool) "copy dirties destination" false (Region.is_persisted dst 200 7)

let test_blit_within () =
  let r, _ = make () in
  Region.write_string r 0 "abcdef";
  Region.blit r ~src:0 ~dst:100 ~len:6;
  Alcotest.(check string) "blit copies" "abcdef" (Region.read_string r 100 6)

let test_costs_charged () =
  let r, clock = make () in
  let t0 = Clock.now clock in
  Region.write_int64 r 0 1L;
  let t1 = Clock.now clock in
  Alcotest.(check bool) "store charged" true (t1 > t0);
  Region.persist r 0 8;
  let t2 = Clock.now clock in
  let c = Region.cost_model r in
  Alcotest.(check bool) "flush+fence charged at least model cost" true
    (float_of_int (t2 - t1) >= c.Cost_model.flush_line_ns);
  (* a fence alone charges fence_ns *)
  let t3 = Clock.now clock in
  Region.fence r;
  Alcotest.(check bool) "fence charged" true
    (float_of_int (Clock.now clock - t3) >= c.Cost_model.fence_ns -. 1.0)

let test_clock_switch () =
  let r, clock_a = make () in
  let clock_b = Clock.create () in
  Region.write_int64 r 0 1L;
  let a_spent = Clock.now clock_a in
  Region.set_clock r clock_b;
  Region.write_int64 r 8 1L;
  Alcotest.(check int) "first clock unchanged" a_spent (Clock.now clock_a);
  Alcotest.(check bool) "second clock charged" true (Clock.now clock_b > 0)

let test_counters () =
  let r, _ = make () in
  Region.write_int64 r 0 1L;
  Region.write_int64 r 8 2L;
  ignore (Region.read_int64 r 0);
  Region.persist r 0 16;
  let c = Region.counters r in
  Alcotest.(check int) "stores" 2 c.Region.stores;
  Alcotest.(check int) "bytes stored" 16 c.Region.bytes_stored;
  Alcotest.(check int) "loads" 1 c.Region.loads;
  Alcotest.(check int) "lines flushed" 1 c.Region.lines_flushed;
  Alcotest.(check int) "fences" 1 c.Region.fences;
  Region.reset_counters r;
  Alcotest.(check int) "reset" 0 (Region.counters r).Region.stores

let test_fill () =
  let r, _ = make () in
  Region.fill r 0 32 0xFF;
  Alcotest.(check int) "filled" 0xFF (Region.read_byte r 31);
  Region.fill r 0 32 0;
  Alcotest.(check int) "zeroed" 0 (Region.read_byte r 0)

let crash_roundtrip_qcheck =
  QCheck.Test.make ~name:"persisted prefixes always survive crashes" ~count:100
    QCheck.(pair small_int (small_list (pair small_int small_int)))
    (fun (seed, writes) ->
      let r, _ = make ~crash_mode:Region.Words_survive_randomly ~size:8192 ~seed () in
      (* Persist a known prefix, then scribble unflushed noise elsewhere. *)
      Region.write_string r 0 "checkpoint";
      Region.persist r 0 10;
      List.iter
        (fun (o, v) ->
          let off = 64 + (o mod 8000) in
          Region.write_byte r off v)
        writes;
      Region.crash r;
      Region.read_string r 0 10 = "checkpoint")

let crash_idempotent_qcheck =
  QCheck.Test.make ~name:"a second crash without writes changes nothing" ~count:60
    QCheck.(pair small_int (small_list (pair small_int small_int)))
    (fun (seed, writes) ->
      let r, _ = make ~crash_mode:Region.Words_survive_randomly ~size:4096 ~seed () in
      List.iter (fun (o, v) -> Region.write_byte r (o mod 4096) v) writes;
      Region.crash r;
      let image1 = Region.read_bytes r 0 4096 in
      Region.crash r;
      Region.read_bytes r 0 4096 = image1)

let flush_then_crash_qcheck =
  QCheck.Test.make ~name:"persist_all makes crashes lossless" ~count:60
    QCheck.(pair small_int (small_list (pair small_int small_int)))
    (fun (seed, writes) ->
      let r, _ = make ~crash_mode:Region.Words_survive_randomly ~size:4096 ~seed () in
      List.iter (fun (o, v) -> Region.write_byte r (o mod 4096) v) writes;
      Region.persist_all r;
      let before = Region.read_bytes r 0 4096 in
      Region.crash r;
      Region.read_bytes r 0 4096 = before)

let partial_flush_qcheck =
  QCheck.Test.make ~name:"flushing a range persists at least that range" ~count:60
    QCheck.(triple small_int small_int (small_list small_int))
    (fun (seed, off, noise) ->
      let off = off mod 3900 in
      let r, _ = make ~crash_mode:Region.Words_survive_randomly ~size:4096 ~seed () in
      Region.write_string r off "payload!";
      Region.persist r off 8;
      List.iter (fun o -> Region.write_byte r (o mod 4096) 0xEE) noise;
      Region.crash r;
      Region.read_string r off 8 = "payload!"
      || (* noise may legitimately overwrite the payload bytes and survive *)
      List.exists (fun o -> let o = o mod 4096 in o >= off && o < off + 8) noise)

let () =
  Alcotest.run "nvm"
    [
      ( "region",
        [
          Alcotest.test_case "read/write roundtrip" `Quick test_read_write_roundtrip;
          Alcotest.test_case "bounds checked" `Quick test_bounds_checked;
          Alcotest.test_case "fill" `Quick test_fill;
          Alcotest.test_case "blit within" `Quick test_blit_within;
          Alcotest.test_case "copy between regions" `Quick test_copy_between;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "unflushed lost on crash" `Quick test_unflushed_lost_on_crash;
          Alcotest.test_case "persisted survives crash" `Quick test_persisted_survives_crash;
          Alcotest.test_case "flush is line granular" `Quick test_flush_is_line_granular;
          Alcotest.test_case "is_persisted" `Quick test_is_persisted;
          Alcotest.test_case "dirty lines counted" `Quick test_dirty_lines_counted;
        ] );
      ( "crash",
        [
          Alcotest.test_case "word-granular survival" `Quick test_crash_word_granularity;
          Alcotest.test_case "never invents data" `Quick test_crash_never_invents_data;
          QCheck_alcotest.to_alcotest crash_roundtrip_qcheck;
          QCheck_alcotest.to_alcotest crash_idempotent_qcheck;
          QCheck_alcotest.to_alcotest flush_then_crash_qcheck;
          QCheck_alcotest.to_alcotest partial_flush_qcheck;
        ] );
      ( "costs",
        [
          Alcotest.test_case "charged to clock" `Quick test_costs_charged;
          Alcotest.test_case "clock switching" `Quick test_clock_switch;
          Alcotest.test_case "counters" `Quick test_counters;
        ] );
    ]
