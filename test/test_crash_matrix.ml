(* Randomized crash matrix: engine kind x crash mode x coalescing flag.

   For every cell of the matrix, seeded workloads run random transactions
   and crash the machine at the points the coalescing pipeline makes
   delicate — mid-transaction (intent entries possibly merged in place and
   not yet flushed), right after commit (the whole write set queued but not
   propagated), and mid-propagation (the applier's batch partially
   retired). After each recovery the committed-state model must be intact;
   at the end the backup invariant must hold.

   The load-bearing claim of the write-set coalescing work is that it is
   invisible to every outcome: each seed additionally runs twice, with
   coalescing on and off, and the final committed byte images must be
   identical (the workload's random draws never depend on engine
   internals, so the two runs build the same model). *)

module Rng = Kamino_sim.Rng
module Region = Kamino_nvm.Region
module Heap = Kamino_heap.Heap
module Engine = Kamino_core.Engine
module Applier = Kamino_core.Applier
module Backup = Kamino_core.Backup

let base_config =
  {
    Engine.default_config with
    Engine.heap_bytes = 1 lsl 20;
    log_slots = 16;
    data_log_bytes = 1 lsl 18;
  }

(* Engine builders. The chain head is an [Intent_only] replica that commits
   a little history and is then promoted to a Kamino-simple head (fresh
   full backup + applier), which is how §5.2 creates one — from then on it
   crashes and recovers like any other head. *)
let make_simple config seed = Engine.create ~config ~kind:Engine.Kamino_simple ~seed ()

let make_dynamic config seed =
  Engine.create ~config
    ~kind:(Engine.Kamino_dynamic { alpha = 0.3; policy = Backup.Lru_policy })
    ~seed ()

let make_chain_head config seed =
  let e = Engine.create ~config ~kind:Engine.Intent_only ~seed () in
  for i = 1 to 3 do
    Engine.with_tx e (fun tx ->
        let p = Engine.alloc tx 64 in
        Engine.write_int64 tx p 0 (Int64.of_int i))
  done;
  Engine.promote_to_kamino e;
  e

type model = (Heap.ptr, int * int64) Hashtbl.t

let verify_model e (model : model) context =
  Hashtbl.iter
    (fun p (size, stamp) ->
      if not (Heap.is_allocated (Engine.heap e) p) then
        Alcotest.failf "%s: committed object %d lost" context p;
      for w = 0 to (size / 8) - 1 do
        let v = Engine.peek_int64 e p (w * 8) in
        if v <> stamp then
          Alcotest.failf "%s: object %d word %d is %Ld, expected %Ld" context p w v
            stamp
      done)
    model;
  match Heap.validate (Engine.heap e) with
  | Ok () -> ()
  | Error err -> Alcotest.failf "%s: heap invalid: %s" context err

let stamp_object tx p size stamp =
  for w = 0 to (size / 8) - 1 do
    Engine.write_int64 tx p (w * 8) stamp
  done

(* One random transaction. Field-granular updates (several small, possibly
   overlapping strided declares before the writes) are deliberately common:
   they are what the coalescer actually merges. Returns the model mutation
   to apply if the transaction commits. *)
let random_tx rng e (model : model) =
  let tx = Engine.begin_tx e in
  let pending = ref [] in
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) model [] in
  let keys = List.sort compare keys in
  let n_ops = 1 + Rng.int rng 3 in
  for _ = 1 to n_ops do
    match Rng.int rng 10 with
    | 0 | 1 ->
        let size = [| 32; 64; 256 |].(Rng.int rng 3) in
        let p = Engine.alloc tx size in
        let stamp = Rng.int64 rng in
        stamp_object tx p size stamp;
        pending := `Put (p, size, stamp) :: !pending
    | 2 when keys <> [] ->
        let p = List.nth keys (Rng.int rng (List.length keys)) in
        if not (List.exists (function `Put (q, _, _) | `Del q -> q = p) !pending)
        then begin
          Engine.free tx p;
          pending := `Del p :: !pending
        end
    | _ when keys <> [] ->
        let p = List.nth keys (Rng.int rng (List.length keys)) in
        if not (List.exists (function `Del q -> q = p | `Put _ -> false) !pending)
        then begin
          let size, _ = Hashtbl.find model p in
          let stamp = Rng.int64 rng in
          (* Half the time declare word-by-word (adjacent 8-byte intents the
             log merges), half the time whole-object. *)
          if Rng.bool rng then
            for w = 0 to (size / 8) - 1 do
              Engine.add_field tx p (w * 8) 8
            done
          else Engine.add tx p;
          stamp_object tx p size stamp;
          pending := `Put (p, size, stamp) :: !pending
        end
    | _ -> ()
  done;
  (tx, !pending)

let apply_to_model model pending =
  List.iter
    (function
      | `Put (p, size, stamp) -> Hashtbl.replace model p (size, stamp)
      | `Del p -> Hashtbl.remove model p)
    (List.rev pending)

let crash_recover e = Engine.crash e; Engine.recover e

(* --- snapshot-read dimension ---------------------------------------------

   Interleaved with the crash workload, snapshot reads get their own
   serial history: per object, [(task_id, Some (size, stamp))] for each
   committed (re)stamp and [(task_id, None)] for a free — newest first,
   task ids from [Applier.last_enqueued] at commit time. A snapshot read
   of an object must then show, in {e every} word, exactly the stamp of
   the newest entry at or below the watermark — one uniform committed
   stamp, so any torn value (words from two different commits, or from
   an uncommitted write) fails. Entries above the watermark, objects not
   yet allocated at the watermark, and freed-at-the-watermark objects are
   skipped: their backup bytes are legitimately indeterminate.

   Recovery resets the dimension: a fresh applier restarts the watermark
   at (0, 0), and the recovered backup holds the whole durable prefix, so
   every live object's history collapses to [(0, current committed
   stamp)] — which the post-recovery sweep then checks against the
   backup, crashes mid-applier-batch included. *)

type shist = (Heap.ptr, (int * (int * int64) option) list) Hashtbl.t

let task_now e =
  match Engine.applier e with Some a -> Applier.last_enqueued a | None -> 0

let srecord (sh : shist) e pending =
  let task = task_now e in
  List.iter
    (fun ev ->
      let p, v =
        match ev with
        | `Put (p, size, stamp) -> (p, Some (size, stamp))
        | `Del p -> (p, None)
      in
      Hashtbl.replace sh p
        ((task, v) :: Option.value ~default:[] (Hashtbl.find_opt sh p)))
    (List.rev pending)

let reset_shist (sh : shist) (model : model) =
  Hashtbl.reset sh;
  Hashtbl.iter
    (fun p (size, stamp) -> Hashtbl.replace sh p [ (0, Some (size, stamp)) ])
    model

(* Sweep every tracked object against the backup image at the current
   watermark. *)
let snapshot_sweep e (sh : shist) last_wm context =
  match Engine.snapshot_watermark e with
  | None -> ()
  | Some (wm_id, wm_ns) ->
      let pa, pns = !last_wm in
      if wm_id < pa || wm_ns < pns then
        Alcotest.failf "%s: watermark regressed (%d,%d) -> (%d,%d)" context pa
          pns wm_id wm_ns;
      last_wm := (wm_id, wm_ns);
      let enq = task_now e in
      if wm_id > enq then
        Alcotest.failf "%s: watermark %d beyond last durable commit %d" context
          wm_id enq;
      Hashtbl.iter
        (fun p entries ->
          let rec at = function
            | [] -> None
            | (task, v) :: rest -> if task <= wm_id then Some v else at rest
          in
          match at entries with
          | Some (Some (size, stamp)) ->
              let words =
                Engine.read_tx e (fun snap ->
                    Some
                      (List.init (size / 8) (fun w ->
                           Engine.snapshot_read_int64 snap p (w * 8))))
              in
              (match words with
              | None -> ()
              | Some ws ->
                  List.iteri
                    (fun w v ->
                      if v <> stamp then
                        Alcotest.failf
                          "%s: torn snapshot: object %d word %d is %Ld, \
                           watermark %d says %Ld"
                          context p w v wm_id stamp)
                    ws)
          | Some None | None -> ())
        sh

(* One seeded workload; returns the final committed byte image, sorted by
   object, for cross-run comparison. *)
let run_workload ~make_engine ~crash_mode ~coalesce ~seed ~rounds context =
  let config = { base_config with Engine.crash_mode; coalesce_writes = coalesce } in
  let rng = Rng.create seed in
  let e = make_engine config (seed + 1000) in
  let model : model = Hashtbl.create 64 in
  let sh : shist = Hashtbl.create 64 in
  let last_wm = ref (-1, -1) in
  let commit_and_record tx pending =
    Engine.commit tx;
    apply_to_model model pending;
    srecord sh e pending
  in
  (* Crash + recover, then re-baseline the snapshot dimension: fresh
     applier, watermark (0, 0), backup = the whole durable prefix. The
     immediate sweep is the post-recovery oracle — no torn values even
     when the crash landed mid-applier-batch. *)
  let crash_recover_reset ctx =
    crash_recover e;
    reset_shist sh model;
    last_wm := (-1, -1);
    (match Engine.snapshot_watermark e with
    | Some ((a, _) as wm) ->
        if a <> 0 then
          Alcotest.failf "%s: post-recovery watermark %d <> 0 (fresh applier)"
            ctx a;
        if wm > (task_now e, max_int) then
          Alcotest.failf "%s: post-recovery watermark beyond durable commits"
            ctx
    | None -> ());
    snapshot_sweep e sh last_wm (ctx ^ " (post-recovery snapshot)")
  in
  for round = 1 to rounds do
    let context = Printf.sprintf "%s seed=%d round=%d" context seed round in
    (match Rng.int rng 12 with
    | 0 ->
        (* crash mid-transaction: intents (possibly merged in place) may be
           unflushed, in-place writes may be torn *)
        let _tx, _pending = random_tx rng e model in
        crash_recover_reset context;
        verify_model e model (context ^ " (mid-tx crash)")
    | 1 ->
        (* crash mid-propagation: the write set is committed and queued but
           nothing has been applied *)
        let tx, pending = random_tx rng e model in
        commit_and_record tx pending;
        crash_recover_reset context;
        verify_model e model (context ^ " (pre-propagation crash)")
    | 2 ->
        (* crash mid-propagation with a partially retired queue: several
           committed write sets, one applied, the rest still pending *)
        let tx, pending = random_tx rng e model in
        commit_and_record tx pending;
        let tx, pending = random_tx rng e model in
        commit_and_record tx pending;
        (match Engine.applier e with
        | Some a -> ignore (Applier.drain_one a)
        | None -> ());
        snapshot_sweep e sh last_wm (context ^ " (mid-batch snapshot)");
        crash_recover_reset context;
        verify_model e model (context ^ " (mid-propagation crash)")
    | 3 ->
        let tx, _pending = random_tx rng e model in
        Engine.abort tx;
        verify_model e model (context ^ " (abort)")
    | 4 ->
        let tx, _pending = random_tx rng e model in
        Engine.abort tx;
        crash_recover_reset context;
        verify_model e model (context ^ " (post-abort crash)")
    | 5 ->
        let tx, pending = random_tx rng e model in
        commit_and_record tx pending;
        crash_recover_reset context;
        crash_recover_reset context;
        verify_model e model (context ^ " (double crash)")
    | _ ->
        let tx, pending = random_tx rng e model in
        commit_and_record tx pending);
    snapshot_sweep e sh last_wm context
  done;
  Engine.drain_backup e;
  verify_model e model (Printf.sprintf "%s seed=%d final" context seed);
  snapshot_sweep e sh last_wm (Printf.sprintf "%s seed=%d final snapshot" context seed);
  (match Engine.verify_backup e with
  | Ok () -> ()
  | Error err -> Alcotest.failf "%s seed=%d: %s" context seed err);
  Hashtbl.fold (fun p (size, _) acc -> (p, size, Engine.peek_bytes e p 0 size) :: acc)
    model []
  |> List.sort compare

(* --- sharded dimension ----------------------------------------------------- *)

module Shard = Kamino_shard.Shard

exception Crashed

(* Random crash points during cross-shard commits. Each round stamps a
   fresh value into one object per participating shard through
   [with_cross_tx] and crashes at a random protocol step (or not at all).
   The all-or-nothing oracle: a crash before the marker's valid flag is
   durable must leave every shard at the previous stamp on recovery; from
   [Marker_written] on, every shard must show the new stamp — there is no
   step at which a mixed outcome is acceptable. *)
let sharded_case crash_mode () =
  List.iter
    (fun seed ->
      let shards = 3 in
      let config = { base_config with Engine.crash_mode } in
      let s = Shard.create ~config ~kind:Engine.Kamino_simple ~seed ~shards () in
      let rng = Rng.create (seed * 71) in
      let cells =
        Array.init shards (fun i ->
            Shard.with_tx s i (fun tx ->
                let p = Engine.alloc tx 64 in
                Engine.write_int64 tx p 0 0L;
                p))
      in
      let stamps = Array.make shards 0L in
      for round = 1 to 30 do
        let context = Printf.sprintf "sharded seed=%d round=%d" seed round in
        (* 2 or 3 participants, random composition. *)
        let ids =
          let all = [ 0; 1; 2 ] in
          if Rng.bool rng then all
          else
            let out = Rng.int rng shards in
            List.filter (fun i -> i <> out) all
        in
        let stamp = Int64.of_int ((round * 100) + seed) in
        (* Protocol steps: |ids| prepares, marker write, |ids| commits,
           marker clear. [n_steps] means "run to completion". *)
        let n_steps = (2 * List.length ids) + 2 in
        let crash_at = Rng.int rng (n_steps + 1) in
        let count = ref 0 in
        let on_step _ =
          if !count = crash_at then begin
            Shard.crash s;
            raise Crashed
          end;
          incr count
        in
        let write_all tx_of =
          List.iter
            (fun i ->
              let tx = tx_of i in
              Engine.add tx cells.(i);
              Engine.write_int64 tx cells.(i) 0 stamp)
            ids
        in
        let crashed =
          match Shard.with_cross_tx ~on_step s ids write_all with
          | () -> false
          | exception Crashed -> true
        in
        if crashed then Shard.recover s;
        (* Marker durable (valid flag persisted) iff crash_at reached the
           [Marker_written] step — all applied; before it — none. *)
        let applied = (not crashed) || crash_at >= List.length ids in
        if applied then List.iter (fun i -> stamps.(i) <- stamp) ids;
        List.iter
          (fun i ->
            let v = Engine.peek_int64 (Shard.engine s i) cells.(i) 0 in
            if v <> stamps.(i) then
              Alcotest.failf "%s (crash_at=%d of %d): shard %d cell is %Ld, expected %Ld"
                context crash_at n_steps i v stamps.(i))
          [ 0; 1; 2 ];
        Alcotest.(check int) (context ^ ": marker retired") 0
          (Region.read_int (Shard.marker_region s) 0)
      done;
      Shard.drain_backups s;
      (match Shard.verify_backups s with
      | Ok () -> ()
      | Error err -> Alcotest.failf "sharded seed=%d: %s" seed err);
      Array.iteri
        (fun i e ->
          match Heap.validate (Engine.heap e) with
          | Ok () -> ()
          | Error err -> Alcotest.failf "sharded seed=%d shard %d: %s" seed i err)
        (Array.init shards (Shard.engine s)))
    (List.init 12 (fun i -> i + 1))

let seeds = List.init 17 (fun i -> i + 1)

let matrix_case name make_engine crash_mode () =
  List.iter
    (fun seed ->
      let image_on =
        run_workload ~make_engine ~crash_mode ~coalesce:true ~seed ~rounds:40
          (name ^ "/coalesce")
      in
      let image_off =
        run_workload ~make_engine ~crash_mode ~coalesce:false ~seed ~rounds:40
          (name ^ "/raw")
      in
      if image_on <> image_off then
        Alcotest.failf
          "%s seed=%d: coalescing changed the final committed state (%d vs %d objects)"
          name seed (List.length image_on) (List.length image_off))
    seeds

(* --- filesystem dimension --------------------------------------------------- *)

module Fs = Kamino_fs.Fs
module Fs_check = Kamino_fs.Fs_check

(* Seeded random filesystem workloads with crash injection, across all
   six engine kinds and both crash modes. The namespace and every file's
   bytes are mirrored in a volatile model; fs semantic rejections (name
   exists, directory not empty, cycle, ...) leave both sides untouched.
   Atomic kinds additionally crash at random mutation steps inside
   operations; every kind crashes at operation boundaries. After every
   recovery: {!Fs_check.fsck} plus a full sweep — every directory's
   listing, every file's bytes, every link count. *)

type fs_spec = Fs_plain of Engine.kind | Fs_chain_head

let fs_builders =
  [
    ("no-logging", Fs_plain Engine.No_logging, false);
    ("undo", Fs_plain Engine.Undo_logging, true);
    ("cow", Fs_plain Engine.Cow, true);
    ("kamino-simple", Fs_plain Engine.Kamino_simple, true);
    ( "kamino-dynamic",
      Fs_plain (Engine.Kamino_dynamic { alpha = 0.3; policy = Backup.Lru_policy }),
      true );
    ("chain-head", Fs_chain_head, true);
  ]

let splice content ~off s =
  let n = max (String.length content) (off + String.length s) in
  let b = Bytes.make n '\000' in
  Bytes.blit_string content 0 b 0 (String.length content);
  Bytes.blit_string s 0 b off (String.length s);
  Bytes.to_string b

let model_truncate content len =
  if len <= String.length content then String.sub content 0 len
  else content ^ String.make (len - String.length content) '\000'

let fs_case (kname, spec, atomic) crash_mode () =
  List.iter
    (fun seed ->
      let config =
        {
          base_config with
          Engine.heap_bytes = 2 lsl 20;
          log_slots = 64;
          max_tx_entries = 8192;
          data_log_bytes = 1 lsl 20;
          crash_mode;
        }
      in
      (* The chain head formats while still an [Intent_only] replica and
         is then promoted (§5.2) — the whole heap stays fs-owned, which
         the fsck heap-accounting pass insists on. *)
      let e, fs =
        match spec with
        | Fs_plain kind ->
            let e = Engine.create ~config ~kind ~seed:(seed + 500) () in
            (e, Fs.format ~block_size:64 ~dir_hash_bits:2 e)
        | Fs_chain_head ->
            let e = Engine.create ~config ~kind:Engine.Intent_only ~seed:(seed + 500) () in
            let fs = Fs.format ~block_size:64 ~dir_hash_bits:2 e in
            Engine.promote_to_kamino e;
            (e, fs)
      in
      let root = Fs.root_ino fs in
      let rng = Rng.create (seed * 13) in
      (* The volatile mirror. *)
      let entries : (int, (string, int) Hashtbl.t) Hashtbl.t = Hashtbl.create 16 in
      let contents : (int, string) Hashtbl.t = Hashtbl.create 16 in
      let nlinks : (int, int) Hashtbl.t = Hashtbl.create 16 in
      Hashtbl.replace entries root (Hashtbl.create 8);
      let dirs () = Hashtbl.fold (fun k _ a -> k :: a) entries [] |> List.sort compare in
      let files () = Hashtbl.fold (fun k _ a -> k :: a) contents [] |> List.sort compare in
      let pick l = List.nth l (Rng.int rng (List.length l)) in
      let gen_name () = Printf.sprintf "n%d" (Rng.int rng 10) in
      let drop_link ino =
        let nl = Hashtbl.find nlinks ino - 1 in
        if nl = 0 then begin
          Hashtbl.remove nlinks ino;
          Hashtbl.remove contents ino
        end
        else Hashtbl.replace nlinks ino nl
      in
      let verify ctx =
        (match Fs_check.fsck fs with
        | Ok () -> ()
        | Error err -> Alcotest.failf "%s: fsck: %s" ctx err);
        Hashtbl.iter
          (fun d tbl ->
            let got = List.sort compare (Fs.readdir fs ~dir:d) in
            let want =
              Hashtbl.fold (fun n i a -> (n, i) :: a) tbl [] |> List.sort compare
            in
            if got <> want then
              Alcotest.failf "%s: directory %d lists %d entries, model has %d" ctx d
                (List.length got) (List.length want))
          entries;
        Hashtbl.iter
          (fun f content ->
            let st = Fs.stat fs f in
            if st.Fs.size <> String.length content then
              Alcotest.failf "%s: file %d size %d, model %d" ctx f st.Fs.size
                (String.length content);
            if st.Fs.nlink <> Hashtbl.find nlinks f then
              Alcotest.failf "%s: file %d nlink %d, model %d" ctx f st.Fs.nlink
                (Hashtbl.find nlinks f);
            let got = Fs.read fs ~ino:f ~off:0 ~len:(String.length content) in
            if got <> content then Alcotest.failf "%s: file %d bytes diverge" ctx f)
          contents
      in
      (* Run one operation, possibly with a crash at a random mutation
         step; apply the model mutation only if the fs applied it. *)
      let run ctx op ~apply =
        if atomic && Rng.int rng 4 = 0 then begin
          let crash_at = Rng.int rng 30 in
          let count = ref 0 in
          let on_step _ =
            if !count = crash_at then begin
              Engine.crash e;
              raise Crashed
            end;
            incr count
          in
          match op ~on_step:(Some on_step) () with
          | v -> apply v
          | exception Fs.Fs_error _ -> ()
          | exception Crashed ->
              Engine.recover e;
              verify (ctx ^ " (mid-op crash)")
        end
        else
          match op ~on_step:None () with
          | v -> apply v
          | exception Fs.Fs_error _ -> ()
      in
      for round = 1 to 50 do
        let ctx = Printf.sprintf "fs/%s seed=%d round=%d" kname seed round in
        (match Rng.int rng 12 with
        | 0 | 1 ->
            let dir = pick (dirs ()) and name = gen_name () in
            run ctx
              (fun ~on_step () -> Fs.create ?on_step fs ~dir name)
              ~apply:(fun ino ->
                Hashtbl.replace (Hashtbl.find entries dir) name ino;
                Hashtbl.replace contents ino "";
                Hashtbl.replace nlinks ino 1)
        | 2 ->
            let dir = pick (dirs ()) and name = gen_name () in
            run ctx
              (fun ~on_step () -> Fs.mkdir ?on_step fs ~dir name)
              ~apply:(fun ino ->
                Hashtbl.replace (Hashtbl.find entries dir) name ino;
                Hashtbl.replace entries ino (Hashtbl.create 8))
        | 3 | 4 when files () <> [] ->
            let f = pick (files ()) in
            let off = Rng.int rng 300 in
            let s = Printf.sprintf "<%d:%d>" round (Rng.int rng 1000) in
            run ctx
              (fun ~on_step () -> Fs.write ?on_step fs ~ino:f ~off s)
              ~apply:(fun () ->
                Hashtbl.replace contents f (splice (Hashtbl.find contents f) ~off s))
        | 5 when files () <> [] ->
            let f = pick (files ()) in
            let len = Rng.int rng 400 in
            run ctx
              (fun ~on_step () -> Fs.truncate ?on_step fs ~ino:f ~len)
              ~apply:(fun () ->
                Hashtbl.replace contents f (model_truncate (Hashtbl.find contents f) len))
        | 6 ->
            (* Rename a random model entry to a random directory; the fs
               decides legality (clobber rules, cycles) and the model
               follows its verdict. *)
            let candidates =
              Hashtbl.fold
                (fun d tbl acc -> Hashtbl.fold (fun n i acc -> (d, n, i) :: acc) tbl acc)
                entries []
              |> List.sort compare
            in
            if candidates <> [] then begin
              let src, src_name, moved = pick candidates in
              let dst = pick (dirs ()) and dst_name = gen_name () in
              let clobbered = Hashtbl.find_opt (Hashtbl.find entries dst) dst_name in
              run ctx
                (fun ~on_step () ->
                  Fs.rename ?on_step fs ~src ~src_name ~dst ~dst_name)
                ~apply:(fun () ->
                  if not (src = dst && src_name = dst_name) then begin
                    (match clobbered with
                    | Some c -> drop_link c
                    | None -> ());
                    Hashtbl.remove (Hashtbl.find entries src) src_name;
                    Hashtbl.replace (Hashtbl.find entries dst) dst_name moved
                  end)
            end
        | 7 when files () <> [] ->
            let f = pick (files ()) in
            let dir = pick (dirs ()) and name = gen_name () in
            run ctx
              (fun ~on_step () -> Fs.link ?on_step fs ~ino:f ~dir name)
              ~apply:(fun () ->
                Hashtbl.replace (Hashtbl.find entries dir) name f;
                Hashtbl.replace nlinks f (Hashtbl.find nlinks f + 1))
        | 8 ->
            let with_entries =
              List.filter (fun d -> Hashtbl.length (Hashtbl.find entries d) > 0) (dirs ())
            in
            if with_entries <> [] then begin
              let dir = pick with_entries in
              let tbl = Hashtbl.find entries dir in
              let names = Hashtbl.fold (fun n _ a -> n :: a) tbl [] |> List.sort compare in
              let name = pick names in
              let target = Hashtbl.find tbl name in
              if Hashtbl.mem entries target then
                run ctx
                  (fun ~on_step () -> Fs.rmdir ?on_step fs ~dir name)
                  ~apply:(fun () ->
                    Hashtbl.remove tbl name;
                    Hashtbl.remove entries target)
              else
                run ctx
                  (fun ~on_step () -> Fs.unlink ?on_step fs ~dir name)
                  ~apply:(fun () ->
                    Hashtbl.remove tbl name;
                    drop_link target)
            end
        | 9 ->
            (* Crash at an operation boundary — the only crash point
               No_logging promises anything about. *)
            crash_recover e;
            verify (ctx ^ " (boundary crash)")
        | 10 ->
            (* Partially retired applier batch, then the power fails. *)
            (match Engine.applier e with
            | Some a -> ignore (Applier.drain_one a)
            | None -> ());
            crash_recover e;
            verify (ctx ^ " (mid-applier crash)")
        | _ when files () <> [] ->
            let f = pick (files ()) in
            let model = Hashtbl.find contents f in
            let got = Fs.read fs ~ino:f ~off:0 ~len:(max 1 (String.length model)) in
            if got <> model then Alcotest.failf "%s: read diverges from model" ctx
        | _ -> ());
        if round mod 10 = 0 then verify ctx
      done;
      Engine.drain_backup e;
      verify (Printf.sprintf "fs/%s seed=%d final" kname seed);
      match Engine.verify_backup e with
      | Ok () -> ()
      | Error err -> Alcotest.failf "fs/%s seed=%d: backup: %s" kname seed err)
    (List.init 6 (fun i -> i + 1))

(* --- chain snapshots across a view change ---------------------------------- *)

(* §5.2 crossed with lock-free snapshot reads: while a head promotion is
   in flight the new head has no full backup, so its snapshot watermark is
   [None] and {!Cluster_kv.snapshot_get} must take the tail-read fallback;
   once the promotion completes, every snapshot served from the backup at
   the published watermark must be a prefix state of the chain's applied
   history — never a torn or future value. *)
let chain_snapshot_case () =
  let module Sim = Kamino_sim.Engine in
  let module Op = Kamino_chain.Op in
  let module Async = Kamino_chain.Async_chain in
  let module Cluster = Kamino_cluster.Cluster in
  let module Cluster_kv = Kamino_cluster.Cluster_kv in
  let module Kv = Kamino_kv.Kv in
  let cluster =
    Cluster.create
      ~engine_config:
        {
          Engine.default_config with
          Engine.heap_bytes = 1 lsl 18;
          log_slots = 64;
          data_log_bytes = 1 lsl 16;
        }
      ~hop_ns:5000 ~rpc_ns:500 ~promote_ns:40_000 ~shards:1 ~f:2 ~value_size:64
      ~node_size:512 ~seed:21 ()
  in
  let ch = Cluster.chain cluster 0 in
  let key = 1 in
  let writes = 30 in
  for i = 1 to writes do
    Cluster.submit cluster ~at:(i * 3_000)
      (Op.Put (key, Printf.sprintf "v%d" i))
      ~on_complete:(fun _ -> ())
  done;
  (* Fail-stop the head mid-stream: the promotion window (40us) overlaps
     both the remaining writes and the early probes. *)
  Async.fail_stop ch ~at:25_000 (Async.head_id ch);
  let probes = ref [] in
  let sim = Cluster.sim cluster in
  List.iter
    (fun t ->
      Sim.schedule sim ~at:t (fun () ->
          let head = Async.head_id ch in
          match Engine.snapshot_watermark (Async.engine_at ch head) with
          | None -> probes := (t, None) :: !probes
          | Some wm ->
              probes :=
                (t, Some (wm, Kv.snapshot_get (Async.kv_at ch head) key))
                :: !probes))
    [ 26_000; 31_000; 38_000; 47_000; 58_000; 72_000; 90_000; 110_000; 150_000 ];
  ignore (Cluster.run cluster);
  let probes = List.rev !probes in
  (* Prefix states of key 1: absent, then v1..vN in order. Any snapshot
     must be one of them. *)
  let prefix_states =
    None :: List.init writes (fun i -> Some (Printf.sprintf "v%d" (i + 1)))
  in
  let fallbacks = List.filter (fun (_, p) -> p = None) probes in
  let snapshots = List.filter_map (fun (t, p) -> Option.map (fun s -> (t, s)) p) probes in
  Alcotest.(check bool)
    (Printf.sprintf "promotion window forced %d fallback probe(s)"
       (List.length fallbacks))
    true
    (List.length fallbacks >= 1);
  Alcotest.(check bool)
    (Printf.sprintf "backup served %d snapshot probe(s) after promotion"
       (List.length snapshots))
    true
    (List.length snapshots >= 1);
  List.iter
    (fun (t, (wm, v)) ->
      if not (List.mem v prefix_states) then
        Alcotest.failf "probe at %d: snapshot %s is not a prefix state" t
          (match v with Some s -> s | None -> "absent");
      ignore wm)
    snapshots;
  (* Watermarks only advance. *)
  ignore
    (List.fold_left
       (fun prev (t, (wm, _)) ->
         if wm < prev then
           Alcotest.failf "probe at %d: watermark went backwards" t;
         wm)
       (0, 0) snapshots);
  (* Settled and with the head's applier drained, the closed-loop
     snapshot agrees with a tail read. *)
  let kv = Cluster_kv.create cluster in
  Engine.drain_backup (Async.engine_at ch (Async.head_id ch));
  Alcotest.(check bool) "settled head serves snapshots" true
    (Engine.snapshot_watermark (Async.engine_at ch (Async.head_id ch)) <> None);
  Alcotest.(check (option string))
    "settled snapshot equals the tail read"
    (Cluster_kv.get kv key)
    (Cluster_kv.snapshot_get kv key)

let () =
  let kinds =
    [
      ("simple", make_simple);
      ("dynamic", make_dynamic);
      ("chain-head", make_chain_head);
    ]
  in
  let modes =
    [
      ("drop-unflushed", Region.Drop_unflushed);
      ("words-random", Region.Words_survive_randomly);
    ]
  in
  let cases =
    List.concat_map
      (fun (kname, make_engine) ->
        List.map
          (fun (mname, mode) ->
            let name = Printf.sprintf "%s x %s" kname mname in
            Alcotest.test_case
              (Printf.sprintf "%s (%d seeds, coalescing on+off)" name
                 (List.length seeds))
              `Slow
              (matrix_case name make_engine mode))
          modes)
      kinds
  in
  let sharded =
    List.map
      (fun (mname, mode) ->
        Alcotest.test_case
          (Printf.sprintf "sharded x %s (12 seeds, random crash points)" mname)
          `Slow (sharded_case mode))
      modes
  in
  let fs_cases =
    List.concat_map
      (fun ((kname, _, _) as builder) ->
        List.map
          (fun (mname, mode) ->
            Alcotest.test_case
              (Printf.sprintf "fs/%s x %s (6 seeds, random workload)" kname mname)
              `Slow (fs_case builder mode))
          modes)
      fs_builders
  in
  let chain_snapshot =
    [
      Alcotest.test_case "snapshot_get across a chain view change" `Quick
        chain_snapshot_case;
    ]
  in
  Alcotest.run "crash_matrix"
    [
      ("matrix", cases);
      ("sharded", sharded);
      ("fs", fs_cases);
      ("chain-snapshot", chain_snapshot);
    ]
