(* Tests for the persistent object heap: allocation, free lists, roots,
   reopening, and structural validation. *)

module Rng = Kamino_sim.Rng
module Clock = Kamino_sim.Clock
module Region = Kamino_nvm.Region
module Heap = Kamino_heap.Heap

let make ?(size = 1 lsl 20) () =
  let clock = Clock.create () in
  let r =
    Region.create ~crash_mode:Region.Drop_unflushed ~rng:(Rng.create 1) ~clock ~size ()
  in
  (Heap.format r, r)

let test_alloc_basic () =
  let h, _ = make () in
  let p = Heap.alloc h 100 in
  Alcotest.(check bool) "non-null" true (p <> Heap.null);
  Alcotest.(check bool) "allocated" true (Heap.is_allocated h p);
  Alcotest.(check int) "rounded to class" 128 (Heap.capacity h p);
  Alcotest.(check int) "one live object" 1 (Heap.live_objects h)

let test_alloc_zeroed () =
  let h, r = make () in
  let p = Heap.alloc h 64 in
  Region.write_string r p "garbage!";
  Heap.free h p;
  let q = Heap.alloc h 64 in
  Alcotest.(check int) "reused slot" p q;
  Alcotest.(check string) "payload zeroed on reuse"
    (String.make 8 '\000')
    (Region.read_string r q 8)

let test_alloc_size_classes () =
  let h, _ = make () in
  List.iter
    (fun (req, expect) ->
      let p = Heap.alloc h req in
      Alcotest.(check int) (Printf.sprintf "capacity for %d" req) expect (Heap.capacity h p))
    [ (1, 32); (32, 32); (33, 64); (1000, 1024); (1024, 1024); (1025, 2048) ]

let test_alloc_invalid () =
  let h, _ = make () in
  Alcotest.(check bool) "zero size rejected" true
    (try
       ignore (Heap.alloc h 0);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "oversized rejected" true
    (try
       ignore (Heap.alloc h (Heap.max_object_size + 1));
       false
     with Invalid_argument _ -> true)

let test_out_of_memory () =
  let h, _ = make ~size:8192 () in
  Alcotest.(check bool) "exhaustion raises Out_of_memory" true
    (try
       for _ = 1 to 10000 do
         ignore (Heap.alloc h 1024)
       done;
       false
     with Out_of_memory -> true)

let test_free_and_reuse () =
  let h, _ = make () in
  let p1 = Heap.alloc h 256 in
  let p2 = Heap.alloc h 256 in
  Heap.free h p1;
  Alcotest.(check bool) "freed not allocated" false (Heap.is_allocated h p1);
  Alcotest.(check bool) "other untouched" true (Heap.is_allocated h p2);
  let p3 = Heap.alloc h 256 in
  Alcotest.(check int) "LIFO reuse of freed slot" p1 p3

let test_free_invalid () =
  let h, _ = make () in
  let p = Heap.alloc h 64 in
  Heap.free h p;
  Alcotest.(check bool) "double free rejected" true
    (try
       Heap.free h p;
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bogus pointer rejected" true
    (try
       Heap.free h 12345678;
       false
     with Invalid_argument _ -> true)

let test_alloc_ranges_predicts () =
  let h, _ = make () in
  (* bump-allocation case *)
  let p, ranges = Heap.alloc_ranges h 100 in
  Alcotest.(check int) "prediction matches" p (Heap.alloc h 100);
  Alcotest.(check int) "two ranges (bump + extent)" 2 (List.length ranges);
  (* free-list case *)
  Heap.free h p;
  let q, ranges' = Heap.alloc_ranges h 100 in
  Alcotest.(check int) "reuse predicted" p q;
  Alcotest.(check int) "two ranges (head + extent)" 2 (List.length ranges');
  Alcotest.(check int) "prediction matches on reuse" q (Heap.alloc h 100)

let test_extent_covers_header_and_payload () =
  let h, _ = make () in
  let p = Heap.alloc h 500 in
  let { Heap.off; len } = Heap.extent h p in
  Alcotest.(check int) "extent starts at header" (p - 16) off;
  Alcotest.(check int) "extent length" (16 + 512) len

let test_root () =
  let h, r = make () in
  Alcotest.(check int) "null root initially" Heap.null (Heap.root h);
  let p = Heap.alloc h 64 in
  Heap.set_root h p;
  Alcotest.(check int) "root set" p (Heap.root h);
  (* the root pointer is persisted by set_root *)
  Region.crash r;
  let h' = Heap.open_existing r in
  Alcotest.(check int) "root survives crash" p (Heap.root h')

let test_reopen_preserves_objects () =
  let h, r = make () in
  let p = Heap.alloc h 64 in
  Region.write_string r p "persistent";
  Heap.set_root h p;
  Region.persist_all r;
  Region.crash r;
  let h' = Heap.open_existing r in
  Alcotest.(check bool) "still allocated" true (Heap.is_allocated h' p);
  Alcotest.(check string) "data survived" "persistent" (Region.read_string r p 10)

let test_open_bad_magic () =
  let clock = Clock.create () in
  let r =
    Region.create ~crash_mode:Region.Drop_unflushed ~rng:(Rng.create 1) ~clock
      ~size:(1 lsl 20) ()
  in
  Alcotest.(check bool) "unformatted region rejected" true
    (try
       ignore (Heap.open_existing r);
       false
     with Failure _ -> true)

let test_live_bytes () =
  let h, _ = make () in
  let _ = Heap.alloc h 1024 in
  let p = Heap.alloc h 32 in
  Alcotest.(check int) "live bytes" (1024 + 32) (Heap.live_bytes h);
  Heap.free h p;
  Alcotest.(check int) "after free" 1024 (Heap.live_bytes h)

(* --- Occupancy stats and chained extents --- *)

let test_stats_accounting () =
  let h, r = make () in
  let s0 = Heap.stats h in
  Alcotest.(check int) "fresh heap has no live objects" 0 s0.Heap.live_objects;
  let a = Heap.alloc h 100 in
  let b = Heap.alloc h 1000 in
  let s1 = Heap.stats h in
  Alcotest.(check int) "two live" 2 s1.Heap.live_objects;
  Alcotest.(check int) "live bytes tracks capacities"
    (Heap.capacity h a + Heap.capacity h b)
    s1.Heap.live_bytes;
  Alcotest.(check bool) "at least one live segment" true (s1.Heap.segments_live >= 1);
  Heap.free h a;
  let s2 = Heap.stats h in
  Alcotest.(check int) "one live after free" 1 s2.Heap.live_objects;
  (* Stats survive a stale -> resync cycle (what reopen does). *)
  let h' = Heap.open_existing r in
  let s3 = Heap.stats h' in
  Alcotest.(check int) "resynced live objects" 1 s3.Heap.live_objects;
  Alcotest.(check int) "resynced live bytes" s2.Heap.live_bytes s3.Heap.live_bytes

let test_chained_alloc () =
  let h, r = make ~size:(1 lsl 22) () in
  let size = Heap.max_object_size + 100_000 in
  let plan, _ranges = Heap.alloc_chain_ranges h size in
  Alcotest.(check bool) "multi-extent plan" true (List.length plan >= 2);
  let head = Heap.alloc_chain h size in
  Alcotest.(check bool) "head allocated" true (Heap.is_allocated h head);
  Alcotest.(check int) "links match plan" (List.length plan)
    (List.length (Heap.chain_links h head));
  Alcotest.(check int) "total size recorded" size (Heap.chain_size h head);
  let s = Heap.stats h in
  Alcotest.(check int) "chained head counted once" 1 s.Heap.chained_objects;
  Alcotest.(check bool) "validate accepts chains" true (Heap.validate h = Ok ());
  (* Chain links are not individually freeable. *)
  Alcotest.(check bool) "free of head refused" true
    (try
       Heap.free h head;
       false
     with Invalid_argument _ -> true);
  (* Chains survive reopen. *)
  let h' = Heap.open_existing r in
  Alcotest.(check int) "chain intact after reopen" size (Heap.chain_size h' head);
  Heap.free_chain h' head;
  let s' = Heap.stats h' in
  Alcotest.(check int) "all extents released" 0 s'.Heap.live_objects;
  Alcotest.(check int) "no chained objects left" 0 s'.Heap.chained_objects

let test_validate_ok () =
  let h, _ = make () in
  let ps = List.init 20 (fun i -> Heap.alloc h ((i mod 5) + 1 * 100)) in
  List.iteri (fun i p -> if i mod 3 = 0 then Heap.free h p) ps;
  match Heap.validate h with
  | Ok () -> ()
  | Error e -> Alcotest.failf "expected valid heap, got %s" e

let test_validate_detects_corruption () =
  let h, r = make () in
  let p = Heap.alloc h 64 in
  (* corrupt the capacity word of the object header *)
  Region.write_int r (p - 16) 12345;
  match Heap.validate h with
  | Ok () -> Alcotest.fail "corruption not detected"
  | Error _ -> ()

let test_iter_objects () =
  let h, _ = make () in
  let p1 = Heap.alloc h 64 in
  let p2 = Heap.alloc h 128 in
  Heap.free h p1;
  let seen = ref [] in
  Heap.iter_objects h (fun p ~capacity ~allocated -> seen := (p, capacity, allocated) :: !seen);
  Alcotest.(check (list (triple int int bool)))
    "address-ordered walk"
    [ (p1, 64, false); (p2, 128, true) ]
    (List.rev !seen)

(* Model-based property test: the heap agrees with a simple reference
   allocator on which pointers are live, and validation always passes. *)
let alloc_free_qcheck =
  QCheck.Test.make ~name:"heap matches model allocator under random ops" ~count:60
    QCheck.(small_list (pair bool small_int))
    (fun ops ->
      let h, _ = make () in
      let live = Hashtbl.create 16 in
      let live_list = ref [] in
      List.iter
        (fun (is_alloc, n) ->
          if is_alloc || !live_list = [] then begin
            let size = (n mod 2000) + 1 in
            let p = Heap.alloc h size in
            Hashtbl.replace live p ();
            live_list := p :: !live_list
          end
          else begin
            match !live_list with
            | p :: rest ->
                Heap.free h p;
                Hashtbl.remove live p;
                live_list := rest
            | [] -> ()
          end)
        ops;
      Heap.validate h = Ok ()
      && Heap.live_objects h = Hashtbl.length live
      && Hashtbl.fold (fun p () acc -> acc && Heap.is_allocated h p) live true)

let () =
  Alcotest.run "heap"
    [
      ( "alloc",
        [
          Alcotest.test_case "basic" `Quick test_alloc_basic;
          Alcotest.test_case "zeroed payloads" `Quick test_alloc_zeroed;
          Alcotest.test_case "size classes" `Quick test_alloc_size_classes;
          Alcotest.test_case "invalid sizes" `Quick test_alloc_invalid;
          Alcotest.test_case "out of memory" `Quick test_out_of_memory;
          Alcotest.test_case "alloc_ranges predicts" `Quick test_alloc_ranges_predicts;
          Alcotest.test_case "extent" `Quick test_extent_covers_header_and_payload;
        ] );
      ( "free",
        [
          Alcotest.test_case "free and reuse" `Quick test_free_and_reuse;
          Alcotest.test_case "invalid frees" `Quick test_free_invalid;
          Alcotest.test_case "live bytes" `Quick test_live_bytes;
        ] );
      ( "durability",
        [
          Alcotest.test_case "root" `Quick test_root;
          Alcotest.test_case "reopen preserves objects" `Quick test_reopen_preserves_objects;
          Alcotest.test_case "bad magic rejected" `Quick test_open_bad_magic;
        ] );
      ( "validation",
        [
          Alcotest.test_case "occupancy stats" `Quick test_stats_accounting;
          Alcotest.test_case "chained extents" `Quick test_chained_alloc;
          Alcotest.test_case "valid heap" `Quick test_validate_ok;
          Alcotest.test_case "detects corruption" `Quick test_validate_detects_corruption;
          Alcotest.test_case "iter objects" `Quick test_iter_objects;
          QCheck_alcotest.to_alcotest alloc_free_qcheck;
        ] );
    ]
