(* Differential test for the Region fast paths.

   Region's hot loops are deliberately clever: a word-scanned dirty bitset
   bounded by lo/hi watermarks, run-coalesced write-back blits, batched
   cost charges, and unchecked 16-bit accessors. Each of those is supposed
   to be a pure wall-clock optimization — observable behavior (both memory
   images, the dirty set, every counter, and the simulated clock) must be
   exactly what the naive per-line implementation produces.

   This file pins that equivalence down: a reference oracle implements the
   documented semantics in the most literal way possible (a bool per line,
   one line at a time, ascending), and a seeded random program is run
   against both. After every operation the dirty-line counts must agree;
   at checkpoints the volatile image, persistent image, counters and clock
   must be bit-identical. Crashes are driven through identically seeded
   private RNGs, so the comparison also proves the fast scans consume
   random draws in exactly the naive ascending order — in all three crash
   modes. *)

module Region = Kamino_nvm.Region
module Cost_model = Kamino_nvm.Cost_model
module Rng = Kamino_sim.Rng
module Clock = Kamino_sim.Clock

let line = Region.line_size

(* Deliberately awkward fractional costs: the default model's integral
   flush_line_ns (8.0) would let a batched or reordered fractional-ns
   carry slip through unnoticed — with these constants any deviation in
   the per-line charge sequence shows up in the simulated clock within a
   few operations. *)
let fractional_cost =
  {
    Cost_model.default with
    Cost_model.store_overhead_ns = 1.7;
    store_ns_per_byte = 0.061;
    load_overhead_ns = 2.3;
    load_ns_per_byte = 0.047;
    flush_line_ns = 7.31;
    fence_ns = 99.7;
    copy_ns_per_byte = 0.093;
    copy_overhead_ns = 11.9;
  }

(* --- Reference oracle --------------------------------------------------- *)

type oracle = {
  size : int;
  vol : Bytes.t;
  per : Bytes.t;
  dirty : bool array;  (* one flag per line — no bitset, no watermark *)
  cost : Cost_model.t;
  mode : Region.crash_mode;
  rng : Rng.t;
  mutable clock_ns : int;
  mutable frac : float;
  mutable stores : int;
  mutable bytes_stored : int;
  mutable loads : int;
  mutable bytes_loaded : int;
  mutable lines_flushed : int;
  mutable fences : int;
  mutable bytes_copied : int;
  mutable crashes : int;
}

let o_create ~cost ~mode ~rng ~size =
  {
    size;
    vol = Bytes.make size '\000';
    per = Bytes.make size '\000';
    dirty = Array.make ((size + line - 1) / line) false;
    cost;
    mode;
    rng;
    clock_ns = 0;
    frac = 0.0;
    stores = 0;
    bytes_stored = 0;
    loads = 0;
    bytes_loaded = 0;
    lines_flushed = 0;
    fences = 0;
    bytes_copied = 0;
    crashes = 0;
  }

(* Identical float expression to Region's charge: any reordering would
   change the sub-nanosecond carry and eventually the clock. *)
let o_charge o ns =
  let total = ns +. o.frac in
  let whole = int_of_float total in
  o.frac <- total -. float_of_int whole;
  if whole > 0 then o.clock_ns <- o.clock_ns + whole

let o_mark_dirty o off len =
  if len > 0 then
    for l = off / line to (off + len - 1) / line do
      o.dirty.(l) <- true
    done

let o_store o off len =
  o.stores <- o.stores + 1;
  o.bytes_stored <- o.bytes_stored + len;
  o_mark_dirty o off len;
  o_charge o (Cost_model.store_cost o.cost len)

let o_load o len =
  o.loads <- o.loads + 1;
  o.bytes_loaded <- o.bytes_loaded + len;
  o_charge o (Cost_model.load_cost o.cost len)

let o_write_int64 o off v =
  o_store o off 8;
  Bytes.set_int64_le o.vol off v

let o_write_int o off v = o_write_int64 o off (Int64.of_int v)

let o_write_byte o off v =
  o_store o off 1;
  Bytes.set_uint8 o.vol off (v land 0xff)

let o_write_bytes o off b =
  o_store o off (Bytes.length b);
  Bytes.blit b 0 o.vol off (Bytes.length b)

let o_fill o off len byte =
  o_store o off len;
  Bytes.fill o.vol off len (Char.chr (byte land 0xff))

let o_blit o ~src ~dst ~len =
  o.bytes_copied <- o.bytes_copied + len;
  o_mark_dirty o dst len;
  o_charge o (Cost_model.copy_cost o.cost len);
  Bytes.blit o.vol src o.vol dst len

let o_read_int64 o off =
  o_load o 8;
  Bytes.get_int64_le o.vol off

let o_read_int o off = Int64.to_int (o_read_int64 o off)

let o_read_byte o off =
  o_load o 1;
  Bytes.get_uint8 o.vol off

let o_read_bytes o off len =
  o_load o len;
  Bytes.sub o.vol off len

let o_equal_ranges o off1 off2 len =
  o_load o len;
  o_load o len;
  Bytes.sub o.vol off1 len = Bytes.sub o.vol off2 len

let o_flush_line o l =
  let off = l * line in
  let len = min line (o.size - off) in
  Bytes.blit o.vol off o.per off len;
  o.dirty.(l) <- false;
  o.lines_flushed <- o.lines_flushed + 1;
  o_charge o o.cost.Cost_model.flush_line_ns

let o_flush o off len =
  if len > 0 then
    for l = off / line to (off + len - 1) / line do
      if o.dirty.(l) then o_flush_line o l
    done

let o_fence o =
  o.fences <- o.fences + 1;
  o_charge o o.cost.Cost_model.fence_ns

let o_flush_all o =
  for l = 0 to Array.length o.dirty - 1 do
    if o.dirty.(l) then o_flush_line o l
  done

let o_crash o =
  o.crashes <- o.crashes + 1;
  (if o.mode <> Region.Drop_unflushed then
     for l = 0 to Array.length o.dirty - 1 do
       if o.dirty.(l) then begin
         let off = l * line in
         let len = min line (o.size - off) in
         match o.mode with
         | Region.Lines_survive_randomly ->
             if Rng.bool o.rng then Bytes.blit o.vol off o.per off len
         | Region.Words_survive_randomly ->
             for w = 0 to (len / 8) - 1 do
               let woff = off + (w * 8) in
               if Bytes.get_int64_le o.vol woff <> Bytes.get_int64_le o.per woff then
                 if Rng.bool o.rng then Bytes.blit o.vol woff o.per woff 8
             done;
             for b = len / 8 * 8 to len - 1 do
               if
                 Bytes.get o.vol (off + b) <> Bytes.get o.per (off + b)
                 && Rng.bool o.rng
               then Bytes.set o.per (off + b) (Bytes.get o.vol (off + b))
             done
         | Region.Drop_unflushed -> assert false
       end
     done);
  Bytes.blit o.per 0 o.vol 0 o.size;
  Array.fill o.dirty 0 (Array.length o.dirty) false

let o_is_persisted o off len =
  if len = 0 then true
  else begin
    let ok = ref true in
    for l = off / line to (off + len - 1) / line do
      if o.dirty.(l) then ok := false
    done;
    !ok
  end

let o_dirty_lines o = Array.fold_left (fun n d -> if d then n + 1 else n) 0 o.dirty

(* --- Differential driver ------------------------------------------------ *)

let check_eq pp what step a b =
  if a <> b then
    Alcotest.failf "step %d: %s diverged: region=%s oracle=%s" step what (pp a) (pp b)

(* Region exposes no uncounted whole-image dump, so the volatile images
   are compared byte-by-byte through read_byte on BOTH sides — each byte
   charges one load on each side, keeping counters and clocks in
   lockstep. *)
let check_images step r o =
  for i = 0 to o.size - 1 do
    let a = Region.read_byte r i and b = o_read_byte o i in
    if a <> b then Alcotest.failf "step %d: volatile byte %d: region=%d oracle=%d" step i a b
  done

let counters_line (c : Region.counters) =
  Printf.sprintf "stores=%d bytes_stored=%d loads=%d bytes_loaded=%d flushed=%d fences=%d copied=%d crashes=%d"
    c.Region.stores c.Region.bytes_stored c.Region.loads c.Region.bytes_loaded
    c.Region.lines_flushed c.Region.fences c.Region.bytes_copied c.Region.crashes

let oracle_counters_line o =
  Printf.sprintf "stores=%d bytes_stored=%d loads=%d bytes_loaded=%d flushed=%d fences=%d copied=%d crashes=%d"
    o.stores o.bytes_stored o.loads o.bytes_loaded o.lines_flushed o.fences
    o.bytes_copied o.crashes

let check_counters step r clk o =
  let c = Region.counters r in
  if
    (c.Region.stores, c.Region.bytes_stored, c.Region.loads, c.Region.bytes_loaded,
     c.Region.lines_flushed, c.Region.fences, c.Region.bytes_copied, c.Region.crashes)
    <> (o.stores, o.bytes_stored, o.loads, o.bytes_loaded, o.lines_flushed, o.fences,
        o.bytes_copied, o.crashes)
  then
    Alcotest.failf "step %d: counters diverged:\n  region: %s\n  oracle: %s" step
      (counters_line c) (oracle_counters_line o);
  check_eq string_of_int "simulated clock" step (Clock.now clk) o.clock_ns

(* After a crash both images coincide, so the persistent side can be
   checked against the oracle without disturbing counters (the volatile
   reads above already verified the reloaded image). Between crashes the
   persistent image is verified indirectly: flush/crash outcomes and
   is_persisted answers all derive from it and the dirty set. *)

let run_program ~mode ~size ~seed ~steps =
  let g = Rng.create (seed * 7919) in
  let clk = Clock.create () in
  let r =
    Region.create ~cost:fractional_cost ~crash_mode:mode
      ~rng:(Rng.create (seed * 31 + 1)) ~clock:clk ~size ()
  in
  let o =
    o_create ~cost:fractional_cost ~mode ~rng:(Rng.create (seed * 31 + 1)) ~size
  in
  for step = 1 to steps do
    let roll = Rng.int g 100 in
    let off len = if size - len <= 0 then 0 else Rng.int g (size - len + 1) in
    (match roll with
    | _ when roll < 14 ->
        let p = off 8 in
        let v = Rng.int64 g in
        Region.write_int64 r p v;
        o_write_int64 o p v
    | _ when roll < 24 ->
        let p = off 8 in
        let v = Int64.to_int (Rng.int64 g) in
        Region.write_int r p v;
        o_write_int o p v
    | _ when roll < 32 ->
        let p = off 1 in
        let v = Rng.int g 256 in
        Region.write_byte r p v;
        o_write_byte o p v
    | _ when roll < 42 ->
        let len = Rng.int g (min 160 size + 1) in
        let p = off len in
        let b = Bytes.init len (fun _ -> Char.chr (Rng.int g 256)) in
        Region.write_bytes r p b;
        o_write_bytes o p b
    | _ when roll < 48 ->
        let len = Rng.int g (min 200 size + 1) in
        let p = off len in
        let v = Rng.int g 256 in
        Region.fill r p len v;
        o_fill o p len v
    | _ when roll < 53 ->
        let len = Rng.int g (min 100 size + 1) in
        let src = off len and dst = off len in
        Region.blit r ~src ~dst ~len;
        o_blit o ~src ~dst ~len
    | _ when roll < 60 ->
        let p = off 8 in
        check_eq Int64.to_string "read_int64" step (Region.read_int64 r p)
          (o_read_int64 o p);
        let p = off 8 in
        check_eq string_of_int "read_int" step (Region.read_int r p) (o_read_int o p)
    | _ when roll < 65 ->
        let len = Rng.int g (min 64 size + 1) in
        let p = off len in
        check_eq Bytes.to_string "read_bytes" step (Region.read_bytes r p len)
          (o_read_bytes o p len)
    | _ when roll < 70 ->
        let len = Rng.int g (min 48 size + 1) in
        let p1 = off len and p2 = off len in
        check_eq string_of_bool "equal_ranges" step
          (Region.equal_ranges r p1 r p2 len)
          (o_equal_ranges o p1 p2 len)
    | _ when roll < 80 ->
        let len = Rng.int g (min 512 size + 1) in
        let p = off len in
        Region.flush r p len;
        o_flush o p len
    | _ when roll < 84 ->
        Region.fence r;
        o_fence o
    | _ when roll < 89 ->
        let len = Rng.int g (min 512 size + 1) in
        let p = off len in
        Region.persist r p len;
        o_flush o p len;
        o_fence o
    | _ when roll < 91 ->
        Region.flush_all r;
        o_flush_all o
    | _ when roll < 93 ->
        Region.persist_all r;
        o_flush_all o;
        o_fence o
    | _ when roll < 97 ->
        let len = Rng.int g (min 256 size + 1) in
        let p = off len in
        check_eq string_of_bool "is_persisted" step
          (Region.is_persisted r p len)
          (o_is_persisted o p len)
    | _ ->
        Region.crash r;
        o_crash o);
    check_eq string_of_int "dirty_lines" step (Region.dirty_lines r) (o_dirty_lines o);
    if step mod 64 = 0 || step = steps then begin
      check_images step r o;
      check_counters step r clk o
    end
  done;
  (* Final settle: everything flushed, then both images must agree after
     one more crash (which here is deterministic: nothing is dirty). *)
  Region.persist_all r;
  o_flush_all o;
  o_fence o;
  Region.crash r;
  o_crash o;
  check_images steps r o;
  check_counters steps r clk o

let mode_name = function
  | Region.Words_survive_randomly -> "words"
  | Region.Lines_survive_randomly -> "lines"
  | Region.Drop_unflushed -> "drop"

let test_mode mode () =
  (* Sizes chosen to exercise the interesting geometry: a partial final
     line with tail bytes (4093, 1001), a single-line region (64), a
     region smaller than one line (40), and several bitset words (4096). *)
  List.iter
    (fun size ->
      for seed = 1 to 4 do
        run_program ~mode ~size ~seed ~steps:800
      done)
    [ 4093; 4096; 1001; 64; 40 ]

let () =
  Alcotest.run "region_fastpath"
    [
      ( "differential",
        List.map
          (fun mode ->
            Alcotest.test_case
              (Printf.sprintf "random ops vs naive oracle (%s)" (mode_name mode))
              `Quick (test_mode mode))
          [
            Region.Words_survive_randomly;
            Region.Lines_survive_randomly;
            Region.Drop_unflushed;
          ] );
    ]
