(* Tests for the replicated shard-cluster: the bounded cluster-chaos
   sweep (>= 500 seeded schedules with targeted 2PC faults), deterministic
   replay, the oracle self-test (a deliberately broken recovery must be
   caught and shrunk), cross-shard multi_put protocol units — atomicity,
   head fail-stop between prepare and marker persist, prepare retry
   against a mid-promotion head — and the cluster latency percentiles. *)

module Sim = Kamino_sim.Engine
module Engine = Kamino_core.Engine
module Metrics = Kamino_obs.Metrics
module Op = Kamino_chain.Op
module Async = Kamino_chain.Async_chain
module Cluster = Kamino_cluster.Cluster
module Cluster_kv = Kamino_cluster.Cluster_kv
module Cchaos = Kamino_chaos.Cluster_chaos

let test_config =
  {
    Engine.default_config with
    Engine.heap_bytes = 1 lsl 18;
    log_slots = 64;
    data_log_bytes = 1 lsl 16;
  }

let make_cluster ?(seed = 7) () =
  Cluster.create ~engine_config:test_config ~hop_ns:5000 ~rpc_ns:500
    ~promote_ns:40_000 ~retry_ns:10_000 ~shards:3 ~f:1 ~value_size:64
    ~node_size:512 ~seed ()

(* Two keys owned by different shard-chains, found by the router itself so
   the test tracks any routing change. *)
let cross_shard_keys c =
  let k0 = 0 in
  let s0 = Cluster.route c k0 in
  let rec hunt k =
    if Cluster.route c k <> s0 then k
    else if k > 4096 then Alcotest.fail "router maps every probe to one shard"
    else hunt (k + 1)
  in
  (k0, hunt 1)

(* --- bounded exploration --------------------------------------------------- *)

(* The acceptance budget: >= 500 distinct seeded schedules over the
   3-shard cluster, every run green under the durable-prefix, atomicity,
   linearizability and quiescence oracles — and the sweep must actually
   exercise the targeted 2PC faults, including head promotion injected
   between prepare and commit-marker persist. *)
let test_bounded_sweep () =
  let seen = Hashtbl.create 1024 in
  let prepare_fired = ref 0 and marker_fired = ref 0 in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn > 0 && go 0
  in
  for seed = 1 to 500 do
    let o = Cchaos.explore ~seed () in
    (match o.Cchaos.verdict with
    | Ok () -> ()
    | Error e -> Alcotest.failf "seed %d failed: %s\n%s" seed e o.Cchaos.history);
    Hashtbl.replace seen (Cchaos.schedule_to_string o.Cchaos.schedule) ();
    if contains o.Cchaos.history "prepare-head-fail" && contains o.Cchaos.history "(head fail-stopped)"
    then incr prepare_fired;
    if contains o.Cchaos.history "marker-head-fail" && contains o.Cchaos.history "(head fail-stopped)"
    then incr marker_fired
  done;
  Alcotest.(check bool)
    (Printf.sprintf "%d distinct schedules (want >= 500)" (Hashtbl.length seen))
    true
    (Hashtbl.length seen >= 500);
  Alcotest.(check bool)
    (Printf.sprintf "prepare-window head fail-stops fired in %d runs" !prepare_fired)
    true (!prepare_fired >= 20);
  Alcotest.(check bool)
    (Printf.sprintf "marker-window head fail-stops fired in %d runs" !marker_fired)
    true (!marker_fired >= 10)

let test_deterministic_replay () =
  let a = Cchaos.explore ~seed:23 () in
  let b = Cchaos.explore ~seed:23 () in
  Alcotest.(check string) "byte-identical history" a.Cchaos.history b.Cchaos.history;
  Alcotest.(check string) "identical fingerprint" a.Cchaos.fingerprint
    b.Cchaos.fingerprint;
  let c =
    Cchaos.run ~seed:23 ~ops:a.Cchaos.ops ~schedule:a.Cchaos.schedule ()
  in
  Alcotest.(check string) "replay from recorded schedule" a.Cchaos.history
    c.Cchaos.history

(* --- oracle self-test ------------------------------------------------------ *)

(* Under a recovery that forgets the in-flight window on reboot, some
   schedule must fail an oracle, and the failure must shrink to a handful
   of faults that still reproduce it — while a correct recovery passes
   the same shrunk schedule. *)
let test_broken_recovery_caught () =
  let recovery_fault = Async.Drop_inflight_on_reboot in
  let failing = ref None in
  let seed = ref 1 in
  (* Denser than the sweep default: the broken recovery only bites when a
     reboot drops a node's in-flight window and a later repair on the same
     shard needs it. *)
  while !failing = None && !seed <= 60 do
    let o = Cchaos.explore ~recovery_fault ~ops:40 ~faults:12 ~seed:!seed () in
    (match o.Cchaos.verdict with
    | Error _ -> failing := Some o
    | Ok () -> ());
    incr seed
  done;
  match !failing with
  | None -> Alcotest.fail "broken recovery never caught in 60 seeds"
  | Some o ->
      let shrunk =
        Cchaos.shrink ~recovery_fault ~seed:o.Cchaos.seed ~ops:o.Cchaos.ops
          o.Cchaos.schedule
      in
      Alcotest.(check bool)
        (Printf.sprintf "shrunk to %d fault(s) (want <= 5)" (List.length shrunk))
        true
        (List.length shrunk <= 5);
      let replay =
        Cchaos.run ~recovery_fault ~seed:o.Cchaos.seed ~ops:o.Cchaos.ops
          ~schedule:shrunk ()
      in
      Alcotest.(check bool) "shrunk schedule still fails" true
        (replay.Cchaos.verdict <> Ok ());
      let healthy =
        Cchaos.run ~seed:o.Cchaos.seed ~ops:o.Cchaos.ops ~schedule:shrunk ()
      in
      Alcotest.(check bool) "correct recovery passes the same schedule" true
        (healthy.Cchaos.verdict = Ok ())

(* --- protocol units --------------------------------------------------------- *)

(* A cross-shard multi_put commits atomically and the values land on every
   participant chain, visible through the synchronous client. *)
let test_multi_put_atomic () =
  let c = make_cluster () in
  let kv = Cluster_kv.create c in
  let ka, kb = cross_shard_keys c in
  Cluster_kv.put kv ka "old-a";
  Cluster_kv.multi_put kv [ (ka, "new-a"); (kb, "new-b") ];
  Alcotest.(check (option string)) "key a" (Some "new-a") (Cluster_kv.get kv ka);
  Alcotest.(check (option string)) "key b" (Some "new-b") (Cluster_kv.get kv kb);
  Alcotest.(check int) "one cross-chain transaction" 1 (Cluster.crossed c);
  Alcotest.(check bool) "marker retired" false (Cluster.marker_valid c);
  (match Cluster.verify c with
  | Ok () -> ()
  | Error e -> Alcotest.failf "cluster verify: %s" e);
  (* A single-shard multi_put bypasses the marker entirely. *)
  Cluster_kv.multi_put kv [ (ka, "solo") ];
  Alcotest.(check (option string)) "single-shard batch" (Some "solo")
    (Cluster_kv.get kv ka);
  Alcotest.(check int) "still one cross-chain transaction" 1 (Cluster.crossed c)

(* Fail-stop a participant's head between its prepare and the marker
   persist: the coordinator must re-prepare through the promoted head
   (same chain sequence) and the transaction must still commit on every
   participant. This is the §5.2 promotion window crossed with §5.3's
   distributed commit. *)
let test_head_fail_between_prepare_and_marker () =
  let c = make_cluster ~seed:11 () in
  let ka, kb = cross_shard_keys c in
  let sa = Cluster.route c ka in
  let acked = ref false and re_prepared_head = ref (-1) in
  Cluster.multi_put c ~at:1_000
    ~on_step:(fun step ->
      match step with
      | Cluster.Prepared s when s = sa && !re_prepared_head < 0 ->
          let ch = Cluster.chain c sa in
          (* Kill the head that just prepared; the prepared transaction
             dies with it. *)
          Async.fail_stop_now ch (Async.head_id ch);
          re_prepared_head := Async.head_id ch
      | _ -> ())
    [ (ka, "va"); (kb, "vb") ]
    ~on_complete:(fun _ -> acked := true);
  ignore (Cluster.run c);
  Alcotest.(check bool) "the fault actually fired" true (!re_prepared_head >= 0);
  Alcotest.(check bool) "multi_put acknowledged despite the head fail-stop" true
    !acked;
  Alcotest.(check bool) "a re-prepare happened" true
    (Metrics.value (Metrics.counter (Cluster.registry c) "cluster.re_prepares") >= 1);
  let kv = Cluster_kv.create c in
  Alcotest.(check (option string)) "key a committed" (Some "va")
    (Cluster_kv.get kv ka);
  Alcotest.(check (option string)) "key b committed" (Some "vb")
    (Cluster_kv.get kv kb);
  match Cluster.verify c with
  | Ok () -> ()
  | Error e -> Alcotest.failf "cluster verify: %s" e

(* Fail-stop a participant's head the moment the commit marker persists:
   the decision is durable, so the view-change re-drive must push the
   committed operation through the promoted head. *)
let test_head_fail_after_marker () =
  let c = make_cluster ~seed:13 () in
  let ka, kb = cross_shard_keys c in
  let sa = Cluster.route c ka in
  let acked = ref false and fired = ref false in
  Cluster.multi_put c ~at:1_000
    ~on_step:(fun step ->
      match step with
      | Cluster.Marker_written when not !fired ->
          fired := true;
          let ch = Cluster.chain c sa in
          Async.fail_stop_now ch (Async.head_id ch)
      | _ -> ())
    [ (ka, "va"); (kb, "vb") ]
    ~on_complete:(fun _ -> acked := true);
  ignore (Cluster.run c);
  Alcotest.(check bool) "the fault actually fired" true !fired;
  Alcotest.(check bool) "multi_put acknowledged" true !acked;
  let kv = Cluster_kv.create c in
  Alcotest.(check (option string)) "key a committed" (Some "va")
    (Cluster_kv.get kv ka);
  Alcotest.(check (option string)) "key b committed" (Some "vb")
    (Cluster_kv.get kv kb);
  match Cluster.verify c with
  | Ok () -> ()
  | Error e -> Alcotest.failf "cluster verify: %s" e

(* A head mid-promotion runs Intent_only and cannot prepare; the
   coordinator must back off and retry until the promotion completes. *)
let test_prepare_retries_mid_promotion () =
  let c = make_cluster ~seed:17 () in
  let ka, kb = cross_shard_keys c in
  let sa = Cluster.route c ka in
  let ch = Cluster.chain c sa in
  (* Promotion takes promote_ns = 40us; land the multi_put right inside
     the window. *)
  Async.fail_stop ch ~at:500 (Async.head_id ch);
  let acked = ref false in
  Cluster.multi_put c ~at:2_000 [ (ka, "va"); (kb, "vb") ] ~on_complete:(fun _ ->
      acked := true);
  ignore (Cluster.run c);
  Alcotest.(check bool) "multi_put acknowledged after the promotion" true !acked;
  Alcotest.(check bool) "the coordinator retried the prepare" true
    (Metrics.value (Metrics.counter (Cluster.registry c) "cluster.prepare_retries")
    >= 1);
  let kv = Cluster_kv.create c in
  Alcotest.(check (option string)) "key a committed" (Some "va")
    (Cluster_kv.get kv ka);
  Alcotest.(check (option string)) "key b committed" (Some "vb")
    (Cluster_kv.get kv kb);
  match Cluster.verify c with
  | Ok () -> ()
  | Error e -> Alcotest.failf "cluster verify: %s" e

(* While a prepared cluster transaction wedges the head, later single-key
   submissions are deferred, and they drain in order once the decision
   lands — the exactly-once seq guard is monotone, so reordering would
   lose writes downstream. *)
let test_deferred_during_cluster_hold () =
  let c = make_cluster ~seed:19 () in
  let ka, kb = cross_shard_keys c in
  let sa = Cluster.route c ka in
  let deferred_seen = ref (-1) in
  Cluster.multi_put c ~at:1_000
    ~on_step:(fun step ->
      match step with
      | Cluster.Prepared s when s = sa ->
          (* The chain is wedged now; push a write at it. *)
          Cluster.submit c ~at:(Sim.now (Cluster.sim c) + 1) (Op.Put (ka, "later"))
            ~on_complete:(fun _ -> ());
          deferred_seen := Async.deferred_count (Cluster.chain c sa)
      | _ -> ())
    [ (ka, "va"); (kb, "vb") ]
    ~on_complete:(fun _ -> ());
  ignore (Cluster.run c);
  let kv = Cluster_kv.create c in
  Alcotest.(check (option string)) "deferred write applied last" (Some "later")
    (Cluster_kv.get kv ka);
  match Cluster.verify c with
  | Ok () -> ()
  | Error e -> Alcotest.failf "cluster verify: %s" e

(* --- observability ---------------------------------------------------------- *)

let test_latency_percentiles () =
  let c = make_cluster ~seed:29 () in
  let kv = Cluster_kv.create c in
  for i = 0 to 39 do
    Cluster_kv.put kv (i mod 8) (Printf.sprintf "v%d" i)
  done;
  let ka, kb = cross_shard_keys c in
  for i = 0 to 9 do
    Cluster_kv.multi_put kv
      [ (ka, Printf.sprintf "ma%d" i); (kb, Printf.sprintf "mb%d" i) ]
  done;
  let h = Metrics.hist (Cluster.registry c) "cluster.commit_ns" in
  let ps = Metrics.percentiles h [| 50.; 95.; 99. |] in
  Alcotest.(check bool) "p50 > 0" true (ps.(0) > 0);
  Alcotest.(check bool) "p50 <= p95 <= p99" true (ps.(0) <= ps.(1) && ps.(1) <= ps.(2));
  let xh = Metrics.hist (Cluster.registry c) "cluster.cross_commit_ns" in
  Alcotest.(check int) "every multi_put crossed chains" 10 (Metrics.count xh);
  Alcotest.(check bool) "cross-chain p50 > 0" true (Metrics.percentile xh 50. > 0)

(* --- serialization ---------------------------------------------------------- *)

let test_schedule_roundtrip () =
  let workload = Cchaos.gen_workload ~seed:31 ~ops:40 in
  let multis = Cchaos.count_multis workload in
  Alcotest.(check bool) "workload draws multi_puts" true (multis >= 3);
  let schedule =
    Cchaos.gen_schedule ~seed:31 ~faults:14 ~shards:Cchaos.cluster_shards
      ~nodes_per_chain:Cchaos.nodes_per_chain ~events:400 ~multis
  in
  Alcotest.(check int) "drew the requested faults" 14 (List.length schedule);
  (match Cchaos.schedule_of_string (Cchaos.schedule_to_string schedule) with
  | Ok parsed ->
      Alcotest.(check bool) "roundtrip preserves the schedule" true
        (parsed = schedule)
  | Error e -> Alcotest.failf "roundtrip failed to parse: %s" e);
  (match
     Cchaos.schedule_of_string
       "# header\n\nprepare-head-fail cross=2 shard=1\nfail-stop shard=0 node=2 at-event=9\n"
   with
  | Ok
      [
        Cchaos.Prepare_head_fail { cross = 2; shard = 1 };
        Cchaos.Fail_stop { shard = 0; node = 2; at_event = 9 };
      ] ->
      ()
  | Ok _ -> Alcotest.fail "parsed into the wrong schedule"
  | Error e -> Alcotest.failf "failed to parse commented schedule: %s" e);
  match Cchaos.schedule_of_string "marker-head-fail cross=1\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a schedule missing fields"

let () =
  Alcotest.run "cluster"
    [
      ( "explorer",
        [
          Alcotest.test_case
            "bounded sweep: 500 schedules incl. targeted 2PC faults" `Slow
            test_bounded_sweep;
          Alcotest.test_case "deterministic replay" `Quick test_deterministic_replay;
        ] );
      ( "oracles",
        [
          Alcotest.test_case "broken recovery caught and shrunk" `Quick
            test_broken_recovery_caught;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "cross-shard multi_put is atomic" `Quick
            test_multi_put_atomic;
          Alcotest.test_case "head fail-stop between prepare and marker" `Quick
            test_head_fail_between_prepare_and_marker;
          Alcotest.test_case "head fail-stop after marker persist" `Quick
            test_head_fail_after_marker;
          Alcotest.test_case "prepare retries against a mid-promotion head" `Quick
            test_prepare_retries_mid_promotion;
          Alcotest.test_case "writes defer while the head is wedged" `Quick
            test_deferred_during_cluster_hold;
        ] );
      ( "observability",
        [
          Alcotest.test_case "cluster latency percentiles" `Quick
            test_latency_percentiles;
        ] );
      ( "serialization",
        [ Alcotest.test_case "schedule roundtrip" `Quick test_schedule_roundtrip ] );
    ]
