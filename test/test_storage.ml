(* Storage-accounting property test: the paper's Table 1 space claims.

   Kamino-Tx-Simple doubles the heap (main + full backup) plus logs;
   Kamino-Tx-Dynamic caps the backup at alpha * heap plus metadata (the
   slot arena and the persistent look-up table). [Engine.storage_bytes]
   sums every region of the stack, so the claims become exact equalities
   against independently computed component sizes — and they must hold
   not just at construction but after arbitrary committed work, aborts,
   crashes and recoveries (regions never grow behind the model's back). *)

module Rng = Kamino_sim.Rng
module Engine = Kamino_core.Engine
module Backup = Kamino_core.Backup
module Intent_log = Kamino_core.Intent_log
module Phash = Kamino_core.Phash

let config heap_bytes =
  {
    Engine.default_config with
    Engine.heap_bytes;
    log_slots = 16;
    data_log_bytes = 1 lsl 18;
  }

(* The intent-log region size the engine builds for [cfg] (same constants
   as Engine.create: 8 user threads). *)
let ilog_bytes cfg =
  Intent_log.required_size ~max_user_threads:8
    ~max_tx_entries:cfg.Engine.max_tx_entries ~n_slots:cfg.Engine.log_slots

let dynamic_metadata_bytes cfg ~alpha =
  let slots_bytes =
    max (int_of_float (alpha *. float_of_int cfg.Engine.heap_bytes)) 65536
  in
  (* Mirrors the engine's sizing: the look-up table region carries headroom
     for two incremental doublings when its initial capacity is modest. *)
  let capacity = max 1024 (slots_bytes / 128) in
  let doublings = if capacity <= 65536 then 2 else 0 in
  ilog_bytes cfg + Phash.chain_size ~capacity ~doublings

(* Churn an engine: committed puts/frees, an abort, a crash + recovery.
   Storage accounting must be invariant under all of it. *)
let churn e seed =
  let rng = Rng.create seed in
  let live = ref [] in
  for round = 1 to 40 do
    (match Rng.int rng 10 with
    | 0 when !live <> [] ->
        Engine.with_tx e (fun tx ->
            let p = List.nth !live (Rng.int rng (List.length !live)) in
            Engine.free tx p;
            live := List.filter (fun q -> q <> p) !live)
    | 1 ->
        let tx = Engine.begin_tx e in
        let p = Engine.alloc tx 128 in
        Engine.write_int64 tx p 0 (Rng.int64 rng);
        Engine.abort tx
    | _ ->
        Engine.with_tx e (fun tx ->
            let size = [| 64; 256; 1024 |].(Rng.int rng 3) in
            let p = Engine.alloc tx size in
            for w = 0 to (size / 8) - 1 do
              Engine.write_int64 tx p (w * 8) (Rng.int64 rng)
            done;
            live := p :: !live));
    if round mod 13 = 0 then begin
      Engine.crash e;
      Engine.recover e
    end
  done;
  Engine.drain_backup e

let heaps = [ 1 lsl 20; 1 lsl 21 ]

let seeds = [ 1; 2; 3 ]

let check_simple () =
  List.iter
    (fun heap_bytes ->
      let cfg = config heap_bytes in
      let logs = ilog_bytes cfg in
      List.iter
        (fun seed ->
          let e = Engine.create ~config:cfg ~kind:Engine.Kamino_simple ~seed () in
          let claim context =
            let got = Engine.storage_bytes e in
            Alcotest.(check int)
              (Printf.sprintf "simple heap=%d seed=%d %s: 2x heap + logs" heap_bytes
                 seed context)
              ((2 * heap_bytes) + logs)
              got
          in
          claim "fresh";
          churn e seed;
          claim "after churn")
        seeds)
    heaps

let check_dynamic () =
  List.iter
    (fun heap_bytes ->
      let cfg = config heap_bytes in
      List.iter
        (fun alpha ->
          let metadata = dynamic_metadata_bytes cfg ~alpha in
          let budget =
            int_of_float ((1.0 +. alpha) *. float_of_int heap_bytes) + metadata
          in
          List.iter
            (fun seed ->
              let e =
                Engine.create ~config:cfg
                  ~kind:(Engine.Kamino_dynamic { alpha; policy = Backup.Lru_policy })
                  ~seed ()
              in
              let claim context =
                let got = Engine.storage_bytes e in
                if got > budget then
                  Alcotest.failf
                    "dynamic alpha=%.2f heap=%d seed=%d %s: %d bytes exceeds (1 + \
                     alpha) * heap + metadata = %d"
                    alpha heap_bytes seed context got budget;
                (* The bound must also be tight: the backup arena really is
                   alpha-sized, not secretly smaller. *)
                if got < heap_bytes + int_of_float (alpha *. float_of_int heap_bytes)
                then
                  Alcotest.failf
                    "dynamic alpha=%.2f heap=%d seed=%d %s: %d bytes is below heap \
                     + alpha * heap — arena undersized"
                    alpha heap_bytes seed context got
              in
              claim "fresh";
              churn e seed;
              claim "after churn";
              match Engine.verify_backup e with
              | Ok () -> ()
              | Error err ->
                  Alcotest.failf "dynamic alpha=%.2f seed=%d: %s" alpha seed err)
            seeds)
        [ 0.1; 0.25; 0.5; 0.75; 1.0 ])
    heaps

(* Promotion (Intent_only -> Kamino-simple head) adds exactly one full
   backup region: the before/after delta is the heap size, nothing else. *)
let check_promotion () =
  let heap_bytes = 1 lsl 20 in
  let cfg = config heap_bytes in
  let e = Engine.create ~config:cfg ~kind:Engine.Intent_only ~seed:7 () in
  let before = Engine.storage_bytes e in
  Alcotest.(check int) "intent-only: heap + logs" (heap_bytes + ilog_bytes cfg) before;
  Engine.promote_to_kamino e;
  Alcotest.(check int) "promotion adds one heap-sized backup" (before + heap_bytes)
    (Engine.storage_bytes e)

let () =
  Alcotest.run "storage"
    [
      ( "accounting",
        [
          Alcotest.test_case "kamino-simple = 2x heap + logs" `Quick check_simple;
          Alcotest.test_case "kamino-dynamic <= (1+alpha) heap + metadata" `Quick
            check_dynamic;
          Alcotest.test_case "promotion adds exactly one backup" `Quick
            check_promotion;
        ] );
    ]
