(* Prefix-consistency oracle for the snapshot-read path.

   The claim under test: a snapshot read ([Kv.snapshot_get] over
   [Engine.read_tx]) always observes the store's state at some
   watermark-consistent prefix of the committed serial history — never a
   torn value, never an uncommitted or aborted write, never a committed
   write the watermark has not yet covered.

   The oracle records the serial history of committed writes per key,
   each stamped with the applier task id its transaction enqueued
   (0 for kinds without an applier). Per snapshot read:

   - snapshot hit (detected by the [snapshot.hits] counter moving):
     the value must equal the newest history entry whose task id is
     <= the watermark captured just before the read — the read itself
     never syncs the applier, so that capture is exact;
   - fallback: the locked path ran, so the value must be the latest
     committed one;
   - the published watermark (both components) must be monotone over the
     engine's lifetime.

   Every engine kind runs the same seeded workload via the
   variant-oracle harness shape (kind table x seeds, mixed
   puts / deletes / aborts / drains). Kinds without a full backup
   (no-logging, undo, cow, intent-only, kamino-dynamic) must take the
   fallback path on every read; kamino-simple must serve genuine hits
   once the store's creating transaction has propagated. A second suite
   sweeps propagation schedules chaos-style: single-task drains
   ([Applier.drain_one]) interleaved at seed-driven points, so reads
   observe watermarks strictly inside an enqueue batch. *)

module Rng = Kamino_sim.Rng
module Engine = Kamino_core.Engine
module Applier = Kamino_core.Applier
module Backup = Kamino_core.Backup
module Kv = Kamino_kv.Kv

let config =
  {
    Engine.default_config with
    Engine.heap_bytes = 1 lsl 20;
    (* Few slots: commits hit intent-log pressure and force partial
       drains, so watermarks advance at interesting (mid-history)
       points without explicit scheduling. *)
    log_slots = 8;
    data_log_bytes = 1 lsl 18;
  }

let kinds =
  [
    ("no-logging", Engine.No_logging, false);
    ("undo-logging", Engine.Undo_logging, true);
    ("cow", Engine.Cow, true);
    ("kamino-simple", Engine.Kamino_simple, true);
    ( "kamino-dynamic",
      Engine.Kamino_dynamic { alpha = 0.3; policy = Backup.Lru_policy },
      true );
    ("intent-only", Engine.Intent_only, false);
  ]

let seeds = [ 1; 2; 3 ]

let nkeys = 24

(* Serial history per key, newest first: [(task_id, value)] where
   [value = None] records a delete. [committed] is the flat latest state. *)
type oracle = {
  hist : (int, (int * string option) list) Hashtbl.t;
  committed : (int, string option) Hashtbl.t;
  mutable last_wm : int * int;
  mutable hits_seen : int;
  mutable fallbacks_seen : int;
}

let make_oracle () =
  {
    hist = Hashtbl.create 64;
    committed = Hashtbl.create 64;
    last_wm = (-1, -1);
    hits_seen = 0;
    fallbacks_seen = 0;
  }

let task_now e =
  match Engine.applier e with Some a -> Applier.last_enqueued a | None -> 0

let record o e key v =
  let task = task_now e in
  Hashtbl.replace o.committed key v;
  Hashtbl.replace o.hist key
    ((task, v) :: Option.value ~default:[] (Hashtbl.find_opt o.hist key))

let latest o key =
  match Hashtbl.find_opt o.committed key with Some v -> v | None -> None

(* Newest history entry with task id <= [wm_id]; [None] when the key did
   not exist at that prefix. *)
let value_at_prefix o key wm_id =
  let rec go = function
    | [] -> None
    | (task, v) :: rest -> if task <= wm_id then v else go rest
  in
  go (Option.value ~default:[] (Hashtbl.find_opt o.hist key))

let pp_opt = function None -> "<absent>" | Some s -> Printf.sprintf "%S" s

let check_monotone cell o e =
  match Engine.snapshot_watermark e with
  | None -> ()
  | Some (a, ns) ->
      let pa, pns = o.last_wm in
      if a < pa || ns < pns then
        Alcotest.failf "%s: watermark regressed (%d,%d) -> (%d,%d)" cell pa pns
          a ns;
      o.last_wm <- (a, ns)

(* One oracle-checked snapshot read. *)
let check_read cell o e kv key =
  let m0 = Engine.metrics e in
  let wm = Engine.snapshot_watermark e in
  check_monotone cell o e;
  let got = Kv.snapshot_get kv key in
  let m1 = Engine.metrics e in
  let d_hits = m1.Engine.snapshot_hits - m0.Engine.snapshot_hits in
  let d_falls = m1.Engine.snapshot_fallbacks - m0.Engine.snapshot_fallbacks in
  if d_hits + d_falls < 1 then
    Alcotest.failf "%s: snapshot_get moved neither counter" cell;
  check_monotone cell o e;
  if d_hits > 0 then begin
    o.hits_seen <- o.hits_seen + 1;
    let wm_id =
      match wm with
      | Some (a, _) -> a
      | None -> Alcotest.failf "%s: hit without a published watermark" cell
    in
    let want = value_at_prefix o key wm_id in
    if got <> want then
      Alcotest.failf "%s: key %d at watermark %d: got %s, prefix says %s" cell
        key wm_id (pp_opt got) (pp_opt want)
  end
  else begin
    o.fallbacks_seen <- o.fallbacks_seen + 1;
    let want = latest o key in
    if got <> want then
      Alcotest.failf "%s: key %d fallback: got %s, committed says %s" cell key
        (pp_opt got) (pp_opt want)
  end

(* The workload: the variant-oracle mix reshaped for the kv layer, with
   oracle-checked snapshot reads interleaved. [drain_one] rounds advance
   the watermark by a single task — mid-batch prefixes. *)
let run_workload cell kind can_abort seed ~rounds =
  let e = Engine.create ~config ~kind ~seed () in
  let kv = Kv.create e ~value_size:64 ~node_size:256 in
  let o = make_oracle () in
  let rng = Rng.create (seed * 7919) in
  for round = 1 to rounds do
    let key = Rng.int rng nkeys in
    match Rng.int rng 12 with
    | 0 | 1 | 2 | 3 ->
        let v = Printf.sprintf "k%d.r%d.%d" key round (Rng.int rng 1_000_000) in
        Kv.put kv key v;
        record o e key (Some v)
    | 4 -> if Kv.delete kv key then record o e key None
    | 5 when can_abort ->
        (* Aborted writes must never surface in any snapshot. *)
        Kv.put_aborted kv key (Printf.sprintf "aborted.r%d" round)
    | 6 -> Engine.drain_backup e
    | 7 -> (
        match Engine.applier e with
        | Some a -> ignore (Applier.drain_one a)
        | None -> ())
    | _ -> check_read cell o e kv key
  done;
  (* Fully drained, the watermark covers the whole history: every key's
     snapshot value must equal the latest committed one. *)
  Engine.drain_backup e;
  for key = 0 to nkeys - 1 do
    check_read cell o e kv key;
    let got = Kv.snapshot_get kv key in
    if got <> latest o key then
      Alcotest.failf "%s: key %d after full drain: got %s, committed says %s"
        cell key (pp_opt got) (pp_opt (latest o key))
  done;
  (e, o)

let serves_snapshots kind =
  match kind with
  | Engine.Kamino_simple -> true
  | Engine.No_logging | Engine.Undo_logging | Engine.Cow
  | Engine.Kamino_dynamic _ | Engine.Intent_only -> false

let test_oracle (name, kind, can_abort) () =
  List.iter
    (fun seed ->
      let cell = Printf.sprintf "%s/seed=%d" name seed in
      let e, o = run_workload cell kind can_abort seed ~rounds:400 in
      if serves_snapshots kind then begin
        if o.hits_seen = 0 then
          Alcotest.failf "%s: full-backup kind never served a snapshot" cell;
        (match Engine.snapshot_watermark e with
        | Some _ -> ()
        | None -> Alcotest.failf "%s: no watermark on a full-backup kind" cell)
      end
      else begin
        if o.hits_seen > 0 then
          Alcotest.failf "%s: kind without a full backup served %d hits" cell
            o.hits_seen;
        if o.fallbacks_seen = 0 then
          Alcotest.failf "%s: no fallbacks recorded" cell;
        match Engine.snapshot_watermark e with
        | None -> ()
        | Some _ ->
            Alcotest.failf "%s: watermark published without a full backup" cell
      end)
    seeds

(* Chaos-style sweep over propagation schedules: for each seed, replay
   the same committed history but vary where single-task drains land
   (every k-th commit for several k), checking a snapshot read of every
   key at each schedule point. The oracle must hold at every
   intermediate watermark, not just the ones a random mix happens to
   visit. *)
let test_schedule_sweep () =
  List.iter
    (fun seed ->
      List.iter
        (fun stride ->
          let cell = Printf.sprintf "sweep/seed=%d/stride=%d" seed stride in
          let e = Engine.create ~config ~kind:Engine.Kamino_simple ~seed () in
          let kv = Kv.create e ~value_size:64 ~node_size:256 in
          let o = make_oracle () in
          let rng = Rng.create ((seed * 911) + stride) in
          let a =
            match Engine.applier e with Some a -> a | None -> assert false
          in
          for round = 1 to 120 do
            let key = Rng.int rng nkeys in
            let v = Printf.sprintf "s%d.%d" round (Rng.int rng 1_000_000) in
            Kv.put kv key v;
            record o e key (Some v);
            if round mod stride = 0 then ignore (Applier.drain_one a);
            (* Probe a few keys at this exact schedule point. *)
            for _ = 1 to 3 do
              check_read cell o e kv (Rng.int rng nkeys)
            done
          done;
          Engine.drain_backup e;
          for key = 0 to nkeys - 1 do
            check_read cell o e kv key
          done;
          if o.hits_seen = 0 then
            Alcotest.failf "%s: sweep served no hits" cell)
        [ 1; 2; 5; 9 ])
    seeds

(* Readers must never join the dependent-wait class: a snapshot read on a
   dedicated reader clock advances neither the writer's clock nor any
   write-side NVM counter, even when the object it reads has a
   committed-but-unapplied update pending (where the locked path would
   block for backup catch-up). *)
let test_reader_never_waits () =
  let e = Engine.create ~config ~kind:Engine.Kamino_simple ~seed:42 () in
  let kv = Kv.create e ~value_size:64 ~node_size:256 in
  Kv.put kv 7 "before";
  Engine.drain_backup e;
  (* Leave an update pending in the applier queue: the write lock is
     scheduled to release at the applier's finish time, so a locked
     reader would wait. *)
  Kv.put kv 7 "after";
  let writer_clk = Engine.clock e in
  let w0 = Kamino_sim.Clock.now writer_clk in
  let c0 = Engine.main_counters e in
  let reader = Kamino_sim.Clock.create_at w0 in
  let got = Kv.snapshot_get ~clock:reader kv 7 in
  Alcotest.(check (option string))
    "snapshot sees the watermark-consistent (stale) value" (Some "before") got;
  Alcotest.(check int)
    "writer clock untouched" w0
    (Kamino_sim.Clock.now writer_clk);
  let c1 = Engine.main_counters e in
  let module R = Kamino_nvm.Region in
  Alcotest.(check int) "no stores" c0.R.stores c1.R.stores;
  Alcotest.(check int) "no flushes" c0.R.lines_flushed c1.R.lines_flushed;
  Alcotest.(check int) "no fences" c0.R.fences c1.R.fences;
  Alcotest.(check int) "no copies" c0.R.bytes_copied c1.R.bytes_copied;
  if Kamino_sim.Clock.now reader <= w0 then
    Alcotest.fail "reader clock should have been charged for its loads";
  (* And the pending update becomes visible once propagated. *)
  Engine.drain_backup e;
  Alcotest.(check (option string))
    "post-drain snapshot catches up" (Some "after") (Kv.snapshot_get kv 7)

(* A promoted chain head gains a full backup and must start serving
   snapshots from the durable prefix it was promoted with. *)
let test_promoted_head_serves () =
  let e = Engine.create ~config ~kind:Engine.Intent_only ~seed:5 () in
  let kv = Kv.create e ~value_size:64 ~node_size:256 in
  Kv.put kv 1 "one";
  Kv.put kv 2 "two";
  Alcotest.(check (option (pair int int)))
    "replica publishes no watermark" None
    (Engine.snapshot_watermark e);
  let m0 = Engine.metrics e in
  ignore (Kv.snapshot_get kv 1);
  Alcotest.(check int)
    "replica read falls back"
    (m0.Engine.snapshot_fallbacks + 1)
    (Engine.metrics e).Engine.snapshot_fallbacks;
  Engine.promote_to_kamino e;
  Alcotest.(check (option (pair int int)))
    "fresh head watermark is (0,0)" (Some (0, 0))
    (Engine.snapshot_watermark e);
  let m1 = Engine.metrics e in
  Alcotest.(check (option string))
    "head serves the promoted prefix" (Some "two") (Kv.snapshot_get kv 2);
  Alcotest.(check int)
    "served as a hit"
    (m1.Engine.snapshot_hits + 1)
    (Engine.metrics e).Engine.snapshot_hits;
  Kv.put kv 2 "two'";
  Alcotest.(check (option string))
    "pending update invisible until propagation" (Some "two")
    (Kv.snapshot_get kv 2);
  Engine.drain_backup e;
  Alcotest.(check (option string))
    "visible after drain" (Some "two'") (Kv.snapshot_get kv 2)

let () =
  let oracle_cases =
    List.map
      (fun ((name, _, _) as k) -> Alcotest.test_case name `Quick (test_oracle k))
      kinds
  in
  Alcotest.run "snapshot"
    [
      ("prefix-oracle", oracle_cases);
      ( "schedules",
        [ Alcotest.test_case "drain-schedule sweep" `Quick test_schedule_sweep ]
      );
      ( "isolation",
        [
          Alcotest.test_case "reader never waits" `Quick test_reader_never_waits;
          Alcotest.test_case "promoted head serves" `Quick
            test_promoted_head_serves;
        ] );
    ]
