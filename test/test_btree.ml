(* Tests for the persistent B+Tree: model-based checks against Map, split
   and merge paths with a tiny branching factor, iteration, and crash
   atomicity of structural changes. *)

module Heap = Kamino_heap.Heap
module Engine = Kamino_core.Engine
module Backup = Kamino_core.Backup
module Btree = Kamino_index.Btree
module Rng = Kamino_sim.Rng

let config =
  {
    Engine.default_config with
    Engine.heap_bytes = 4 lsl 20;
    log_slots = 32;
    data_log_bytes = 1 lsl 20;
  }

let make ?(kind = Engine.Kamino_simple) ?(node_size = 96) () =
  let e = Engine.create ~config ~kind ~seed:99 () in
  let tree = Engine.with_tx e (fun tx -> Btree.create tx ~node_size) in
  (e, tree)

(* Values must be plausible object pointers for validation purposes; we
   just need distinct integers, so allocate one real object and offset
   markers are simply encoded as the key itself (the tree stores any
   int64). *)
let v k = 100000 + k

let check_validate tree ctx =
  match Btree.validate tree with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: invalid tree: %s" ctx e

let test_empty () =
  let _, tree = make () in
  Alcotest.(check int) "empty cardinal" 0 (Btree.cardinal tree);
  Alcotest.(check (option int)) "find on empty" None (Btree.find tree 5);
  Alcotest.(check (option int)) "min" None (Btree.min_key tree);
  Alcotest.(check (option int)) "max" None (Btree.max_key tree);
  Alcotest.(check int) "height" 1 (Btree.height tree);
  check_validate tree "empty"

let test_insert_find () =
  let e, tree = make () in
  Engine.with_tx e (fun tx ->
      List.iter (fun k -> ignore (Btree.insert tx tree k (v k))) [ 5; 1; 9; 3; 7 ]);
  List.iter
    (fun k -> Alcotest.(check (option int)) "present" (Some (v k)) (Btree.find tree k))
    [ 1; 3; 5; 7; 9 ];
  Alcotest.(check (option int)) "absent" None (Btree.find tree 4);
  Alcotest.(check int) "cardinal" 5 (Btree.cardinal tree);
  Alcotest.(check (option int)) "min" (Some 1) (Btree.min_key tree);
  Alcotest.(check (option int)) "max" (Some 9) (Btree.max_key tree);
  check_validate tree "small"

let test_replace () =
  let e, tree = make () in
  Engine.with_tx e (fun tx ->
      Alcotest.(check (option int)) "fresh insert" None (Btree.insert tx tree 1 10);
      Alcotest.(check (option int)) "replace returns old" (Some 10) (Btree.insert tx tree 1 20));
  Alcotest.(check (option int)) "new value" (Some 20) (Btree.find tree 1);
  Alcotest.(check int) "no double count" 1 (Btree.cardinal tree)

let test_splits_grow_height () =
  let e, tree = make ~node_size:96 () in
  (* node_size 96 -> capacity 128 -> 6 keys per node: splits come fast. *)
  Engine.with_tx e (fun tx ->
      for k = 1 to 100 do
        ignore (Btree.insert tx tree k (v k))
      done);
  Alcotest.(check bool) "height grew" true (Btree.height tree > 2);
  Alcotest.(check int) "cardinal" 100 (Btree.cardinal tree);
  for k = 1 to 100 do
    Alcotest.(check (option int)) "all present" (Some (v k)) (Btree.find tree k)
  done;
  check_validate tree "after splits"

let test_delete_simple () =
  let e, tree = make () in
  Engine.with_tx e (fun tx ->
      for k = 1 to 10 do
        ignore (Btree.insert tx tree k (v k))
      done);
  Engine.with_tx e (fun tx ->
      Alcotest.(check (option int)) "delete returns value" (Some (v 5)) (Btree.delete tx tree 5);
      Alcotest.(check (option int)) "delete absent" None (Btree.delete tx tree 5));
  Alcotest.(check (option int)) "gone" None (Btree.find tree 5);
  Alcotest.(check int) "cardinal" 9 (Btree.cardinal tree);
  check_validate tree "after delete"

let test_delete_everything () =
  let e, tree = make ~node_size:96 () in
  Engine.with_tx e (fun tx ->
      for k = 1 to 200 do
        ignore (Btree.insert tx tree k (v k))
      done);
  (* Delete in an order that exercises both borrow directions and merges. *)
  let order = Array.init 200 (fun i -> i + 1) in
  Rng.shuffle (Rng.create 7) order;
  Array.iter
    (fun k ->
      Engine.with_tx e (fun tx -> ignore (Btree.delete tx tree k));
      if k mod 37 = 0 then check_validate tree (Printf.sprintf "mid-delete %d" k))
    order;
  Alcotest.(check int) "empty again" 0 (Btree.cardinal tree);
  Alcotest.(check int) "height collapsed" 1 (Btree.height tree);
  check_validate tree "emptied"

let test_iter_ordered () =
  let e, tree = make ~node_size:96 () in
  let keys = [ 42; 7; 99; 1; 55; 23; 88; 3 ] in
  Engine.with_tx e (fun tx -> List.iter (fun k -> ignore (Btree.insert tx tree k (v k))) keys);
  let seen = ref [] in
  Btree.iter tree (fun k value ->
      Alcotest.(check int) "value matches" (v k) value;
      seen := k :: !seen);
  Alcotest.(check (list int)) "ascending order" (List.sort compare keys) (List.rev !seen)

let test_range () =
  let e, tree = make ~node_size:96 () in
  Engine.with_tx e (fun tx ->
      for k = 1 to 50 do
        ignore (Btree.insert tx tree (k * 2) (v k))
      done);
  let seen = ref [] in
  Btree.range tree ~lo:10 ~hi:20 (fun k _ -> seen := k :: !seen);
  Alcotest.(check (list int)) "inclusive range" [ 10; 12; 14; 16; 18; 20 ] (List.rev !seen);
  let empty = ref [] in
  Btree.range tree ~lo:101 ~hi:200 (fun k _ -> empty := k :: !empty);
  Alcotest.(check (list int)) "empty range" [] !empty

let test_fold_range_basic () =
  let e, tree = make ~node_size:96 () in
  Engine.with_tx e (fun tx ->
      for k = 1 to 50 do
        ignore (Btree.insert tx tree (2 * k) (v k))
      done);
  let sum = Btree.fold_range tree ~lo:10 ~hi:20 ~init:0 ~f:(fun acc k _ -> acc + k) in
  Alcotest.(check int) "sum of keys 10..20" (10 + 12 + 14 + 16 + 18 + 20) sum;
  let count f = Btree.fold_range tree ~lo:(fst f) ~hi:(snd f) ~init:0 ~f:(fun a _ _ -> a + 1) in
  Alcotest.(check int) "past the end" 0 (count (101, 200));
  Alcotest.(check int) "before the start" 0 (count (-5, 1));
  Alcotest.(check int) "inverted bounds" 0 (count (20, 10));
  Alcotest.(check int) "single key" 1 (count (10, 10));
  Alcotest.(check int) "whole tree" 50 (count (min_int, max_int))

let test_fold_range_tx_sees_own_writes () =
  let e, tree = make ~node_size:96 () in
  Engine.with_tx e (fun tx ->
      for k = 1 to 10 do
        ignore (Btree.insert tx tree k (v k))
      done);
  Engine.with_tx e (fun tx ->
      ignore (Btree.insert tx tree 5 999);
      ignore (Btree.delete tx tree 7);
      let got =
        List.rev
          (Btree.fold_range_tx tx tree ~lo:4 ~hi:8 ~init:[] ~f:(fun acc k p ->
               (k, p) :: acc))
      in
      Alcotest.(check (list (pair int int)))
        "in-tx scan sees uncommitted writes"
        [ (4, v 4); (5, 999); (6, v 6); (8, v 8) ]
        got)

(* fold_range against a sorted-assoc-list model: same bindings, same
   order, for arbitrary key multisets and bounds (including empty and
   inverted ranges), across enough keys to force multi-level trees. *)
let fold_range_qcheck kind =
  let name =
    Printf.sprintf "fold_range matches sorted-assoc model (%s)" (Engine.kind_name kind)
  in
  QCheck.Test.make ~name ~count:50
    QCheck.(
      triple
        (list_of_size (Gen.int_range 0 150) (int_range 0 300))
        (int_range (-10) 310) (int_range (-10) 310))
    (fun (keys, a, b) ->
      let lo = min a b and hi = max a b in
      let e, tree = make ~kind ~node_size:96 () in
      Engine.with_tx e (fun tx ->
          List.iter (fun k -> ignore (Btree.insert tx tree k (v k))) keys);
      let model =
        List.sort_uniq compare keys
        |> List.filter (fun k -> lo <= k && k <= hi)
        |> List.map (fun k -> (k, v k))
      in
      let scanned =
        List.rev
          (Btree.fold_range tree ~lo ~hi ~init:[] ~f:(fun acc k p -> (k, p) :: acc))
      in
      scanned = model)

let test_find_tx_sees_own_writes () =
  let e, tree = make () in
  Engine.with_tx e (fun tx ->
      ignore (Btree.insert tx tree 77 123);
      Alcotest.(check (option int)) "visible in tx" (Some 123) (Btree.find_tx tx tree 77))

let test_abort_rolls_back_structure () =
  List.iter
    (fun kind ->
      let name = Engine.kind_name kind in
      let e, tree = make ~kind ~node_size:96 () in
      Engine.with_tx e (fun tx ->
          for k = 1 to 30 do
            ignore (Btree.insert tx tree k (v k))
          done);
      let card = Btree.cardinal tree and h = Btree.height tree in
      (* A big aborted transaction that would cause splits. *)
      let tx = Engine.begin_tx e in
      for k = 100 to 160 do
        ignore (Btree.insert tx tree k (v k))
      done;
      Engine.abort tx;
      Alcotest.(check int) (name ^ ": cardinal restored") card (Btree.cardinal tree);
      Alcotest.(check int) (name ^ ": height restored") h (Btree.height tree);
      Alcotest.(check (option int)) (name ^ ": inserted key gone") None (Btree.find tree 120);
      check_validate tree (name ^ " after abort");
      Alcotest.(check bool) (name ^ ": heap valid") true
        (Heap.validate (Engine.heap e) = Ok ()))
    [ Engine.Undo_logging; Engine.Cow; Engine.Kamino_simple ]

let test_attach_after_reopen () =
  let e, tree = make () in
  Engine.with_tx e (fun tx ->
      ignore (Btree.insert tx tree 1 11);
      Engine.set_root tx (Btree.descriptor tree));
  Engine.crash e;
  Engine.recover e;
  let tree' = Btree.attach e (Engine.root e) in
  Alcotest.(check (option int)) "rebound tree finds key" (Some 11) (Btree.find tree' 1);
  check_validate tree' "after reopen"

(* Model-based test: random insert/delete/replace against Map, with
   per-transaction batching, validated continuously. *)
let model_qcheck kind =
  let name = Printf.sprintf "btree matches Map model (%s)" (Engine.kind_name kind) in
  QCheck.Test.make ~name ~count:30
    QCheck.(pair small_int (list_of_size (Gen.int_range 30 120) (pair (int_range 0 200) bool)))
    (fun (_, ops) ->
      let e, tree = make ~kind ~node_size:96 () in
      let module M = Map.Make (Int) in
      let model = ref M.empty in
      let batch = ref [] in
      let flush_batch () =
        if !batch <> [] then begin
          Engine.with_tx e (fun tx ->
              List.iter
                (fun (k, ins) ->
                  if ins then ignore (Btree.insert tx tree k (v k))
                  else ignore (Btree.delete tx tree k))
                (List.rev !batch));
          List.iter
            (fun (k, ins) ->
              if ins then model := M.add k (v k) !model else model := M.remove k !model)
            (List.rev !batch);
          batch := []
        end
      in
      List.iteri
        (fun i op ->
          batch := op :: !batch;
          if i mod 7 = 6 then flush_batch ())
        ops;
      flush_batch ();
      Btree.validate tree = Ok ()
      && Btree.cardinal tree = M.cardinal !model
      && M.for_all (fun k value -> Btree.find tree k = Some value) !model
      && List.for_all
           (fun (k, _) -> M.mem k !model || Btree.find tree k = None)
           ops)

(* Crash-injection on tree structure: run batches, crash randomly between
   them, verify committed state and tree validity. *)
let crash_qcheck kind =
  let name = Printf.sprintf "btree survives crashes (%s)" (Engine.kind_name kind) in
  QCheck.Test.make ~name ~count:15
    QCheck.(pair small_int (list_of_size (Gen.int_range 20 80) (pair (int_range 0 150) bool)))
    (fun (seed, ops) ->
      let e, tree = make ~kind ~node_size:96 () in
      Engine.with_tx e (fun tx -> Engine.set_root tx (Btree.descriptor tree));
      let rng = Rng.create (seed + 1) in
      let module M = Map.Make (Int) in
      let model = ref M.empty in
      let tree = ref tree in
      let batches = ref [] in
      let cur = ref [] in
      List.iteri
        (fun i op ->
          cur := op :: !cur;
          if i mod 5 = 4 then begin
            batches := List.rev !cur :: !batches;
            cur := []
          end)
        ops;
      if !cur <> [] then batches := List.rev !cur :: !batches;
      List.iter
        (fun batch ->
          let committed = ref false in
          (try
             Engine.with_tx e (fun tx ->
                 List.iter
                   (fun (k, ins) ->
                     if ins then ignore (Btree.insert tx !tree k (v k))
                     else ignore (Btree.delete tx !tree k))
                   batch;
                 committed := true)
           with Failure _ -> ());
          if !committed then
            List.iter
              (fun (k, ins) ->
                if ins then model := M.add k (v k) !model else model := M.remove k !model)
              batch;
          if Rng.int rng 3 = 0 then begin
            Engine.crash e;
            Engine.recover e;
            tree := Btree.attach e (Engine.root e)
          end)
        (List.rev !batches);
      Btree.validate !tree = Ok ()
      && M.for_all (fun k value -> Btree.find !tree k = Some value) !model
      && Btree.cardinal !tree = M.cardinal !model)

(* --- Bulk load and count-bounded scan --- *)

(* Append in uneven batches (including sizes below min_keys, which must
   rebalance rather than create underfull leaves) and check the result is
   a valid tree holding exactly the appended bindings. node_size 96 means
   mk = 4, so a few hundred keys exercise real depth. *)
let test_append_sorted () =
  let e, tree = make () in
  let next = ref 0 in
  List.iter
    (fun batch ->
      let entries = Array.init batch (fun i -> (!next + i, v (!next + i))) in
      Engine.with_tx e (fun tx -> Btree.append_sorted tx tree entries);
      next := !next + batch;
      check_validate tree (Printf.sprintf "after batch of %d" batch))
    [ 1; 3; 4; 2; 17; 1; 40; 5; 100; 2; 64 ];
  Alcotest.(check int) "cardinal" !next (Btree.cardinal tree);
  for k = 0 to !next - 1 do
    Alcotest.(check (option int)) (Printf.sprintf "key %d" k) (Some (v k))
      (Btree.find tree k)
  done;
  Alcotest.(check bool) "bulk load built real depth" true (Btree.height tree >= 4);
  (* Ascending-order iteration sees exactly the appended keys. *)
  let seen = ref [] in
  Btree.iter tree (fun k _ -> seen := k :: !seen);
  Alcotest.(check (list int)) "iter in order" (List.init !next Fun.id) (List.rev !seen)

let test_append_rejects_bad_input () =
  let e, tree = make () in
  Engine.with_tx e (fun tx -> Btree.append_sorted tx tree [| (10, v 10); (20, v 20) |]);
  let raises entries =
    try
      Engine.with_tx e (fun tx -> Btree.append_sorted tx tree entries);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "key below current max rejected" true (raises [| (15, v 15) |]);
  Alcotest.(check bool) "unsorted batch rejected" true
    (raises [| (30, v 30); (25, v 25) |]);
  check_validate tree "after rejected appends"

let test_scan_count_bounded () =
  let e, tree = make () in
  (* Even keys 0..198. *)
  let entries = Array.init 100 (fun i -> (2 * i, v (2 * i))) in
  Engine.with_tx e (fun tx -> Btree.append_sorted tx tree entries);
  let collect lo count =
    let acc = ref [] in
    let n = Btree.scan tree ~lo ~count (fun k _ -> acc := k :: !acc) in
    (n, List.rev !acc)
  in
  (* lo between keys: starts at the next present key. *)
  let n, keys = collect 5 4 in
  Alcotest.(check int) "visited" 4 n;
  Alcotest.(check (list int)) "window" [ 6; 8; 10; 12 ] keys;
  (* Window crossing many leaves. *)
  let n, keys = collect 0 50 in
  Alcotest.(check int) "long scan count" 50 n;
  Alcotest.(check (list int)) "long scan keys" (List.init 50 (fun i -> 2 * i)) keys;
  (* Truncated at the end of the key space. *)
  let n, keys = collect 190 10 in
  Alcotest.(check int) "tail scan" 5 n;
  Alcotest.(check (list int)) "tail keys" [ 190; 192; 194; 196; 198 ] keys;
  (* Degenerate windows. *)
  Alcotest.(check int) "count 0" 0 (fst (collect 0 0));
  Alcotest.(check int) "lo past max" 0 (fst (collect 1000 5))

let test_depth_and_stats () =
  let e, tree = make () in
  let entries = Array.init 200 (fun i -> (i, v i)) in
  Engine.with_tx e (fun tx -> Btree.append_sorted tx tree entries);
  Alcotest.(check int) "depth agrees with height" (Btree.height tree) (Btree.depth tree);
  let s = Btree.stats tree in
  Alcotest.(check int) "stats depth" (Btree.depth tree) s.Btree.depth;
  Alcotest.(check int) "stats keys = cardinal" (Btree.cardinal tree) s.Btree.keys;
  (* node_size 96 rounds up to the 128-byte class -> mk = 6, so 200 keys
     need at least ceil(200/6) = 34 leaves. *)
  Alcotest.(check bool) "leaves counted" true (s.Btree.leaf_nodes >= 34);
  Alcotest.(check bool) "occupancy in (0,1]" true
    (s.Btree.occupancy > 0.0 && s.Btree.occupancy <= 1.0);
  (* The introspection walk is cost-free: reading it must not advance the
     simulated clock. *)
  let t0 = Engine.now e in
  ignore (Btree.stats tree);
  ignore (Btree.depth tree);
  Alcotest.(check int) "stats walk charges nothing" t0 (Engine.now e)

let () =
  Alcotest.run "btree"
    [
      ( "basics",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "insert and find" `Quick test_insert_find;
          Alcotest.test_case "replace" `Quick test_replace;
          Alcotest.test_case "splits grow height" `Quick test_splits_grow_height;
          Alcotest.test_case "find_tx sees own writes" `Quick test_find_tx_sees_own_writes;
        ] );
      ( "delete",
        [
          Alcotest.test_case "simple delete" `Quick test_delete_simple;
          Alcotest.test_case "delete everything" `Quick test_delete_everything;
        ] );
      ( "iteration",
        [
          Alcotest.test_case "iter ordered" `Quick test_iter_ordered;
          Alcotest.test_case "range" `Quick test_range;
          Alcotest.test_case "fold_range basics" `Quick test_fold_range_basic;
          Alcotest.test_case "fold_range_tx sees own writes" `Quick
            test_fold_range_tx_sees_own_writes;
        ] );
      ( "transactions",
        [
          Alcotest.test_case "abort rolls back structure" `Quick
            test_abort_rolls_back_structure;
          Alcotest.test_case "attach after reopen" `Quick test_attach_after_reopen;
        ] );
      ( "bulk",
        [
          Alcotest.test_case "append_sorted" `Quick test_append_sorted;
          Alcotest.test_case "append_sorted rejects bad input" `Quick
            test_append_rejects_bad_input;
          Alcotest.test_case "count-bounded scan" `Quick test_scan_count_bounded;
          Alcotest.test_case "depth and stats are cost-free" `Quick
            test_depth_and_stats;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest (model_qcheck Engine.Undo_logging);
          QCheck_alcotest.to_alcotest (model_qcheck Engine.Cow);
          QCheck_alcotest.to_alcotest (model_qcheck Engine.Kamino_simple);
          QCheck_alcotest.to_alcotest
            (model_qcheck (Engine.Kamino_dynamic { alpha = 0.4; policy = Backup.Lru_policy }));
          QCheck_alcotest.to_alcotest (fold_range_qcheck Engine.Undo_logging);
          QCheck_alcotest.to_alcotest (fold_range_qcheck Engine.Kamino_simple);
          QCheck_alcotest.to_alcotest (crash_qcheck Engine.Undo_logging);
          QCheck_alcotest.to_alcotest (crash_qcheck Engine.Kamino_simple);
          QCheck_alcotest.to_alcotest
            (crash_qcheck (Engine.Kamino_dynamic { alpha = 0.4; policy = Backup.Lru_policy }));
        ] );
    ]
