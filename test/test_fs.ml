(* Tests for the transactional filesystem: functional coverage of every
   operation, the fsck oracle's ability to detect planted corruption,
   deterministic crash injection at every mutation step of
   rename/unlink/truncate across every engine kind, the rename
   all-or-nothing property, the sharded façade (including crashes at
   every 2PC protocol position), and trace/metrics determinism of the
   fs observability hooks. *)

module Rng = Kamino_sim.Rng
module Heap = Kamino_heap.Heap
module Engine = Kamino_core.Engine
module Applier = Kamino_core.Applier
module Backup = Kamino_core.Backup
module Btree = Kamino_index.Btree
module Obs = Kamino_obs.Obs
module Metrics = Kamino_obs.Metrics
module Sink = Kamino_obs.Sink
module Shard = Kamino_shard.Shard
module Fs = Kamino_fs.Fs
module Fs_check = Kamino_fs.Fs_check
module Shard_fs = Kamino_fs.Shard_fs

let config =
  {
    Engine.default_config with
    Engine.heap_bytes = 2 lsl 20;
    log_slots = 64;
    max_tx_entries = 8192;
    data_log_bytes = 2 lsl 20;
  }

(* The six engine kinds of the crash coverage. [atomic] marks the kinds
   that roll mid-transaction crashes back; [No_logging] is Figure 1's
   motivation and only survives crashes at operation boundaries. The
   chain head is an [Intent_only] replica promoted to a Kamino head
   right after format (§5.2), from then on crashing like any other. *)
type spec = Plain of Engine.kind | Chain_head

let builders =
  [
    ("no-logging", Plain Engine.No_logging, false);
    ("undo", Plain Engine.Undo_logging, true);
    ("cow", Plain Engine.Cow, true);
    ("kamino-simple", Plain Engine.Kamino_simple, true);
    ( "kamino-dynamic",
      Plain (Engine.Kamino_dynamic { alpha = 0.3; policy = Backup.Lru_policy }),
      true );
    ("chain-head", Chain_head, true);
  ]

let make_fs ?(block_size = 64) ?(dir_hash_bits = 2) spec seed =
  match spec with
  | Plain kind ->
      let e = Engine.create ~config ~kind ~seed () in
      (e, Fs.format ~block_size ~dir_hash_bits e)
  | Chain_head ->
      let e = Engine.create ~config ~kind:Engine.Intent_only ~seed () in
      let fs = Fs.format ~block_size ~dir_hash_bits e in
      Engine.promote_to_kamino e;
      (e, fs)

let check_fsck fs ctx =
  match Fs_check.fsck fs with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: fsck: %s" ctx e

let check_fsck_cluster fss ctx =
  match Fs_check.fsck_cluster fss with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: fsck_cluster: %s" ctx e

let expect_error f =
  match f () with
  | _ -> false
  | exception Fs.Fs_error _ -> true

(* --- functional coverage ---------------------------------------------------- *)

let test_tree_ops () =
  let _e, fs = make_fs ~block_size:128 ~dir_hash_bits:4 (Plain Engine.Kamino_simple) 3 in
  let root = Fs.root_ino fs in
  let f1 = Fs.create fs ~dir:root "hello.txt" in
  Fs.write fs ~ino:f1 ~off:0 "hello, world";
  Alcotest.(check string) "read back" "hello, world" (Fs.read fs ~ino:f1 ~off:0 ~len:100);
  Alcotest.(check string) "offset read" "world" (Fs.read fs ~ino:f1 ~off:7 ~len:5);
  Alcotest.(check string) "read past EOF is short" "" (Fs.read fs ~ino:f1 ~off:50 ~len:10);
  let d1 = Fs.mkdir fs ~dir:root "sub" in
  let f2 = Fs.create fs ~dir:d1 "nested" in
  (* Sparse write: the gap materializes as zero bytes. *)
  Fs.write fs ~ino:f2 ~off:300 "far";
  let got = Fs.read fs ~ino:f2 ~off:0 ~len:1000 in
  Alcotest.(check int) "sparse size" 303 (String.length got);
  Alcotest.(check string) "gap reads zero" (String.make 300 '\000' ^ "far") got;
  let st = Fs.stat fs f2 in
  Alcotest.(check int) "file size" 303 st.Fs.size;
  Alcotest.(check int) "file nlink" 1 st.Fs.nlink;
  Alcotest.(check bool) "file kind" true (st.Fs.kind = Fs.File);
  let std = Fs.stat fs d1 in
  Alcotest.(check bool) "dir kind" true (std.Fs.kind = Fs.Dir);
  Alcotest.(check int) "dir entry count" 1 std.Fs.size;
  Alcotest.(check int) "dir parent" root std.Fs.parent;
  Alcotest.(check (list string)) "readdir root"
    [ "hello.txt"; "sub" ]
    (List.sort compare (List.map fst (Fs.readdir fs ~dir:root)));
  Alcotest.(check (option int)) "resolve path" (Some f2) (Fs.resolve fs "/sub/nested");
  Alcotest.(check (option int)) "resolve missing" None (Fs.resolve fs "/sub/ghost");
  check_fsck fs "mid functional";
  (* Rename within a directory, then across directories. *)
  Fs.rename fs ~src:root ~src_name:"hello.txt" ~dst:root ~dst_name:"renamed";
  Alcotest.(check (option int)) "old name gone" None (Fs.lookup fs ~dir:root "hello.txt");
  Alcotest.(check (option int)) "new name" (Some f1) (Fs.lookup fs ~dir:root "renamed");
  let g0 = (Fs.stat fs f1).Fs.gen in
  Fs.rename fs ~src:root ~src_name:"renamed" ~dst:d1 ~dst_name:"moved";
  Alcotest.(check (option int)) "cross-dir rename" (Some f1) (Fs.lookup fs ~dir:d1 "moved");
  Alcotest.(check bool) "rename bumps gen" true ((Fs.stat fs f1).Fs.gen > g0);
  Alcotest.(check string) "content follows the inode" "hello, world"
    (Fs.read fs ~ino:f1 ~off:0 ~len:100);
  (* Clobbering rename drops the target's last link. *)
  Fs.rename fs ~src:d1 ~src_name:"moved" ~dst:d1 ~dst_name:"nested";
  Alcotest.(check (option int)) "clobber wins" (Some f1) (Fs.lookup fs ~dir:d1 "nested");
  Alcotest.(check (option int)) "clobbered inode freed" None (Fs.inode_ptr fs f2);
  check_fsck fs "after clobber";
  (* Hard links. *)
  Fs.link fs ~ino:f1 ~dir:root "hard";
  Alcotest.(check int) "nlink 2" 2 (Fs.stat fs f1).Fs.nlink;
  Fs.write fs ~ino:f1 ~off:0 "HELLO";
  Alcotest.(check string) "both names, one inode" "HELLO, world"
    (Fs.read fs ~ino:(Option.get (Fs.lookup fs ~dir:root "hard")) ~off:0 ~len:100);
  Fs.unlink fs ~dir:d1 "nested";
  Alcotest.(check int) "nlink back to 1" 1 (Fs.stat fs f1).Fs.nlink;
  Alcotest.(check bool) "survives while linked" true (Fs.inode_ptr fs f1 <> None);
  (* Truncate shrink and grow. *)
  Fs.truncate fs ~ino:f1 ~len:5;
  Alcotest.(check string) "shrunk" "HELLO" (Fs.read fs ~ino:f1 ~off:0 ~len:100);
  Fs.truncate fs ~ino:f1 ~len:300;
  Alcotest.(check string) "grown with zeros" ("HELLO" ^ String.make 295 '\000')
    (Fs.read fs ~ino:f1 ~off:0 ~len:1000);
  Fs.truncate fs ~ino:f1 ~len:0;
  Alcotest.(check string) "truncated to empty" "" (Fs.read fs ~ino:f1 ~off:0 ~len:10);
  check_fsck fs "after truncates";
  (* Teardown. *)
  Fs.unlink fs ~dir:root "hard";
  Alcotest.(check (option int)) "last unlink frees" None (Fs.inode_ptr fs f1);
  Fs.rmdir fs ~dir:root "sub";
  Alcotest.(check (list string)) "root empty again" []
    (List.map fst (Fs.readdir fs ~dir:root));
  check_fsck fs "emptied";
  let dump = Fs.dump fs in
  Alcotest.(check bool) "dump renders" true (String.length dump > 0)

let test_errors () =
  let _e, fs = make_fs ~block_size:128 ~dir_hash_bits:4 (Plain Engine.Kamino_simple) 4 in
  let root = Fs.root_ino fs in
  let d = Fs.mkdir fs ~dir:root "d" in
  let f = Fs.create fs ~dir:root "f" in
  let sub = Fs.mkdir fs ~dir:d "sub" in
  Alcotest.(check bool) "duplicate create" true
    (expect_error (fun () -> Fs.create fs ~dir:root "f"));
  Alcotest.(check bool) "duplicate mkdir over file" true
    (expect_error (fun () -> Fs.mkdir fs ~dir:root "f"));
  Alcotest.(check bool) "unlink a directory" true
    (expect_error (fun () -> Fs.unlink fs ~dir:root "d"));
  Alcotest.(check bool) "rmdir a file" true
    (expect_error (fun () -> Fs.rmdir fs ~dir:root "f"));
  Alcotest.(check bool) "rmdir non-empty" true
    (expect_error (fun () -> Fs.rmdir fs ~dir:root "d"));
  Alcotest.(check bool) "unlink missing" true
    (expect_error (fun () -> Fs.unlink fs ~dir:root "ghost"));
  Alcotest.(check bool) "rename missing" true
    (expect_error (fun () ->
         Fs.rename fs ~src:root ~src_name:"ghost" ~dst:root ~dst_name:"g2"));
  Alcotest.(check bool) "rename dir under itself" true
    (expect_error (fun () ->
         Fs.rename fs ~src:root ~src_name:"d" ~dst:sub ~dst_name:"loop"));
  Alcotest.(check bool) "rename dir over file" true
    (expect_error (fun () ->
         Fs.rename fs ~src:root ~src_name:"d" ~dst:root ~dst_name:"f"));
  Alcotest.(check bool) "rename file over dir" true
    (expect_error (fun () ->
         Fs.rename fs ~src:root ~src_name:"f" ~dst:root ~dst_name:"d"));
  Fs.link fs ~ino:f ~dir:root "f2";
  Alcotest.(check bool) "rename over a link to itself" true
    (expect_error (fun () ->
         Fs.rename fs ~src:root ~src_name:"f" ~dst:root ~dst_name:"f2"));
  Alcotest.(check bool) "link a directory" true
    (expect_error (fun () -> Fs.link fs ~ino:d ~dir:root "dlink"));
  Alcotest.(check bool) "write a directory" true
    (expect_error (fun () -> Fs.write fs ~ino:d ~off:0 "x"));
  Alcotest.(check bool) "negative write offset" true
    (expect_error (fun () -> Fs.write fs ~ino:f ~off:(-1) "x"));
  List.iter
    (fun bad ->
      Alcotest.(check bool)
        (Printf.sprintf "bad name %S" bad)
        true
        (expect_error (fun () -> Fs.create fs ~dir:root bad)))
    [ ""; "."; ".."; "a/b"; "nul\000byte"; String.make (Fs.Layout.max_name_len + 1) 'x' ];
  let long = String.make Fs.Layout.max_name_len 'y' in
  ignore (Fs.create fs ~dir:root long);
  Alcotest.(check bool) "max-length name round-trips" true
    (Fs.lookup fs ~dir:root long <> None);
  check_fsck fs "after errors"

(* A one-bit name hash: every directory has at most two B+Tree keys, so
   the dirent collision chains do all the work. *)
let test_collision_chains () =
  let _e, fs = make_fs ~block_size:64 ~dir_hash_bits:1 (Plain Engine.Kamino_simple) 5 in
  let root = Fs.root_ino fs in
  let names = List.init 20 (Printf.sprintf "file%02d") in
  let inos = List.map (fun n -> (n, Fs.create fs ~dir:root n)) names in
  Alcotest.(check int) "all entries found" 20
    (List.length (Fs.readdir fs ~dir:root));
  List.iter
    (fun (n, i) ->
      Alcotest.(check (option int)) ("lookup " ^ n) (Some i) (Fs.lookup fs ~dir:root n))
    inos;
  check_fsck fs "collision chains";
  (* Remove from the middle, the head and the tail of chains. *)
  List.iteri (fun i (n, _) -> if i mod 2 = 0 then Fs.unlink fs ~dir:root n) inos;
  Alcotest.(check int) "half remain" 10 (List.length (Fs.readdir fs ~dir:root));
  List.iteri
    (fun i (n, ino) ->
      Alcotest.(check (option int)) ("post-unlink " ^ n)
        (if i mod 2 = 0 then None else Some ino)
        (Fs.lookup fs ~dir:root n))
    inos;
  check_fsck fs "after chain surgery"

(* --- the oracle detects planted corruption ---------------------------------- *)

let poke_int e p off v =
  Engine.with_tx e (fun tx ->
      Engine.add tx p;
      Engine.write_int tx p off v)

let test_fsck_detects_corruption () =
  let expect_violation name corrupt =
    let e, fs = make_fs ~block_size:64 ~dir_hash_bits:2 (Plain Engine.Kamino_simple) 6 in
    let root = Fs.root_ino fs in
    let f = Fs.create fs ~dir:root "victim" in
    Fs.write fs ~ino:f ~off:0 "some file content";
    ignore (Fs.mkdir fs ~dir:root "d");
    check_fsck fs (name ^ " (pre-corruption)");
    corrupt e fs f;
    match Fs_check.fsck fs with
    | Ok () -> Alcotest.failf "%s: fsck missed the corruption" name
    | Error _ -> ()
  in
  expect_violation "inflated nlink" (fun e fs f ->
      poke_int e (Option.get (Fs.inode_ptr fs f)) Fs.Layout.i_nlink 7);
  expect_violation "skewed inode counter" (fun e fs _ ->
      let sb = Fs.superblock fs in
      poke_int e sb Fs.Layout.sb_inode_count
        (Engine.peek_int e sb Fs.Layout.sb_inode_count + 1));
  expect_violation "skewed byte counter" (fun e fs _ ->
      let sb = Fs.superblock fs in
      poke_int e sb Fs.Layout.sb_data_bytes
        (Engine.peek_int e sb Fs.Layout.sb_data_bytes + 8));
  expect_violation "garbage past EOF" (fun e fs f ->
      (* A torn in-place write that recovery failed to roll back: a
         nonzero byte between the file size and the end of its last
         block. *)
      let ip = Option.get (Fs.inode_ptr fs f) in
      let head = Engine.peek_int e ip Fs.Layout.i_head in
      let blk = Engine.peek_int e head (Fs.Layout.e_slot 0) in
      Engine.with_tx e (fun tx ->
          Engine.add tx blk;
          Engine.write_byte tx blk 30 0xAB));
  expect_violation "dangling dirent" (fun e fs f ->
      (* Point the victim's dirent at an inode that does not exist. *)
      let idx = Btree.attach e (Engine.peek_int e (Option.get (Fs.inode_ptr fs (Fs.root_ino fs))) Fs.Layout.i_head) in
      let de = Option.get (Btree.find idx (Fs.hash_name fs "victim")) in
      ignore f;
      poke_int e de Fs.Layout.d_ino 999_999);
  expect_violation "dropped size" (fun e fs f ->
      poke_int e (Option.get (Fs.inode_ptr fs f)) Fs.Layout.i_size 3)

(* --- deterministic crash sweeps --------------------------------------------- *)

exception Crashed

(* Run [op] once per crash point: attempt [k] injects a power failure at
   the [k]-th step callback, recovers, runs fsck and the caller's
   [rolled_back] oracle; the sweep ends with the first attempt that
   completes without reaching its crash point. Mid-transaction crashes
   always roll back (commit happens after the last step), so each
   crashed attempt leaves the pre-op state and the op can simply be
   retried. Returns the number of crash points covered. *)
let crash_sweep e fs ~ctx ~rolled_back op =
  let rec go k =
    if k > 5000 then Alcotest.failf "%s: operation never completes" ctx;
    let count = ref 0 in
    let on_step _label =
      if !count = k then begin
        Engine.crash e;
        raise Crashed
      end;
      incr count
    in
    match op ~on_step with
    | _ -> k
    | exception Crashed ->
        Engine.recover e;
        check_fsck fs (Printf.sprintf "%s (crash at step %d)" ctx k);
        rolled_back (Printf.sprintf "%s step %d" ctx k);
        go (k + 1)
  in
  go 0

let crash_recover_check e fs ctx =
  Engine.crash e;
  Engine.recover e;
  check_fsck fs ctx

let test_crash_every_step (name, spec, atomic) () =
  if not atomic then ()
  else begin
    let e, fs = make_fs ~block_size:64 ~dir_hash_bits:2 spec 7 in
    let root = Fs.root_ino fs in
    let da = Fs.mkdir fs ~dir:root "a" in
    let db = Fs.mkdir fs ~dir:root "b" in
    let content = String.init 300 (fun i -> Char.chr (33 + (i mod 90))) in
    let f = Fs.create fs ~dir:da "x" in
    Fs.write fs ~ino:f ~off:0 content;
    let check_intact ctx =
      Alcotest.(check (option int)) (ctx ^ ": still in a") (Some f)
        (Fs.lookup fs ~dir:da "x");
      Alcotest.(check string) (ctx ^ ": content intact") content
        (Fs.read fs ~ino:f ~off:0 ~len:1000)
    in
    (* rename: multi-dirent, multi-object transaction. *)
    let steps =
      crash_sweep e fs ~ctx:(name ^ "/rename")
        ~rolled_back:(fun ctx ->
          check_intact ctx;
          Alcotest.(check (option int)) (ctx ^ ": not yet in b") None
            (Fs.lookup fs ~dir:db "y"))
        (fun ~on_step -> Fs.rename ~on_step fs ~src:da ~src_name:"x" ~dst:db ~dst_name:"y")
    in
    Alcotest.(check bool) (name ^ ": rename sweep covered steps") true (steps >= 2);
    Alcotest.(check (option int)) (name ^ ": rename applied") (Some f)
      (Fs.lookup fs ~dir:db "y");
    crash_recover_check e fs (name ^ "/rename post-commit crash");
    Fs.rename fs ~src:db ~src_name:"y" ~dst:da ~dst_name:"x";
    (* truncate shrink: frees blocks and chain nodes, zeroes the tail. *)
    ignore
      (crash_sweep e fs ~ctx:(name ^ "/truncate-shrink")
         ~rolled_back:(fun ctx ->
           Alcotest.(check int) (ctx ^ ": size unchanged") 300 (Fs.stat fs f).Fs.size;
           check_intact ctx)
         (fun ~on_step -> Fs.truncate ~on_step fs ~ino:f ~len:10));
    Alcotest.(check string) (name ^ ": shrink applied") (String.sub content 0 10)
      (Fs.read fs ~ino:f ~off:0 ~len:1000);
    (* truncate grow: allocates zeroed blocks. *)
    ignore
      (crash_sweep e fs ~ctx:(name ^ "/truncate-grow")
         ~rolled_back:(fun ctx ->
           Alcotest.(check int) (ctx ^ ": size unchanged") 10 (Fs.stat fs f).Fs.size)
         (fun ~on_step -> Fs.truncate ~on_step fs ~ino:f ~len:500));
    Alcotest.(check int) (name ^ ": grow applied") 500 (Fs.stat fs f).Fs.size;
    crash_recover_check e fs (name ^ "/truncate post-commit crash");
    (* sparse write across several blocks. *)
    ignore
      (crash_sweep e fs ~ctx:(name ^ "/write")
         ~rolled_back:(fun ctx ->
           Alcotest.(check int) (ctx ^ ": size unchanged") 500 (Fs.stat fs f).Fs.size)
         (fun ~on_step -> Fs.write ~on_step fs ~ino:f ~off:700 content));
    Alcotest.(check int) (name ^ ": write applied") 1000 (Fs.stat fs f).Fs.size;
    (* unlink: dirent surgery + freeing the whole extent chain. *)
    let steps =
      crash_sweep e fs ~ctx:(name ^ "/unlink")
        ~rolled_back:(fun ctx ->
          Alcotest.(check (option int)) (ctx ^ ": entry survives") (Some f)
            (Fs.lookup fs ~dir:da "x");
          Alcotest.(check int) (ctx ^ ": size survives") 1000 (Fs.stat fs f).Fs.size)
        (fun ~on_step -> Fs.unlink ~on_step fs ~dir:da "x")
    in
    Alcotest.(check bool) (name ^ ": unlink sweep covered steps") true (steps >= 2);
    Alcotest.(check (option int)) (name ^ ": unlink applied") None
      (Fs.lookup fs ~dir:da "x");
    Alcotest.(check (option int)) (name ^ ": inode freed") None (Fs.inode_ptr fs f);
    crash_recover_check e fs (name ^ "/unlink post-commit crash");
    (* rmdir and a clobbering rename, for the remaining step labels. *)
    let g = Fs.create fs ~dir:da "src" in
    let h = Fs.create fs ~dir:db "dst" in
    Fs.write fs ~ino:g ~off:0 "SOURCE";
    Fs.write fs ~ino:h ~off:0 "TARGET";
    ignore
      (crash_sweep e fs ~ctx:(name ^ "/rename-clobber")
         ~rolled_back:(fun ctx ->
           Alcotest.(check (option int)) (ctx ^ ": src entry intact") (Some g)
             (Fs.lookup fs ~dir:da "src");
           Alcotest.(check (option int)) (ctx ^ ": dst entry intact") (Some h)
             (Fs.lookup fs ~dir:db "dst");
           Alcotest.(check string) (ctx ^ ": target content intact") "TARGET"
             (Fs.read fs ~ino:h ~off:0 ~len:10))
         (fun ~on_step ->
           Fs.rename ~on_step fs ~src:da ~src_name:"src" ~dst:db ~dst_name:"dst"));
    Alcotest.(check (option int)) (name ^ ": clobber applied") (Some g)
      (Fs.lookup fs ~dir:db "dst");
    Alcotest.(check (option int)) (name ^ ": clobbered inode freed") None
      (Fs.inode_ptr fs h);
    Fs.unlink fs ~dir:db "dst";
    ignore
      (crash_sweep e fs ~ctx:(name ^ "/rmdir")
         ~rolled_back:(fun ctx ->
           Alcotest.(check (option int)) (ctx ^ ": dir survives") (Some da)
             (Fs.lookup fs ~dir:root "a"))
         (fun ~on_step -> Fs.rmdir ~on_step fs ~dir:root "a"));
    Alcotest.(check (option int)) (name ^ ": rmdir applied") None
      (Fs.lookup fs ~dir:root "a");
    ignore
      (crash_sweep e fs ~ctx:(name ^ "/mkdir")
         ~rolled_back:(fun ctx ->
           Alcotest.(check (option int)) (ctx ^ ": not created") None
             (Fs.lookup fs ~dir:root "fresh"))
         (fun ~on_step -> ignore (Fs.mkdir ~on_step fs ~dir:root "fresh")));
    (* Drive the applier half-way into a batch, then crash. *)
    ignore (Fs.create fs ~dir:root "late1");
    ignore (Fs.create fs ~dir:root "late2");
    (match Engine.applier e with
    | Some a -> ignore (Applier.drain_one a)
    | None -> ());
    crash_recover_check e fs (name ^ "/mid-applier crash");
    Alcotest.(check bool) (name ^ ": late entries survive") true
      (Fs.lookup fs ~dir:root "late1" <> None && Fs.lookup fs ~dir:root "late2" <> None);
    Engine.drain_backup e;
    check_fsck fs (name ^ " final");
    match Engine.verify_backup e with
    | Ok () -> ()
    | Error err -> Alcotest.failf "%s: backup: %s" name err
  end

(* No_logging only promises durability at operation boundaries; crash
   there, everywhere. *)
let test_no_logging_boundaries () =
  let e, fs = make_fs ~block_size:64 ~dir_hash_bits:2 (Plain Engine.No_logging) 8 in
  let root = Fs.root_ino fs in
  let d = Fs.mkdir fs ~dir:root "d" in
  crash_recover_check e fs "no-logging after mkdir";
  let f = Fs.create fs ~dir:d "f" in
  crash_recover_check e fs "no-logging after create";
  Fs.write fs ~ino:f ~off:0 "persisted";
  crash_recover_check e fs "no-logging after write";
  Alcotest.(check string) "content survives" "persisted" (Fs.read fs ~ino:f ~off:0 ~len:100);
  Fs.rename fs ~src:d ~src_name:"f" ~dst:root ~dst_name:"g";
  crash_recover_check e fs "no-logging after rename";
  Alcotest.(check (option int)) "rename survives" (Some f) (Fs.lookup fs ~dir:root "g");
  Fs.unlink fs ~dir:root "g";
  Fs.rmdir fs ~dir:root "d";
  crash_recover_check e fs "no-logging after teardown";
  Alcotest.(check (list string)) "empty" [] (List.map fst (Fs.readdir fs ~dir:root))

(* The headline atomicity property: at every crash point of a rename the
   file is in exactly one of the two directories — never both, never
   neither — and its content is intact. *)
let test_rename_atomicity (name, spec, atomic) () =
  if not atomic then ()
  else begin
    let e, fs = make_fs ~block_size:64 ~dir_hash_bits:2 spec 9 in
    let root = Fs.root_ino fs in
    let da = Fs.mkdir fs ~dir:root "a" in
    let db = Fs.mkdir fs ~dir:root "b" in
    let f = Fs.create fs ~dir:da "x" in
    Fs.write fs ~ino:f ~off:0 "payload";
    let rec go k =
      if k > 5000 then Alcotest.failf "%s: rename never completes" name;
      let count = ref 0 in
      let on_step _ =
        if !count = k then begin
          Engine.crash e;
          raise Crashed
        end;
        incr count
      in
      match Fs.rename ~on_step fs ~src:da ~src_name:"x" ~dst:db ~dst_name:"y" with
      | () -> k
      | exception Crashed ->
          Engine.recover e;
          let in_a = Fs.lookup fs ~dir:da "x" in
          let in_b = Fs.lookup fs ~dir:db "y" in
          (match (in_a, in_b) with
          | Some i, None when i = f -> ()
          | None, Some i when i = f -> ()
          | Some _, Some _ ->
              Alcotest.failf "%s crash at %d: file in BOTH directories" name k
          | None, None ->
              Alcotest.failf "%s crash at %d: file in NEITHER directory" name k
          | _ -> Alcotest.failf "%s crash at %d: entry points at a stranger" name k);
          check_fsck fs (Printf.sprintf "%s rename-atomicity step %d" name k);
          (* Mid-transaction crashes roll back; if a future engine ever
             rolled forward instead, move the file back for the next
             attempt rather than failing the sweep. *)
          if in_b <> None then
            Fs.rename fs ~src:db ~src_name:"y" ~dst:da ~dst_name:"x";
          go (k + 1)
    in
    let covered = go 0 in
    Alcotest.(check bool) (name ^ ": sweep hit several crash points") true (covered >= 3);
    Alcotest.(check (option int)) (name ^ ": final state in b") (Some f)
      (Fs.lookup fs ~dir:db "y");
    Alcotest.(check (option int)) (name ^ ": final state not in a") None
      (Fs.lookup fs ~dir:da "x");
    Alcotest.(check string) (name ^ ": payload intact") "payload"
      (Fs.read fs ~ino:f ~off:0 ~len:100)
  end

(* --- the sharded façade ------------------------------------------------------ *)

let test_sharded_basic () =
  let t = Shard_fs.create ~block_size:64 ~dir_hash_bits:2 ~kind:Engine.Kamino_simple
      ~seed:11 ~shards:3 () in
  let root = Shard_fs.root_ino t in
  let names = List.init 12 (Printf.sprintf "n%02d") in
  let files = List.map (fun n -> (n, Shard_fs.create_file t ~dir:root n)) names in
  (* The placement rule must actually spread inodes across shards. *)
  let shards_used =
    List.sort_uniq compare (List.map (fun (_, i) -> Shard_fs.owner t i) files)
  in
  Alcotest.(check bool) "placement spreads across shards" true
    (List.length shards_used >= 2);
  List.iter
    (fun (n, i) ->
      Alcotest.(check (option int)) ("lookup " ^ n) (Some i) (Shard_fs.lookup t ~dir:root n);
      Shard_fs.write t ~ino:i ~off:0 ("content of " ^ n);
      Alcotest.(check string) ("read " ^ n) ("content of " ^ n)
        (Shard_fs.read t ~ino:i ~off:0 ~len:100))
    files;
  Alcotest.(check int) "readdir sees all" 12 (List.length (Shard_fs.readdir t ~dir:root));
  check_fsck_cluster (Shard_fs.fss t) "sharded populated";
  (* Directories too, with nesting across shards. *)
  let d1 = Shard_fs.mkdir t ~dir:root "dir1" in
  let d2 = Shard_fs.mkdir t ~dir:d1 "dir2" in
  let fx = Shard_fs.create_file t ~dir:d2 "deep" in
  Alcotest.(check (option int)) "resolve across shards" (Some fx)
    (Shard_fs.resolve t "/dir1/dir2/deep");
  (* Cross-shard rename, link, unlink, rmdir. *)
  let n0, f0 = List.hd files in
  Shard_fs.rename t ~src:root ~src_name:n0 ~dst:d2 ~dst_name:"moved";
  Alcotest.(check (option int)) "cross-shard rename" (Some f0)
    (Shard_fs.lookup t ~dir:d2 "moved");
  Alcotest.(check string) "content follows" ("content of " ^ n0)
    (Shard_fs.read t ~ino:f0 ~off:0 ~len:100);
  Shard_fs.link t ~ino:f0 ~dir:root "hard";
  Alcotest.(check int) "cross-shard link" 2 (Shard_fs.stat t f0).Fs.nlink;
  Shard_fs.unlink t ~dir:root "hard";
  Shard_fs.unlink t ~dir:d2 "moved";
  Shard_fs.unlink t ~dir:d2 "deep";
  Shard_fs.rmdir t ~dir:d1 "dir2";
  Shard_fs.rmdir t ~dir:root "dir1";
  check_fsck_cluster (Shard_fs.fss t) "sharded after teardown";
  (* Crash and recover the whole cluster; everything must still verify. *)
  Shard_fs.crash t;
  Shard_fs.recover t;
  check_fsck_cluster (Shard_fs.fss t) "sharded post-crash";
  List.iter
    (fun (n, i) ->
      if n <> n0 then
        Alcotest.(check (option int)) ("survives " ^ n) (Some i)
          (Shard_fs.lookup t ~dir:root n))
    files;
  Shard_fs.drain_backups t;
  match Shard.verify_backups (Shard_fs.shard t) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "sharded backups: %s" e

(* Crash at every step — fs mutation labels and 2PC protocol positions
   alike — of cross-shard renames. The file must always be in exactly
   one directory: before the commit marker is durable every shard rolls
   back, from the marker on every shard rolls forward, and there is no
   step with a mixed outcome. The swept rename flips direction whenever
   an attempt applied, so one loop covers every crash point of the
   protocol tail as well. *)
let test_sharded_rename_sweep () =
  let t = Shard_fs.create ~block_size:64 ~dir_hash_bits:2 ~kind:Engine.Kamino_simple
      ~seed:13 ~shards:3 () in
  let root = Shard_fs.root_ino t in
  (* Hunt for two directories on different shards. *)
  let rec pick_dirs i =
    if i > 50 then Alcotest.fail "no cross-shard directory pair found"
    else
      let a = Shard_fs.mkdir t ~dir:root (Printf.sprintf "pa%d" i) in
      let b = Shard_fs.mkdir t ~dir:root (Printf.sprintf "pb%d" i) in
      if Shard_fs.owner t a <> Shard_fs.owner t b then (a, b) else pick_dirs (i + 1)
  in
  let da, db = pick_dirs 0 in
  let f = Shard_fs.create_file t ~dir:da "x" in
  Shard_fs.write t ~ino:f ~off:0 "payload";
  let applied_crashes = ref 0 in
  let rec go k =
    if k > 5000 then Alcotest.fail "sharded rename never completes";
    (* The file is in exactly one directory; rename it to the other. *)
    let src, src_name, dst, dst_name =
      match (Shard_fs.lookup t ~dir:da "x", Shard_fs.lookup t ~dir:db "y") with
      | Some _, None -> (da, "x", db, "y")
      | None, Some _ -> (db, "y", da, "x")
      | a, b ->
          Alcotest.failf "sweep %d: inconsistent starting state (%b, %b)" k
            (a <> None) (b <> None)
    in
    let count = ref 0 in
    let marker_seen = ref false in
    let on_step label =
      if String.equal label "marker" then marker_seen := true;
      if !count = k then begin
        Shard_fs.crash t;
        raise Crashed
      end;
      incr count
    in
    match Shard_fs.rename ~on_step t ~src ~src_name ~dst ~dst_name with
    | () -> k
    | exception Crashed ->
        Shard_fs.recover t;
        check_fsck_cluster (Shard_fs.fss t)
          (Printf.sprintf "sharded rename crash at step %d" k);
        let in_src = Shard_fs.lookup t ~dir:src src_name in
        let in_dst = Shard_fs.lookup t ~dir:dst dst_name in
        (* Applied iff the commit marker's valid flag was durable when
           the power failed — i.e. the "marker" label had fired. *)
        let applied = !marker_seen in
        if applied then incr applied_crashes;
        (match (in_src, in_dst) with
        | Some i, None when i = f ->
            if applied then
              Alcotest.failf "step %d: marker durable but rename rolled back" k
        | None, Some i when i = f ->
            if not applied then
              Alcotest.failf "step %d: no marker but rename rolled forward" k
        | Some _, Some _ -> Alcotest.failf "step %d: file in BOTH directories" k
        | None, None -> Alcotest.failf "step %d: file in NEITHER directory" k
        | _ -> Alcotest.failf "step %d: entry points at a stranger" k);
        Alcotest.(check string)
          (Printf.sprintf "step %d: payload intact" k)
          "payload"
          (Shard_fs.read t ~ino:f ~off:0 ~len:100);
        go (k + 1)
  in
  let covered = go 0 in
  (* The sweep must have walked clean through the protocol tail: crash
     points at and after Marker_written roll forward. *)
  Alcotest.(check bool) "post-marker crash points covered" true (!applied_crashes >= 2);
  Alcotest.(check bool) "sweep hit many crash points" true (covered >= 6);
  check_fsck_cluster (Shard_fs.fss t) "sharded rename sweep final"

(* Cross-shard create and unlink, swept the same way. *)
let test_sharded_create_unlink_sweep () =
  let t = Shard_fs.create ~block_size:64 ~dir_hash_bits:2 ~kind:Engine.Kamino_simple
      ~seed:17 ~shards:2 () in
  let root = Shard_fs.root_ino t in
  (* A name whose placement lands on the other shard than the root dir. *)
  let rec pick_name i =
    if i > 200 then Alcotest.fail "no cross-shard name found"
    else
      let n = Printf.sprintf "x%d" i in
      if (Fs.name_hash_raw n + root) mod 2 <> Shard_fs.owner t root then n
      else pick_name (i + 1)
  in
  let name = pick_name 0 in
  (* create sweep: attempt k crashes at step k; applied iff the marker
     label fired. When an attempt applied, unlink (uncrashed) to reset. *)
  let rec go_create k =
    if k > 1000 then Alcotest.fail "sharded create never completes";
    let count = ref 0 in
    let marker_seen = ref false in
    let on_step label =
      if String.equal label "marker" then marker_seen := true;
      if !count = k then begin
        Shard_fs.crash t;
        raise Crashed
      end;
      incr count
    in
    match Shard_fs.create_file ~on_step t ~dir:root name with
    | _ -> k
    | exception Crashed ->
        Shard_fs.recover t;
        check_fsck_cluster (Shard_fs.fss t)
          (Printf.sprintf "sharded create crash at %d" k);
        let present = Shard_fs.lookup t ~dir:root name <> None in
        Alcotest.(check bool)
          (Printf.sprintf "create crash at %d: present iff marker durable" k)
          !marker_seen present;
        if present then Shard_fs.unlink t ~dir:root name;
        go_create (k + 1)
  in
  ignore (go_create 0);
  let f = Option.get (Shard_fs.lookup t ~dir:root name) in
  Alcotest.(check bool) "created on the foreign shard" true
    (Shard_fs.owner t f <> Shard_fs.owner t root);
  Shard_fs.write t ~ino:f ~off:0 "doomed";
  (* unlink sweep: when an attempt applied, re-create and re-fill. *)
  let rec go_unlink k =
    if k > 1000 then Alcotest.fail "sharded unlink never completes";
    let count = ref 0 in
    let marker_seen = ref false in
    let on_step label =
      if String.equal label "marker" then marker_seen := true;
      if !count = k then begin
        Shard_fs.crash t;
        raise Crashed
      end;
      incr count
    in
    match Shard_fs.unlink ~on_step t ~dir:root name with
    | () -> k
    | exception Crashed ->
        Shard_fs.recover t;
        check_fsck_cluster (Shard_fs.fss t)
          (Printf.sprintf "sharded unlink crash at %d" k);
        let present = Shard_fs.lookup t ~dir:root name <> None in
        Alcotest.(check bool)
          (Printf.sprintf "unlink crash at %d: gone iff marker durable" k)
          (not !marker_seen) present;
        if not present then begin
          let f = Shard_fs.create_file t ~dir:root name in
          Shard_fs.write t ~ino:f ~off:0 "doomed"
        end;
        go_unlink (k + 1)
  in
  ignore (go_unlink 0);
  Alcotest.(check (option int)) "finally unlinked" None (Shard_fs.lookup t ~dir:root name);
  check_fsck_cluster (Shard_fs.fss t) "sharded create/unlink sweep final"

(* --- observability ----------------------------------------------------------- *)

(* A deterministic seeded workload: same seed, same trace bytes. *)
let run_obs_workload ?obs () =
  let e = Engine.create ~config ?obs ~kind:Engine.Kamino_simple ~seed:19 () in
  let fs = Fs.format ~block_size:128 ~dir_hash_bits:3 e in
  let root = Fs.root_ino fs in
  let rng = Rng.create 23 in
  let dirs = ref [ root ] in
  let files = ref [] in
  for round = 1 to 120 do
    let dir = List.nth !dirs (Rng.int rng (List.length !dirs)) in
    (match Rng.int rng 8 with
    | 0 -> dirs := Fs.mkdir fs ~dir (Printf.sprintf "d%d" round) :: !dirs
    | 1 | 2 ->
        let f = Fs.create fs ~dir (Printf.sprintf "f%d" round) in
        files := (f, dir, Printf.sprintf "f%d" round) :: !files
    | 3 | 4 -> (
        match !files with
        | [] -> ()
        | (f, _, _) :: _ ->
            Fs.write fs ~ino:f ~off:(Rng.int rng 256) (Printf.sprintf "data%d" round))
    | 5 -> (
        match !files with
        | [] -> ()
        | (f, _, _) :: _ -> Fs.truncate fs ~ino:f ~len:(Rng.int rng 300))
    | 6 -> (
        match !files with
        | [] -> ()
        | (f, d, n) :: rest ->
            let n' = n ^ "r" in
            Fs.rename fs ~src:d ~src_name:n ~dst:root ~dst_name:n';
            files := (f, root, n') :: rest)
    | _ -> ignore (Fs.readdir fs ~dir));
    if round mod 40 = 0 then
      match Fs_check.fsck fs with
      | Ok () -> ()
      | Error err -> Alcotest.failf "obs workload round %d: %s" round err
  done;
  Engine.drain_backup e;
  (e, fs)

let test_fs_trace_deterministic () =
  let trace () =
    let obs = Obs.create ~capacity:65536 () in
    let _ = run_obs_workload ~obs () in
    (obs, Sink.perfetto_string obs)
  in
  let oa, a = trace () in
  let _, b = trace () in
  Alcotest.(check bool) "byte-identical fs trace for the same seed" true (a = b);
  (* fs spans ride their own dedicated track, and only that track. *)
  let fs_spans = ref 0 and fs_tracks = ref [] and ops_seen = ref [] in
  Obs.iter oa (fun ~kind ~track ~ts:_ ~dur ~a ~b:_ ~c:_ ->
      if kind = Obs.k_fs_op then begin
        incr fs_spans;
        if not (List.mem track !fs_tracks) then fs_tracks := track :: !fs_tracks;
        if not (List.mem a !ops_seen) then ops_seen := a :: !ops_seen;
        if dur < 0 then Alcotest.fail "negative fs span duration"
      end);
  Alcotest.(check bool) "fs spans recorded" true (!fs_spans > 100);
  Alcotest.(check (list int)) "all fs spans on the dedicated track" [ 4 ] !fs_tracks;
  Alcotest.(check bool) "several distinct opcodes traced" true
    (List.length !ops_seen >= 5);
  Alcotest.(check bool) "track is named" true
    (List.mem_assoc 4 (Obs.tracks oa))

let test_fs_tracing_invisible () =
  let fingerprint (e, _) = (Engine.now e, Engine.metrics e, Engine.main_counters e) in
  let plain = run_obs_workload () in
  let obs = Obs.create ~capacity:65536 () in
  let traced = run_obs_workload ~obs () in
  Alcotest.(check bool) "tracer saw the run" true (Obs.total obs > 0);
  Alcotest.(check bool) "tracing changes nothing" true
    (fingerprint plain = fingerprint traced)

let test_fs_metrics () =
  let e, fs = run_obs_workload () in
  let reg = Engine.registry e in
  let counter name =
    Metrics.fold_counters reg ~init:0 ~f:(fun acc n v -> if n = name then v else acc)
  in
  Alcotest.(check bool) "blocks allocated counted" true
    (counter "fs.blocks_allocated" > 0);
  Alcotest.(check bool) "extent nodes counted" true
    (counter "fs.extent_nodes_allocated" > 0);
  let h = Metrics.hist reg ("fs.op_ns." ^ Fs.op_name Fs.op_create) in
  Alcotest.(check bool) "create latencies observed" true (Metrics.count h > 0);
  Alcotest.(check bool) "percentiles monotone" true
    (Metrics.percentile h 50.0 <= Metrics.percentile h 99.0);
  let hf = Metrics.hist reg ("fs.op_ns." ^ Fs.op_name Fs.op_fsck) in
  Alcotest.(check bool) "fsck feeds its histogram" true (Metrics.count hf > 0);
  ignore fs

let () =
  let sweep_cases =
    List.filter_map
      (fun ((name, _, atomic) as b) ->
        if atomic then
          Some
            (Alcotest.test_case
               (Printf.sprintf "crash at every step (%s)" name)
               `Slow (test_crash_every_step b))
        else None)
      builders
  in
  let atomicity_cases =
    List.filter_map
      (fun ((name, _, atomic) as b) ->
        if atomic then
          Some
            (Alcotest.test_case
               (Printf.sprintf "rename all-or-nothing (%s)" name)
               `Quick (test_rename_atomicity b))
        else None)
      builders
  in
  Alcotest.run "fs"
    [
      ( "functional",
        [
          Alcotest.test_case "tree of ops" `Quick test_tree_ops;
          Alcotest.test_case "error paths" `Quick test_errors;
          Alcotest.test_case "collision chains" `Quick test_collision_chains;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "fsck detects planted corruption" `Quick
            test_fsck_detects_corruption;
        ] );
      ("crash-sweep", sweep_cases);
      ( "crash-boundary",
        [
          Alcotest.test_case "no-logging at operation boundaries" `Quick
            test_no_logging_boundaries;
        ] );
      ("rename-atomicity", atomicity_cases);
      ( "sharded",
        [
          Alcotest.test_case "basic namespace over shards" `Quick test_sharded_basic;
          Alcotest.test_case "cross-shard rename crash sweep" `Slow
            test_sharded_rename_sweep;
          Alcotest.test_case "cross-shard create/unlink crash sweep" `Slow
            test_sharded_create_unlink_sweep;
        ] );
      ( "observability",
        [
          Alcotest.test_case "trace determinism" `Quick test_fs_trace_deterministic;
          Alcotest.test_case "tracing invisible to the simulation" `Quick
            test_fs_tracing_invisible;
          Alcotest.test_case "metrics registry wiring" `Quick test_fs_metrics;
        ] );
    ]
