(* Tests for the key-value store: CRUD semantics under every engine kind,
   crash recovery, and behaviour under the YCSB operation shapes. *)

module Engine = Kamino_core.Engine
module Backup = Kamino_core.Backup
module Kv = Kamino_kv.Kv
module Rng = Kamino_sim.Rng

let config =
  {
    Engine.default_config with
    Engine.heap_bytes = 8 lsl 20;
    log_slots = 64;
    data_log_bytes = 2 lsl 20;
  }

let kinds =
  [
    Engine.No_logging;
    Engine.Undo_logging;
    Engine.Cow;
    Engine.Kamino_simple;
    Engine.Kamino_dynamic { alpha = 0.4; policy = Backup.Lru_policy };
  ]

let atomic_kinds = List.tl kinds

let make ?(kind = Engine.Kamino_simple) () =
  let e = Engine.create ~config ~kind ~seed:5 () in
  Kv.create e ~value_size:256 ~node_size:512

let for_each kinds f = List.iter (fun k -> f (Engine.kind_name k) (make ~kind:k ())) kinds

let test_put_get () =
  for_each kinds (fun name kv ->
      Kv.put kv 1 "one";
      Kv.put kv 2 "two";
      Alcotest.(check (option string)) (name ^ ": get 1") (Some "one") (Kv.get kv 1);
      Alcotest.(check (option string)) (name ^ ": get 2") (Some "two") (Kv.get kv 2);
      Alcotest.(check (option string)) (name ^ ": absent") None (Kv.get kv 3);
      Alcotest.(check int) (name ^ ": size") 2 (Kv.size kv))

let test_overwrite () =
  for_each kinds (fun name kv ->
      Kv.put kv 7 "first";
      Kv.put kv 7 "second version";
      Alcotest.(check (option string)) (name ^ ": updated") (Some "second version")
        (Kv.get kv 7);
      Alcotest.(check int) (name ^ ": size stays 1") 1 (Kv.size kv))

let test_delete () =
  for_each kinds (fun name kv ->
      Kv.put kv 1 "x";
      Alcotest.(check bool) (name ^ ": delete present") true (Kv.delete kv 1);
      Alcotest.(check bool) (name ^ ": delete absent") false (Kv.delete kv 1);
      Alcotest.(check (option string)) (name ^ ": gone") None (Kv.get kv 1);
      Alcotest.(check int) (name ^ ": size 0") 0 (Kv.size kv);
      (* the freed value slot is reusable *)
      Kv.put kv 2 "y";
      Alcotest.(check (option string)) (name ^ ": reuse ok") (Some "y") (Kv.get kv 2))

let test_rmw () =
  for_each kinds (fun name kv ->
      Kv.put kv 5 "counter:0";
      Alcotest.(check bool) (name ^ ": rmw present") true
        (Kv.read_modify_write kv 5 (fun s -> s ^ "+1"));
      Alcotest.(check (option string)) (name ^ ": rmw applied") (Some "counter:0+1")
        (Kv.get kv 5);
      Alcotest.(check bool) (name ^ ": rmw absent") false
        (Kv.read_modify_write kv 99 Fun.id))

let test_value_size_enforced () =
  let kv = make () in
  Alcotest.(check bool) "oversized rejected" true
    (try
       Kv.put kv 1 (String.make 10_000 'x');
       false
     with Invalid_argument _ -> true)

let test_iter () =
  let kv = make () in
  List.iter (fun (k, v) -> Kv.put kv k v) [ (3, "c"); (1, "a"); (2, "b") ];
  let acc = ref [] in
  Kv.iter kv (fun k v -> acc := (k, v) :: !acc);
  Alcotest.(check (list (pair int string))) "ordered" [ (1, "a"); (2, "b"); (3, "c") ]
    (List.rev !acc)

let test_range () =
  let kv = make () in
  for k = 0 to 49 do
    Kv.put kv (k * 2) (Printf.sprintf "v%d" (k * 2))
  done;
  let scan = Kv.range kv ~lo:10 ~hi:20 in
  Alcotest.(check (list (pair int string))) "inclusive scan"
    [ (10, "v10"); (12, "v12"); (14, "v14"); (16, "v16"); (18, "v18"); (20, "v20") ]
    scan;
  Alcotest.(check (list (pair int string))) "empty scan" [] (Kv.range kv ~lo:200 ~hi:300)

let test_many_keys () =
  for_each atomic_kinds (fun name kv ->
      for k = 0 to 499 do
        Kv.put kv k (Printf.sprintf "value-%d" k)
      done;
      Alcotest.(check int) (name ^ ": size") 500 (Kv.size kv);
      for k = 0 to 499 do
        match Kv.get kv k with
        | Some v when v = Printf.sprintf "value-%d" k -> ()
        | other ->
            Alcotest.failf "%s: key %d wrong: %s" name k
              (Option.value other ~default:"<none>")
      done;
      Alcotest.(check bool) (name ^ ": valid") true (Kv.validate kv = Ok ()))

let test_crash_recover () =
  for_each atomic_kinds (fun name kv ->
      let e = Kv.engine kv in
      for k = 0 to 99 do
        Kv.put kv k (Printf.sprintf "v%d" k)
      done;
      Engine.crash e;
      Engine.recover e;
      let kv = Kv.reattach e in
      Alcotest.(check int) (name ^ ": size after crash") 100 (Kv.size kv);
      Alcotest.(check (option string)) (name ^ ": value intact") (Some "v42") (Kv.get kv 42);
      Alcotest.(check bool) (name ^ ": valid after crash") true (Kv.validate kv = Ok ());
      (* store is still writable after recovery *)
      Kv.put kv 1000 "post-crash";
      Alcotest.(check (option string)) (name ^ ": writable") (Some "post-crash")
        (Kv.get kv 1000))

let test_mixed_workload_with_crashes () =
  for_each atomic_kinds (fun name kv ->
      let e = Kv.engine kv in
      let rng = Rng.create 31 in
      let module M = Map.Make (Int) in
      let model = ref M.empty in
      let kv = ref kv in
      for round = 1 to 300 do
        let k = Rng.int rng 60 in
        (match Rng.int rng 4 with
        | 0 ->
            let v = Printf.sprintf "r%d-%d" round k in
            Kv.put !kv k v;
            model := M.add k v !model
        | 1 ->
            let deleted = Kv.delete !kv k in
            Alcotest.(check bool) (name ^ ": delete agrees with model") (M.mem k !model)
              deleted;
            model := M.remove k !model
        | 2 ->
            Alcotest.(check (option string)) (name ^ ": get agrees") (M.find_opt k !model)
              (Kv.get !kv k)
        | _ ->
            ignore (Kv.read_modify_write !kv k (fun s -> s ^ "!"));
            model := M.update k (Option.map (fun s -> s ^ "!")) !model);
        if round mod 60 = 0 then begin
          Engine.crash e;
          Engine.recover e;
          kv := Kv.reattach e
        end
      done;
      M.iter
        (fun k v ->
          Alcotest.(check (option string))
            (Printf.sprintf "%s: final key %d" name k)
            (Some v) (Kv.get !kv k))
        !model;
      Alcotest.(check bool) (name ^ ": final valid") true (Kv.validate !kv = Ok ()))

let () =
  Alcotest.run "kv"
    [
      ( "crud",
        [
          Alcotest.test_case "put/get" `Quick test_put_get;
          Alcotest.test_case "overwrite" `Quick test_overwrite;
          Alcotest.test_case "delete" `Quick test_delete;
          Alcotest.test_case "read-modify-write" `Quick test_rmw;
          Alcotest.test_case "value size enforced" `Quick test_value_size_enforced;
          Alcotest.test_case "iter" `Quick test_iter;
          Alcotest.test_case "range scan" `Quick test_range;
          Alcotest.test_case "many keys" `Quick test_many_keys;
        ] );
      ( "durability",
        [
          Alcotest.test_case "crash and recover" `Quick test_crash_recover;
          Alcotest.test_case "mixed workload with crashes" `Slow
            test_mixed_workload_with_crashes;
        ] );
    ]
