(* Crash-injection property tests: the heart of the reproduction.

   A random transactional workload runs against each atomic engine kind
   while crashes are injected at arbitrary points — mid-transaction, right
   after commit (before the backup applier has propagated anything), after
   aborts. After every recovery the test asserts the fundamental atomicity
   contract:

   - every committed transaction's effects are intact (values match a model
     maintained at commit granularity),
   - every uncommitted transaction has vanished completely,
   - the heap's structural invariants hold (validate),
   - the engine remains usable (more transactions can run).

   The NVM simulator uses word-granular random survival of unflushed lines,
   so each seed exercises a different torn-write pattern. *)

module Rng = Kamino_sim.Rng
module Region = Kamino_nvm.Region
module Heap = Kamino_heap.Heap
module Engine = Kamino_core.Engine
module Backup = Kamino_core.Backup

let config =
  {
    Engine.default_config with
    Engine.heap_bytes = 1 lsl 20;
    log_slots = 16;
    data_log_bytes = 1 lsl 18;
  }

let atomic_kinds =
  [
    ("undo", Engine.Undo_logging);
    ("cow", Engine.Cow);
    ("kamino-simple", Engine.Kamino_simple);
    ("kamino-dynamic", Engine.Kamino_dynamic { alpha = 0.3; policy = Backup.Lru_policy });
  ]

(* The committed-state model: object pointer -> (size, stamp value). *)
type model = (Heap.ptr, int * int64) Hashtbl.t

let verify_model e (model : model) context =
  Hashtbl.iter
    (fun p (size, stamp) ->
      if not (Heap.is_allocated (Engine.heap e) p) then
        Alcotest.failf "%s: committed object %d lost" context p;
      let v = Engine.peek_int64 e p 0 in
      if v <> stamp then
        Alcotest.failf "%s: object %d has stamp %Ld, expected %Ld" context p v stamp;
      (* the stamp is replicated across the whole payload in 8-byte words *)
      let words = size / 8 in
      for w = 1 to words - 1 do
        let v = Engine.peek_int64 e p (w * 8) in
        if v <> stamp then
          Alcotest.failf "%s: object %d word %d torn: %Ld <> %Ld" context p w v stamp
      done)
    model;
  match Heap.validate (Engine.heap e) with
  | Ok () -> ()
  | Error err -> Alcotest.failf "%s: heap invalid after recovery: %s" context err

let stamp_object tx p size stamp =
  for w = 0 to (size / 8) - 1 do
    Engine.write_int64 tx p (w * 8) stamp
  done

(* One random transaction; returns the model mutation to apply if it
   commits. [steps] optionally limits how many operations run before the
   caller crashes the machine mid-flight. *)
let random_tx rng e (model : model) =
  let tx = Engine.begin_tx e in
  let pending = ref [] in
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) model [] in
  let n_ops = 1 + Rng.int rng 3 in
  for _ = 1 to n_ops do
    match Rng.int rng 10 with
    | 0 | 1 | 2 ->
        (* allocate a fresh object *)
        let size = [| 32; 64; 256; 1024 |].(Rng.int rng 4) in
        let p = Engine.alloc tx size in
        let stamp = Rng.int64 rng in
        stamp_object tx p size stamp;
        pending := `Put (p, size, stamp) :: !pending
    | 3 when keys <> [] ->
        (* free an existing object (not one touched this tx) *)
        let p = List.nth keys (Rng.int rng (List.length keys)) in
        if not (List.exists (function `Put (q, _, _) | `Del q -> q = p) !pending) then begin
          Engine.free tx p;
          pending := `Del p :: !pending
        end
    | _ when keys <> [] ->
        (* update an existing object *)
        let p = List.nth keys (Rng.int rng (List.length keys)) in
        if not (List.exists (function `Del q -> q = p | `Put _ -> false) !pending) then begin
          let size, _ = Hashtbl.find model p in
          Engine.add tx p;
          let stamp = Rng.int64 rng in
          stamp_object tx p size stamp;
          pending := `Put (p, size, stamp) :: !pending
        end
    | _ -> ()
  done;
  (tx, !pending)

let apply_to_model model pending =
  List.iter
    (function
      | `Put (p, size, stamp) -> Hashtbl.replace model p (size, stamp)
      | `Del p -> Hashtbl.remove model p)
    (List.rev pending)

let run_crash_workload name kind ~seed ~rounds =
  let rng = Rng.create seed in
  let e = Engine.create ~config ~kind ~seed:(seed + 1000) () in
  let model : model = Hashtbl.create 64 in
  for round = 1 to rounds do
    let context = Printf.sprintf "%s seed=%d round=%d" name seed round in
    match Rng.int rng 10 with
    | 0 ->
        (* crash mid-transaction *)
        let tx, _pending = random_tx rng e model in
        ignore tx;
        Engine.crash e;
        Engine.recover e;
        verify_model e model (context ^ " (mid-tx crash)")
    | 1 ->
        (* crash immediately after commit, before any backup draining *)
        let tx, pending = random_tx rng e model in
        Engine.commit tx;
        apply_to_model model pending;
        Engine.crash e;
        Engine.recover e;
        verify_model e model (context ^ " (post-commit crash)")
    | 2 ->
        (* deliberate abort, then crash *)
        let tx, _pending = random_tx rng e model in
        Engine.abort tx;
        Engine.crash e;
        Engine.recover e;
        verify_model e model (context ^ " (post-abort crash)")
    | 3 ->
        (* abort without crash *)
        let tx, _pending = random_tx rng e model in
        Engine.abort tx;
        verify_model e model (context ^ " (abort)")
    | 4 ->
        (* double crash: crash during recovery's aftermath *)
        let tx, pending = random_tx rng e model in
        Engine.commit tx;
        apply_to_model model pending;
        Engine.crash e;
        Engine.recover e;
        Engine.crash e;
        Engine.recover e;
        verify_model e model (context ^ " (double crash)")
    | _ ->
        (* plain committed transaction *)
        let tx, pending = random_tx rng e model in
        Engine.commit tx;
        apply_to_model model pending
  done;
  (* Final: clean drain, verify data, and check the backup invariant. *)
  Engine.drain_backup e;
  verify_model e model (Printf.sprintf "%s seed=%d final" name seed);
  match Engine.verify_backup e with
  | Ok () -> ()
  | Error err -> Alcotest.failf "%s seed=%d: %s" name seed err

let crash_test (name, kind) seed () = run_crash_workload name kind ~seed ~rounds:60

(* A focused regression: commit several dependent updates to one object with
   crashes between them; the surviving value must always be the last
   committed stamp. *)
let test_dependent_chain_with_crashes (name, kind) () =
  let e = Engine.create ~config ~kind ~seed:7 () in
  let p =
    Engine.with_tx e (fun tx ->
        let p = Engine.alloc tx 512 in
        stamp_object tx p 512 0L;
        p)
  in
  for i = 1 to 30 do
    Engine.with_tx e (fun tx ->
        Engine.add tx p;
        stamp_object tx p 512 (Int64.of_int i));
    if i mod 3 = 0 then begin
      Engine.crash e;
      Engine.recover e
    end;
    let v = Engine.peek_int64 e p 0 in
    if v <> Int64.of_int i then
      Alcotest.failf "%s: after commit %d the value is %Ld" name i v
  done

(* Aborts interleaved with commits on the same object: an abort must always
   restore the most recent committed stamp, even right after a crash. *)
let test_abort_restores_latest_commit (name, kind) () =
  let e = Engine.create ~config ~kind ~seed:11 () in
  let p =
    Engine.with_tx e (fun tx ->
        let p = Engine.alloc tx 256 in
        stamp_object tx p 256 100L;
        p)
  in
  for i = 1 to 20 do
    (* commit a new stamp *)
    Engine.with_tx e (fun tx ->
        Engine.add tx p;
        stamp_object tx p 256 (Int64.of_int (1000 + i)));
    (* abort an overwrite *)
    let tx = Engine.begin_tx e in
    Engine.add tx p;
    stamp_object tx p 256 9999L;
    Engine.abort tx;
    let v = Engine.peek_int64 e p 0 in
    if v <> Int64.of_int (1000 + i) then
      Alcotest.failf "%s: abort %d restored %Ld, expected %d" name i v (1000 + i);
    if i mod 4 = 0 then begin
      Engine.crash e;
      Engine.recover e;
      let v = Engine.peek_int64 e p 0 in
      if v <> Int64.of_int (1000 + i) then
        Alcotest.failf "%s: crash after abort %d lost the committed stamp" name i
    end
  done

let () =
  let workload_cases =
    List.concat_map
      (fun (name, kind) ->
        List.map
          (fun seed ->
            Alcotest.test_case
              (Printf.sprintf "%s random crashes (seed %d)" name seed)
              `Slow
              (crash_test (name, kind) seed))
          [ 1; 2; 3; 4; 5; 6; 7; 8 ])
      atomic_kinds
  in
  let focused_cases =
    List.concat_map
      (fun (name, kind) ->
        [
          Alcotest.test_case (name ^ " dependent chain with crashes") `Quick
            (test_dependent_chain_with_crashes (name, kind));
          Alcotest.test_case (name ^ " abort restores latest commit") `Quick
            (test_abort_restores_latest_commit (name, kind));
        ])
      atomic_kinds
  in
  Alcotest.run "crash"
    [ ("random workloads", workload_cases); ("focused", focused_cases) ]
