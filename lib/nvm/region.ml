module Rng = Kamino_sim.Rng
module Clock = Kamino_sim.Clock

let line_size = 64

type crash_mode = Words_survive_randomly | Lines_survive_randomly | Drop_unflushed

type counters = {
  mutable stores : int;
  mutable bytes_stored : int;
  mutable loads : int;
  mutable bytes_loaded : int;
  mutable lines_flushed : int;
  mutable fences : int;
  mutable bytes_copied : int;
  mutable crashes : int;
}

type t = {
  size : int;
  volatile : Bytes.t;
  persistent : Bytes.t;
  dirty : Bytes.t;  (* bitset, one bit per line *)
  mutable clock : Clock.t;
  mutable frac_ns : float;  (* sub-nanosecond cost carry *)
  cost : Cost_model.t;
  crash_mode : crash_mode;
  rng : Rng.t;
  counters : counters;
}

let fresh_counters () =
  {
    stores = 0;
    bytes_stored = 0;
    loads = 0;
    bytes_loaded = 0;
    lines_flushed = 0;
    fences = 0;
    bytes_copied = 0;
    crashes = 0;
  }

let create ?(cost = Cost_model.default) ?(crash_mode = Words_survive_randomly) ~rng
    ~clock ~size () =
  if size <= 0 then invalid_arg "Region.create: size must be positive";
  let nlines = (size + line_size - 1) / line_size in
  {
    size;
    volatile = Bytes.make size '\000';
    persistent = Bytes.make size '\000';
    dirty = Bytes.make ((nlines + 7) / 8) '\000';
    clock;
    frac_ns = 0.0;
    cost;
    crash_mode;
    rng;
    counters = fresh_counters ();
  }

let size t = t.size

let cost_model t = t.cost

let set_clock t clock = t.clock <- clock

let clock t = t.clock

let charge t ns =
  let total = ns +. t.frac_ns in
  let whole = int_of_float total in
  t.frac_ns <- total -. float_of_int whole;
  if whole > 0 then Clock.advance t.clock whole

let check_range t off len name =
  if off < 0 || len < 0 || off + len > t.size then
    invalid_arg (Printf.sprintf "Region.%s: range [%d,+%d) out of bounds (size %d)" name off len t.size)

(* Dirty bitset operations. *)

let set_dirty_line t line =
  let byte = line lsr 3 and bit = line land 7 in
  let v = Char.code (Bytes.get t.dirty byte) in
  Bytes.set t.dirty byte (Char.chr (v lor (1 lsl bit)))

let clear_dirty_line t line =
  let byte = line lsr 3 and bit = line land 7 in
  let v = Char.code (Bytes.get t.dirty byte) in
  Bytes.set t.dirty byte (Char.chr (v land lnot (1 lsl bit)))

let line_is_dirty t line =
  let byte = line lsr 3 and bit = line land 7 in
  Char.code (Bytes.get t.dirty byte) land (1 lsl bit) <> 0

let mark_dirty t off len =
  if len > 0 then begin
    let first = off / line_size and last = (off + len - 1) / line_size in
    for line = first to last do
      set_dirty_line t line
    done
  end

(* Stores. *)

let record_store t off len =
  check_range t off len "write";
  t.counters.stores <- t.counters.stores + 1;
  t.counters.bytes_stored <- t.counters.bytes_stored + len;
  mark_dirty t off len;
  charge t (Cost_model.store_cost t.cost len)

let write_bytes t off b =
  record_store t off (Bytes.length b);
  Bytes.blit b 0 t.volatile off (Bytes.length b)

let write_string t off s =
  record_store t off (String.length s);
  Bytes.blit_string s 0 t.volatile off (String.length s)

let write_int64 t off v =
  record_store t off 8;
  Bytes.set_int64_le t.volatile off v

let write_int32 t off v =
  record_store t off 4;
  Bytes.set_int32_le t.volatile off v

let write_int t off v = write_int64 t off (Int64.of_int v)

let write_byte t off v =
  record_store t off 1;
  Bytes.set_uint8 t.volatile off (v land 0xff)

(* Loads. *)

let record_load t off len =
  check_range t off len "read";
  t.counters.loads <- t.counters.loads + 1;
  t.counters.bytes_loaded <- t.counters.bytes_loaded + len;
  charge t (Cost_model.load_cost t.cost len)

let read_bytes t off len =
  record_load t off len;
  Bytes.sub t.volatile off len

let read_string t off len =
  record_load t off len;
  Bytes.sub_string t.volatile off len

let read_int64 t off =
  record_load t off 8;
  Bytes.get_int64_le t.volatile off

let read_int32 t off =
  record_load t off 4;
  Bytes.get_int32_le t.volatile off

let read_int t off = Int64.to_int (read_int64 t off)

let read_byte t off =
  record_load t off 1;
  Bytes.get_uint8 t.volatile off

let fill t off len byte =
  record_store t off len;
  Bytes.fill t.volatile off len (Char.chr (byte land 0xff))

let blit t ~src ~dst ~len =
  check_range t src len "blit:src";
  check_range t dst len "blit:dst";
  t.counters.bytes_copied <- t.counters.bytes_copied + len;
  mark_dirty t dst len;
  charge t (Cost_model.copy_cost t.cost len);
  Bytes.blit t.volatile src t.volatile dst len

let copy_between ~src ~src_off ~dst ~dst_off ~len =
  check_range src src_off len "copy_between:src";
  check_range dst dst_off len "copy_between:dst";
  dst.counters.bytes_copied <- dst.counters.bytes_copied + len;
  mark_dirty dst dst_off len;
  charge dst (Cost_model.copy_cost dst.cost len);
  Bytes.blit src.volatile src_off dst.volatile dst_off len

(* Persistence. *)

let persist_line t line =
  let off = line * line_size in
  let len = min line_size (t.size - off) in
  Bytes.blit t.volatile off t.persistent off len;
  clear_dirty_line t line;
  t.counters.lines_flushed <- t.counters.lines_flushed + 1;
  charge t t.cost.Cost_model.flush_line_ns

let flush t off len =
  check_range t off len "flush";
  if len > 0 then begin
    let first = off / line_size and last = (off + len - 1) / line_size in
    for line = first to last do
      if line_is_dirty t line then persist_line t line
    done
  end

let fence t =
  t.counters.fences <- t.counters.fences + 1;
  charge t t.cost.Cost_model.fence_ns

let persist t off len =
  flush t off len;
  fence t

let nlines t = (t.size + line_size - 1) / line_size

let flush_all t =
  for line = 0 to nlines t - 1 do
    if line_is_dirty t line then persist_line t line
  done

let persist_all t =
  flush_all t;
  fence t

(* Crash simulation. *)

let crash_line_words t line =
  (* Within an evicted or in-flight line only aligned 8-byte words are
     atomic: each modified word independently reaches the medium or not. *)
  let off = line * line_size in
  let len = min line_size (t.size - off) in
  let words = len / 8 in
  for w = 0 to words - 1 do
    let woff = off + (w * 8) in
    let v = Bytes.get_int64_le t.volatile woff in
    let p = Bytes.get_int64_le t.persistent woff in
    if v <> p && Rng.bool t.rng then Bytes.set_int64_le t.persistent woff v
  done;
  (* Tail bytes of a short final line persist byte-by-byte. *)
  for b = words * 8 to len - 1 do
    let v = Bytes.get t.volatile (off + b) in
    let p = Bytes.get t.persistent (off + b) in
    if v <> p && Rng.bool t.rng then Bytes.set t.persistent (off + b) v
  done

let crash t =
  t.counters.crashes <- t.counters.crashes + 1;
  (match t.crash_mode with
  | Drop_unflushed -> ()
  | Lines_survive_randomly ->
      for line = 0 to nlines t - 1 do
        if line_is_dirty t line && Rng.bool t.rng then begin
          let off = line * line_size in
          let len = min line_size (t.size - off) in
          Bytes.blit t.volatile off t.persistent off len
        end
      done
  | Words_survive_randomly ->
      for line = 0 to nlines t - 1 do
        if line_is_dirty t line then crash_line_words t line
      done);
  Bytes.blit t.persistent 0 t.volatile 0 t.size;
  Bytes.fill t.dirty 0 (Bytes.length t.dirty) '\000'

let is_persisted t off len =
  check_range t off len "is_persisted";
  if len = 0 then true
  else begin
    let first = off / line_size and last = (off + len - 1) / line_size in
    let rec loop line = line > last || ((not (line_is_dirty t line)) && loop (line + 1)) in
    loop first
  end

let dirty_lines t =
  let n = ref 0 in
  for line = 0 to nlines t - 1 do
    if line_is_dirty t line then incr n
  done;
  !n

let counters t = t.counters

let reset_counters t =
  let c = t.counters in
  c.stores <- 0;
  c.bytes_stored <- 0;
  c.loads <- 0;
  c.bytes_loaded <- 0;
  c.lines_flushed <- 0;
  c.fences <- 0;
  c.bytes_copied <- 0;
  c.crashes <- 0

let pp_counters fmt c =
  Format.fprintf fmt
    "{stores=%d (%dB) loads=%d (%dB) flushed_lines=%d fences=%d copied=%dB crashes=%d}"
    c.stores c.bytes_stored c.loads c.bytes_loaded c.lines_flushed c.fences
    c.bytes_copied c.crashes
