module Rng = Kamino_sim.Rng
module Clock = Kamino_sim.Clock
module Obs = Kamino_obs.Obs

let line_size = 64

type crash_mode = Words_survive_randomly | Lines_survive_randomly | Drop_unflushed

(* Single-field float records are stored flat, so mutating [v] writes the
   double in place. A [mutable float] field in the mixed record [t] below
   would instead allocate a fresh boxed float on {e every} cost charge —
   i.e. on every load and store the simulation models. *)
type fcarry = { mutable v : float }

type counters = {
  mutable stores : int;
  mutable bytes_stored : int;
  mutable loads : int;
  mutable bytes_loaded : int;
  mutable lines_flushed : int;
  mutable fences : int;
  mutable bytes_copied : int;
  mutable crashes : int;
}

(* The dirty bitset is padded to a whole number of 64-bit words so the scan
   loops can zero-test eight lines' worth of bytes at a time. [dirty_lo] /
   [dirty_hi] bound the lines that may be dirty (in line units, inclusive);
   every set bit lies inside the interval, which lets flush/crash/query
   skip the rest of the bitmap entirely. An empty dirty set is represented
   as lo = max_int, hi = -1. *)
type t = {
  size : int;
  volatile : Bytes.t;
  persistent : Bytes.t;
  dirty : Bytes.t;  (* bitset, one bit per line, padded to 8-byte words *)
  mutable dirty_lo : int;
  mutable dirty_hi : int;
  mutable clock : Clock.t;
  frac_ns : fcarry;  (* sub-nanosecond cost carry *)
  cost : Cost_model.t;
  crash_mode : crash_mode;
  rng : Rng.t;
  counters : counters;
  (* Tracing: [obs] is [Obs.null] unless the owner opted in, making every
     instrumentation site below a single load-and-branch. Events never
     touch the clock, so enabling them cannot move a simulated ns. *)
  mutable obs : Obs.t;
  mutable obs_track : int;
}

let fresh_counters () =
  {
    stores = 0;
    bytes_stored = 0;
    loads = 0;
    bytes_loaded = 0;
    lines_flushed = 0;
    fences = 0;
    bytes_copied = 0;
    crashes = 0;
  }

let create ?(cost = Cost_model.default) ?(crash_mode = Words_survive_randomly) ~rng
    ~clock ~size () =
  if size <= 0 then invalid_arg "Region.create: size must be positive";
  let nlines = (size + line_size - 1) / line_size in
  {
    size;
    volatile = Bytes.make size '\000';
    persistent = Bytes.make size '\000';
    dirty = Bytes.make ((nlines + 63) / 64 * 8) '\000';
    dirty_lo = max_int;
    dirty_hi = -1;
    clock;
    frac_ns = { v = 0.0 };
    cost;
    crash_mode;
    rng;
    counters = fresh_counters ();
    obs = Obs.null;
    obs_track = 0;
  }

let size t = t.size

let cost_model t = t.cost

let set_clock t clock = t.clock <- clock

let clock t = t.clock

let set_obs t ?(track = 0) obs =
  t.obs <- obs;
  t.obs_track <- track

let obs t = t.obs

let[@inline] charge t ns =
  let total = ns +. t.frac_ns.v in
  let whole = int_of_float total in
  t.frac_ns.v <- total -. float_of_int whole;
  if whole > 0 then Clock.advance t.clock whole

let check_range t off len name =
  if off < 0 || len < 0 || off + len > t.size then
    invalid_arg (Printf.sprintf "Region.%s: range [%d,+%d) out of bounds (size %d)" name off len t.size)

(* Little-endian int accessors assembled from 16-bit pieces. On a 64-bit
   system these compile to immediate-int arithmetic; [Bytes.get_int64_le]
   returns a boxed [Int64.t] that allocates on every call without flambda.
   The encoding is bit-identical to [Int64.of_int] / [Int64.to_int]: the
   final word is taken with an arithmetic shift so byte 7's top bit carries
   the OCaml int's sign, exactly as [Int64.of_int] sign-extends it. *)

(* Raw 16-bit loads/stores without per-call bounds checks: every caller
   sits behind a [check_range] (or reads the fixed-size dirty bitset at
   word-aligned offsets derived from in-range line numbers), so the four
   checks [Bytes.get_uint16_le] would repeat per 64-bit access are pure
   overhead on the hottest loops in the simulator. The primitives are
   native-endian, hence the compile-time byte-swap on big-endian hosts,
   mirroring the stdlib's own implementation. *)
external unsafe_get16 : Bytes.t -> int -> int = "%caml_bytes_get16u"
external unsafe_set16 : Bytes.t -> int -> int -> unit = "%caml_bytes_set16u"

let swap16 x = ((x land 0xff) lsl 8) lor ((x lsr 8) land 0xff)

let get16_le b off =
  if Sys.big_endian then swap16 (unsafe_get16 b off) else unsafe_get16 b off

let set16_le b off v =
  if Sys.big_endian then unsafe_set16 b off (swap16 v) else unsafe_set16 b off v

let get_int_le b off =
  get16_le b off
  lor (get16_le b (off + 2) lsl 16)
  lor (get16_le b (off + 4) lsl 32)
  lor (get16_le b (off + 6) lsl 48)

let set_int_le b off v =
  set16_le b off (v land 0xffff);
  set16_le b (off + 2) ((v lsr 16) land 0xffff);
  set16_le b (off + 4) ((v lsr 32) land 0xffff);
  set16_le b (off + 6) ((v asr 48) land 0xffff)

(* Dirty bitset operations. *)

let clear_dirty_line t line =
  let byte = line lsr 3 and bit = line land 7 in
  let v = Char.code (Bytes.unsafe_get t.dirty byte) in
  Bytes.unsafe_set t.dirty byte (Char.unsafe_chr (v land lnot (1 lsl bit)))

let or_dirty_byte t byte mask =
  Bytes.unsafe_set t.dirty byte
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get t.dirty byte) lor mask))

let mark_dirty t off len =
  if len > 0 then begin
    let first = off / line_size and last = (off + len - 1) / line_size in
    if first < t.dirty_lo then t.dirty_lo <- first;
    if last > t.dirty_hi then t.dirty_hi <- last;
    let fb = first lsr 3 and lb = last lsr 3 in
    if fb = lb then
      or_dirty_byte t fb (((1 lsl (last - first + 1)) - 1) lsl (first land 7))
    else begin
      or_dirty_byte t fb (0xff lsl (first land 7) land 0xff);
      if lb > fb + 1 then Bytes.fill t.dirty (fb + 1) (lb - fb - 1) '\xff';
      or_dirty_byte t lb ((1 lsl ((last land 7) + 1)) - 1)
    end
  end

(* Stores.

   The [_unchecked] halves update counters, dirty lines and simulated cost
   exactly as the checked entry points do; the public unsafe accessors use
   them after the caller has validated the enclosing range once. *)

(* The cost arithmetic is open-coded here rather than calling
   [Cost_model.store_cost]/[charge]: without flambda a float returned
   across a function boundary is boxed, which put several allocations on
   every simulated load and store. Open-coded, every intermediate stays in
   a register. The arithmetic (and hence the clock) is unchanged. *)
let record_store_unchecked t off len =
  t.counters.stores <- t.counters.stores + 1;
  t.counters.bytes_stored <- t.counters.bytes_stored + len;
  mark_dirty t off len;
  let c = t.cost in
  let ns = c.Cost_model.store_overhead_ns +. (c.Cost_model.store_ns_per_byte *. float_of_int len) in
  let total = ns +. t.frac_ns.v in
  let whole = int_of_float total in
  t.frac_ns.v <- total -. float_of_int whole;
  if whole > 0 then Clock.advance t.clock whole

let record_store t off len =
  check_range t off len "write";
  record_store_unchecked t off len

let write_bytes t off b =
  record_store t off (Bytes.length b);
  Bytes.blit b 0 t.volatile off (Bytes.length b)

let write_string t off s =
  record_store t off (String.length s);
  Bytes.blit_string s 0 t.volatile off (String.length s)

let write_int64 t off v =
  record_store t off 8;
  Bytes.set_int64_le t.volatile off v

let write_int32 t off v =
  record_store t off 4;
  Bytes.set_int32_le t.volatile off v

let write_int t off v =
  record_store t off 8;
  set_int_le t.volatile off v

let write_byte t off v =
  record_store t off 1;
  Bytes.set_uint8 t.volatile off (v land 0xff)

let unsafe_write_int t off v =
  record_store_unchecked t off 8;
  set_int_le t.volatile off v

let unsafe_write_byte t off v =
  record_store_unchecked t off 1;
  Bytes.unsafe_set t.volatile off (Char.unsafe_chr (v land 0xff))

(* Loads. *)

let record_load_unchecked t len =
  t.counters.loads <- t.counters.loads + 1;
  t.counters.bytes_loaded <- t.counters.bytes_loaded + len;
  let c = t.cost in
  let ns = c.Cost_model.load_overhead_ns +. (c.Cost_model.load_ns_per_byte *. float_of_int len) in
  let total = ns +. t.frac_ns.v in
  let whole = int_of_float total in
  t.frac_ns.v <- total -. float_of_int whole;
  if whole > 0 then Clock.advance t.clock whole

let record_load t off len =
  check_range t off len "read";
  record_load_unchecked t len

let read_bytes t off len =
  record_load t off len;
  Bytes.sub t.volatile off len

let read_string t off len =
  record_load t off len;
  Bytes.sub_string t.volatile off len

let read_into t off dst pos len =
  if pos < 0 || len < 0 || pos + len > Bytes.length dst then
    invalid_arg "Region.read_into: destination range out of bounds";
  record_load t off len;
  Bytes.blit t.volatile off dst pos len

let read_int64 t off =
  record_load t off 8;
  Bytes.get_int64_le t.volatile off

let read_int32 t off =
  record_load t off 4;
  Bytes.get_int32_le t.volatile off

let read_int t off =
  record_load t off 8;
  get_int_le t.volatile off

let read_byte t off =
  record_load t off 1;
  Bytes.get_uint8 t.volatile off

let unsafe_read_int t off =
  record_load_unchecked t 8;
  get_int_le t.volatile off

let unsafe_read_byte t off =
  record_load_unchecked t 1;
  Char.code (Bytes.unsafe_get t.volatile off)

let equal_ranges a aoff b boff len =
  check_range a aoff len "equal_ranges";
  check_range b boff len "equal_ranges";
  record_load_unchecked a len;
  record_load_unchecked b len;
  let av = a.volatile and bv = b.volatile in
  let words = len lsr 3 in
  let rec word_eq i =
    i >= words
    || (get_int_le av (aoff + (i lsl 3)) = get_int_le bv (boff + (i lsl 3))
       && word_eq (i + 1))
  in
  let rec byte_eq i =
    i >= len
    || (Bytes.unsafe_get av (aoff + i) = Bytes.unsafe_get bv (boff + i)
       && byte_eq (i + 1))
  in
  word_eq 0 && byte_eq (words lsl 3)

let fill t off len byte =
  record_store t off len;
  Bytes.fill t.volatile off len (Char.chr (byte land 0xff))

let blit t ~src ~dst ~len =
  check_range t src len "blit:src";
  check_range t dst len "blit:dst";
  t.counters.bytes_copied <- t.counters.bytes_copied + len;
  mark_dirty t dst len;
  charge t (Cost_model.copy_cost t.cost len);
  Bytes.blit t.volatile src t.volatile dst len

let copy_between ~src ~src_off ~dst ~dst_off ~len =
  check_range src src_off len "copy_between:src";
  check_range dst dst_off len "copy_between:dst";
  dst.counters.bytes_copied <- dst.counters.bytes_copied + len;
  mark_dirty dst dst_off len;
  charge dst (Cost_model.copy_cost dst.cost len);
  Bytes.blit src.volatile src_off dst.volatile dst_off len

(* Persistence.

   The scan loops below all follow the same shape: clamp the requested line
   range to the [dirty_lo, dirty_hi] watermark, then walk the bitset one
   64-bit word (64 lines) at a time, zero-testing each word as four 16-bit
   loads (immediate ints — a single [Bytes.get_int64_le] would both allocate
   and silently lose line 63 of the word if narrowed to an OCaml int).
   Nonzero words decay to a per-byte, per-bit walk in ascending line order,
   which keeps the flush/RNG sequencing identical to the naive per-line
   loop this replaces. *)

let word_nonzero d bo =
  unsafe_get16 d bo
  lor unsafe_get16 d (bo + 2)
  lor unsafe_get16 d (bo + 4)
  lor unsafe_get16 d (bo + 6)
  <> 0

(* Persist the contiguous dirty run [l0..l1] with a single
   volatile→persistent blit. The per-line bookkeeping — bitset clear,
   lines_flushed, and the flush_line_ns charge with its fractional-ns
   carry — still runs once per line in ascending order, so every counter
   and the simulated clock end up bit-identical to the per-line
   blit-and-charge loop this replaces ({!Clock.advance} is a plain add,
   so one advance of the summed whole-ns is the same as one per line). *)
let persist_run t l0 l1 =
  let off = l0 * line_size in
  let len = min ((l1 + 1) * line_size) t.size - off in
  Bytes.blit t.volatile off t.persistent off len;
  let ns = t.cost.Cost_model.flush_line_ns in
  let acc = ref 0 in
  for line = l0 to l1 do
    clear_dirty_line t line;
    let total = ns +. t.frac_ns.v in
    let whole = int_of_float total in
    t.frac_ns.v <- total -. float_of_int whole;
    acc := !acc + whole
  done;
  t.counters.lines_flushed <- t.counters.lines_flushed + (l1 - l0 + 1);
  if !acc > 0 then Clock.advance t.clock !acc

let flush_quiet t off len =
  check_range t off len "flush";
  if len > 0 then begin
    let first = off / line_size and last = (off + len - 1) / line_size in
    let a = if first > t.dirty_lo then first else t.dirty_lo in
    let b = if last < t.dirty_hi then last else t.dirty_hi in
    if a <= b then begin
      let d = t.dirty in
      (* Track the pending run of consecutive dirty lines; a gap (or end
         of scan) flushes it with one blit. *)
      let rs = ref (-1) and re = ref (-2) in
      for w = a lsr 6 to b lsr 6 do
        let bo = w lsl 3 in
        if word_nonzero d bo then
          for byte = bo to bo + 7 do
            let v = Char.code (Bytes.unsafe_get d byte) in
            if v <> 0 then begin
              let base = byte lsl 3 in
              for bit = 0 to 7 do
                if v land (1 lsl bit) <> 0 then begin
                  let line = base + bit in
                  if line >= a && line <= b then
                    if line = !re + 1 then re := line
                    else begin
                      if !rs >= 0 then persist_run t !rs !re;
                      rs := line;
                      re := line
                    end
                end
              done
            end
          done
      done;
      if !rs >= 0 then persist_run t !rs !re;
      (* A flush reaching down to the low watermark leaves nothing dirty at
         or below [b]; pull the watermark up past it (or empty it). *)
      if first <= t.dirty_lo then
        if last >= t.dirty_hi then begin
          t.dirty_lo <- max_int;
          t.dirty_hi <- -1
        end
        else t.dirty_lo <- b + 1
    end
  end

let flush t off len =
  if Obs.enabled t.obs then begin
    let t0 = Clock.now t.clock in
    let lf0 = t.counters.lines_flushed in
    flush_quiet t off len;
    let lines = t.counters.lines_flushed - lf0 in
    if lines > 0 then
      Obs.emit t.obs ~kind:Obs.k_flush ~track:t.obs_track ~ts:t0
        ~dur:(Clock.now t.clock - t0) ~a:lines ~b:off ~c:0
  end
  else flush_quiet t off len

let fence t =
  t.counters.fences <- t.counters.fences + 1;
  if Obs.enabled t.obs then begin
    let t0 = Clock.now t.clock in
    charge t t.cost.Cost_model.fence_ns;
    Obs.emit t.obs ~kind:Obs.k_fence ~track:t.obs_track ~ts:t0
      ~dur:(Clock.now t.clock - t0) ~a:0 ~b:0 ~c:0
  end
  else charge t t.cost.Cost_model.fence_ns

let persist t off len =
  flush t off len;
  fence t

let flush_all_quiet t =
  if t.dirty_lo <= t.dirty_hi then begin
    let d = t.dirty in
    let rs = ref (-1) and re = ref (-2) in
    for w = t.dirty_lo lsr 6 to t.dirty_hi lsr 6 do
      let bo = w lsl 3 in
      if word_nonzero d bo then
        for byte = bo to bo + 7 do
          let v = Char.code (Bytes.unsafe_get d byte) in
          if v <> 0 then begin
            let base = byte lsl 3 in
            for bit = 0 to 7 do
              if v land (1 lsl bit) <> 0 then begin
                let line = base + bit in
                if line = !re + 1 then re := line
                else begin
                  if !rs >= 0 then persist_run t !rs !re;
                  rs := line;
                  re := line
                end
              end
            done
          end
        done
    done;
    if !rs >= 0 then persist_run t !rs !re;
    t.dirty_lo <- max_int;
    t.dirty_hi <- -1
  end

let flush_all t =
  if Obs.enabled t.obs then begin
    let t0 = Clock.now t.clock in
    let lf0 = t.counters.lines_flushed in
    let off0 = if t.dirty_lo <= t.dirty_hi then t.dirty_lo * line_size else 0 in
    flush_all_quiet t;
    let lines = t.counters.lines_flushed - lf0 in
    if lines > 0 then
      Obs.emit t.obs ~kind:Obs.k_flush ~track:t.obs_track ~ts:t0
        ~dur:(Clock.now t.clock - t0) ~a:lines ~b:off0 ~c:0
  end
  else flush_all_quiet t

let persist_all t =
  flush_all t;
  fence t

(* Crash simulation. *)

let crash_line_words t line =
  (* Within an evicted or in-flight line only aligned 8-byte words are
     atomic: each modified word independently reaches the medium or not. *)
  let off = line * line_size in
  let len = min line_size (t.size - off) in
  let words = len / 8 in
  for w = 0 to words - 1 do
    let woff = off + (w * 8) in
    let v = get_int_le t.volatile woff in
    let p = get_int_le t.persistent woff in
    if v <> p then begin
      if Rng.bool t.rng then Bytes.blit t.volatile woff t.persistent woff 8
    end
    else if Bytes.get_int64_le t.volatile woff <> Bytes.get_int64_le t.persistent woff
    then begin
      (* [get_int_le] drops bit 63; fall back to the full comparison for
         the one-in-2^63 narrowed collision so no modified word is missed. *)
      if Rng.bool t.rng then Bytes.blit t.volatile woff t.persistent woff 8
    end
  done;
  (* Tail bytes of a short final line persist byte-by-byte. *)
  for b = words * 8 to len - 1 do
    let v = Bytes.get t.volatile (off + b) in
    let p = Bytes.get t.persistent (off + b) in
    if v <> p && Rng.bool t.rng then Bytes.set t.persistent (off + b) v
  done

let crash_evict_line t line =
  if Rng.bool t.rng then begin
    let off = line * line_size in
    let len = min line_size (t.size - off) in
    Bytes.blit t.volatile off t.persistent off len
  end

let crash t =
  t.counters.crashes <- t.counters.crashes + 1;
  (if t.crash_mode <> Drop_unflushed && t.dirty_lo <= t.dirty_hi then begin
     let d = t.dirty in
     let words_mode = t.crash_mode = Words_survive_randomly in
     for w = t.dirty_lo lsr 6 to t.dirty_hi lsr 6 do
       let bo = w lsl 3 in
       if word_nonzero d bo then
         for byte = bo to bo + 7 do
           let v = Char.code (Bytes.unsafe_get d byte) in
           if v <> 0 then begin
             let base = byte lsl 3 in
             for bit = 0 to 7 do
               if v land (1 lsl bit) <> 0 then
                 if words_mode then crash_line_words t (base + bit)
                 else crash_evict_line t (base + bit)
             done
           end
         done
     done
   end);
  Bytes.blit t.persistent 0 t.volatile 0 t.size;
  Bytes.fill t.dirty 0 (Bytes.length t.dirty) '\000';
  t.dirty_lo <- max_int;
  t.dirty_hi <- -1

let is_persisted t off len =
  check_range t off len "is_persisted";
  if len = 0 then true
  else begin
    let first = off / line_size and last = (off + len - 1) / line_size in
    let a = if first > t.dirty_lo then first else t.dirty_lo in
    let b = if last < t.dirty_hi then last else t.dirty_hi in
    if a > b then true
    else begin
      let d = t.dirty in
      let clean = ref true in
      let byte = ref (a lsr 3) in
      let last_byte = b lsr 3 in
      while !clean && !byte <= last_byte do
        let v = Char.code (Bytes.unsafe_get d !byte) in
        if v <> 0 then begin
          let base = !byte lsl 3 in
          for bit = 0 to 7 do
            let line = base + bit in
            if v land (1 lsl bit) <> 0 && line >= a && line <= b then clean := false
          done
        end;
        incr byte
      done;
      !clean
    end
  end

let popcount =
  let table = Bytes.make 256 '\000' in
  for i = 0 to 255 do
    let rec count v = if v = 0 then 0 else (v land 1) + count (v lsr 1) in
    Bytes.set table i (Char.chr (count i))
  done;
  table

let dirty_lines t =
  if t.dirty_hi < t.dirty_lo then 0
  else begin
    (* Edge bytes may cover lines outside the watermark, but the invariant
       says those bits are clear, so whole-byte popcounts are exact. *)
    let n = ref 0 in
    for byte = t.dirty_lo lsr 3 to t.dirty_hi lsr 3 do
      n :=
        !n + Char.code (Bytes.unsafe_get popcount (Char.code (Bytes.unsafe_get t.dirty byte)))
    done;
    !n
  end

(* Cost-free content digest for determinism oracles: reads both images
   directly — no simulated time charged, no counters touched — so
   fingerprinting an execution cannot perturb it. *)
let digest t =
  Digest.to_hex (Digest.string (Digest.bytes t.volatile ^ Digest.bytes t.persistent))

(* Cost-free observability reads, same contract as [digest]: gauges and
   stats walks must be able to inspect the volatile image without charging
   simulated loads, otherwise turning observability on would drift the
   bit-identity oracles. Never use these on a data path. *)
let peek_int t off =
  check_range t off 8 "peek";
  get_int_le t.volatile off

let peek_int64 t off =
  check_range t off 8 "peek";
  Bytes.get_int64_le t.volatile off

let counters t = t.counters

let reset_counters t =
  let c = t.counters in
  c.stores <- 0;
  c.bytes_stored <- 0;
  c.loads <- 0;
  c.bytes_loaded <- 0;
  c.lines_flushed <- 0;
  c.fences <- 0;
  c.bytes_copied <- 0;
  c.crashes <- 0

let pp_counters fmt c =
  Format.fprintf fmt
    "{stores=%d (%dB) loads=%d (%dB) flushed_lines=%d fences=%d copied=%dB crashes=%d}"
    c.stores c.bytes_stored c.loads c.bytes_loaded c.lines_flushed c.fences
    c.bytes_copied c.crashes
