(** Simulated byte-addressable non-volatile memory region.

    A region holds two images of its contents:

    - the {e volatile} image: what loads observe — stores land here first,
      modelling the CPU cache hierarchy;
    - the {e persistent} image: what survives a crash — data moves here only
      when the corresponding cache line is flushed (or is evicted by chance
      at crash time).

    Writes mark 64-byte cache lines dirty. [flush] writes dirty lines back;
    [fence] orders them (and charges the drain latency). [crash] simulates
    power failure: each dirty line may or may not have been evicted, and
    within an evicted line each aligned 8-byte word independently survives,
    which is exactly the guarantee x86 NVMM gives software (8-byte aligned
    stores are atomic; nothing else is). Recovery code must tolerate every
    outcome, and the property-based tests drive thousands of such crashes.

    All operations charge virtual time to the region's current clock; see
    {!set_clock} for how multi-client simulations multiplex clocks. *)

type t

val line_size : int

(** How unflushed data behaves at a crash. *)
type crash_mode =
  | Words_survive_randomly
      (** each dirty aligned 8-byte word independently persists or not — the
          adversarial, hardware-faithful default *)
  | Lines_survive_randomly  (** whole 64 B lines persist or not *)
  | Drop_unflushed  (** nothing unflushed survives — most deterministic *)

val create :
  ?cost:Cost_model.t ->
  ?crash_mode:crash_mode ->
  rng:Kamino_sim.Rng.t ->
  clock:Kamino_sim.Clock.t ->
  size:int ->
  unit ->
  t

val size : t -> int

val cost_model : t -> Cost_model.t

(** [set_clock t clock] redirects all subsequent cost charging to [clock].
    The multi-client scheduler and the background backup applier switch the
    active clock before running on behalf of a client. *)
val set_clock : t -> Kamino_sim.Clock.t -> unit

val clock : t -> Kamino_sim.Clock.t

(** {1 Observability}

    A region records flush write-back runs (spans) and fences on its
    tracer. The tracer defaults to {!Kamino_obs.Obs.null}; every
    instrumentation site is a single enabled-check branch, and events
    never touch the clock, so tracing cannot perturb simulated time
    (DESIGN.md par10). *)

(** [set_obs t ?track obs] attaches a tracer; [track] is the Perfetto
    track (thread) id events are tagged with (default 0). *)
val set_obs : t -> ?track:int -> Kamino_obs.Obs.t -> unit

val obs : t -> Kamino_obs.Obs.t

(** {1 Loads and stores}

    All offsets are bounds-checked; integer accessors use little-endian
    encoding. *)

val write_bytes : t -> int -> bytes -> unit
val write_string : t -> int -> string -> unit
val write_int64 : t -> int -> int64 -> unit
val write_int32 : t -> int -> int32 -> unit

(** 63-bit OCaml int stored as a little-endian int64. *)
val write_int : t -> int -> int -> unit
val write_byte : t -> int -> int -> unit

val read_bytes : t -> int -> int -> bytes
val read_string : t -> int -> int -> string
val read_int64 : t -> int -> int64
val read_int32 : t -> int -> int32
val read_int : t -> int -> int
val read_byte : t -> int -> int

(** [read_into t off dst pos len] copies [len] bytes at [off] into [dst]
    starting at [pos] — the allocation-free counterpart of {!read_bytes}
    (same load accounting, same bounds checks, caller-supplied buffer). *)
val read_into : t -> int -> bytes -> int -> int -> unit

(** {2 Unchecked accessors}

    Identical to their checked counterparts — same counters, dirty-line
    tracking and simulated cost — except the per-call range check is
    skipped. The caller must have validated that the whole enclosing range
    is in bounds (e.g. an object extent or a log-slot header checked once
    at lookup); passing an unvalidated offset corrupts adjacent data
    silently. *)

val unsafe_read_int : t -> int -> int
val unsafe_read_byte : t -> int -> int
val unsafe_write_int : t -> int -> int -> unit
val unsafe_write_byte : t -> int -> int -> unit

(** [equal_ranges a aoff b boff len] compares [len] bytes of [a]'s and
    [b]'s volatile images without allocating. Each region is charged
    exactly one load of [len] bytes, so substituting this for a
    read-both-and-compare leaves every counter and simulated cost
    unchanged. *)
val equal_ranges : t -> int -> t -> int -> int -> bool

(** [fill t off len byte] stores [len] copies of [byte]. *)
val fill : t -> int -> int -> int -> unit

(** [blit t ~src ~dst ~len] copies within the region (volatile image),
    charging bulk-copy cost and dirtying the destination. *)
val blit : t -> src:int -> dst:int -> len:int -> unit

(** [copy_between ~src ~src_off ~dst ~dst_off ~len] copies between regions
    (volatile images), charging bulk-copy cost to [dst]'s clock and dirtying
    the destination lines. This is the primitive behind Kamino-Tx's
    roll-forward (main -> backup) and roll-back (backup -> main). *)
val copy_between : src:t -> src_off:int -> dst:t -> dst_off:int -> len:int -> unit

(** {1 Persistence} *)

(** [flush t off len] writes back every dirty line intersecting the range. *)
val flush : t -> int -> int -> unit

(** [fence t] charges the ordering/drain latency. Durability of previously
    flushed lines is only guaranteed after a fence. *)
val fence : t -> unit

(** [persist t off len] = flush then fence: the standard persist barrier. *)
val persist : t -> int -> int -> unit

(** [flush_all t] flushes every dirty line (no fence). *)
val flush_all : t -> unit

(** [persist_all t] flushes everything and fences — used at clean shutdown. *)
val persist_all : t -> unit

(** {1 Crash simulation} *)

(** [crash t] simulates power failure and reboot: unflushed data survives
    according to the crash mode, then the volatile image is reloaded from
    the persistent image. *)
val crash : t -> unit

(** [is_persisted t off len] is [true] iff no line in the range is dirty —
    i.e. the range would survive a crash bit-for-bit. *)
val is_persisted : t -> int -> int -> bool

(** [dirty_lines t] counts currently dirty lines. *)
val dirty_lines : t -> int

(** [charge t ns] charges [ns] (possibly fractional) nanoseconds of CPU work
    to the region's current clock. Higher layers use it for instruction
    overheads that belong to the simulated timeline (allocator bookkeeping,
    index maintenance, lock handling). *)
val charge : t -> float -> unit

(** [digest t] is a hex digest of the volatile and persistent images.
    Cost-free by construction — no simulated time, no counter updates —
    so determinism oracles can fingerprint a heap without perturbing the
    execution they are checking. *)
val digest : t -> string

(** [peek_int t off] / [peek_int64 t off] read the volatile image without
    charging any simulated cost — the load counters and the clock are
    untouched, like {!digest}. Strictly for observability (metric gauges,
    allocator stats walks): data paths must use [read_*] so the cost model
    sees every access. Bounds-checked. *)
val peek_int : t -> int -> int

val peek_int64 : t -> int -> int64

(** {1 Counters} *)

type counters = {
  mutable stores : int;
  mutable bytes_stored : int;
  mutable loads : int;
  mutable bytes_loaded : int;
  mutable lines_flushed : int;
  mutable fences : int;
  mutable bytes_copied : int;
  mutable crashes : int;
}

val counters : t -> counters

val reset_counters : t -> unit

val pp_counters : Format.formatter -> counters -> unit
