type t = {
  store_overhead_ns : float;
  store_ns_per_byte : float;
  load_overhead_ns : float;
  load_ns_per_byte : float;
  flush_line_ns : float;
  fence_ns : float;
  copy_ns_per_byte : float;
  copy_overhead_ns : float;
  alloc_ns : float;
  free_ns : float;
  index_ns : float;
  lock_ns : float;
  log_entry_ns : float;
  clflush_ns : float;
  tx_overhead_ns : float;
}

let default =
  {
    store_overhead_ns = 2.0;
    store_ns_per_byte = 0.05;
    load_overhead_ns = 2.0;
    load_ns_per_byte = 0.05;
    flush_line_ns = 8.0;
    fence_ns = 100.0;
    copy_ns_per_byte = 0.1;
    copy_overhead_ns = 30.0;
    alloc_ns = 300.0;
    free_ns = 200.0;
    index_ns = 100.0;
    lock_ns = 20.0;
    log_entry_ns = 2000.0;
    clflush_ns = 150.0;
    tx_overhead_ns = 800.0;
  }

let slow_nvm =
  {
    default with
    flush_line_ns = 32.0;
    fence_ns = 500.0;
    copy_ns_per_byte = 0.5;
    store_ns_per_byte = 0.1;
  }

(* §2 "Hardware Support": persistent caches / whole-system persistence
   make flushes and fences unnecessary — but atomicity is still needed, so
   every other cost stays. *)
let whole_system_persistence =
  { default with flush_line_ns = 0.0; fence_ns = 0.0; clflush_ns = 0.0 }

let free_model =
  {
    store_overhead_ns = 0.0;
    store_ns_per_byte = 0.0;
    load_overhead_ns = 0.0;
    load_ns_per_byte = 0.0;
    flush_line_ns = 0.0;
    fence_ns = 0.0;
    copy_ns_per_byte = 0.0;
    copy_overhead_ns = 0.0;
    alloc_ns = 0.0;
    free_ns = 0.0;
    index_ns = 0.0;
    lock_ns = 0.0;
    log_entry_ns = 0.0;
    clflush_ns = 0.0;
    tx_overhead_ns = 0.0;
  }

let store_cost t len = t.store_overhead_ns +. (t.store_ns_per_byte *. float_of_int len)

let load_cost t len = t.load_overhead_ns +. (t.load_ns_per_byte *. float_of_int len)

let copy_cost t len = t.copy_overhead_ns +. (t.copy_ns_per_byte *. float_of_int len)

let pp fmt t =
  Format.fprintf fmt
    "{flush_line=%.0fns fence=%.0fns copy=%.2fns/B alloc=%.0fns index=%.0fns}"
    t.flush_line_ns t.fence_ns t.copy_ns_per_byte t.alloc_ns t.index_ns
