(** Calibrated nanosecond costs for simulated NVM operations.

    The paper evaluates on DRAM-emulated NVM (NVDIMM speed). The constants
    below are the knobs that determine every latency the benchmarks report;
    [default] targets an NVDIMM-class device, [slow_nvm] a 3D-Xpoint-class
    device (the paper argues Kamino-Tx's advantage only grows there, which
    the ablation benches confirm). *)

type t = {
  store_overhead_ns : float;  (** fixed cost of one store instruction batch *)
  store_ns_per_byte : float;  (** marginal cost per byte written to cache *)
  load_overhead_ns : float;   (** fixed cost of one load batch *)
  load_ns_per_byte : float;   (** marginal cost per byte read *)
  flush_line_ns : float;
      (** issuing the write-back of one dirty 64 B line (clwb); bulk
          write-backs pipeline, so this is bandwidth-bound — the drain
          latency sits in [fence_ns] *)
  fence_ns : float;           (** store fence / drain latency (sfence+ADR) *)
  copy_ns_per_byte : float;   (** bulk memcpy bandwidth cost *)
  copy_overhead_ns : float;   (** fixed cost per memcpy call *)
  alloc_ns : float;           (** allocator bookkeeping instructions *)
  free_ns : float;            (** deallocator bookkeeping instructions *)
  index_ns : float;           (** one hash/index operation (log lookup) *)
  lock_ns : float;            (** acquire or release one object lock *)
  log_entry_ns : float;
      (** creating one data-log (undo/CoW) entry: NVML allocates log
          entries from a transactional pool, which its own measurements put
          near a microsecond per logged range *)
  clflush_ns : float;
      (** one serializing CLFLUSH: the paper-era NVML persisted log
          snapshots line by line with CLFLUSH (CLWB did not exist on that
          hardware), so the copying baselines pay this per snapshot line *)
  tx_overhead_ns : float;
      (** fixed per-transaction machinery every NVML-derived engine pays
          (TX_BEGIN/TX_END setjmp, lane bookkeeping, cache misses) *)
}

(** NVDIMM-class device: persistence at DRAM-like speeds. *)
val default : t

(** 3D-Xpoint-class device: flushes and copies are several times slower. *)
val slow_nvm : t

(** Persistent processor caches / whole-system persistence (§2 of the
    paper): flushes and fences cost nothing, everything else stays —
    atomicity is still required "to protect against bugs, deadlocks or
    live-locks", and Kamino-Tx's copy elimination still pays. *)
val whole_system_persistence : t

(** Zero-cost model for functional tests where time is irrelevant. *)
val free_model : t

(** Cost in ns of storing [len] bytes. *)
val store_cost : t -> int -> float

(** Cost in ns of loading [len] bytes. *)
val load_cost : t -> int -> float

(** Cost in ns of copying [len] bytes with memcpy. *)
val copy_cost : t -> int -> float

val pp : Format.formatter -> t -> unit
