(** Typed, allocation-free event ring for simulated-time tracing.

    A tracer is a fixed-capacity ring of preallocated slots with mutable
    integer fields.  Recording an event mutates the next slot in place:
    no allocation, no boxing, no closures.  When the ring is full the
    oldest event is overwritten and [dropped] is incremented, so a
    bounded ring never perturbs the run it observes.

    The disabled tracer [null] makes every instrumentation site a single
    [if Obs.enabled obs then ...] branch over an immutable boolean
    field.  Instrumented code must not read clocks, compute arguments,
    or touch the ring unless that branch is taken — this is what makes
    tracing provably free when disabled (see DESIGN.md par10).

    Timestamps and durations are simulated nanoseconds supplied by the
    caller; the tracer itself never touches a clock, which keeps traces
    byte-identical for a given seed. *)

type t

(** {1 Event kinds}

    Kinds are small ints so slots stay unboxed.  The [a]/[b]/[c]
    payload fields are kind-specific; see [arg_names]. *)

val k_flush : int
(** Span on an nvm track: one write-back run. [a] = cache lines
    flushed, [b] = first byte offset of the run. *)

val k_fence : int
(** Span on an nvm track: a persistence fence (drain). *)

val k_intent : int
(** Instant on a tx track: intent-log append. [a] = byte offset,
    [b] = length. *)

val k_lock_wait : int
(** Span on a tx track: time a transaction stalled acquiring a lock.
    [a] = lock key, [b] = cause (0 = contention with a live reader or
    writer, 1 = dependent wait for backup catch-up), [c] = tx id. *)

val k_commit : int
(** Span on a tx track: begin-to-commit. [a] = tx id, [b] = write-set
    ranges, [c] = intent slot (or -1). *)

val k_abort : int
(** Span on a tx track: begin-to-abort. [a] = tx id. *)

val k_applier_task : int
(** Span on an applier track: one backup-propagation task occupying the
    applier's private timeline. [a] = tx id, [b] = ranges, [c] = bytes. *)

val k_applier_batch : int
(** Instant on an applier track: a batched apply drained the queue.
    [a] = tasks applied, [b] = ranges written. *)

val k_queue_depth : int
(** Counter on an applier track: backup queue depth after an enqueue.
    [a] = depth. *)

val k_hop : int
(** Span on a chain-link track: one payload or ack hop in flight.
    [a] = sequence number, [b] = source node, [c] = destination node. *)

val k_view_change : int
(** Instant on the system track: membership excised a node.
    [a] = new view id, [b] = removed node. *)

val k_promote : int
(** Instant on the system track: mid-node head promotion completed.
    [a] = promoted node, [b] = view id. *)

val k_fault : int
(** Instant on the system track: chaos injected a fault.
    [a] = fault code (0 = reboot, 1 = fail-stop, 2 = stale-view probe,
    3 = hop jitter), [b] = node, [c] = event index. *)

val k_fs_op : int
(** Span on the filesystem track: one fs operation (create, write,
    rename, unlink, fsck, ...). [a] = opcode ({!Kamino_fs.Fs.opcode}
    order), [b] = primary inode, [c] = op-specific auxiliary (bytes
    written, entries scanned, target inode, ...). *)

val n_kinds : int

val kind_name : int -> string
(** Stable display name, e.g. ["flush"], ["lock_wait"]. *)

val kind_cat : int -> string
(** Perfetto category: ["nvm"], ["tx"], ["applier"], ["chain"],
    ["chaos"] or ["fs"]. *)

val arg_names : int -> string * string * string
(** Display labels for [a], [b], [c]; [""] means the field is unused
    and sinks omit it. *)

(** {1 Tracer lifecycle} *)

val null : t
(** The disabled tracer: [enabled null = false], every [emit] is a
    no-op.  Default everywhere. *)

val create : ?capacity:int -> unit -> t
(** Enabled tracer with a ring of [capacity] slots (default 65536,
    min 16).  Allocation happens here, once. *)

val enabled : t -> bool
(** Single immutable-field read; the only thing instrumentation sites
    may evaluate unconditionally. *)

val emit :
  t -> kind:int -> track:int -> ts:int -> dur:int -> a:int -> b:int -> c:int
  -> unit
(** Record one event.  [ts] is simulated ns; [dur >= 0] is a span,
    [dur = -1] an instant (or counter sample for [k_queue_depth]).
    Overwrites the oldest event when full.  No-op on [null]. *)

val name_track : t -> int -> string -> unit
(** Associate a display name with a track id (sinks emit it as
    Perfetto thread metadata).  Last writer wins.  No-op on [null]. *)

(** {1 Reading back} *)

val length : t -> int
(** Events currently held (<= capacity). *)

val capacity : t -> int

val dropped : t -> int
(** Events overwritten since creation (or the last [reset]). *)

val total : t -> int
(** Events ever emitted: [length + dropped]. *)

val reset : t -> unit
(** Empty the ring and zero [dropped]; keeps capacity and track names. *)

val iter :
  t
  -> (kind:int -> track:int -> ts:int -> dur:int -> a:int -> b:int -> c:int
      -> unit)
  -> unit
(** Visit surviving events oldest-first. *)

val tracks : t -> (int * string) list
(** Named tracks, sorted by track id. *)

val merged : t array -> t
(** [merged rings] combines per-domain event rings into one tracer for
    sink time: events are stably ordered by track id, then simulated ns,
    then ring-array position — a key that never depends on domain
    scheduling, only on the caller-fixed ring order (shard id under the
    parallel driver, where each track is written by exactly one ring).
    The result's capacity, [dropped] count and track names are the sums
    and union of the inputs, so sink trailers stay faithful. Disabled
    rings are skipped; [merged [||]] (or all-disabled) is {!null}. *)
