(** Named counters and simulated-time histograms.

    A registry is a flat namespace of monotonic counters and log2-bucket
    histograms.  Handles are resolved once (at engine creation) so every
    hot-path update is a plain field mutation — no hashing, no
    allocation.  All aggregation is over integers, so percentile
    estimates are deterministic across runs and machines.

    Histogram buckets are by bit length: value [v] lands in bucket
    [bits v] (0 -> bucket 0, 1 -> 1, 2..3 -> 2, 4..7 -> 3, ...), 64
    buckets total.  A percentile is reported as the upper bound of the
    bucket holding that rank, clamped to the observed maximum — a
    <= 2x overestimate, stable and cheap, which is what a regression
    tripwire needs. *)

type t
type counter
type hist

val create : unit -> t

(** {1 Counters} *)

val counter : t -> string -> counter
(** Find or register. The same name always yields the same handle. *)

val incr : counter -> unit
val add : counter -> int -> unit

val set : counter -> int -> unit
(** Overwrite the value — for gauges synced from an external source. *)

val value : counter -> int
val counter_name : counter -> string

(** {1 Histograms} *)

val hist : t -> string -> hist
val observe : hist -> int -> unit
(** Negative samples are clamped to 0. *)

val hist_name : hist -> string
val count : hist -> int
val sum : hist -> int
val max_value : hist -> int

val mean : hist -> float
(** 0. when empty. *)

val percentile : hist -> float -> int
(** [percentile h p] for [p] in [0..100]; 0 when empty. *)

val percentiles : hist -> float array -> int array
(** [percentiles h ps] maps {!percentile} over [ps] — the p50/p95/p99
    triple every latency report uses. *)

(** {1 Enumeration} *)

val fold_counters : t -> init:'a -> f:('a -> string -> int -> 'a) -> 'a
(** Sorted by name, for deterministic reports. *)

val fold_hists : t -> init:'a -> f:('a -> string -> hist -> 'a) -> 'a
(** Sorted by name. *)
