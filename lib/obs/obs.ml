(* Event ring. One slot per event, preallocated, all-int mutable
   fields: recording is seven stores and a couple of index updates, and
   the disabled path is a single load-and-branch on [enabled]. *)

type slot = {
  mutable kind : int;
  mutable track : int;
  mutable ts : int;
  mutable dur : int;
  mutable a : int;
  mutable b : int;
  mutable c : int;
}

type t = {
  enabled : bool;
  slots : slot array;
  mutable head : int; (* next slot to write *)
  mutable len : int; (* live events, <= capacity *)
  mutable dropped : int;
  mutable track_names : (int * string) list; (* setup-time only *)
}

(* Kind table. Keep [kind_name]/[kind_cat]/[arg_names] in sync: sinks
   render events purely from this metadata. *)

let k_flush = 0
let k_fence = 1
let k_intent = 2
let k_lock_wait = 3
let k_commit = 4
let k_abort = 5
let k_applier_task = 6
let k_applier_batch = 7
let k_queue_depth = 8
let k_hop = 9
let k_view_change = 10
let k_promote = 11
let k_fault = 12
let k_fs_op = 13
let n_kinds = 14

let kind_name = function
  | 0 -> "flush"
  | 1 -> "fence"
  | 2 -> "intent"
  | 3 -> "lock_wait"
  | 4 -> "commit"
  | 5 -> "abort"
  | 6 -> "applier_task"
  | 7 -> "applier_batch"
  | 8 -> "queue_depth"
  | 9 -> "hop"
  | 10 -> "view_change"
  | 11 -> "promote"
  | 12 -> "fault"
  | 13 -> "fs_op"
  | _ -> "unknown"

let kind_cat = function
  | 0 | 1 -> "nvm"
  | 2 | 3 | 4 | 5 -> "tx"
  | 6 | 7 | 8 -> "applier"
  | 9 | 10 | 11 -> "chain"
  | 12 -> "chaos"
  | 13 -> "fs"
  | _ -> "unknown"

let arg_names = function
  | 0 -> ("lines", "off", "")
  | 1 -> ("", "", "")
  | 2 -> ("off", "len", "")
  | 3 -> ("key", "dependent", "tx")
  | 4 -> ("tx", "ranges", "slot")
  | 5 -> ("tx", "", "")
  | 6 -> ("tx", "ranges", "bytes")
  | 7 -> ("tasks", "ranges", "")
  | 8 -> ("depth", "", "")
  | 9 -> ("seq", "src", "dst")
  | 10 -> ("view", "removed", "")
  | 11 -> ("node", "view", "")
  | 12 -> ("fault", "node", "event")
  | 13 -> ("op", "ino", "aux")
  | _ -> ("a", "b", "c")

let make_slots n =
  Array.init n (fun _ ->
      { kind = 0; track = 0; ts = 0; dur = 0; a = 0; b = 0; c = 0 })

let null =
  {
    enabled = false;
    slots = make_slots 1;
    head = 0;
    len = 0;
    dropped = 0;
    track_names = [];
  }

let create ?(capacity = 65536) () =
  let capacity = max 16 capacity in
  {
    enabled = true;
    slots = make_slots capacity;
    head = 0;
    len = 0;
    dropped = 0;
    track_names = [];
  }

let enabled t = t.enabled

let emit t ~kind ~track ~ts ~dur ~a ~b ~c =
  if t.enabled then begin
    let cap = Array.length t.slots in
    let s = Array.unsafe_get t.slots t.head in
    s.kind <- kind;
    s.track <- track;
    s.ts <- ts;
    s.dur <- dur;
    s.a <- a;
    s.b <- b;
    s.c <- c;
    t.head <- (if t.head + 1 = cap then 0 else t.head + 1);
    if t.len < cap then t.len <- t.len + 1 else t.dropped <- t.dropped + 1
  end

let name_track t id name =
  if t.enabled then
    t.track_names <- (id, name) :: List.remove_assoc id t.track_names

let length t = t.len
let capacity t = Array.length t.slots
let dropped t = t.dropped
let total t = t.len + t.dropped

let reset t =
  t.head <- 0;
  t.len <- 0;
  t.dropped <- 0

let iter t f =
  let cap = Array.length t.slots in
  let start = (t.head - t.len + cap) mod cap in
  for i = 0 to t.len - 1 do
    let s = Array.unsafe_get t.slots ((start + i) mod cap) in
    f ~kind:s.kind ~track:s.track ~ts:s.ts ~dur:s.dur ~a:s.a ~b:s.b ~c:s.c
  done

let tracks t =
  List.sort (fun (i, _) (j, _) -> compare i j) t.track_names

(* Deterministic merge of per-domain (per-shard) rings into one timeline.
   Events are keyed by (track, ts) with a *stable* sort, so equal keys
   keep concatenation order — and concatenation order is ring-array
   order, fixed by the caller (shard id), never by which domain finished
   first. Under the parallel driver every track is written by exactly one
   ring, so within a track the merged order is exactly that ring's
   emission order and the result is bit-identical across domain counts.
   Capacity and drop counts sum, keeping sink trailers faithful. *)
let merged rings =
  let live = List.filter enabled (Array.to_list rings) in
  match live with
  | [] -> null
  | _ ->
      let cap = List.fold_left (fun acc r -> acc + capacity r) 0 live in
      let out = create ~capacity:cap () in
      let events = ref [] in
      let n = ref 0 in
      List.iter
        (fun r ->
          iter r (fun ~kind ~track ~ts ~dur ~a ~b ~c ->
              events := (track, ts, !n, (kind, dur, a, b, c)) :: !events;
              incr n))
        live;
      let sorted =
        List.sort
          (fun (t1, ts1, i1, _) (t2, ts2, i2, _) ->
            match compare t1 t2 with
            | 0 -> ( match compare ts1 ts2 with 0 -> compare i1 i2 | d -> d)
            | d -> d)
          (List.rev !events)
      in
      List.iter
        (fun (track, ts, _, (kind, dur, a, b, c)) ->
          emit out ~kind ~track ~ts ~dur ~a ~b ~c)
        sorted;
      out.dropped <- List.fold_left (fun acc r -> acc + dropped r) 0 live;
      List.iter
        (fun r ->
          List.iter (fun (id, name) -> name_track out id name) (tracks r))
        live;
      out
