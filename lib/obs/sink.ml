(* Sinks are cold paths: they run after the measured region, so plain
   Buffer + Printf is fine here. *)

(* Simulated ns -> trace-event microseconds with 3 decimals. Integer
   splitting (not float division) keeps the rendering exact and
   deterministic. *)
let pp_us buf ns =
  Printf.bprintf buf "%d.%03d" (ns / 1000) (ns mod 1000)

let pp_arg buf ~first name v =
  if name <> "" then begin
    if not first then Buffer.add_char buf ',';
    Printf.bprintf buf "%S:%d" name v
  end

let perfetto buf obs =
  Buffer.add_string buf "{\"traceEvents\":[";
  let sep = ref "" in
  let next () =
    Buffer.add_string buf !sep;
    sep := ",\n"
  in
  (* Thread-name metadata first so viewers label tracks up front. *)
  List.iter
    (fun (tid, name) ->
      next ();
      Printf.bprintf buf
        "{\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":%S}}"
        tid name)
    (Obs.tracks obs);
  Obs.iter obs (fun ~kind ~track ~ts ~dur ~a ~b ~c ->
      next ();
      let name = Obs.kind_name kind in
      let cat = Obs.kind_cat kind in
      let an, bn, cn = Obs.arg_names kind in
      if kind = Obs.k_queue_depth then begin
        (* Counter track: value sampled over time. *)
        Printf.bprintf buf
          "{\"name\":%S,\"cat\":%S,\"ph\":\"C\",\"pid\":0,\"tid\":%d,\"ts\":"
          name cat track;
        pp_us buf ts;
        Printf.bprintf buf ",\"args\":{\"depth\":%d}}" a
      end
      else begin
        Printf.bprintf buf
          "{\"name\":%S,\"cat\":%S,\"ph\":%S,\"pid\":0,\"tid\":%d,\"ts\":" name
          cat
          (if dur >= 0 then "X" else "i")
          track;
        pp_us buf ts;
        if dur >= 0 then begin
          Buffer.add_string buf ",\"dur\":";
          pp_us buf dur
        end
        else Buffer.add_string buf ",\"s\":\"t\"";
        Buffer.add_string buf ",\"args\":{";
        pp_arg buf ~first:true an a;
        pp_arg buf ~first:(an = "") bn b;
        pp_arg buf ~first:(an = "" && bn = "") cn c;
        Buffer.add_string buf "}}"
      end);
  Printf.bprintf buf
    "],\n\"displayTimeUnit\":\"ns\",\n\"otherData\":{\"events\":%d,\"dropped\":%d,\"capacity\":%d}}\n"
    (Obs.length obs) (Obs.dropped obs) (Obs.capacity obs)

let perfetto_string obs =
  let buf = Buffer.create 65536 in
  perfetto buf obs;
  Buffer.contents buf

let write_perfetto_file path obs =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (perfetto_string obs))

let summary buf ?obs reg =
  Buffer.add_string buf "== counters ==\n";
  let any =
    Metrics.fold_counters reg ~init:false ~f:(fun _ name v ->
        Printf.bprintf buf "  %-32s %d\n" name v;
        true)
  in
  if not any then Buffer.add_string buf "  (none)\n";
  Buffer.add_string buf "== histograms (sim ns) ==\n";
  Printf.bprintf buf "  %-28s %10s %12s %10s %10s %10s %12s\n" "name" "count"
    "mean" "p50" "p95" "p99" "max";
  let any =
    Metrics.fold_hists reg ~init:false ~f:(fun _ name h ->
        Printf.bprintf buf "  %-28s %10d %12.1f %10d %10d %10d %12d\n" name
          (Metrics.count h) (Metrics.mean h)
          (Metrics.percentile h 50.)
          (Metrics.percentile h 95.)
          (Metrics.percentile h 99.)
          (Metrics.max_value h);
        true)
  in
  if not any then Buffer.add_string buf "  (none)\n";
  match obs with
  | None -> ()
  | Some o ->
      Printf.bprintf buf
        "== event ring ==\n  %d events held, %d dropped, capacity %d\n"
        (Obs.length o) (Obs.dropped o) (Obs.capacity o)

let summary_string ?obs reg =
  let buf = Buffer.create 4096 in
  summary buf ?obs reg;
  Buffer.contents buf
