(** Render a tracer / registry into consumable form.

    The Perfetto sink writes Chrome trace-event JSON (the
    ["traceEvents"] array format) loadable by https://ui.perfetto.dev
    or chrome://tracing.  Timestamps are simulated microseconds with
    nanosecond precision ([ts]/[dur] carry three decimals); track names
    become per-tid thread metadata.  Output is a pure function of ring
    contents, so traces are byte-identical for the same seed. *)

val perfetto : Buffer.t -> Obs.t -> unit
(** Append the full JSON document to [buf]. *)

val perfetto_string : Obs.t -> string

val write_perfetto_file : string -> Obs.t -> unit
(** Write (truncate) [path] with the JSON document. *)

val summary : Buffer.t -> ?obs:Obs.t -> Metrics.t -> unit
(** Plain-text report: counters, then histograms
    (count/mean/p50/p95/p99/max), then — when [obs] is given — ring
    occupancy and drop counts.  Deterministic ordering. *)

val summary_string : ?obs:Obs.t -> Metrics.t -> string
