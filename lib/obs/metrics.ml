type counter = { c_name : string; mutable count : int }

type hist = {
  h_name : string;
  buckets : int array; (* index = bit length of the sample *)
  mutable n : int;
  mutable total : int;
  mutable hmax : int;
}

type t = {
  mutable counters : (string * counter) list;
  mutable hists : (string * hist) list;
}

(* Registries hold a handful of entries resolved at setup time, so a
   sorted assoc list beats a Hashtbl for determinism and simplicity. *)

let create () = { counters = []; hists = [] }

let counter t name =
  match List.assoc_opt name t.counters with
  | Some c -> c
  | None ->
      let c = { c_name = name; count = 0 } in
      t.counters <- (name, c) :: t.counters;
      c

let incr c = c.count <- c.count + 1
let add c n = c.count <- c.count + n
let set c n = c.count <- n
let value c = c.count
let counter_name c = c.c_name

let hist t name =
  match List.assoc_opt name t.hists with
  | Some h -> h
  | None ->
      let h =
        { h_name = name; buckets = Array.make 64 0; n = 0; total = 0; hmax = 0 }
      in
      t.hists <- (name, h) :: t.hists;
      h

(* Number of significant bits: bits 0 = 0, bits 1 = 1, bits 7 = 3. *)
let bits v =
  let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
  go 0 v

let observe h v =
  let v = if v < 0 then 0 else v in
  let i = bits v in
  h.buckets.(i) <- h.buckets.(i) + 1;
  h.n <- h.n + 1;
  h.total <- h.total + v;
  if v > h.hmax then h.hmax <- v

let hist_name h = h.h_name
let count h = h.n
let sum h = h.total
let max_value h = h.hmax
let mean h = if h.n = 0 then 0. else float_of_int h.total /. float_of_int h.n

let percentile h p =
  if h.n = 0 then 0
  else begin
    let rank =
      let r = int_of_float (ceil (p /. 100. *. float_of_int h.n)) in
      if r < 1 then 1 else if r > h.n then h.n else r
    in
    let i = ref 0 in
    let seen = ref 0 in
    while !seen < rank && !i < 64 do
      seen := !seen + h.buckets.(!i);
      if !seen < rank then i := !i + 1
    done;
    (* Upper bound of bucket !i: 2^!i - 1 (bucket 0 holds only 0). *)
    let ub = if !i = 0 then 0 else (1 lsl !i) - 1 in
    min ub h.hmax
  end

let percentiles h ps = Array.map (fun p -> percentile h p) ps

let by_name l = List.sort (fun (a, _) (b, _) -> compare a b) l

let fold_counters t ~init ~f =
  List.fold_left (fun acc (name, c) -> f acc name c.count) init
    (by_name t.counters)

let fold_hists t ~init ~f =
  List.fold_left (fun acc (name, h) -> f acc name h) init (by_name t.hists)
