(* Closed-loop client façade over {!Cluster}: each call schedules the
   operation one tick after the current virtual time and drains the shared
   simulation, so callers (CLI walkthrough, benches, unit tests) get plain
   synchronous KV semantics while every write still traverses the full
   chain / 2PC machinery. *)

module Sim = Kamino_sim.Engine
module Clock = Kamino_sim.Clock
module Engine = Kamino_core.Engine
module Kv = Kamino_kv.Kv
module Async = Kamino_chain.Async_chain
module Op = Kamino_chain.Op

type t = { c : Cluster.t }

let create c = { c }

let cluster t = t.c

let next_at t = Sim.now (Cluster.sim t.c) + 1

let drive t op =
  let done_at = ref None in
  Cluster.submit t.c ~at:(next_at t) op ~on_complete:(fun at ->
      done_at := Some at);
  ignore (Cluster.run t.c);
  match !done_at with
  | Some at -> at
  | None -> failwith "Cluster_kv: the write never completed"

let put t k v = ignore (drive t (Op.Put (k, v)))

let delete t k = ignore (drive t (Op.Delete k))

let append t k suffix = ignore (drive t (Op.Append (k, suffix)))

let multi_put t bindings =
  let done_at = ref None in
  Cluster.multi_put t.c ~at:(next_at t) bindings ~on_complete:(fun at ->
      done_at := Some at);
  ignore (Cluster.run t.c);
  if !done_at = None then failwith "Cluster_kv: the multi_put never completed"

let get t k =
  let result = ref None in
  Cluster.read t.c ~at:(next_at t) k ~on_result:(fun v _ -> result := Some v);
  ignore (Cluster.run t.c);
  match !result with
  | Some v -> v
  | None -> failwith "Cluster_kv: the read never completed"

(* A snapshot read against the owning chain's head (the replica with the
   backup image). A head whose chain is wedged under a prepared cluster
   transaction, or whose promotion has not built a backup yet, cannot
   serve snapshots — fall back to an ordinary tail read. *)
let snapshot_get ?clock t k =
  let s = Cluster.route t.c k in
  let ch = Cluster.chain t.c s in
  let head = Async.head_id ch in
  if
    Async.cluster_held ch
    || Engine.snapshot_watermark (Async.engine_at ch head) = None
  then get t k
  else Kv.snapshot_get ?clock (Async.kv_at ch head) k
