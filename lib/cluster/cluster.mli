(** The replicated shard-cluster: a chain of f+2 replicas per shard, keys
    spread across shard-chains by the multiplicative-hash router, and
    cross-shard transactions running the persistent-marker prepare/commit
    protocol over chain {e heads} (DESIGN.md §14, paper §5).

    The coordinator is a serialized state machine over the shared
    discrete-event simulation: each protocol step (prepare participant
    [k], persist marker, commit participant [k], clear marker) is its own
    event separated by an RPC delay, so chaos faults — fail-stops, view
    changes, reboots, head promotions — can land {e between} any two
    steps. The protocol survives head churn by re-preparing an undecided
    participant through its chain's current head (same sequence number)
    before the marker persists, and by re-driving committed-but-
    unacknowledged operations through the new head after every view
    change. Reboot recovery consults the marker: a Running intent record
    at node [n] of shard [s] rolls forward iff a valid marker lists
    [(s, n, tx_id)]. *)

module Op = Kamino_chain.Op
module Async = Kamino_chain.Async_chain

(** Mirror of {!Kamino_shard.Shard.cross_step} at cluster scope, reported
    as the coordinator crosses each protocol step — the chaos harness
    arms targeted faults on these (e.g. fail-stop the prepared head
    between prepare and marker persist). *)
type cross_step =
  | Prepared of int  (** participant shard prepared at its current head *)
  | Marker_written  (** the commit point *)
  | Committed of int
  | Marker_cleared

type t

(** [create ~shards ~f ...] builds [shards] chains of f+2 Kamino replicas
    each, all driven by one shared simulation, plus the persistent
    cross-chain commit marker. [retry_ns] is the coordinator's back-off
    when a participant's head is mid-promotion and cannot prepare. *)
val create :
  ?engine_config:Kamino_core.Engine.config ->
  ?hop_ns:int ->
  ?rpc_ns:int ->
  ?promote_ns:int ->
  ?retry_ns:int ->
  ?queue_slots:int ->
  shards:int ->
  f:int ->
  value_size:int ->
  node_size:int ->
  seed:int ->
  unit ->
  t

(** The shared simulation — schedule faults on it, then {!run}. *)
val sim : t -> Kamino_sim.Engine.t

val shards : t -> int

(** The shard-chain owning slot [s]. *)
val chain : t -> int -> Async.t

(** Deterministic key -> shard-chain routing ({!Kamino_shard.Shard.route_key}). *)
val route : t -> int -> int

(** Cluster metrics: [cluster.commit_ns] / [cluster.cross_commit_ns]
    histograms (p50/p95/p99 via {!Kamino_obs.Metrics.percentile}) and the
    [cluster.committed] / [cluster.crossed] / [cluster.redrives] /
    [cluster.re_prepares] / [cluster.prepare_retries] counters. *)
val registry : t -> Kamino_obs.Metrics.t

val marker_region : t -> Kamino_nvm.Region.t

val marker_valid : t -> bool

(** [run t] drains the shared event queue; returns the number of events. *)
val run : t -> int

(** {1 Client interface} *)

(** [submit t ~at op ~on_complete] — a single-key write, routed to its
    owning shard-chain. [on_submit] reports the owning shard and the
    chain sequence number the moment the head assigns it. Raises on
    [Op.Batch] — use {!multi_put}. *)
val submit :
  t ->
  at:int ->
  ?on_submit:(shard:int -> seq:int -> unit) ->
  Op.t ->
  on_complete:(int -> unit) ->
  unit

(** [multi_put t ~at bindings ~on_complete] writes all [bindings]
    atomically across every shard-chain they route to. A single-shard
    batch commits as one ordinary chain transaction; otherwise the
    persistent-marker 2PC runs over the participant heads, and
    [on_complete] fires when {e every} participant chain's tail has
    acknowledged. [on_seq] reports each participant's chain sequence
    number at first prepare (stable across re-prepares). *)
val multi_put :
  t ->
  at:int ->
  ?on_step:(cross_step -> unit) ->
  ?on_seq:(shard:int -> seq:int -> unit) ->
  (int * string) list ->
  on_complete:(int -> unit) ->
  unit

(** The per-shard decomposition {!multi_put} uses: one [Op] per
    participant chain, ascending shard id, binding order preserved —
    the chaos oracles replay exactly this. *)
val group_bindings : t -> (int * string) list -> (int * Op.t) list

(** [read t ~at key ~on_result] — served by the owning chain's tail. *)
val read : t -> at:int -> int -> on_result:(string option -> int -> unit) -> unit

(** {1 Observation and verification} *)

(** Cross-chain transactions completed (all participants acknowledged). *)
val crossed : t -> int

(** Committed-but-unacknowledged re-drives triggered by view changes. *)
val redrives : t -> int

(** Cross-chain transactions still awaiting acknowledgments. *)
val outstanding : t -> int

(** After {!run} drains: no active/queued/unacknowledged cross-chain
    transaction, and the marker is retired. *)
val quiescent : t -> (unit, string) result

(** {!quiescent}, every chain's replicas byte-consistent, and every head's
    backup image verified. *)
val verify : t -> (unit, string) result

(** Cost-free determinism fingerprint over every replica engine, every
    chain view, and the marker region — byte-identical across identical
    (seed, workload, schedule) runs. *)
val fingerprint : t -> string
