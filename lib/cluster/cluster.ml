(* The replicated shard-cluster: chain-per-shard composition (DESIGN.md §14).

   Each shard is an {!Kamino_chain.Async_chain} of f+2 replicas — the head
   holds the dynamic backup, per §5 of the paper — and keys spread across
   the shard-chains with the same multiplicative-hash router the in-process
   sharded façade uses ({!Kamino_shard.Shard.route_key}). Cross-shard
   transactions run the persistent-marker prepare/commit protocol over
   chain *heads*:

     prepare at each participant head, ascending shard id (the op executes
         inside a prepared-but-undecided engine transaction; the chain
         wedges so no later sequence number can overtake it)
     -> revalidate every participant (a head that died undecided rolled
        its prepared state back, or took it to the grave — re-prepare
        through the *current* head under the same sequence number)
     -> write marker payload ((shard, seq, node, tx_id) per participant),
        flush, fence; set valid flag, flush, fence   <- the commit point
     -> cluster_commit each participant (commit the prepared transaction
        if it is still alive, else idempotently re-drive through whatever
        head the chain has now), unwedge, propagate down the chain
     -> clear marker, flush, fence

   Every arrow is a separate simulation event separated by an RPC delay,
   so the chaos explorer can land fail-stops, view changes and head
   promotions *between* any two protocol steps. Two further rules make the
   protocol survive head churn:

   - a participant whose head is mid-promotion (still [Intent_only],
     backup build in flight) cannot prepare; the coordinator retries the
     step after [retry_ns] until the promotion completes;
   - after any view change, every committed-but-unacknowledged cluster
     operation is re-driven through the chain's new head (execution and
     forwarding are exactly-once guarded, so re-driving is always safe) —
     without this, a head that fail-stops after committing locally but
     before forwarding would take the operation to the grave on its chain
     while the other participants keep it: an atomicity violation.

   Reboot recovery is the marker's all-or-nothing decision, exactly as in
   the in-process sharded façade: a Running intent record found at reboot
   of node [n] on shard [s] rolls forward iff a valid marker lists
   [(s, n, tx_id)]. *)

module Sim = Kamino_sim.Engine
module Clock = Kamino_sim.Clock
module Region = Kamino_nvm.Region
module Engine = Kamino_core.Engine
module Metrics = Kamino_obs.Metrics
module Async = Kamino_chain.Async_chain
module Op = Kamino_chain.Op
module Shard = Kamino_shard.Shard

type cross_step =
  | Prepared of int
  | Marker_written
  | Committed of int
  | Marker_cleared

type participant = {
  p_shard : int;
  p_op : Op.t;
  mutable p_seq : int;
  mutable p_node : int;  (* head that holds the prepared transaction *)
  mutable p_tx_id : int;
  mutable p_committed : bool;
  mutable p_acked : bool;
}

type cross = {
  x_at : int;  (* client submission time *)
  parts : participant array;  (* ascending shard id *)
  x_on_step : cross_step -> unit;
  x_on_seq : (shard:int -> seq:int -> unit) option;
  x_on_complete : int -> unit;
  mutable x_done : bool;
}

type t = {
  sim : Sim.t;
  chains : Async.t array;
  marker : Region.t;
  clock : Clock.t;  (* the coordinator's own timeline (marker persists) *)
  rpc_ns : int;
  retry_ns : int;
  registry : Metrics.t;
  commit_h : Metrics.hist;  (* every completed write, single and cross *)
  cross_h : Metrics.hist;  (* cross-shard writes only *)
  committed_c : Metrics.counter;
  crossed_c : Metrics.counter;
  redrives_c : Metrics.counter;
  re_prepares_c : Metrics.counter;
  retries_c : Metrics.counter;  (* prepare attempts parked on a promotion *)
  mutable active : cross option;  (* marker record is single-occupancy *)
  queue : cross Queue.t;
  mutable outstanding : cross list;  (* not yet fully acknowledged *)
}

(* Marker layout (8-byte words): [0] valid flag, [8] participant count,
   then 32 bytes per participant — shard, chain op seq, prepared head
   node, engine tx id. One cross-chain commit is in flight at a time. *)
let marker_size ~shards =
  let need = 16 + (32 * shards) in
  ((need + 4095) / 4096) * 4096

let part_off k = 16 + (32 * k)

let write_marker t parts =
  let m = t.marker in
  ignore (Clock.advance_to t.clock (Sim.now t.sim));
  Region.write_int m 8 (Array.length parts);
  Array.iteri
    (fun k p ->
      Region.write_int m (part_off k) p.p_shard;
      Region.write_int m (part_off k + 8) p.p_seq;
      Region.write_int m (part_off k + 16) p.p_node;
      Region.write_int m (part_off k + 24) p.p_tx_id)
    parts;
  Region.flush m 8 (8 + (32 * Array.length parts));
  Region.fence m;
  (* The commit point: the valid flag becomes durable strictly after the
     payload it covers. *)
  Region.write_int m 0 1;
  Region.flush m 0 8;
  Region.fence m

let clear_marker t =
  ignore (Clock.advance_to t.clock (Sim.now t.sim));
  Region.write_int t.marker 0 0;
  Region.flush t.marker 0 8;
  Region.fence t.marker

let marker_valid t = Region.read_int t.marker 0 = 1

(* The recovery decision: does a valid marker list (shard, node, tx_id)? *)
let marker_lists t ~shard ~node ~tx_id =
  marker_valid t
  && begin
       let n = Region.read_int t.marker 8 in
       let rec go k =
         k < n
         && ((Region.read_int t.marker (part_off k) = shard
             && Region.read_int t.marker (part_off k + 16) = node
             && Region.read_int t.marker (part_off k + 24) = tx_id)
            || go (k + 1))
       in
       go 0
     end

(* --- the serialized coordinator state machine ----------------------------- *)

let finish_if_acked t x at =
  if (not x.x_done) && Array.for_all (fun p -> p.p_acked) x.parts then begin
    x.x_done <- true;
    t.outstanding <- List.filter (fun y -> y != x) t.outstanding;
    Metrics.observe t.commit_h (at - x.x_at);
    Metrics.observe t.cross_h (at - x.x_at);
    Metrics.incr t.committed_c;
    Metrics.incr t.crossed_c;
    x.x_on_complete at
  end

let rec step_prepare t x k =
  let p = x.parts.(k) in
  let ch = t.chains.(p.p_shard) in
  if not (Async.head_can_prepare ch) then begin
    (* The head is mid-promotion (§5.2 backup build in flight): it cannot
       hold a prepared transaction yet. Park and retry. *)
    Metrics.incr t.retries_c;
    Sim.schedule_after t.sim ~delay:t.retry_ns (fun () -> step_prepare t x k)
  end
  else begin
    let seq, node, tx_id = Async.cluster_prepare ch p.p_op in
    p.p_seq <- seq;
    p.p_node <- node;
    p.p_tx_id <- tx_id;
    (match x.x_on_seq with Some f -> f ~shard:p.p_shard ~seq | None -> ());
    x.x_on_step (Prepared p.p_shard);
    Sim.schedule_after t.sim ~delay:t.rpc_ns (fun () ->
        if k + 1 < Array.length x.parts then step_prepare t x (k + 1)
        else step_marker t x)
  end

(* Before the marker persists, every participant must hold a live prepared
   transaction at its *current* head. A participant whose prepared head
   rebooted (rolled back — no valid marker yet) or fail-stopped (prepared
   state gone with the node) is re-prepared through the current head under
   the same sequence number; each re-prepare is its own event, so faults
   can land between any two. *)
and step_marker t x =
  match
    Array.find_opt
      (fun p -> not (Async.cluster_prepared_live t.chains.(p.p_shard) ~seq:p.p_seq))
      x.parts
  with
  | Some p ->
      let ch = t.chains.(p.p_shard) in
      if not (Async.head_can_prepare ch) then begin
        Metrics.incr t.retries_c;
        Sim.schedule_after t.sim ~delay:t.retry_ns (fun () -> step_marker t x)
      end
      else begin
        let _seq, node, tx_id = Async.cluster_prepare ~seq:p.p_seq ch p.p_op in
        p.p_node <- node;
        p.p_tx_id <- tx_id;
        Metrics.incr t.re_prepares_c;
        x.x_on_step (Prepared p.p_shard);
        Sim.schedule_after t.sim ~delay:t.rpc_ns (fun () -> step_marker t x)
      end
  | None ->
      write_marker t x.parts;
      x.x_on_step Marker_written;
      Sim.schedule_after t.sim ~delay:t.rpc_ns (fun () -> step_commit t x 0)

and step_commit t x k =
  let p = x.parts.(k) in
  let ch = t.chains.(p.p_shard) in
  Async.cluster_commit ch ~seq:p.p_seq p.p_op ~on_ack:(fun at ->
      p.p_acked <- true;
      finish_if_acked t x at);
  p.p_committed <- true;
  x.x_on_step (Committed p.p_shard);
  Sim.schedule_after t.sim ~delay:t.rpc_ns (fun () ->
      if k + 1 < Array.length x.parts then step_commit t x (k + 1)
      else step_clear t x)

and step_clear t x =
  clear_marker t;
  x.x_on_step Marker_cleared;
  t.active <- None;
  start_next t

and start_next t =
  match t.active with
  | Some _ -> ()
  | None -> (
      match Queue.take_opt t.queue with
      | None -> ()
      | Some x ->
          t.active <- Some x;
          t.outstanding <- x :: t.outstanding;
          step_prepare t x 0)

(* After any view change on shard [s]: re-drive every committed-but-
   unacknowledged cluster operation through the chain's new head. The
   prepared-phase cases need nothing here — [step_marker] revalidates, and
   a not-yet-prepared participant will prepare at whatever head exists
   when its turn comes.

   The re-drives run synchronously, in ascending sequence order. Both
   halves matter: each node's exactly-once guard ([seq > exec_seq]) is
   monotone, so a higher-sequence re-drive (or a fresh client submission)
   executing first would make every lower re-drive a silent no-op on the
   survivors — a torn cross-chain transaction. Firing inside the
   view-change event leaves no window for either reordering. *)
let on_view_change t s () =
  let due = ref [] in
  List.iter
    (fun x ->
      Array.iter
        (fun p ->
          if p.p_shard = s && p.p_committed && not p.p_acked then
            due := p :: !due)
        x.parts)
    t.outstanding;
  List.iter
    (fun p ->
      Metrics.incr t.redrives_c;
      Async.cluster_redrive t.chains.(s) ~seq:p.p_seq p.p_op)
    (List.sort (fun a b -> compare a.p_seq b.p_seq) !due)

let create ?(engine_config = Engine.default_config) ?(hop_ns = 5000)
    ?(rpc_ns = 1000) ?(promote_ns = 50_000) ?(retry_ns = 10_000)
    ?(queue_slots = 256) ~shards ~f ~value_size ~node_size ~seed () =
  if shards <= 0 then invalid_arg "Cluster.create: shards must be positive";
  let sim = Sim.create () in
  let chains =
    Array.init shards (fun s ->
        (* Slots must hold a [Op.Batch] slice of a multi_put — up to four
           sub-ops of up to [value_size] bytes each, plus framing. *)
        Async.create ~sim ~engine_config ~hop_ns ~rpc_ns ~promote_ns
          ~queue_slots
          ~slot_bytes:(16 + (4 * (value_size + 96)))
          ~mode:Async.Kamino_chain ~f ~value_size ~node_size
          ~seed:(seed + (1000 * s)) ())
  in
  let clock = Clock.create () in
  let marker =
    Region.create ~cost:engine_config.Engine.cost
      ~crash_mode:engine_config.Engine.crash_mode
      ~rng:(Kamino_sim.Rng.create (seed lxor 0x5bd1))
      ~clock ~size:(marker_size ~shards) ()
  in
  let registry = Metrics.create () in
  let t =
    {
      sim;
      chains;
      marker;
      clock;
      rpc_ns;
      retry_ns;
      registry;
      commit_h = Metrics.hist registry "cluster.commit_ns";
      cross_h = Metrics.hist registry "cluster.cross_commit_ns";
      committed_c = Metrics.counter registry "cluster.committed";
      crossed_c = Metrics.counter registry "cluster.crossed";
      redrives_c = Metrics.counter registry "cluster.redrives";
      re_prepares_c = Metrics.counter registry "cluster.re_prepares";
      retries_c = Metrics.counter registry "cluster.prepare_retries";
      active = None;
      queue = Queue.create ();
      outstanding = [];
    }
  in
  Array.iteri
    (fun s ch ->
      Async.set_view_change_hook ch (Some (on_view_change t s));
      Async.set_recovery_hook ch
        (Some (fun ~node ~tx_id -> marker_lists t ~shard:s ~node ~tx_id)))
    chains;
  t

let sim t = t.sim

let shards t = Array.length t.chains

let chain t s = t.chains.(s)

let registry t = t.registry

let marker_region t = t.marker

let route t key = Shard.route_key ~shards:(Array.length t.chains) key

let outstanding t = List.length t.outstanding

let crossed t = Metrics.value t.crossed_c

let redrives t = Metrics.value t.redrives_c

let run t = Sim.run t.sim

(* --- client interface ------------------------------------------------------ *)

let key_of_op = function
  | Op.Put (k, _) | Op.Delete k | Op.Append (k, _) -> k
  | Op.Batch _ -> invalid_arg "Cluster.submit: use multi_put for batches"

let submit t ~at ?(on_submit = fun ~shard:_ ~seq:_ -> ()) op ~on_complete =
  let s = route t (key_of_op op) in
  Async.submit t.chains.(s) ~at
    ~on_submit:(fun seq -> on_submit ~shard:s ~seq)
    op
    ~on_complete:(fun done_ns ->
      Metrics.observe t.commit_h (done_ns - at);
      Metrics.incr t.committed_c;
      on_complete done_ns)

(* The per-shard decomposition of a multi_put — one [Op] per participant
   chain, binding order preserved. Exposed so the chaos oracles can
   reconstruct exactly what each chain was asked to apply. *)
let group_bindings t bindings =
  if bindings = [] then invalid_arg "Cluster.multi_put: no bindings";
  let shards = Array.length t.chains in
  let groups = Array.make shards [] in
  List.iter
    (fun (k, v) ->
      let s = route t k in
      groups.(s) <- (k, v) :: groups.(s))
    bindings;
  Array.to_list groups
  |> List.mapi (fun s g -> (s, List.rev g))
  |> List.filter (fun (_, g) -> g <> [])
  |> List.map (fun (s, g) ->
         match g with
         | [ (k, v) ] -> (s, Op.Put (k, v))
         | _ -> (s, Op.Batch (List.map (fun (k, v) -> Op.Put (k, v)) g)))

let multi_put t ~at ?(on_step = fun _ -> ()) ?on_seq bindings ~on_complete =
  let parts =
    List.map
      (fun (s, op) ->
        {
          p_shard = s;
          p_op = op;
          p_seq = -1;
          p_node = -1;
          p_tx_id = -1;
          p_committed = false;
          p_acked = false;
        })
      (group_bindings t bindings)
  in
  match parts with
  | [ p ] ->
      (* Single-shard batch: no cross-chain coordination needed — one
         chain transaction is already atomic. *)
      Async.submit t.chains.(p.p_shard) ~at
        ~on_submit:(fun seq ->
          match on_seq with
          | Some f -> f ~shard:p.p_shard ~seq
          | None -> ())
        p.p_op
        ~on_complete:(fun done_ns ->
          Metrics.observe t.commit_h (done_ns - at);
          Metrics.incr t.committed_c;
          on_complete done_ns)
  | parts ->
      let x =
        {
          x_at = at;
          parts = Array.of_list parts;
          x_on_step = on_step;
          x_on_seq = on_seq;
          x_on_complete = on_complete;
          x_done = false;
        }
      in
      Sim.schedule t.sim ~at (fun () ->
          Queue.add x t.queue;
          start_next t)

let read t ~at key ~on_result =
  let s = route t key in
  Async.read t.chains.(s) ~at key ~on_result

(* --- verification ---------------------------------------------------------- *)

let quiescent t =
  if t.active <> None then Error "a cross-chain transaction is still active"
  else if not (Queue.is_empty t.queue) then
    Error "cross-chain transactions are still queued"
  else if t.outstanding <> [] then
    Error "a cross-chain transaction is still awaiting tail acknowledgments"
  else if marker_valid t then Error "the commit marker was never retired"
  else Ok ()

let verify t =
  let rec chains s =
    if s >= Array.length t.chains then Ok ()
    else
      let ch = t.chains.(s) in
      match Async.replicas_consistent ch with
      | Error e -> Error (Printf.sprintf "shard %d: %s" s e)
      | Ok () -> (
          match Engine.verify_backup (Async.engine_at ch (Async.head_id ch)) with
          | Error e -> Error (Printf.sprintf "shard %d head backup: %s" s e)
          | Ok () -> chains (s + 1))
  in
  match quiescent t with Error _ as e -> e | Ok () -> chains 0

(* Cost-free determinism fingerprint: every replica engine's fingerprint
   (metrics + content digests), each chain's view, and the marker region's
   digest, folded to one hex string. Byte-identical across identical
   (seed, workload, schedule) runs — the cluster-level determinism oracle. *)
let fingerprint t =
  let buf = Buffer.create 512 in
  Array.iteri
    (fun s ch ->
      Buffer.add_string buf
        (Printf.sprintf "shard%d view%d members[%s];" s (Async.view_id ch)
           (String.concat "," (List.map string_of_int (Async.members ch))));
      for i = 0 to Async.length ch - 1 do
        Buffer.add_string buf (Engine.fingerprint (Async.engine_at ch i));
        Buffer.add_char buf ';'
      done)
    t.chains;
  Buffer.add_string buf (Region.digest t.marker);
  Digest.to_hex (Digest.string (Buffer.contents buf))
