(** Synchronous KV client over a {!Cluster}: routes every key to its
    owning shard-chain, drives the shared simulation to completion per
    call (closed loop), and exposes the cross-shard atomic [multi_put].
    For event-driven open-loop access use {!Cluster.submit} /
    {!Cluster.multi_put} / {!Cluster.read} directly. *)

type t

val create : Cluster.t -> t

val cluster : t -> Cluster.t

(** Writes propagate through the owning chain (head to tail) before the
    call returns; [multi_put] additionally runs the persistent-marker 2PC
    over the participant heads when the bindings span several chains. *)

val put : t -> int -> string -> unit

val delete : t -> int -> unit

val append : t -> int -> string -> unit

val multi_put : t -> (int * string) list -> unit

(** Served by the owning chain's tail. *)
val get : t -> int -> string option

(** Lock-free snapshot read served from the owning chain head's backup
    image at its published watermark; falls back to an ordinary tail read
    while the head cannot serve snapshots (chain wedged under a prepared
    cluster transaction, or promotion still building the backup). *)
val snapshot_get : ?clock:Kamino_sim.Clock.t -> t -> int -> string option
