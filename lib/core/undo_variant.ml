(* [Undo_logging]: NVML semantics. Declaring an intent snapshots the
   pre-transaction bytes into the data log {e in the critical path}; writes
   then go in place, commit persists them and closes the log transaction,
   abort (or crash recovery) restores the snapshots. The copying cost the
   paper's intent log removes sits entirely in [v_declare]. *)

open Variant

let begin_ t ~tx_id = Data_log.begin_tx (the_dlog t) ~tx_id

let declare t _tx ~le:_ ~off ~len ~redirectable:_ =
  ignore
    (Data_log.add (the_dlog t) ~off ~len ~replay:Data_log.On_abort ~src:t.main);
  None

let barrier t _tx = Data_log.barrier (the_dlog t)

let commit t tx =
  let dlog = the_dlog t in
  do_barrier tx;
  persist_ws t ~in_place_only:true;
  Data_log.finish dlog;
  release_all tx ~write_release:(Clock.now t.clk)

let ops =
  {
    v_object_granular = false;
    v_begin = begin_;
    v_claim_slot = (fun _ _ -> error (Component_missing "intent log"));
    v_declare = declare;
    v_pre_free = no_op_pre_free;
    v_barrier = barrier;
    v_commit = commit;
    v_abort = data_log_abort;
    v_prepare = unsupported "prepare (undo-logging)";
    v_commit_prepared = unsupported "commit_prepared (undo-logging)";
    v_recover = (fun t ~promote_running:_ -> data_log_recover t);
  }
