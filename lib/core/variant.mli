(** Shared engine state and the variant strategy signature.

    The transaction engine is split in two layers. {!Engine} is the
    kind-independent shell — write-set tracking, lock acquisition, clock
    plumbing, data accessors, observability. Everything a specific engine
    kind does differently lives behind {!type-ops}, a record of strategy
    functions dispatched through [t.strat]; one value of it per kind is
    provided by the variant modules:

    - {!no_logging} (here) — in-place writes, no rollback;
    - {!Undo_variant.ops} — undo-log snapshots in the critical path;
    - {!Cow_variant.ops} — copy-on-write working copies, commit-time
      copy-back;
    - {!Kamino_variant.simple} / {!Kamino_variant.dynamic} — the paper's
      contribution: intent records + in-place writes + background backup
      propagation;
    - {!Intent_variant.ops} — a non-head chain replica (intent log only).

    The state records ([t], [tx], [irec]) are transparent: variants are
    part of the engine's trusted core, not external plugins — they mutate
    the shared scratch directly because the split must cost zero simulated
    nanoseconds and zero allocations versus the former monolith (the
    differential oracle in test_variant_oracle.ml holds it to that).

    Everything here is re-exported through {!Engine}; user code should not
    depend on this module directly. *)

module Region = Kamino_nvm.Region
module Cost_model = Kamino_nvm.Cost_model
module Clock = Kamino_sim.Clock
module Rng = Kamino_sim.Rng
module Heap = Kamino_heap.Heap
module Obs = Kamino_obs.Obs
module Metrics = Kamino_obs.Metrics

type kind =
  | No_logging
  | Undo_logging
  | Cow
  | Kamino_simple
  | Kamino_dynamic of { alpha : float; policy : Backup.policy }
  | Intent_only

val kind_name : kind -> string

type config = {
  heap_bytes : int;
  log_slots : int;
  max_tx_entries : int;
  data_log_bytes : int;
  cost : Cost_model.t;
  crash_mode : Region.crash_mode;
  check_intents : bool;
  flush_per_intent : bool;
  global_pending : bool;
  coalesce_writes : bool;
  lock_shards : int;
}

val default_config : config

(** {1 Typed errors}

    Engine-state misuse raises [Error] with a variant the shard and chaos
    layers can match on (the former interface raised bare [Failure]
    strings). Programming errors against the heap API (freeing an
    unallocated pointer, a field range outside its object) remain
    [Invalid_argument]. *)

type error =
  | Tx_already_active  (** [begin_tx] while a transaction is active *)
  | Tx_finished  (** operation on a committed/aborted/crashed handle *)
  | Tx_not_active  (** stale handle: a different transaction is active *)
  | Intent_log_exhausted of string
      (** no free slot and no way to make one; the payload says where *)
  | Missing_intent of { off : int; len : int }
      (** transactional write not covered by a declared intent *)
  | Abort_unsupported of kind
      (** the kind cannot roll back locally (no-logging, chain replicas) *)
  | Component_missing of string
      (** the kind has no such component (e.g. data log on Kamino) *)
  | Unsupported of string  (** operation undefined for the kind *)

exception Error of error

val error_message : error -> string

(** [error e] raises [Error e]. *)
val error : error -> 'a

(** {1 Shared state} *)

(** One declared write intent of the active transaction. *)
type irec = {
  mutable r_off : int;
  mutable r_len : int;
  mutable r_key : int;  (** write-lock key (owning object's extent) *)
  mutable cow : Data_log.entry option;  (** CoW working copy, if redirected *)
}

type t = {
  mutable e_kind : kind;
  mutable strat : ops;  (** the kind's strategy; swapped on promotion *)
  e_config : config;
  main : Region.t;
  mutable heap : Heap.t;
  ilog_region : Region.t option;
  mutable ilog : Intent_log.t option;
  dlog_region : Region.t option;
  mutable dlog : Data_log.t option;
  mutable bkp : Backup.t option;
  mutable locks : Locks.t;
  mutable appl : Applier.t option;
  mutable clk : Clock.t;
  rng : Rng.t;
  mutable next_tx_id : int;
  mutable active : tx option;
  e_obs : Obs.t;
  obs_base : int;
  reg : Metrics.t;
  m_committed : Metrics.counter;
  m_aborted : Metrics.counter;
  m_ranges_coalesced : Metrics.counter;
  m_bytes_saved : Metrics.counter;
  h_dep_wait : Metrics.hist;
  h_applier_lag : Metrics.hist;
  h_queue_depth : Metrics.hist;
  m_snapshot_hits : Metrics.counter;
  m_snapshot_fallbacks : Metrics.counter;
  h_snapshot_staleness : Metrics.hist;
  mutable last_commit_ns : int;
      (** commit sim-ns of the most recent commit — snapshot staleness is
          [last_commit_ns - watermark_ns] at read time *)
  mutable last_write_keys : int list;
  mutable all_regions : Region.t array;
  mutable ws : irec array;  (** pooled write set, [0 .. ws_n-1] live *)
  mutable ws_n : int;
  mutable ws_cow_n : int;  (** entries carrying a CoW redirection *)
}

and tx = {
  owner : t;
  id : int;
  t_begin : int;
  mutable slot : Intent_log.slot option;
  mutable lock_keys : int list;
  mutable lock_entries : Locks.entry list;
  mutable read_entries : Locks.entry list;
  mutable needs_barrier : bool;
  mutable prepared : bool;
  mutable finished : bool;
}

(** The strategy record. The shell has already done the kind-independent
    part of each operation (active-tx check, lock acquisition, scratch
    bookkeeping) when a hook runs; hooks own only the per-kind durability
    logic. *)
and ops = {
  v_object_granular : bool;
      (** [add_field] declares the whole owning object (dynamic backups
          track copies per object, as in the paper) *)
  v_begin : t -> tx_id:int -> unit;
      (** kind-specific begin work (e.g. open a data-log transaction);
          runs after the tx-overhead charge, before the [tx] record
          exists *)
  v_claim_slot : t -> tx -> Intent_log.slot;
      (** obtain a free intent-log slot, resolving exhaustion the kind's
          way (drain the applier vs. fail) *)
  v_declare :
    t ->
    tx ->
    le:Locks.entry ->
    off:int ->
    len:int ->
    redirectable:bool ->
    Data_log.entry option;
      (** per-kind declare work after the write lock is held: snapshot /
          working copy / backup ensure + intent append. Returns the CoW
          redirection for the new write-set entry, if any. *)
  v_pre_free : t -> tx -> Heap.range -> unit;
      (** runs before [free] declares the deallocator's ranges (CoW folds
          the working copy back into place here) *)
  v_barrier : t -> tx -> unit;
      (** make the kind's log durable (intent-log slot vs. data log) *)
  v_commit : t -> tx -> unit;
      (** durable atomic commit; must end by releasing the transaction's
          locks at the kind's write-release time *)
  v_abort : t -> tx -> unit;  (** roll back; raises on kinds that cannot *)
  v_prepare : t -> tx -> unit;
      (** two-phase prepare: make the write set durable without deciding
          the outcome (Kamino kinds only; others raise [Unsupported]) *)
  v_commit_prepared : t -> tx -> unit;
      (** second half of {!v_commit} after {!v_prepare}: mark committed,
          enqueue propagation, release locks *)
  v_recover : t -> promote_running:(int -> bool) -> unit;
      (** post-crash recovery after the shell reopened the heap.
          [promote_running id] tells the kind to roll a [Running] record
          of transaction [id] {e forward} instead of back — the sharded
          commit marker's all-or-nothing decision. *)
}

(** {1 Component access} *)

val the_ilog : t -> Intent_log.t

val the_dlog : t -> Data_log.t

val the_bkp : t -> Backup.t

val the_appl : t -> Applier.t

(** {1 Kind-generic helpers} *)

val cost : t -> Cost_model.t

val uses_intent_log : kind -> bool

val uses_data_log : kind -> bool

(** Raises {!Error} unless [tx] is the engine's active transaction. *)
val active_tx : tx -> unit

(** Index of the most recent write-set entry covering [len] bytes at
    [abs], or [-1]. *)
val covering_idx : t -> int -> int -> int

(** Index of the write-set entry whose range starts at [off], or [-1]. *)
val ws_find_off : t -> int -> int

(** Claim the next pooled write-set record. *)
val ws_push :
  t -> off:int -> len:int -> key:int -> cow:Data_log.entry option -> irec

(** Make everything appended to this transaction's log durable, once
    (dispatches to {!field-v_barrier}). *)
val do_barrier : tx -> unit

(** Flush the write set's ranges against the main heap, fencing iff at
    least one range was selected. *)
val persist_ws : t -> in_place_only:bool -> unit

(** Intent-log slot of [tx], claimed on first use (dispatches to
    {!field-v_claim_slot}). *)
val claim_slot : tx -> Intent_log.slot

(** Append a write intent, merging into the preceding entry when
    [mergeable] (exact unions only — see the implementation's safety
    argument). *)
val log_intent : t -> Intent_log.slot -> mergeable:bool -> off:int -> len:int -> unit

(** Coalesce the committed write set for the applier task (exact merges
    plus same-object 64 B line-threshold gap fills). *)
val coalesce_write_set : t -> Intent_log.intent list

val applier_fence_batch : float

(** Modelled applier cost of propagating a committed write set. *)
val task_cost : Cost_model.t -> Intent_log.intent list -> float

(** Dynamic-backup eviction pin predicate. *)
val pinned : t -> int -> bool

(** Aggregate NVM counters over every region of the stack. *)
val main_counters : t -> Region.counters

(** Total NVM footprint of the stack in bytes. *)
val storage_bytes : t -> int

(** Apply every queued backup task. *)
val drain_backup : t -> unit

(** Drain, then check that the backup agrees with the main heap. *)
val verify_backup : t -> (unit, string) result

val release_all : tx -> write_release:int -> unit

val finish : tx -> unit

(** The batching backup applier (see the implementation's merge-safety
    argument). *)
val make_applier : t -> Applier.t

(** {1 Shared per-family paths} *)

(** Abort for the data-log kinds: replay durable undo snapshots newest
    first, persist, close the log transaction, release. *)
val data_log_abort : t -> tx -> unit

(** Recovery for the data-log kinds: restore undo snapshots ([Running])
    or replay commit-time copies ([Applying]). *)
val data_log_recover : t -> unit

(** {1 The trivial baseline} *)

(** No-op [v_pre_free], shared by every non-CoW variant. *)
val no_op_pre_free : t -> tx -> Heap.range -> unit

(** [unsupported what] is a hook that raises [Error (Unsupported what)]. *)
val unsupported : string -> t -> tx -> 'a

(** The [No_logging] strategy: durable but not atomic (Figure 1's
    motivation baseline). *)
val no_logging : ops
