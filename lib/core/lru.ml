type node = {
  key : int;
  mutable prev : node option;  (* towards MRU *)
  mutable next : node option;  (* towards LRU *)
}

type t = {
  table : (int, node) Hashtbl.t;
  mutable mru : node option;
  mutable lru : node option;
}

(* [size_hint] pre-sizes the key table: at millions of resident copies the
   default 1024 buckets would force a cascade of doubling rehashes while
   reattaching after a crash. *)
let create ?(size_hint = 1024) () =
  { table = Hashtbl.create (max 16 size_hint); mru = None; lru = None }

let length t = Hashtbl.length t.table

let mem t key = Hashtbl.mem t.table key

let unlink t n =
  (match n.prev with
  | Some p -> p.next <- n.next
  | None -> t.mru <- n.next);
  (match n.next with
  | Some s -> s.prev <- n.prev
  | None -> t.lru <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.mru;
  n.prev <- None;
  (match t.mru with Some m -> m.prev <- Some n | None -> t.lru <- Some n);
  t.mru <- Some n

let touch t key =
  match Hashtbl.find_opt t.table key with
  | Some n ->
      unlink t n;
      push_front t n
  | None ->
      let n = { key; prev = None; next = None } in
      Hashtbl.add t.table key n;
      push_front t n

let remove t key =
  match Hashtbl.find_opt t.table key with
  | Some n ->
      unlink t n;
      Hashtbl.remove t.table key
  | None -> ()

let evict_candidate t ~locked =
  let rec walk = function
    | None -> None
    | Some n -> if locked n.key then walk n.prev else Some n.key
  in
  walk t.lru

let iter_lru_order t f =
  let rec walk = function
    | None -> ()
    | Some n ->
        f n.key;
        walk n.prev
  in
  walk t.lru
