module Region = Kamino_nvm.Region
module Cost_model = Kamino_nvm.Cost_model

(* Persistent open-addressing hash table with crash-safe incremental
   resize.

   Layout: the header keeps the magic at word 0 and a packed state word at
   word 1: [cap | doublings << 48 | armed << 62]. A table that has never
   resized stores exactly its capacity there — bit-for-bit what the
   fixed-capacity format wrote — so legacy images decode unchanged and
   opening one charges exactly the same loads as before. The migration
   cursor lives at word 2 and is only ever read when the armed bit is set,
   which keeps the never-resized open path free of extra charged ops (the
   variant oracle pins them).

   Tables live in a geometric chain inside the region: generation [d] has
   capacity [c0 * 2^d] and starts at [64 + 16*c0*(2^d - 1)]. Both the
   active table's offset and the migration target's offset are derivable
   from (c0, d), so the state word alone names the whole on-NVM layout.

   Resize protocol (split-migration):
   - arm: zero + persist the next table's range, persist cursor := 0, then
     persist the state word with the armed bit set. The state-word store is
     the commit point; a crash before it leaves a plain table.
   - migrate: each insert call first copies a small batch of old-table
     buckets into the new table via insert-if-absent (idempotent, so
     replaying a batch after a crash is harmless), then persists the
     cursor. Live inserts go to the new table and tombstone any old copy;
     removes tombstone both tables; finds probe new-then-old.
   - complete: one persisted store of the state word advances the
     generation and clears the armed bit atomically. Recovery (open) of an
     armed image just finishes the remaining batches and completes. *)

type t = {
  region : Region.t;
  mutable cap : int; (* active table capacity (power of two) *)
  mutable mask : int;
  mutable off : int; (* active table start *)
  mutable doublings : int; (* completed resizes *)
  mutable mig : int; (* migration cursor; -1 when not armed *)
  mutable ncap : int; (* migration target, valid when mig >= 0 *)
  mutable nmask : int;
  mutable noff : int;
  mutable count : int;
}

exception Overload of { capacity : int; count : int }

let magic_value = 0x4B54484153485631L (* "KTHASHV1" *)

let magic_off = 0
let state_off = 8
let mig_cursor_off = 16
let entries_start = 64

let empty_key = 0L
let tombstone_key = -1L

let armed_bit = 1 lsl 62
let cap_mask = (1 lsl 48) - 1
let migrate_batch = 8

let encode_state ~cap ~d ~armed =
  cap lor (d lsl 48) lor (if armed then armed_bit else 0)

let rec pow2_at_least n acc = if acc >= n then acc else pow2_at_least n (acc * 2)

let chain_size ~capacity ~doublings =
  let c0 = pow2_at_least capacity 16 in
  entries_start + (c0 * 16 * ((1 lsl (doublings + 1)) - 1))

let required_size ~capacity = chain_size ~capacity ~doublings:0

let slot_off off i = off + (i * 16)

let format region ~capacity =
  let capacity = pow2_at_least capacity 16 in
  if Region.size region < required_size ~capacity then
    invalid_arg "Phash.format: region too small";
  Region.write_int64 region magic_off magic_value;
  Region.write_int region state_off (encode_state ~cap:capacity ~d:0 ~armed:false);
  (* Zero the bucket array (fresh regions are zeroed already, but reformats
     of reused regions are not). *)
  Region.fill region entries_start (capacity * 16) 0;
  Region.persist_all region;
  {
    region;
    cap = capacity;
    mask = capacity - 1;
    off = entries_start;
    doublings = 0;
    mig = -1;
    ncap = 0;
    nmask = 0;
    noff = 0;
    count = 0;
  }

let capacity t = t.cap

let region t = t.region

let count t = t.count

let migrations t = t.doublings

let resizing t = t.mig >= 0

let hash key =
  let z = Int64.of_int key in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.to_int (Int64.logand z 0x3FFFFFFFFFFFFFFFL)

let charge_index t = Region.charge t.region (Region.cost_model t.region).Cost_model.index_ns

(* Raw probes over one table of the chain. *)

let find_in t off cap mask key =
  let start = hash key land mask in
  let rec probe i steps =
    if steps > cap then -1
    else begin
      let o = slot_off off i in
      let k = Region.read_int64 t.region o in
      if k = empty_key then -1
      else if k = Int64.of_int key then Region.read_int t.region (o + 8)
      else probe ((i + 1) land mask) (steps + 1)
    end
  in
  probe start 0

let tombstone_in t off cap mask key =
  let start = hash key land mask in
  let rec probe i steps =
    if steps > cap then false
    else begin
      let o = slot_off off i in
      let k = Region.read_int64 t.region o in
      if k = empty_key then false
      else if k = Int64.of_int key then begin
        Region.write_int64 t.region o tombstone_key;
        Region.persist t.region o 8;
        true
      end
      else probe ((i + 1) land mask) (steps + 1)
    end
  in
  probe start 0

(* Upsert into the table at [off]: overwrite in place if present, else
   publish value-then-key at the first reusable slot. Returns [true] when a
   new entry was created (as opposed to an overwrite). *)
let upsert_in t off cap mask key value =
  let start = hash key land mask in
  let rec probe i steps first_tomb =
    if steps > cap then raise (Overload { capacity = cap; count = t.count })
    else begin
      let o = slot_off off i in
      let k = Region.read_int64 t.region o in
      if k = Int64.of_int key then begin
        (* Overwrite in place: publish the new value with a persist; the key
           word is untouched so the entry is never half-visible. *)
        Region.write_int t.region (o + 8) value;
        Region.persist t.region o 16;
        false
      end
      else if k = empty_key then begin
        let slot = match first_tomb with Some s -> s | None -> o in
        Region.write_int t.region (slot + 8) value;
        Region.persist t.region slot 16;
        Region.write_int t.region slot key;
        Region.persist t.region slot 16;
        true
      end
      else begin
        let first_tomb =
          if k = tombstone_key && first_tomb = None then Some o else first_tomb
        in
        probe ((i + 1) land mask) (steps + 1) first_tomb
      end
    end
  in
  probe start 0 None

(* Insert-if-absent into the migration target: the idempotent step that
   makes batch replay after a crash harmless. A key already present keeps
   its (fresher) value. *)
let migrate_entry t key value =
  let start = hash key land t.nmask in
  let rec probe i steps first_tomb =
    if steps > t.ncap then raise (Overload { capacity = t.ncap; count = t.count })
    else begin
      let o = slot_off t.noff i in
      let k = Region.read_int64 t.region o in
      if k = Int64.of_int key then ()
      else if k = empty_key then begin
        let slot = match first_tomb with Some s -> s | None -> o in
        Region.write_int t.region (slot + 8) value;
        Region.persist t.region slot 16;
        Region.write_int t.region slot key;
        Region.persist t.region slot 16
      end
      else begin
        let first_tomb =
          if k = tombstone_key && first_tomb = None then Some o else first_tomb
        in
        probe ((i + 1) land t.nmask) (steps + 1) first_tomb
      end
    end
  in
  probe start 0 None

let complete t =
  Region.write_int t.region state_off
    (encode_state ~cap:t.ncap ~d:(t.doublings + 1) ~armed:false);
  Region.persist t.region state_off 8;
  t.cap <- t.ncap;
  t.mask <- t.nmask;
  t.off <- t.noff;
  t.doublings <- t.doublings + 1;
  t.ncap <- 0;
  t.nmask <- 0;
  t.noff <- 0;
  t.mig <- -1

let migrate_step t =
  let stop = min (t.mig + migrate_batch) t.cap in
  for i = t.mig to stop - 1 do
    let o = slot_off t.off i in
    let k = Region.read_int64 t.region o in
    if k <> empty_key && k <> tombstone_key then
      migrate_entry t (Int64.to_int k) (Region.read_int t.region (o + 8))
  done;
  Region.write_int t.region mig_cursor_off stop;
  Region.persist t.region mig_cursor_off 8;
  t.mig <- stop;
  if stop >= t.cap then complete t

(* Arm a 2x resize if the region has room for the next table in the chain;
   silently a no-op when it does not (the table then degrades to the
   explicit [Overload] once genuinely full). *)
let try_arm t =
  let noff = t.off + (t.cap * 16) in
  let ncap = t.cap * 2 in
  if noff + (ncap * 16) <= Region.size t.region then begin
    Region.fill t.region noff (ncap * 16) 0;
    Region.persist t.region noff (ncap * 16);
    Region.write_int t.region mig_cursor_off 0;
    Region.persist t.region mig_cursor_off 8;
    Region.write_int t.region state_off
      (encode_state ~cap:t.cap ~d:t.doublings ~armed:true);
    Region.persist t.region state_off 8;
    t.ncap <- ncap;
    t.nmask <- ncap - 1;
    t.noff <- noff;
    t.mig <- 0
  end

let insert t ~key ~value =
  if key <= 0 then invalid_arg "Phash.insert: keys must be positive";
  charge_index t;
  if t.mig < 0 && t.count + 1 > t.cap - (t.cap lsr 3) then try_arm t;
  if t.mig >= 0 then begin
    migrate_step t;
    if t.mig >= 0 then begin
      (* Publish into the target first, then tombstone any live old copy so
         a replayed migration batch cannot resurrect the stale value. A
         crash between the two leaves both copies live; finds prefer the
         target and insert-if-absent skips the stale one. *)
      if upsert_in t t.noff t.ncap t.nmask key value then
        if not (tombstone_in t t.off t.cap t.mask key) then t.count <- t.count + 1
    end
    else if upsert_in t t.off t.cap t.mask key value then t.count <- t.count + 1
  end
  else if upsert_in t t.off t.cap t.mask key value then t.count <- t.count + 1

let find t ~key =
  charge_index t;
  if t.mig >= 0 then begin
    match find_in t t.noff t.ncap t.nmask key with
    | -1 -> (
        match find_in t t.off t.cap t.mask key with -1 -> None | v -> Some v)
    | v -> Some v
  end
  else match find_in t t.off t.cap t.mask key with -1 -> None | v -> Some v

let find_or t ~key ~default =
  charge_index t;
  if t.mig >= 0 then begin
    match find_in t t.noff t.ncap t.nmask key with
    | -1 -> (
        match find_in t t.off t.cap t.mask key with -1 -> default | v -> v)
    | v -> v
  end
  else match find_in t t.off t.cap t.mask key with -1 -> default | v -> v

let remove t ~key =
  charge_index t;
  if t.mig >= 0 then begin
    (* Tombstone both copies; a crash between the two leaves the key still
       visible (new-table copy checked first), i.e. the remove atomically
       did not happen. *)
    let in_new = tombstone_in t t.noff t.ncap t.nmask key in
    let in_old = tombstone_in t t.off t.cap t.mask key in
    if in_new || in_old then begin
      t.count <- t.count - 1;
      true
    end
    else false
  end
  else if tombstone_in t t.off t.cap t.mask key then begin
    t.count <- t.count - 1;
    true
  end
  else false

let iter_table t off cap f =
  for i = 0 to cap - 1 do
    let o = slot_off off i in
    let k = Region.read_int64 t.region o in
    if k <> empty_key && k <> tombstone_key then
      f ~key:(Int64.to_int k) ~value:(Region.read_int t.region (o + 8))
  done

let iter t f =
  if t.mig >= 0 then begin
    (* Live set = target ∪ (active \ target): the target copy wins for keys
       present in both (it is at least as fresh). *)
    iter_table t t.noff t.ncap f;
    iter_table t t.off t.cap (fun ~key ~value ->
        if find_in t t.noff t.ncap t.nmask key = -1 then f ~key ~value)
  end
  else iter_table t t.off t.cap f

let iter_table_rev t off cap f =
  for i = cap - 1 downto 0 do
    let o = slot_off off i in
    let k = Region.read_int64 t.region o in
    if k <> empty_key && k <> tombstone_key then
      f ~key:(Int64.to_int k) ~value:(Region.read_int t.region (o + 8))
  done

let iter_rev t f =
  if t.mig >= 0 then begin
    iter_table_rev t t.noff t.ncap f;
    iter_table_rev t t.off t.cap (fun ~key ~value ->
        if find_in t t.noff t.ncap t.nmask key = -1 then f ~key ~value)
  end
  else iter_table_rev t t.off t.cap f

let rebuild_count t =
  let n = ref 0 in
  for i = 0 to t.cap - 1 do
    let k = Region.read_int64 t.region (slot_off t.off i) in
    if k <> empty_key && k <> tombstone_key then incr n
  done;
  t.count <- !n

let open_existing reg =
  if Region.read_int64 reg magic_off <> magic_value then
    failwith "Phash.open_existing: bad magic";
  let state = Region.read_int reg state_off in
  let armed = state land armed_bit <> 0 in
  let d = (state lsr 48) land 0x3FFF in
  let cap = state land cap_mask in
  let c0 = cap asr d in
  let off = entries_start + ((cap - c0) * 16) in
  let t =
    {
      region = reg;
      cap;
      mask = cap - 1;
      off;
      doublings = d;
      mig = -1;
      ncap = 0;
      nmask = 0;
      noff = 0;
      count = 0;
    }
  in
  if armed then begin
    (* Finish the interrupted migration eagerly: every batch is
       insert-if-absent, so replaying the batch that was in flight at the
       crash is harmless. The cursor word is only read on this path. *)
    t.ncap <- cap * 2;
    t.nmask <- t.ncap - 1;
    t.noff <- off + (cap * 16);
    t.mig <- Region.read_int reg mig_cursor_off;
    while t.mig >= 0 do
      migrate_step t
    done
  end;
  rebuild_count t;
  t
