module Region = Kamino_nvm.Region
module Cost_model = Kamino_nvm.Cost_model

type t = { region : Region.t; capacity : int; mask : int; mutable count : int }

let magic_value = 0x4B54484153485631L (* "KTHASHV1" *)

let magic_off = 0
let capacity_off = 8
let entries_start = 64

let empty_key = 0L
let tombstone_key = -1L

let rec pow2_at_least n acc = if acc >= n then acc else pow2_at_least n (acc * 2)

let required_size ~capacity = entries_start + (pow2_at_least capacity 16 * 16)

let entry_off _t i = entries_start + (i * 16)

let format region ~capacity =
  let capacity = pow2_at_least capacity 16 in
  if Region.size region < required_size ~capacity then
    invalid_arg "Phash.format: region too small";
  Region.write_int64 region magic_off magic_value;
  Region.write_int region capacity_off capacity;
  (* Zero the bucket array (fresh regions are zeroed already, but reformats
     of reused regions are not). *)
  Region.fill region entries_start (capacity * 16) 0;
  Region.persist_all region;
  { region; capacity; mask = capacity - 1; count = 0 }

let rebuild_count t =
  let n = ref 0 in
  for i = 0 to t.capacity - 1 do
    let k = Region.read_int64 t.region (entry_off t i) in
    if k <> empty_key && k <> tombstone_key then incr n
  done;
  t.count <- !n

let open_existing region =
  if Region.read_int64 region magic_off <> magic_value then
    failwith "Phash.open_existing: bad magic";
  let capacity = Region.read_int region capacity_off in
  let t = { region; capacity; mask = capacity - 1; count = 0 } in
  rebuild_count t;
  t

let capacity t = t.capacity

let region t = t.region

let count t = t.count

let hash key =
  let z = Int64.of_int key in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.to_int (Int64.logand z 0x3FFFFFFFFFFFFFFFL)

let charge_index t = Region.charge t.region (Region.cost_model t.region).Cost_model.index_ns

let insert t ~key ~value =
  if key <= 0 then invalid_arg "Phash.insert: keys must be positive";
  charge_index t;
  let start = hash key land t.mask in
  let rec probe i steps first_tomb =
    if steps > t.capacity then failwith "Phash.insert: table full"
    else begin
      let off = entry_off t i in
      let k = Region.read_int64 t.region off in
      if k = Int64.of_int key then begin
        (* Overwrite in place: publish the new value with a persist; the key
           word is untouched so the entry is never half-visible. *)
        Region.write_int t.region (off + 8) value;
        Region.persist t.region off 16
      end
      else if k = empty_key then begin
        let slot = match first_tomb with Some s -> s | None -> off in
        Region.write_int t.region (slot + 8) value;
        Region.persist t.region slot 16;
        Region.write_int t.region slot key;
        Region.persist t.region slot 16;
        t.count <- t.count + 1
      end
      else begin
        let first_tomb =
          if k = tombstone_key && first_tomb = None then Some off else first_tomb
        in
        probe ((i + 1) land t.mask) (steps + 1) first_tomb
      end
    end
  in
  probe start 0 None

let find t ~key =
  charge_index t;
  let start = hash key land t.mask in
  let rec probe i steps =
    if steps > t.capacity then None
    else begin
      let off = entry_off t i in
      let k = Region.read_int64 t.region off in
      if k = empty_key then None
      else if k = Int64.of_int key then Some (Region.read_int t.region (off + 8))
      else probe ((i + 1) land t.mask) (steps + 1)
    end
  in
  probe start 0

let remove t ~key =
  charge_index t;
  let start = hash key land t.mask in
  let rec probe i steps =
    if steps > t.capacity then false
    else begin
      let off = entry_off t i in
      let k = Region.read_int64 t.region off in
      if k = empty_key then false
      else if k = Int64.of_int key then begin
        Region.write_int64 t.region off tombstone_key;
        Region.persist t.region off 8;
        t.count <- t.count - 1;
        true
      end
      else probe ((i + 1) land t.mask) (steps + 1)
    end
  in
  probe start 0

let iter t f =
  for i = 0 to t.capacity - 1 do
    let off = entry_off t i in
    let k = Region.read_int64 t.region off in
    if k <> empty_key && k <> tombstone_key then
      f ~key:(Int64.to_int k) ~value:(Region.read_int t.region (off + 8))
  done
