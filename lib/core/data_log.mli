(** Persistent data log: the storage behind the two copying baselines.

    Unlike the intent log, entries here carry {e data}. The same arena
    implements both baselines the paper compares against:

    - {b undo logging} (NVML semantics): [add] snapshots the object's
      current bytes before the transaction edits it in place; on abort or
      crash the snapshot is copied back;
    - {b copy-on-write}: [add] creates a working copy; the transaction's
      writes are redirected into the copy; on commit the copies are applied
      to the originals (a redo log, NVM-CoW style), on abort they are
      discarded.

    Either way the copy is created {e in the critical path} — the cost
    Kamino-Tx exists to remove. Every [add] charges allocator, indexing and
    copy costs, and the arena is persisted with a single flush+fence barrier
    before the first dependent write, mirroring the intent log discipline.

    Crash safety uses the same torn-record defence as the intent log:
    per-entry checksums keyed by the transaction id (over header {e and}
    payload bytes), and an end-of-transaction header reset whose single-line
    flush is atomic. *)

type t

type phase = Idle | Running | Applying

(** When an entry's payload is copied back over the main heap:
    [On_abort] for undo-style snapshots (also used by the CoW engine for
    allocator metadata, which is edited in place), [On_commit] for CoW
    working copies (redo-style). Recovery applies [On_abort] entries of a
    [Running] record and [On_commit] entries of an [Applying] record. *)
type replay = On_abort | On_commit

type entry = { off : int; len : int; payload_off : int; replay : replay }

val required_size : arena_bytes:int -> int

val format : Kamino_nvm.Region.t -> t

val open_existing : Kamino_nvm.Region.t -> t

(** [begin_tx t ~tx_id] starts building a record. The header becomes durable
    at the first {!barrier}. Raises [Failure] if a transaction is already
    active. *)
val begin_tx : t -> tx_id:int -> unit

(** [add t ~off ~len ~replay ~src] appends an entry covering main-heap
    range [off,len] and fills its payload from region [src] (a snapshot for
    undo, the initial working copy for CoW). Returns the entry. Raises
    [Failure] if the arena is exhausted. *)
val add : t -> off:int -> len:int -> replay:replay -> src:Kamino_nvm.Region.t -> entry

(** [payload_write] / [payload_read]: access an entry's payload through the
    log region — the CoW engine redirects transaction reads and writes
    here. Offsets are relative to the covered main-heap range. *)
val payload_write_bytes : t -> entry -> int -> bytes -> unit

val payload_write_string : t -> entry -> int -> string -> unit

val payload_write_int64 : t -> entry -> int -> int64 -> unit

val payload_write_int : t -> entry -> int -> int -> unit

val payload_write_byte : t -> entry -> int -> int -> unit

val payload_read_bytes : t -> entry -> int -> int -> bytes

val payload_read_string : t -> entry -> int -> int -> string

val payload_read_int64 : t -> entry -> int -> int64

val payload_read_int : t -> entry -> int -> int

val payload_read_byte : t -> entry -> int -> int

(** [reseal t entry] recomputes the entry's checksum after its payload was
    modified (CoW writes). Cheap; durable at the next {!barrier}. *)
val reseal : t -> entry -> unit

(** [barrier t] persists everything appended or modified since the last
    barrier (one flush batch + one fence). *)
val barrier : t -> unit

(** [mark_applying t] durably switches the record to the [Applying] phase —
    the CoW redo point: after this, recovery re-applies the copies. *)
val mark_applying : t -> unit

(** [finish t] ends the transaction: resets and persists the header
    (single-line atomic flush) and recycles the arena. *)
val finish : t -> unit

(** [active_entries t] lists the current transaction's entries. *)
val active_entries : t -> entry list

(** {1 Recovery} *)

val phase : t -> phase

val tx_id : t -> int

(** [recover_entries t] returns the durable, checksum-valid entries of the
    interrupted transaction (possibly fewer than were added, never torn). *)
val recover_entries : t -> entry list

(** [apply_entry t entry ~dst] copies the entry's payload back over the
    main-heap range in [dst] (undo roll-back, or CoW redo). The caller
    persists [dst]. *)
val apply_entry : t -> entry -> dst:Kamino_nvm.Region.t -> unit

(** Cumulative count of entries ever created — the "copies made in the
    critical path" metric reported by the ablation benches. *)
val entries_created : t -> int
