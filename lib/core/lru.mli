(** Volatile least-recently-used queue.

    Tracks recency of updates to objects held in the dynamic backup region
    (§6.4). Purely volatile — after a crash it is rebuilt empty, the
    persistent {!Phash} being the source of truth for which copies exist.

    Eviction skips keys the caller marks as locked: "locked objects are
    never evicted to ensure safety, that is pending objects are never
    candidates for eviction". *)

type t

(** [create ?size_hint ()] — [size_hint] pre-sizes the internal key table
    (e.g. to the backup table's capacity) so large reattaches avoid
    rehashing cascades. *)
val create : ?size_hint:int -> unit -> t

val length : t -> int

val mem : t -> int -> bool

(** [touch t key] inserts [key] as most-recently-used, or moves it there. *)
val touch : t -> int -> unit

(** [remove t key] drops the key if present. *)
val remove : t -> int -> unit

(** [evict_candidate t ~locked] returns the least-recently-used key for
    which [locked key] is false, without removing it. [None] if every
    resident key is locked (or the queue is empty). *)
val evict_candidate : t -> locked:(int -> bool) -> int option

(** [iter_lru_order t f] visits keys from least to most recently used. *)
val iter_lru_order : t -> (int -> unit) -> unit
