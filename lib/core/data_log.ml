module Region = Kamino_nvm.Region
module Cost_model = Kamino_nvm.Cost_model
module Clock = Kamino_sim.Clock

type phase = Idle | Running | Applying

type replay = On_abort | On_commit

type entry = { off : int; len : int; payload_off : int; replay : replay }

type t = {
  region : Region.t;
  mutable active : bool;
  mutable bump : int;  (* next free arena offset, reset per transaction *)
  mutable entries : entry list;  (* reverse order *)
  mutable unflushed : (int * int) option;  (* dirty span awaiting barrier *)
  mutable created : int;
  (* Header writes are deferred to the first [add] so read-only
     transactions never touch the log region (NVML's undo log is likewise
     untouched until the first TX_ADD). *)
  mutable header_written : bool;
  mutable cur_tx_id : int;
  (* The log is one shared structure: concurrent transactions serialize on
     its tail (NVML's undo log behaves the same way), which is what keeps
     the copying baselines from scaling with client threads (Figure 12).
     [shared_now] is the virtual time at which the last append finished. *)
  mutable shared_now : int;
}

let magic_value = 0x4B54444154415631L (* "KTDATAV1" *)

let magic_off = 0
let phase_off = 8
let txid_off = 16
let count_off = 24
let arena_start = 64

let entry_header_size = 32

(* Entry header words, relative to entry start. *)
let eh_off = 0
let eh_len = 8
let eh_check = 16
let eh_replay = 24

let replay_to_int = function On_abort -> 1 | On_commit -> 2

let replay_of_int = function
  | 1 -> Some On_abort
  | 2 -> Some On_commit
  | _ -> None

let phase_to_int = function Idle -> 0 | Running -> 1 | Applying -> 2

let phase_of_int = function
  | 0 -> Idle
  | 1 -> Running
  | 2 -> Applying
  | n -> failwith (Printf.sprintf "Data_log: corrupt phase %d" n)

let required_size ~arena_bytes = arena_start + arena_bytes

let align8 n = (n + 7) land lnot 7

let format region =
  Region.write_int64 region magic_off magic_value;
  Region.write_int region phase_off (phase_to_int Idle);
  Region.write_int region txid_off 0;
  Region.write_int region count_off 0;
  Region.persist region 0 arena_start;
  { region; active = false; bump = arena_start; entries = []; unflushed = None; created = 0;
    header_written = false; cur_tx_id = 0; shared_now = 0 }

let open_existing region =
  if Region.read_int64 region magic_off <> magic_value then
    failwith "Data_log.open_existing: bad magic";
  { region; active = false; bump = arena_start; entries = []; unflushed = None; created = 0;
    header_written = false; cur_tx_id = 0; shared_now = 0 }

let phase t = phase_of_int (Region.read_int t.region phase_off)

let tx_id t = Region.read_int t.region txid_off

(* Payload checksum folded into the entry tag; must be a pure function of
   the payload bytes so recovery can recompute it. *)
let payload_sum t payload_off len =
  let b = Region.read_bytes t.region payload_off len in
  let acc = ref 0L in
  for i = 0 to len - 1 do
    acc :=
      Int64.add
        (Int64.mul !acc 1099511628211L)
        (Int64.of_int (Bytes.get_uint8 b i + 1))
  done;
  !acc

let check_of ~tx_id ~off ~len ~replay ~sum =
  let r = replay_to_int replay in
  let z =
    Int64.add 0x5A17EDC0DE5EEDL
      (Int64.add sum
         (Int64.of_int ((((tx_id * 1000003) lxor (off * 31)) + (len * 17)) lxor (r * 8191))))
  in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  Int64.logxor z (Int64.shift_right_logical z 27)

let note_unflushed t lo hi =
  match t.unflushed with
  | Some (l, h) -> t.unflushed <- Some (min l lo, max h hi)
  | None -> t.unflushed <- Some (lo, hi)

let begin_tx t ~tx_id =
  if t.active then failwith "Data_log.begin_tx: a transaction is already active";
  t.active <- true;
  t.bump <- arena_start;
  t.entries <- [];
  t.cur_tx_id <- tx_id;
  t.header_written <- false

let ensure_header t =
  if not t.header_written then begin
    Region.write_int t.region phase_off (phase_to_int Running);
    Region.write_int t.region txid_off t.cur_tx_id;
    Region.write_int t.region count_off 0;
    note_unflushed t 0 32;
    t.header_written <- true
  end

let seal t entry =
  let sum = payload_sum t entry.payload_off entry.len in
  let check =
    check_of ~tx_id:(tx_id t) ~off:entry.off ~len:entry.len ~replay:entry.replay ~sum
  in
  Region.write_int64 t.region (entry.payload_off - entry_header_size + eh_check) check

let add t ~off ~len ~replay ~src =
  if not t.active then failwith "Data_log.add: no active transaction";
  ensure_header t;
  (* Serialize on the shared log tail. *)
  let clock = Region.clock t.region in
  ignore (Clock.advance_to clock t.shared_now);
  let cost = Region.cost_model t.region in
  (* The copying baselines pay log-entry management for every copy they
     create — the allocate/index/deallocate instruction overhead the paper
     measures (NVML allocates log entries from a transactional pool). *)
  Region.charge t.region cost.Cost_model.log_entry_ns;
  let start = t.bump in
  let payload_off = start + entry_header_size in
  let entry_end = align8 (payload_off + len) in
  if entry_end > Region.size t.region then failwith "Data_log.add: arena exhausted";
  t.bump <- entry_end;
  Region.write_int t.region (start + eh_off) off;
  Region.write_int t.region (start + eh_len) len;
  Region.write_int t.region (start + eh_replay) (replay_to_int replay);
  Region.copy_between ~src ~src_off:off ~dst:t.region ~dst_off:payload_off ~len;
  let entry = { off; len; payload_off; replay } in
  seal t entry;
  Region.write_int t.region count_off (List.length t.entries + 1);
  t.entries <- entry :: t.entries;
  t.created <- t.created + 1;
  note_unflushed t 0 entry_end;
  (* NVML persists each snapshot as it is taken (the write may follow
     immediately), so every add pays its own flush + fence. Small ranges go
     through the serializing CLFLUSH path; larger ones use non-temporal
     stores, whose persistence cost is the copy bandwidth already charged
     plus the fence. *)
  (match t.unflushed with
  | Some (lo, hi) ->
      let lines = ((hi - 1) / 64) - (lo / 64) + 1 in
      if lines <= 4 then
        Region.charge t.region (cost.Cost_model.clflush_ns *. float_of_int lines);
      Region.persist t.region lo (hi - lo);
      t.unflushed <- None
  | None -> ());
  t.shared_now <- Clock.now clock;
  entry

let payload_write_bytes t entry rel b =
  if rel < 0 || rel + Bytes.length b > entry.len then
    invalid_arg "Data_log.payload_write_bytes: out of entry range";
  Region.write_bytes t.region (entry.payload_off + rel) b;
  note_unflushed t (entry.payload_off + rel) (entry.payload_off + rel + Bytes.length b)

let payload_write_string t entry rel s =
  if rel < 0 || rel + String.length s > entry.len then
    invalid_arg "Data_log.payload_write_string: out of entry range";
  Region.write_string t.region (entry.payload_off + rel) s;
  note_unflushed t (entry.payload_off + rel) (entry.payload_off + rel + String.length s)

let payload_write_int64 t entry rel v =
  if rel < 0 || rel + 8 > entry.len then
    invalid_arg "Data_log.payload_write_int64: out of entry range";
  Region.write_int64 t.region (entry.payload_off + rel) v;
  note_unflushed t (entry.payload_off + rel) (entry.payload_off + rel + 8)

let payload_write_int t entry rel v =
  if rel < 0 || rel + 8 > entry.len then
    invalid_arg "Data_log.payload_write_int: out of entry range";
  Region.write_int t.region (entry.payload_off + rel) v;
  note_unflushed t (entry.payload_off + rel) (entry.payload_off + rel + 8)

let payload_write_byte t entry rel v =
  if rel < 0 || rel + 1 > entry.len then
    invalid_arg "Data_log.payload_write_byte: out of entry range";
  Region.write_byte t.region (entry.payload_off + rel) v;
  note_unflushed t (entry.payload_off + rel) (entry.payload_off + rel + 1)

let payload_read_bytes t entry rel len =
  if rel < 0 || rel + len > entry.len then
    invalid_arg "Data_log.payload_read_bytes: out of entry range";
  Region.read_bytes t.region (entry.payload_off + rel) len

let payload_read_string t entry rel len =
  if rel < 0 || rel + len > entry.len then
    invalid_arg "Data_log.payload_read_string: out of entry range";
  Region.read_string t.region (entry.payload_off + rel) len

let payload_read_int64 t entry rel =
  if rel < 0 || rel + 8 > entry.len then
    invalid_arg "Data_log.payload_read_int64: out of entry range";
  Region.read_int64 t.region (entry.payload_off + rel)

let payload_read_int t entry rel =
  if rel < 0 || rel + 8 > entry.len then
    invalid_arg "Data_log.payload_read_int: out of entry range";
  Region.read_int t.region (entry.payload_off + rel)

let payload_read_byte t entry rel =
  if rel < 0 || rel + 1 > entry.len then
    invalid_arg "Data_log.payload_read_byte: out of entry range";
  Region.read_byte t.region (entry.payload_off + rel)

let reseal t entry =
  seal t entry;
  note_unflushed t (entry.payload_off - entry_header_size) entry.payload_off

let barrier t =
  match t.unflushed with
  | Some (lo, hi) ->
      Region.persist t.region lo (hi - lo);
      t.unflushed <- None
  | None -> ()

let mark_applying t =
  barrier t;
  Region.write_int t.region phase_off (phase_to_int Applying);
  Region.persist t.region phase_off 8

let finish t =
  (* Reset the whole header in one atomic line flush; see the intent log's
     [release] for why a zeroed base state makes torn restarts benign.
     Transactions that never created an entry never wrote the header, so
     the durable state is still Idle and nothing needs persisting. *)
  if t.header_written then begin
    Region.write_int t.region phase_off (phase_to_int Idle);
    Region.write_int t.region txid_off 0;
    Region.write_int t.region count_off 0;
    Region.persist t.region phase_off 24
  end;
  t.active <- false;
  t.entries <- [];
  t.bump <- arena_start;
  t.unflushed <- None;
  t.header_written <- false

let active_entries t = List.rev t.entries

let recover_entries t =
  (* Walk entry headers and validate each entry independently. A
     checksum-invalid entry is SKIPPED, not a stopping point: a CoW working
     copy whose payload was being edited at the crash legitimately fails its
     (commit-time) checksum, while undo snapshots appended after it are
     durable and must still be applied. The walk itself is safe because the
     barrier discipline persists every entry header before the first
     in-place write it covers — an entry with a torn header can only sit at
     the (unbarriered) tail, where no covered write ever reached NVM, so
     stopping there loses nothing. *)
  let n = Region.read_int t.region count_off in
  let txid = tx_id t in
  let size = Region.size t.region in
  let rec walk i pos acc =
    if i >= n then List.rev acc
    else begin
      if pos + entry_header_size > size then List.rev acc
      else begin
        let off = Region.read_int t.region (pos + eh_off) in
        let len = Region.read_int t.region (pos + eh_len) in
        let stored = Region.read_int64 t.region (pos + eh_check) in
        let replay = replay_of_int (Region.read_int t.region (pos + eh_replay)) in
        if len <= 0 || pos + entry_header_size + len > size then List.rev acc
        else begin
          match replay with
          | None -> List.rev acc
          | Some replay ->
              let payload_off = pos + entry_header_size in
              let sum = payload_sum t payload_off len in
              let next = align8 (payload_off + len) in
              if stored <> check_of ~tx_id:txid ~off ~len ~replay ~sum then
                walk (i + 1) next acc
              else walk (i + 1) next ({ off; len; payload_off; replay } :: acc)
        end
      end
    end
  in
  walk 0 arena_start []

let apply_entry t entry ~dst =
  Region.copy_between ~src:t.region ~src_off:entry.payload_off ~dst ~dst_off:entry.off
    ~len:entry.len

let entries_created t = t.created
