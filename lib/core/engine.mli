(** The transaction engine: Kamino-Tx and the three baselines behind one
    API.

    The API mirrors the paper's NVML-derived interface (Table 2): declare
    write intents on whole objects ([add]), allocate and free objects
    transactionally ([alloc] / [free]), read and write fields through the
    engine, then [commit] or [abort]. What happens underneath depends on the
    engine kind:

    - [No_logging]: in-place writes, durable but {e not} atomic — the
      motivation baseline of Figure 1. [abort] raises.
    - [Undo_logging]: NVML semantics — [add] snapshots the object into the
      data log {e in the critical path}; abort/crash restores snapshots.
    - [Cow]: [add] creates a working copy, writes are redirected to it, and
      commit applies the copies to the originals before the locks release
      (still critical-path copying, on the commit side).
    - [Kamino_simple] / [Kamino_dynamic]: the paper's contribution — [add]
      appends an 8-byte-scale intent record, writes go in place, commit
      enqueues the write set to the background {!Applier}, and write locks
      release only when the backup has (virtually) caught up, so only
      dependent transactions ever wait for copying.

    {b Timing model.} All costs are charged to the engine's current
    {!Kamino_sim.Clock}; multi-client experiments switch the clock between
    clients (execution is serial at the data level, overlapped in virtual
    time — see DESIGN.md §6).

    {b Crash discipline.} [crash] simulates power failure on every region;
    [recover] reopens the structures and replays/rolls back from the logs.
    Property tests drive random workloads with crashes at arbitrary points
    and assert that committed transactions survive and uncommitted ones
    vanish. *)

module Heap = Kamino_heap.Heap

type kind = Variant.kind =
  | No_logging
  | Undo_logging
  | Cow
  | Kamino_simple
  | Kamino_dynamic of { alpha : float; policy : Backup.policy }
  | Intent_only
      (** a non-head chain replica (§5): in-place updates guarded only by
          the intent log; recovery of incomplete transactions needs a chain
          neighbour ({!resolve_from_peer}) because there is no local
          backup — the reason Kamino-Tx-Chain needs [f+2] replicas. *)

val kind_name : kind -> string

type config = Variant.config = {
  heap_bytes : int;  (** main heap region size *)
  log_slots : int;  (** intent-log ring capacity (concurrent unapplied txs) *)
  max_tx_entries : int;  (** max write intents per transaction *)
  data_log_bytes : int;  (** undo/CoW arena size *)
  cost : Kamino_nvm.Cost_model.t;
  crash_mode : Kamino_nvm.Region.crash_mode;
  check_intents : bool;
      (** verify every transactional write is covered by a declared intent *)
  flush_per_intent : bool;
      (** ablation: persist each intent individually instead of batching *)
  global_pending : bool;
      (** ablation: treat the whole heap as one pending unit — every
          transaction waits for full backup catch-up (coarse blocking) *)
  coalesce_writes : bool;
      (** coalesce each transaction's write set (sort + merge overlapping
          and adjacent ranges, with a 64 B line-granularity threshold for
          same-object gaps) before it reaches the intent log and the
          applier, and merge consecutive applier tasks into one copy pass
          when draining. Off = the raw per-declare path, for A/B benches. *)
  lock_shards : int;  (** stripe count of the volatile lock table *)
}

val default_config : config

(** {1 Errors}

    Engine-state misuse raises {!Error} with a variant the shard and
    chaos layers can match on. Programming errors against the heap API
    (freeing an unallocated pointer, a field range outside its object)
    remain [Invalid_argument]. *)

type error = Variant.error =
  | Tx_already_active  (** [begin_tx] while a transaction is active *)
  | Tx_finished  (** operation on a committed/aborted/crashed handle *)
  | Tx_not_active  (** stale handle: a different transaction is active *)
  | Intent_log_exhausted of string
      (** no free slot and no way to make one; the payload says where *)
  | Missing_intent of { off : int; len : int }
      (** transactional write not covered by a declared intent (when
          [check_intents]) — missing [TX_ADD] *)
  | Abort_unsupported of kind
      (** the kind cannot roll back locally (no-logging, chain replicas) *)
  | Component_missing of string
      (** the kind has no such component (e.g. data log on Kamino) *)
  | Unsupported of string  (** operation undefined for the kind *)

exception Error of error

val error_message : error -> string

type t

type tx

(** [create ~kind ~seed ()] builds the full stack: main heap, logs, backup,
    lock table, applier. Deterministic from [seed].

    [obs] (default {!Kamino_obs.Obs.null}) attaches an event tracer;
    [obs_track] (default 1) is the engine's base Perfetto track id —
    the engine uses [obs_track] for transaction events, [obs_track + 1]
    for the applier timeline and [obs_track + 2] for NVM write-backs.
    With the default null tracer every instrumentation site reduces to
    one predictable branch: zero allocation, zero simulated-time skew
    (DESIGN.md par10). *)
val create :
  ?config:config ->
  ?obs:Kamino_obs.Obs.t ->
  ?obs_track:int ->
  kind:kind ->
  seed:int ->
  unit ->
  t

val kind : t -> kind

val config : t -> config

val heap : t -> Heap.t

(** The engine's current client clock. *)
val clock : t -> Kamino_sim.Clock.t

(** [set_clock t c] switches the active client: all subsequent costs charge
    to [c]. *)
val set_clock : t -> Kamino_sim.Clock.t -> unit

val now : t -> int

(** {1 Transactions} *)

(** Starts a transaction. Raises [Error Tx_already_active] if one is
    already active (execution is serial at the data level). *)
val begin_tx : t -> tx

(** The engine a transaction belongs to. *)
val tx_engine : tx -> t

(** The transaction's engine-local id (what intent-log records and the
    sharded commit marker carry). *)
val tx_id : tx -> int

(** [add tx p] declares a write intent on object [p] (whole extent),
    acquiring its write lock — the [TX_ADD] of Table 2. Idempotent per
    object per transaction. *)
val add : tx -> Heap.ptr -> unit

(** [add_range tx range] declares an intent on an arbitrary range
    (allocator metadata, the root pointer). *)
val add_range : tx -> Heap.range -> unit

(** [add_field tx p field len] declares a write intent on [len] bytes at
    payload offset [field] of object [p] — NVML's field-granular
    [TX_ADD_FIELD]. The whole object is still locked (the paper's isolation
    is object-granular), but only the field's bytes are snapshotted
    (undo/CoW) or propagated to the backup (Kamino), which is the §1
    granularity argument: logging whole documents for byte-range updates is
    what makes copying baselines expensive. *)
val add_field : tx -> Heap.ptr -> int -> int -> unit

(** [read_lock tx p] acquires a read lock: a dependent reader of a pending
    object waits for backup catch-up, per the paper's safety rules. *)
val read_lock : tx -> Heap.ptr -> unit

(** [alloc tx size] — [TX_ZALLOC]: transactionally allocates a zeroed
    object; undone on abort or crash. Sizes above [Heap.max_object_size]
    are allocated as a chained extent (a linked list of class-sized links)
    under the same single barrier: the returned pointer is the chain head;
    free it with {!free_chain} and address its payload via {!chain_links}. *)
val alloc : tx -> int -> Heap.ptr

(** [free tx p] — [TX_FREE]: transactionally frees an object. Refuses
    members of a chained extent (use {!free_chain} on the head). *)
val free : tx -> Heap.ptr -> unit

(** [free_chain tx p] transactionally frees every link of the chained
    extent headed at [p]. *)
val free_chain : tx -> Heap.ptr -> unit

(** [chain_links t p] — committed-state view of a chained extent:
    [(link_ptr, data_rel, data_len)] per link (see [Heap.chain_links]). *)
val chain_links : t -> Heap.ptr -> (Heap.ptr * int * int) list

(** [chain_size t p] — logical byte size of the chained extent at [p]. *)
val chain_size : t -> Heap.ptr -> int

(** [commit tx] makes the transaction durable and atomic. The critical path
    ends when this returns; lock release may be later (Kamino kinds). *)
val commit : tx -> unit

(** [abort tx] rolls the transaction back. Raises
    [Error (Abort_unsupported _)] on [No_logging] and [Intent_only]. *)
val abort : tx -> unit

(** {2 Two-phase commit (sharded cross-shard transactions)}

    [prepare tx] makes the transaction's write set and intent record
    durable while the record still says [Running] — a crash at this point
    rolls the transaction back on recovery. [commit_prepared tx] is the
    decision half of {!commit}: it marks the record committed, hands the
    write set to the backup applier and releases the locks at the
    applier's finish time. [commit tx] is exactly [prepare] followed by
    [commit_prepared]; the sharded façade interleaves its persistent
    cross-shard commit marker between the two, and recovery passes the
    marker's transaction set to {!recover} as [promote_running] so every
    marked participant rolls {e forward}. Only the Kamino kinds support
    two-phase commit; others raise [Error (Unsupported _)]. A prepared
    transaction can still {!abort} (marker never written). *)

val prepare : tx -> unit

val commit_prepared : tx -> unit

(** [with_tx t f] runs [f] in a transaction, committing on return and
    aborting (then re-raising) on exception. *)
val with_tx : t -> (tx -> 'a) -> 'a

(** [set_root tx p] transactionally updates the heap root. *)
val set_root : tx -> Heap.ptr -> unit

val root : t -> Heap.ptr

(** {1 Data access}

    Writes must be covered by a declared intent (checked when
    [check_intents]); field offsets are relative to the object payload.
    Reads inside a transaction see the transaction's own writes (CoW
    redirection included). *)

val write_int64 : tx -> Heap.ptr -> int -> int64 -> unit

val write_int : tx -> Heap.ptr -> int -> int -> unit

val write_byte : tx -> Heap.ptr -> int -> int -> unit

val write_bytes : tx -> Heap.ptr -> int -> bytes -> unit

val write_string : tx -> Heap.ptr -> int -> string -> unit

val read_int64 : tx -> Heap.ptr -> int -> int64

val read_int : tx -> Heap.ptr -> int -> int

val read_byte : tx -> Heap.ptr -> int -> int

val read_bytes : tx -> Heap.ptr -> int -> int -> bytes

val read_string : tx -> Heap.ptr -> int -> int -> string

(** Outside-transaction reads of committed state. *)

val peek_int64 : t -> Heap.ptr -> int -> int64

val peek_int : t -> Heap.ptr -> int -> int

val peek_bytes : t -> Heap.ptr -> int -> int -> bytes

val peek_string : t -> Heap.ptr -> int -> int -> string

(** [probe_int t p field] — cost-free committed read (no simulated load
    charged, like [Region.peek_int]). Strictly for observability walks such
    as the B+Tree depth/occupancy gauges; data paths must use {!peek_int}
    so the cost model sees the access. *)
val probe_int : t -> Heap.ptr -> int -> int

(** {1 Snapshot reads (MVCC-lite)}

    The full backup is, at any instant, a transactionally consistent
    slightly-stale copy of the main heap: it is written only by the
    {!Applier} (committed tasks, in ascending id order) and by recovery,
    so it holds exactly the heap state with the committed prefix
    [1..applied_through] rolled forward. A snapshot read serves directly
    from that image at the applier's published watermark — it takes
    {e no locks}, never joins the dependent-wait class and never blocks
    or perturbs writers. Staleness is bounded and observable:
    [engine.snapshot_staleness_ns] records (last commit sim-ns −
    watermark sim-ns) per served read.

    Only engines with a full backup ([Kamino_simple] and promoted chain
    heads) can serve snapshots; dynamic backups are object-keyed (no
    consistent whole-heap image) and the other kinds have no backup, so
    {!read_tx} returns [None] and the caller falls back to the locked
    path behind the same API ([snapshot.fallbacks] counts these). *)

type snapshot

(** [read_tx t f] runs the read-only body [f] against the backup image
    and returns [Some result] (a {e snapshot hit}). [f] itself may return
    [None] to decline — e.g. when the structure it wants has not
    propagated into the backup yet — which counts as a fallback, like an
    engine with no servable backup. [clock] optionally charges the
    snapshot's loads to a dedicated reader clock instead of the engine's
    current one (the backup region's clock is swapped for the duration of
    [f] and restored). *)
val read_tx : ?clock:Kamino_sim.Clock.t -> t -> (snapshot -> 'a option) -> 'a option

(** The applier's published commit watermark [(applied_task_id, wm_ns)]
    when the engine can serve snapshots, [None] otherwise. Both
    components are monotone between recoveries; a fresh applier restarts
    at [(0, 0)], at which point the backup holds the whole durable
    prefix. *)
val snapshot_watermark : t -> (int * int) option

val snapshot_engine : snapshot -> t

(** Reads inside a {!read_tx} body: identical offsets to the main heap
    (the full backup mirrors it), charged to the reading clock. *)

val snapshot_read_int64 : snapshot -> Heap.ptr -> int -> int64

val snapshot_read_int : snapshot -> Heap.ptr -> int -> int

val snapshot_read_byte : snapshot -> Heap.ptr -> int -> int

val snapshot_read_bytes : snapshot -> Heap.ptr -> int -> int -> bytes

val snapshot_read_string : snapshot -> Heap.ptr -> int -> int -> string

(** The heap root pointer as the snapshot saw it ([Heap.null] if the
    store's creating transaction has not propagated yet). *)
val snapshot_root : snapshot -> Heap.ptr

(** {1 Crashes and recovery} *)

(** Simulated power failure on every region of the stack. Any active
    transaction is lost (its volatile state is discarded). *)
val crash : t -> unit

(** Reopens all structures after {!crash} and restores consistency:
    committed-but-unapplied transactions roll forward to the backup,
    incomplete ones roll back from it (or from the data log for the
    copying baselines). [promote_running] (default [fun _ -> false])
    is the sharded commit marker's all-or-nothing decision: a [Running]
    intent-log record whose transaction id it accepts is treated as
    committed and rolled {e forward} — safe only because {!prepare} made
    the record's in-place writes durable before any marker naming it
    could exist. *)
val recover : ?promote_running:(int -> bool) -> t -> unit

(** Apply every queued backup task (e.g. before clean shutdown or before
    inspecting the backup in tests). *)
val drain_backup : t -> unit

(** Drain the applier, then check the invariant all of Kamino-Tx's safety
    rests on: the backup agrees with the main heap — on every live object
    for a full backup, on every resident copy for a dynamic one. [Ok] for
    engines without a backup. *)
val verify_backup : t -> (unit, string) result

(** Write-set lock keys of the most recently committed transaction. The
    chain layer uses them to extend the head's lock hold until the tail's
    acknowledgment arrives. *)
val last_write_keys : t -> int list

(** Intent-log records that survived a crash unresolved ([Intent_only]
    engines only resolve them through a peer): [(tx_id, ranges)]. *)
val unresolved_records : t -> (int * Heap.range list) list

(** [resolve_from_peer t ~peer] completes an [Intent_only] replica's
    recovery by copying every unresolved record's ranges from a chain
    neighbour's heap (predecessor to roll forward, successor to roll back
    — identical mechanics, the chain picks the peer per §5.3). *)
val resolve_from_peer : t -> peer:Kamino_nvm.Region.t -> unit

(** [promote_to_kamino t] turns an [Intent_only] replica into a
    Kamino-simple head: builds a full local backup from the current heap
    and starts a backup applier (§5.2, head failure). *)
val promote_to_kamino : t -> unit

(** {1 Metrics} *)

type metrics = {
  committed : int;
  aborted : int;
  critical_path_copies : int;  (** data-log entries created (undo/CoW) *)
  backup_hits : int;
  backup_misses : int;  (** dynamic-backup on-demand copies (critical path) *)
  backup_evictions : int;
  applier_tasks : int;  (** committed write sets propagated off-path *)
  tasks_batched : int;
      (** tasks applied as part of a multi-task drain batch *)
  ranges_coalesced : int;
      (** ranges eliminated by write-set coalescing (log-entry merges,
          commit-time merges and cross-task batch merges) *)
  bytes_saved : int;
      (** net cross-region copy bytes avoided by coalescing and batching *)
  lock_wait_ns : int;
  lock_wait_events : int;
  storage_bytes : int;  (** total NVM footprint of the stack *)
  snapshot_hits : int;  (** reads served from the backup image *)
  snapshot_fallbacks : int;
      (** snapshot reads that fell back to the locked path (no full
          backup, or the requested structure not yet propagated) *)
}

val metrics : t -> metrics

(** [fingerprint t] hashes the engine's observable execution state —
    simulated instant, the full {!metrics} record, and every region's
    NVM counters plus volatile/persistent content digests — into one hex
    string. Built from cost-free reads only, so fingerprinting never
    perturbs the run: the parallel-vs-sequential oracle compares
    fingerprints across {!Shard_driver.run} [domains] settings. *)
val fingerprint : t -> string

(** The engine's tracer, as passed to {!create} ([Obs.null] otherwise). *)
val obs : t -> Kamino_obs.Obs.t

(** The engine's metrics registry — the store behind {!metrics}. The
    engine's own counters ([engine.committed], [engine.ranges_coalesced],
    ...) and histograms ([engine.dependent_wait_ns], [applier.lag_ns],
    [applier.queue_depth]) update live; component-owned numbers
    ([backup.hits], [applier.tasks], [locks.wait_ns], ...) are synced in
    as gauges on each call, so the returned registry is a complete
    snapshot for {!Kamino_obs.Sink.summary}. *)
val registry : t -> Kamino_obs.Metrics.t

val storage_bytes : t -> int

(** Aggregated NVM counters (stores, flushes, fences, copies, ...) summed
    over every region of the stack — main heap, logs and backup. The
    returned record is a fresh snapshot; mutating it affects nothing. *)
val main_counters : t -> Kamino_nvm.Region.counters

(** Direct access for white-box tests. *)

val main_region : t -> Kamino_nvm.Region.t

val backup : t -> Backup.t option

val applier : t -> Applier.t option

val intent_log : t -> Intent_log.t option

val data_log : t -> Data_log.t option

val locks : t -> Locks.t
