(** Persistent intent log — the paper's Log Manager (§6.2, Figure 11).

    The log records {e which} byte ranges each transaction intends to modify
    (fixed-size entries holding offsets, not data), plus the transaction
    outcome. That is all Kamino-Tx needs: roll-back copies come from the
    backup, roll-forward copies from the main heap. Entries for one
    transaction are appended to a slot and made durable with a single
    flush+fence barrier before the first in-place data write they cover
    (the "minimum number of cache flushes" design).

    Storage layout mirrors Figure 11: a 64-byte header (magic, checksum,
    max_user_threads, max_tx_size, log size, state), per-thread scratchpads,
    and the slotted log data area. Slot states: [Free] / [Running] /
    [Committed] / [Aborted]. Recovery scans all non-free slots in
    transaction-id order. *)

type t

type slot

type state = Free | Running | Committed | Aborted

type intent = { off : int; len : int }

(** [coalesce ?line intents] — the write-set coalescing pass: sorts the
    ranges by offset and merges every overlapping or adjacent pair into one
    range. With [line > 1] (the engine uses the 64 B cache-line size), two
    ranges are additionally merged when the first ends in the same
    [line]-byte line in which the second starts, so two fields of one cache
    line become a single range (the merged range then covers the gap bytes
    between them — safe wherever over-coverage is safe, e.g. backup
    roll-forward from a consistent main heap). With the default [line = 1]
    the merge is exact: the output covers precisely the input's bytes, no
    more and no fewer. The result is sorted and disjoint. Ranges with
    [len <= 0] are dropped. *)
val coalesce : ?line:int -> intent list -> intent list

(** Sum of the lengths of [intents]. *)
val total_bytes : intent list -> int

(** [required_size ~max_user_threads ~max_tx_entries ~n_slots] is the number
    of NVM bytes a log with those parameters occupies. *)
val required_size : max_user_threads:int -> max_tx_entries:int -> n_slots:int -> int

val format :
  Kamino_nvm.Region.t ->
  max_user_threads:int ->
  max_tx_entries:int ->
  n_slots:int ->
  t

(** [open_existing region] re-attaches after a crash; validates the header
    checksum. Raises [Failure] on mismatch. *)
val open_existing : Kamino_nvm.Region.t -> t

val max_tx_entries : t -> int

(** [begin_record t ~tx_id] claims a free slot and writes its header
    ([Running], zero entries) without flushing. Returns [None] when every
    slot is occupied — the coordinator then drains the backup applier to
    reclaim one. *)
val begin_record : t -> tx_id:int -> slot option

(** [add_intent t slot intent] appends one entry (volatile until the next
    {!barrier}). Raises [Failure] if the slot is full ([max_tx_entries]). *)
val add_intent : t -> slot -> intent -> unit

(** [add_intent_merged t slot intent] appends [intent], but when it
    overlaps or is adjacent to the entry appended immediately before — and
    that entry is still unflushed — the two are merged in place into their
    exact union instead of consuming a new entry. Returns the entry as
    recorded and whether a merge (or containment skip) happened. The
    in-place rewrite is crash-safe precisely because the previous entry has
    not been covered by a {!barrier} yet: no data write has been issued
    under its protection, so a torn rewrite can at worst invalidate an
    entry whose bytes still hold only committed data. Never widens beyond
    the union — recovery relies on committed records being disjoint from
    the incomplete transaction's ranges. *)
val add_intent_merged : t -> slot -> intent -> intent * bool

(** [barrier t slot] makes the slot header and all entries appended since
    the previous barrier durable (one flush batch + one fence). Idempotent:
    does nothing when there is nothing unflushed. Must be called before the
    first data write that follows new intents. *)
val barrier : t -> slot -> unit

(** [mark t slot state] durably records the transaction outcome
    (flush of the header line + fence). *)
val mark : t -> slot -> state -> unit

(** [release t slot] marks the slot [Free] so it can be reused. Called after
    the coordinator has consumed the record (applied or rolled back). *)
val release : t -> slot -> unit

val slot_tx_id : t -> slot -> int

val slot_state : t -> slot -> state

val intents : t -> slot -> intent list

(** Number of currently free slots. *)
val free_slots : t -> int

val n_slots : t -> int

(** [iter_records t f] calls [f slot tx_id state intents] for every non-free
    slot, ordered by ascending transaction id — the recovery scan. *)
val iter_records : t -> (slot -> int -> state -> intent list -> unit) -> unit

(** Highest transaction id present in any non-free slot, or 0. Recovery
    seeds the volatile transaction-id counter above it. *)
val max_tx_id : t -> int
