(** Background backup applier — the heart of "copy off the critical path".

    Committed transactions enqueue a task (their write-set ranges). The
    applier runs on its own virtual timeline: a task's finish time is
    computed analytically at enqueue ([max applier_now commit_time] plus the
    copy and persist cost of the ranges), so the committing client's clock
    never advances for the copy work. The write locks of the transaction are
    then released {e at the task's finish time} — which is exactly the
    paper's rule that dependent transactions wait for the backup to catch up
    while independent transactions proceed immediately.

    Tasks are applied lazily at the {e data} level (the copies physically
    happen when something needs them — a later write lock on an overlapping
    object, intent-log slot exhaustion, a crash-free shutdown), with their
    NVM work charged to a throwaway clock because the timeline already
    accounted for it. When a drain finds several tasks queued it hands them
    to the engine as one batch, letting the engine merge their ranges into a
    single cross-region copy pass; each transaction's locks were already
    scheduled to release at that transaction's own enqueue-time finish, so
    batching the physical copies never weakens the dependency rule.
    Laziness matters for fidelity: a crash can land between a commit and
    its propagation, and recovery must roll the backup forward from the
    intent log, which the crash tests exercise. *)

type t

(** A queued unit of propagation work: one committed transaction's
    write-set ranges, plus the timeline instant its copy work finishes
    (settled at enqueue). *)
type task = {
  id : int;
  tx_id : int;
  slot : Intent_log.slot;
  ranges : Intent_log.intent list;
  finish : int;
  commit : int;  (** the owning transaction's commit sim-ns *)
}

(** What applying a batch of tasks means — supplied by the engine: roll the
    tasks' ranges forward into the backup (merging across tasks where
    legal), then release each task's intent-log slot. Tasks arrive in
    queue (ascending id) order and the batch is never empty. *)
type apply_fn = task list -> unit

(** [create ~regions ~apply] — [regions] are every region the [apply]
    callback touches; their clocks are swapped to a throwaway clock for the
    duration of each lazy application. *)
val create : regions:Kamino_nvm.Region.t array -> apply:apply_fn -> t

(** [enqueue t ~commit_time ~cost_ns ~tx_id ~slot ~ranges] registers a
    task and returns [(task_id, finish_time)]. [cost_ns] is the modelled
    copy+persist cost of the ranges on the applier's timeline. *)
val enqueue :
  t ->
  commit_time:int ->
  cost_ns:float ->
  tx_id:int ->
  slot:Intent_log.slot ->
  ranges:Intent_log.intent list ->
  int * int

(** [sync_through t task_id] physically applies every queued task with id
    [<= task_id], handing them to the apply callback as one batch. No-op if
    already applied. *)
val sync_through : t -> int -> unit

(** [drain t] applies everything queued as a single batch. *)
val drain : t -> unit

(** [drain_one t] applies the oldest queued task (a batch of one) and
    returns its finish time, or [None] if the queue is empty. Used when the
    intent log is out of slots: the committing client waits (virtually)
    until this time. *)
val drain_one : t -> int option

(** Highest task id physically applied so far (0 if none). *)
val applied_through : t -> int

(** The published commit watermark: [(applied_through, wm_ns)] where
    [wm_ns] is the running maximum commit sim-ns over every applied task.
    The backup region holds exactly the heap state with tasks
    [1..applied_through] rolled forward, so a read of the backup observes
    the committed prefix up to this watermark. Both components are
    monotone over the applier's lifetime; a fresh applier (creation or
    recovery) restarts at [(0, 0)], at which point the backup holds the
    whole durable prefix. Pure bookkeeping: reading it performs no NVM
    work and advances no clock. *)
val watermark : t -> int * int

(** Id of the most recently enqueued task (0 if none yet). *)
val last_enqueued : t -> int

(** The applier's timeline position: finish time of the last enqueued task. *)
val virtual_now : t -> int

val queued : t -> int

val tasks_applied : t -> int

(** Number of tasks that were applied as part of a multi-task batch
    (a batch of [n > 1] adds [n]). *)
val tasks_batched : t -> int
