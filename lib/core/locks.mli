(** Volatile object-granularity read-write lock table.

    As in the paper, locks live in volatile memory (write intents in the
    persistent log are enough to rebuild what recovery needs). The table
    serves two purposes:

    - {e virtual-time contention}: executions are serial at the data level
      but overlapped in virtual time; each lock remembers when its last
      writer/readers release, and an acquire advances the acquiring client's
      clock past those times. In Kamino-Tx a writer's release time is the
      instant the backup applier finishes propagating the transaction, which
      is precisely how dependent transactions pay for backup catch-up while
      independent transactions proceed immediately;
    - {e active-transaction bookkeeping}: the set of keys held by the
      currently executing transaction, which the dynamic backup's LRU must
      never evict ("pending objects are never candidates for eviction").

    Lock keys are NVM byte offsets: an object's extent start, or a metadata
    word's offset. *)

type t

type key = int

(** [create ?shards ()] builds a lock table striped into [shards]
    (default 16) independent hash tables. A key's shard is selected from
    its offset with the low 6 bits dropped, so the words of one cache line
    land together while distinct objects spread across shards. *)
val create : ?shards:int -> unit -> t

val shard_count : t -> int

(** [acquire_write t key ~now ~cost_ns] returns the virtual time at which
    the caller actually holds the write lock: [max now writer_release
    reader_release] plus [cost_ns]. Marks [key] as held by the active
    transaction. *)
val acquire_write : t -> key -> now:int -> cost_ns:float -> int

(** [acquire_read t key ~now ~cost_ns] returns the time at which the read
    lock is held: [max now writer_release] plus [cost_ns]. *)
val acquire_read : t -> key -> now:int -> cost_ns:float -> int

(** {2 Entry handles}

    A lock acquisition resolves the key to its table entry once; callers
    that will release the same lock (and stamp its applier task) later in
    the transaction can keep the handle and skip the re-hash on every
    subsequent touch. Handles stay valid for the lifetime of the table
    they came from. *)

type entry

(** [entry_of t key] resolves (creating if absent) the entry for [key]. *)
val entry_of : t -> key -> entry

(** Entry-handle variants of the key-based operations above. The [t]
    parameter on the acquires is for the wait statistics only. *)

val acquire_write_e : t -> entry -> now:int -> cost_ns:float -> int

val acquire_read_e : t -> entry -> now:int -> cost_ns:float -> int

val release_write_e : entry -> at:int -> unit

val release_read_e : entry -> at:int -> unit

val last_writer_task_e : entry -> int

val set_last_writer_task_e : entry -> int -> unit

(** [release_writes t keys ~at] records that the write locks on [keys] are
    released at virtual time [at] and clears active-transaction ownership. *)
val release_writes : t -> key list -> at:int -> unit

(** [release_reads t keys ~at] records read-lock releases. *)
val release_reads : t -> key list -> at:int -> unit

(** [hold_writes t keys] keeps the write locks held open-endedly (the chain
    head holding locks until the tail's acknowledgment arrives, whose time
    is unknown yet). The prior release time is remembered. *)
val hold_writes : t -> key list -> unit

(** [release_held_writes t keys ~at] ends an open-ended hold: the locks
    release at [max at previous_release] (e.g. the later of the tail ack
    and the backup applier's finish). *)
val release_held_writes : t -> key list -> at:int -> unit

(** [held_by_active_tx t key] — true between [acquire_write] and the
    matching [release_writes]. *)
val held_by_active_tx : t -> key -> bool

(** [last_writer_task t key] / [set_last_writer_task t key id] track the id
    of the most recent backup-applier task covering [key], so lock
    acquisition can force the applier to catch up on exactly that object. *)
val last_writer_task : t -> key -> int

val set_last_writer_task : t -> key -> int -> unit

(** [waits t] is the cumulative virtual nanoseconds clients spent blocked on
    locks, and [wait_events t] how many acquisitions blocked — the benches
    report these for the dependent-transaction experiments. *)
val waits : t -> int

val wait_events : t -> int

val reset_stats : t -> unit
