(* Shared engine state, the typed error, the variant strategy signature,
   and the helper toolbox every variant builds its critical path from.

   The engine proper ({!Engine}) is the kind-independent shell: write-set
   tracking, lock acquisition, clock plumbing, data accessors, observability
   hooks. Everything a specific engine kind does differently — what happens
   on declare, how a commit is made durable, how an abort rolls back, what
   recovery replays — lives in a strategy record ({!type-ops}) implemented
   by one of the variant modules ({!Undo_variant}, {!Cow_variant},
   {!Kamino_variant}, {!Intent_variant}; the trivial {!no_logging} baseline
   lives here). The refactor is behavior-preserving by construction and by
   oracle: test_variant_oracle.ml pins the simulated nanoseconds, NVM
   counters and final heap images of every kind to the pre-split
   fingerprints. *)

module Region = Kamino_nvm.Region
module Cost_model = Kamino_nvm.Cost_model
module Clock = Kamino_sim.Clock
module Rng = Kamino_sim.Rng
module Heap = Kamino_heap.Heap
module Obs = Kamino_obs.Obs
module Metrics = Kamino_obs.Metrics

type kind =
  | No_logging
  | Undo_logging
  | Cow
  | Kamino_simple
  | Kamino_dynamic of { alpha : float; policy : Backup.policy }
  | Intent_only

let kind_name = function
  | No_logging -> "no-logging"
  | Undo_logging -> "undo-logging"
  | Cow -> "cow"
  | Kamino_simple -> "kamino-simple"
  | Intent_only -> "intent-only"
  | Kamino_dynamic { alpha; policy } ->
      Printf.sprintf "kamino-dynamic(%.0f%%%s)" (alpha *. 100.0)
        (match policy with Backup.Lru_policy -> "" | Backup.Fifo_policy -> ",fifo")

type config = {
  heap_bytes : int;
  log_slots : int;
  max_tx_entries : int;
  data_log_bytes : int;
  cost : Cost_model.t;
  crash_mode : Region.crash_mode;
  check_intents : bool;
  flush_per_intent : bool;
  global_pending : bool;
  coalesce_writes : bool;
  lock_shards : int;
}

let default_config =
  {
    heap_bytes = 16 * 1024 * 1024;
    log_slots = 256;
    max_tx_entries = 192;
    data_log_bytes = 8 * 1024 * 1024;
    cost = Cost_model.default;
    crash_mode = Region.Words_survive_randomly;
    check_intents = true;
    flush_per_intent = false;
    global_pending = false;
    coalesce_writes = true;
    lock_shards = 16;
  }

(* --- Typed errors -------------------------------------------------------- *)

type error =
  | Tx_already_active
  | Tx_finished
  | Tx_not_active
  | Intent_log_exhausted of string
  | Missing_intent of { off : int; len : int }
  | Abort_unsupported of kind
  | Component_missing of string
  | Unsupported of string

exception Error of error

let error_message = function
  | Tx_already_active -> "a transaction is already active"
  | Tx_finished -> "transaction already finished"
  | Tx_not_active -> "transaction is not the active one"
  | Intent_log_exhausted where ->
      Printf.sprintf "intent log exhausted (%s)" where
  | Missing_intent { off; len } ->
      Printf.sprintf
        "write of %d bytes at %d is not covered by a declared intent (missing TX_ADD?)"
        len off
  | Abort_unsupported k ->
      Printf.sprintf "%s cannot roll back locally" (kind_name k)
  | Component_missing c -> Printf.sprintf "engine has no %s" c
  | Unsupported what -> Printf.sprintf "unsupported operation: %s" what

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Engine.Error: " ^ error_message e)
    | _ -> None)

let error e = raise (Error e)

(* --- State --------------------------------------------------------------- *)

(* One declared write intent of the active transaction. [cow] is the CoW
   working copy when the range is redirected; [None] means the range is
   edited in place (always, for the non-CoW kinds). [r_key] is the write
   lock protecting the range (the owning object's extent for field-granular
   intents) — the coalescer uses it to decide which gaps are safe to fill. *)
type irec = {
  mutable r_off : int;
  mutable r_len : int;
  mutable r_key : int;
  mutable cow : Data_log.entry option;
}

type t = {
  mutable e_kind : kind;
  mutable strat : ops;
  e_config : config;
  main : Region.t;
  mutable heap : Heap.t;
  ilog_region : Region.t option;
  mutable ilog : Intent_log.t option;
  dlog_region : Region.t option;
  mutable dlog : Data_log.t option;
  mutable bkp : Backup.t option;
  mutable locks : Locks.t;
  mutable appl : Applier.t option;
  mutable clk : Clock.t;
  rng : Rng.t;
  mutable next_tx_id : int;
  mutable active : tx option;
  (* Observability. The engine's bookkeeping counters live in a
     {!Kamino_obs.Metrics} registry; handles are resolved once here so
     every hot-path update stays a single field mutation. [e_obs] is
     [Obs.null] unless the caller opted in at [create]; every event site
     is a single enabled-check branch and never touches a clock, so
     tracing cannot move a simulated ns (DESIGN.md par10). [obs_base] is
     the engine's base Perfetto track: base = transactions, base+1 =
     applier timeline, base+2 = NVM write-backs. *)
  e_obs : Obs.t;
  obs_base : int;
  reg : Metrics.t;
  m_committed : Metrics.counter;
  m_aborted : Metrics.counter;
  m_ranges_coalesced : Metrics.counter;
  m_bytes_saved : Metrics.counter;
  h_dep_wait : Metrics.hist;
  h_applier_lag : Metrics.hist;
  h_queue_depth : Metrics.hist;
  m_snapshot_hits : Metrics.counter;
  m_snapshot_fallbacks : Metrics.counter;
  h_snapshot_staleness : Metrics.hist;
  (* Commit sim-ns of the most recent commit on this engine: the snapshot
     staleness a read observes is [last_commit_ns - watermark_ns]. Plain
     bookkeeping — stamped from the already-read clock on the commit path,
     so tracking it costs no NVM work and moves no simulated ns. *)
  mutable last_commit_ns : int;
  mutable last_write_keys : int list;
  mutable all_regions : Region.t array;
  (* Per-transaction scratch, owned by the engine and recycled across
     transactions (execution is serial at the data level, so at most one
     transaction uses it at a time). [ws.(0 .. ws_n-1)] is the write set in
     declaration order, its [irec]s pooled and overwritten in place; range
     starts are unique within it, and membership checks are linear scans
     (write sets are a handful of ranges — a hash table costs more in
     per-transaction clearing than the scans do). [ws_cow_n] counts entries
     carrying a CoW redirection: when zero — always, for every non-CoW
     engine kind — reads can go straight to the main heap without
     consulting the write set. The [tx] handle itself stays a small fresh
     record per transaction so stale handles from a finished transaction
     are still detected by [active_tx]. *)
  mutable ws : irec array;
  mutable ws_n : int;
  mutable ws_cow_n : int;
}

and tx = {
  owner : t;
  id : int;
  t_begin : int;  (* client-clock ns at begin, for the commit/abort span *)
  mutable slot : Intent_log.slot option;
  mutable lock_keys : int list;  (* write-lock keys (object extents) *)
  mutable lock_entries : Locks.entry list;  (* handles for [lock_keys], same order *)
  mutable read_entries : Locks.entry list;
  mutable needs_barrier : bool;
  mutable prepared : bool;  (* two-phase: write set durable, outcome undecided *)
  mutable finished : bool;
}

(* The strategy: one record per engine kind, dispatched through [t.strat].
   Every function receives the full shared state; the engine shell has
   already done the kind-independent part of the operation (active-tx
   check, lock acquisition, scratch bookkeeping) when a hook runs. *)
and ops = {
  v_object_granular : bool;
      (* add_field declares the whole owning object (dynamic backups track
         copies per object, as in the paper) *)
  v_begin : t -> tx_id:int -> unit;
  v_claim_slot : t -> tx -> Intent_log.slot;
  v_declare :
    t ->
    tx ->
    le:Locks.entry ->
    off:int ->
    len:int ->
    redirectable:bool ->
    Data_log.entry option;
  v_pre_free : t -> tx -> Heap.range -> unit;
  v_barrier : t -> tx -> unit;
  v_commit : t -> tx -> unit;
  v_abort : t -> tx -> unit;
  v_prepare : t -> tx -> unit;
  v_commit_prepared : t -> tx -> unit;
  v_recover : t -> promote_running:(int -> bool) -> unit;
}

(* --- Typed component access --------------------------------------------- *)

let the_ilog t =
  match t.ilog with Some l -> l | None -> error (Component_missing "intent log")

let the_dlog t =
  match t.dlog with Some d -> d | None -> error (Component_missing "data log")

let the_bkp t =
  match t.bkp with Some b -> b | None -> error (Component_missing "backup")

let the_appl t =
  match t.appl with Some a -> a | None -> error (Component_missing "applier")

(* --- Shared helpers ------------------------------------------------------ *)

let cost t = t.e_config.cost

let uses_intent_log = function
  | Kamino_simple | Kamino_dynamic _ | Intent_only -> true
  | No_logging | Undo_logging | Cow -> false

let uses_data_log = function
  | Undo_logging | Cow -> true
  | No_logging | Kamino_simple | Kamino_dynamic _ | Intent_only -> false

let active_tx tx =
  if tx.finished then error Tx_finished;
  match tx.owner.active with
  | Some a when a == tx -> ()
  | _ -> error Tx_not_active

(* Index into the write set of the most recently declared intent covering
   [abs, abs+len), or [-1]. Scanning newest-first matches the old
   list-order semantics when ranges overlap; returning an index (the
   caller reads [ws.(i)]) keeps the per-access path allocation-free. *)
(* Top-level (not a local closure): a local [rec] would capture its free
   variables afresh on every access, allocating on the hottest path. *)
let rec covering_scan ws abs len i =
  if i < 0 then -1
  else
    let r = Array.unsafe_get ws i in
    if r.r_off <= abs && abs + len <= r.r_off + r.r_len then i
    else covering_scan ws abs len (i - 1)

let covering_idx t abs len = covering_scan t.ws abs len (t.ws_n - 1)

(* Index of the declared intent whose range starts exactly at [off], or
   [-1]. Range starts are unique within a transaction, so this is a set
   membership test. *)
let rec ws_off_scan ws off i =
  if i < 0 then -1
  else if (Array.unsafe_get ws i).r_off = off then i
  else ws_off_scan ws off (i - 1)

let ws_find_off t off = ws_off_scan t.ws off (t.ws_n - 1)

(* Claim the next pooled [irec], growing the pool by doubling. Growth uses
   [Array.init] so every fresh slot is a distinct record — a shared filler
   would alias the pool. *)
let ws_push t ~off ~len ~key ~cow =
  (if t.ws_n = Array.length t.ws then
     let n = Array.length t.ws in
     t.ws <-
       Array.init (2 * n) (fun i ->
           if i < n then t.ws.(i) else { r_off = 0; r_len = 0; r_key = 0; cow = None }));
  let r = t.ws.(t.ws_n) in
  t.ws_n <- t.ws_n + 1;
  r.r_off <- off;
  r.r_len <- len;
  r.r_key <- key;
  r.cow <- cow;
  if cow <> None then t.ws_cow_n <- t.ws_cow_n + 1;
  r

(* Make everything appended to this transaction's log durable, once. The
   per-kind barrier target (intent-log slot vs. data log) is the variant's
   business. *)
let do_barrier tx =
  if tx.needs_barrier then begin
    tx.owner.strat.v_barrier tx.owner tx;
    tx.needs_barrier <- false
  end

(* Flush the write set's ranges (declaration order) against the main heap,
   fencing iff at least one range was selected. The fence condition tracks
   the {e range list}, not the lines actually flushed — a commit whose
   ranges are already clean still fences, exactly as the list-based
   predecessor of this function did. [in_place_only] restricts to ranges
   without a CoW redirection. *)
let persist_ws t ~in_place_only =
  let n = ref 0 in
  for i = 0 to t.ws_n - 1 do
    let r = t.ws.(i) in
    if (not in_place_only) || r.cow = None then begin
      incr n;
      Region.flush t.main r.r_off r.r_len
    end
  done;
  if !n > 0 then Region.fence t.main

(* Intent-log slot of [tx], claimed on first use so read-only transactions
   never touch the log region. How a free slot is obtained under pressure
   (drain the applier vs. fail) is the variant's business. *)
let claim_slot tx =
  match tx.slot with
  | Some s -> s
  | None ->
      let s = tx.owner.strat.v_claim_slot tx.owner tx in
      tx.slot <- Some s;
      s

(* Append a write intent to the log, merging it into the immediately
   preceding entry when legal (see {!Intent_log.add_intent_merged}). Log
   entries stay an {e exact} union of the declared bytes: recovery's
   cross-record disjointness argument forbids gap-filling — a widened
   committed entry could overlap the incomplete transaction's torn bytes
   and launder them into the backup before the rollback reads it.
   [mergeable] is the variant's call: dynamic backups never merge at all —
   their recovery resolves ranges object by object and needs each entry to
   match a resident copy exactly. *)
let log_intent t slot ~mergeable ~off ~len =
  let ilog = the_ilog t in
  if mergeable then begin
    let _, merged = Intent_log.add_intent_merged ilog slot { Intent_log.off; len } in
    if merged then Metrics.incr t.m_ranges_coalesced
  end
  else Intent_log.add_intent ilog slot { Intent_log.off; len };
  if t.e_config.flush_per_intent then Intent_log.barrier ilog slot;
  if Obs.enabled t.e_obs then
    Obs.emit t.e_obs ~kind:Obs.k_intent ~track:t.obs_base ~ts:(Clock.now t.clk)
      ~dur:(-1) ~a:off ~b:len ~c:0

(* Coalesce a committed write set before it is enqueued at the applier.
   Exact overlap/adjacency merges are always safe (the union covers
   precisely the same bytes). The 64 B line-threshold merge — two ranges
   whose gap lies within one cache line become one range, gap included —
   is applied only when both ranges belong to the same locked object
   ([r_key]): the gap bytes then sit under this transaction's own write
   lock, so they hold committed data whenever the (possibly lazy) copy
   executes. A cross-object gap could cover a third, unrelated object that
   an active transaction is updating in place, and its uncommitted bytes
   must never reach the backup — an abort would restore them. *)
let coalesce_write_set t =
  let line = 64 in
  let n = t.ws_n in
  if n = 0 then []
  else if n = 1 then
    [ { Intent_log.off = t.ws.(0).r_off; len = t.ws.(0).r_len } ]
  else begin
    (* Range starts are unique within a transaction ([scr_by_key] is keyed
       by them), so sorting by [r_off] alone is a total order and the
       unstable [Array.sort] cannot reorder equal keys. *)
    let arr = Array.sub t.ws 0 n in
    Array.sort (fun a b -> Int.compare a.r_off b.r_off) arr;
    let acc = ref [] in
    let coff = ref arr.(0).r_off and clen = ref arr.(0).r_len in
    let ckey = ref arr.(0).r_key and cmixed = ref false in
    for i = 1 to n - 1 do
      let r = arr.(i) in
      let cend = !coff + !clen in
      let same_obj = (not !cmixed) && !ckey = r.r_key in
      if r.r_off <= cend then begin
        clen := max cend (r.r_off + r.r_len) - !coff;
        if not same_obj then cmixed := true
      end
      else if same_obj && r.r_off / line = (cend - 1) / line then
        clen := r.r_off + r.r_len - !coff
      else begin
        acc := { Intent_log.off = !coff; len = !clen } :: !acc;
        coff := r.r_off;
        clen := r.r_len;
        ckey := r.r_key;
        cmixed := false
      end
    done;
    acc := { Intent_log.off = !coff; len = !clen } :: !acc;
    List.rev !acc
  end

(* Modelled applier cost of propagating a committed write set: copy each
   range into the backup and issue its write-backs. The applier drains
   batches of tasks behind one fence, so the fence latency is amortized. *)
let applier_fence_batch = 4.0

let task_cost cm ranges =
  (* Open-coded fold: a closure-based [List.fold_left] over floats boxes
     the accumulator on every step without flambda. *)
  let acc = ref (cm.Cost_model.fence_ns /. applier_fence_batch) in
  List.iter
    (fun { Intent_log.off = _; len } ->
      acc :=
        !acc
        +. Cost_model.copy_cost cm len
        +. (cm.Cost_model.flush_line_ns *. float_of_int ((len + 63) / 64)))
    ranges;
  !acc

(* Predicate for dynamic-backup eviction: an object is pinned while the
   active transaction holds it or while a committed-but-unapplied task still
   needs its resident copy. *)
let pinned t key =
  Locks.held_by_active_tx t.locks key
  ||
  match t.appl with
  | Some a -> Locks.last_writer_task t.locks key > Applier.applied_through a
  | None -> false

(* Aggregate NVM counters over every region of the stack (heap, logs,
   backup): the whole point of coalescing and batching is to shrink the
   copy and write-back traffic of the {e system}, most of which lands on
   the backup and log regions, not the main heap. *)
let main_counters t =
  let agg =
    {
      Region.stores = 0;
      bytes_stored = 0;
      loads = 0;
      bytes_loaded = 0;
      lines_flushed = 0;
      fences = 0;
      bytes_copied = 0;
      crashes = 0;
    }
  in
  Array.iter
    (fun r ->
      let c = Region.counters r in
      agg.Region.stores <- agg.Region.stores + c.Region.stores;
      agg.Region.bytes_stored <- agg.Region.bytes_stored + c.Region.bytes_stored;
      agg.Region.loads <- agg.Region.loads + c.Region.loads;
      agg.Region.bytes_loaded <- agg.Region.bytes_loaded + c.Region.bytes_loaded;
      agg.Region.lines_flushed <- agg.Region.lines_flushed + c.Region.lines_flushed;
      agg.Region.fences <- agg.Region.fences + c.Region.fences;
      agg.Region.bytes_copied <- agg.Region.bytes_copied + c.Region.bytes_copied;
      agg.Region.crashes <- agg.Region.crashes + c.Region.crashes)
    t.all_regions;
  agg

let storage_bytes t = Array.fold_left (fun acc r -> acc + Region.size r) 0 t.all_regions

let drain_backup t = match t.appl with Some a -> Applier.drain a | None -> ()

(* The backup invariant that all of Kamino-Tx's safety rests on: once the
   applier has drained, the backup agrees with the main heap — everywhere
   for a full backup, on every resident copy for a dynamic one. *)
let verify_backup t =
  match t.bkp with
  | None -> Ok ()
  | Some b -> (
      drain_backup t;
      let mismatches = ref [] in
      (match Backup.dump_mapping b with
      | [] ->
          (* Full backup: compare every live object extent and the
             allocator metadata block. *)
          let h = t.heap in
          let check off len what =
            match Backup.copy_matches ~len b ~main:t.main ~off with
            | Some false -> mismatches := what :: !mismatches
            | Some true | None -> ()
          in
          check 0 (Heap.data_start h) "heap metadata";
          Heap.iter_objects h (fun p ~capacity ~allocated ->
              if allocated then
                check (p - 16) (capacity + 16) (Printf.sprintf "object %d" p))
      | mapping ->
          List.iter
            (fun (off, _, _) ->
              match Backup.copy_matches b ~main:t.main ~off with
              | Some false ->
                  mismatches := Printf.sprintf "resident copy at %d" off :: !mismatches
              | Some true | None -> ())
            mapping);
      match !mismatches with
      | [] -> Ok ()
      | w :: _ ->
          Error
            (Printf.sprintf "backup diverges from main (%d ranges, first: %s)"
               (List.length !mismatches) w))

let release_all tx ~write_release =
  let t = tx.owner in
  t.last_write_keys <- tx.lock_keys;
  List.iter (fun e -> Locks.release_write_e e ~at:write_release) tx.lock_entries;
  let read_at = Clock.now t.clk in
  List.iter (fun e -> Locks.release_read_e e ~at:read_at) tx.read_entries

let finish tx =
  tx.finished <- true;
  tx.owner.active <- None

(* The applier hands every drain over as one batch of tasks; merging their
   ranges into a single copy pass is what "batched backup propagation"
   means. Only {e exact} merges (overlap / adjacency — the union covers
   precisely the same bytes) are legal here: a gap-filling merge across
   tasks could cover a third object an active transaction is updating in
   place, and its uncommitted bytes must never reach the backup (an abort
   would then restore them). Committed-but-queued ranges themselves are
   safe to copy at any later time — [declare] applies every queued task
   covering an object before the new transaction's first write to it, so no
   queued range ever overlaps bytes an active transaction has modified.
   Dynamic backups are object-keyed ([roll_forward] demands an exact
   [(off, len)] resident match), so their batches only deduplicate
   identical ranges, never merge bytes. *)
let make_applier t =
  let apply tasks =
    let b = the_bkp t and ilog = the_ilog t in
    (if Obs.enabled t.e_obs then
       let ntasks = List.length tasks in
       let nranges =
         List.fold_left (fun n task -> n + List.length task.Applier.ranges) 0 tasks
       in
       Obs.emit t.e_obs ~kind:Obs.k_applier_batch ~track:(t.obs_base + 1)
         ~ts:(Clock.now t.clk) ~dur:(-1) ~a:ntasks ~b:nranges ~c:0);
    match tasks with
    | [ ({ Applier.ranges = ([] | [ _ ]) as raw; _ } as task) ]
      when match raw with [ r ] -> r.Intent_log.len > 0 | _ -> true ->
        (* Singleton batch with at most one non-empty range: nothing can
           merge or deduplicate, so skip the cross-task machinery. This is
           the common shape when a lock conflict syncs one queued task. *)
        List.iter
          (fun { Intent_log.off; len } -> Backup.roll_forward b ~main:t.main ~off ~len)
          raw;
        Intent_log.release ilog task.Applier.slot
    | _ ->
    let raw = List.concat_map (fun task -> task.Applier.ranges) tasks in
    let merged =
      if not t.e_config.coalesce_writes then raw
      else if Backup.is_full b then Intent_log.coalesce raw
      else begin
        let seen = Hashtbl.create 16 in
        List.filter
          (fun { Intent_log.off; len } ->
            if Hashtbl.mem seen (off, len) then false
            else begin
              Hashtbl.add seen (off, len) ();
              true
            end)
          raw
      end
    in
    if t.e_config.coalesce_writes then begin
      Metrics.add t.m_ranges_coalesced (List.length raw - List.length merged);
      Metrics.add t.m_bytes_saved
        (Intent_log.total_bytes raw - Intent_log.total_bytes merged)
    end;
    List.iter
      (fun { Intent_log.off; len } -> Backup.roll_forward b ~main:t.main ~off ~len)
      merged;
    List.iter (fun task -> Intent_log.release ilog task.Applier.slot) tasks
  in
  Applier.create ~regions:t.all_regions ~apply

(* --- Shared per-family paths --------------------------------------------- *)

(* Abort for the data-log kinds (undo and CoW): replay every durable undo
   snapshot, newest first, then persist the restored ranges. *)
let data_log_abort t tx =
  let dlog = the_dlog t in
  do_barrier tx;
  let entries = Data_log.active_entries dlog in
  let undos = List.filter (fun e -> e.Data_log.replay = Data_log.On_abort) entries in
  List.iter (fun e -> Data_log.apply_entry dlog e ~dst:t.main) (List.rev undos);
  persist_ws t ~in_place_only:true;
  Data_log.finish dlog;
  release_all tx ~write_release:(Clock.now t.clk)

(* Recovery for the data-log kinds. *)
let data_log_recover t =
  let dlog = Data_log.open_existing (Option.get t.dlog_region) in
  t.dlog <- Some dlog;
  match Data_log.phase dlog with
  | Data_log.Idle -> ()
  | Data_log.Running ->
      (* Incomplete transaction: restore every durable undo snapshot. *)
      let entries = Data_log.recover_entries dlog in
      List.iter
        (fun e ->
          if e.Data_log.replay = Data_log.On_abort then begin
            Data_log.apply_entry dlog e ~dst:t.main;
            Region.flush t.main e.Data_log.off e.Data_log.len
          end)
        (List.rev entries);
      Region.fence t.main;
      t.next_tx_id <- max t.next_tx_id (Data_log.tx_id dlog + 1);
      Data_log.finish dlog
  | Data_log.Applying ->
      (* CoW redo point passed: replay the copies, in arena order. *)
      let entries = Data_log.recover_entries dlog in
      List.iter
        (fun e ->
          if e.Data_log.replay = Data_log.On_commit then begin
            Data_log.apply_entry dlog e ~dst:t.main;
            Region.flush t.main e.Data_log.off e.Data_log.len
          end)
        entries;
      Region.fence t.main;
      t.next_tx_id <- max t.next_tx_id (Data_log.tx_id dlog + 1);
      Data_log.finish dlog

(* --- The trivial baseline ------------------------------------------------ *)

let no_op_pre_free _ _ _ = ()

let unsupported what _ _ = error (Unsupported what)

(* [No_logging]: in-place writes, durable but not atomic — the motivation
   baseline of Figure 1. The minimal instantiation of the signature. *)
let no_logging =
  {
    v_object_granular = false;
    v_begin = (fun _ ~tx_id:_ -> ());
    v_claim_slot = (fun _ _ -> error (Component_missing "intent log"));
    v_declare = (fun _ _ ~le:_ ~off:_ ~len:_ ~redirectable:_ -> None);
    v_pre_free = no_op_pre_free;
    v_barrier = (fun _ _ -> ());
    v_commit =
      (fun t tx ->
        persist_ws t ~in_place_only:false;
        release_all tx ~write_release:(Clock.now t.clk));
    v_abort =
      (fun _ tx ->
        finish tx;
        error (Abort_unsupported No_logging));
    v_prepare = unsupported "prepare (no-logging)";
    v_commit_prepared = unsupported "commit_prepared (no-logging)";
    v_recover = (fun _ ~promote_running:_ -> ());
  }
