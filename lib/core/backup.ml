module Region = Kamino_nvm.Region
module Heap = Kamino_heap.Heap

type policy = Lru_policy | Fifo_policy

type dynamic = {
  slots : Heap.t;
  table : Phash.t;
  lru : Lru.t;
  policy : policy;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type t = Full of Region.t | Dynamic of dynamic

(* The look-up table's value word packs the slot offset and the copy length
   so the slot allocator can be reconstructed from the table alone after a
   crash (the allocator metadata itself is volatile). Single-word values
   keep Phash's crash-atomic publish discipline intact. *)
let pack_slot ~slot ~len = slot lor (len lsl 32)

let unpack_slot v = (v land 0xFFFFFFFF, v lsr 32)

let create_full region = Full region

let full_region = function Full region -> Some region | Dynamic _ -> None

let create_dynamic ~slots ~table ~policy =
  Dynamic
    {
      slots = Heap.format slots;
      table = Phash.format table ~capacity:(Region.size table / 32);
      lru = Lru.create ();
      policy;
      hits = 0;
      misses = 0;
      evictions = 0;
    }

let reopen t =
  match t with
  | Full region -> Full region
  | Dynamic d ->
      (* The table is the persistent truth; the slot allocator's own
         metadata was volatile and is rebuilt from the mapping. Resident
         keys re-enter the recency queue so they stay evictable. *)
      let table = Phash.open_existing (Phash.region d.table) in
      let live = ref [] in
      Phash.iter table (fun ~key:_ ~value ->
          let slot, len = unpack_slot value in
          live := (slot, len) :: !live);
      let slots = Heap.rebuild_with (Heap.region d.slots) ~live:!live in
      let lru = Lru.create () in
      Phash.iter table (fun ~key ~value:_ -> Lru.touch lru key);
      Dynamic
        { slots; table; lru; policy = d.policy; hits = 0; misses = 0; evictions = 0 }

let initialize_full t ~main =
  match t with
  | Full region ->
      Region.copy_between ~src:main ~src_off:0 ~dst:region ~dst_off:0
        ~len:(Region.size main);
      Region.persist_all region
  | Dynamic _ -> ()

let evict d ~locked =
  match Lru.evict_candidate d.lru ~locked with
  | None -> false
  | Some key -> (
      match Phash.find d.table ~key with
      | None ->
          (* The queue briefly knew a key the table does not (should not
             happen); drop it and try again. *)
          Lru.remove d.lru key;
          true
      | Some packed ->
          let slot, _len = unpack_slot packed in
          ignore (Phash.remove d.table ~key);
          Heap.free d.slots slot;
          Lru.remove d.lru key;
          d.evictions <- d.evictions + 1;
          true)

let rec alloc_slot d ~len ~locked ~pressure ~relieved =
  match Heap.alloc d.slots len with
  | slot -> slot
  | exception Out_of_memory ->
      if evict d ~locked then alloc_slot d ~len ~locked ~pressure ~relieved
      else if not relieved then begin
        (* Everything resident is pinned — usually because committed write
           sets are still queued at the applier. Let the engine drain it,
           unpinning their copies, and retry once. *)
        pressure ();
        alloc_slot d ~len ~locked ~pressure ~relieved:true
      end
      else
        failwith
          "Backup: dynamic backup exhausted — every resident copy is locked \
           (working set exceeds alpha * heap)"

let drop_resident d ~key ~slot =
  ignore (Phash.remove d.table ~key);
  Heap.free d.slots slot;
  Lru.remove d.lru key

(* Forget the resident copy for a range whose object identity has died —
   called after rolling back an aborted or incomplete transaction, whose
   fresh allocations may be re-carved with different extent boundaries. *)
let drop t ~off =
  match t with
  | Full _ -> ()
  | Dynamic d -> (
      match Phash.find d.table ~key:off with
      | None -> ()
      | Some packed ->
          let slot, _len = unpack_slot packed in
          drop_resident d ~key:off ~slot)

let ensure_copy t ~main ~off ~len ~locked ~pressure =
  match t with
  | Full _ -> ()
  | Dynamic d -> (
      let hit =
        match Phash.find d.table ~key:off with
        | Some packed ->
            let slot, stored_len = unpack_slot packed in
            if stored_len = len then true
            else begin
              (* The same address hosts a different-sized object now (its
                 previous allocation was rolled back by an abort or crash).
                 The stale copy is useless — and copying the new extent
                 into the undersized slot would corrupt its neighbours. *)
              drop_resident d ~key:off ~slot;
              false
            end
        | None -> false
      in
      match hit with
      | true ->
          d.hits <- d.hits + 1;
          (* FIFO ablation: recency is insertion order only. *)
          if d.policy = Lru_policy then Lru.touch d.lru off
      | false ->
          d.misses <- d.misses + 1;
          let slot = alloc_slot d ~len ~locked ~pressure ~relieved:false in
          let dst = Heap.region d.slots in
          Region.copy_between ~src:main ~src_off:off ~dst ~dst_off:slot ~len;
          Region.persist dst slot len;
          (* Publish the mapping only after the copy is durable; Phash's
             two-step insert keeps the entry itself crash-atomic. *)
          Phash.insert d.table ~key:off ~value:(pack_slot ~slot ~len);
          Lru.touch d.lru off)

let is_full t = match t with Full _ -> true | Dynamic _ -> false

let has_copy t ~off =
  match t with Full _ -> true | Dynamic d -> Phash.find d.table ~key:off <> None

let roll_forward t ~main ~off ~len =
  match t with
  | Full region ->
      Region.copy_between ~src:main ~src_off:off ~dst:region ~dst_off:off ~len;
      Region.persist region off len
  | Dynamic d -> (
      match Phash.find d.table ~key:off with
      | None ->
          failwith
            (Printf.sprintf
               "Backup.roll_forward: no resident copy for range at %d — locking \
                discipline violated"
               off)
      | Some packed ->
          let slot, stored_len = unpack_slot packed in
          if stored_len <> len then
            failwith
              (Printf.sprintf
                 "Backup.roll_forward: resident copy at %d has length %d, range has %d"
                 off stored_len len);
          let dst = Heap.region d.slots in
          Region.copy_between ~src:main ~src_off:off ~dst ~dst_off:slot ~len;
          Region.persist dst slot len)

let roll_back t ~main ~off ~len =
  match t with
  | Full region ->
      Region.copy_between ~src:region ~src_off:off ~dst:main ~dst_off:off ~len;
      Region.persist main off len;
      true
  | Dynamic d -> (
      match Phash.find d.table ~key:off with
      | None -> false
      | Some packed ->
          let slot, stored_len = unpack_slot packed in
          if stored_len <> len then
            failwith
              (Printf.sprintf
                 "Backup.roll_back: resident copy at %d has length %d, range has %d" off
                 stored_len len);
          Region.copy_between ~src:(Heap.region d.slots) ~src_off:slot ~dst:main
            ~dst_off:off ~len;
          Region.persist main off len;
          true)

let storage_bytes t =
  match t with
  | Full region -> Region.size region
  | Dynamic d -> Region.size (Heap.region d.slots) + (Phash.capacity d.table * 16)

let hits t = match t with Full _ -> 0 | Dynamic d -> d.hits

let misses t = match t with Full _ -> 0 | Dynamic d -> d.misses

let evictions t = match t with Full _ -> 0 | Dynamic d -> d.evictions

let resident t = match t with Full _ -> 0 | Dynamic d -> Phash.count d.table

let copy_matches ?len t ~main ~off =
  match t with
  | Full region ->
      let len = Option.value len ~default:64 in
      Some (Region.equal_ranges region off main off len)
  | Dynamic d -> (
      match Phash.find d.table ~key:off with
      | None -> None
      | Some packed ->
          let slot, stored_len = unpack_slot packed in
          let len = Option.value len ~default:stored_len in
          let len = min len stored_len in
          Some (Region.equal_ranges (Heap.region d.slots) slot main off len))

let dump_mapping t =
  match t with
  | Full _ -> []
  | Dynamic d ->
      let acc = ref [] in
      Phash.iter d.table (fun ~key ~value ->
          let slot, len = unpack_slot value in
          acc := (key, slot, len) :: !acc);
      List.sort compare !acc
