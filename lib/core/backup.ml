module Region = Kamino_nvm.Region
module Heap = Kamino_heap.Heap

type policy = Lru_policy | Fifo_policy

type dynamic = {
  slots : Heap.t;
  table : Phash.t;
  lru : Lru.t;
  policy : policy;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type t = Full of Region.t | Dynamic of dynamic

(* The look-up table's value word packs the slot offset and the copy length
   so the slot allocator can be reconstructed from the table alone after a
   crash (the allocator metadata itself is volatile). Single-word values
   keep Phash's crash-atomic publish discipline intact. *)
let pack_slot ~slot ~len = slot lor (len lsl 32)

let unpack_slot v = (v land 0xFFFFFFFF, v lsr 32)

let create_full region = Full region

let full_region = function Full region -> Some region | Dynamic _ -> None

(* [capacity] is explicit rather than derived from the table region's size:
   regions are now sized with geometric growth headroom ([Phash.chain_size]),
   so "region bytes / 32" would no longer name the intended initial
   capacity. *)
let create_dynamic ~slots ~table ~capacity ~policy =
  Dynamic
    {
      slots = Heap.format slots;
      table = Phash.format table ~capacity;
      lru = Lru.create ~size_hint:capacity ();
      policy;
      hits = 0;
      misses = 0;
      evictions = 0;
    }

let reopen t =
  match t with
  | Full region -> Full region
  | Dynamic d ->
      (* The table is the persistent truth; the slot allocator's own
         metadata was volatile and is rebuilt from the mapping. Resident
         keys re-enter the recency queue so they stay evictable.

         Both passes stream: the allocator rebuild consumes the table's
         reverse iteration directly (the write order per object is the same
         as the old prepend-a-list-then-rebuild path), so reattaching at
         millions of resident copies allocates no intermediate list. *)
      let table = Phash.open_existing (Phash.region d.table) in
      let slots =
        Heap.rebuild_via (Heap.region d.slots) ~iter:(fun f ->
            Phash.iter_rev table (fun ~key:_ ~value ->
                let slot, len = unpack_slot value in
                f slot len))
      in
      let lru = Lru.create ~size_hint:(Phash.capacity table) () in
      Phash.iter table (fun ~key ~value:_ -> Lru.touch lru key);
      Dynamic
        { slots; table; lru; policy = d.policy; hits = 0; misses = 0; evictions = 0 }

let initialize_full t ~main =
  match t with
  | Full region ->
      Region.copy_between ~src:main ~src_off:0 ~dst:region ~dst_off:0
        ~len:(Region.size main);
      Region.persist_all region
  | Dynamic _ -> ()

let evict d ~locked =
  match Lru.evict_candidate d.lru ~locked with
  | None -> false
  | Some key ->
      let packed = Phash.find_or d.table ~key ~default:(-1) in
      if packed < 0 then begin
        (* The queue briefly knew a key the table does not (should not
           happen); drop it and try again. *)
        Lru.remove d.lru key;
        true
      end
      else begin
        let slot, _len = unpack_slot packed in
        ignore (Phash.remove d.table ~key);
        Heap.free d.slots slot;
        Lru.remove d.lru key;
        d.evictions <- d.evictions + 1;
        true
      end

let rec alloc_slot d ~len ~locked ~pressure ~relieved =
  match Heap.alloc d.slots len with
  | slot -> slot
  | exception Out_of_memory ->
      if evict d ~locked then alloc_slot d ~len ~locked ~pressure ~relieved
      else if not relieved then begin
        (* Everything resident is pinned — usually because committed write
           sets are still queued at the applier. Let the engine drain it,
           unpinning their copies, and retry once. *)
        pressure ();
        alloc_slot d ~len ~locked ~pressure ~relieved:true
      end
      else
        failwith
          "Backup: dynamic backup exhausted — every resident copy is locked \
           (working set exceeds alpha * heap)"

let drop_resident d ~key ~slot =
  ignore (Phash.remove d.table ~key);
  Heap.free d.slots slot;
  Lru.remove d.lru key

(* Forget the resident copy for a range whose object identity has died —
   called after rolling back an aborted or incomplete transaction, whose
   fresh allocations may be re-carved with different extent boundaries. *)
let drop t ~off =
  match t with
  | Full _ -> ()
  | Dynamic d ->
      let packed = Phash.find_or d.table ~key:off ~default:(-1) in
      if packed >= 0 then begin
        let slot, _len = unpack_slot packed in
        drop_resident d ~key:off ~slot
      end

(* Publish a mapping, shedding residents if the look-up table itself is the
   bottleneck. [Phash.Overload] only fires when the table region has no
   growth headroom left; evicting one entry leaves a reusable tombstone. *)
let rec publish_mapping d ~key ~value ~locked ~pressure ~relieved =
  match Phash.insert d.table ~key ~value with
  | () -> ()
  | exception Phash.Overload _ ->
      if evict d ~locked then publish_mapping d ~key ~value ~locked ~pressure ~relieved
      else if not relieved then begin
        pressure ();
        publish_mapping d ~key ~value ~locked ~pressure ~relieved:true
      end
      else
        failwith
          "Backup: dynamic look-up table exhausted — every resident copy is \
           locked and the table region cannot grow"

let ensure_copy t ~main ~off ~len ~locked ~pressure =
  match t with
  | Full _ -> ()
  | Dynamic d -> (
      let packed = Phash.find_or d.table ~key:off ~default:(-1) in
      let hit =
        if packed >= 0 then begin
          let slot, stored_len = unpack_slot packed in
          if stored_len = len then true
          else begin
            (* The same address hosts a different-sized object now (its
               previous allocation was rolled back by an abort or crash).
               The stale copy is useless — and copying the new extent
               into the undersized slot would corrupt its neighbours. *)
            drop_resident d ~key:off ~slot;
            false
          end
        end
        else false
      in
      match hit with
      | true ->
          d.hits <- d.hits + 1;
          (* FIFO ablation: recency is insertion order only. *)
          if d.policy = Lru_policy then Lru.touch d.lru off
      | false ->
          d.misses <- d.misses + 1;
          let slot = alloc_slot d ~len ~locked ~pressure ~relieved:false in
          let dst = Heap.region d.slots in
          Region.copy_between ~src:main ~src_off:off ~dst ~dst_off:slot ~len;
          Region.persist dst slot len;
          (* Publish the mapping only after the copy is durable; Phash's
             two-step insert keeps the entry itself crash-atomic. *)
          publish_mapping d ~key:off ~value:(pack_slot ~slot ~len) ~locked ~pressure
            ~relieved:false;
          Lru.touch d.lru off)

let is_full t = match t with Full _ -> true | Dynamic _ -> false

let has_copy t ~off =
  match t with
  | Full _ -> true
  | Dynamic d -> Phash.find_or d.table ~key:off ~default:(-1) >= 0

let roll_forward t ~main ~off ~len =
  match t with
  | Full region ->
      Region.copy_between ~src:main ~src_off:off ~dst:region ~dst_off:off ~len;
      Region.persist region off len
  | Dynamic d ->
      let packed = Phash.find_or d.table ~key:off ~default:(-1) in
      if packed < 0 then
        failwith
          (Printf.sprintf
             "Backup.roll_forward: no resident copy for range at %d — locking \
              discipline violated"
             off);
      let slot, stored_len = unpack_slot packed in
      if stored_len <> len then
        failwith
          (Printf.sprintf
             "Backup.roll_forward: resident copy at %d has length %d, range has %d"
             off stored_len len);
      let dst = Heap.region d.slots in
      Region.copy_between ~src:main ~src_off:off ~dst ~dst_off:slot ~len;
      Region.persist dst slot len

let roll_back t ~main ~off ~len =
  match t with
  | Full region ->
      Region.copy_between ~src:region ~src_off:off ~dst:main ~dst_off:off ~len;
      Region.persist main off len;
      true
  | Dynamic d ->
      let packed = Phash.find_or d.table ~key:off ~default:(-1) in
      if packed < 0 then false
      else begin
        let slot, stored_len = unpack_slot packed in
        if stored_len <> len then
          failwith
            (Printf.sprintf
               "Backup.roll_back: resident copy at %d has length %d, range has %d" off
               stored_len len);
        Region.copy_between ~src:(Heap.region d.slots) ~src_off:slot ~dst:main
          ~dst_off:off ~len;
        Region.persist main off len;
        true
      end

let storage_bytes t =
  match t with
  | Full region -> Region.size region
  | Dynamic d -> Region.size (Heap.region d.slots) + (Phash.capacity d.table * 16)

let hits t = match t with Full _ -> 0 | Dynamic d -> d.hits

let misses t = match t with Full _ -> 0 | Dynamic d -> d.misses

let evictions t = match t with Full _ -> 0 | Dynamic d -> d.evictions

let resident t = match t with Full _ -> 0 | Dynamic d -> Phash.count d.table

(* Completed incremental resizes of the look-up table (metrics gauge). *)
let migrations t =
  match t with Full _ -> 0 | Dynamic d -> Phash.migrations d.table

let copy_matches ?len t ~main ~off =
  match t with
  | Full region ->
      let len = Option.value len ~default:64 in
      Some (Region.equal_ranges region off main off len)
  | Dynamic d -> (
      match Phash.find d.table ~key:off with
      | None -> None
      | Some packed ->
          let slot, stored_len = unpack_slot packed in
          let len = Option.value len ~default:stored_len in
          let len = min len stored_len in
          Some (Region.equal_ranges (Heap.region d.slots) slot main off len))

let dump_mapping t =
  match t with
  | Full _ -> []
  | Dynamic d ->
      let acc = ref [] in
      Phash.iter d.table (fun ~key ~value ->
          let slot, len = unpack_slot value in
          acc := (key, slot, len) :: !acc);
      List.sort compare !acc
