module Region = Kamino_nvm.Region

type slot = int

type state = Free | Running | Committed | Aborted

type intent = { off : int; len : int }

type t = {
  region : Region.t;
  max_user_threads : int;
  max_tx_entries : int;
  n_slots : int;
  slots_start : int;
  slot_size : int;
  free : slot Queue.t;  (* volatile free list, rebuilt at open *)
  (* Unflushed byte span of the slot being built, if any: the slot index
     ([-1] = none) with the lowest and highest dirty offsets to flush at
     the next barrier. Flat mutable ints rather than an option-of-tuple:
     this is updated on every appended intent and the hot path must not
     allocate. *)
  mutable uf_slot : int;
  mutable uf_lo : int;
  mutable uf_hi : int;
  (* Most recently appended entry of the record being built: slot index
     ([-1] = none), entry index and range. Valid only while the entry is
     still unflushed — the condition under which an in-place rewrite is
     crash-safe (see [add_intent_merged]). *)
  mutable la_slot : int;
  mutable la_idx : int;
  mutable la_off : int;
  mutable la_len : int;
}

(* --- Range coalescing ----------------------------------------------------- *)

(* [coalesce ~line intents] sorts the ranges by offset and merges every
   overlapping or adjacent pair; with [line > 1], two ranges are also merged
   when the first ends in the same [line]-byte cache line in which the
   second starts (so two fields of one line become one range, at the cost of
   covering the gap bytes between them). The result is sorted and disjoint.
   With [line = 1] the merge is exact: the output covers precisely the bytes
   of the input, no more and no fewer. *)
let coalesce ?(line = 1) intents =
  let intents = List.filter (fun { len; _ } -> len > 0) intents in
  match List.sort (fun a b -> compare (a.off, a.len) (b.off, b.len)) intents with
  | [] -> []
  | first :: rest ->
      let merged, last =
        List.fold_left
          (fun (acc, cur) r ->
            let cur_end = cur.off + cur.len in
            if r.off <= cur_end || r.off / line = (cur_end - 1) / line then
              (acc, { off = cur.off; len = max cur_end (r.off + r.len) - cur.off })
            else (cur :: acc, r))
          ([], first) rest
      in
      List.rev (last :: merged)

let total_bytes intents = List.fold_left (fun acc { len; _ } -> acc + len) 0 intents

let magic_value = 0x4B54584C4F475631L (* "KTXLOGV1" *)

(* Header words. *)
let magic_off = 0
let checksum_off = 8
let threads_off = 16
let entries_off = 24
let slots_off = 32
let header_size = 64

let scratchpad_size = 64
let slot_header_size = 64
let entry_size = 24

(* Slot header words, relative to slot start. *)
let sh_tx_id = 0
let sh_state = 8
let sh_count = 16

let state_to_int = function Free -> 0 | Running -> 1 | Committed -> 2 | Aborted -> 3

(* Per-entry checksum: an entry is only trusted by recovery when this tag,
   derived from the entry contents and the owning transaction id, matches.
   A crash persists an arbitrary subset of the dirty 8-byte words of an
   unflushed entry; a stale or torn entry fails the check and is ignored,
   which is safe because the barrier ordering guarantees no data write
   covered by it ever reached NVM. *)
let check_of ~tx_id ~off ~len =
  (* The salt keeps an all-zero (never written) entry from validating:
     mix(0) would otherwise be 0, matching a zeroed checksum word. *)
  let z = Int64.add 0x5A17EDC0DE5EEDL (Int64.of_int (((tx_id * 1000003) lxor (off * 31)) + (len * 17))) in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  Int64.logxor z (Int64.shift_right_logical z 27)

let state_of_int = function
  | 0 -> Free
  | 1 -> Running
  | 2 -> Committed
  | 3 -> Aborted
  | n -> failwith (Printf.sprintf "Intent_log: corrupt state %d" n)

let slot_size_of ~max_tx_entries = slot_header_size + (max_tx_entries * entry_size)

let required_size ~max_user_threads ~max_tx_entries ~n_slots =
  header_size + (max_user_threads * scratchpad_size)
  + (n_slots * slot_size_of ~max_tx_entries)

let checksum_of ~max_user_threads ~max_tx_entries ~n_slots =
  Int64.add magic_value
    (Int64.of_int ((max_user_threads * 31) + (max_tx_entries * 17) + (n_slots * 7)))

let slot_off t slot = t.slots_start + (slot * t.slot_size)

(* Slot indices only come from the free queue and loops bounded by
   [n_slots], and [format]/[open_existing] verified the region covers every
   slot, so the header words are in bounds by construction — the unchecked
   accessors are safe and keep these hot helpers allocation- and
   branch-free. *)

let slot_state t slot =
  state_of_int (Region.unsafe_read_int t.region (slot_off t slot + sh_state))

let slot_tx_id t slot = Region.unsafe_read_int t.region (slot_off t slot + sh_tx_id)

let slot_count t slot = Region.unsafe_read_int t.region (slot_off t slot + sh_count)

let rebuild_free t =
  Queue.clear t.free;
  for s = 0 to t.n_slots - 1 do
    if slot_state t s = Free then Queue.add s t.free
  done

let format region ~max_user_threads ~max_tx_entries ~n_slots =
  let need = required_size ~max_user_threads ~max_tx_entries ~n_slots in
  if Region.size region < need then
    invalid_arg
      (Printf.sprintf "Intent_log.format: region of %d bytes < required %d"
         (Region.size region) need);
  Region.write_int64 region magic_off magic_value;
  Region.write_int64 region checksum_off (checksum_of ~max_user_threads ~max_tx_entries ~n_slots);
  Region.write_int region threads_off max_user_threads;
  Region.write_int region entries_off max_tx_entries;
  Region.write_int region slots_off n_slots;
  let slots_start = header_size + (max_user_threads * scratchpad_size) in
  let slot_size = slot_size_of ~max_tx_entries in
  for s = 0 to n_slots - 1 do
    Region.write_int region (slots_start + (s * slot_size) + sh_state) (state_to_int Free)
  done;
  Region.persist_all region;
  let t =
    {
      region;
      max_user_threads;
      max_tx_entries;
      n_slots;
      slots_start;
      slot_size;
      free = Queue.create ();
      uf_slot = -1;
      uf_lo = 0;
      uf_hi = 0;
      la_slot = -1;
      la_idx = 0;
      la_off = 0;
      la_len = 0;
    }
  in
  rebuild_free t;
  t

let open_existing region =
  if Region.read_int64 region magic_off <> magic_value then
    failwith "Intent_log.open_existing: bad magic";
  let max_user_threads = Region.read_int region threads_off in
  let max_tx_entries = Region.read_int region entries_off in
  let n_slots = Region.read_int region slots_off in
  if
    Region.read_int64 region checksum_off
    <> checksum_of ~max_user_threads ~max_tx_entries ~n_slots
  then failwith "Intent_log.open_existing: header checksum mismatch";
  let t =
    {
      region;
      max_user_threads;
      max_tx_entries;
      n_slots;
      slots_start = header_size + (max_user_threads * scratchpad_size);
      slot_size = slot_size_of ~max_tx_entries;
      free = Queue.create ();
      uf_slot = -1;
      uf_lo = 0;
      uf_hi = 0;
      la_slot = -1;
      la_idx = 0;
      la_off = 0;
      la_len = 0;
    }
  in
  rebuild_free t;
  t

let max_tx_entries t = t.max_tx_entries

let note_unflushed t slot lo hi =
  if t.uf_slot = slot then begin
    if lo < t.uf_lo then t.uf_lo <- lo;
    if hi > t.uf_hi then t.uf_hi <- hi
  end
  else if t.uf_slot >= 0 then
    (* Only one transaction builds a record at a time (data-serial
       execution); a stale span from another slot indicates a missed
       barrier. *)
    failwith "Intent_log: unflushed entries from a different slot"
  else begin
    t.uf_slot <- slot;
    t.uf_lo <- lo;
    t.uf_hi <- hi
  end

let begin_record t ~tx_id =
  match Queue.take_opt t.free with
  | None -> None
  | Some slot ->
      let off = slot_off t slot in
      Region.write_int t.region (off + sh_tx_id) tx_id;
      Region.write_int t.region (off + sh_state) (state_to_int Running);
      Region.write_int t.region (off + sh_count) 0;
      note_unflushed t slot off (off + slot_header_size);
      t.la_slot <- -1;
      Some slot

let add_intent t slot { off; len } =
  let base = slot_off t slot in
  let n = slot_count t slot in
  if n >= t.max_tx_entries then
    failwith
      (Printf.sprintf "Intent_log: transaction exceeds max_tx_entries=%d" t.max_tx_entries);
  let tx_id = slot_tx_id t slot in
  let eoff = base + slot_header_size + (n * entry_size) in
  Region.write_int t.region eoff off;
  Region.write_int t.region (eoff + 8) len;
  Region.write_int64 t.region (eoff + 16) (check_of ~tx_id ~off ~len);
  Region.write_int t.region (base + sh_count) (n + 1);
  note_unflushed t slot base (eoff + entry_size);
  t.la_slot <- slot;
  t.la_idx <- n;
  t.la_off <- off;
  t.la_len <- len

(* Append [i], or absorb it into the immediately preceding entry of [slot]
   when the two overlap or adjoin exactly and that entry has never been
   covered by a barrier. The in-place rewrite is crash-safe precisely in
   that window: no barrier since the append means no transactional data
   write has been issued under the entry's protection (writes barrier the
   log first), so if a crash tears the rewritten entry and recovery
   discards it, the bytes it covered hold only committed data and need no
   roll-back. Merging never widens coverage beyond the union of the two
   exact ranges — entries of distinct records must stay disjoint, or a
   committed record's roll-forward could resurrect a torn write of the
   crashed transaction (see DESIGN.md §7).

   Returns the resulting durable entry and whether a merge (or containment)
   absorbed the new range without appending. *)
let add_intent_merged t slot ({ off; len } as i) =
  if t.uf_slot = slot && t.la_slot = slot then begin
    let poff = t.la_off and plen = t.la_len in
    if poff <= off && off + len <= poff + plen then
      ({ off = poff; len = plen }, true) (* contained: nothing to write *)
    else if off <= poff + plen && poff <= off + len then begin
      let noff = min off poff in
      let nlen = max (off + len) (poff + plen) - noff in
      let base = slot_off t slot in
      let tx_id = slot_tx_id t slot in
      let idx = t.la_idx in
      let eoff = base + slot_header_size + (idx * entry_size) in
      Region.write_int t.region eoff noff;
      Region.write_int t.region (eoff + 8) nlen;
      Region.write_int64 t.region (eoff + 16) (check_of ~tx_id ~off:noff ~len:nlen);
      note_unflushed t slot eoff (eoff + entry_size);
      t.la_off <- noff;
      t.la_len <- nlen;
      ({ off = noff; len = nlen }, true)
    end
    else begin
      add_intent t slot i;
      (i, false)
    end
  end
  else begin
    add_intent t slot i;
    (i, false)
  end

let barrier t slot =
  if t.uf_slot = slot then begin
    Region.persist t.region t.uf_lo (t.uf_hi - t.uf_lo);
    t.uf_slot <- -1;
    t.la_slot <- -1
  end

let mark t slot state =
  barrier t slot;
  let off = slot_off t slot in
  Region.write_int t.region (off + sh_state) (state_to_int state);
  Region.persist t.region (off + sh_state) 8

let release t slot =
  (* Zero the whole header, not just the state word: a later [begin_record]
     in this slot may tear at a crash (any subset of its header words can
     persist), and recovery must never be able to combine a new [Running]
     state with a stale transaction id and entry count — that would
     resurrect an already-consumed record and roll back committed data.
     Starting from an all-zero header, every torn combination is benign:
     stale entries cannot validate against tx id 0, and a zero count means
     no intents. The header fits in one cache line, so this explicit flush
     is itself atomic. *)
  let never_persisted =
    if t.uf_slot = slot then begin
      (* A read-only transaction releases its slot without ever
         barriering it: the durable header is still the zeroed Free state
         from the previous release, so resetting the volatile image is
         enough (any torn persist of these zeros at a crash lands on an
         already-zero durable base). *)
      t.uf_slot <- -1;
      true
    end
    else false
  in
  if t.la_slot = slot then t.la_slot <- -1;
  let off = slot_off t slot in
  Region.write_int t.region (off + sh_tx_id) 0;
  Region.write_int t.region (off + sh_state) (state_to_int Free);
  Region.write_int t.region (off + sh_count) 0;
  if not never_persisted then Region.persist t.region off 24;
  Queue.add slot t.free

let intents t slot =
  let base = slot_off t slot in
  let n = min (slot_count t slot) t.max_tx_entries in
  let tx_id = slot_tx_id t slot in
  (* Walk forward, stopping at the first entry whose tag does not match:
     later entries were appended after it and cannot be trusted either. *)
  let rec collect i acc =
    if i >= n then List.rev acc
    else begin
      let eoff = base + slot_header_size + (i * entry_size) in
      let off = Region.read_int t.region eoff in
      let len = Region.read_int t.region (eoff + 8) in
      let check = Region.read_int64 t.region (eoff + 16) in
      if check <> check_of ~tx_id ~off ~len then List.rev acc
      else collect (i + 1) ({ off; len } :: acc)
    end
  in
  collect 0 []

let free_slots t = Queue.length t.free

let n_slots t = t.n_slots

let occupied_slots t =
  let slots = ref [] in
  for s = t.n_slots - 1 downto 0 do
    if slot_state t s <> Free then slots := s :: !slots
  done;
  List.sort (fun a b -> compare (slot_tx_id t a) (slot_tx_id t b)) !slots

let iter_records t f =
  List.iter (fun s -> f s (slot_tx_id t s) (slot_state t s) (intents t s)) (occupied_slots t)

let max_tx_id t =
  List.fold_left (fun acc s -> max acc (slot_tx_id t s)) 0 (occupied_slots t)
