module Region = Kamino_nvm.Region
module Clock = Kamino_sim.Clock

type task = {
  id : int;
  tx_id : int;
  slot : Intent_log.slot;
  ranges : Intent_log.intent list;
  finish : int;
  commit : int;
}

type apply_fn = task list -> unit

type t = {
  regions : Region.t array;
  apply : apply_fn;
  queue : task Queue.t;
  scratch : Clock.t;  (* absorbs NVM costs of lazy application *)
  mutable saved_clocks : Clock.t array;  (* reused across applications *)
  mutable vnow : int;
  mutable next_id : int;
  mutable applied_through : int;
  mutable wm_ns : int;
  mutable tasks_applied : int;
  mutable tasks_batched : int;
}

let create ~regions ~apply =
  let scratch = Clock.create () in
  {
    regions;
    apply;
    queue = Queue.create ();
    scratch;
    saved_clocks = Array.make (max 1 (Array.length regions)) scratch;
    vnow = 0;
    next_id = 1;
    applied_through = 0;
    wm_ns = 0;
    tasks_applied = 0;
    tasks_batched = 0;
  }

let enqueue t ~commit_time ~cost_ns ~tx_id ~slot ~ranges =
  let id = t.next_id in
  t.next_id <- id + 1;
  let start = max t.vnow commit_time in
  let finish = start + int_of_float cost_ns in
  t.vnow <- finish;
  Queue.add { id; tx_id; slot; ranges; finish; commit = commit_time } t.queue;
  (id, finish)

(* Run [f] with every region's cost charging redirected to the scratch
   clock: the task's timing was already settled at enqueue. The saved-clock
   array is engine-lifetime scratch — applications happen on the hot path
   (a lock conflict on a queued object syncs the applier synchronously), so
   the swap must not allocate per call. *)
let with_scratch_clock t f =
  let n = Array.length t.regions in
  if Array.length t.saved_clocks < n then
    t.saved_clocks <- Array.make n t.scratch;
  let saved = t.saved_clocks in
  for i = 0 to n - 1 do
    saved.(i) <- Region.clock t.regions.(i);
    Region.set_clock t.regions.(i) t.scratch
  done;
  let restore () =
    for i = 0 to n - 1 do
      Region.set_clock t.regions.(i) saved.(i)
    done
  in
  match f () with
  | v ->
      restore ();
      v
  | exception exn ->
      restore ();
      raise exn

let apply_batch t tasks =
  match tasks with
  | [] -> ()
  | _ ->
      with_scratch_clock t (fun () -> t.apply tasks);
      let n = List.length tasks in
      List.iter
        (fun task ->
          t.applied_through <- max t.applied_through task.id;
          t.wm_ns <- max t.wm_ns task.commit)
        tasks;
      t.tasks_applied <- t.tasks_applied + n;
      if n > 1 then t.tasks_batched <- t.tasks_batched + n

let sync_through t task_id =
  let rec collect acc =
    match Queue.peek_opt t.queue with
    | Some task when task.id <= task_id ->
        ignore (Queue.pop t.queue);
        collect (task :: acc)
    | Some _ | None -> List.rev acc
  in
  apply_batch t (collect [])

let drain t = sync_through t max_int

let drain_one t =
  match Queue.take_opt t.queue with
  | None -> None
  | Some task ->
      apply_batch t [ task ];
      Some task.finish

let applied_through t = t.applied_through

let watermark t = (t.applied_through, t.wm_ns)

let last_enqueued t = t.next_id - 1

let virtual_now t = t.vnow

let queued t = Queue.length t.queue

let tasks_applied t = t.tasks_applied

let tasks_batched t = t.tasks_batched
