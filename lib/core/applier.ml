module Region = Kamino_nvm.Region
module Clock = Kamino_sim.Clock

type task = {
  id : int;
  tx_id : int;
  slot : Intent_log.slot;
  ranges : Intent_log.intent list;
  finish : int;
}

type apply_fn = task list -> unit

type t = {
  regions : Region.t list;
  apply : apply_fn;
  queue : task Queue.t;
  scratch : Clock.t;  (* absorbs NVM costs of lazy application *)
  mutable vnow : int;
  mutable next_id : int;
  mutable applied_through : int;
  mutable tasks_applied : int;
  mutable tasks_batched : int;
}

let create ~regions ~apply =
  {
    regions;
    apply;
    queue = Queue.create ();
    scratch = Clock.create ();
    vnow = 0;
    next_id = 1;
    applied_through = 0;
    tasks_applied = 0;
    tasks_batched = 0;
  }

let enqueue t ~commit_time ~cost_ns ~tx_id ~slot ~ranges =
  let id = t.next_id in
  t.next_id <- id + 1;
  let start = max t.vnow commit_time in
  let finish = start + int_of_float cost_ns in
  t.vnow <- finish;
  Queue.add { id; tx_id; slot; ranges; finish } t.queue;
  (id, finish)

(* Run [f] with every region's cost charging redirected to the scratch
   clock: the task's timing was already settled at enqueue. *)
let with_scratch_clock t f =
  let saved = List.map (fun r -> (r, Region.clock r)) t.regions in
  List.iter (fun r -> Region.set_clock r t.scratch) t.regions;
  Fun.protect ~finally:(fun () -> List.iter (fun (r, c) -> Region.set_clock r c) saved) f

let apply_batch t tasks =
  match tasks with
  | [] -> ()
  | _ ->
      with_scratch_clock t (fun () -> t.apply tasks);
      let n = List.length tasks in
      List.iter (fun task -> t.applied_through <- max t.applied_through task.id) tasks;
      t.tasks_applied <- t.tasks_applied + n;
      if n > 1 then t.tasks_batched <- t.tasks_batched + n

let sync_through t task_id =
  let rec collect acc =
    match Queue.peek_opt t.queue with
    | Some task when task.id <= task_id ->
        ignore (Queue.pop t.queue);
        collect (task :: acc)
    | Some _ | None -> List.rev acc
  in
  apply_batch t (collect [])

let drain t = sync_through t max_int

let drain_one t =
  match Queue.take_opt t.queue with
  | None -> None
  | Some task ->
      apply_batch t [ task ];
      Some task.finish

let applied_through t = t.applied_through

let virtual_now t = t.vnow

let queued t = Queue.length t.queue

let tasks_applied t = t.tasks_applied

let tasks_batched t = t.tasks_batched
