type key = int

type entry = {
  mutable writer_release : int;
  mutable reader_release : int;
  mutable active : bool;
  mutable last_task : int;
  mutable held_base : int;  (* release time saved while held open-ended *)
}

(* The table is striped into [shards] independent hash tables so that large
   write sets spread their probe/insert cost instead of hammering one
   table's buckets. Keys are NVM byte offsets; dropping the low 6 bits
   before sharding keeps a cache line's worth of metadata words in one
   shard while still spreading distinct objects. *)
type t = {
  shards : (key, entry) Hashtbl.t array;
  mutable waits : int;
  mutable wait_events : int;
}

let default_shards = 16

let create ?(shards = default_shards) () =
  let shards = max 1 shards in
  {
    shards = Array.init shards (fun _ -> Hashtbl.create (4096 / shards + 1));
    waits = 0;
    wait_events = 0;
  }

let shard_count t = Array.length t.shards

let shard t key = t.shards.((key lsr 6) mod Array.length t.shards)

let entry t key =
  let table = shard t key in
  match Hashtbl.find_opt table key with
  | Some e -> e
  | None ->
      let e =
        { writer_release = 0; reader_release = 0; active = false; last_task = -1;
          held_base = 0 }
      in
      Hashtbl.add table key e;
      e

let record_wait t now target =
  if target > now then begin
    t.waits <- t.waits + (target - now);
    t.wait_events <- t.wait_events + 1
  end

let entry_of = entry

let acquire_write_e t e ~now ~cost_ns =
  let avail = max e.writer_release e.reader_release in
  record_wait t now avail;
  e.active <- true;
  max now avail + int_of_float cost_ns

let acquire_read_e t e ~now ~cost_ns =
  record_wait t now e.writer_release;
  max now e.writer_release + int_of_float cost_ns

let release_write_e e ~at =
  e.active <- false;
  if at > e.writer_release then e.writer_release <- at

let release_read_e e ~at = if at > e.reader_release then e.reader_release <- at

let last_writer_task_e e = e.last_task

let set_last_writer_task_e e id = e.last_task <- id

let acquire_write t key ~now ~cost_ns = acquire_write_e t (entry t key) ~now ~cost_ns

let acquire_read t key ~now ~cost_ns = acquire_read_e t (entry t key) ~now ~cost_ns

let release_writes t keys ~at = List.iter (fun key -> release_write_e (entry t key) ~at) keys

let release_reads t keys ~at = List.iter (fun key -> release_read_e (entry t key) ~at) keys

let held_by_active_tx t key =
  match Hashtbl.find_opt (shard t key) key with
  | Some e -> e.active
  | None -> false

let last_writer_task t key =
  match Hashtbl.find_opt (shard t key) key with
  | Some e -> e.last_task
  | None -> -1

let set_last_writer_task t key id = (entry t key).last_task <- id

let hold_writes t keys =
  List.iter
    (fun key ->
      let e = entry t key in
      e.held_base <- e.writer_release;
      e.writer_release <- max_int)
    keys

let release_held_writes t keys ~at =
  List.iter
    (fun key ->
      let e = entry t key in
      if e.writer_release = max_int then e.writer_release <- max e.held_base at
      else if at > e.writer_release then e.writer_release <- at)
    keys

let waits t = t.waits

let wait_events t = t.wait_events

let reset_stats t =
  t.waits <- 0;
  t.wait_events <- 0
