(* [Intent_only]: a non-head chain replica (§5). In-place updates guarded
   only by the intent log — there is no local backup, so incomplete
   records cannot be resolved locally; the chain layer supplies a peer
   ([Engine.resolve_from_peer]) before the replica rejoins, which is the
   reason Kamino-Tx-Chain needs [f+2] replicas. Aborts are decided at the
   head and never forwarded, so local rollback is unsupported. *)

open Variant

let claim_once t tx =
  (* Replica slots are released at commit, so a free one always exists
     under serial execution. *)
  match Intent_log.begin_record (the_ilog t) ~tx_id:tx.id with
  | Some s -> s
  | None -> error (Intent_log_exhausted "replica")

let declare t tx ~le:_ ~off ~len ~redirectable:_ =
  (* Record the intent, edit in place; the chain's neighbours stand in
     for the backup at recovery. *)
  let slot = claim_slot tx in
  log_intent t slot ~mergeable:t.e_config.coalesce_writes ~off ~len;
  None

let barrier t tx =
  match tx.slot with
  | Some slot -> Intent_log.barrier (the_ilog t) slot
  | None -> ()

let commit t tx =
  (match tx.slot with
  | None -> ()  (* read-only: the log was never touched *)
  | Some slot ->
      let ilog = the_ilog t in
      do_barrier tx;
      persist_ws t ~in_place_only:false;
      Intent_log.mark ilog slot Intent_log.Committed;
      (* No local backup to synchronize: the record only needs to outlive
         the in-place writes it covers, which are durable now. *)
      Intent_log.release ilog slot);
  release_all tx ~write_release:(Clock.now t.clk)

let abort _t tx =
  finish tx;
  error (Abort_unsupported Intent_only)

let recover t ~promote_running:_ =
  (* Reopen only: incomplete records wait for [resolve_from_peer]. *)
  let ilog = Intent_log.open_existing (Option.get t.ilog_region) in
  t.ilog <- Some ilog;
  t.next_tx_id <- max t.next_tx_id (Intent_log.max_tx_id ilog + 1)

let ops =
  {
    v_object_granular = false;
    v_begin = (fun _ ~tx_id:_ -> ());
    v_claim_slot = claim_once;
    v_declare = declare;
    v_pre_free = no_op_pre_free;
    v_barrier = barrier;
    v_commit = commit;
    v_abort = abort;
    v_prepare = unsupported "prepare (intent-only)";
    v_commit_prepared = unsupported "commit_prepared (intent-only)";
    v_recover = recover;
  }
