(** Persistent open-addressing hash table.

    Kamino-Tx-Dynamic's "backup look-up table": maps a main-heap offset to
    the offset of its copy in the partial backup region. The mapping must be
    durable — after a crash, recovery locates the roll-back copies through
    it — so mutations follow a two-step ordering: the value word is
    persisted first, then the key word is published with a second persist.
    The key store is the atomic commit point (8-byte aligned), so a torn
    insert leaves either no entry or a complete one, never a key pointing at
    a garbage value.

    Keys are positive integers (NVM offsets); 0 marks an empty bucket and -1
    a tombstone. *)

type t

(** [required_size ~capacity] — [capacity] is rounded up to a power of two. *)
val required_size : capacity:int -> int

val format : Kamino_nvm.Region.t -> capacity:int -> t

val open_existing : Kamino_nvm.Region.t -> t

val capacity : t -> int

val region : t -> Kamino_nvm.Region.t

(** Number of live entries (maintained volatilely, rebuilt on open). *)
val count : t -> int

(** [insert t ~key ~value] adds or overwrites. Raises [Failure] when the
    table is full (the dynamic backup sizes it at twice the LRU capacity, so
    this indicates a bug). *)
val insert : t -> key:int -> value:int -> unit

val find : t -> key:int -> int option

(** [remove t ~key] deletes the mapping if present; returns whether it was. *)
val remove : t -> key:int -> bool

(** [iter t f] calls [f ~key ~value] for every live entry. *)
val iter : t -> (key:int -> value:int -> unit) -> unit
