(** Persistent open-addressing hash table with crash-safe incremental
    resize.

    Kamino-Tx-Dynamic's "backup look-up table": maps a main-heap offset to
    the offset of its copy in the partial backup region. The mapping must be
    durable — after a crash, recovery locates the roll-back copies through
    it — so mutations follow a two-step ordering: the value word is
    persisted first, then the key word is published with a second persist.
    The key store is the atomic commit point (8-byte aligned), so a torn
    insert leaves either no entry or a complete one, never a key pointing at
    a garbage value.

    When an insert would push the load factor past 7/8 and the region has
    room for the next table in the geometric chain, the table arms a 2x
    {e split-migration}: a handful of old buckets are copied per subsequent
    insert (each batch an idempotent, persisted unit), and one final
    persisted store of the packed state word swaps generations atomically.
    A crash at any point either replays the in-flight batch (insert-if-
    absent, so harmless) or finds the swap already durable. Regions sized
    with [required_size ~doublings:n] can absorb [n] such doublings;
    without headroom the table instead raises {!Overload} once genuinely
    full.

    Keys are positive integers (NVM offsets); 0 marks an empty bucket and -1
    a tombstone. *)

type t

(** Raised by {!insert} when the table is full and cannot grow (no room in
    the region for the next table of the chain). *)
exception Overload of { capacity : int; count : int }

(** [required_size ~capacity] — [capacity] is rounded up to a power of two. *)
val required_size : capacity:int -> int

(** [chain_size ~capacity ~doublings] — region size with headroom for
    [doublings] incremental 2x resizes: the whole geometric chain
    [c0 + 2*c0 + ... + 2^doublings*c0] of tables.
    [chain_size ~doublings:0] = {!required_size}. *)
val chain_size : capacity:int -> doublings:int -> int

val format : Kamino_nvm.Region.t -> capacity:int -> t

val open_existing : Kamino_nvm.Region.t -> t

(** Capacity of the {e active} table (grows across resizes). *)
val capacity : t -> int

val region : t -> Kamino_nvm.Region.t

(** Number of live entries (maintained volatilely, rebuilt on open). *)
val count : t -> int

(** Completed incremental resizes (the generation of the active table). *)
val migrations : t -> int

(** Whether a split-migration is currently in flight. *)
val resizing : t -> bool

(** [insert t ~key ~value] adds or overwrites. Raises {!Overload} when the
    table is full and the region has no room to grow it. *)
val insert : t -> key:int -> value:int -> unit

val find : t -> key:int -> int option

(** [find_or t ~key ~default] — allocation-free {!find} for hot paths
    (the backup consults the table on every transactional write). *)
val find_or : t -> key:int -> default:int -> int

(** [remove t ~key] deletes the mapping if present; returns whether it was. *)
val remove : t -> key:int -> bool

(** [iter t f] calls [f ~key ~value] for every live entry. *)
val iter : t -> (key:int -> value:int -> unit) -> unit

(** [iter_rev t f] — like {!iter} but in descending bucket order. Lets the
    backup's reopen stream straight into the heap rebuild without first
    materializing (and reversing) a list of every live entry. *)
val iter_rev : t -> (key:int -> value:int -> unit) -> unit
