(* [Cow]: declaring a redirectable intent creates a working copy in the
   data-log arena; transactional writes and reads are redirected to it
   (the shell follows [irec.cow]), and commit applies the copies to the
   originals before the locks release — critical-path copying moved to the
   commit side (Figure 5's CoW timeline). Non-redirectable ranges
   (allocator metadata, fresh extents, the root pointer) get undo
   snapshots and are edited in place. *)

open Variant

let begin_ t ~tx_id = Data_log.begin_tx (the_dlog t) ~tx_id

let declare t _tx ~le:_ ~off ~len ~redirectable =
  if redirectable then
    Some
      (Data_log.add (the_dlog t) ~off ~len ~replay:Data_log.On_commit ~src:t.main)
  else begin
    ignore
      (Data_log.add (the_dlog t) ~off ~len ~replay:Data_log.On_abort ~src:t.main);
    None
  end

(* [free] on a redirected object: fold the working copy into the main heap
   and revert to in-place editing before the deallocator mutates the extent
   directly. The fold is preceded by an undo snapshot of the
   pre-transaction bytes so an abort can still restore them. *)
let pre_free t _tx (extent : Heap.range) =
  let i = ws_find_off t extent.Heap.off in
  if i >= 0 then
    let r = t.ws.(i) in
    match r.cow with
    | Some entry ->
        let dlog = the_dlog t in
        ignore
          (Data_log.add dlog ~off:extent.Heap.off ~len:extent.Heap.len
             ~replay:Data_log.On_abort ~src:t.main);
        Data_log.reseal dlog entry;
        Data_log.barrier dlog;
        Data_log.apply_entry dlog entry ~dst:t.main;
        Region.persist t.main extent.Heap.off extent.Heap.len;
        r.cow <- None;
        t.ws_cow_n <- t.ws_cow_n - 1
    | None -> ()

let barrier t _tx = Data_log.barrier (the_dlog t)

let commit t tx =
  if t.ws_n = 0 then begin
    Data_log.finish (the_dlog t);
    release_all tx ~write_release:(Clock.now t.clk)
  end
  else begin
    let dlog = the_dlog t in
    (* Working copies get their final checksums; in-place ranges get
       commit-time redo snapshots so the [Applying] phase can replay
       everything from the arena alone. Arena order guarantees these
       commit-time snapshots are applied last, superseding any stale
       working copy of an object that was folded back and freed. *)
    for i = 0 to t.ws_n - 1 do
      match t.ws.(i).cow with
      | Some entry -> Data_log.reseal dlog entry
      | None -> ()
    done;
    for i = 0 to t.ws_n - 1 do
      let r = t.ws.(i) in
      if r.cow = None then
        ignore
          (Data_log.add dlog ~off:r.r_off ~len:r.r_len ~replay:Data_log.On_commit
             ~src:t.main)
    done;
    Data_log.barrier dlog;
    Data_log.mark_applying dlog;
    (* Apply the copies to the originals — the critical-path copy-back of
       Figure 5's CoW timeline — then persist everything. *)
    for i = 0 to t.ws_n - 1 do
      match t.ws.(i).cow with
      | Some entry -> Data_log.apply_entry dlog entry ~dst:t.main
      | None -> ()
    done;
    persist_ws t ~in_place_only:false;
    Data_log.finish dlog;
    release_all tx ~write_release:(Clock.now t.clk)
  end

let ops =
  {
    v_object_granular = false;
    v_begin = begin_;
    v_claim_slot = (fun _ _ -> error (Component_missing "intent log"));
    v_declare = declare;
    v_pre_free = pre_free;
    v_barrier = barrier;
    v_commit = commit;
    v_abort = data_log_abort;
    v_prepare = unsupported "prepare (cow)";
    v_commit_prepared = unsupported "commit_prepared (cow)";
    v_recover = (fun t ~promote_running:_ -> data_log_recover t);
  }
