(* The kind-independent shell of the transaction engine. Shared state,
   the strategy signature and the helper toolbox live in {!Variant}; the
   per-kind critical paths (declare/commit/abort/recover) live in the
   variant modules and are dispatched through [t.strat]. This module owns
   what every kind shares: construction, write-set tracking, lock
   acquisition with wait attribution, clock plumbing, the data accessors,
   crash/recovery scaffolding, and metrics. *)

open Variant
module Region = Kamino_nvm.Region
module Cost_model = Kamino_nvm.Cost_model
module Clock = Kamino_sim.Clock
module Rng = Kamino_sim.Rng
module Heap = Kamino_heap.Heap
module Obs = Kamino_obs.Obs
module Metrics = Kamino_obs.Metrics

type kind = Variant.kind =
  | No_logging
  | Undo_logging
  | Cow
  | Kamino_simple
  | Kamino_dynamic of { alpha : float; policy : Backup.policy }
  | Intent_only

let kind_name = Variant.kind_name

type config = Variant.config = {
  heap_bytes : int;
  log_slots : int;
  max_tx_entries : int;
  data_log_bytes : int;
  cost : Cost_model.t;
  crash_mode : Region.crash_mode;
  check_intents : bool;
  flush_per_intent : bool;
  global_pending : bool;
  coalesce_writes : bool;
  lock_shards : int;
}

let default_config = Variant.default_config

type error = Variant.error =
  | Tx_already_active
  | Tx_finished
  | Tx_not_active
  | Intent_log_exhausted of string
  | Missing_intent of { off : int; len : int }
  | Abort_unsupported of kind
  | Component_missing of string
  | Unsupported of string

exception Error = Variant.Error

let error_message = Variant.error_message

type nonrec t = t

type nonrec tx = tx

let tx_engine tx = tx.owner

let tx_id tx = tx.id

let kind t = t.e_kind

let config t = t.e_config

let heap t = t.heap

let clock t = t.clk

let now t = Clock.now t.clk

let set_clock t c =
  t.clk <- c;
  Array.iter (fun r -> Region.set_clock r c) t.all_regions

let main_region t = t.main

let backup t = t.bkp

let applier t = t.appl

let intent_log t = t.ilog

let data_log t = t.dlog

let locks t = t.locks

let root t = Heap.root t.heap

let main_counters = Variant.main_counters

let storage_bytes = Variant.storage_bytes

(* --- Construction ------------------------------------------------------- *)

let strategy_of_kind = function
  | No_logging -> Variant.no_logging
  | Undo_logging -> Undo_variant.ops
  | Cow -> Cow_variant.ops
  | Kamino_simple -> Kamino_variant.simple
  | Kamino_dynamic _ -> Kamino_variant.dynamic
  | Intent_only -> Intent_variant.ops

let create ?(config = default_config) ?(obs = Obs.null) ?(obs_track = 1) ~kind
    ~seed () =
  let rng = Rng.create seed in
  let clk = Clock.create () in
  let mk size = Region.create ~cost:config.cost ~crash_mode:config.crash_mode
      ~rng:(Rng.split rng) ~clock:clk ~size ()
  in
  let main = Region.create ~cost:config.cost ~crash_mode:config.crash_mode
      ~rng:(Rng.split rng) ~clock:clk ~size:config.heap_bytes ()
  in
  let heap = Heap.format main in
  let ilog_region, ilog =
    if uses_intent_log kind then begin
      let size =
        Intent_log.required_size ~max_user_threads:8
          ~max_tx_entries:config.max_tx_entries ~n_slots:config.log_slots
      in
      let r = mk size in
      (Some r, Some (Intent_log.format r ~max_user_threads:8
                       ~max_tx_entries:config.max_tx_entries ~n_slots:config.log_slots))
    end
    else (None, None)
  in
  let dlog_region, dlog =
    if uses_data_log kind then begin
      let r = mk (Data_log.required_size ~arena_bytes:config.data_log_bytes) in
      (Some r, Some (Data_log.format r))
    end
    else (None, None)
  in
  let bkp, backup_regions =
    match kind with
    | Kamino_simple ->
        let r = mk config.heap_bytes in
        let b = Backup.create_full r in
        Backup.initialize_full b ~main;
        (Some b, [ r ])
    | Kamino_dynamic { alpha; policy } ->
        let slots_bytes = max (int_of_float (alpha *. float_of_int config.heap_bytes)) 65536 in
        let slots = mk slots_bytes in
        let capacity = max 1024 (slots_bytes / 128) in
        (* Headroom for two incremental table doublings when the initial
           capacity is modest; tables already sized for millions of slots
           get no extra chain (the region would double for headroom that a
           bounded slot heap can never need). *)
        let doublings = if capacity <= 65536 then 2 else 0 in
        let table = mk (Phash.chain_size ~capacity ~doublings) in
        (Some (Backup.create_dynamic ~slots ~table ~capacity ~policy), [ slots; table ])
    | No_logging | Undo_logging | Cow | Intent_only -> (None, [])
  in
  let all_regions =
    Array.of_list
      ((main :: Option.to_list ilog_region) @ Option.to_list dlog_region @ backup_regions)
  in
  let reg = Metrics.create () in
  let t =
    {
      e_kind = kind;
      strat = strategy_of_kind kind;
      e_config = config;
      main;
      heap;
      ilog_region;
      ilog;
      dlog_region;
      dlog;
      bkp;
      locks = Locks.create ~shards:config.lock_shards ();
      appl = None;
      clk;
      rng;
      next_tx_id = 1;
      active = None;
      e_obs = obs;
      obs_base = obs_track;
      reg;
      m_committed = Metrics.counter reg "engine.committed";
      m_aborted = Metrics.counter reg "engine.aborted";
      m_ranges_coalesced = Metrics.counter reg "engine.ranges_coalesced";
      m_bytes_saved = Metrics.counter reg "engine.bytes_saved";
      h_dep_wait = Metrics.hist reg "engine.dependent_wait_ns";
      h_applier_lag = Metrics.hist reg "applier.lag_ns";
      h_queue_depth = Metrics.hist reg "applier.queue_depth";
      m_snapshot_hits = Metrics.counter reg "snapshot.hits";
      m_snapshot_fallbacks = Metrics.counter reg "snapshot.fallbacks";
      h_snapshot_staleness = Metrics.hist reg "engine.snapshot_staleness_ns";
      last_commit_ns = 0;
      last_write_keys = [];
      all_regions;
      ws = Array.init 64 (fun _ -> { r_off = 0; r_len = 0; r_key = 0; cow = None });
      ws_n = 0;
      ws_cow_n = 0;
    }
  in
  (match kind with
  | Kamino_simple | Kamino_dynamic _ -> t.appl <- Some (make_applier t)
  | No_logging | Undo_logging | Cow | Intent_only -> ());
  if Obs.enabled obs then begin
    Obs.name_track obs obs_track "tx";
    Obs.name_track obs (obs_track + 1) "applier";
    Obs.name_track obs (obs_track + 2) "nvm";
    Array.iter (fun r -> Region.set_obs r ~track:(obs_track + 2) obs) all_regions
  end;
  set_clock t clk;
  t

(* --- Transactions ------------------------------------------------------- *)

let begin_tx t =
  (match t.active with
  | Some _ -> error Tx_already_active
  | None -> ());
  let id = t.next_tx_id in
  t.next_tx_id <- id + 1;
  let t_begin = Clock.now t.clk in
  Region.charge t.main (cost t).Cost_model.tx_overhead_ns;
  t.strat.v_begin t ~tx_id:id;
  (* Recycle the engine-owned scratch. Clearing here (not at finish) also
     covers a transaction torn down by [crash], which never finishes.
     Dropping stale [cow] references lets the data-log entries go. *)
  for i = 0 to t.ws_n - 1 do
    t.ws.(i).cow <- None
  done;
  t.ws_n <- 0;
  t.ws_cow_n <- 0;
  let tx =
    {
      owner = t;
      id;
      t_begin;
      slot = None;  (* claimed lazily at the first write intent *)
      lock_keys = [];
      lock_entries = [];
      read_entries = [];
      needs_barrier = uses_data_log t.e_kind;
      prepared = false;
      finished = false;
    }
  in
  t.active <- Some tx;
  tx

(* Declare a write intent on an arbitrary byte range. [redirectable] selects
   CoW redirection; allocator metadata, fresh extents and the root pointer
   are always edited in place. [lock_key] defaults to the range start;
   field-granular intents lock the owning object, log only the field. *)
let declare ?lock_key tx ~off ~len ~redirectable =
  active_tx tx;
  let lock_key = Option.value lock_key ~default:off in
  if ws_find_off tx.owner off < 0 then begin
    let t = tx.owner in
    let cm = cost t in
    let le = Locks.entry_of t.locks lock_key in
    let now0 = Clock.now t.clk in
    (* Cause attribution, read before acquiring: the wait is {e dependent}
       (the paper's backup catch-up wait) when the lock's previous writer
       has a committed-but-unapplied task — the same predicate [pinned]
       uses. Anything else is plain contention. *)
    let dependent =
      Obs.enabled t.e_obs
      &&
      match t.appl with
      | Some appl -> Locks.last_writer_task_e le > Applier.applied_through appl
      | None -> false
    in
    let held_at =
      Locks.acquire_write_e t.locks le ~now:now0 ~cost_ns:cm.Cost_model.lock_ns
    in
    (if Obs.enabled t.e_obs then
       let waited = held_at - now0 - int_of_float cm.Cost_model.lock_ns in
       if waited > 0 then begin
         if dependent then Metrics.observe t.h_dep_wait waited;
         Obs.emit t.e_obs ~kind:Obs.k_lock_wait ~track:t.obs_base ~ts:now0
           ~dur:waited ~a:lock_key
           ~b:(if dependent then 1 else 0)
           ~c:tx.id
       end);
    ignore (Clock.advance_to t.clk held_at);
    let cow = t.strat.v_declare t tx ~le ~off ~len ~redirectable in
    ignore (ws_push t ~off ~len ~key:lock_key ~cow);
    if not (List.mem lock_key tx.lock_keys) then begin
      tx.lock_keys <- lock_key :: tx.lock_keys;
      tx.lock_entries <- le :: tx.lock_entries
    end;
    tx.needs_barrier <- true
  end

let add tx p =
  let t = tx.owner in
  if not (Heap.is_allocated t.heap p) then
    invalid_arg (Printf.sprintf "Engine.add: %d is not an allocated object" p);
  let { Heap.off; len } = Heap.extent t.heap p in
  declare tx ~off ~len ~redirectable:true

let add_range tx { Heap.off; len } = declare tx ~off ~len ~redirectable:false

let add_field tx p field len =
  let t = tx.owner in
  if not (Heap.is_allocated t.heap p) then
    invalid_arg (Printf.sprintf "Engine.add_field: %d is not an allocated object" p);
  let extent = Heap.extent t.heap p in
  if field < 0 || p + field + len > extent.Heap.off + extent.Heap.len then
    invalid_arg "Engine.add_field: range outside the object";
  if t.strat.v_object_granular then
    (* The dynamic backup tracks copies per object (as in the paper, whose
       log entries are object addresses): a sub-object copy would go stale
       when another transaction updates the object through a whole-extent
       intent. Intents are 24 bytes either way. *)
    add tx p
  else if
    (* If the whole object is already declared, the field is covered. *)
    ws_find_off t extent.Heap.off < 0
  then declare tx ~lock_key:extent.Heap.off ~off:(p + field) ~len ~redirectable:true

let read_lock tx p =
  active_tx tx;
  let t = tx.owner in
  let { Heap.off; len = _ } = Heap.extent t.heap p in
  let cm = cost t in
  let e = Locks.entry_of t.locks off in
  let now0 = Clock.now t.clk in
  let dependent =
    Obs.enabled t.e_obs
    &&
    match t.appl with
    | Some appl -> Locks.last_writer_task_e e > Applier.applied_through appl
    | None -> false
  in
  let held_at =
    Locks.acquire_read_e t.locks e ~now:now0 ~cost_ns:cm.Cost_model.lock_ns
  in
  (if Obs.enabled t.e_obs then
     let waited = held_at - now0 - int_of_float cm.Cost_model.lock_ns in
     if waited > 0 then begin
       if dependent then Metrics.observe t.h_dep_wait waited;
       Obs.emit t.e_obs ~kind:Obs.k_lock_wait ~track:t.obs_base ~ts:now0
         ~dur:waited ~a:off
         ~b:(if dependent then 1 else 0)
         ~c:tx.id
     end);
  ignore (Clock.advance_to t.clk held_at);
  tx.read_entries <- e :: tx.read_entries

let alloc tx size =
  active_tx tx;
  let t = tx.owner in
  if size > Heap.max_object_size then begin
    (* Chained extent: declare every link's allocator words and extent,
       then perform the whole multi-link allocation under one barrier — the
       chain appears or rolls back atomically like any other allocation. *)
    let ptrs, ranges = Heap.alloc_chain_ranges t.heap size in
    List.iter (fun { Heap.off; len } -> declare tx ~off ~len ~redirectable:false) ranges;
    do_barrier tx;
    let head = Heap.alloc_chain t.heap size in
    assert (head = List.hd ptrs);
    head
  end
  else begin
    let p, ranges = Heap.alloc_ranges t.heap size in
    List.iter (fun { Heap.off; len } -> declare tx ~off ~len ~redirectable:false) ranges;
    do_barrier tx;
    let p' = Heap.alloc t.heap size in
    assert (p' = p);
    p
  end

let free tx p =
  active_tx tx;
  let t = tx.owner in
  if not (Heap.is_allocated t.heap p) then
    invalid_arg (Printf.sprintf "Engine.free: %d is not an allocated object" p);
  let extent = Heap.extent t.heap p in
  t.strat.v_pre_free t tx extent;
  List.iter
    (fun { Heap.off; len } -> declare tx ~off ~len ~redirectable:false)
    (Heap.free_ranges t.heap p);
  do_barrier tx;
  Heap.free t.heap p

let chain_links t p = Heap.chain_links t.heap p

let chain_size t p = Heap.chain_size t.heap p

let free_chain tx p =
  active_tx tx;
  let t = tx.owner in
  let links = Heap.chain_links t.heap p in
  List.iter
    (fun (lp, _, _) ->
      let extent = Heap.extent t.heap lp in
      t.strat.v_pre_free t tx extent;
      List.iter
        (fun { Heap.off; len } -> declare tx ~off ~len ~redirectable:false)
        (Heap.free_ranges t.heap lp))
    links;
  do_barrier tx;
  Heap.free_chain t.heap p

(* --- Data access -------------------------------------------------------- *)

(* Each accessor below resolves the covering intent by index and branches
   on its CoW redirection inline — a generic closure-threaded [write_via]/
   [read_via] formulation dominated per-access allocation on the hot read
   path (every B+Tree key comparison lands here). [-1] means "no covering
   intent": reads fall through to the main heap, writes are an intent
   violation when [check_intents] is set. *)

let check_write_idx tx abs len =
  let i = covering_idx tx.owner abs len in
  if i < 0 && tx.owner.e_config.check_intents then
    error (Missing_intent { off = abs; len });
  i

let cow_of t i = if i < 0 then None else t.ws.(i).cow

let write_int64 tx p field v =
  active_tx tx;
  let t = tx.owner in
  let abs = p + field in
  let i = check_write_idx tx abs 8 in
  do_barrier tx;
  match cow_of t i with
  | None -> Region.write_int64 t.main abs v
  | Some entry ->
      Data_log.payload_write_int64 (the_dlog t) entry (abs - t.ws.(i).r_off) v

let write_int tx p field v =
  active_tx tx;
  let t = tx.owner in
  let abs = p + field in
  let i = check_write_idx tx abs 8 in
  do_barrier tx;
  match cow_of t i with
  | None -> Region.write_int t.main abs v
  | Some entry ->
      Data_log.payload_write_int (the_dlog t) entry (abs - t.ws.(i).r_off) v

let write_bytes tx p field b =
  active_tx tx;
  let t = tx.owner in
  let abs = p + field in
  let i = check_write_idx tx abs (Bytes.length b) in
  do_barrier tx;
  match cow_of t i with
  | None -> Region.write_bytes t.main abs b
  | Some entry ->
      Data_log.payload_write_bytes (the_dlog t) entry (abs - t.ws.(i).r_off) b

let write_string tx p field s =
  active_tx tx;
  let t = tx.owner in
  let abs = p + field in
  let i = check_write_idx tx abs (String.length s) in
  do_barrier tx;
  match cow_of t i with
  | None -> Region.write_string t.main abs s
  | Some entry ->
      Data_log.payload_write_string (the_dlog t) entry (abs - t.ws.(i).r_off) s

let write_byte tx p field v =
  active_tx tx;
  let t = tx.owner in
  let abs = p + field in
  let i = check_write_idx tx abs 1 in
  do_barrier tx;
  match cow_of t i with
  | None -> Region.write_byte t.main abs v
  | Some entry ->
      Data_log.payload_write_byte (the_dlog t) entry (abs - t.ws.(i).r_off) v

(* Reads consult the write set only to follow CoW redirections; when the
   transaction has none ([ws_cow_n] = 0 — always, outside the CoW engine),
   they go straight to the main heap. *)

let read_int64 tx p field =
  active_tx tx;
  let t = tx.owner in
  let abs = p + field in
  if t.ws_cow_n = 0 then Region.read_int64 t.main abs
  else
    let i = covering_idx t abs 8 in
    match cow_of t i with
    | None -> Region.read_int64 t.main abs
    | Some entry ->
        Data_log.payload_read_int64 (the_dlog t) entry (abs - t.ws.(i).r_off)

let read_int tx p field =
  active_tx tx;
  let t = tx.owner in
  let abs = p + field in
  if t.ws_cow_n = 0 then Region.read_int t.main abs
  else
    let i = covering_idx t abs 8 in
    match cow_of t i with
    | None -> Region.read_int t.main abs
    | Some entry ->
        Data_log.payload_read_int (the_dlog t) entry (abs - t.ws.(i).r_off)

let read_bytes tx p field len =
  active_tx tx;
  let t = tx.owner in
  let abs = p + field in
  if t.ws_cow_n = 0 then Region.read_bytes t.main abs len
  else
    let i = covering_idx t abs len in
    match cow_of t i with
    | None -> Region.read_bytes t.main abs len
    | Some entry ->
        Data_log.payload_read_bytes (the_dlog t) entry (abs - t.ws.(i).r_off) len

let read_string tx p field len =
  active_tx tx;
  let t = tx.owner in
  let abs = p + field in
  if t.ws_cow_n = 0 then Region.read_string t.main abs len
  else
    let i = covering_idx t abs len in
    match cow_of t i with
    | None -> Region.read_string t.main abs len
    | Some entry ->
        Data_log.payload_read_string (the_dlog t) entry (abs - t.ws.(i).r_off) len

let read_byte tx p field =
  active_tx tx;
  let t = tx.owner in
  let abs = p + field in
  if t.ws_cow_n = 0 then Region.read_byte t.main abs
  else
    let i = covering_idx t abs 1 in
    match cow_of t i with
    | None -> Region.read_byte t.main abs
    | Some entry ->
        Data_log.payload_read_byte (the_dlog t) entry (abs - t.ws.(i).r_off)

(* --- Snapshot reads (MVCC-lite) ------------------------------------------ *)

(* A read-only view over the full backup region at the applier's published
   watermark. The backup mirrors the main heap at identical offsets and is
   written only by the applier (in ascending task-id order) and by
   recovery, so at any instant it holds exactly the heap state with
   committed tasks [1..applied_through] rolled forward: a transactionally
   consistent, slightly stale image. Readers therefore take {e no locks},
   never consult the intent log, and never join the dependent-wait class —
   the paper's storage overhead repurposed as read capacity. Loads charge
   whatever clock the backup region currently carries (the reader's, under
   the driver's per-client multiplexing), never the writer's. *)
type snapshot = { s_owner : t; s_reg : Region.t }

let snapshot_engine s = s.s_owner

let snapshot_watermark t =
  match (t.bkp, t.appl) with
  | Some b, Some a when Backup.is_full b -> Some (Applier.watermark a)
  | _ -> None

let read_tx ?clock t f =
  let serve reg a =
    let snap = { s_owner = t; s_reg = reg } in
    let run () = f snap in
    let result =
      match clock with
      | None -> run ()
      | Some c ->
          (* Dedicated reader clock: swap it in on the backup region only,
             so concurrent writers (whose clock stays on every other
             region) observe zero cost from the read. *)
          let saved = Region.clock reg in
          Region.set_clock reg c;
          Fun.protect ~finally:(fun () -> Region.set_clock reg saved) run
    in
    match result with
    | Some v ->
        Metrics.incr t.m_snapshot_hits;
        let _, wm_ns = Applier.watermark a in
        Metrics.observe t.h_snapshot_staleness (max 0 (t.last_commit_ns - wm_ns));
        Some v
    | None ->
        Metrics.incr t.m_snapshot_fallbacks;
        None
  in
  match (t.bkp, t.appl) with
  | Some b, Some a when Backup.is_full b -> (
      match Backup.full_region b with
      | Some reg -> serve reg a
      | None ->
          Metrics.incr t.m_snapshot_fallbacks;
          None)
  | _ ->
      (* Dynamic backups are object-keyed (no consistent whole-heap image)
         and the other kinds have no backup at all: the caller falls back
         to the locked read path behind the same API. *)
      Metrics.incr t.m_snapshot_fallbacks;
      None

let snapshot_read_int64 s p field = Region.read_int64 s.s_reg (p + field)

let snapshot_read_int s p field = Region.read_int s.s_reg (p + field)

let snapshot_read_byte s p field = Region.read_byte s.s_reg (p + field)

let snapshot_read_bytes s p field len = Region.read_bytes s.s_reg (p + field) len

let snapshot_read_string s p field len = Region.read_string s.s_reg (p + field) len

(* The root pointer as the snapshot saw it: the entry point for traversing
   persistent structures inside the backup image. *)
let snapshot_root s =
  let { Heap.off; len = _ } = Heap.root_range s.s_owner.heap in
  Region.read_int s.s_reg off

let peek_int64 t p field = Region.read_int64 t.main (p + field)

let peek_int t p field = Region.read_int t.main (p + field)

let peek_bytes t p field len = Region.read_bytes t.main (p + field) len

let peek_string t p field len = Region.read_string t.main (p + field) len

(* Cost-free committed read for observability walks (B+Tree depth/occupancy
   gauges): no simulated load is charged, so gauge collection cannot drift
   the bit-identity oracles. Never use on a data path. *)
let probe_int t p field = Region.peek_int t.main (p + field)

let set_root tx p =
  active_tx tx;
  let t = tx.owner in
  add_range tx (Heap.root_range t.heap);
  do_barrier tx;
  Heap.set_root t.heap p

(* --- Commit and abort --------------------------------------------------- *)

let emit_commit_span t tx =
  Metrics.incr t.m_committed;
  (* Reading the clock charges nothing; the stamp feeds snapshot-staleness
     accounting ([read_tx]) without perturbing the commit path. *)
  t.last_commit_ns <- Clock.now t.clk;
  if Obs.enabled t.e_obs then
    let nowc = Clock.now t.clk in
    Obs.emit t.e_obs ~kind:Obs.k_commit ~track:t.obs_base ~ts:tx.t_begin
      ~dur:(nowc - tx.t_begin) ~a:tx.id ~b:t.ws_n ~c:0

let commit tx =
  active_tx tx;
  let t = tx.owner in
  if tx.prepared then error (Unsupported "commit after prepare (use commit_prepared)");
  t.strat.v_commit t tx;
  emit_commit_span t tx;
  finish tx

let abort tx =
  active_tx tx;
  let t = tx.owner in
  t.strat.v_abort t tx;
  (* Rollback restores allocator words behind the heap's back; the
     occupancy directory resyncs lazily on the next stats read. *)
  Heap.mark_stats_stale t.heap;
  Metrics.incr t.m_aborted;
  (if Obs.enabled t.e_obs then
     let nowc = Clock.now t.clk in
     Obs.emit t.e_obs ~kind:Obs.k_abort ~track:t.obs_base ~ts:tx.t_begin
       ~dur:(nowc - tx.t_begin) ~a:tx.id ~b:0 ~c:0);
  finish tx

(* Two-phase commit for the sharded façade: [prepare] makes the write set
   and its intent record durable while the record still says [Running];
   [commit_prepared] is the decision half. The shard coordinator writes
   its persistent cross-shard marker between the two (DESIGN.md par11). *)

let prepare tx =
  active_tx tx;
  if tx.prepared then error (Unsupported "prepare called twice");
  let t = tx.owner in
  t.strat.v_prepare t tx;
  tx.prepared <- true

let commit_prepared tx =
  active_tx tx;
  if not tx.prepared then error (Unsupported "commit_prepared without prepare");
  let t = tx.owner in
  t.strat.v_commit_prepared t tx;
  emit_commit_span t tx;
  finish tx

let with_tx t f =
  let tx = begin_tx t in
  match f tx with
  | v ->
      commit tx;
      v
  | exception exn ->
      if not tx.finished then abort tx;
      raise exn

(* --- Crash and recovery ------------------------------------------------- *)

let crash t =
  (match t.active with
  | Some tx ->
      tx.finished <- true;
      t.active <- None
  | None -> ());
  Array.iter Region.crash t.all_regions

let recover ?(promote_running = fun _ -> false) t =
  t.locks <- Locks.create ~shards:t.e_config.lock_shards ();
  t.active <- None;
  t.heap <- Heap.open_existing t.main;
  t.strat.v_recover t ~promote_running

let drain_backup = Variant.drain_backup

let verify_backup = Variant.verify_backup

let last_write_keys t = t.last_write_keys

let unresolved_records t =
  match t.ilog with
  | None -> []
  | Some ilog ->
      let acc = ref [] in
      Intent_log.iter_records ilog (fun _ tx_id _ intents ->
          acc :=
            ( tx_id,
              List.map (fun { Intent_log.off; len } -> { Heap.off; len }) intents )
            :: !acc);
      List.rev !acc

let resolve_from_peer t ~peer =
  let ilog = the_ilog t in
  let slots = ref [] in
  Intent_log.iter_records ilog (fun slot _ _ intents -> slots := (slot, intents) :: !slots);
  List.iter
    (fun (slot, intents) ->
      List.iter
        (fun { Intent_log.off; len } ->
          Region.copy_between ~src:peer ~src_off:off ~dst:t.main ~dst_off:off ~len;
          Region.persist t.main off len)
        intents;
      Intent_log.release ilog slot)
    (List.rev !slots)

(* Promote a chain replica to head: build a full local backup from the
   current heap (what a newly promoted head does in §5.2) and start an
   applier. *)
let promote_to_kamino t =
  (match t.e_kind with
  | Intent_only -> ()
  | _ -> invalid_arg "Engine.promote_to_kamino: only replicas can be promoted");
  let r =
    Region.create ~cost:t.e_config.cost ~crash_mode:t.e_config.crash_mode
      ~rng:(Rng.split t.rng) ~clock:t.clk ~size:t.e_config.heap_bytes ()
  in
  let b = Backup.create_full r in
  Backup.initialize_full b ~main:t.main;
  t.bkp <- Some b;
  t.all_regions <- Array.append t.all_regions [| r |];
  t.e_kind <- Kamino_simple;
  t.strat <- Kamino_variant.simple;
  t.appl <- Some (make_applier t);
  if Obs.enabled t.e_obs then Region.set_obs r ~track:(t.obs_base + 2) t.e_obs;
  set_clock t t.clk

(* --- Metrics ------------------------------------------------------------ *)

type metrics = {
  committed : int;
  aborted : int;
  critical_path_copies : int;
  backup_hits : int;
  backup_misses : int;
  backup_evictions : int;
  applier_tasks : int;
  tasks_batched : int;
  ranges_coalesced : int;
  bytes_saved : int;
  lock_wait_ns : int;
  lock_wait_events : int;
  storage_bytes : int;
  snapshot_hits : int;
  snapshot_fallbacks : int;
}

let metrics (t : t) =
  {
    committed = Metrics.value t.m_committed;
    aborted = Metrics.value t.m_aborted;
    critical_path_copies =
      (match t.dlog with Some d -> Data_log.entries_created d | None -> 0);
    backup_hits = (match t.bkp with Some b -> Backup.hits b | None -> 0);
    backup_misses = (match t.bkp with Some b -> Backup.misses b | None -> 0);
    backup_evictions = (match t.bkp with Some b -> Backup.evictions b | None -> 0);
    applier_tasks = (match t.appl with Some a -> Applier.tasks_applied a | None -> 0);
    tasks_batched = (match t.appl with Some a -> Applier.tasks_batched a | None -> 0);
    ranges_coalesced = Metrics.value t.m_ranges_coalesced;
    bytes_saved = Metrics.value t.m_bytes_saved;
    lock_wait_ns = Locks.waits t.locks;
    lock_wait_events = Locks.wait_events t.locks;
    storage_bytes = storage_bytes t;
    snapshot_hits = Metrics.value t.m_snapshot_hits;
    snapshot_fallbacks = Metrics.value t.m_snapshot_fallbacks;
  }

let obs t = t.e_obs

(* Whole-engine fingerprint for determinism oracles: simulated instant,
   the metrics record, and every region's NVM counters and content
   digests, hashed together. Built exclusively from cost-free reads
   ([Region.digest], counter loads), so taking a fingerprint cannot move
   the execution it observes — two runs are bit-equivalent iff their
   fingerprints match. *)
let fingerprint t =
  let b = Buffer.create 512 in
  Buffer.add_string b (Printf.sprintf "now=%d;" (Clock.now t.clk));
  let m = metrics t in
  Buffer.add_string b
    (Printf.sprintf "m=%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d;" m.committed
       m.aborted m.critical_path_copies m.backup_hits m.backup_misses
       m.backup_evictions m.applier_tasks m.tasks_batched m.ranges_coalesced
       m.bytes_saved m.lock_wait_ns m.lock_wait_events m.storage_bytes
       m.snapshot_hits m.snapshot_fallbacks);
  Array.iter
    (fun r ->
      let c = Region.counters r in
      Buffer.add_string b
        (Printf.sprintf "r=%d,%d,%d,%d,%d,%d,%d,%d,%s;" c.Region.stores
           c.Region.bytes_stored c.Region.loads c.Region.bytes_loaded
           c.Region.lines_flushed c.Region.fences c.Region.bytes_copied
           c.Region.crashes (Region.digest r)))
    t.all_regions;
  Digest.to_hex (Digest.string (Buffer.contents b))

(* The registry as a one-stop snapshot: the engine's own counters and
   histograms update live; numbers owned by subcomponents (backup, applier,
   locks) are synced in as gauges on each call so sinks see everything the
   old ad-hoc [metrics] record carried. *)
let registry t =
  let gauge name v = Metrics.set (Metrics.counter t.reg name) v in
  gauge "backup.hits" (match t.bkp with Some b -> Backup.hits b | None -> 0);
  gauge "backup.misses" (match t.bkp with Some b -> Backup.misses b | None -> 0);
  gauge "backup.evictions"
    (match t.bkp with Some b -> Backup.evictions b | None -> 0);
  gauge "applier.tasks"
    (match t.appl with Some a -> Applier.tasks_applied a | None -> 0);
  gauge "applier.tasks_batched"
    (match t.appl with Some a -> Applier.tasks_batched a | None -> 0);
  gauge "datalog.critical_path_copies"
    (match t.dlog with Some d -> Data_log.entries_created d | None -> 0);
  gauge "locks.wait_ns" (Locks.waits t.locks);
  gauge "locks.wait_events" (Locks.wait_events t.locks);
  gauge "storage.bytes" (storage_bytes t);
  (* Heap occupancy and table-resize gauges are cost-free by construction:
     [Heap.stats] reads only the volatile directory (resyncing, when stale,
     through [Region.peek_*]) and [Backup.migrations] is an in-memory
     counter — calling [registry] cannot drift the A/B words/op gate. *)
  let hs = Heap.stats t.heap in
  gauge "heap.segments" hs.Heap.segments_live;
  gauge "heap.live_bytes" hs.Heap.live_bytes;
  gauge "heap.live_objects" hs.Heap.live_objects;
  gauge "phash.migrations" (match t.bkp with Some b -> Backup.migrations b | None -> 0);
  t.reg
