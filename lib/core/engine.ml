module Region = Kamino_nvm.Region
module Cost_model = Kamino_nvm.Cost_model
module Clock = Kamino_sim.Clock
module Rng = Kamino_sim.Rng
module Heap = Kamino_heap.Heap
module Obs = Kamino_obs.Obs
module Metrics = Kamino_obs.Metrics

type kind =
  | No_logging
  | Undo_logging
  | Cow
  | Kamino_simple
  | Kamino_dynamic of { alpha : float; policy : Backup.policy }
  | Intent_only

let kind_name = function
  | No_logging -> "no-logging"
  | Undo_logging -> "undo-logging"
  | Cow -> "cow"
  | Kamino_simple -> "kamino-simple"
  | Intent_only -> "intent-only"
  | Kamino_dynamic { alpha; policy } ->
      Printf.sprintf "kamino-dynamic(%.0f%%%s)" (alpha *. 100.0)
        (match policy with Backup.Lru_policy -> "" | Backup.Fifo_policy -> ",fifo")

type config = {
  heap_bytes : int;
  log_slots : int;
  max_tx_entries : int;
  data_log_bytes : int;
  cost : Cost_model.t;
  crash_mode : Region.crash_mode;
  check_intents : bool;
  flush_per_intent : bool;
  global_pending : bool;
  coalesce_writes : bool;
  lock_shards : int;
}

let default_config =
  {
    heap_bytes = 16 * 1024 * 1024;
    log_slots = 256;
    max_tx_entries = 192;
    data_log_bytes = 8 * 1024 * 1024;
    cost = Cost_model.default;
    crash_mode = Region.Words_survive_randomly;
    check_intents = true;
    flush_per_intent = false;
    global_pending = false;
    coalesce_writes = true;
    lock_shards = 16;
  }

(* One declared write intent of the active transaction. [cow] is the CoW
   working copy when the range is redirected; [None] means the range is
   edited in place (always, for the non-CoW kinds). [r_key] is the write
   lock protecting the range (the owning object's extent for field-granular
   intents) — the coalescer uses it to decide which gaps are safe to fill. *)
type irec = {
  mutable r_off : int;
  mutable r_len : int;
  mutable r_key : int;
  mutable cow : Data_log.entry option;
}

type t = {
  mutable e_kind : kind;
  e_config : config;
  main : Region.t;
  mutable heap : Heap.t;
  ilog_region : Region.t option;
  mutable ilog : Intent_log.t option;
  dlog_region : Region.t option;
  mutable dlog : Data_log.t option;
  mutable bkp : Backup.t option;
  mutable locks : Locks.t;
  mutable appl : Applier.t option;
  mutable clk : Clock.t;
  rng : Rng.t;
  mutable next_tx_id : int;
  mutable active : tx option;
  (* Observability. The engine's bookkeeping counters live in a
     {!Kamino_obs.Metrics} registry; handles are resolved once here so
     every hot-path update stays a single field mutation. [e_obs] is
     [Obs.null] unless the caller opted in at [create]; every event site
     is a single enabled-check branch and never touches a clock, so
     tracing cannot move a simulated ns (DESIGN.md par10). [obs_base] is
     the engine's base Perfetto track: base = transactions, base+1 =
     applier timeline, base+2 = NVM write-backs. *)
  e_obs : Obs.t;
  obs_base : int;
  reg : Metrics.t;
  m_committed : Metrics.counter;
  m_aborted : Metrics.counter;
  m_ranges_coalesced : Metrics.counter;
  m_bytes_saved : Metrics.counter;
  h_dep_wait : Metrics.hist;
  h_applier_lag : Metrics.hist;
  h_queue_depth : Metrics.hist;
  mutable last_write_keys : int list;
  mutable all_regions : Region.t array;
  (* Per-transaction scratch, owned by the engine and recycled across
     transactions (execution is serial at the data level, so at most one
     transaction uses it at a time). [ws.(0 .. ws_n-1)] is the write set in
     declaration order, its [irec]s pooled and overwritten in place; range
     starts are unique within it, and membership checks are linear scans
     (write sets are a handful of ranges — a hash table costs more in
     per-transaction clearing than the scans do). [ws_cow_n] counts entries
     carrying a CoW redirection: when zero — always, for every non-CoW
     engine kind — reads can go straight to the main heap without
     consulting the write set. The [tx] handle itself stays a small fresh
     record per transaction so stale handles from a finished transaction
     are still detected by [active_tx]. *)
  mutable ws : irec array;
  mutable ws_n : int;
  mutable ws_cow_n : int;
}

and tx = {
  owner : t;
  id : int;
  t_begin : int;  (* client-clock ns at begin, for the commit/abort span *)
  mutable slot : Intent_log.slot option;
  mutable lock_keys : int list;  (* write-lock keys (object extents) *)
  mutable lock_entries : Locks.entry list;  (* handles for [lock_keys], same order *)
  mutable read_entries : Locks.entry list;
  mutable needs_barrier : bool;
  mutable finished : bool;
}

let tx_engine tx = tx.owner

let kind t = t.e_kind

let config t = t.e_config

let heap t = t.heap

let clock t = t.clk

let now t = Clock.now t.clk

let set_clock t c =
  t.clk <- c;
  Array.iter (fun r -> Region.set_clock r c) t.all_regions

let main_region t = t.main

let backup t = t.bkp

let applier t = t.appl

let intent_log t = t.ilog

let data_log t = t.dlog

let locks t = t.locks

let root t = Heap.root t.heap

(* Aggregate NVM counters over every region of the stack (heap, logs,
   backup): the whole point of coalescing and batching is to shrink the
   copy and write-back traffic of the {e system}, most of which lands on
   the backup and log regions, not the main heap. *)
let main_counters t =
  let agg =
    {
      Region.stores = 0;
      bytes_stored = 0;
      loads = 0;
      bytes_loaded = 0;
      lines_flushed = 0;
      fences = 0;
      bytes_copied = 0;
      crashes = 0;
    }
  in
  Array.iter
    (fun r ->
      let c = Region.counters r in
      agg.Region.stores <- agg.Region.stores + c.Region.stores;
      agg.Region.bytes_stored <- agg.Region.bytes_stored + c.Region.bytes_stored;
      agg.Region.loads <- agg.Region.loads + c.Region.loads;
      agg.Region.bytes_loaded <- agg.Region.bytes_loaded + c.Region.bytes_loaded;
      agg.Region.lines_flushed <- agg.Region.lines_flushed + c.Region.lines_flushed;
      agg.Region.fences <- agg.Region.fences + c.Region.fences;
      agg.Region.bytes_copied <- agg.Region.bytes_copied + c.Region.bytes_copied;
      agg.Region.crashes <- agg.Region.crashes + c.Region.crashes)
    t.all_regions;
  agg

let storage_bytes t = Array.fold_left (fun acc r -> acc + Region.size r) 0 t.all_regions

(* --- Construction ------------------------------------------------------- *)

let uses_intent_log = function
  | Kamino_simple | Kamino_dynamic _ | Intent_only -> true
  | No_logging | Undo_logging | Cow -> false

let uses_data_log = function
  | Undo_logging | Cow -> true
  | No_logging | Kamino_simple | Kamino_dynamic _ | Intent_only -> false

(* The applier hands every drain over as one batch of tasks; merging their
   ranges into a single copy pass is what "batched backup propagation"
   means. Only {e exact} merges (overlap / adjacency — the union covers
   precisely the same bytes) are legal here: a gap-filling merge across
   tasks could cover a third object an active transaction is updating in
   place, and its uncommitted bytes must never reach the backup (an abort
   would then restore them). Committed-but-queued ranges themselves are
   safe to copy at any later time — [declare] applies every queued task
   covering an object before the new transaction's first write to it, so no
   queued range ever overlaps bytes an active transaction has modified.
   Dynamic backups are object-keyed ([roll_forward] demands an exact
   [(off, len)] resident match), so their batches only deduplicate
   identical ranges, never merge bytes. *)
let make_applier t =
  let apply tasks =
    let b = Option.get t.bkp and ilog = Option.get t.ilog in
    (if Obs.enabled t.e_obs then
       let ntasks = List.length tasks in
       let nranges =
         List.fold_left (fun n task -> n + List.length task.Applier.ranges) 0 tasks
       in
       Obs.emit t.e_obs ~kind:Obs.k_applier_batch ~track:(t.obs_base + 1)
         ~ts:(Clock.now t.clk) ~dur:(-1) ~a:ntasks ~b:nranges ~c:0);
    match tasks with
    | [ ({ Applier.ranges = ([] | [ _ ]) as raw; _ } as task) ]
      when match raw with [ r ] -> r.Intent_log.len > 0 | _ -> true ->
        (* Singleton batch with at most one non-empty range: nothing can
           merge or deduplicate, so skip the cross-task machinery. This is
           the common shape when a lock conflict syncs one queued task. *)
        List.iter
          (fun { Intent_log.off; len } -> Backup.roll_forward b ~main:t.main ~off ~len)
          raw;
        Intent_log.release ilog task.Applier.slot
    | _ ->
    let raw = List.concat_map (fun task -> task.Applier.ranges) tasks in
    let merged =
      if not t.e_config.coalesce_writes then raw
      else if Backup.is_full b then Intent_log.coalesce raw
      else begin
        let seen = Hashtbl.create 16 in
        List.filter
          (fun { Intent_log.off; len } ->
            if Hashtbl.mem seen (off, len) then false
            else begin
              Hashtbl.add seen (off, len) ();
              true
            end)
          raw
      end
    in
    if t.e_config.coalesce_writes then begin
      Metrics.add t.m_ranges_coalesced (List.length raw - List.length merged);
      Metrics.add t.m_bytes_saved
        (Intent_log.total_bytes raw - Intent_log.total_bytes merged)
    end;
    List.iter
      (fun { Intent_log.off; len } -> Backup.roll_forward b ~main:t.main ~off ~len)
      merged;
    List.iter (fun task -> Intent_log.release ilog task.Applier.slot) tasks
  in
  Applier.create ~regions:t.all_regions ~apply

let create ?(config = default_config) ?(obs = Obs.null) ?(obs_track = 1) ~kind
    ~seed () =
  let rng = Rng.create seed in
  let clk = Clock.create () in
  let mk size = Region.create ~cost:config.cost ~crash_mode:config.crash_mode
      ~rng:(Rng.split rng) ~clock:clk ~size ()
  in
  let main = Region.create ~cost:config.cost ~crash_mode:config.crash_mode
      ~rng:(Rng.split rng) ~clock:clk ~size:config.heap_bytes ()
  in
  let heap = Heap.format main in
  let ilog_region, ilog =
    if uses_intent_log kind then begin
      let size =
        Intent_log.required_size ~max_user_threads:8
          ~max_tx_entries:config.max_tx_entries ~n_slots:config.log_slots
      in
      let r = mk size in
      (Some r, Some (Intent_log.format r ~max_user_threads:8
                       ~max_tx_entries:config.max_tx_entries ~n_slots:config.log_slots))
    end
    else (None, None)
  in
  let dlog_region, dlog =
    if uses_data_log kind then begin
      let r = mk (Data_log.required_size ~arena_bytes:config.data_log_bytes) in
      (Some r, Some (Data_log.format r))
    end
    else (None, None)
  in
  let bkp, backup_regions =
    match kind with
    | Kamino_simple ->
        let r = mk config.heap_bytes in
        let b = Backup.create_full r in
        Backup.initialize_full b ~main;
        (Some b, [ r ])
    | Kamino_dynamic { alpha; policy } ->
        let slots_bytes = max (int_of_float (alpha *. float_of_int config.heap_bytes)) 65536 in
        let slots = mk slots_bytes in
        let table = mk (Phash.required_size ~capacity:(max 1024 (slots_bytes / 128))) in
        (Some (Backup.create_dynamic ~slots ~table ~policy), [ slots; table ])
    | No_logging | Undo_logging | Cow | Intent_only -> (None, [])
  in
  let all_regions =
    Array.of_list
      ((main :: Option.to_list ilog_region) @ Option.to_list dlog_region @ backup_regions)
  in
  let reg = Metrics.create () in
  let t =
    {
      e_kind = kind;
      e_config = config;
      main;
      heap;
      ilog_region;
      ilog;
      dlog_region;
      dlog;
      bkp;
      locks = Locks.create ~shards:config.lock_shards ();
      appl = None;
      clk;
      rng;
      next_tx_id = 1;
      active = None;
      e_obs = obs;
      obs_base = obs_track;
      reg;
      m_committed = Metrics.counter reg "engine.committed";
      m_aborted = Metrics.counter reg "engine.aborted";
      m_ranges_coalesced = Metrics.counter reg "engine.ranges_coalesced";
      m_bytes_saved = Metrics.counter reg "engine.bytes_saved";
      h_dep_wait = Metrics.hist reg "engine.dependent_wait_ns";
      h_applier_lag = Metrics.hist reg "applier.lag_ns";
      h_queue_depth = Metrics.hist reg "applier.queue_depth";
      last_write_keys = [];
      all_regions;
      ws = Array.init 64 (fun _ -> { r_off = 0; r_len = 0; r_key = 0; cow = None });
      ws_n = 0;
      ws_cow_n = 0;
    }
  in
  (match kind with
  | Kamino_simple | Kamino_dynamic _ -> t.appl <- Some (make_applier t)
  | No_logging | Undo_logging | Cow | Intent_only -> ());
  if Obs.enabled obs then begin
    Obs.name_track obs obs_track "tx";
    Obs.name_track obs (obs_track + 1) "applier";
    Obs.name_track obs (obs_track + 2) "nvm";
    Array.iter (fun r -> Region.set_obs r ~track:(obs_track + 2) obs) all_regions
  end;
  set_clock t clk;
  t

(* --- Helpers ------------------------------------------------------------ *)

let cost t = t.e_config.cost

let active_tx tx =
  if tx.finished then failwith "Engine: transaction already finished";
  match tx.owner.active with
  | Some a when a == tx -> ()
  | _ -> failwith "Engine: transaction is not the active one"

(* Index into the write set of the most recently declared intent covering
   [abs, abs+len), or [-1]. Scanning newest-first matches the old
   list-order semantics when ranges overlap; returning an index (the
   caller reads [ws.(i)]) keeps the per-access path allocation-free. *)
(* Top-level (not a local closure): a local [rec] would capture its free
   variables afresh on every access, allocating on the hottest path. *)
let rec covering_scan ws abs len i =
  if i < 0 then -1
  else
    let r = Array.unsafe_get ws i in
    if r.r_off <= abs && abs + len <= r.r_off + r.r_len then i
    else covering_scan ws abs len (i - 1)

let covering_idx t abs len = covering_scan t.ws abs len (t.ws_n - 1)

(* Index of the declared intent whose range starts exactly at [off], or
   [-1]. Range starts are unique within a transaction, so this is a set
   membership test. *)
let rec ws_off_scan ws off i =
  if i < 0 then -1
  else if (Array.unsafe_get ws i).r_off = off then i
  else ws_off_scan ws off (i - 1)

let ws_find_off t off = ws_off_scan t.ws off (t.ws_n - 1)

(* Claim the next pooled [irec], growing the pool by doubling. Growth uses
   [Array.init] so every fresh slot is a distinct record — a shared filler
   would alias the pool. *)
let ws_push t ~off ~len ~key ~cow =
  (if t.ws_n = Array.length t.ws then
     let n = Array.length t.ws in
     t.ws <-
       Array.init (2 * n) (fun i ->
           if i < n then t.ws.(i) else { r_off = 0; r_len = 0; r_key = 0; cow = None }));
  let r = t.ws.(t.ws_n) in
  t.ws_n <- t.ws_n + 1;
  r.r_off <- off;
  r.r_len <- len;
  r.r_key <- key;
  r.cow <- cow;
  if cow <> None then t.ws_cow_n <- t.ws_cow_n + 1;
  r

let do_barrier tx =
  if tx.needs_barrier then begin
    let t = tx.owner in
    (match t.e_kind with
    | Kamino_simple | Kamino_dynamic _ | Intent_only -> (
        match tx.slot with
        | Some slot -> Intent_log.barrier (Option.get t.ilog) slot
        | None -> ())
    | Undo_logging | Cow -> Data_log.barrier (Option.get t.dlog)
    | No_logging -> ());
    tx.needs_barrier <- false
  end

(* Flush the write set's ranges (declaration order) against the main heap,
   fencing iff at least one range was selected. The fence condition tracks
   the {e range list}, not the lines actually flushed — a commit whose
   ranges are already clean still fences, exactly as the list-based
   predecessor of this function did. [in_place_only] restricts to ranges
   without a CoW redirection. *)
let persist_ws t ~in_place_only =
  let n = ref 0 in
  for i = 0 to t.ws_n - 1 do
    let r = t.ws.(i) in
    if (not in_place_only) || r.cow = None then begin
      incr n;
      Region.flush t.main r.r_off r.r_len
    end
  done;
  if !n > 0 then Region.fence t.main

(* Append a write intent to the log, merging it into the immediately
   preceding entry when legal (see {!Intent_log.add_intent_merged}). Log
   entries stay an {e exact} union of the declared bytes: recovery's
   cross-record disjointness argument forbids gap-filling — a widened
   committed entry could overlap the incomplete transaction's torn bytes
   and launder them into the backup before the rollback reads it. Dynamic
   backups never merge at all: their recovery resolves ranges object by
   object and needs each entry to match a resident copy exactly. *)
let log_intent t slot ~off ~len =
  let ilog = Option.get t.ilog in
  let mergeable =
    t.e_config.coalesce_writes
    && match t.e_kind with
       | Kamino_simple | Intent_only -> true
       | No_logging | Undo_logging | Cow | Kamino_dynamic _ -> false
  in
  if mergeable then begin
    let _, merged = Intent_log.add_intent_merged ilog slot { Intent_log.off; len } in
    if merged then Metrics.incr t.m_ranges_coalesced
  end
  else Intent_log.add_intent ilog slot { Intent_log.off; len };
  if t.e_config.flush_per_intent then Intent_log.barrier ilog slot;
  if Obs.enabled t.e_obs then
    Obs.emit t.e_obs ~kind:Obs.k_intent ~track:t.obs_base ~ts:(Clock.now t.clk)
      ~dur:(-1) ~a:off ~b:len ~c:0

(* Coalesce a committed write set before it is enqueued at the applier.
   Exact overlap/adjacency merges are always safe (the union covers
   precisely the same bytes). The 64 B line-threshold merge — two ranges
   whose gap lies within one cache line become one range, gap included —
   is applied only when both ranges belong to the same locked object
   ([r_key]): the gap bytes then sit under this transaction's own write
   lock, so they hold committed data whenever the (possibly lazy) copy
   executes. A cross-object gap could cover a third, unrelated object that
   an active transaction is updating in place, and its uncommitted bytes
   must never reach the backup — an abort would restore them. *)
let coalesce_write_set t =
  let line = 64 in
  let n = t.ws_n in
  if n = 0 then []
  else if n = 1 then
    [ { Intent_log.off = t.ws.(0).r_off; len = t.ws.(0).r_len } ]
  else begin
    (* Range starts are unique within a transaction ([scr_by_key] is keyed
       by them), so sorting by [r_off] alone is a total order and the
       unstable [Array.sort] cannot reorder equal keys. *)
    let arr = Array.sub t.ws 0 n in
    Array.sort (fun a b -> Int.compare a.r_off b.r_off) arr;
    let acc = ref [] in
    let coff = ref arr.(0).r_off and clen = ref arr.(0).r_len in
    let ckey = ref arr.(0).r_key and cmixed = ref false in
    for i = 1 to n - 1 do
      let r = arr.(i) in
      let cend = !coff + !clen in
      let same_obj = (not !cmixed) && !ckey = r.r_key in
      if r.r_off <= cend then begin
        clen := max cend (r.r_off + r.r_len) - !coff;
        if not same_obj then cmixed := true
      end
      else if same_obj && r.r_off / line = (cend - 1) / line then
        clen := r.r_off + r.r_len - !coff
      else begin
        acc := { Intent_log.off = !coff; len = !clen } :: !acc;
        coff := r.r_off;
        clen := r.r_len;
        ckey := r.r_key;
        cmixed := false
      end
    done;
    acc := { Intent_log.off = !coff; len = !clen } :: !acc;
    List.rev !acc
  end

(* Modelled applier cost of propagating a committed write set: copy each
   range into the backup and issue its write-backs. The applier drains
   batches of tasks behind one fence, so the fence latency is amortized. *)
let applier_fence_batch = 4.0

let task_cost cm ranges =
  (* Open-coded fold: a closure-based [List.fold_left] over floats boxes
     the accumulator on every step without flambda. *)
  let acc = ref (cm.Cost_model.fence_ns /. applier_fence_batch) in
  List.iter
    (fun { Intent_log.off = _; len } ->
      acc :=
        !acc
        +. Cost_model.copy_cost cm len
        +. (cm.Cost_model.flush_line_ns *. float_of_int ((len + 63) / 64)))
    ranges;
  !acc

(* Predicate for dynamic-backup eviction: an object is pinned while the
   active transaction holds it or while a committed-but-unapplied task still
   needs its resident copy. *)
let pinned t key =
  Locks.held_by_active_tx t.locks key
  ||
  match t.appl with
  | Some a -> Locks.last_writer_task t.locks key > Applier.applied_through a
  | None -> false

(* --- Transactions ------------------------------------------------------- *)

let begin_tx t =
  (match t.active with
  | Some _ -> failwith "Engine.begin_tx: a transaction is already active"
  | None -> ());
  let id = t.next_tx_id in
  t.next_tx_id <- id + 1;
  let t_begin = Clock.now t.clk in
  Region.charge t.main (cost t).Cost_model.tx_overhead_ns;
  (match t.e_kind with
  | Undo_logging | Cow -> Data_log.begin_tx (Option.get t.dlog) ~tx_id:id
  | No_logging | Kamino_simple | Kamino_dynamic _ | Intent_only -> ());
  (* Recycle the engine-owned scratch. Clearing here (not at finish) also
     covers a transaction torn down by [crash], which never finishes.
     Dropping stale [cow] references lets the data-log entries go. *)
  for i = 0 to t.ws_n - 1 do
    t.ws.(i).cow <- None
  done;
  t.ws_n <- 0;
  t.ws_cow_n <- 0;
  let tx =
    {
      owner = t;
      id;
      t_begin;
      slot = None;  (* claimed lazily at the first write intent *)
      lock_keys = [];
      lock_entries = [];
      read_entries = [];
      needs_barrier = uses_data_log t.e_kind;
      finished = false;
    }
  in
  t.active <- Some tx;
  tx

(* Intent-log slot of [tx], claimed on first use so read-only transactions
   never touch the log region. *)
let claim_slot tx =
  match tx.slot with
  | Some s -> s
  | None ->
      let t = tx.owner in
      let ilog = Option.get t.ilog in
      let s =
        match t.e_kind with
        | Kamino_simple | Kamino_dynamic _ ->
            let appl = Option.get t.appl in
            let rec claim () =
              match Intent_log.begin_record ilog ~tx_id:tx.id with
              | Some s -> s
              | None -> (
                  (* Every slot holds a committed-but-unapplied record: wait
                     (virtually) for the applier to retire the oldest. *)
                  match Applier.drain_one appl with
                  | Some finish ->
                      ignore (Clock.advance_to t.clk finish);
                      claim ()
                  | None ->
                      failwith "Engine.begin_tx: intent log exhausted with empty applier")
            in
            claim ()
        | Intent_only -> (
            (* Replica slots are released at commit, so a free one always
               exists under serial execution. *)
            match Intent_log.begin_record ilog ~tx_id:tx.id with
            | Some s -> s
            | None -> failwith "Engine: intent log exhausted on a replica")
        | No_logging | Undo_logging | Cow -> assert false
      in
      tx.slot <- Some s;
      s

(* Declare a write intent on an arbitrary byte range. [redirectable] selects
   CoW redirection; allocator metadata, freshly allocated extents and the
   root pointer are always edited in place. [lock_key] defaults to the
   range start; field-granular intents lock the whole owning object while
   logging only the field's bytes. *)
let declare ?lock_key tx ~off ~len ~redirectable =
  active_tx tx;
  let lock_key = Option.value lock_key ~default:off in
  if ws_find_off tx.owner off < 0 then begin
    let t = tx.owner in
    let cm = cost t in
    let le = Locks.entry_of t.locks lock_key in
    let now0 = Clock.now t.clk in
    (* Cause attribution, read before acquiring: the wait is {e dependent}
       (the paper's backup catch-up wait) when the lock's previous writer
       has a committed-but-unapplied task — the same predicate [pinned]
       uses. Anything else is plain contention. *)
    let dependent =
      Obs.enabled t.e_obs
      &&
      match t.appl with
      | Some appl -> Locks.last_writer_task_e le > Applier.applied_through appl
      | None -> false
    in
    let held_at =
      Locks.acquire_write_e t.locks le ~now:now0 ~cost_ns:cm.Cost_model.lock_ns
    in
    (if Obs.enabled t.e_obs then
       let waited = held_at - now0 - int_of_float cm.Cost_model.lock_ns in
       if waited > 0 then begin
         if dependent then Metrics.observe t.h_dep_wait waited;
         Obs.emit t.e_obs ~kind:Obs.k_lock_wait ~track:t.obs_base ~ts:now0
           ~dur:waited ~a:lock_key
           ~b:(if dependent then 1 else 0)
           ~c:tx.id
       end);
    ignore (Clock.advance_to t.clk held_at);
    let cow =
      match t.e_kind with
      | No_logging -> None
      | Undo_logging ->
          ignore (Data_log.add (Option.get t.dlog) ~off ~len ~replay:Data_log.On_abort
                    ~src:t.main);
          None
      | Cow ->
          if redirectable then
            Some (Data_log.add (Option.get t.dlog) ~off ~len ~replay:Data_log.On_commit
                    ~src:t.main)
          else begin
            ignore (Data_log.add (Option.get t.dlog) ~off ~len ~replay:Data_log.On_abort
                      ~src:t.main);
            None
          end
      | Intent_only ->
          (* Non-head chain replica: record the intent, edit in place; the
             chain's neighbours stand in for the backup at recovery. *)
          let slot = claim_slot tx in
          log_intent t slot ~off ~len;
          None
      | Kamino_simple | Kamino_dynamic _ ->
          let appl = Option.get t.appl and b = Option.get t.bkp in
          if t.e_config.global_pending then begin
            (* Coarse-blocking ablation: wait for the whole backup to catch
               up before touching anything. *)
            if Applier.queued appl > 0 then begin
              ignore (Clock.advance_to t.clk (Applier.virtual_now appl));
              Applier.drain appl
            end
          end
          else begin
            (* The lock wait already advanced our clock past the applier
               finish time for this object; catch the data up too. *)
            let last = Locks.last_writer_task_e le in
            if last > Applier.applied_through appl then Applier.sync_through appl last
          end;
          let slot = claim_slot tx in
          Backup.ensure_copy b ~main:t.main ~off ~len ~locked:(pinned t)
            ~pressure:(fun () -> Applier.drain appl);
          log_intent t slot ~off ~len;
          None
    in
    ignore (ws_push t ~off ~len ~key:lock_key ~cow);
    if not (List.mem lock_key tx.lock_keys) then begin
      tx.lock_keys <- lock_key :: tx.lock_keys;
      tx.lock_entries <- le :: tx.lock_entries
    end;
    tx.needs_barrier <- true
  end

let add tx p =
  let t = tx.owner in
  if not (Heap.is_allocated t.heap p) then
    invalid_arg (Printf.sprintf "Engine.add: %d is not an allocated object" p);
  let { Heap.off; len } = Heap.extent t.heap p in
  declare tx ~off ~len ~redirectable:true

let add_range tx { Heap.off; len } = declare tx ~off ~len ~redirectable:false

let add_field tx p field len =
  let t = tx.owner in
  if not (Heap.is_allocated t.heap p) then
    invalid_arg (Printf.sprintf "Engine.add_field: %d is not an allocated object" p);
  let extent = Heap.extent t.heap p in
  if field < 0 || p + field + len > extent.Heap.off + extent.Heap.len then
    invalid_arg "Engine.add_field: range outside the object";
  match t.e_kind with
  | Kamino_dynamic _ ->
      (* The dynamic backup tracks copies per object (as in the paper,
         whose log entries are object addresses): a sub-object copy would
         go stale when another transaction updates the object through a
         whole-extent intent. Intents are 24 bytes either way. *)
      add tx p
  | No_logging | Undo_logging | Cow | Kamino_simple | Intent_only ->
      (* If the whole object is already declared, the field is covered. *)
      if ws_find_off t extent.Heap.off < 0 then
        declare tx ~lock_key:extent.Heap.off ~off:(p + field) ~len ~redirectable:true

let read_lock tx p =
  active_tx tx;
  let t = tx.owner in
  let { Heap.off; len = _ } = Heap.extent t.heap p in
  let cm = cost t in
  let e = Locks.entry_of t.locks off in
  let now0 = Clock.now t.clk in
  let dependent =
    Obs.enabled t.e_obs
    &&
    match t.appl with
    | Some appl -> Locks.last_writer_task_e e > Applier.applied_through appl
    | None -> false
  in
  let held_at =
    Locks.acquire_read_e t.locks e ~now:now0 ~cost_ns:cm.Cost_model.lock_ns
  in
  (if Obs.enabled t.e_obs then
     let waited = held_at - now0 - int_of_float cm.Cost_model.lock_ns in
     if waited > 0 then begin
       if dependent then Metrics.observe t.h_dep_wait waited;
       Obs.emit t.e_obs ~kind:Obs.k_lock_wait ~track:t.obs_base ~ts:now0
         ~dur:waited ~a:off
         ~b:(if dependent then 1 else 0)
         ~c:tx.id
     end);
  ignore (Clock.advance_to t.clk held_at);
  tx.read_entries <- e :: tx.read_entries

let alloc tx size =
  active_tx tx;
  let t = tx.owner in
  let p, ranges = Heap.alloc_ranges t.heap size in
  List.iter (fun { Heap.off; len } -> declare tx ~off ~len ~redirectable:false) ranges;
  do_barrier tx;
  let p' = Heap.alloc t.heap size in
  assert (p' = p);
  p

let free tx p =
  active_tx tx;
  let t = tx.owner in
  if not (Heap.is_allocated t.heap p) then
    invalid_arg (Printf.sprintf "Engine.free: %d is not an allocated object" p);
  let extent = Heap.extent t.heap p in
  (* CoW: if the object is redirected, fold the working copy into the main
     heap and revert to in-place editing before the deallocator mutates the
     extent directly. The fold is preceded by an undo snapshot of the
     pre-transaction bytes so an abort can still restore them. *)
  (let i = ws_find_off t extent.Heap.off in
   if i >= 0 then
     let r = t.ws.(i) in
     match r.cow with
     | Some entry ->
         let dlog = Option.get t.dlog in
         ignore
           (Data_log.add dlog ~off:extent.Heap.off ~len:extent.Heap.len
              ~replay:Data_log.On_abort ~src:t.main);
         Data_log.reseal dlog entry;
         Data_log.barrier dlog;
         Data_log.apply_entry dlog entry ~dst:t.main;
         Region.persist t.main extent.Heap.off extent.Heap.len;
         r.cow <- None;
         t.ws_cow_n <- t.ws_cow_n - 1
     | None -> ());
  List.iter
    (fun { Heap.off; len } -> declare tx ~off ~len ~redirectable:false)
    (Heap.free_ranges t.heap p);
  do_barrier tx;
  Heap.free t.heap p

(* --- Data access -------------------------------------------------------- *)

(* Each accessor below resolves the covering intent by index and branches
   on its CoW redirection inline. The previous implementation threaded two
   closures through a generic [write_via]/[read_via]; on the hot read path
   (every B+Tree key comparison lands here) those closures plus the boxed
   [Int64.t] round-trip accounted for most of the per-access allocation.
   [-1] means "no covering intent": reads fall through to the main heap,
   writes are an intent violation when [check_intents] is set. *)

let check_write_idx tx abs len =
  let i = covering_idx tx.owner abs len in
  if i < 0 && tx.owner.e_config.check_intents then
    failwith
      (Printf.sprintf
         "Engine: write of %d bytes at %d is not covered by a declared intent \
          (missing TX_ADD?)"
         len abs);
  i

let cow_of t i = if i < 0 then None else t.ws.(i).cow

let write_int64 tx p field v =
  active_tx tx;
  let t = tx.owner in
  let abs = p + field in
  let i = check_write_idx tx abs 8 in
  do_barrier tx;
  match cow_of t i with
  | None -> Region.write_int64 t.main abs v
  | Some entry ->
      Data_log.payload_write_int64 (Option.get t.dlog) entry (abs - t.ws.(i).r_off) v

let write_int tx p field v =
  active_tx tx;
  let t = tx.owner in
  let abs = p + field in
  let i = check_write_idx tx abs 8 in
  do_barrier tx;
  match cow_of t i with
  | None -> Region.write_int t.main abs v
  | Some entry ->
      Data_log.payload_write_int (Option.get t.dlog) entry (abs - t.ws.(i).r_off) v

let write_bytes tx p field b =
  active_tx tx;
  let t = tx.owner in
  let abs = p + field in
  let i = check_write_idx tx abs (Bytes.length b) in
  do_barrier tx;
  match cow_of t i with
  | None -> Region.write_bytes t.main abs b
  | Some entry ->
      Data_log.payload_write_bytes (Option.get t.dlog) entry (abs - t.ws.(i).r_off) b

let write_string tx p field s =
  active_tx tx;
  let t = tx.owner in
  let abs = p + field in
  let i = check_write_idx tx abs (String.length s) in
  do_barrier tx;
  match cow_of t i with
  | None -> Region.write_string t.main abs s
  | Some entry ->
      Data_log.payload_write_string (Option.get t.dlog) entry (abs - t.ws.(i).r_off) s

let write_byte tx p field v =
  active_tx tx;
  let t = tx.owner in
  let abs = p + field in
  let i = check_write_idx tx abs 1 in
  do_barrier tx;
  match cow_of t i with
  | None -> Region.write_byte t.main abs v
  | Some entry ->
      Data_log.payload_write_byte (Option.get t.dlog) entry (abs - t.ws.(i).r_off) v

(* Reads consult the write set only to follow CoW redirections; when the
   transaction has none ([ws_cow_n] = 0 — always, outside the CoW engine),
   they go straight to the main heap. *)

let read_int64 tx p field =
  active_tx tx;
  let t = tx.owner in
  let abs = p + field in
  if t.ws_cow_n = 0 then Region.read_int64 t.main abs
  else
    let i = covering_idx t abs 8 in
    match cow_of t i with
    | None -> Region.read_int64 t.main abs
    | Some entry ->
        Data_log.payload_read_int64 (Option.get t.dlog) entry (abs - t.ws.(i).r_off)

let read_int tx p field =
  active_tx tx;
  let t = tx.owner in
  let abs = p + field in
  if t.ws_cow_n = 0 then Region.read_int t.main abs
  else
    let i = covering_idx t abs 8 in
    match cow_of t i with
    | None -> Region.read_int t.main abs
    | Some entry ->
        Data_log.payload_read_int (Option.get t.dlog) entry (abs - t.ws.(i).r_off)

let read_bytes tx p field len =
  active_tx tx;
  let t = tx.owner in
  let abs = p + field in
  if t.ws_cow_n = 0 then Region.read_bytes t.main abs len
  else
    let i = covering_idx t abs len in
    match cow_of t i with
    | None -> Region.read_bytes t.main abs len
    | Some entry ->
        Data_log.payload_read_bytes (Option.get t.dlog) entry (abs - t.ws.(i).r_off) len

let read_string tx p field len =
  active_tx tx;
  let t = tx.owner in
  let abs = p + field in
  if t.ws_cow_n = 0 then Region.read_string t.main abs len
  else
    let i = covering_idx t abs len in
    match cow_of t i with
    | None -> Region.read_string t.main abs len
    | Some entry ->
        Data_log.payload_read_string (Option.get t.dlog) entry (abs - t.ws.(i).r_off) len

let read_byte tx p field =
  active_tx tx;
  let t = tx.owner in
  let abs = p + field in
  if t.ws_cow_n = 0 then Region.read_byte t.main abs
  else
    let i = covering_idx t abs 1 in
    match cow_of t i with
    | None -> Region.read_byte t.main abs
    | Some entry ->
        Data_log.payload_read_byte (Option.get t.dlog) entry (abs - t.ws.(i).r_off)

let peek_int64 t p field = Region.read_int64 t.main (p + field)

let peek_int t p field = Region.read_int t.main (p + field)

let peek_bytes t p field len = Region.read_bytes t.main (p + field) len

let peek_string t p field len = Region.read_string t.main (p + field) len

let set_root tx p =
  active_tx tx;
  let t = tx.owner in
  add_range tx (Heap.root_range t.heap);
  do_barrier tx;
  Heap.set_root t.heap p

(* --- Commit and abort --------------------------------------------------- *)

let release_all tx ~write_release =
  let t = tx.owner in
  t.last_write_keys <- tx.lock_keys;
  List.iter (fun e -> Locks.release_write_e e ~at:write_release) tx.lock_entries;
  let read_at = Clock.now t.clk in
  List.iter (fun e -> Locks.release_read_e e ~at:read_at) tx.read_entries

let finish tx =
  tx.finished <- true;
  tx.owner.active <- None

let commit tx =
  active_tx tx;
  let t = tx.owner in
  (match t.e_kind with
  | No_logging ->
      persist_ws t ~in_place_only:false;
      release_all tx ~write_release:(Clock.now t.clk)
  | Intent_only ->
      (match tx.slot with
      | None -> ()  (* read-only: the log was never touched *)
      | Some slot ->
        let ilog = Option.get t.ilog in
        do_barrier tx;
        persist_ws t ~in_place_only:false;
        Intent_log.mark ilog slot Intent_log.Committed;
        (* No local backup to synchronize: the record only needs to outlive
           the in-place writes it covers, which are durable now. *)
        Intent_log.release ilog slot);
      release_all tx ~write_release:(Clock.now t.clk)
  | Undo_logging ->
      let dlog = Option.get t.dlog in
      do_barrier tx;
      persist_ws t ~in_place_only:true;
      Data_log.finish dlog;
      release_all tx ~write_release:(Clock.now t.clk)
  | Cow when t.ws_n = 0 ->
      Data_log.finish (Option.get t.dlog);
      release_all tx ~write_release:(Clock.now t.clk)
  | Cow ->
      let dlog = Option.get t.dlog in
      (* Working copies get their final checksums; in-place ranges get
         commit-time redo snapshots so the [Applying] phase can replay
         everything from the arena alone. Arena order guarantees these
         commit-time snapshots are applied last, superseding any stale
         working copy of an object that was folded back and freed. *)
      for i = 0 to t.ws_n - 1 do
        match t.ws.(i).cow with
        | Some entry -> Data_log.reseal dlog entry
        | None -> ()
      done;
      for i = 0 to t.ws_n - 1 do
        let r = t.ws.(i) in
        if r.cow = None then
          ignore
            (Data_log.add dlog ~off:r.r_off ~len:r.r_len ~replay:Data_log.On_commit
               ~src:t.main)
      done;
      Data_log.barrier dlog;
      Data_log.mark_applying dlog;
      (* Apply the copies to the originals — the critical-path copy-back of
         Figure 5's CoW timeline — then persist everything. *)
      for i = 0 to t.ws_n - 1 do
        match t.ws.(i).cow with
        | Some entry -> Data_log.apply_entry dlog entry ~dst:t.main
        | None -> ()
      done;
      persist_ws t ~in_place_only:false;
      Data_log.finish dlog;
      release_all tx ~write_release:(Clock.now t.clk)
  | Kamino_simple | Kamino_dynamic _ ->
      let ilog = Option.get t.ilog and appl = Option.get t.appl in
      (match tx.slot with
      | None ->
          (* Read-only transaction: the log was never touched. *)
          release_all tx ~write_release:(Clock.now t.clk)
      | Some slot ->
        do_barrier tx;
        persist_ws t ~in_place_only:false;
        Intent_log.mark ilog slot Intent_log.Committed;
        let iranges =
          match t.e_kind with
          | Kamino_simple when t.e_config.coalesce_writes ->
              (* Full backups copy at byte granularity, so the task carries
                 the coalesced write set; the counters record how many
                 ranges the pass eliminated and the net copy bytes it
                 saved. Dynamic backups need the raw per-object ranges. *)
              let merged = coalesce_write_set t in
              Metrics.add t.m_ranges_coalesced (t.ws_n - List.length merged);
              let raw_bytes = ref 0 in
              for i = 0 to t.ws_n - 1 do
                raw_bytes := !raw_bytes + t.ws.(i).r_len
              done;
              Metrics.add t.m_bytes_saved
                (!raw_bytes - Intent_log.total_bytes merged);
              merged
          | _ ->
              let acc = ref [] in
              for i = t.ws_n - 1 downto 0 do
                let r = t.ws.(i) in
                acc := { Intent_log.off = r.r_off; len = r.r_len } :: !acc
              done;
              !acc
        in
        let tcost = task_cost (cost t) iranges in
        let task, finish_at =
          Applier.enqueue appl ~commit_time:(Clock.now t.clk) ~cost_ns:tcost
            ~tx_id:tx.id ~slot ~ranges:iranges
        in
        List.iter (fun e -> Locks.set_last_writer_task_e e task) tx.lock_entries;
        (if Obs.enabled t.e_obs then begin
           (* The task occupies [finish_at - cost, finish_at) of the
              applier's private timeline ([Applier.enqueue] computes
              [finish = max vnow commit_time + cost]); applier lag is how
              far that finish runs ahead of the committing client. *)
           let nowc = Clock.now t.clk in
           Metrics.observe t.h_applier_lag (finish_at - nowc);
           let depth = Applier.queued appl in
           Metrics.observe t.h_queue_depth depth;
           let icost = int_of_float tcost in
           Obs.emit t.e_obs ~kind:Obs.k_applier_task ~track:(t.obs_base + 1)
             ~ts:(finish_at - icost) ~dur:icost ~a:tx.id
             ~b:(List.length iranges)
             ~c:(Intent_log.total_bytes iranges);
           Obs.emit t.e_obs ~kind:Obs.k_queue_depth ~track:(t.obs_base + 1)
             ~ts:nowc ~dur:(-1) ~a:depth ~b:0 ~c:0
         end);
        (* The paper's rule: write locks release only once main and backup
           agree on the write set — i.e. at the applier's finish time. *)
        release_all tx ~write_release:finish_at));
  Metrics.incr t.m_committed;
  (if Obs.enabled t.e_obs then
     let nowc = Clock.now t.clk in
     Obs.emit t.e_obs ~kind:Obs.k_commit ~track:t.obs_base ~ts:tx.t_begin
       ~dur:(nowc - tx.t_begin) ~a:tx.id ~b:t.ws_n ~c:0);
  finish tx

let abort tx =
  active_tx tx;
  let t = tx.owner in
  (match t.e_kind with
  | No_logging ->
      finish tx;
      failwith "Engine.abort: the no-logging baseline cannot roll back"
  | Intent_only ->
      finish tx;
      failwith
        "Engine.abort: chain replicas cannot roll back locally — aborts are decided \
         at the head and never forwarded"
  | Undo_logging | Cow ->
      let dlog = Option.get t.dlog in
      do_barrier tx;
      let entries = Data_log.active_entries dlog in
      let undos = List.filter (fun e -> e.Data_log.replay = Data_log.On_abort) entries in
      List.iter (fun e -> Data_log.apply_entry dlog e ~dst:t.main) (List.rev undos);
      persist_ws t ~in_place_only:true;
      Data_log.finish dlog;
      release_all tx ~write_release:(Clock.now t.clk)
  | Kamino_simple | Kamino_dynamic _ ->
      (match tx.slot with
      | None -> ()
      | Some slot ->
          let ilog = Option.get t.ilog and b = Option.get t.bkp in
          Intent_log.mark ilog slot Intent_log.Aborted;
          (* Roll back in place from the backup — Figure 6's abort timeline:
             synchronous, but only for the aborting transaction's write
             set. The rolled-back ranges' resident copies are dropped: a
             rolled-back allocation's space may be re-carved with different
             extent boundaries later. *)
          for i = 0 to t.ws_n - 1 do
            let r = t.ws.(i) in
            ignore (Backup.roll_back b ~main:t.main ~off:r.r_off ~len:r.r_len);
            Backup.drop b ~off:r.r_off
          done;
          Intent_log.release ilog slot);
      release_all tx ~write_release:(Clock.now t.clk));
  Metrics.incr t.m_aborted;
  (if Obs.enabled t.e_obs then
     let nowc = Clock.now t.clk in
     Obs.emit t.e_obs ~kind:Obs.k_abort ~track:t.obs_base ~ts:tx.t_begin
       ~dur:(nowc - tx.t_begin) ~a:tx.id ~b:0 ~c:0);
  finish tx

let with_tx t f =
  let tx = begin_tx t in
  match f tx with
  | v ->
      commit tx;
      v
  | exception exn ->
      if not tx.finished then abort tx;
      raise exn

(* --- Crash and recovery ------------------------------------------------- *)

let crash t =
  (match t.active with
  | Some tx ->
      tx.finished <- true;
      t.active <- None
  | None -> ());
  Array.iter Region.crash t.all_regions

let recover t =
  t.locks <- Locks.create ~shards:t.e_config.lock_shards ();
  t.active <- None;
  t.heap <- Heap.open_existing t.main;
  (match t.e_kind with
  | No_logging -> ()
  | Intent_only ->
      (* Reopen only: incomplete records cannot be resolved locally (there
         is no backup). The chain layer supplies a peer via
         [resolve_from_peer] before the replica rejoins. *)
      t.ilog <- Some (Intent_log.open_existing (Option.get t.ilog_region));
      t.next_tx_id <- max t.next_tx_id (Intent_log.max_tx_id (Option.get t.ilog) + 1)
  | Undo_logging | Cow -> (
      let dlog = Data_log.open_existing (Option.get t.dlog_region) in
      t.dlog <- Some dlog;
      match Data_log.phase dlog with
      | Data_log.Idle -> ()
      | Data_log.Running ->
          (* Incomplete transaction: restore every durable undo snapshot. *)
          let entries = Data_log.recover_entries dlog in
          List.iter
            (fun e ->
              if e.Data_log.replay = Data_log.On_abort then begin
                Data_log.apply_entry dlog e ~dst:t.main;
                Region.flush t.main e.Data_log.off e.Data_log.len
              end)
            (List.rev entries);
          Region.fence t.main;
          t.next_tx_id <- max t.next_tx_id (Data_log.tx_id dlog + 1);
          Data_log.finish dlog
      | Data_log.Applying ->
          (* CoW redo point passed: replay the copies, in arena order. *)
          let entries = Data_log.recover_entries dlog in
          List.iter
            (fun e ->
              if e.Data_log.replay = Data_log.On_commit then begin
                Data_log.apply_entry dlog e ~dst:t.main;
                Region.flush t.main e.Data_log.off e.Data_log.len
              end)
            entries;
          Region.fence t.main;
          t.next_tx_id <- max t.next_tx_id (Data_log.tx_id dlog + 1);
          Data_log.finish dlog)
  | Kamino_simple | Kamino_dynamic _ ->
      let ilog = Intent_log.open_existing (Option.get t.ilog_region) in
      t.ilog <- Some ilog;
      let b = Backup.reopen (Option.get t.bkp) in
      t.bkp <- Some b;
      t.next_tx_id <- max t.next_tx_id (Intent_log.max_tx_id ilog + 1);
      t.appl <- Some (make_applier t);
      (* Records are visited in transaction order; committed ones roll the
         backup forward, incomplete or aborted ones roll the main heap back.
         The locking discipline guarantees the two sets of ranges are
         disjoint. *)
      let pending = ref [] in
      Intent_log.iter_records ilog (fun slot _txid state intents ->
          pending := (slot, state, intents) :: !pending);
      List.iter
        (fun (slot, state, intents) ->
          (match state with
          | Intent_log.Committed ->
              List.iter
                (fun { Intent_log.off; len } -> Backup.roll_forward b ~main:t.main ~off ~len)
                intents
          | Intent_log.Running | Intent_log.Aborted ->
              List.iter
                (fun { Intent_log.off; len } ->
                  ignore (Backup.roll_back b ~main:t.main ~off ~len);
                  Backup.drop b ~off)
                intents
          | Intent_log.Free -> ());
          Intent_log.release ilog slot)
        (List.rev !pending))

let drain_backup t = match t.appl with Some a -> Applier.drain a | None -> ()

(* The backup invariant that all of Kamino-Tx's safety rests on: once the
   applier has drained, the backup agrees with the main heap — everywhere
   for a full backup, on every resident copy for a dynamic one. *)
let verify_backup t =
  match t.bkp with
  | None -> Ok ()
  | Some b -> (
      drain_backup t;
      match b with
      | _ -> (
          let mismatches = ref [] in
          (match Backup.dump_mapping b with
          | [] ->
              (* Full backup: compare every live object extent and the
                 allocator metadata block. *)
              let h = t.heap in
              let check off len what =
                match Backup.copy_matches ~len b ~main:t.main ~off with
                | Some false -> mismatches := what :: !mismatches
                | Some true | None -> ()
              in
              check 0 (Heap.data_start h) "heap metadata";
              Heap.iter_objects h (fun p ~capacity ~allocated ->
                  if allocated then
                    check (p - 16) (capacity + 16) (Printf.sprintf "object %d" p))
          | mapping ->
              List.iter
                (fun (off, _, _) ->
                  match Backup.copy_matches b ~main:t.main ~off with
                  | Some false ->
                      mismatches := Printf.sprintf "resident copy at %d" off :: !mismatches
                  | Some true | None -> ())
                mapping);
          match !mismatches with
          | [] -> Ok ()
          | w :: _ ->
              Error
                (Printf.sprintf "backup diverges from main (%d ranges, first: %s)"
                   (List.length !mismatches) w)))

let last_write_keys t = t.last_write_keys

let unresolved_records t =
  match t.ilog with
  | None -> []
  | Some ilog ->
      let acc = ref [] in
      Intent_log.iter_records ilog (fun _ tx_id _ intents ->
          acc :=
            ( tx_id,
              List.map (fun { Intent_log.off; len } -> { Heap.off; len }) intents )
            :: !acc);
      List.rev !acc

let resolve_from_peer t ~peer =
  let ilog = Option.get t.ilog in
  let slots = ref [] in
  Intent_log.iter_records ilog (fun slot _ _ intents -> slots := (slot, intents) :: !slots);
  List.iter
    (fun (slot, intents) ->
      List.iter
        (fun { Intent_log.off; len } ->
          Region.copy_between ~src:peer ~src_off:off ~dst:t.main ~dst_off:off ~len;
          Region.persist t.main off len)
        intents;
      Intent_log.release ilog slot)
    (List.rev !slots)

(* Promote a chain replica to head: build a full local backup from the
   current heap (what a newly promoted head does in §5.2) and start an
   applier. *)
let promote_to_kamino t =
  (match t.e_kind with
  | Intent_only -> ()
  | _ -> invalid_arg "Engine.promote_to_kamino: only replicas can be promoted");
  let r =
    Region.create ~cost:t.e_config.cost ~crash_mode:t.e_config.crash_mode
      ~rng:(Rng.split t.rng) ~clock:t.clk ~size:t.e_config.heap_bytes ()
  in
  let b = Backup.create_full r in
  Backup.initialize_full b ~main:t.main;
  t.bkp <- Some b;
  t.all_regions <- Array.append t.all_regions [| r |];
  t.e_kind <- Kamino_simple;
  t.appl <- Some (make_applier t);
  if Obs.enabled t.e_obs then Region.set_obs r ~track:(t.obs_base + 2) t.e_obs;
  set_clock t t.clk

(* --- Metrics ------------------------------------------------------------ *)

type metrics = {
  committed : int;
  aborted : int;
  critical_path_copies : int;
  backup_hits : int;
  backup_misses : int;
  backup_evictions : int;
  applier_tasks : int;
  tasks_batched : int;
  ranges_coalesced : int;
  bytes_saved : int;
  lock_wait_ns : int;
  lock_wait_events : int;
  storage_bytes : int;
}

let metrics (t : t) =
  {
    committed = Metrics.value t.m_committed;
    aborted = Metrics.value t.m_aborted;
    critical_path_copies =
      (match t.dlog with Some d -> Data_log.entries_created d | None -> 0);
    backup_hits = (match t.bkp with Some b -> Backup.hits b | None -> 0);
    backup_misses = (match t.bkp with Some b -> Backup.misses b | None -> 0);
    backup_evictions = (match t.bkp with Some b -> Backup.evictions b | None -> 0);
    applier_tasks = (match t.appl with Some a -> Applier.tasks_applied a | None -> 0);
    tasks_batched = (match t.appl with Some a -> Applier.tasks_batched a | None -> 0);
    ranges_coalesced = Metrics.value t.m_ranges_coalesced;
    bytes_saved = Metrics.value t.m_bytes_saved;
    lock_wait_ns = Locks.waits t.locks;
    lock_wait_events = Locks.wait_events t.locks;
    storage_bytes = storage_bytes t;
  }

let obs t = t.e_obs

(* The registry as a one-stop snapshot: the engine's own counters and
   histograms update live; numbers owned by subcomponents (backup, applier,
   locks) are synced in as gauges on each call so sinks see everything the
   old ad-hoc [metrics] record carried. *)
let registry t =
  let gauge name v = Metrics.set (Metrics.counter t.reg name) v in
  gauge "backup.hits" (match t.bkp with Some b -> Backup.hits b | None -> 0);
  gauge "backup.misses" (match t.bkp with Some b -> Backup.misses b | None -> 0);
  gauge "backup.evictions"
    (match t.bkp with Some b -> Backup.evictions b | None -> 0);
  gauge "applier.tasks"
    (match t.appl with Some a -> Applier.tasks_applied a | None -> 0);
  gauge "applier.tasks_batched"
    (match t.appl with Some a -> Applier.tasks_batched a | None -> 0);
  gauge "datalog.critical_path_copies"
    (match t.dlog with Some d -> Data_log.entries_created d | None -> 0);
  gauge "locks.wait_ns" (Locks.waits t.locks);
  gauge "locks.wait_events" (Locks.wait_events t.locks);
  gauge "storage.bytes" (storage_bytes t);
  t.reg
