(** The backup copy of the heap — full (Kamino-Tx-Simple) or dynamic
    partial (Kamino-Tx-Dynamic, §4).

    A full backup is a second region the same size as the main heap; ranges
    live at identical offsets, so roll-forward and roll-back are plain
    cross-region copies and no critical-path work is ever needed to
    establish a copy.

    A dynamic backup holds copies of only the most frequently modified
    objects in a region of size [alpha * heap]: a slot allocator (reusing
    {!Kamino_heap.Heap}), a persistent look-up table ({!Phash}: main offset
    -> slot offset) and a volatile recency queue ({!Lru}). When a
    transaction locks an object with no resident copy, the copy is created
    {e on demand, in the critical path} — the latency/storage trade-off the
    paper evaluates in Figures 14-16. The eviction policy is pluggable
    (LRU per the paper, FIFO for the ablation bench). *)

type t

type policy = Lru_policy | Fifo_policy

(** [create_full region] wraps a region the same size as the main heap.
    The caller must initialize it (one whole-heap copy) with {!initialize_full}. *)
val create_full : Kamino_nvm.Region.t -> t

(** [create_dynamic ~slots ~table ~capacity ~policy] — [capacity] is the
    initial look-up-table capacity. It is explicit (not derived from the
    table region's size) because table regions are sized with incremental-
    resize headroom: see {!Phash.chain_size}. *)
val create_dynamic :
  slots:Kamino_nvm.Region.t ->
  table:Kamino_nvm.Region.t ->
  capacity:int ->
  policy:policy ->
  t

(** Re-attach after a crash: reopens the persistent look-up table (dynamic)
    and resets volatile state. *)
val reopen : t -> t

(** [initialize_full t ~main] copies the freshly formatted main heap into a
    full backup and persists it. No-op for dynamic backups. *)
val initialize_full : t -> main:Kamino_nvm.Region.t -> unit

(** [ensure_copy t ~main ~off ~len ~locked ~pressure] guarantees the backup
    holds the current main-heap bytes of the range, evicting unlocked
    resident objects if space is needed (dynamic only). When every resident
    copy is pinned, [pressure] is invoked once (the engine drains the
    backup applier, unpinning committed-but-unapplied copies) before a
    final retry; only if that fails too does the call raise [Failure] —
    the working set genuinely exceeds [alpha * heap]. Charges all work to
    the current clock — this is the dynamic variant's critical-path miss
    cost. *)
val ensure_copy :
  t ->
  main:Kamino_nvm.Region.t ->
  off:int ->
  len:int ->
  locked:(int -> bool) ->
  pressure:(unit -> unit) ->
  unit

(** [full_region t] — the whole-heap backup region of a full backup
    ([None] for dynamic backups). Ranges live at main-heap offsets, so a
    read of this region at offset [off] observes the backup's copy of main
    byte [off]: this is the substrate of the snapshot-read path
    ({!Engine.read_tx}). *)
val full_region : t -> Kamino_nvm.Region.t option

(** [is_full t] — is this a full (whole-heap) backup? Full backups admit
    byte-level range merging during propagation (any main-offset range can
    be copied across); dynamic backups are object-keyed and require exact
    [(off, len)] matches. *)
val is_full : t -> bool

(** [has_copy t ~off] — does a resident copy exist for the range starting
    at [off]? Always true for full backups. *)
val has_copy : t -> off:int -> bool

(** [drop t ~off] forgets the resident copy for the range at [off] (no-op
    for full backups and absent copies). The engine calls it for every
    range it rolls back: a rolled-back allocation returns its space to the
    allocator, and future objects there may have different extent
    boundaries, which would leave the copy stale and overlapping. *)
val drop : t -> off:int -> unit

(** [roll_forward t ~main ~off ~len] copies main -> backup and persists the
    backup range (a committed transaction propagating). Raises [Failure]
    for a dynamic backup with no resident copy — the engine's locking
    discipline makes that unreachable. *)
val roll_forward : t -> main:Kamino_nvm.Region.t -> off:int -> len:int -> unit

(** [roll_back t ~main ~off ~len] copies backup -> main and persists the
    main range (an aborted or incomplete transaction being undone). For a
    dynamic backup, a missing copy is a no-op returning [false]: the crash
    happened before the transaction's first write to that range, so main is
    untouched there. *)
val roll_back : t -> main:Kamino_nvm.Region.t -> off:int -> len:int -> bool

(** Total NVM bytes the backup occupies (slots + table for dynamic). *)
val storage_bytes : t -> int

(** {1 Metrics (dynamic; zero for full)} *)

val hits : t -> int

val misses : t -> int

val evictions : t -> int

val resident : t -> int

(** Completed incremental resizes of the dynamic look-up table. *)
val migrations : t -> int

(** [copy_matches t ~main ~off] — does the resident copy for the range at
    [off] currently equal the main heap's bytes? [None] when absent
    (dynamic backups). [len] defaults to the resident copy's length
    (dynamic) or 64 bytes (full). Test/verification helper. *)
val copy_matches : ?len:int -> t -> main:Kamino_nvm.Region.t -> off:int -> bool option

(** Debug/test introspection of the dynamic mapping:
    [(main_off, slot_off, len)] triples, sorted. Empty for full backups. *)
val dump_mapping : t -> (int * int * int) list
