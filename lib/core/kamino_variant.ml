(* The paper's contribution, in both backup flavors. Declaring an intent
   appends a small range record to the intent log and ensures the backup
   holds a pre-transaction copy (a no-op for the full backup outside
   recovery; an on-demand critical-path copy for the dynamic one); writes
   go in place; commit marks the record committed and enqueues the write
   set to the background {!Applier}. Write locks release only at the
   applier's finish time, so only dependent transactions ever wait for
   copying (§4.3).

   [simple] (full backup, byte-granular propagation, write-set coalescing)
   and [dynamic] (object-keyed partial backup of [alpha]·heap, exact
   per-object ranges only) share every path below; [~dynamic] selects the
   granularity rules.

   Commit is split into prepare (write set durable, outcome undecided) and
   finalize (mark committed, enqueue propagation, release) so the sharded
   façade can interleave a persistent cross-shard commit marker between
   the two — [v_commit] is exactly prepare followed by finalize. *)

open Variant

let claim_with_pressure t tx =
  let ilog = the_ilog t in
  let appl = the_appl t in
  let rec claim () =
    match Intent_log.begin_record ilog ~tx_id:tx.id with
    | Some s -> s
    | None -> (
        (* Every slot holds a committed-but-unapplied record: wait
           (virtually) for the applier to retire the oldest. *)
        match Applier.drain_one appl with
        | Some finish ->
            ignore (Clock.advance_to t.clk finish);
            claim ()
        | None -> error (Intent_log_exhausted "head: applier queue is empty"))
  in
  claim ()

let declare ~dynamic t tx ~le ~off ~len ~redirectable:_ =
  let appl = the_appl t and b = the_bkp t in
  (if t.e_config.global_pending then begin
     (* Coarse-blocking ablation: wait for the whole backup to catch up
        before touching anything. *)
     if Applier.queued appl > 0 then begin
       ignore (Clock.advance_to t.clk (Applier.virtual_now appl));
       Applier.drain appl
     end
   end
   else begin
     (* The lock wait already advanced our clock past the applier finish
        time for this object; catch the data up too. *)
     let last = Locks.last_writer_task_e le in
     if last > Applier.applied_through appl then Applier.sync_through appl last
   end);
  let slot = claim_slot tx in
  Backup.ensure_copy b ~main:t.main ~off ~len ~locked:(pinned t)
    ~pressure:(fun () -> Applier.drain appl);
  log_intent t slot ~mergeable:((not dynamic) && t.e_config.coalesce_writes) ~off
    ~len;
  None

let barrier t tx =
  match tx.slot with
  | Some slot -> Intent_log.barrier (the_ilog t) slot
  | None -> ()

(* Phase one: everything the transaction wrote is durable on the main
   heap, the intent record durable in the log, but the record still says
   [Running] — a crash now rolls the transaction back. *)
let prepare t tx =
  match tx.slot with
  | None -> ()  (* read-only: nothing to make durable *)
  | Some _ ->
      do_barrier tx;
      persist_ws t ~in_place_only:false

(* Phase two: decide commit, hand the write set to the applier, release
   the locks at the applier's finish time (the paper's rule: write locks
   release only once main and backup agree on the write set). *)
let finalize ~dynamic t tx slot =
  let ilog = the_ilog t and appl = the_appl t in
  Intent_log.mark ilog slot Intent_log.Committed;
  let iranges =
    if (not dynamic) && t.e_config.coalesce_writes then begin
      (* Full backups copy at byte granularity, so the task carries the
         coalesced write set; the counters record how many ranges the
         pass eliminated and the net copy bytes it saved. Dynamic backups
         need the raw per-object ranges. *)
      let merged = coalesce_write_set t in
      Metrics.add t.m_ranges_coalesced (t.ws_n - List.length merged);
      let raw_bytes = ref 0 in
      for i = 0 to t.ws_n - 1 do
        raw_bytes := !raw_bytes + t.ws.(i).r_len
      done;
      Metrics.add t.m_bytes_saved (!raw_bytes - Intent_log.total_bytes merged);
      merged
    end
    else begin
      let acc = ref [] in
      for i = t.ws_n - 1 downto 0 do
        let r = t.ws.(i) in
        acc := { Intent_log.off = r.r_off; len = r.r_len } :: !acc
      done;
      !acc
    end
  in
  let tcost = task_cost (cost t) iranges in
  let task, finish_at =
    Applier.enqueue appl ~commit_time:(Clock.now t.clk) ~cost_ns:tcost ~tx_id:tx.id
      ~slot ~ranges:iranges
  in
  List.iter (fun e -> Locks.set_last_writer_task_e e task) tx.lock_entries;
  (if Obs.enabled t.e_obs then begin
     (* The task occupies [finish_at - cost, finish_at) of the applier's
        private timeline ([Applier.enqueue] computes
        [finish = max vnow commit_time + cost]); applier lag is how far
        that finish runs ahead of the committing client. *)
     let nowc = Clock.now t.clk in
     Metrics.observe t.h_applier_lag (finish_at - nowc);
     let depth = Applier.queued appl in
     Metrics.observe t.h_queue_depth depth;
     let icost = int_of_float tcost in
     Obs.emit t.e_obs ~kind:Obs.k_applier_task ~track:(t.obs_base + 1)
       ~ts:(finish_at - icost) ~dur:icost ~a:tx.id
       ~b:(List.length iranges)
       ~c:(Intent_log.total_bytes iranges);
     Obs.emit t.e_obs ~kind:Obs.k_queue_depth ~track:(t.obs_base + 1) ~ts:nowc
       ~dur:(-1) ~a:depth ~b:0 ~c:0
   end);
  release_all tx ~write_release:finish_at

let commit ~dynamic t tx =
  match tx.slot with
  | None ->
      (* Read-only transaction: the log was never touched. *)
      release_all tx ~write_release:(Clock.now t.clk)
  | Some slot ->
      do_barrier tx;
      persist_ws t ~in_place_only:false;
      finalize ~dynamic t tx slot

let commit_prepared ~dynamic t tx =
  match tx.slot with
  | None -> release_all tx ~write_release:(Clock.now t.clk)
  | Some slot -> finalize ~dynamic t tx slot

let abort t tx =
  (match tx.slot with
  | None -> ()
  | Some slot ->
      let ilog = the_ilog t and b = the_bkp t in
      Intent_log.mark ilog slot Intent_log.Aborted;
      (* Roll back in place from the backup — Figure 6's abort timeline:
         synchronous, but only for the aborting transaction's write set.
         The rolled-back ranges' resident copies are dropped: a
         rolled-back allocation's space may be re-carved with different
         extent boundaries later. *)
      for i = 0 to t.ws_n - 1 do
        let r = t.ws.(i) in
        ignore (Backup.roll_back b ~main:t.main ~off:r.r_off ~len:r.r_len);
        Backup.drop b ~off:r.r_off
      done;
      Intent_log.release ilog slot);
  release_all tx ~write_release:(Clock.now t.clk)

let recover t ~promote_running =
  let ilog = Intent_log.open_existing (Option.get t.ilog_region) in
  t.ilog <- Some ilog;
  let b = Backup.reopen (the_bkp t) in
  t.bkp <- Some b;
  t.next_tx_id <- max t.next_tx_id (Intent_log.max_tx_id ilog + 1);
  t.appl <- Some (make_applier t);
  (* Records are visited in transaction order; committed ones roll the
     backup forward, incomplete or aborted ones roll the main heap back.
     The locking discipline guarantees the two sets of ranges are
     disjoint. [promote_running] is the sharded commit marker's decision:
     a [Running] record it claims was part of a marked cross-shard commit
     had its in-place writes made durable by [prepare] before the marker
     was written, so rolling it {e forward} is safe — the main heap
     already holds the committed bytes. *)
  let pending = ref [] in
  Intent_log.iter_records ilog (fun slot txid state intents ->
      pending := (slot, txid, state, intents) :: !pending);
  List.iter
    (fun (slot, txid, state, intents) ->
      (match state with
      | Intent_log.Committed ->
          List.iter
            (fun { Intent_log.off; len } ->
              Backup.roll_forward b ~main:t.main ~off ~len)
            intents
      | Intent_log.Running when promote_running txid ->
          List.iter
            (fun { Intent_log.off; len } ->
              Backup.roll_forward b ~main:t.main ~off ~len)
            intents
      | Intent_log.Running | Intent_log.Aborted ->
          List.iter
            (fun { Intent_log.off; len } ->
              ignore (Backup.roll_back b ~main:t.main ~off ~len);
              Backup.drop b ~off)
            intents
      | Intent_log.Free -> ());
      Intent_log.release ilog slot)
    (List.rev !pending)

let make ~dynamic =
  {
    v_object_granular = dynamic;
    v_begin = (fun _ ~tx_id:_ -> ());
    v_claim_slot = claim_with_pressure;
    v_declare = declare ~dynamic;
    v_pre_free = no_op_pre_free;
    v_barrier = barrier;
    v_commit = commit ~dynamic;
    v_abort = abort;
    v_prepare = prepare;
    v_commit_prepared = commit_prepared ~dynamic;
    v_recover = recover;
  }

let simple = make ~dynamic:false

let dynamic = make ~dynamic:true
