(** Asynchronous chain replication over the discrete-event engine.

    Where {!Chain} executes a write synchronously down the chain (simple,
    and sufficient for the latency/throughput experiments), this module
    implements §5.1–§5.3's machinery explicitly and asynchronously:

    - operations are serializable commands ({!Op}) with a global sequence
      number assigned at the head;
    - every replica buffers received commands in a persistent {e input
      queue} before processing, executes them {e exactly once} (the
      last-executed sequence number is updated in the same transaction as
      the command itself), then moves them to a persistent {e in-flight
      queue} and forwards downstream;
    - the tail acknowledges completion to the head (which releases locks
      and completes the client) and sends {e cleanup acknowledgments}
      upstream that garbage-collect the in-flight queues;
    - the chain's composition is a sequence of {!Membership} views; every
      message is stamped with the sender's view id and receivers drop
      stale-view messages (§5.3). Fail-stop removals install a new view,
      repair the chain by re-driving every survivor's in-flight window, and
      — when the head fails under Kamino-Tx — promote the next replica by
      building it a local backup (§5.2), as a separate crashable event;
    - messages are events on a {!Kamino_sim.Engine}; replicas can crash and
      quick-reboot at arbitrary virtual times, mid-propagation included,
      recovering from their persistent queues and (for Kamino replicas)
      their chain neighbours, then re-forwarding anything not yet cleaned.

    Run a workload by submitting operations and calling {!run} to drain the
    event queue. The [*_now] variants apply a failure immediately — they
    exist for the chaos explorer, which injects faults at event boundaries
    of the simulation rather than at pre-planned virtual times. *)

type mode = Traditional | Kamino_chain

(** Deliberately broken recovery, for validating the chaos oracles: a
    harness that cannot catch [Drop_inflight_on_reboot] (a reboot that
    forgets the un-cleaned in-flight window, leaving a later chain repair
    nothing to re-forward) is not testing anything. *)
type recovery_fault = No_fault | Drop_inflight_on_reboot

(** A persistent queue slot decoded to garbage (bit rot under a valid
    queue checksum): surfaced with the replica and slot, never executed. *)
exception Corrupt_entry of { node : int; queue_seq : int; reason : string }

type t

(** [obs] (default {!Kamino_obs.Obs.null}) traces the whole chain into one
    tracer: per-hop propagation spans (forward sends, tail acks, cleanup
    cascade), view-change and head-promotion instants on track 0, and each
    node's engine events on its own track group — node [i] owns tracks
    [10 (i+1) .. 10 (i+1) + 3] (tx / applier / nvm / link). The null
    default costs one branch per site and cannot move simulated time. *)
val create :
  ?sim:Kamino_sim.Engine.t ->
  ?engine_config:Kamino_core.Engine.config ->
  ?obs:Kamino_obs.Obs.t ->
  ?hop_ns:int ->
  ?rpc_ns:int ->
  ?promote_ns:int ->
  ?queue_slots:int ->
  ?slot_bytes:int ->
  mode:mode ->
  f:int ->
  value_size:int ->
  node_size:int ->
  seed:int ->
  unit ->
  t

val length : t -> int

(** The simulation driving the chain — schedule crashes on it, then {!run}. *)
val sim : t -> Kamino_sim.Engine.t

(** [submit t ~at op ~on_complete] hands a write to the head at virtual
    time [at]; [on_complete] fires with the client-visible completion time
    when the tail's acknowledgment reaches the head. [on_submit] reports
    the op's global sequence number the moment the head assigns it. *)
val submit :
  t -> at:int -> ?on_submit:(int -> unit) -> Op.t -> on_complete:(int -> unit) -> unit

(** [read t ~at key ~on_result] — served by the current tail. *)
val read : t -> at:int -> int -> on_result:(string option -> int -> unit) -> unit

(** [quick_reboot t ~at i] schedules a crash + §5.3 recovery of replica [i]
    at virtual time [at]: the replica reopens its persistent queues,
    resolves incomplete transactions (with a local backup: locally;
    otherwise from a chain neighbour), re-executes anything received but
    unexecuted, and re-forwards anything not yet cleaned. A replica that
    was fail-stopped while dark learns [`Removed] from the rejoin
    handshake and stays out. *)
val quick_reboot : ?downtime_ns:int -> t -> at:int -> int -> unit

(** [reboot_now t i] — the same, applied immediately (event-boundary
    injection). *)
val reboot_now : ?downtime_ns:int -> t -> int -> unit

(** [fail_stop t ~at i] schedules a permanent fail-stop removal of replica
    [i]: a new membership view without it is installed, every survivor
    re-drives its in-flight window to its new neighbours, and if [i] was
    the head of a Kamino chain the new head's backup build is scheduled
    [promote_ns] later. Raises [Invalid_argument] if [i] is the last
    member. *)
val fail_stop : t -> at:int -> int -> unit

val fail_stop_now : t -> int -> unit

(** [inject_stale_probe t ~at i] delivers a forward message stamped with an
    out-of-date view id to replica [i]: view validation must drop it (the
    payload would visibly corrupt the replica if executed). *)
val inject_stale_probe : t -> at:int -> int -> unit

val inject_stale_probe_now : t -> int -> unit

(** [set_hop_jitter t (Some (rng, amp))] adds [Rng.int rng amp] nanoseconds
    of noise to every hop delay. Forward links stay FIFO (deliveries are
    clamped after the link's previous delivery), as over TCP. *)
val set_hop_jitter : t -> (Kamino_sim.Rng.t * int) option -> unit

val set_recovery_fault : t -> recovery_fault -> unit

(** [run t] drains the event queue; returns the number of events. *)
val run : t -> int

(** {1 Cluster composition}

    The cluster layer ({!Kamino_cluster.Cluster}) runs cross-chain
    transactions as persistent-marker 2PC over chain {e heads}. The chain
    contributes the per-participant half: prepare a transaction at the
    current head (wedging the chain — later client submissions park so no
    higher sequence number can execute ahead of the undecided one), report
    whether the prepared transaction is still alive at the current head,
    commit (or idempotently re-drive) it, and surface view changes and
    reboot-recovery decisions to the coordinator. *)

(** [cluster_prepare t op] executes [op] at the current head inside a
    prepared-but-undecided transaction ({!Kamino_core.Engine.prepare}) and
    wedges the chain. Returns [(seq, node, tx_id)] — the op's chain
    sequence number, the head that prepared it, and the engine-local
    transaction id (what the cluster marker records). [?seq] re-prepares
    under the {e same} sequence number at a newly promoted head after the
    original died undecided. Call only from inside a simulation event, and
    only when {!head_can_prepare}. *)
val cluster_prepare : ?seq:int -> t -> Op.t -> int * int * int

(** Whether the cluster transaction prepared as [seq] is still parked,
    undecided, at the current head. False after a head reboot (recovery
    resolved it from the marker) or a head promotion (the prepared state
    died with the old head) — the coordinator must then re-prepare (before
    the marker) or re-drive (after). *)
val cluster_prepared_live : t -> seq:int -> bool

(** [cluster_commit t ~seq op] makes the cluster decision visible on this
    chain: commits the prepared transaction if it is still alive, otherwise
    idempotently re-executes [op] at the current head; then unwedges the
    chain, flushes parked submissions, and propagates [seq] down the chain.
    [on_ack] fires with the completion time when the tail's acknowledgment
    reaches the head. *)
val cluster_commit : ?on_ack:(int -> unit) -> t -> seq:int -> Op.t -> unit

(** [cluster_redrive t ~seq op] re-propagates a committed-but-unacked
    cluster op through the {e current} head after a view change — execution
    and forwarding are exactly-once guarded, so re-driving is always safe. *)
val cluster_redrive : t -> seq:int -> Op.t -> unit

(** Whether the current head's engine supports two-phase commit right now —
    false for a freshly promoted head until its backup build completes
    (it is still [Intent_only]), and always false for [Traditional]
    chains. *)
val head_can_prepare : t -> bool

(** The chain is wedged under a prepared-but-undecided cluster
    transaction. *)
val cluster_held : t -> bool

(** Client submissions currently parked behind the wedge. *)
val deferred_count : t -> int

(** [set_view_change_hook t (Some h)] — [h] runs at the end of every
    fail-stop view change, after the survivors' chain repair. *)
val set_view_change_hook : t -> (unit -> unit) option -> unit

(** [set_recovery_hook t (Some h)] — [h ~node ~tx_id] is the cluster
    marker's all-or-nothing decision for a Running intent record found when
    replica [node] reboots: true rolls it forward (the cluster committed),
    false rolls it back. *)
val set_recovery_hook : t -> (node:int -> tx_id:int -> bool) option -> unit

(** {1 Observation} *)

(** Members of the current view, head first. *)
val members : t -> int list

val view_id : t -> int

val head_id : t -> int

val tail_id : t -> int

(** Messages dropped by stale-view validation so far. *)
val stale_drops : t -> int

(** The replica whose head promotion (backup build) is still in flight. *)
val promotion_pending : t -> int option

(** Committed-state contents of one replica (tests). *)
val kv_at : t -> int -> Kamino_kv.Kv.t

val engine_at : t -> int -> Kamino_core.Engine.t

(** White-box access to a replica's persistent input queue (corruption
    tests). *)
val input_queue : t -> int -> Opqueue.t

(** Every member of the current view holds the same committed contents. *)
val replicas_consistent : t -> (unit, string) result

(** Highest op sequence executed by a replica (exactly-once check). *)
val executed_seq : t -> int -> int

(** Every op sequence whose transaction committed at replica [i], sorted —
    omniscient-observer ground truth for the chaos oracles (survives
    reboots; holes appear when a head fails before an op propagates). *)
val applied_seqs : t -> int -> int list
