(** Asynchronous chain replication over the discrete-event engine.

    Where {!Chain} executes a write synchronously down the chain (simple,
    and sufficient for the latency/throughput experiments), this module
    implements §5.1's machinery explicitly and asynchronously:

    - operations are serializable commands ({!Op}) with a global sequence
      number assigned at the head;
    - every replica buffers received commands in a persistent {e input
      queue} before processing, executes them {e exactly once} (the
      last-executed sequence number is updated in the same transaction as
      the command itself), then moves them to a persistent {e in-flight
      queue} and forwards downstream;
    - the tail acknowledges completion to the head (which releases locks
      and completes the client) and sends {e cleanup acknowledgments}
      upstream that garbage-collect the in-flight queues;
    - messages are events on a {!Kamino_sim.Engine}; replicas can crash and
      quick-reboot at arbitrary virtual times, mid-propagation included,
      recovering from their persistent queues and (for Kamino replicas)
      their chain neighbours, then re-forwarding anything not yet cleaned.

    Run a workload by submitting operations and calling {!run} to drain the
    event queue. *)

type mode = Traditional | Kamino_chain

type t

val create :
  ?engine_config:Kamino_core.Engine.config ->
  ?hop_ns:int ->
  ?rpc_ns:int ->
  ?queue_slots:int ->
  mode:mode ->
  f:int ->
  value_size:int ->
  node_size:int ->
  seed:int ->
  unit ->
  t

val length : t -> int

(** The simulation driving the chain — schedule crashes on it, then {!run}. *)
val sim : t -> Kamino_sim.Engine.t

(** [submit t ~at op ~on_complete] hands a write to the head at virtual
    time [at]; [on_complete] fires with the client-visible completion time
    when the tail's acknowledgment reaches the head. *)
val submit : t -> at:int -> Op.t -> on_complete:(int -> unit) -> unit

(** [read t ~at key ~on_result] — served by the tail. *)
val read : t -> at:int -> int -> on_result:(string option -> int -> unit) -> unit

(** [quick_reboot t ~at i] schedules a crash + §5.3 recovery of replica [i]
    at virtual time [at]: the replica reopens its persistent queues,
    resolves incomplete transactions (head: local backup; others: from the
    predecessor), re-executes anything received but unexecuted, and
    re-forwards anything not yet cleaned. *)
val quick_reboot : ?downtime_ns:int -> t -> at:int -> int -> unit

(** [run t] drains the event queue; returns the number of events. *)
val run : t -> int

(** Committed-state contents of one replica (tests). *)
val kv_at : t -> int -> Kamino_kv.Kv.t

val replicas_consistent : t -> (unit, string) result

(** Operations executed per replica (exactly-once check). *)
val executed_seq : t -> int -> int
