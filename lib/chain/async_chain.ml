module Sim = Kamino_sim.Engine
module Clock = Kamino_sim.Clock
module Rng = Kamino_sim.Rng
module Region = Kamino_nvm.Region
module Heap = Kamino_heap.Heap
module Engine = Kamino_core.Engine
module Locks = Kamino_core.Locks
module Backup = Kamino_core.Backup
module Kv = Kamino_kv.Kv

type mode = Traditional | Kamino_chain

type node = {
  id : int;
  engine : Engine.t;
  mutable kv : Kv.t;
  clock : Clock.t;
  input_region : Region.t;
  mutable input : Opqueue.t;
  inflight_region : Region.t;
  mutable inflight : Opqueue.t;
  exec_seq_obj : Heap.ptr;  (* last executed op sequence, bumped in-tx *)
  mutable last_forwarded : int;  (* volatile dedup for the in-flight queue *)
  mutable up : bool;
}

type t = {
  mode : mode;
  sim : Sim.t;
  hop_ns : int;
  rpc_ns : int;
  nodes : node array;
  mutable next_op_seq : int;
  (* head-side completion plumbing: op seq -> (write-lock keys, callback) *)
  pending : (int, int list * (int -> unit)) Hashtbl.t;
}

(* Envelope: 8-byte op sequence followed by the encoded command. *)
let envelope ~seq op =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int seq);
  Bytes.to_string b ^ Op.encode op

let open_envelope payload =
  ( Int64.to_int (String.get_int64_le payload 0),
    Op.decode (String.sub payload 8 (String.length payload - 8)) )

let length t = Array.length t.nodes

let sim t = t.sim

let kv_at t i = t.nodes.(i).kv

let executed_seq t i =
  let n = t.nodes.(i) in
  Engine.peek_int n.engine n.exec_seq_obj 0

let create ?(engine_config = Engine.default_config) ?(hop_ns = 5000) ?(rpc_ns = 1000)
    ?(queue_slots = 512) ~mode ~f ~value_size ~node_size ~seed () =
  if f < 1 then invalid_arg "Async_chain.create: f must be at least 1";
  let n_nodes = match mode with Traditional -> f + 1 | Kamino_chain -> f + 2 in
  let slot_bytes = value_size + 64 in
  let qsize = Opqueue.required_size ~slot_bytes ~n_slots:queue_slots in
  let nodes =
    Array.init n_nodes (fun i ->
        let kind =
          match mode with
          | Traditional -> Engine.Undo_logging
          | Kamino_chain -> if i = 0 then Engine.Kamino_simple else Engine.Intent_only
        in
        let engine = Engine.create ~config:engine_config ~kind ~seed:(seed + i) () in
        let clock = Clock.create () in
        Engine.set_clock engine clock;
        let kv = Kv.create engine ~value_size ~node_size in
        let exec_seq_obj =
          Engine.with_tx engine (fun tx ->
              let o = Engine.alloc tx 8 in
              Engine.write_int tx o 0 0;
              o)
        in
        let rng = Rng.create (seed + 100 + i) in
        let mk () =
          Region.create ~cost:engine_config.Engine.cost
            ~crash_mode:engine_config.Engine.crash_mode ~rng:(Rng.split rng) ~clock
            ~size:qsize ()
        in
        let input_region = mk () and inflight_region = mk () in
        {
          id = i;
          engine;
          kv;
          clock;
          input_region;
          input = Opqueue.format input_region ~slot_bytes ~n_slots:queue_slots;
          inflight_region;
          inflight = Opqueue.format inflight_region ~slot_bytes ~n_slots:queue_slots;
          exec_seq_obj;
          last_forwarded = 0;
          up = true;
        })
  in
  {
    mode;
    sim = Sim.create ();
    hop_ns;
    rpc_ns;
    nodes;
    next_op_seq = 1;
    pending = Hashtbl.create 64;
  }

(* Bring a node's clock to the event time and charge RPC processing. *)
let enter t node =
  ignore (Clock.advance_to node.clock (Sim.now t.sim));
  Clock.advance node.clock t.rpc_ns;
  Engine.set_clock node.engine node.clock

(* Execute a command exactly once: the last-executed sequence number is
   part of the same transaction, so a reboot can never double-apply. *)
let execute node ~seq op =
  let already = Engine.peek_int node.engine node.exec_seq_obj 0 in
  if seq > already then
    Engine.with_tx node.engine (fun tx ->
        Op.apply_tx tx op node.kv;
        Engine.add tx node.exec_seq_obj;
        Engine.write_int tx node.exec_seq_obj 0 seq)

let record_inflight node ~seq payload =
  if seq > node.last_forwarded then begin
    ignore (Opqueue.enqueue node.inflight payload);
    node.last_forwarded <- seq
  end

(* Garbage-collect the in-flight queue up to (and including) an op
   sequence: queue positions and op sequences differ after reboots, so the
   match is on the envelope. *)
let gc_inflight node op_seq =
  let rec go () =
    match Opqueue.peek node.inflight with
    | Some (_, payload) when fst (open_envelope payload) <= op_seq ->
        ignore (Opqueue.dequeue node.inflight);
        go ()
    | Some _ | None -> ()
  in
  go ()

(* --- message handlers ----------------------------------------------------- *)

let rec deliver_forward t i payload =
  let node = t.nodes.(i) in
  if node.up then begin
    enter t node;
    (* Buffer in the persistent input queue before anything else. *)
    ignore (Opqueue.enqueue node.input payload);
    process_input t node
  end

and process_input t node =
  match Opqueue.peek node.input with
  | None -> ()
  | Some (_, payload) ->
      let seq, op = open_envelope payload in
      execute node ~seq op;
      (* The tail forwards to nobody, so it keeps no in-flight queue. *)
      if node.id + 1 < Array.length t.nodes then record_inflight node ~seq payload;
      ignore (Opqueue.dequeue node.input);
      forward_or_finish t node ~seq payload;
      process_input t node

and forward_or_finish t node ~seq payload =
  let i = node.id in
  if i + 1 < Array.length t.nodes then
    Sim.schedule t.sim
      ~at:(Clock.now node.clock + t.hop_ns)
      (fun () -> deliver_forward t (i + 1) payload)
  else begin
    (* Tail: acknowledge to the head and start the cleanup cascade. *)
    let at = Clock.now node.clock + t.hop_ns in
    Sim.schedule t.sim ~at (fun () -> deliver_ack t seq);
    if i > 0 then Sim.schedule t.sim ~at (fun () -> deliver_cleanup t (i - 1) seq)
  end

and deliver_ack t seq =
  let head = t.nodes.(0) in
  if head.up then begin
    enter t head;
    (* Completion: release the head's extended locks, answer the client,
       and garbage-collect the head's in-flight entry. *)
    (match Hashtbl.find_opt t.pending seq with
    | Some (keys, callback) ->
        Hashtbl.remove t.pending seq;
        Locks.release_held_writes (Engine.locks head.engine) keys
          ~at:(Clock.now head.clock);
        callback (Clock.now head.clock)
    | None -> ());
    gc_inflight head seq
  end

and deliver_cleanup t i seq =
  let node = t.nodes.(i) in
  if node.up then begin
    enter t node;
    gc_inflight node seq;
    if i > 1 then
      Sim.schedule t.sim
        ~at:(Clock.now node.clock + t.hop_ns)
        (fun () -> deliver_cleanup t (i - 1) seq)
  end

(* --- client interface ----------------------------------------------------- *)

let submit t ~at op ~on_complete =
  Sim.schedule t.sim ~at (fun () ->
      let head = t.nodes.(0) in
      if not head.up then failwith "Async_chain.submit: head is down";
      enter t head;
      let seq = t.next_op_seq in
      t.next_op_seq <- seq + 1;
      let payload = envelope ~seq op in
      execute head ~seq op;
      let keys = Engine.last_write_keys head.engine in
      Hashtbl.replace t.pending seq (keys, on_complete);
      (* Hold the head's write locks until the tail acknowledges. *)
      Locks.hold_writes (Engine.locks head.engine) keys;
      record_inflight head ~seq payload;
      if Array.length t.nodes > 1 then
        Sim.schedule t.sim
          ~at:(Clock.now head.clock + t.hop_ns)
          (fun () -> deliver_forward t 1 payload)
      else deliver_ack t seq)

let read t ~at key ~on_result =
  Sim.schedule t.sim ~at (fun () ->
      let tail = t.nodes.(Array.length t.nodes - 1) in
      enter t tail;
      let v = Kv.get tail.kv key in
      on_result v (Clock.now tail.clock + t.hop_ns))

(* --- failures -------------------------------------------------------------- *)

let quick_reboot ?(downtime_ns = 0) t ~at i =
  Sim.schedule t.sim ~at (fun () ->
      let node = t.nodes.(i) in
      node.up <- false;
      (* The machine is dark while it reboots; everything it does next
         happens after the downtime, and deliveries queue behind it. *)
      Clock.advance node.clock downtime_ns;
      Engine.set_clock node.engine node.clock;
      ignore (Clock.advance_to node.clock (Sim.now t.sim));
      Engine.crash node.engine;
      Region.crash node.input_region;
      Region.crash node.inflight_region;
      (* §5.3 recovery. *)
      Engine.recover node.engine;
      (match t.mode with
      | Kamino_chain when i > 0 ->
          Engine.resolve_from_peer node.engine
            ~peer:(Engine.main_region t.nodes.(i - 1).engine)
      | Kamino_chain | Traditional -> ());
      node.kv <- Kv.reattach node.engine;
      node.input <- Opqueue.open_existing node.input_region;
      node.inflight <- Opqueue.open_existing node.inflight_region;
      node.last_forwarded <- 0;
      Opqueue.iter node.inflight (fun ~seq:_ ~payload ->
          let s, _ = open_envelope payload in
          if s > node.last_forwarded then node.last_forwarded <- s);
      node.up <- true;
      (* Re-drive: execute anything buffered but unexecuted, and re-forward
         everything not yet cleaned (duplicates are deduplicated downstream
         by the executed-sequence check). *)
      process_input t node;
      Opqueue.iter node.inflight (fun ~seq:_ ~payload ->
          let seq, _ = open_envelope payload in
          if i + 1 < Array.length t.nodes then
            Sim.schedule t.sim
              ~at:(Clock.now node.clock + t.hop_ns)
              (fun () -> deliver_forward t (i + 1) payload)
          else forward_or_finish t node ~seq payload))

let run t = Sim.run t.sim

(* --- verification ----------------------------------------------------------- *)

let contents kv =
  let acc = ref [] in
  Kv.iter kv (fun k v -> acc := (k, v) :: !acc);
  List.rev !acc

let replicas_consistent t =
  let reference = contents t.nodes.(0).kv in
  let rec check i =
    if i >= Array.length t.nodes then Ok ()
    else if contents t.nodes.(i).kv <> reference then
      Error (Printf.sprintf "replica %d diverges from the head" i)
    else check (i + 1)
  in
  check 1
