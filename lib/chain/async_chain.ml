module Sim = Kamino_sim.Engine
module Clock = Kamino_sim.Clock
module Rng = Kamino_sim.Rng
module Region = Kamino_nvm.Region
module Heap = Kamino_heap.Heap
module Engine = Kamino_core.Engine
module Locks = Kamino_core.Locks
module Backup = Kamino_core.Backup
module Kv = Kamino_kv.Kv
module Obs = Kamino_obs.Obs

type mode = Traditional | Kamino_chain

type recovery_fault = No_fault | Drop_inflight_on_reboot

exception Corrupt_entry of { node : int; queue_seq : int; reason : string }

type node = {
  id : int;
  engine : Engine.t;
  mutable kv : Kv.t;
  clock : Clock.t;
  input_region : Region.t;
  mutable input : Opqueue.t;
  inflight_region : Region.t;
  mutable inflight : Opqueue.t;
  exec_seq_obj : Heap.ptr;  (* last executed op sequence, bumped in-tx *)
  mutable last_forwarded : int;  (* volatile dedup for the in-flight queue *)
  mutable up : bool;
  mutable removed : bool;  (* fail-stopped out of the view, permanently *)
  mutable fwd_link_at : int;
      (* latest delivery time scheduled on this node's forward link — keeps
         the link FIFO even when per-hop jitter would reorder messages *)
  mutable cluster_tx : (int * Engine.tx) option;
      (* a cluster-prepared transaction parked at this head: (op seq,
         prepared tx). Volatile — a crash leaves only the durable Running
         record, whose fate the recovery hook decides from the marker. *)
  applied : (int, unit) Hashtbl.t;
      (* omniscient-observer record of every op sequence whose transaction
         committed here; survives reboots (it is oracle instrumentation,
         not replica state) but is meaningless once the node is removed *)
}

type t = {
  mode : mode;
  sim : Sim.t;
  hop_ns : int;
  rpc_ns : int;
  promote_ns : int;
  nodes : node array;
  membership : Membership.t;
  mutable next_op_seq : int;
  (* head-side completion plumbing: op seq -> (write-lock keys, callback) *)
  pending : (int, int list * (int -> unit)) Hashtbl.t;
  mutable jitter : (Rng.t * int) option;  (* per-hop delay noise: rng, amplitude *)
  mutable stale_drops : int;
  mutable promoting : int option;  (* replica whose head promotion is in flight *)
  mutable recovery_fault : recovery_fault;
  obs : Obs.t;  (* chain-level events: hops, view changes, promotions *)
  (* Cluster composition (2PC over chain heads, DESIGN.md §14). While a
     cluster transaction is prepared-but-undecided on this chain the head
     is wedged: client submissions park in [deferred] so no later sequence
     number can execute (and forward) ahead of the prepared one — the
     exactly-once guard is monotone in op sequence, so order violations
     would silently drop the cluster op downstream. *)
  mutable cluster_hold : bool;
  deferred : (Op.t * (int -> unit) * (int -> unit)) Queue.t;
      (* parked submissions: op, on_submit, on_complete *)
  mutable on_view_change : (unit -> unit) option;
  mutable recovery_hook : (node:int -> tx_id:int -> bool) option;
      (* the cluster marker's all-or-nothing decision for a Running record
         found at reboot of [node] — plumbed into [Engine.recover] *)
}

(* Track layout: track 0 is chain-level control; node [i] owns tracks
   [10 (i+1) .. 10 (i+1) + 3] — tx, applier, nvm (the engine's three, see
   {!Engine.create}) and its forward/ack link. *)
let node_track i = 10 * (i + 1)
let link_track i = node_track i + 3

(* Envelope: 8-byte op sequence followed by the encoded command. *)
let envelope ~seq op =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int seq);
  Bytes.to_string b ^ Op.encode op

let open_envelope payload =
  ( Int64.to_int (String.get_int64_le payload 0),
    Op.decode (String.sub payload 8 (String.length payload - 8)) )

(* Decoding a persistent queue slot can fail if the slot was corrupted in
   place (the queue's checksum guards torn publishes, not bit rot under a
   valid checksum). Surface it as a typed error naming the replica and the
   slot instead of executing garbage. *)
let open_envelope_exn node ~queue_seq payload =
  match open_envelope payload with
  | v -> v
  | exception Op.Decode_error reason ->
      raise (Corrupt_entry { node = node.id; queue_seq; reason })
  | exception Invalid_argument reason ->
      raise (Corrupt_entry { node = node.id; queue_seq; reason })

let length t = Array.length t.nodes

let sim t = t.sim

let kv_at t i = t.nodes.(i).kv

let engine_at t i = t.nodes.(i).engine

let input_queue t i = t.nodes.(i).input

let executed_seq t i =
  let n = t.nodes.(i) in
  Engine.peek_int n.engine n.exec_seq_obj 0

let applied_seqs t i =
  let seqs = Hashtbl.fold (fun seq () acc -> seq :: acc) t.nodes.(i).applied [] in
  List.sort compare seqs

let members t = (Membership.current t.membership).Membership.members

let view_id t = (Membership.current t.membership).Membership.id

let stale_drops t = t.stale_drops

let promotion_pending t = t.promoting

let set_hop_jitter t j = t.jitter <- j

let set_recovery_fault t f = t.recovery_fault <- f

let head_id t =
  match members t with
  | h :: _ -> h
  | [] -> invalid_arg "Async_chain: the chain has no members left"

let tail_id t =
  match List.rev (members t) with
  | tl :: _ -> tl
  | [] -> invalid_arg "Async_chain: the chain has no members left"

let create ?sim ?(engine_config = Engine.default_config) ?(obs = Obs.null)
    ?(hop_ns = 5000) ?(rpc_ns = 1000) ?(promote_ns = 50_000) ?(queue_slots = 512)
    ?slot_bytes ~mode ~f ~value_size ~node_size ~seed () =
  if f < 1 then invalid_arg "Async_chain.create: f must be at least 1";
  let n_nodes = match mode with Traditional -> f + 1 | Kamino_chain -> f + 2 in
  let slot_bytes =
    match slot_bytes with Some b -> b | None -> value_size + 64
  in
  let qsize = Opqueue.required_size ~slot_bytes ~n_slots:queue_slots in
  let nodes =
    Array.init n_nodes (fun i ->
        let kind =
          match mode with
          | Traditional -> Engine.Undo_logging
          | Kamino_chain -> if i = 0 then Engine.Kamino_simple else Engine.Intent_only
        in
        let engine =
          Engine.create ~config:engine_config ~obs ~obs_track:(node_track i)
            ~kind ~seed:(seed + i) ()
        in
        let clock = Clock.create () in
        Engine.set_clock engine clock;
        let kv = Kv.create engine ~value_size ~node_size in
        let exec_seq_obj =
          Engine.with_tx engine (fun tx ->
              let o = Engine.alloc tx 8 in
              Engine.write_int tx o 0 0;
              o)
        in
        let rng = Rng.create (seed + 100 + i) in
        let mk () =
          Region.create ~cost:engine_config.Engine.cost
            ~crash_mode:engine_config.Engine.crash_mode ~rng:(Rng.split rng) ~clock
            ~size:qsize ()
        in
        let input_region = mk () and inflight_region = mk () in
        if Obs.enabled obs then begin
          Obs.name_track obs (node_track i) (Printf.sprintf "node%d/tx" i);
          Obs.name_track obs (node_track i + 1) (Printf.sprintf "node%d/applier" i);
          Obs.name_track obs (node_track i + 2) (Printf.sprintf "node%d/nvm" i);
          Obs.name_track obs (link_track i) (Printf.sprintf "node%d/link" i);
          Region.set_obs input_region ~track:(node_track i + 2) obs;
          Region.set_obs inflight_region ~track:(node_track i + 2) obs;
          Obs.name_track obs 0 "chain"
        end;
        {
          id = i;
          engine;
          kv;
          clock;
          input_region;
          input = Opqueue.format input_region ~slot_bytes ~n_slots:queue_slots;
          inflight_region;
          inflight = Opqueue.format inflight_region ~slot_bytes ~n_slots:queue_slots;
          exec_seq_obj;
          last_forwarded = 0;
          up = true;
          removed = false;
          fwd_link_at = 0;
          cluster_tx = None;
          applied = Hashtbl.create 64;
        })
  in
  {
    mode;
    sim = (match sim with Some s -> s | None -> Sim.create ());
    hop_ns;
    rpc_ns;
    promote_ns;
    nodes;
    membership =
      Membership.create
        ~members:(List.init n_nodes Fun.id)
        ~failure_timeout_ns:(50 * hop_ns);
    next_op_seq = 1;
    pending = Hashtbl.create 64;
    jitter = None;
    stale_drops = 0;
    promoting = None;
    recovery_fault = No_fault;
    obs;
    cluster_hold = false;
    deferred = Queue.create ();
    on_view_change = None;
    recovery_hook = None;
  }

(* Bring a node's clock to the event time and charge RPC processing. *)
let enter t node =
  ignore (Clock.advance_to node.clock (Sim.now t.sim));
  Clock.advance node.clock t.rpc_ns;
  Engine.set_clock node.engine node.clock

let hop_delay t =
  t.hop_ns
  + match t.jitter with Some (rng, amp) when amp > 0 -> Rng.int rng amp | _ -> 0

(* Execute a command exactly once: the last-executed sequence number is
   part of the same transaction, so a reboot can never double-apply. *)
let execute node ~seq op =
  let already = Engine.peek_int node.engine node.exec_seq_obj 0 in
  if seq > already then begin
    Engine.with_tx node.engine (fun tx ->
        Op.apply_tx tx op node.kv;
        Engine.add tx node.exec_seq_obj;
        Engine.write_int tx node.exec_seq_obj 0 seq);
    Hashtbl.replace node.applied seq ()
  end

let record_inflight node ~seq payload =
  if seq > node.last_forwarded then begin
    ignore (Opqueue.enqueue node.inflight payload);
    node.last_forwarded <- seq
  end

(* Garbage-collect the in-flight queue up to (and including) an op
   sequence: queue positions and op sequences differ after reboots, so the
   match is on the envelope. *)
let gc_inflight node op_seq =
  let rec go () =
    match Opqueue.peek node.inflight with
    | Some (qseq, payload)
      when fst (open_envelope_exn node ~queue_seq:qseq payload) <= op_seq ->
        ignore (Opqueue.dequeue node.inflight);
        go ()
    | Some _ | None -> ()
  in
  go ()

(* Snapshot the in-flight entries before re-driving them: the re-drive may
   itself garbage-collect the queue (a node that became tail acks its own
   backlog), and iterating a queue while dequeuing from it is undefined. *)
let inflight_entries node =
  let acc = ref [] in
  Opqueue.iter node.inflight (fun ~seq:_ ~payload -> acc := payload :: !acc);
  List.rev !acc

(* --- message handlers ----------------------------------------------------- *)

(* Forward sends ride a FIFO link (TCP in the real system): with per-hop
   jitter enabled, a naively scheduled later send could overtake an earlier
   one and make a replica observe a sequence gap it would then never fill.
   Clamping each delivery after the link's previous one preserves order. *)
let send_on_fwd_link t from_node ~at ~seq ~dst f =
  let at = max at (from_node.fwd_link_at + 1) in
  from_node.fwd_link_at <- at;
  (if Obs.enabled t.obs then
     let ts = Clock.now from_node.clock in
     Obs.emit t.obs ~kind:Obs.k_hop ~track:(link_track from_node.id) ~ts
       ~dur:(at - ts) ~a:seq ~b:from_node.id ~c:dst);
  Sim.schedule t.sim ~at f

(* A hop outside the FIFO forward link (tail ack, cleanup cascade). *)
let trace_hop t from_node ~at ~seq ~dst =
  if Obs.enabled t.obs then begin
    let ts = Clock.now from_node.clock in
    Obs.emit t.obs ~kind:Obs.k_hop ~track:(link_track from_node.id) ~ts
      ~dur:(max 0 (at - ts)) ~a:seq ~b:from_node.id ~c:dst
  end

let rec deliver_forward t ~view i payload =
  match Membership.validate t.membership ~view_id:view with
  | `Stale _ -> t.stale_drops <- t.stale_drops + 1
  | `Current ->
      let node = t.nodes.(i) in
      if node.up && not node.removed then begin
        enter t node;
        (* Buffer in the persistent input queue before anything else. *)
        ignore (Opqueue.enqueue node.input payload);
        process_input t node
      end

and process_input t node =
  match Opqueue.peek node.input with
  | None -> ()
  | Some (qseq, payload) ->
      let seq, op = open_envelope_exn node ~queue_seq:qseq payload in
      execute node ~seq op;
      (* A tail forwards to nobody, so it records no in-flight entry. *)
      (match Membership.successor t.membership node.id with
      | Some _ -> record_inflight node ~seq payload
      | None -> ());
      ignore (Opqueue.dequeue node.input);
      forward_or_finish t node ~seq payload;
      process_input t node

and forward_or_finish t node ~seq payload =
  match Membership.successor t.membership node.id with
  | Some nxt ->
      let vid = view_id t in
      send_on_fwd_link t node
        ~at:(Clock.now node.clock + hop_delay t)
        ~seq ~dst:nxt
        (fun () -> deliver_forward t ~view:vid nxt payload)
  | None ->
      (* Tail: acknowledge to the head and start the cleanup cascade. A
         node that just became tail also drains its own in-flight backlog
         here — it has nobody left to forward to. *)
      let vid = view_id t in
      let at = Clock.now node.clock + hop_delay t in
      trace_hop t node ~at ~seq ~dst:(head_id t);
      Sim.schedule t.sim ~at (fun () -> deliver_ack t ~view:vid seq);
      gc_inflight node seq;
      (match Membership.predecessor t.membership node.id with
      | Some p ->
          trace_hop t node ~at ~seq ~dst:p;
          Sim.schedule t.sim ~at (fun () -> deliver_cleanup t ~view:vid p seq)
      | None -> ())

and deliver_ack t ~view seq =
  match Membership.validate t.membership ~view_id:view with
  | `Stale _ -> t.stale_drops <- t.stale_drops + 1
  | `Current ->
      let head = t.nodes.(head_id t) in
      if head.up then begin
        enter t head;
        (* Completion: release the head's extended locks, answer the client,
           and garbage-collect the head's in-flight entry. A head promoted
           after the original submitted never held these locks; releasing
           them there is a harmless no-op. *)
        (match Hashtbl.find_opt t.pending seq with
        | Some (keys, callback) ->
            Hashtbl.remove t.pending seq;
            Locks.release_held_writes (Engine.locks head.engine) keys
              ~at:(Clock.now head.clock);
            callback (Clock.now head.clock)
        | None -> ());
        gc_inflight head seq
      end

and deliver_cleanup t ~view i seq =
  match Membership.validate t.membership ~view_id:view with
  | `Stale _ -> t.stale_drops <- t.stale_drops + 1
  | `Current ->
      let node = t.nodes.(i) in
      if node.up && not node.removed then begin
        enter t node;
        gc_inflight node seq;
        (* The head's in-flight entry is cleaned by the tail ack, not the
           cascade. *)
        match Membership.predecessor t.membership i with
        | Some p when p <> head_id t ->
            let at = Clock.now node.clock + hop_delay t in
            trace_hop t node ~at ~seq ~dst:p;
            Sim.schedule t.sim ~at (fun () -> deliver_cleanup t ~view p seq)
        | Some _ | None -> ()
      end

(* --- client interface ----------------------------------------------------- *)

let rec submit_now t ?(on_submit = fun _ -> ()) op ~on_complete =
  if t.cluster_hold then
    (* The head is wedged under a prepared cluster transaction: executing a
       later sequence number now would break the monotone exactly-once
       guard if the cluster op must be re-prepared. Park until commit. *)
    Queue.add (op, on_submit, on_complete) t.deferred
  else begin
    let head = t.nodes.(head_id t) in
    if not head.up then failwith "Async_chain.submit: head is down";
    enter t head;
    let seq = t.next_op_seq in
    t.next_op_seq <- seq + 1;
    on_submit seq;
    let payload = envelope ~seq op in
    execute head ~seq op;
    let keys = Engine.last_write_keys head.engine in
    Hashtbl.replace t.pending seq (keys, on_complete);
    (* Hold the head's write locks until the tail acknowledges. *)
    Locks.hold_writes (Engine.locks head.engine) keys;
    (match Membership.successor t.membership head.id with
    | Some _ -> record_inflight head ~seq payload
    | None -> ());
    forward_or_finish t head ~seq payload
  end

and flush_deferred t =
  if not t.cluster_hold then
    match Queue.take_opt t.deferred with
    | None -> ()
    | Some (op, on_submit, on_complete) ->
        submit_now t ~on_submit op ~on_complete;
        flush_deferred t

let submit t ~at ?on_submit op ~on_complete =
  Sim.schedule t.sim ~at (fun () -> submit_now t ?on_submit op ~on_complete)

let read t ~at key ~on_result =
  Sim.schedule t.sim ~at (fun () ->
      let tail = t.nodes.(tail_id t) in
      if tail.up then begin
        enter t tail;
        let v = Kv.get tail.kv key in
        on_result v (Clock.now tail.clock + hop_delay t)
      end)

(* --- failures -------------------------------------------------------------- *)

(* §5.3 quick reboot: crash and recover in place, without a view change.
   The rejoin handshake tells a node that was fail-stopped while dark that
   it is out (Figure 9's `Removed answer); it then stays dark. *)
let reboot_now ?(downtime_ns = 0) t i =
  let node = t.nodes.(i) in
  if not node.removed then begin
    node.up <- false;
    (* The machine is dark while it reboots; everything it does next
       happens after the downtime, and deliveries queue behind it. *)
    Clock.advance node.clock downtime_ns;
    Engine.set_clock node.engine node.clock;
    ignore (Clock.advance_to node.clock (Sim.now t.sim));
    Engine.crash node.engine;
    Region.crash node.input_region;
    Region.crash node.inflight_region;
    (* §5.3 recovery. A Running intent record at rest can only be a
       cluster-prepared transaction (everything else commits within one
       event); the cluster's recovery hook decides its fate from the
       persistent marker — listed in a valid marker means the cluster
       committed, so the record rolls forward, else back. *)
    let stashed = node.cluster_tx in
    node.cluster_tx <- None;
    let promote txid =
      match t.recovery_hook with
      | Some h -> h ~node:i ~tx_id:txid
      | None -> false
    in
    Engine.recover ~promote_running:promote node.engine;
    (match stashed with
    | Some (seq, tx) when promote (Engine.tx_id tx) ->
        (* The prepared transaction rolled forward: its exec-seq bump (and
           data) committed, so the omniscient applied record must agree. *)
        Hashtbl.replace node.applied seq ()
    | Some _ | None -> ());
    match Membership.rejoin t.membership ~node:i ~believed_view:(view_id t) with
    | `Removed _ -> node.removed <- true
    | `Member (_, pred, succ) ->
        (* A replica without a local backup resolves incomplete transactions
           through a chain neighbour: the predecessor rolls it forward; a
           promoted-but-unbuilt head has no predecessor and rolls back from
           its successor instead (§5.2). Engines with a local backup (the
           original head, or a replica whose promotion completed) recovered
           locally in [Engine.recover]. *)
        (match t.mode with
        | Kamino_chain when Engine.kind node.engine = Engine.Intent_only -> (
            match (match pred with Some _ -> pred | None -> succ) with
            | Some p ->
                Engine.resolve_from_peer node.engine
                  ~peer:(Engine.main_region t.nodes.(p).engine)
            | None -> ())
        | Kamino_chain | Traditional -> ());
        node.kv <- Kv.reattach node.engine;
        node.input <- Opqueue.open_existing node.input_region;
        node.inflight <- Opqueue.open_existing node.inflight_region;
        (match t.recovery_fault with
        | Drop_inflight_on_reboot ->
            (* Deliberately broken recovery for oracle self-tests: forget
               the un-cleaned in-flight window, so a later chain repair has
               nothing to re-forward and stale-dropped operations are lost
               downstream. *)
            while Opqueue.dequeue node.inflight <> None do
              ()
            done
        | No_fault -> ());
        node.last_forwarded <- 0;
        Opqueue.iter node.inflight (fun ~seq:_ ~payload ->
            let s, _ = open_envelope_exn node ~queue_seq:0 payload in
            if s > node.last_forwarded then node.last_forwarded <- s);
        node.up <- true;
        (* Re-drive: execute anything buffered but unexecuted, and re-forward
           everything not yet cleaned (duplicates are deduplicated downstream
           by the executed-sequence check). *)
        process_input t node;
        List.iter
          (fun payload ->
            let seq, _ = open_envelope_exn node ~queue_seq:0 payload in
            forward_or_finish t node ~seq payload)
          (inflight_entries node)
  end

let quick_reboot ?(downtime_ns = 0) t ~at i =
  Sim.schedule t.sim ~at (fun () -> reboot_now ~downtime_ns t i)

(* A newly promoted head finishes §5.2's takeover: build a full local
   backup from the current heap and start a backup applier. Runs as its
   own event [promote_ns] after the view change, so crashes can land in
   the promotion window; it no-ops if the replica was promoted already
   (idempotent under reboot) or was itself removed in the meantime. *)
let complete_promotion t i =
  let node = t.nodes.(i) in
  if t.promoting = Some i then t.promoting <- None;
  if (not node.removed) && Engine.kind node.engine = Engine.Intent_only then begin
    enter t node;
    Engine.promote_to_kamino node.engine;
    if Obs.enabled t.obs then
      Obs.emit t.obs ~kind:Obs.k_promote ~track:0 ~ts:(Sim.now t.sim) ~dur:(-1)
        ~a:i ~b:(view_id t) ~c:0
  end

(* After a view change every surviving member re-drives: it executes
   anything still buffered and re-forwards its un-cleaned in-flight window
   to its {e new} successor. Entries stay in flight until the tail's
   cleanup acknowledgment, so the union of the survivors' windows covers
   every operation the old view had not fully acknowledged — which is what
   makes the repair converge despite stale-view messages being dropped. *)
let repair_node t i =
  let node = t.nodes.(i) in
  if node.up && (not node.removed) && List.mem i (members t) then begin
    enter t node;
    process_input t node;
    List.iter
      (fun payload ->
        let seq, _ = open_envelope_exn node ~queue_seq:0 payload in
        forward_or_finish t node ~seq payload)
      (inflight_entries node)
  end

let fail_stop_now t i =
  let node = t.nodes.(i) in
  if node.removed then ()
  else if List.length (members t) <= 1 then
    invalid_arg "Async_chain.fail_stop: cannot remove the last member"
  else begin
    let was_head = head_id t = i in
    node.up <- false;
    node.removed <- true;
    ignore (Membership.remove t.membership i);
    (if Obs.enabled t.obs then
       Obs.emit t.obs ~kind:Obs.k_view_change ~track:0 ~ts:(Sim.now t.sim)
         ~dur:(-1) ~a:(view_id t) ~b:i ~c:0);
    (* §5.2 head failure: the next replica becomes head. Under Kamino-Tx it
       must build a local backup before it can recover alone; the build is
       scheduled as a separate event so the window is crashable. *)
    (if was_head && t.mode = Kamino_chain then
       let nh = head_id t in
       if Engine.kind t.nodes.(nh).engine = Engine.Intent_only then begin
         t.promoting <- Some nh;
         Sim.schedule_after t.sim ~delay:t.promote_ns (fun () -> complete_promotion t nh)
       end);
    (* Chain repair runs with the view change, before the new view carries
       any new client traffic: in chain replication the chain is wedged
       during reconfiguration. The ordering matters — a survivor's
       re-forwards must get onto its FIFO link ahead of any post-change
       forward, or a downstream replica would see (and skip past) a
       sequence gap left by the stale-view drops. Deliveries still take
       their hop delays; only the decision to re-send is atomic with the
       view change. *)
    List.iter (fun m -> repair_node t m) (members t);
    (* The cluster coordinator re-drives any cross-chain transaction that
       was parked on the removed head — after the repair, so its re-sends
       queue behind the survivors' re-forwards. *)
    match t.on_view_change with Some h -> h () | None -> ()
  end

let fail_stop t ~at i = Sim.schedule t.sim ~at (fun () -> fail_stop_now t i)

(* A message stamped with an out-of-date view id, delivered to a live
   member: the receiver's view validation must drop it. The payload is a
   write that was never sequenced by the head, so if validation were ever
   broken the replica would execute it and the chaos oracles would see the
   divergence. *)
let inject_stale_probe_now t i =
  let node = t.nodes.(i) in
  if node.up && not node.removed then begin
    let stale_view = view_id t - 1 in
    let payload =
      envelope ~seq:(t.next_op_seq + 1_000_000) (Op.Put (0, "stale-probe"))
    in
    Sim.schedule t.sim
      ~at:(Sim.now t.sim + t.hop_ns)
      (fun () -> deliver_forward t ~view:stale_view i payload)
  end

let inject_stale_probe t ~at i =
  Sim.schedule t.sim ~at (fun () -> inject_stale_probe_now t i)

(* --- cluster composition (2PC over chain heads) ---------------------------- *)

let set_view_change_hook t h = t.on_view_change <- h

let set_recovery_hook t h = t.recovery_hook <- h

let cluster_held t = t.cluster_hold

let deferred_count t = Queue.length t.deferred

(* Only Kamino engines implement [prepare]; a freshly promoted head is
   [Intent_only] until its backup build completes, so the coordinator must
   retry after the promotion window. *)
let head_can_prepare t =
  t.mode = Kamino_chain
  && Engine.kind t.nodes.(head_id t).engine <> Engine.Intent_only

let cluster_prepare ?seq t op =
  let head = t.nodes.(head_id t) in
  if not head.up then failwith "Async_chain.cluster_prepare: head is down";
  enter t head;
  let seq =
    match seq with
    | Some s ->
        (* Re-prepare after the original prepared head died: the sequence
           number is the transaction's chain-wide identity (marker entry,
           pending-ack slot), so it must survive the re-prepare. The old
           head never forwarded it, and the wedge kept later sequence
           numbers from executing, so the exactly-once guard still has
           headroom for it. *)
        assert (s < t.next_op_seq);
        s
    | None ->
        let s = t.next_op_seq in
        t.next_op_seq <- s + 1;
        s
  in
  t.cluster_hold <- true;
  let tx = Engine.begin_tx head.engine in
  Op.apply_tx tx op head.kv;
  Engine.add tx head.exec_seq_obj;
  Engine.write_int tx head.exec_seq_obj 0 seq;
  Engine.prepare tx;
  head.cluster_tx <- Some (seq, tx);
  (seq, head.id, Engine.tx_id tx)

let cluster_prepared_live t ~seq =
  match t.nodes.(head_id t).cluster_tx with
  | Some (s, _) -> s = seq
  | None -> false

let cluster_commit ?(on_ack = fun _ -> ()) t ~seq op =
  let head = t.nodes.(head_id t) in
  if not head.up then failwith "Async_chain.cluster_commit: head is down";
  enter t head;
  let payload = envelope ~seq op in
  let committed_now =
    match head.cluster_tx with
    | Some (s, tx) when s = seq ->
        Engine.commit_prepared tx;
        head.cluster_tx <- None;
        Hashtbl.replace head.applied seq ();
        true
    | Some _ | None ->
        (* The prepared transaction is gone — the head rebooted (recovery
           already rolled it forward under the valid marker) or the chain
           promoted a new head that never saw it. Execute is exactly-once
           guarded, so this is an idempotent re-drive. *)
        let already = Engine.peek_int head.engine head.exec_seq_obj 0 in
        if seq > already then begin
          execute head ~seq op;
          true
        end
        else false
  in
  let keys = if committed_now then Engine.last_write_keys head.engine else [] in
  Hashtbl.replace t.pending seq (keys, on_ack);
  Locks.hold_writes (Engine.locks head.engine) keys;
  (match Membership.successor t.membership head.id with
  | Some _ -> record_inflight head ~seq payload
  | None -> ());
  t.cluster_hold <- false;
  forward_or_finish t head ~seq payload;
  flush_deferred t

let cluster_redrive t ~seq op =
  let head = t.nodes.(head_id t) in
  if head.up && not head.removed then begin
    enter t head;
    let payload = envelope ~seq op in
    execute head ~seq op;
    (match Membership.successor t.membership head.id with
    | Some _ -> record_inflight head ~seq payload
    | None -> ());
    forward_or_finish t head ~seq payload
  end

let run t = Sim.run t.sim

(* --- verification ----------------------------------------------------------- *)

let contents kv =
  let acc = ref [] in
  Kv.iter kv (fun k v -> acc := (k, v) :: !acc);
  List.rev !acc

let replicas_consistent t =
  match members t with
  | [] -> Ok ()
  | h :: rest ->
      let reference = contents t.nodes.(h).kv in
      let rec check = function
        | [] -> Ok ()
        | m :: ms ->
            if contents t.nodes.(m).kv <> reference then
              Error (Printf.sprintf "replica %d diverges from the head" m)
            else check ms
      in
      check rest
