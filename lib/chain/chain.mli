(** Chain replication of the key-value store (§5).

    Two modes over the same machinery:

    - {b Traditional}: [f+1] replicas, each running the undo-logging engine
      — every replica copies data in the critical path of every write, and
      each write traverses client -> head -> ... -> tail -> client.
    - {b Kamino-Tx-Chain}: [f+2] replicas. The head runs a Kamino engine
      (full or dynamic backup) and is collocated with the client; all other
      replicas run [Intent_only] engines (in-place updates, no local copies
      at all). The tail acknowledges to the head, which releases a write's
      locks only once both the tail ack and the local backup propagation
      have happened. Aborts are decided at the head and never enter the
      chain.

    The simulated network charges [hop_ns] per message. Each node executes
    operations serially on its own virtual clock, so pipelining and
    queueing fall out of the clock arithmetic; reads are served by the
    tail, as in chain replication.

    Failure handling follows §5.2-5.3: fail-stop removal with chain repair
    (including head promotion, which builds a backup at the new head), and
    quick-reboot recovery where a replica rolls its incomplete transactions
    forward from its predecessor or back from its successor. *)

type mode =
  | Traditional
  | Kamino_chain of { alpha : float option }
      (** [None]: full backup at the head; [Some a]: dynamic backup. *)

type t

val create :
  ?engine_config:Kamino_core.Engine.config ->
  ?hop_ns:int ->
  ?rpc_ns:int ->
  mode:mode ->
  f:int ->
  value_size:int ->
  node_size:int ->
  seed:int ->
  unit ->
  t

val mode : t -> mode

(** Number of live replicas. *)
val length : t -> int

(** Cluster-wide NVM bytes across all replicas. *)
val storage_bytes : t -> int

(** {1 Client operations}

    Each call takes the client's current virtual time and returns the
    completion time the client observes. Writes run through the whole
    chain; reads are served by the tail. *)

val put : t -> at:int -> int -> string -> int

val delete : t -> at:int -> int -> bool * int

val get : t -> at:int -> int -> string option * int

(** [rmw t ~at key f] — deterministic read-modify-write, applied
    identically at every replica. *)
val rmw : t -> at:int -> int -> (string -> string) -> bool * int

(** [put_aborted t ~at key value] exercises the abort path: the head
    executes and aborts the transaction locally; nothing is forwarded.
    Returns the completion time. *)
val put_aborted : t -> at:int -> int -> string -> int

(** {1 Partial propagation (test hooks)}

    Model in-flight writes: [put_partial] applies a write to replicas
    [0..upto] only and records it as in flight; [drain_inflight] finishes
    the propagation (what the in-flight/cleanup queues do after a repair). *)

val put_partial : t -> at:int -> upto:int -> int -> string -> unit

val drain_inflight : t -> unit

(** {1 Failure injection} *)

(** [fail_stop t i] removes replica [i] (0 = head) and repairs the chain.
    Promotes the next node when the head dies. Raises [Failure] if fewer
    than two replicas would remain. *)
val fail_stop : t -> int -> unit

(** [quick_reboot t i] crashes replica [i]'s NVM mid-state and runs the
    §5.3 recovery: the replica rejoins through the membership manager,
    then the head rolls back from its local backup while a non-head
    replica rolls forward from its predecessor. *)
val quick_reboot : t -> int -> unit

(** [add_replica t] joins a fresh replica as the tail, with state transfer
    from its predecessor (§5.2 chain repair). *)
val add_replica : t -> unit

(** [cluster_restart t] — the §5.3 data-integrity protocol: every replica
    loses power simultaneously; recovery proceeds down the chain, the head
    from its local backup and each other replica from its repaired
    predecessor. *)
val cluster_restart : t -> unit

(** The membership manager (for tests and monitoring). *)
val membership : t -> Membership.t

(** {1 Inspection (tests)} *)

(** Key-value view of one replica. *)
val kv_at : t -> int -> Kamino_kv.Kv.t

(** Check that all replicas hold identical key-value contents. *)
val replicas_consistent : t -> (unit, string) result

(** Per-node virtual clocks, head first (for throughput accounting). *)
val node_clocks : t -> Kamino_sim.Clock.t list
