type view = { id : int; members : int list }

type t = {
  mutable view : view;
  failure_timeout_ns : int;
  heartbeats : (int, int) Hashtbl.t;  (* node -> last heartbeat time *)
}

let create ~members ~failure_timeout_ns =
  if members = [] then invalid_arg "Membership.create: empty chain";
  {
    view = { id = 1; members };
    failure_timeout_ns;
    heartbeats = Hashtbl.create 8;
  }

let current t = t.view

let validate t ~view_id = if view_id = t.view.id then `Current else `Stale t.view

let install t members =
  t.view <- { id = t.view.id + 1; members };
  t.view

let remove t node =
  if not (List.mem node t.view.members) then
    invalid_arg (Printf.sprintf "Membership.remove: node %d is not a member" node);
  Hashtbl.remove t.heartbeats node;
  install t (List.filter (fun m -> m <> node) t.view.members)

let add_tail t node =
  if List.mem node t.view.members then
    invalid_arg (Printf.sprintf "Membership.add_tail: node %d is already a member" node);
  install t (t.view.members @ [ node ])

(* Neighbour lookup by position in the member list. *)
let neighbours node members =
  let arr = Array.of_list members in
  let n = Array.length arr in
  let rec find i = if i >= n then None else if arr.(i) = node then Some i else find (i + 1) in
  match find 0 with
  | None -> None
  | Some i ->
      Some
        ( (if i > 0 then Some arr.(i - 1) else None),
          if i < n - 1 then Some arr.(i + 1) else None )

let rejoin t ~node ~believed_view =
  ignore believed_view;
  (* Whether or not the believed view is stale, the answer is the current
     view; what matters is whether the node survived the detector. *)
  match neighbours node t.view.members with
  | None -> `Removed t.view
  | Some (pred, succ) -> `Member (t.view, pred, succ)

let is_head t node = match t.view.members with h :: _ -> h = node | [] -> false

let predecessor t node =
  match neighbours node t.view.members with Some (p, _) -> p | None -> None

let successor t node =
  match neighbours node t.view.members with Some (_, s) -> s | None -> None

let record_heartbeat t ~node ~now = Hashtbl.replace t.heartbeats node now

let suspects t ~now =
  List.filter
    (fun node ->
      match Hashtbl.find_opt t.heartbeats node with
      | Some last -> now - last > t.failure_timeout_ns
      | None -> false (* never heard from: not yet monitored *))
    t.view.members
