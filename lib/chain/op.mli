(** The replicated command language.

    Chain replicas receive operations "in the form of a remote procedure
    call with a named function and the arguments to the function" (§5.1) —
    i.e. commands must be serializable and deterministic, so every replica
    computes the same state. [Append] stands in for deterministic
    read-modify-writes.

    The wire format is a length-prefixed byte string with a tag byte, used
    by the persistent operation queues. *)

type t =
  | Put of int * string
  | Delete of int
  | Append of int * string  (** append to the existing value, if any *)
  | Batch of t list
      (** sub-commands applied atomically in order, inside one transaction —
          the per-shard unit of a cross-chain multi-put *)

(** [apply op kv] executes the command (one transaction). *)
val apply : t -> Kamino_kv.Kv.t -> unit

(** [apply_tx tx op kv] executes the command inside a caller-owned
    transaction, so a replica can atomically pair it with its own
    bookkeeping (exactly-once execution across reboots). *)
val apply_tx : Kamino_core.Engine.tx -> t -> Kamino_kv.Kv.t -> unit

(** [encode op] — wire bytes (tag, key, payload). *)
val encode : t -> string

(** Raised by {!decode} on malformed wire bytes — a dedicated exception so
    callers (and tests) don't conflate wire corruption with the generic
    [Failure] any library function may raise. *)
exception Decode_error of string

(** [decode s] — inverse of [encode]. Raises {!Decode_error} on garbage. *)
val decode : string -> t

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
