module Kv = Kamino_kv.Kv

type t =
  | Put of int * string
  | Delete of int
  | Append of int * string
  | Batch of t list

let rec apply_tx tx op kv =
  match op with
  | Put (k, v) -> Kv.put_tx tx kv k v
  | Delete k -> ignore (Kv.delete_tx tx kv k)
  | Append (k, suffix) -> Kv.rmw_tx tx kv k (fun v -> v ^ suffix)
  | Batch ops -> List.iter (fun sub -> apply_tx tx sub kv) ops

let apply op kv =
  Kamino_core.Engine.with_tx (Kv.engine kv) (fun tx -> apply_tx tx op kv)

let rec encode op =
  let buf = Buffer.create 32 in
  let add_int n =
    let b = Bytes.create 8 in
    Bytes.set_int64_le b 0 (Int64.of_int n);
    Buffer.add_bytes buf b
  in
  (match op with
  | Put (k, v) ->
      Buffer.add_char buf 'P';
      add_int k;
      add_int (String.length v);
      Buffer.add_string buf v
  | Delete k ->
      Buffer.add_char buf 'D';
      add_int k
  | Append (k, v) ->
      Buffer.add_char buf 'A';
      add_int k;
      add_int (String.length v);
      Buffer.add_string buf v
  | Batch ops ->
      Buffer.add_char buf 'B';
      add_int (List.length ops);
      List.iter
        (fun sub ->
          let s = encode sub in
          add_int (String.length s);
          Buffer.add_string buf s)
        ops);
  Buffer.contents buf

exception Decode_error of string

let fail () = raise (Decode_error "Op.decode: malformed command")

let rec decode s =
  let len = String.length s in
  if len < 9 then fail ();
  let int_at off = Int64.to_int (String.get_int64_le s off) in
  let key = int_at 1 in
  let with_payload mk =
    if len < 17 then fail ();
    let n = int_at 9 in
    if n < 0 || 17 + n <> len then fail ();
    mk key (String.sub s 17 n)
  in
  match s.[0] with
  | 'P' -> with_payload (fun k v -> Put (k, v))
  | 'A' -> with_payload (fun k v -> Append (k, v))
  | 'D' -> if len <> 9 then fail () else Delete key
  | 'B' ->
      let count = key in
      if count < 0 then fail ();
      let rec subs off n acc =
        if n = 0 then if off <> len then fail () else List.rev acc
        else begin
          if off + 8 > len then fail ();
          let sl = int_at off in
          if sl < 0 || off + 8 + sl > len then fail ();
          subs (off + 8 + sl) (n - 1) (decode (String.sub s (off + 8) sl) :: acc)
        end
      in
      Batch (subs 9 count [])
  | _ -> fail ()

let equal a b = a = b

let rec pp fmt = function
  | Put (k, v) -> Format.fprintf fmt "Put(%d, %d bytes)" k (String.length v)
  | Delete k -> Format.fprintf fmt "Delete(%d)" k
  | Append (k, v) -> Format.fprintf fmt "Append(%d, %d bytes)" k (String.length v)
  | Batch ops ->
      Format.fprintf fmt "Batch[%a]"
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f "; ") pp)
        ops
