module Kv = Kamino_kv.Kv

type t = Put of int * string | Delete of int | Append of int * string

let apply_tx tx op kv =
  match op with
  | Put (k, v) -> Kv.put_tx tx kv k v
  | Delete k -> ignore (Kv.delete_tx tx kv k)
  | Append (k, suffix) -> Kv.rmw_tx tx kv k (fun v -> v ^ suffix)

let apply op kv =
  Kamino_core.Engine.with_tx (Kv.engine kv) (fun tx -> apply_tx tx op kv)

let encode op =
  let buf = Buffer.create 32 in
  let add_int n =
    let b = Bytes.create 8 in
    Bytes.set_int64_le b 0 (Int64.of_int n);
    Buffer.add_bytes buf b
  in
  (match op with
  | Put (k, v) ->
      Buffer.add_char buf 'P';
      add_int k;
      add_int (String.length v);
      Buffer.add_string buf v
  | Delete k ->
      Buffer.add_char buf 'D';
      add_int k
  | Append (k, v) ->
      Buffer.add_char buf 'A';
      add_int k;
      add_int (String.length v);
      Buffer.add_string buf v);
  Buffer.contents buf

exception Decode_error of string

let decode s =
  let fail () = raise (Decode_error "Op.decode: malformed command") in
  let len = String.length s in
  if len < 9 then fail ();
  let int_at off = Int64.to_int (String.get_int64_le s off) in
  let key = int_at 1 in
  let with_payload mk =
    if len < 17 then fail ();
    let n = int_at 9 in
    if n < 0 || 17 + n <> len then fail ();
    mk key (String.sub s 17 n)
  in
  match s.[0] with
  | 'P' -> with_payload (fun k v -> Put (k, v))
  | 'A' -> with_payload (fun k v -> Append (k, v))
  | 'D' -> if len <> 9 then fail () else Delete key
  | _ -> fail ()

let equal a b = a = b

let pp fmt = function
  | Put (k, v) -> Format.fprintf fmt "Put(%d, %d bytes)" k (String.length v)
  | Delete k -> Format.fprintf fmt "Delete(%d)" k
  | Append (k, v) -> Format.fprintf fmt "Append(%d, %d bytes)" k (String.length v)
