module Region = Kamino_nvm.Region

type t = {
  region : Region.t;
  slot_bytes : int;
  n_slots : int;
  slots_start : int;
  (* head/tail mirrored volatilely; the persistent words are authoritative
     at open. *)
  mutable head : int;
  mutable tail : int;
}

let magic_value = 0x4B544F505155455FL (* "KTOPQUE_" *)

let magic_off = 0
let config_off = 8
let head_off = 16
let tail_off = 24
let header_size = 64

(* Slot: seq, payload length, checksum, payload. *)
let s_seq = 0
let s_len = 8
let s_check = 16
let slot_header = 24

let required_size ~slot_bytes ~n_slots = header_size + (n_slots * (slot_header + slot_bytes))

let slot_stride t = slot_header + t.slot_bytes

let slot_off t seq = t.slots_start + (seq mod t.n_slots * slot_stride t)

let check_of ~seq ~payload =
  let acc = ref (Int64.of_int (seq lxor 0x5EED)) in
  String.iter
    (fun c -> acc := Int64.add (Int64.mul !acc 1099511628211L) (Int64.of_int (Char.code c + 1)))
    payload;
  Int64.add !acc 0x5A17EDL

let config_of ~slot_bytes ~n_slots = Int64.of_int ((slot_bytes * 31) + (n_slots * 7) + 5)

let format region ~slot_bytes ~n_slots =
  if Region.size region < required_size ~slot_bytes ~n_slots then
    invalid_arg "Opqueue.format: region too small";
  Region.write_int64 region magic_off magic_value;
  Region.write_int64 region config_off (config_of ~slot_bytes ~n_slots);
  Region.write_int region head_off 0;
  Region.write_int region tail_off 0;
  (* Config words are recovered from the checksum at open. *)
  Region.write_int region 32 slot_bytes;
  Region.write_int region 40 n_slots;
  Region.persist region 0 header_size;
  { region; slot_bytes; n_slots; slots_start = header_size; head = 0; tail = 0 }

let read_entry t seq =
  let off = slot_off t seq in
  let stored_seq = Region.read_int t.region (off + s_seq) in
  if stored_seq <> seq then None
  else begin
    let len = Region.read_int t.region (off + s_len) in
    if len < 0 || len > t.slot_bytes then None
    else begin
      let payload = Region.read_string t.region (off + slot_header) len in
      if Region.read_int64 t.region (off + s_check) <> check_of ~seq ~payload then None
      else Some payload
    end
  end

let open_existing region =
  if Region.read_int64 region magic_off <> magic_value then
    failwith "Opqueue.open_existing: bad magic";
  let slot_bytes = Region.read_int region 32 in
  let n_slots = Region.read_int region 40 in
  if Region.read_int64 region config_off <> config_of ~slot_bytes ~n_slots then
    failwith "Opqueue.open_existing: corrupt configuration";
  let t =
    {
      region;
      slot_bytes;
      n_slots;
      slots_start = header_size;
      head = Region.read_int region head_off;
      tail = Region.read_int region tail_off;
    }
  in
  (* The persistent tail never points past a torn entry (entries persist
     before the tail), but be defensive: validate the window. *)
  let rec trim seq = if seq < t.tail && read_entry t seq <> None then trim (seq + 1) else seq in
  t.tail <- trim t.head;
  t

let length t = t.tail - t.head

let is_empty t = length t = 0

let is_full t = length t >= t.n_slots

let head_seq t = t.head

let tail_seq t = t.tail

let enqueue t payload =
  if is_full t then failwith "Opqueue.enqueue: queue full";
  if String.length payload > t.slot_bytes then failwith "Opqueue.enqueue: payload too large";
  let seq = t.tail in
  let off = slot_off t seq in
  Region.write_int t.region (off + s_seq) seq;
  Region.write_int t.region (off + s_len) (String.length payload);
  Region.write_int64 t.region (off + s_check) (check_of ~seq ~payload);
  Region.write_string t.region (off + slot_header) payload;
  Region.persist t.region off (slot_header + String.length payload);
  (* Publish: single-word tail update. *)
  t.tail <- seq + 1;
  Region.write_int t.region tail_off t.tail;
  Region.persist t.region tail_off 8;
  seq

let peek t =
  if is_empty t then None
  else
    match read_entry t t.head with
    | Some payload -> Some (t.head, payload)
    | None -> failwith "Opqueue.peek: corrupt published entry"

let advance_head t seq =
  t.head <- seq;
  Region.write_int t.region head_off t.head;
  Region.persist t.region head_off 8

let dequeue t =
  match peek t with
  | None -> None
  | Some (seq, payload) ->
      advance_head t (seq + 1);
      Some (seq, payload)

let drop_through t seq =
  if seq >= t.head then advance_head t (min (seq + 1) t.tail)

let iter t f =
  for seq = t.head to t.tail - 1 do
    match read_entry t seq with
    | Some payload -> f ~seq ~payload
    | None -> failwith "Opqueue.iter: corrupt published entry"
  done
