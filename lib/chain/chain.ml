module Clock = Kamino_sim.Clock
module Region = Kamino_nvm.Region
module Engine = Kamino_core.Engine
module Locks = Kamino_core.Locks
module Backup = Kamino_core.Backup
module Kv = Kamino_kv.Kv

type mode = Traditional | Kamino_chain of { alpha : float option }

type node = { node_id : int; mutable engine : Engine.t; mutable kv : Kv.t; clock : Clock.t }

type op = { apply : Kv.t -> unit; mutable next_node : int }

type t = {
  mode : mode;
  hop_ns : int;
  rpc_ns : int;  (* per-node request processing (deserialize, dispatch) *)
  mutable nodes : node list;  (* head first *)
  mutable inflight : op list;  (* partially propagated writes, oldest first *)
  membership : Membership.t;
  engine_config : Engine.config;
  value_size : int;
  node_size : int;
  seed : int;
  mutable next_node_id : int;
}

let mode t = t.mode

let membership t = t.membership

let length t = List.length t.nodes

let storage_bytes t =
  List.fold_left (fun acc n -> acc + Engine.storage_bytes n.engine) 0 t.nodes

let node_clocks t = List.map (fun n -> n.clock) t.nodes

let kv_at t i = (List.nth t.nodes i).kv

let head t = List.hd t.nodes

let tail t = List.nth t.nodes (length t - 1)

let create ?(engine_config = Engine.default_config) ?(hop_ns = 5000) ?(rpc_ns = 2000)
    ~mode ~f ~value_size ~node_size ~seed () =
  if f < 1 then invalid_arg "Chain.create: f must be at least 1";
  let n_nodes = match mode with Traditional -> f + 1 | Kamino_chain _ -> f + 2 in
  let node_kind i =
    match mode with
    | Traditional -> Engine.Undo_logging
    | Kamino_chain { alpha } ->
        if i > 0 then Engine.Intent_only
        else begin
          match alpha with
          | None -> Engine.Kamino_simple
          | Some alpha -> Engine.Kamino_dynamic { alpha; policy = Backup.Lru_policy }
        end
  in
  let nodes =
    List.init n_nodes (fun i ->
        let engine =
          Engine.create ~config:engine_config ~kind:(node_kind i) ~seed:(seed + i) ()
        in
        let clock = Clock.create () in
        Engine.set_clock engine clock;
        let kv = Kv.create engine ~value_size ~node_size in
        { node_id = i; engine; kv; clock })
  in
  let membership =
    Membership.create
      ~members:(List.map (fun n -> n.node_id) nodes)
      ~failure_timeout_ns:10_000_000
  in
  {
    mode;
    hop_ns;
    rpc_ns;
    nodes;
    inflight = [];
    membership;
    engine_config;
    value_size;
    node_size;
    seed;
    next_node_id = n_nodes;
  }

(* Execute [f] on one node, no earlier than [arrive] on its timeline;
   returns the node-local completion time. Every request pays the node's
   RPC processing cost before the transaction itself.

   The operation runs on a forked per-operation clock: a transaction that
   blocks on a lock (a dependent transaction waiting for the tail ack)
   delays only itself — the node keeps serving other requests — so the
   node's serial-service clock advances by the op's service time excluding
   lock waits. *)
let exec_on t node ~arrive f =
  let start = max (Clock.now node.clock) arrive in
  let op_clock = Clock.create_at start in
  Clock.advance op_clock t.rpc_ns;
  Engine.set_clock node.engine op_clock;
  let waits_before = Locks.waits (Engine.locks node.engine) in
  f node.kv;
  let waited = Locks.waits (Engine.locks node.engine) - waits_before in
  let finish = Clock.now op_clock in
  ignore (Clock.advance_to node.clock (finish - waited));
  finish

(* Propagate a write down the chain starting at node index [from], first
   arriving at time [arrive]. Returns the tail's completion time. *)
let propagate t op ~from ~arrive =
  let nodes = Array.of_list t.nodes in
  let arrive = ref arrive in
  for i = from to Array.length nodes - 1 do
    let finished = exec_on t nodes.(i) ~arrive:!arrive op.apply in
    op.next_node <- i + 1;
    arrive := finished + t.hop_ns
  done;
  !arrive - t.hop_ns

(* A full client write: head admission (and, for Kamino, extended lock
   hold until the tail ack returns). *)
let submit_write t ~at apply =
  let op = { apply; next_node = 0 } in
  match t.mode with
  | Traditional ->
      (* client -> head is one hop; tail -> client one more. *)
      let tail_done = propagate t op ~from:0 ~arrive:(at + t.hop_ns) in
      tail_done + t.hop_ns
  | Kamino_chain _ ->
      (* The client lives on the head: local submission, local up-call on
         the tail's acknowledgment. *)
      let h = head t in
      let head_done = exec_on t h ~arrive:at apply in
      let keys = Engine.last_write_keys h.engine in
      let tail_done =
        if length t > 1 then propagate t op ~from:1 ~arrive:(head_done + t.hop_ns)
        else head_done
      in
      let ack = if length t > 1 then tail_done + t.hop_ns else head_done in
      (* Locks release at max(backup propagation, tail ack): release_writes
         takes the max with the commit-time release already recorded. *)
      Locks.release_writes (Engine.locks h.engine) keys ~at:ack;
      ack

let put t ~at key value = submit_write t ~at (fun kv -> Kv.put kv key value)

let delete t ~at key =
  let present = ref false in
  let finish = submit_write t ~at (fun kv -> present := Kv.delete kv key || !present) in
  (!present, finish)

let rmw t ~at key f =
  let applied = ref false in
  let finish =
    submit_write t ~at (fun kv -> applied := Kv.read_modify_write kv key f || !applied)
  in
  (!applied, finish)

let get t ~at key =
  (* Reads are served by the tail; one hop out, one hop back. *)
  let tl = tail t in
  let result = ref None in
  let finished = exec_on t tl ~arrive:(at + t.hop_ns) (fun kv -> result := Kv.get kv key) in
  (!result, finished + t.hop_ns)

let put_aborted t ~at key value =
  (* The head executes and aborts; the chain never sees the transaction.
     Undo-logging heads roll back from the undo log, Kamino heads from the
     local backup. *)
  let h = head t in
  exec_on t h ~arrive:at (fun kv -> Kv.put_aborted kv key value)

(* --- Partial propagation (test hooks) ----------------------------------- *)

let put_partial t ~at ~upto key value =
  let op = { apply = (fun kv -> Kv.put kv key value); next_node = 0 } in
  let nodes = Array.of_list t.nodes in
  let upto = min upto (Array.length nodes - 1) in
  let arrive = ref at in
  for i = 0 to upto do
    let finished = exec_on t nodes.(i) ~arrive:!arrive op.apply in
    op.next_node <- i + 1;
    arrive := finished + t.hop_ns
  done;
  t.inflight <- t.inflight @ [ op ]

let drain_inflight t =
  List.iter
    (fun op ->
      if op.next_node < length t then
        ignore (propagate t op ~from:op.next_node ~arrive:(Clock.now (head t).clock)))
    t.inflight;
  t.inflight <- []

(* --- Failure handling ---------------------------------------------------- *)

let min_nodes t = match t.mode with Traditional -> 1 | Kamino_chain _ -> 2

let fail_stop t i =
  if length t - 1 < min_nodes t then
    failwith "Chain.fail_stop: too few replicas would remain";
  if i < 0 || i >= length t then invalid_arg "Chain.fail_stop: no such replica";
  let removed_head = i = 0 in
  let dead = List.nth t.nodes i in
  (* The membership manager installs a new view; replicas reject messages
     from the old one. *)
  ignore (Membership.remove t.membership dead.node_id);
  t.nodes <- List.filteri (fun j _ -> j <> i) t.nodes;
  (match (t.mode, removed_head) with
  | Kamino_chain _, true ->
      (* §5.2: the surviving first replica becomes head — it builds a local
         backup from its heap and recovers the lock set (empty here: the
         synchronous submit model has no in-flight transactions at this
         point beyond [inflight], which the new head re-forwards). *)
      let h = head t in
      Engine.set_clock h.engine h.clock;
      Engine.promote_to_kamino h.engine
  | _ -> ());
  (* Tail failure: the new tail acknowledges in-flight operations — here,
     re-forwarding anything the dead node had not passed on. *)
  drain_inflight t

let node_by_id t id = List.find (fun n -> n.node_id = id) t.nodes

let quick_reboot t i =
  if i < 0 || i >= length t then invalid_arg "Chain.quick_reboot: no such replica";
  let node = List.nth t.nodes i in
  Engine.set_clock node.engine node.clock;
  Engine.crash node.engine;
  (* §5.3: the rebooted replica contacts the membership manager with the
     view id it believes is current and learns its neighbours (or that it
     was declared failed while dark). *)
  (match
     Membership.rejoin t.membership ~node:node.node_id
       ~believed_view:(Membership.current t.membership).Membership.id
   with
  | `Removed _ ->
      failwith "Chain.quick_reboot: replica was declared failed while dark"
  | `Member (_view, pred, _succ) -> (
      match t.mode with
      | Traditional ->
          (* Undo-logging replicas recover locally. *)
          Engine.recover node.engine
      | Kamino_chain _ -> (
          match pred with
          | None ->
              (* Still the head: roll back from the local backup. *)
              Engine.recover node.engine
          | Some pred_id ->
              (* Non-head: reopen, then roll incomplete transactions
                 forward from the predecessor. *)
              Engine.recover node.engine;
              Engine.resolve_from_peer node.engine
                ~peer:(Engine.main_region (node_by_id t pred_id).engine))));
  node.kv <- Kv.reattach node.engine;
  (* Anything the rebooted replica had not yet forwarded is re-sent. *)
  drain_inflight t

(* §5.3's data-integrity protocol: the whole chain loses power and every
   replica reboots. Recovery runs down the chain: the head repairs itself
   from its local backup, then each replica rolls its incomplete
   transactions forward from its (already repaired) predecessor. Needs at
   least two replicas of the last known view, which f >= 1 guarantees. *)
let cluster_restart t =
  List.iter
    (fun n ->
      Engine.set_clock n.engine n.clock;
      Engine.crash n.engine)
    t.nodes;
  let rec repair prev = function
    | [] -> ()
    | n :: rest ->
        Engine.set_clock n.engine n.clock;
        (match (t.mode, prev) with
        | Traditional, _ | Kamino_chain _, None -> Engine.recover n.engine
        | Kamino_chain _, Some p ->
            Engine.recover n.engine;
            Engine.resolve_from_peer n.engine ~peer:(Engine.main_region p.engine));
        n.kv <- Kv.reattach n.engine;
        repair (Some n) rest
  in
  repair None t.nodes;
  drain_inflight t

(* A fresh replica joins as the tail with state transfer from its
   predecessor (§5.2). *)
let add_replica t =
  let kind =
    match t.mode with Traditional -> Engine.Undo_logging | Kamino_chain _ -> Engine.Intent_only
  in
  let id = t.next_node_id in
  t.next_node_id <- id + 1;
  let engine = Engine.create ~config:t.engine_config ~kind ~seed:(t.seed + id) () in
  let clock = Clock.create () in
  Engine.set_clock engine clock;
  (* State transfer: copy the predecessor's whole heap image, persist it,
     and reopen on top of it. *)
  let pred = tail t in
  ignore (Clock.advance_to clock (Clock.now pred.clock));
  Region.copy_between ~src:(Engine.main_region pred.engine) ~src_off:0
    ~dst:(Engine.main_region engine) ~dst_off:0
    ~len:(Region.size (Engine.main_region engine));
  Region.persist_all (Engine.main_region engine);
  Engine.recover engine;
  let kv = Kv.reattach engine in
  let node = { node_id = id; engine; kv; clock } in
  t.nodes <- t.nodes @ [ node ];
  ignore (Membership.add_tail t.membership id);
  drain_inflight t

(* --- Verification -------------------------------------------------------- *)

let contents kv =
  let acc = ref [] in
  Kv.iter kv (fun k v -> acc := (k, v) :: !acc);
  List.rev !acc

let replicas_consistent t =
  match t.nodes with
  | [] -> Error "no replicas"
  | first :: rest ->
      let reference = contents first.kv in
      let rec check i = function
        | [] -> Ok ()
        | n :: rest ->
            if contents n.kv <> reference then
              Error (Printf.sprintf "replica %d diverges from the head" i)
            else check (i + 1) rest
      in
      check 1 rest
