(** Membership / view manager — the paper's Zookeeper stand-in (§5.3).

    Tracks the chain's composition as a sequence of numbered {e views}.
    Every membership change (fail-stop removal, a new tail joining)
    produces a new view with a strictly larger id. Replicas stamp their
    messages with the view id they believe is current; [validate] is the
    check every receiver performs ("all messages carry a viewID and
    replicas reject messages with an older viewID").

    A quickly rebooting replica asks to [rejoin] with its believed view id:
    if the view moved on while it was dark, it learns the current view (and
    whether it is even still a member); if it is still current, it receives
    its predecessor and successor so it can run the incomplete-transaction
    repair of Figure 9 before serving again.

    A simple silence-based failure detector ([record_heartbeat] /
    [suspects]) models the detection timeout that separates a quick reboot
    from a fail-stop. *)

type view = { id : int; members : int list }  (** head first *)

type t

(** [create ~members ~failure_timeout_ns] starts at view 1. *)
val create : members:int list -> failure_timeout_ns:int -> t

val current : t -> view

(** [validate t ~view_id] — receivers reject stale-view messages. *)
val validate : t -> view_id:int -> [ `Current | `Stale of view ]

(** [remove t node] installs a new view without [node].
    Raises [Invalid_argument] if it is not a member. *)
val remove : t -> int -> view

(** [add_tail t node] installs a new view with [node] appended as tail. *)
val add_tail : t -> int -> view

(** [rejoin t ~node ~believed_view] — the §5.3 rejoin handshake. A member
    gets its current neighbours ([None] = chain end); a node that was
    declared failed while dark is told so. *)
val rejoin :
  t ->
  node:int ->
  believed_view:int ->
  [ `Member of view * int option * int option  (** view, predecessor, successor *)
  | `Removed of view ]

(** Position helpers on the current view. *)

val is_head : t -> int -> bool

val predecessor : t -> int -> int option

val successor : t -> int -> int option

(** {1 Failure detection} *)

(** [record_heartbeat t ~node ~now] — replicas heartbeat the manager. *)
val record_heartbeat : t -> node:int -> now:int -> unit

(** [suspects t ~now] lists members whose last heartbeat is older than the
    failure timeout — candidates for fail-stop removal. *)
val suspects : t -> now:int -> int list
