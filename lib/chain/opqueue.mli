(** Persistent operation queue.

    §5.1: "The replicas buffer such calls in an input queue in non-volatile
    memory before the receipt is acknowledged upstream. ... It then
    forwards the transaction downstream and moves the transaction from its
    input queue to a buffered queue of in-flight transactions." Both queues
    are instances of this module: a slotted persistent ring of encoded
    commands with globally ordered sequence numbers.

    Crash discipline: an entry (payload + its sequence tag and checksum) is
    persisted before the tail pointer publishes it; head/tail pointers are
    single 8-byte words, so every crash leaves a well-formed window of
    entries, which [open_existing] revalidates entry by entry. *)

type t

(** [required_size ~slot_bytes ~n_slots]. *)
val required_size : slot_bytes:int -> n_slots:int -> int

(** [format region ~slot_bytes ~n_slots] — [slot_bytes] bounds one encoded
    command. *)
val format : Kamino_nvm.Region.t -> slot_bytes:int -> n_slots:int -> t

(** Reopen after a crash; drops any torn (unpublished) tail entry. *)
val open_existing : Kamino_nvm.Region.t -> t

val length : t -> int

val is_empty : t -> bool

val is_full : t -> bool

(** Sequence number of the next entry to dequeue / the next to enqueue.
    Sequence numbers are global and never reused. *)
val head_seq : t -> int

val tail_seq : t -> int

(** [enqueue t payload] appends durably; returns the entry's sequence
    number. Raises [Failure] when full or when the payload exceeds the slot
    size. *)
val enqueue : t -> string -> int

(** [peek t] — oldest entry, as [(seq, payload)]. *)
val peek : t -> (int * string) option

(** [dequeue t] durably removes and returns the oldest entry. *)
val dequeue : t -> (int * string) option

(** [drop_through t seq] durably removes every entry with sequence [<= seq]
    — the §5.1 cleanup acknowledgments garbage-collecting the in-flight
    queue. *)
val drop_through : t -> int -> unit

(** [iter t f] visits queued entries oldest-first as [f ~seq ~payload]. *)
val iter : t -> (seq:int -> payload:string -> unit) -> unit
