(** Transactional key-value store: the system under test in the paper's
    evaluation (§7).

    A persistent B+Tree maps integer keys to value objects; every operation
    is one engine transaction, so the store is atomic and durable under
    every engine kind. Values are byte strings up to the store's
    [value_size] (the paper uses 1 KB values over 10 M keys).

    Reads take a read lock on the value object — under Kamino-Tx a read of
    a {e pending} object (one whose committed update has not yet reached
    the backup) blocks until the backup catches up, exactly per the paper's
    dependent-transaction rule. *)

type t

(** [create engine ~value_size ~node_size] formats a fresh store in the
    engine's heap and anchors it at the heap root. *)
val create : Kamino_core.Engine.t -> value_size:int -> node_size:int -> t

(** [reattach engine] re-binds to the store after [Engine.recover]. *)
val reattach : Kamino_core.Engine.t -> t

val engine : t -> Kamino_core.Engine.t

val value_size : t -> int

(** Number of keys present. *)
val size : t -> int

(** [put t key value] inserts or overwrites. Overwrites update the value
    object in place (one object write intent); inserts allocate a value
    object and update the index. Raises [Invalid_argument] if the value
    exceeds [value_size]. *)
val put : t -> int -> string -> unit

(** {1 Transaction-scoped variants}

    The plain operations open one transaction each. Replicated state
    machines need to combine a store mutation with their own bookkeeping
    (e.g. the last-executed sequence number) atomically; these variants run
    inside a caller-owned transaction. *)

val put_tx : Kamino_core.Engine.tx -> t -> int -> string -> unit

val delete_tx : Kamino_core.Engine.tx -> t -> int -> bool

(** [rmw_tx tx t key f] — applies [f] to the current value ([""] when the
    key is absent, inserting the result). *)
val rmw_tx : Kamino_core.Engine.tx -> t -> int -> (string -> string) -> unit

(** [get t key] reads the committed value. *)
val get : t -> int -> string option

(** [snapshot_get t key] is a read-only transaction served from the
    backup image at the applier's published watermark
    ({!Kamino_core.Engine.read_tx}): it sees the store's state at some
    committed prefix, takes no locks, never joins the dependent-wait
    class and never perturbs a writer. Falls back to the locked {!get}
    (behind the same API, counted as [snapshot.fallbacks]) when the
    engine cannot serve snapshots — no full backup, or the store's
    creating transaction has not propagated yet. [clock] charges the
    snapshot's loads to a dedicated reader clock. [None] can mean
    "absent at the watermark" even while a concurrent insert has already
    committed: that is the documented staleness. *)
val snapshot_get : ?clock:Kamino_sim.Clock.t -> t -> int -> string option

(** [delete t key] removes the binding and frees the value object;
    returns whether the key was present. *)
val delete : t -> int -> bool

(** [read_modify_write t key f] implements YCSB workload F's RMW op in one
    transaction; returns false if the key is absent. *)
val read_modify_write : t -> int -> (string -> string) -> bool

(** [exists t key] — index-only lookup, no locks. *)
val exists : t -> int -> bool

(** [iter t f] visits committed bindings in key order. *)
val iter : t -> (int -> string -> unit) -> unit

(** [range t ~lo ~hi] returns committed bindings with [lo <= key <= hi] in
    key order (a YCSB-style scan). *)
val range : t -> lo:int -> hi:int -> (int * string) list

(** [scan t ~lo ~count f] visits up to [count] committed bindings starting
    at the first key [>= lo], in ascending key order, and returns the
    number visited — the YCSB-E range query. Charged cost is
    O(tree depth + count), independent of the table size. *)
val scan : t -> lo:int -> count:int -> (int -> string -> unit) -> int

(** [load t ~count ~key ~value] bulk-loads [count] records: keys
    [key 0 .. key (count-1)] (which must be strictly increasing and exceed
    every key already present) with values [value i]. Runs as a sequence
    of transactions, each appending whole index leaves
    ({!Kamino_index.Btree.append_sorted}) — O(n) total index work, the
    only way a million-record table populates within budget. *)
val load : t -> count:int -> key:(int -> int) -> value:(int -> string) -> unit

(** Sync index-shape gauges ([btree.depth]) into the engine's metrics
    registry. Reads only the cost-free probe path: calling it never moves
    the simulated clock. *)
val sync_gauges : t -> unit

(** [put_aborted t key value] runs the put transaction and aborts it just
    before commit — the store is unchanged. Exercises the abort paths
    (local-only at a chain head). Raises [Failure] on engines that cannot
    abort. *)
val put_aborted : t -> int -> string -> unit

(** Persistent pointer of a key's value object, for white-box tests. *)
val value_ptr : t -> int -> Kamino_heap.Heap.ptr option

(** Structural validation of index + values, for tests. *)
val validate : t -> (unit, string) result
