module Heap = Kamino_heap.Heap
module Engine = Kamino_core.Engine
module Btree = Kamino_index.Btree

type t = { engine : Engine.t; tree : Btree.t; value_size : int }

(* Store-descriptor object anchored at the heap root. *)
let sd_tree = 0
let sd_value_size = 8
let sd_size = 16

(* Value object: length word followed by the bytes. *)
let v_len = 0
let v_data = 8

let create engine ~value_size ~node_size =
  if value_size <= 0 || value_size > Heap.max_object_size - v_data then
    invalid_arg "Kv.create: bad value_size";
  Engine.with_tx engine (fun tx ->
      let tree = Btree.create tx ~node_size in
      let sd = Engine.alloc tx sd_size in
      Engine.write_int tx sd sd_tree (Btree.descriptor tree);
      Engine.write_int tx sd sd_value_size value_size;
      Engine.set_root tx sd;
      { engine; tree; value_size })

let reattach engine =
  let sd = Engine.root engine in
  if sd = Heap.null then failwith "Kv.reattach: heap has no root (store never created?)";
  let tree = Btree.attach engine (Engine.peek_int engine sd sd_tree) in
  { engine; tree; value_size = Engine.peek_int engine sd sd_value_size }

let engine t = t.engine

let value_size t = t.value_size

let size t = Btree.cardinal t.tree

let check_value t value =
  if String.length value > t.value_size then
    invalid_arg
      (Printf.sprintf "Kv: value of %d bytes exceeds value_size %d" (String.length value)
         t.value_size)

let write_value tx vptr value =
  Engine.write_int tx vptr v_len (String.length value);
  Engine.write_string tx vptr v_data value

let put_tx tx t key value =
  check_value t value;
  match Btree.find_tx tx t.tree key with
  | Some vptr ->
      (* Update in place: the whole point of the comparison — undo logging
         snapshots the 1 KB object here, Kamino-Tx logs a 24-byte intent. *)
      Engine.add tx vptr;
      write_value tx vptr value
  | None ->
      let vptr = Engine.alloc tx (v_data + t.value_size) in
      write_value tx vptr value;
      ignore (Btree.insert tx t.tree key vptr)

let put t key value = Engine.with_tx t.engine (fun tx -> put_tx tx t key value)

(* Bulk load of a sorted key stream. Values are allocated and the index
   grown via {!Btree.append_sorted} — whole leaves stitched onto the
   rightmost spine — so loading n records is O(n) instead of the
   O(n log n) full descents that n [put]s cost. Each batch is one
   transaction sized to the intent-log budget: one intent per value
   object plus O(depth) for the touched index nodes. *)
let load t ~count ~key ~value =
  let mk = Btree.branching t.tree in
  let cfg = Engine.config t.engine in
  let chunk = max 1 (min mk (cfg.Engine.max_tx_entries - 48)) in
  let i = ref 0 in
  while !i < count do
    let n = min chunk (count - !i) in
    Engine.with_tx t.engine (fun tx ->
        let batch =
          Array.init n (fun j ->
              let idx = !i + j in
              let v = value idx in
              check_value t v;
              let vptr = Engine.alloc tx (v_data + t.value_size) in
              write_value tx vptr v;
              (key idx, vptr))
        in
        Btree.append_sorted tx t.tree batch);
    i := !i + n
  done

let get t key =
  Engine.with_tx t.engine (fun tx ->
      match Btree.find_tx tx t.tree key with
      | None -> None
      | Some vptr ->
          Engine.read_lock tx vptr;
          let len = Engine.read_int tx vptr v_len in
          Some (Engine.read_string tx vptr v_data len))

(* Read-only lookup served from the backup image at the applier's
   watermark: tree traversal and value bytes all come from the snapshot,
   so the result is the store's state at some committed prefix — no locks
   taken, writers never perturbed. Declines (falling back to the locked
   {!get}) when the engine has no servable backup or the store's creating
   transaction has not propagated yet (snapshot root still null — the
   backup image predates the store, and there is no tree to walk).
   A key absent from the snapshot's tree is a valid snapshot answer
   ([Some None]): the key did not exist at the watermark. *)
let snapshot_get ?clock t key =
  match
    Engine.read_tx ?clock t.engine (fun snap ->
        let sd = Engine.snapshot_root snap in
        if sd = Heap.null then None
        else if Engine.snapshot_read_int snap sd sd_tree <> Btree.descriptor t.tree
        then None
        else
          match Btree.find_snapshot snap t.tree key with
          | None -> Some None
          | Some vptr ->
              let len = Engine.snapshot_read_int snap vptr v_len in
              if len < 0 || len > t.value_size then None
              else Some (Some (Engine.snapshot_read_string snap vptr v_data len)))
  with
  | Some result -> result
  | None -> get t key

let delete_tx tx t key =
  match Btree.find_tx tx t.tree key with
  | None -> false
  | Some vptr ->
      ignore (Btree.delete tx t.tree key);
      Engine.free tx vptr;
      true

let delete t key = Engine.with_tx t.engine (fun tx -> delete_tx tx t key)

let read_modify_write t key f =
  Engine.with_tx t.engine (fun tx ->
      match Btree.find_tx tx t.tree key with
      | None -> false
      | Some vptr ->
          Engine.add tx vptr;
          let len = Engine.read_int tx vptr v_len in
          let value = f (Engine.read_string tx vptr v_data len) in
          check_value t value;
          write_value tx vptr value;
          true)

let rmw_tx tx t key f =
  match Btree.find_tx tx t.tree key with
  | Some vptr ->
      Engine.add tx vptr;
      let len = Engine.read_int tx vptr v_len in
      let value = f (Engine.read_string tx vptr v_data len) in
      check_value t value;
      write_value tx vptr value
  | None -> put_tx tx t key (f "")

let put_aborted t key value =
  check_value t value;
  let tx = Engine.begin_tx t.engine in
  (match Btree.find_tx tx t.tree key with
  | Some vptr ->
      Engine.add tx vptr;
      write_value tx vptr value
  | None ->
      let vptr = Engine.alloc tx (v_data + t.value_size) in
      write_value tx vptr value;
      ignore (Btree.insert tx t.tree key vptr));
  Engine.abort tx

let value_ptr t key = Btree.find t.tree key

let exists t key = Btree.find t.tree key <> None

let iter t f =
  Btree.iter t.tree (fun key vptr ->
      let len = Engine.peek_int t.engine vptr v_len in
      f key (Engine.peek_string t.engine vptr v_data len))

let range t ~lo ~hi =
  let acc = ref [] in
  Btree.range t.tree ~lo ~hi (fun key vptr ->
      let len = Engine.peek_int t.engine vptr v_len in
      acc := (key, Engine.peek_string t.engine vptr v_data len) :: !acc);
  List.rev !acc

(* Count-bounded committed-state scan (YCSB-E): [count] bindings from the
   first key >= [lo], charged O(tree depth + count) — the walk never
   depends on how many records lie past the window. *)
let scan t ~lo ~count f =
  Btree.scan t.tree ~lo ~count (fun key vptr ->
      let len = Engine.peek_int t.engine vptr v_len in
      f key (Engine.peek_string t.engine vptr v_data len))

(* Push the index-shape gauge into the engine's registry. [Btree.depth]
   reads through the cost-free probe path, so syncing gauges cannot
   perturb the simulated clock or the bit-identity oracles. *)
let sync_gauges t =
  let reg = Engine.registry t.engine in
  Kamino_obs.Metrics.set
    (Kamino_obs.Metrics.counter reg "btree.depth")
    (Btree.depth t.tree)

let validate t =
  match Btree.validate t.tree with
  | Error _ as e -> e
  | Ok () ->
      let heap = Engine.heap t.engine in
      let error = ref None in
      Btree.iter t.tree (fun key vptr ->
          if !error = None then begin
            if not (Heap.is_allocated heap vptr) then
              error := Some (Printf.sprintf "key %d points at unallocated value %d" key vptr)
            else begin
              let len = Engine.peek_int t.engine vptr v_len in
              if len < 0 || len > t.value_size then
                error := Some (Printf.sprintf "key %d has corrupt value length %d" key len)
            end
          end);
      (match !error with Some e -> Error e | None -> Ok ())
