(** Transactional persistent hash map.

    A second index structure alongside the B+Tree: integer keys to
    persistent pointers, with O(1) expected operations and no ordering.
    Useful for point-lookup-only stores and as the kind of structure the
    paper's related work builds over persistent heaps.

    Layout: a descriptor points at a directory object of segment pointers;
    each segment is one heap object holding a fixed run of bucket heads;
    collisions chain through entry objects ([key, value, next]). Every
    mutation is a handful of small object intents — insert touches the
    bucket head and a fresh entry, never a large array — so the structure
    is cheap under every engine kind and fully covered by the
    crash-injection tests.

    Capacity (bucket count) is fixed at creation; chains grow without
    bound, so the map never needs a stop-the-world rehash (load factors
    above 1 simply lengthen chains). *)

type t

(** [create tx ~buckets] — [buckets] is rounded up to a power of two
    (min 256). *)
val create : Kamino_core.Engine.tx -> buckets:int -> t

(** Persistent handle (e.g. to store as heap root). *)
val descriptor : t -> Kamino_heap.Heap.ptr

val attach : Kamino_core.Engine.t -> Kamino_heap.Heap.ptr -> t

val buckets : t -> int

val cardinal : t -> int

(** [find t key] — committed-state lookup. *)
val find : t -> int -> Kamino_heap.Heap.ptr option

(** [find_tx tx t key] — lookup inside a transaction. *)
val find_tx : Kamino_core.Engine.tx -> t -> int -> Kamino_heap.Heap.ptr option

(** [insert tx t key value] adds or replaces; returns the previous value. *)
val insert :
  Kamino_core.Engine.tx -> t -> int -> Kamino_heap.Heap.ptr -> Kamino_heap.Heap.ptr option

(** [remove tx t key] deletes the binding (freeing its entry object);
    returns the removed value. *)
val remove : Kamino_core.Engine.tx -> t -> int -> Kamino_heap.Heap.ptr option

(** [iter t f] visits all bindings (bucket order, unspecified). *)
val iter : t -> (int -> Kamino_heap.Heap.ptr -> unit) -> unit

(** Structural validation: chains are acyclic and bucket-consistent (every
    entry hashes to the bucket that holds it), cardinal matches. *)
val validate : t -> (unit, string) result

(** Longest collision chain — load diagnostics. *)
val max_chain : t -> int
