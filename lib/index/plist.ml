module Heap = Kamino_heap.Heap
module Engine = Kamino_core.Engine

type t = { engine : Engine.t; head_holder : Heap.ptr }

(* Node layout, mirroring the paper's struct:
   { int type; int key; double value; p_list_ptr next; p_list_ptr prev } *)
let f_type = 0
let f_key = 8
let f_value = 16
let f_next = 24
let f_prev = 32
let node_size = 40

let node_type_tag = 0x1157 (* "LIST" node marker *)

(* Head-holder object: head pointer and element count. *)
let h_head = 0
let h_count = 8
let holder_size = 16

let create tx =
  let holder = Engine.alloc tx holder_size in
  Engine.write_int tx holder h_head Heap.null;
  Engine.write_int tx holder h_count 0;
  { engine = Engine.tx_engine tx; head_holder = holder }

let handle t = t.head_holder

let attach engine head_holder = { engine; head_holder }

let head t = Engine.peek_int t.engine t.head_holder h_head

let length t = Engine.peek_int t.engine t.head_holder h_count

(* Find the first node with key >= [key] (committed state); returns
   [(prev, current)]. *)
let locate t key =
  let rec walk prev cur =
    if cur = Heap.null then (prev, Heap.null)
    else begin
      let k = Engine.peek_int t.engine cur f_key in
      if k >= key then (prev, cur) else walk cur (Engine.peek_int t.engine cur f_next)
    end
  in
  walk Heap.null (head t)

let bump_count tx t delta =
  Engine.add tx t.head_holder;
  Engine.write_int tx t.head_holder h_count
    (Engine.read_int tx t.head_holder h_count + delta)

let insert tx t ~key ~value =
  let prev, cur = locate t key in
  if cur <> Heap.null && Engine.peek_int t.engine cur f_key = key then false
  else begin
    (* Allocate the node, then relink — the transaction locks the new node
       (via alloc), current and prev, as in the paper's TxInsert. *)
    let node = Engine.alloc tx node_size in
    Engine.write_int tx node f_type node_type_tag;
    Engine.write_int tx node f_key key;
    Engine.write_int64 tx node f_value (Int64.bits_of_float value);
    Engine.write_int tx node f_next cur;
    Engine.write_int tx node f_prev prev;
    if cur <> Heap.null then begin
      Engine.add tx cur;
      Engine.write_int tx cur f_prev node
    end;
    if prev = Heap.null then begin
      Engine.add tx t.head_holder;
      Engine.write_int tx t.head_holder h_head node
    end
    else begin
      Engine.add tx prev;
      Engine.write_int tx prev f_next node
    end;
    bump_count tx t 1;
    true
  end

let delete tx t ~key =
  let prev, cur = locate t key in
  if cur = Heap.null || Engine.peek_int t.engine cur f_key <> key then false
  else begin
    Engine.add tx cur;
    let next = Engine.read_int tx cur f_next in
    if prev = Heap.null then begin
      Engine.add tx t.head_holder;
      Engine.write_int tx t.head_holder h_head next
    end
    else begin
      Engine.add tx prev;
      Engine.write_int tx prev f_next next
    end;
    if next <> Heap.null then begin
      Engine.add tx next;
      Engine.write_int tx next f_prev prev
    end;
    Engine.free tx cur;
    bump_count tx t (-1);
    true
  end

let update tx t ~key ~value =
  let _, cur = locate t key in
  if cur = Heap.null || Engine.peek_int t.engine cur f_key <> key then false
  else begin
    Engine.add tx cur;
    Engine.write_int64 tx cur f_value (Int64.bits_of_float value);
    true
  end

let lookup t ~key =
  let _, cur = locate t key in
  if cur = Heap.null || Engine.peek_int t.engine cur f_key <> key then None
  else Some (Int64.float_of_bits (Engine.peek_int64 t.engine cur f_value))

let to_list t =
  let rec walk cur acc =
    if cur = Heap.null then List.rev acc
    else
      walk
        (Engine.peek_int t.engine cur f_next)
        ((Engine.peek_int t.engine cur f_key,
          Int64.float_of_bits (Engine.peek_int64 t.engine cur f_value))
        :: acc)
  in
  walk (head t) []

let validate t =
  let e = t.engine in
  let heap = Engine.heap e in
  let error = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !error = None then error := Some s) fmt in
  let rec walk prev cur n =
    if !error <> None then n
    else if cur = Heap.null then n
    else if not (Heap.is_allocated heap cur) then begin
      fail "node %d is not allocated" cur;
      n
    end
    else begin
      if Engine.peek_int e cur f_type <> node_type_tag then fail "node %d has a bad tag" cur;
      if Engine.peek_int e cur f_prev <> prev then fail "node %d has a broken prev link" cur;
      (if prev <> Heap.null then
         let pk = Engine.peek_int e prev f_key and ck = Engine.peek_int e cur f_key in
         if pk >= ck then fail "keys out of order at node %d (%d >= %d)" cur pk ck);
      if n > 10_000_000 then begin
        fail "list too long (cycle?)";
        n
      end
      else walk cur (Engine.peek_int e cur f_next) (n + 1)
    end
  in
  let n = walk Heap.null (head t) 0 in
  if !error = None && n <> length t then
    fail "count field says %d but the chain has %d nodes" (length t) n;
  match !error with None -> Ok () | Some e -> Error e
