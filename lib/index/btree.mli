(** Persistent B+Tree over the transactional engine.

    The index behind the evaluation's key-value store (§7): keys are 63-bit
    integers, values are persistent pointers. Nodes are heap objects
    modified through engine transactions, so every structural change
    (insert, split, delete, merge) is atomic under every engine kind, and
    crash-recovery tests can slam the tree with torn writes.

    The caller owns the transaction: [insert]/[delete] take a [tx] and
    declare intents on exactly the nodes they modify, which is what makes
    the undo-logging baseline expensive (a split undo-logs whole 4 KB
    nodes) and Kamino-Tx cheap (it logs three 24-byte intents).

    A tree is named by the pointer of its {e descriptor object} (root
    pointer + key count), typically stored as the heap root. *)

type t

(** [create tx ~node_size] allocates an empty tree (descriptor + root leaf)
    and returns it. [node_size] bounds the node object size; the branching
    factor follows from it (e.g. 4096 -> 254 keys/node). *)
val create : Kamino_core.Engine.tx -> node_size:int -> t

(** [descriptor t] is the tree's persistent handle, e.g. to store as heap
    root. *)
val descriptor : t -> Kamino_heap.Heap.ptr

(** [attach engine ptr] re-attaches to an existing tree after reopen. *)
val attach : Kamino_core.Engine.t -> Kamino_heap.Heap.ptr -> t

(** [find t key] — committed-state lookup (no transaction, no locks). *)
val find : t -> int -> Kamino_heap.Heap.ptr option

(** [find_tx tx t key] — lookup inside a transaction (sees its writes). *)
val find_tx : Kamino_core.Engine.tx -> t -> int -> Kamino_heap.Heap.ptr option

(** [find_snapshot snap t key] — lookup entirely inside a backup snapshot
    ({!Kamino_core.Engine.read_tx}): root, nodes and the returned value
    pointer all come from the backup image, one prefix-consistent tree at
    the applier's watermark. Zero locks. The returned pointer addresses
    the {e snapshot} image — dereference it with [snapshot_read_*]. *)
val find_snapshot :
  Kamino_core.Engine.snapshot -> t -> int -> Kamino_heap.Heap.ptr option

(** [insert tx t key value] adds or replaces the mapping; returns the
    previous value if the key was present. *)
val insert : Kamino_core.Engine.tx -> t -> int -> Kamino_heap.Heap.ptr -> Kamino_heap.Heap.ptr option

(** [delete tx t key] removes the mapping; returns the removed value. *)
val delete : Kamino_core.Engine.tx -> t -> int -> Kamino_heap.Heap.ptr option

(** [append_sorted tx t entries] bulk-appends strictly increasing
    [(key, value)] pairs, all greater than the tree's current maximum key.
    Entries land as whole leaves stitched onto the rightmost spine — one
    separator insertion per leaf instead of one full descent per key — so
    sorted loading is O(n) in node writes. A tail too small to stand as a
    valid leaf is balanced into two near-halves (or falls back to point
    inserts), so the tree never holds an underfull non-root leaf.
    Raises [Invalid_argument] on unsorted input or keys below the current
    maximum. *)
val append_sorted :
  Kamino_core.Engine.tx -> t -> (int * Kamino_heap.Heap.ptr) array -> unit

(** Maximum keys per node (the branching factor implied by [node_size]).
    Loaders use it to size per-transaction batches. *)
val branching : t -> int

(** Number of keys in the tree (maintained in the descriptor). *)
val cardinal : t -> int

(** [iter t f] visits all bindings in ascending key order (committed
    state). *)
val iter : t -> (int -> Kamino_heap.Heap.ptr -> unit) -> unit

(** [range t ~lo ~hi f] visits bindings with [lo <= key <= hi]. *)
val range : t -> lo:int -> hi:int -> (int -> Kamino_heap.Heap.ptr -> unit) -> unit

(** [fold_range t ~lo ~hi ~init ~f] folds [f] over committed bindings with
    [lo <= key <= hi] in ascending key order — the in-order range-scan
    iterator behind [readdir] and YCSB-E style scans. The traversal
    descends once to the first leaf holding a key [>= lo], then walks the
    leaf chain and stops at the first key [> hi]. *)
val fold_range :
  t -> lo:int -> hi:int -> init:'a -> f:('a -> int -> Kamino_heap.Heap.ptr -> 'a) -> 'a

(** [fold_range_tx tx t ~lo ~hi ~init ~f] — the same scan inside a
    transaction (sees the transaction's own writes). *)
val fold_range_tx :
  Kamino_core.Engine.tx ->
  t ->
  lo:int ->
  hi:int ->
  init:'a ->
  f:('a -> int -> Kamino_heap.Heap.ptr -> 'a) ->
  'a

(** [iter_nodes t f] calls [f] on every heap object the tree owns — the
    descriptor, every internal node and every leaf (committed state).
    Exists for whole-heap accounting oracles (fsck-style checks that
    every allocated object is referenced by exactly one structure). *)
val iter_nodes : t -> (Kamino_heap.Heap.ptr -> unit) -> unit

(** [destroy_empty tx t] transactionally frees an {e empty} tree — the
    descriptor and its single root leaf. Raises [Invalid_argument] if the
    tree still holds keys (the caller owns emptying it first). The handle
    must not be used afterwards. *)
val destroy_empty : Kamino_core.Engine.tx -> t -> unit

(** [min_key t] / [max_key t] — extremes, [None] when empty. *)
val min_key : t -> int option

val max_key : t -> int option

(** [scan t ~lo ~count f] visits up to [count] committed bindings with
    key [>= lo] in ascending order (the YCSB-E range query) and returns
    the number visited. Charged cost is O(depth + count) — the walk stops
    at the count bound, never the end of the leaf chain. *)
val scan : t -> lo:int -> count:int -> (int -> Kamino_heap.Heap.ptr -> unit) -> int

(** Height of the tree (1 = root is a leaf). *)
val height : t -> int

(** [depth t] — the tree's height, read through the cost-free probe path:
    sampling it (e.g. from a metrics registry) charges nothing to the NVM
    cost model, so gauges cannot perturb bit-identity oracles. *)
val depth : t -> int

(** Cost-free structural summary: node counts, total keys, and leaf
    occupancy ([keys / (leaf_nodes * branching)]). The walk touches every
    node through the probe path — zero charged reads. *)
type stats = {
  depth : int;
  internal_nodes : int;
  leaf_nodes : int;
  keys : int;
  occupancy : float;
}

val stats : t -> stats

(** [validate t] checks the B+Tree structural invariants on committed
    state: key ordering within and across nodes, uniform leaf depth,
    minimum occupancy of non-root nodes, leaf-chain consistency, and that
    [cardinal] matches the leaves. *)
val validate : t -> (unit, string) result
