module Heap = Kamino_heap.Heap
module Engine = Kamino_core.Engine

type t = { engine : Engine.t; desc : Heap.ptr; buckets : int; segments : int }

(* Descriptor: bucket count, cardinal, then the directory pointer. *)
let d_buckets = 0
let d_count = 8
let d_dir = 16
let desc_size = 24

(* Segments hold [seg_buckets] bucket-head pointers each; the directory is
   one object of segment pointers. Both stay well under the largest size
   class. *)
let seg_buckets = 256

let seg_size = seg_buckets * 8

(* Entry object: key, value, next. *)
let e_key = 0
let e_value = 8
let e_next = 16
let entry_size = 24

let rec pow2_at_least n acc = if acc >= n then acc else pow2_at_least n (acc * 2)

let hash key =
  let z = Int64.of_int key in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.to_int (Int64.logand z 0x3FFFFFFFFFFFFFFFL)

let create tx ~buckets =
  let buckets = pow2_at_least (max buckets 256) 256 in
  let segments = buckets / seg_buckets in
  let engine = Engine.tx_engine tx in
  let desc = Engine.alloc tx desc_size in
  let dir = Engine.alloc tx (segments * 8) in
  for s = 0 to segments - 1 do
    let seg = Engine.alloc tx seg_size in
    Engine.write_int tx dir (s * 8) seg
  done;
  Engine.write_int tx desc d_buckets buckets;
  Engine.write_int tx desc d_count 0;
  Engine.write_int tx desc d_dir dir;
  { engine; desc; buckets; segments }

let descriptor t = t.desc

let attach engine desc =
  let buckets = Engine.peek_int engine desc d_buckets in
  { engine; desc; buckets; segments = buckets / seg_buckets }

let buckets t = t.buckets

let cardinal t = Engine.peek_int t.engine t.desc d_count

(* Locate the segment object and intra-segment offset of a bucket. *)
let bucket_slot r t key =
  let b = hash key land (t.buckets - 1) in
  let dir = r t.desc d_dir in
  let seg = r dir ((b / seg_buckets) * 8) in
  (seg, b mod seg_buckets * 8)

let peek t p off = Engine.peek_int t.engine p off

let find t key =
  let seg, off = bucket_slot (peek t) t key in
  let rec walk e =
    if e = Heap.null then None
    else if peek t e e_key = key then Some (peek t e e_value)
    else walk (peek t e e_next)
  in
  walk (peek t seg off)

let find_tx tx t key =
  let rd p off = Engine.read_int tx p off in
  let seg, off = bucket_slot rd t key in
  let rec walk e =
    if e = Heap.null then None
    else if rd e e_key = key then Some (rd e e_value)
    else walk (rd e e_next)
  in
  walk (rd seg off)

let bump_count tx t delta =
  Engine.add tx t.desc;
  Engine.write_int tx t.desc d_count (Engine.read_int tx t.desc d_count + delta)

let insert tx t key value =
  let rd p off = Engine.read_int tx p off in
  let seg, off = bucket_slot rd t key in
  (* Look for an existing entry first. *)
  let rec walk e =
    if e = Heap.null then None
    else if rd e e_key = key then Some e
    else walk (rd e e_next)
  in
  match walk (rd seg off) with
  | Some e ->
      Engine.add tx e;
      let old = Engine.read_int tx e e_value in
      Engine.write_int tx e e_value value;
      Some old
  | None ->
      let entry = Engine.alloc tx entry_size in
      Engine.write_int tx entry e_key key;
      Engine.write_int tx entry e_value value;
      Engine.write_int tx entry e_next (rd seg off);
      (* Only the one bucket word of the segment changes. *)
      Engine.add_field tx seg off 8;
      Engine.write_int tx seg off entry;
      bump_count tx t 1;
      None

let remove tx t key =
  let rd p off = Engine.read_int tx p off in
  let seg, off = bucket_slot rd t key in
  let rec walk prev e =
    if e = Heap.null then None
    else if rd e e_key = key then begin
      let value = rd e e_value in
      let next = rd e e_next in
      (match prev with
      | None ->
          Engine.add_field tx seg off 8;
          Engine.write_int tx seg off next
      | Some p ->
          Engine.add tx p;
          Engine.write_int tx p e_next next);
      Engine.free tx e;
      bump_count tx t (-1);
      Some value
    end
    else walk (Some e) (rd e e_next)
  in
  walk None (rd seg off)

let iter t f =
  let dir = peek t t.desc d_dir in
  for s = 0 to t.segments - 1 do
    let seg = peek t dir (s * 8) in
    for b = 0 to seg_buckets - 1 do
      let rec walk e =
        if e <> Heap.null then begin
          f (peek t e e_key) (peek t e e_value);
          walk (peek t e e_next)
        end
      in
      walk (peek t seg (b * 8))
    done
  done

let validate t =
  let heap = Engine.heap t.engine in
  let error = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !error = None then error := Some s) fmt in
  let count = ref 0 in
  let dir = peek t t.desc d_dir in
  for s = 0 to t.segments - 1 do
    let seg = peek t dir (s * 8) in
    if not (Heap.is_allocated heap seg) then fail "segment %d not allocated" s
    else
      for b = 0 to seg_buckets - 1 do
        let bucket = (s * seg_buckets) + b in
        let rec walk e steps =
          if !error <> None || e = Heap.null then ()
          else if steps > 1_000_000 then fail "bucket %d chain too long (cycle?)" bucket
          else if not (Heap.is_allocated heap e) then
            fail "bucket %d chains to unallocated entry %d" bucket e
          else begin
            let key = peek t e e_key in
            if hash key land (t.buckets - 1) <> bucket then
              fail "key %d is in bucket %d but hashes elsewhere" key bucket;
            incr count;
            walk (peek t e e_next) (steps + 1)
          end
        in
        walk (peek t seg (b * 8)) 0
      done
  done;
  if !error = None && !count <> cardinal t then
    fail "cardinal says %d but chains hold %d entries" (cardinal t) !count;
  match !error with None -> Ok () | Some e -> Error e

let max_chain t =
  let dir = peek t t.desc d_dir in
  let best = ref 0 in
  for s = 0 to t.segments - 1 do
    let seg = peek t dir (s * 8) in
    for b = 0 to seg_buckets - 1 do
      let rec depth e n = if e = Heap.null then n else depth (peek t e e_next) (n + 1) in
      best := max !best (depth (peek t seg (b * 8)) 0)
    done
  done;
  !best
