(** Persistent doubly-linked list — the paper's running example (Figure 4).

    Each node is a persistent object holding a type tag, an integer key, a
    double value and persistent [next]/[prev] pointers. Insert, delete,
    update and lookup are transactions over the engine, each locking the
    nodes it relinks exactly as the paper's [TxInsert] pseudo-code does
    ("lock new, current, prev").

    The list is sorted by key (ascending); duplicate keys are rejected. A
    list is named by its head-holder object, typically stored as the heap
    root. *)

type t

(** [create tx] allocates an empty list. *)
val create : Kamino_core.Engine.tx -> t

(** The list's persistent handle (store it as the heap root). *)
val handle : t -> Kamino_heap.Heap.ptr

(** [attach engine ptr] re-binds after a reopen. *)
val attach : Kamino_core.Engine.t -> Kamino_heap.Heap.ptr -> t

(** [insert tx t ~key ~value] — [TxInsert]: allocates a node and links it
    in key order. Returns [false] if the key already exists. *)
val insert : Kamino_core.Engine.tx -> t -> key:int -> value:float -> bool

(** [delete tx t ~key] — [TxDelete]: unlinks and frees the node. *)
val delete : Kamino_core.Engine.tx -> t -> key:int -> bool

(** [update tx t ~key ~value] — [TxUpdate]: overwrites the node's value. *)
val update : Kamino_core.Engine.tx -> t -> key:int -> value:float -> bool

(** [lookup t ~key] — [TxLookup] on committed state. *)
val lookup : t -> key:int -> float option

(** Number of nodes. *)
val length : t -> int

(** [to_list t] — [(key, value)] pairs in ascending key order. *)
val to_list : t -> (int * float) list

(** Structural validation: forward/backward links are mirror images, keys
    strictly ascending, length matches. *)
val validate : t -> (unit, string) result
