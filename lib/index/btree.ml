module Heap = Kamino_heap.Heap
module Engine = Kamino_core.Engine

type t = { engine : Engine.t; desc : Heap.ptr; mk : int }

(* Descriptor object fields. *)
let d_root = 0
let d_count = 8
let d_node_cap = 16
let desc_size = 24

(* Node fields. [mk] keys at [keys_base], [mk + 1] pointer slots at
   [ptrs_base]: values for leaves (slot i pairs with key i), children for
   internal nodes (slot i is the subtree left of key i; slot nkeys is the
   rightmost child). *)
let n_flags = 0
let n_nkeys = 8
let n_next = 16
let keys_base = 24

let ptrs_base mk = keys_base + (8 * mk)

let mk_of_capacity cap = (cap - 32) / 16

(* Node accessors, parameterized by a reader so the same traversal code
   serves committed-state lookups (peek) and in-transaction reads. *)
type reader = { rd : Heap.ptr -> int -> int }

let peek_reader engine = { rd = (fun p off -> Engine.peek_int engine p off) }

let tx_reader tx = { rd = (fun p off -> Engine.read_int tx p off) }

(* The full backup mirrors the main heap at identical offsets, so the
   same traversal code serves snapshot lookups verbatim — node pointers
   read from the backup image are offsets into that same image. *)
let snapshot_reader snap = { rd = (fun p off -> Engine.snapshot_read_int snap p off) }

(* Cost-free committed reads for observability walks (depth/occupancy
   gauges): the traversal charges nothing to the NVM cost model, so
   sampling gauges cannot perturb bit-identity oracles. *)
let probe_reader engine = { rd = (fun p off -> Engine.probe_int engine p off) }

let is_leaf r node = r.rd node n_flags = 1

let nkeys r node = r.rd node n_nkeys

let next_leaf r node = r.rd node n_next

let key_at r node i = r.rd node (keys_base + (8 * i))

let ptr_at t r node i = r.rd node (ptrs_base t.mk + (8 * i))

(* Position of the first key >= [key], by binary search. Top-level rec
   (not a local closure) so the search allocates nothing per node. *)
let rec lb_scan r node key lo hi =
  if lo >= hi then lo
  else begin
    let mid = (lo + hi) / 2 in
    if key_at r node mid < key then lb_scan r node key (mid + 1) hi
    else lb_scan r node key lo mid
  end

let lower_bound r node n key = lb_scan r node key 0 n

(* Child index to descend into for [key]: number of keys <= key. *)
let child_index r node n key =
  let i = lower_bound r node n key in
  if i < n && key_at r node i = key then i + 1 else i

(* --- Construction ------------------------------------------------------- *)

let min_node_size = 96

let alloc_node tx ~node_cap ~leaf =
  let node = Engine.alloc tx node_cap in
  Engine.write_int tx node n_flags (if leaf then 1 else 0);
  Engine.write_int tx node n_nkeys 0;
  Engine.write_int tx node n_next Heap.null;
  node

let create tx ~node_size =
  if node_size < min_node_size then
    invalid_arg (Printf.sprintf "Btree.create: node_size must be >= %d" min_node_size);
  let desc = Engine.alloc tx desc_size in
  let probe = Engine.alloc tx node_size in
  (* The heap rounds to a size class; the branching factor follows the
     actual capacity, recorded in the descriptor for reattachment. *)
  let node_cap = Heap.capacity (Engine.heap (Engine.tx_engine tx)) probe in
  Engine.write_int tx probe n_flags 1;
  Engine.write_int tx probe n_nkeys 0;
  Engine.write_int tx probe n_next Heap.null;
  Engine.write_int tx desc d_root probe;
  Engine.write_int tx desc d_count 0;
  Engine.write_int tx desc d_node_cap node_cap;
  let engine = Engine.tx_engine tx in
  { engine; desc; mk = mk_of_capacity node_cap }

let descriptor t = t.desc

let attach engine desc =
  let node_cap = Engine.peek_int engine desc d_node_cap in
  { engine; desc; mk = mk_of_capacity node_cap }

let root_of r t = r.rd t.desc d_root

let cardinal t = Engine.peek_int t.engine t.desc d_count

let node_cap t = Engine.peek_int t.engine t.desc d_node_cap

let branching t = t.mk

(* --- Bulk array edits (within a transaction) ----------------------------

   Keys and pointer slots are moved with bulk byte copies; the engine
   routes them through the CoW redirect when needed and charges realistic
   memmove-style costs. *)

let read_span tx node off len = if len = 0 then Bytes.create 0 else Engine.read_bytes tx node off len

let write_span tx node off b = if Bytes.length b > 0 then Engine.write_bytes tx node off b

(* Open a gap of one key slot at index [j] (and one pointer slot at [pj])
   in a node currently holding [n] keys. *)
let open_gap tx t node n ~j ~pj =
  let moved_keys = read_span tx node (keys_base + (8 * j)) (8 * (n - j)) in
  write_span tx node (keys_base + (8 * (j + 1))) moved_keys;
  let pn = n + 1 in
  let moved = read_span tx node (ptrs_base t.mk + (8 * pj)) (8 * (pn - pj)) in
  write_span tx node (ptrs_base t.mk + (8 * (pj + 1))) moved

(* Close the gap at key index [j] / pointer index [pj]. *)
let close_gap tx t node n ~j ~pj =
  let moved_keys = read_span tx node (keys_base + (8 * (j + 1))) (8 * (n - j - 1)) in
  write_span tx node (keys_base + (8 * j)) moved_keys;
  let pn = n + 1 in
  let moved = read_span tx node (ptrs_base t.mk + (8 * (pj + 1))) (8 * (pn - pj - 1)) in
  write_span tx node (ptrs_base t.mk + (8 * pj)) moved

let set_key tx node i v = Engine.write_int tx node (keys_base + (8 * i)) v

let set_ptr tx t node i v = Engine.write_int tx node (ptrs_base t.mk + (8 * i)) v

let set_nkeys tx node n = Engine.write_int tx node n_nkeys n

(* Copy the span of keys [from, from+cnt) and pointers [pfrom, pfrom+pcnt)
   from [src] to [dst] starting at [dj]/[pdj]. *)
let move_span tx t ~src ~dst ~from ~cnt ~pfrom ~pcnt ~dj ~pdj =
  let keys = read_span tx src (keys_base + (8 * from)) (8 * cnt) in
  write_span tx dst (keys_base + (8 * dj)) keys;
  let ptrs = read_span tx src (ptrs_base t.mk + (8 * pfrom)) (8 * pcnt) in
  write_span tx dst (ptrs_base t.mk + (8 * pdj)) ptrs

(* --- Lookup -------------------------------------------------------------- *)

let rec find_in r t node key =
  let n = nkeys r node in
  if is_leaf r node then begin
    let i = lower_bound r node n key in
    if i < n && key_at r node i = key then Some (ptr_at t r node i) else None
  end
  else find_in r t (ptr_at t r node (child_index r node n key)) key

let find t key =
  let r = peek_reader t.engine in
  find_in r t (root_of r t) key

let find_tx tx t key =
  let r = tx_reader tx in
  find_in r t (root_of r t) key

(* Lookup entirely inside a backup snapshot: root pointer, node capacity
   and every node are read from the backup image, so the traversal
   observes one prefix-consistent tree regardless of what has propagated
   since. [t.mk] is immutable after [create] (the descriptor's
   [d_node_cap] is written once), so the live handle's branching factor
   is valid for the snapshot's tree. *)
let find_snapshot snap t key =
  let r = snapshot_reader snap in
  find_in r t (root_of r t) key

(* --- Insertion ----------------------------------------------------------- *)

(* Path from the root to the leaf: [(node, child_index)] per internal
   level, leaf last. *)
let path_to_leaf r t key =
  let rec go node acc =
    if is_leaf r node then (node, acc)
    else begin
      let n = nkeys r node in
      let i = child_index r node n key in
      go (ptr_at t r node i) ((node, i) :: acc)
    end
  in
  go (root_of r t) []

let bump_count tx t delta =
  Engine.add tx t.desc;
  Engine.write_int tx t.desc d_count (Engine.read_int tx t.desc d_count + delta)

(* Insert separator [sep] with right child [right] above [child]; [path] is
   the remaining ancestor chain (nearest parent first). *)
let rec insert_upward tx t path sep right =
  let r = tx_reader tx in
  match path with
  | [] ->
      (* The root split: grow the tree with a new internal root. *)
      let old_root = root_of r t in
      let new_root = alloc_node tx ~node_cap:(node_cap t) ~leaf:false in
      set_key tx new_root 0 sep;
      set_ptr tx t new_root 0 old_root;
      set_ptr tx t new_root 1 right;
      set_nkeys tx new_root 1;
      Engine.add tx t.desc;
      Engine.write_int tx t.desc d_root new_root
  | (parent, i) :: rest ->
      Engine.add tx parent;
      let n = nkeys r parent in
      if n < t.mk then begin
        (* Room: shift and place sep/right at position i / i+1. *)
        open_gap tx t parent n ~j:i ~pj:(i + 1);
        set_key tx parent i sep;
        set_ptr tx t parent (i + 1) right;
        set_nkeys tx parent (n + 1)
      end
      else begin
        (* Split the full internal node around its median, then place the
           pending (sep, right) into the correct half. *)
        let mid = n / 2 in
        let promoted = key_at r parent mid in
        let rnode = alloc_node tx ~node_cap:(node_cap t) ~leaf:false in
        let rcnt = n - mid - 1 in
        move_span tx t ~src:parent ~dst:rnode ~from:(mid + 1) ~cnt:rcnt ~pfrom:(mid + 1)
          ~pcnt:(rcnt + 1) ~dj:0 ~pdj:0;
        set_nkeys tx rnode rcnt;
        set_nkeys tx parent mid;
        let target, ti, tn =
          if i <= mid then (parent, i, mid) else (rnode, i - mid - 1, rcnt)
        in
        open_gap tx t target tn ~j:ti ~pj:(ti + 1);
        set_key tx target ti sep;
        set_ptr tx t target (ti + 1) right;
        set_nkeys tx target (tn + 1);
        insert_upward tx t rest promoted rnode
      end

let insert tx t key value =
  let r = tx_reader tx in
  let leaf, path = path_to_leaf r t key in
  let n = nkeys r leaf in
  let i = lower_bound r leaf n key in
  if i < n && key_at r leaf i = key then begin
    (* Replace in place. *)
    Engine.add tx leaf;
    let old = ptr_at t r leaf i in
    set_ptr tx t leaf i value;
    Some old
  end
  else begin
    Engine.add tx leaf;
    if n < t.mk then begin
      open_gap tx t leaf n ~j:i ~pj:i;
      set_key tx leaf i key;
      set_ptr tx t leaf i value;
      set_nkeys tx leaf (n + 1);
      bump_count tx t 1;
      None
    end
    else begin
      (* Split the full leaf, then insert into the proper half. *)
      let keep = n - (n / 2) in
      let rcnt = n / 2 in
      let rleaf = alloc_node tx ~node_cap:(node_cap t) ~leaf:true in
      move_span tx t ~src:leaf ~dst:rleaf ~from:keep ~cnt:rcnt ~pfrom:keep ~pcnt:rcnt ~dj:0
        ~pdj:0;
      set_nkeys tx rleaf rcnt;
      Engine.write_int tx rleaf n_next (next_leaf r leaf);
      set_nkeys tx leaf keep;
      Engine.write_int tx leaf n_next rleaf;
      let sep = key_at r rleaf 0 in
      let target, ti, tn = if key < sep then (leaf, i, keep) else (rleaf, i - keep, rcnt) in
      open_gap tx t target tn ~j:ti ~pj:ti;
      set_key tx target ti key;
      set_ptr tx t target ti value;
      set_nkeys tx target (tn + 1);
      insert_upward tx t path sep rleaf;
      bump_count tx t 1;
      None
    end
  end

(* --- Deletion ------------------------------------------------------------ *)

let min_keys t = (t.mk / 2) - 1

(* Rebalance [node] (which just lost a key) using its parent; [path] is the
   ancestor chain. *)
let rec rebalance tx t node path =
  let r = tx_reader tx in
  let n = nkeys r node in
  match path with
  | [] ->
      (* Root: collapse when an internal root runs out of keys. *)
      if (not (is_leaf r node)) && n = 0 then begin
        let only_child = ptr_at t r node 0 in
        Engine.add tx t.desc;
        Engine.write_int tx t.desc d_root only_child;
        Engine.free tx node
      end
  | (parent, i) :: rest ->
      if n >= min_keys t then ()
      else begin
        Engine.add tx parent;
        let pn = nkeys r parent in
        let leaf = is_leaf r node in
        let left_sibling = if i > 0 then Some (ptr_at t r parent (i - 1)) else None in
        let right_sibling = if i < pn then Some (ptr_at t r parent (i + 1)) else None in
        let can_lend s = nkeys r s > min_keys t in
        match (left_sibling, right_sibling) with
        | Some l, _ when can_lend l ->
            (* Borrow the left sibling's last entry. *)
            Engine.add tx l;
            Engine.add tx node;
            let ln = nkeys r l in
            if leaf then begin
              open_gap tx t node n ~j:0 ~pj:0;
              set_key tx node 0 (key_at r l (ln - 1));
              set_ptr tx t node 0 (ptr_at t r l (ln - 1));
              set_nkeys tx node (n + 1);
              set_nkeys tx l (ln - 1);
              set_key tx parent (i - 1) (key_at r node 0)
            end
            else begin
              open_gap tx t node n ~j:0 ~pj:0;
              set_key tx node 0 (key_at r parent (i - 1));
              set_ptr tx t node 0 (ptr_at t r l ln);
              set_nkeys tx node (n + 1);
              set_key tx parent (i - 1) (key_at r l (ln - 1));
              set_nkeys tx l (ln - 1)
            end
        | _, Some s when can_lend s ->
            (* Borrow the right sibling's first entry. *)
            Engine.add tx s;
            Engine.add tx node;
            let sn = nkeys r s in
            if leaf then begin
              set_key tx node n (key_at r s 0);
              set_ptr tx t node n (ptr_at t r s 0);
              set_nkeys tx node (n + 1);
              close_gap tx t s sn ~j:0 ~pj:0;
              set_nkeys tx s (sn - 1);
              set_key tx parent i (key_at r s 0)
            end
            else begin
              set_key tx node n (key_at r parent i);
              set_ptr tx t node (n + 1) (ptr_at t r s 0);
              set_nkeys tx node (n + 1);
              set_key tx parent i (key_at r s 0);
              close_gap tx t s sn ~j:0 ~pj:0;
              set_nkeys tx s (sn - 1)
            end
        | Some l, _ ->
            (* Merge [node] into its left sibling, dropping parent key i-1. *)
            Engine.add tx l;
            let ln = nkeys r l in
            if leaf then begin
              move_span tx t ~src:node ~dst:l ~from:0 ~cnt:n ~pfrom:0 ~pcnt:n ~dj:ln ~pdj:ln;
              set_nkeys tx l (ln + n);
              Engine.write_int tx l n_next (next_leaf r node)
            end
            else begin
              set_key tx l ln (key_at r parent (i - 1));
              move_span tx t ~src:node ~dst:l ~from:0 ~cnt:n ~pfrom:0 ~pcnt:(n + 1)
                ~dj:(ln + 1) ~pdj:(ln + 1);
              set_nkeys tx l (ln + 1 + n)
            end;
            Engine.free tx node;
            close_gap tx t parent pn ~j:(i - 1) ~pj:i;
            set_nkeys tx parent (pn - 1);
            rebalance tx t parent rest
        | None, Some s ->
            (* Merge the right sibling into [node], dropping parent key i. *)
            Engine.add tx s;
            Engine.add tx node;
            let sn = nkeys r s in
            if leaf then begin
              move_span tx t ~src:s ~dst:node ~from:0 ~cnt:sn ~pfrom:0 ~pcnt:sn ~dj:n ~pdj:n;
              set_nkeys tx node (n + sn);
              Engine.write_int tx node n_next (next_leaf r s)
            end
            else begin
              set_key tx node n (key_at r parent i);
              move_span tx t ~src:s ~dst:node ~from:0 ~cnt:sn ~pfrom:0 ~pcnt:(sn + 1)
                ~dj:(n + 1) ~pdj:(n + 1);
              set_nkeys tx node (n + 1 + sn)
            end;
            Engine.free tx s;
            close_gap tx t parent pn ~j:i ~pj:(i + 1);
            set_nkeys tx parent (pn - 1);
            rebalance tx t parent rest
        | None, None ->
            (* A non-root node always has a sibling. *)
            assert false
      end

let delete tx t key =
  let r = tx_reader tx in
  let leaf, path = path_to_leaf r t key in
  let n = nkeys r leaf in
  let i = lower_bound r leaf n key in
  if i < n && key_at r leaf i = key then begin
    Engine.add tx leaf;
    let old = ptr_at t r leaf i in
    close_gap tx t leaf n ~j:i ~pj:i;
    set_nkeys tx leaf (n - 1);
    bump_count tx t (-1);
    rebalance tx t leaf path;
    Some old
  end
  else None

(* --- Bulk load ----------------------------------------------------------

   Sorted batches append at the rightmost spine: one leaf is materialized
   per chunk and stitched in with a single separator insertion, so loading
   n records costs O(n) node writes instead of the O(n log n) full-descent
   cost of repeated [insert] — the difference between seconds and minutes
   at a million records. *)

(* Sizes of the successive leaves a [total]-entry append materializes.
   Full leaves are peeled off while enough remains; a tail that would
   leave an underfull (< min_keys) non-root leaf is balanced into two
   near-halves instead, each >= min_keys. Pure plan, no engine work. *)
let leaf_plan t total =
  let mk = t.mk and mn = min_keys t in
  let rec go rem acc =
    if rem = 0 then List.rev acc
    else if rem > mk + mn then go (rem - mk) (mk :: acc)
    else if rem <= mk then List.rev (rem :: acc)
    else begin
      let a = (rem + 1) / 2 in
      List.rev ((rem - a) :: a :: acc)
    end
  in
  go total []

(* Rightmost root-to-leaf path, in [insert_upward]'s format: every hop
   takes the last child, so each path entry is [(node, nkeys node)] — the
   position where a new separator for an appended sibling belongs. *)
let path_to_rightmost r t =
  let rec go node acc =
    if is_leaf r node then (node, acc)
    else begin
      let n = nkeys r node in
      go (ptr_at t r node n) ((node, n) :: acc)
    end
  in
  go (root_of r t) []

let append_sorted tx t entries =
  let m = Array.length entries in
  if m > 0 then begin
    let r = tx_reader tx in
    for i = 1 to m - 1 do
      if fst entries.(i) <= fst entries.(i - 1) then
        invalid_arg "Btree.append_sorted: keys not strictly increasing"
    done;
    let leaf, _ = path_to_leaf r t (fst entries.(0)) in
    let n = nkeys r leaf in
    if n > 0 && fst entries.(0) <= key_at r leaf (n - 1) then
      invalid_arg "Btree.append_sorted: keys must exceed the current maximum";
    if next_leaf r leaf <> Heap.null then
      invalid_arg "Btree.append_sorted: keys must exceed the current maximum";
    let fill dst at ~from ~cnt =
      for j = 0 to cnt - 1 do
        let key, value = entries.(from + j) in
        set_key tx dst (at + j) key;
        set_ptr tx t dst (at + j) value
      done
    in
    if n + m <= t.mk then begin
      (* The whole batch fits in the rightmost leaf. *)
      Engine.add tx leaf;
      fill leaf n ~from:0 ~cnt:m;
      set_nkeys tx leaf (n + m);
      bump_count tx t m
    end
    else begin
      (* Top the rightmost leaf up to capacity, then hang whole new leaves
         off the rightmost spine. A remainder too small to stand as a leaf
         of its own falls back to point inserts (bounded by min_keys). *)
      let room = t.mk - n in
      if room > 0 then begin
        Engine.add tx leaf;
        fill leaf n ~from:0 ~cnt:room;
        set_nkeys tx leaf t.mk;
        bump_count tx t room
      end;
      let rem = m - room in
      if rem <= min_keys t then begin
        (* The tail cannot stand as a leaf of its own: split the (now
           full) rightmost leaf instead, moving its upper half plus the
           tail into a fresh sibling. Both halves end >= min_keys, and
           the work touches O(depth) objects — never one tx intent per
           tail key. *)
        let prev, path = path_to_rightmost r t in
        let total = t.mk + rem in
        let keep = total / 2 in
        let moved = t.mk - keep in
        let nleaf = alloc_node tx ~node_cap:(node_cap t) ~leaf:true in
        Engine.add tx prev;
        move_span tx t ~src:prev ~dst:nleaf ~from:keep ~cnt:moved ~pfrom:keep ~pcnt:moved
          ~dj:0 ~pdj:0;
        fill nleaf moved ~from:room ~cnt:rem;
        set_nkeys tx nleaf (total - keep);
        set_nkeys tx prev keep;
        Engine.write_int tx prev n_next nleaf;
        let sep = key_at r nleaf 0 in
        insert_upward tx t path sep nleaf;
        bump_count tx t rem
      end
      else begin
        let from = ref room in
        List.iter
          (fun cnt ->
            let prev, path = path_to_rightmost r t in
            let nleaf = alloc_node tx ~node_cap:(node_cap t) ~leaf:true in
            fill nleaf 0 ~from:!from ~cnt;
            set_nkeys tx nleaf cnt;
            Engine.add tx prev;
            Engine.write_int tx prev n_next nleaf;
            insert_upward tx t path (fst entries.(!from)) nleaf;
            bump_count tx t cnt;
            from := !from + cnt)
          (leaf_plan t rem)
      end
    end
  end

(* --- Iteration ----------------------------------------------------------- *)

let leftmost_leaf r t =
  let rec go node = if is_leaf r node then node else go (ptr_at t r node 0) in
  go (root_of r t)

let iter t f =
  let r = peek_reader t.engine in
  let rec walk leaf =
    if leaf <> Heap.null then begin
      let n = nkeys r leaf in
      for i = 0 to n - 1 do
        f (key_at r leaf i) (ptr_at t r leaf i)
      done;
      walk (next_leaf r leaf)
    end
  in
  walk (leftmost_leaf r t)

(* Shared range walk: descend once to the leaf holding the first key
   >= [lo], then follow the leaf chain until a key exceeds [hi]. The
   reader parameterizes committed-state vs in-transaction traversal. *)
let fold_range_with r t ~lo ~hi ~init ~f =
  let rec descend node =
    if is_leaf r node then node
    else descend (ptr_at t r node (child_index r node (nkeys r node) lo))
  in
  let rec walk leaf acc =
    if leaf = Heap.null then acc
    else begin
      let n = nkeys r leaf in
      let rec scan i acc =
        if i >= n then (false, acc)
        else begin
          let k = key_at r leaf i in
          if k > hi then (true, acc)
          else if k >= lo then scan (i + 1) (f acc k (ptr_at t r leaf i))
          else scan (i + 1) acc
        end
      in
      let stop, acc = scan 0 acc in
      if stop then acc else walk (next_leaf r leaf) acc
    end
  in
  if lo > hi then init else walk (descend (root_of r t)) init

let fold_range t ~lo ~hi ~init ~f =
  fold_range_with (peek_reader t.engine) t ~lo ~hi ~init ~f

let fold_range_tx tx t ~lo ~hi ~init ~f =
  fold_range_with (tx_reader tx) t ~lo ~hi ~init ~f

let range t ~lo ~hi f =
  fold_range t ~lo ~hi ~init:() ~f:(fun () k v -> f k v)

(* Count-bounded scan (YCSB-E): descend once to the first key >= [lo],
   then walk the leaf chain, stopping as soon as [count] bindings have
   been visited — the charged cost is O(depth + count), independent of
   how many records lie beyond the window. Returns the visited count. *)
let scan t ~lo ~count f =
  if count <= 0 then 0
  else begin
    let r = peek_reader t.engine in
    let rec descend node =
      if is_leaf r node then node
      else descend (ptr_at t r node (child_index r node (nkeys r node) lo))
    in
    let remaining = ref count in
    (* [start] is non-zero only in the first leaf; later leaves hold only
       keys >= lo, so re-running the binary search would waste charged
       reads. *)
    let rec walk leaf start =
      if leaf <> Heap.null && !remaining > 0 then begin
        let n = nkeys r leaf in
        let i = ref start in
        while !i < n && !remaining > 0 do
          f (key_at r leaf !i) (ptr_at t r leaf !i);
          decr remaining;
          incr i
        done;
        if !remaining > 0 then walk (next_leaf r leaf) 0
      end
    in
    let first = descend (root_of r t) in
    walk first (lower_bound r first (nkeys r first) lo);
    count - !remaining
  end

let iter_nodes t f =
  let r = peek_reader t.engine in
  f t.desc;
  let rec go node =
    f node;
    if not (is_leaf r node) then
      for i = 0 to nkeys r node do
        go (ptr_at t r node i)
      done
  in
  go (root_of r t)

let destroy_empty tx t =
  let r = tx_reader tx in
  let root = root_of r t in
  if (not (is_leaf r root)) || nkeys r root <> 0 then
    invalid_arg "Btree.destroy_empty: tree is not empty";
  Engine.free tx root;
  Engine.free tx t.desc

let min_key t =
  let r = peek_reader t.engine in
  let leaf = leftmost_leaf r t in
  if nkeys r leaf = 0 then None else Some (key_at r leaf 0)

let max_key t =
  let r = peek_reader t.engine in
  let rec go node =
    let n = nkeys r node in
    if is_leaf r node then if n = 0 then None else Some (key_at r node (n - 1))
    else go (ptr_at t r node n)
  in
  go (root_of r t)

let height t =
  let r = peek_reader t.engine in
  let rec go node acc = if is_leaf r node then acc else go (ptr_at t r node 0) (acc + 1) in
  go (root_of r t) 1

(* --- Cost-free introspection ---------------------------------------------

   Gauge feeders: these walk committed state through the probe reader, so
   sampling them charges nothing — metrics registries can read them
   between transactions without perturbing the deterministic clock or the
   bit-identity oracles. *)

let depth t =
  let r = probe_reader t.engine in
  let rec go node acc = if is_leaf r node then acc else go (ptr_at t r node 0) (acc + 1) in
  go (root_of r t) 1

type stats = {
  depth : int;
  internal_nodes : int;
  leaf_nodes : int;
  keys : int;
  occupancy : float;
}

let stats t =
  let r = probe_reader t.engine in
  let internal = ref 0 and leaves = ref 0 and keys = ref 0 in
  let rec go node =
    if is_leaf r node then begin
      incr leaves;
      keys := !keys + nkeys r node
    end
    else begin
      incr internal;
      for i = 0 to nkeys r node do
        go (ptr_at t r node i)
      done
    end
  in
  go (root_of r t);
  {
    depth = depth t;
    internal_nodes = !internal;
    leaf_nodes = !leaves;
    keys = !keys;
    occupancy =
      (if !leaves = 0 then 0.0 else float_of_int !keys /. float_of_int (!leaves * t.mk));
  }

(* --- Validation ---------------------------------------------------------- *)

let validate t =
  let r = peek_reader t.engine in
  let heap = Engine.heap t.engine in
  let error = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !error = None then error := Some s) fmt in
  let count = ref 0 in
  let leaves = ref [] in
  let root = root_of r t in
  (* Returns the depth of the subtree; checks ordering within (lo, hi]. *)
  let rec check node ~lo ~hi ~is_root =
    if not (Heap.is_allocated heap node) then begin
      fail "node %d is not an allocated object" node;
      0
    end
    else begin
      let n = nkeys r node in
      if n > t.mk then fail "node %d overflows: %d > %d" node n t.mk;
      if (not is_root) && n < min_keys t then
        fail "node %d underflows: %d < %d" node n (min_keys t);
      (* Separators are copied up from leaf first keys, so a child's keys
         satisfy [lo <= k < hi]. *)
      for i = 0 to n - 1 do
        let k = key_at r node i in
        (match lo with Some l when k < l -> fail "node %d key %d < lower bound" node k | _ -> ());
        (match hi with Some h when k >= h -> fail "node %d key %d >= upper bound" node k | _ -> ());
        if i > 0 && key_at r node (i - 1) >= k then fail "node %d keys out of order" node
      done;
      if is_leaf r node then begin
        count := !count + n;
        leaves := node :: !leaves;
        1
      end
      else begin
        if n = 0 && not is_root then fail "internal node %d is empty" node;
        let depth = ref 0 in
        for i = 0 to n do
          let clo = if i = 0 then lo else Some (key_at r node (i - 1)) in
          let chi = if i = n then hi else Some (key_at r node i) in
          let d = check (ptr_at t r node i) ~lo:clo ~hi:chi ~is_root:false in
          if i = 0 then depth := d
          else if d <> !depth then fail "node %d has uneven child depths" node
        done;
        !depth + 1
      end
    end
  in
  ignore (check root ~lo:None ~hi:None ~is_root:true);
  (* Leaf chain must visit exactly the leaves found by the tree walk, left
     to right. *)
  (match !error with
  | Some _ -> ()
  | None ->
      let chain = ref [] in
      let rec walk leaf =
        if leaf <> Heap.null then begin
          chain := leaf :: !chain;
          walk (next_leaf r leaf)
        end
      in
      walk (leftmost_leaf r t);
      if List.sort compare !chain <> List.sort compare !leaves then
        fail "leaf chain does not match tree leaves";
      if !count <> cardinal t then
        fail "descriptor count %d but leaves hold %d keys" (cardinal t) !count);
  match !error with None -> Ok () | Some e -> Error e
