type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 output function: state += gamma; z = mix(state). *)
let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let s = int64 t in
  { state = s }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Take the top bits, which have better statistical quality, and reduce
     modulo the bound. The modulo bias is negligible for bounds far below
     2^62, which covers every use in this repository. *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  v mod bound

let float t =
  (* 53 random bits scaled into [0, 1). *)
  let bits = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  bits *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (int64 t) 1L = 1L

let bernoulli t p = float t < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))
