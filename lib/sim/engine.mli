(** Discrete-event simulation engine.

    Events are thunks scheduled at absolute virtual times. [run] executes
    them in time order; an executing event may schedule further events. The
    chain-replication experiments and the failure-injection tests are built
    on this engine. *)

type t

val create : unit -> t

(** [now t] is the time of the event currently being executed, or the time
    of the last executed event when idle. *)
val now : t -> int

(** [schedule t ~at f] schedules thunk [f] to run at absolute time [at].
    Scheduling in the past is clamped to [now t] (the event runs "now",
    after already-pending events at the same time). *)
val schedule : t -> at:int -> (unit -> unit) -> unit

(** [schedule_after t ~delay f] schedules [f] at [now t + delay]. *)
val schedule_after : t -> delay:int -> (unit -> unit) -> unit

(** [run t] executes events until the queue is empty. Returns the number of
    events executed. *)
val run : t -> int

(** [run_until t ~deadline] executes events with time [<= deadline]; later
    events stay queued. Returns the number of events executed. *)
val run_until : t -> deadline:int -> int

(** [pending t] is the number of queued events. *)
val pending : t -> int

(** [events_executed t] is the total number of events executed since
    [create] — a deterministic logical clock for the simulation, used by
    the chaos explorer to address fault-injection points ("after the Nth
    event") independently of virtual time. *)
val events_executed : t -> int

(** [set_boundary_hook t (Some f)] installs a callback invoked after every
    executed event, once the event's own side effects (including anything
    it scheduled) are in place. The hook runs {e between} events, so it may
    inspect and mutate simulation state — crash a node, bump a membership
    view, schedule new events — without racing the event it follows. One
    hook at a time; [None] uninstalls. *)
val set_boundary_hook : t -> (unit -> unit) option -> unit

(** [clear t] drops all queued events without running them. *)
val clear : t -> unit
