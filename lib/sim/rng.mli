(** Deterministic pseudo-random number generator.

    A self-contained splitmix64 implementation so that every simulation,
    crash-injection test, and workload generator in the repository is
    reproducible from a single integer seed, independent of the OCaml
    standard library's [Random] state. *)

type t

(** [create seed] returns a fresh generator. Two generators created with the
    same seed produce identical streams. *)
val create : int -> t

(** [copy t] returns an independent generator with the same current state. *)
val copy : t -> t

(** [split t] derives a new, statistically independent generator from [t],
    advancing [t]. Useful to hand private streams to sub-components. *)
val split : t -> t

(** [int64 t] returns the next raw 64-bit output. *)
val int64 : t -> int64

(** [int t bound] returns a uniformly distributed integer in
    [\[0, bound)]. Raises [Invalid_argument] if [bound <= 0]. *)
val int : t -> int -> int

(** [float t] returns a float uniformly distributed in [\[0, 1)]. *)
val float : t -> float

(** [bool t] returns a uniformly distributed boolean. *)
val bool : t -> bool

(** [bernoulli t p] returns [true] with probability [p]. *)
val bernoulli : t -> float -> bool

(** [shuffle t a] permutes array [a] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit

(** [choose t a] returns a uniformly chosen element of [a].
    Raises [Invalid_argument] on an empty array. *)
val choose : t -> 'a array -> 'a
