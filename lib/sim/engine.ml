type t = { queue : (unit -> unit) Pqueue.t; mutable now : int }

let create () = { queue = Pqueue.create (); now = 0 }

let now t = t.now

let schedule t ~at f =
  let at = max at t.now in
  Pqueue.push t.queue at f

let schedule_after t ~delay f = schedule t ~at:(t.now + delay) f

let step t =
  match Pqueue.pop t.queue with
  | None -> false
  | Some (at, f) ->
      t.now <- max t.now at;
      f ();
      true

let run t =
  let n = ref 0 in
  while step t do
    incr n
  done;
  !n

let run_until t ~deadline =
  let n = ref 0 in
  let continue = ref true in
  while !continue do
    match Pqueue.peek t.queue with
    | Some (at, _) when at <= deadline ->
        ignore (step t);
        incr n
    | _ -> continue := false
  done;
  !n

let pending t = Pqueue.length t.queue

let clear t = Pqueue.clear t.queue
