type t = {
  queue : (unit -> unit) Pqueue.t;
  mutable now : int;
  mutable events : int;
  mutable boundary_hook : (unit -> unit) option;
}

let create () = { queue = Pqueue.create (); now = 0; events = 0; boundary_hook = None }

let now t = t.now

let events_executed t = t.events

let set_boundary_hook t hook = t.boundary_hook <- hook

let schedule t ~at f =
  let at = max at t.now in
  Pqueue.push t.queue at f

let schedule_after t ~delay f = schedule t ~at:(t.now + delay) f

let step t =
  match Pqueue.pop t.queue with
  | None -> false
  | Some (at, f) ->
      t.now <- max t.now at;
      f ();
      t.events <- t.events + 1;
      (match t.boundary_hook with Some hook -> hook () | None -> ());
      true

let run t =
  let n = ref 0 in
  while step t do
    incr n
  done;
  !n

let run_until t ~deadline =
  let n = ref 0 in
  let continue = ref true in
  while !continue do
    match Pqueue.peek t.queue with
    | Some (at, _) when at <= deadline ->
        ignore (step t);
        incr n
    | _ -> continue := false
  done;
  !n

let pending t = Pqueue.length t.queue

let clear t = Pqueue.clear t.queue
