type series = {
  mutable samples : float array;
  mutable len : int;
  mutable sorted : bool;
}

let create () = { samples = [||]; len = 0; sorted = true }

let add s x =
  if s.len = Array.length s.samples then begin
    let ncap = if s.len = 0 then 64 else s.len * 2 in
    let a = Array.make ncap 0.0 in
    Array.blit s.samples 0 a 0 s.len;
    s.samples <- a
  end;
  s.samples.(s.len) <- x;
  s.len <- s.len + 1;
  s.sorted <- false

let count s = s.len

let sum s =
  let acc = ref 0.0 in
  for i = 0 to s.len - 1 do
    acc := !acc +. s.samples.(i)
  done;
  !acc

let mean s = if s.len = 0 then nan else sum s /. float_of_int s.len

let ensure_sorted s =
  if not s.sorted then begin
    let a = Array.sub s.samples 0 s.len in
    Array.sort compare a;
    Array.blit a 0 s.samples 0 s.len;
    s.sorted <- true
  end

let percentile s p =
  if s.len = 0 then nan
  else begin
    ensure_sorted s;
    let rank = p /. 100.0 *. float_of_int (s.len - 1) in
    let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
    let lo = max 0 (min lo (s.len - 1)) and hi = max 0 (min hi (s.len - 1)) in
    if lo = hi then s.samples.(lo)
    else begin
      (* Linear interpolation between the two nearest ranks. *)
      let frac = rank -. float_of_int lo in
      (s.samples.(lo) *. (1.0 -. frac)) +. (s.samples.(hi) *. frac)
    end
  end

let min_value s =
  if s.len = 0 then nan
  else begin
    ensure_sorted s;
    s.samples.(0)
  end

let max_value s =
  if s.len = 0 then nan
  else begin
    ensure_sorted s;
    s.samples.(s.len - 1)
  end

let stddev s =
  if s.len = 0 then nan
  else begin
    let m = mean s in
    let acc = ref 0.0 in
    for i = 0 to s.len - 1 do
      let d = s.samples.(i) -. m in
      acc := !acc +. (d *. d)
    done;
    sqrt (!acc /. float_of_int s.len)
  end

let summary s =
  if s.len = 0 then "(empty)"
  else
    Printf.sprintf "mean=%.1f p50=%.1f p99=%.1f max=%.1f (n=%d)" (mean s)
      (percentile s 50.0) (percentile s 99.0) (max_value s) s.len

let merge a b =
  let r = create () in
  for i = 0 to a.len - 1 do
    add r a.samples.(i)
  done;
  for i = 0 to b.len - 1 do
    add r b.samples.(i)
  done;
  r
