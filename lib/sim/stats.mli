(** Latency / throughput statistics helpers.

    A [series] accumulates raw samples (nanoseconds, counts, ...) and reports
    mean, percentiles and extremes. All experiment tables in [bench/] are
    produced through this module so the formatting is uniform. *)

type series

val create : unit -> series

(** [add s x] appends one sample. *)
val add : series -> float -> unit

val count : series -> int

val mean : series -> float

(** [percentile s p] returns the [p]-th percentile ([0. <= p <= 100.]) by
    nearest-rank on the sorted samples. Returns [nan] on an empty series. *)
val percentile : series -> float -> float

val min_value : series -> float

val max_value : series -> float

val sum : series -> float

(** [stddev s] is the population standard deviation. *)
val stddev : series -> float

(** [summary s] formats "mean p50 p99 max" in a compact human-readable way. *)
val summary : series -> string

(** [merge a b] returns a fresh series containing the samples of both. *)
val merge : series -> series -> series
