type 'a entry = { prio : int; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }

let length q = q.size

let is_empty q = q.size = 0

(* [a] orders before [b] when its priority is smaller, or on equal priority
   when it was inserted earlier. *)
let before a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let grow q =
  let cap = Array.length q.data in
  let ncap = if cap = 0 then 16 else cap * 2 in
  (* The dummy element for padding is never read past [q.size]. *)
  let dummy = q.data.(0) in
  let ndata = Array.make ncap dummy in
  Array.blit q.data 0 ndata 0 q.size;
  q.data <- ndata

let push q prio value =
  let e = { prio; seq = q.next_seq; value } in
  q.next_seq <- q.next_seq + 1;
  if q.size = 0 && Array.length q.data = 0 then q.data <- Array.make 16 e;
  if q.size = Array.length q.data then grow q;
  q.data.(q.size) <- e;
  q.size <- q.size + 1;
  (* Sift up. *)
  let i = ref (q.size - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    before q.data.(!i) q.data.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = q.data.(!i) in
    q.data.(!i) <- q.data.(parent);
    q.data.(parent) <- tmp;
    i := parent
  done

let sift_down q =
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < q.size && before q.data.(l) q.data.(!smallest) then smallest := l;
    if r < q.size && before q.data.(r) q.data.(!smallest) then smallest := r;
    if !smallest <> !i then begin
      let tmp = q.data.(!i) in
      q.data.(!i) <- q.data.(!smallest);
      q.data.(!smallest) <- tmp;
      i := !smallest
    end
    else continue := false
  done

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.data.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.data.(0) <- q.data.(q.size);
      sift_down q
    end;
    Some (top.prio, top.value)
  end

let peek q = if q.size = 0 then None else Some (q.data.(0).prio, q.data.(0).value)

let clear q = q.size <- 0
