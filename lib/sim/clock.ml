type t = { mutable now : int }

let create () = { now = 0 }

let create_at ns = { now = ns }

let now t = t.now

let advance t ns =
  if ns < 0 then invalid_arg "Clock.advance: negative duration";
  t.now <- t.now + ns

let advance_to t ns =
  if ns > t.now then begin
    let wait = ns - t.now in
    t.now <- ns;
    wait
  end
  else 0

let reset t = t.now <- 0

let pp fmt t = Format.fprintf fmt "%dns" t.now
