(** Virtual time, in integer nanoseconds.

    Every component of the simulated NVM stack charges its costs to a clock.
    Multi-client experiments give each client its own clock and interleave
    them in virtual-time order; the background backup applier likewise runs
    on a private clock, which is how Kamino-Tx's "off the critical path"
    copying is modelled. *)

type t

(** [create ()] returns a clock at time 0. *)
val create : unit -> t

(** [create_at ns] returns a clock at absolute time [ns]. *)
val create_at : int -> t

(** [now t] is the current time in nanoseconds. *)
val now : t -> int

(** [advance t ns] moves the clock forward by [ns] nanoseconds.
    Raises [Invalid_argument] if [ns < 0]. *)
val advance : t -> int -> unit

(** [advance_to t ns] moves the clock to absolute time [ns] if that is in
    the future; does nothing otherwise. Returns the wait incurred (0 if
    none). Used for lock waits: "block until the backup catches up". *)
val advance_to : t -> int -> int

(** [reset t] sets the clock back to 0. *)
val reset : t -> unit

val pp : Format.formatter -> t -> unit
