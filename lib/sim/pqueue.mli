(** Binary min-heap priority queue keyed by integer priority.

    The discrete-event engine uses it with time as the priority. Ties are
    broken by insertion order (FIFO), which keeps simulations deterministic
    when several events fire at the same instant. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

(** [push q prio v] inserts [v] with priority [prio]. *)
val push : 'a t -> int -> 'a -> unit

(** [pop q] removes and returns the minimum-priority element as
    [(priority, value)], or [None] if the queue is empty. *)
val pop : 'a t -> (int * 'a) option

(** [peek q] returns the minimum-priority element without removing it. *)
val peek : 'a t -> (int * 'a) option

(** [clear q] removes all elements. *)
val clear : 'a t -> unit
