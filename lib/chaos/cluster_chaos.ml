(* Chaos exploration over the whole replicated shard-cluster: the
   {!Chaos} harness shape (seeded workload + fault schedule + oracles +
   greedy shrinking) pointed at {!Kamino_cluster.Cluster} — fail-stops,
   view changes, reboots and stale probes per (shard, replica), plus two
   *targeted* fault kinds that arm on the cross-shard 2PC protocol steps
   themselves:

   - [Prepare_head_fail]: when cross-transaction [cross] reports shard
     [shard] prepared, fail-stop that shard's head — the prepared
     transaction dies with it, a head promotion starts, and the
     coordinator must re-prepare through the new head before the marker
     can persist (the "head promotion between prepare and commit-marker
     persist" scenario);
   - [Marker_head_fail]: when the commit marker persists, fail-stop shard
     [shard]'s (prepared) head — the commit step must re-drive the
     decided transaction through whatever head the chain promotes.

   Event-indexed faults replay deterministically by event count, exactly
   as in {!Chaos}; targeted faults replay deterministically because the
   protocol steps they arm on are themselves events of the deterministic
   simulation.

   Oracles, in order:
   - per-chain durable prefix (survivor applied-set agreement, no
     phantoms, acked implies applied, sequential replay matches every
     survivor's durable image, head backup verified);
   - cluster atomicity: every cross-shard multi_put is all-or-nothing
     across its participant chains under any crash schedule, and a
     marker-written (= decided) multi_put is applied everywhere;
   - linearizability of completed reads per chain;
   - cluster quiescence (no undecided marker, no unacknowledged cross
     transaction survives the drained run). *)

module Sim = Kamino_sim.Engine
module Rng = Kamino_sim.Rng
module Engine = Kamino_core.Engine
module Kv = Kamino_kv.Kv
module Op = Kamino_chain.Op
module Async = Kamino_chain.Async_chain
module Cluster = Kamino_cluster.Cluster

type fault =
  | Reboot of { shard : int; node : int; at_event : int; downtime_ns : int }
  | Fail_stop of { shard : int; node : int; at_event : int }
  | Stale_probe of { shard : int; node : int; at_event : int }
  | Hop_jitter of { shard : int; at_event : int; amplitude_ns : int }
  | Prepare_head_fail of { cross : int; shard : int }
  | Marker_head_fail of { cross : int; shard : int }

type outcome = {
  seed : int;
  ops : int;
  schedule : fault list;
  verdict : (unit, string) result;
  history : string;
  events : int;
  submitted : int;
  acked : int;
  multis : int;
  multis_acked : int;
  crossed : int;
  redrives : int;
  reads : int;
  stale_drops : int;
  fingerprint : string;
  p50_ns : int;
  p95_ns : int;
  p99_ns : int;
}

(* --- schedule serialization ------------------------------------------------ *)

(* Targeted faults are armed before the run (they fire on protocol steps,
   not event counts); ordering them first keeps the schedule file stable. *)
let fault_at_event = function
  | Reboot { at_event; _ }
  | Fail_stop { at_event; _ }
  | Stale_probe { at_event; _ }
  | Hop_jitter { at_event; _ } ->
      at_event
  | Prepare_head_fail _ | Marker_head_fail _ -> 0

let fault_to_string = function
  | Reboot { shard; node; at_event; downtime_ns } ->
      Printf.sprintf "reboot shard=%d node=%d at-event=%d downtime-ns=%d" shard
        node at_event downtime_ns
  | Fail_stop { shard; node; at_event } ->
      Printf.sprintf "fail-stop shard=%d node=%d at-event=%d" shard node at_event
  | Stale_probe { shard; node; at_event } ->
      Printf.sprintf "stale-probe shard=%d node=%d at-event=%d" shard node
        at_event
  | Hop_jitter { shard; at_event; amplitude_ns } ->
      Printf.sprintf "hop-jitter shard=%d at-event=%d amplitude-ns=%d" shard
        at_event amplitude_ns
  | Prepare_head_fail { cross; shard } ->
      Printf.sprintf "prepare-head-fail cross=%d shard=%d" cross shard
  | Marker_head_fail { cross; shard } ->
      Printf.sprintf "marker-head-fail cross=%d shard=%d" cross shard

let schedule_to_string schedule =
  String.concat "" (List.map (fun f -> fault_to_string f ^ "\n") schedule)

let schedule_of_string s =
  let parse_line ln line =
    let fields = String.split_on_char ' ' (String.trim line) in
    let kind = List.hd fields in
    let kvs =
      List.filter_map
        (fun tok ->
          match String.index_opt tok '=' with
          | Some i ->
              Some
                ( String.sub tok 0 i,
                  String.sub tok (i + 1) (String.length tok - i - 1) )
          | None -> None)
        (List.tl fields)
    in
    let field name =
      match List.assoc_opt name kvs with
      | Some v -> (
          match int_of_string_opt v with
          | Some n -> n
          | None ->
              failwith (Printf.sprintf "line %d: bad integer for %s" ln name))
      | None -> failwith (Printf.sprintf "line %d: missing field %s" ln name)
    in
    match kind with
    | "reboot" ->
        Reboot
          {
            shard = field "shard";
            node = field "node";
            at_event = field "at-event";
            downtime_ns = field "downtime-ns";
          }
    | "fail-stop" ->
        Fail_stop
          { shard = field "shard"; node = field "node"; at_event = field "at-event" }
    | "stale-probe" ->
        Stale_probe
          { shard = field "shard"; node = field "node"; at_event = field "at-event" }
    | "hop-jitter" ->
        Hop_jitter
          {
            shard = field "shard";
            at_event = field "at-event";
            amplitude_ns = field "amplitude-ns";
          }
    | "prepare-head-fail" ->
        Prepare_head_fail { cross = field "cross"; shard = field "shard" }
    | "marker-head-fail" ->
        Marker_head_fail { cross = field "cross"; shard = field "shard" }
    | k -> failwith (Printf.sprintf "line %d: unknown fault kind %S" ln k)
  in
  let lines =
    String.split_on_char '\n' s
    |> List.mapi (fun i l -> (i + 1, l))
    |> List.filter (fun (_, l) ->
           let l = String.trim l in
           l <> "" && l.[0] <> '#')
  in
  match List.map (fun (i, l) -> parse_line i l) lines with
  | schedule -> Ok schedule
  | exception Failure msg -> Error msg

(* --- workload -------------------------------------------------------------- *)

(* A slightly wider key space than the single-chain harness so multi_puts
   usually span several shard-chains under the multiplicative router. *)
let key_space = 16

type cmd =
  | Cwrite of Op.t
  | Cmulti of (int * string) list
  | Cread of int

let gen_workload ~seed ~ops =
  let rng = Rng.create ((seed * 37) + 11) in
  let at = ref 0 in
  List.init ops (fun i ->
      at := !at + 900 + Rng.int rng 3_800;
      let key = Rng.int rng key_space in
      let cmd =
        match Rng.int rng 12 with
        | 0 | 1 | 2 -> Cwrite (Op.Put (key, Printf.sprintf "s%dw%d" seed i))
        | 3 | 4 -> Cwrite (Op.Append (key, Printf.sprintf "+%d" i))
        | 5 -> Cwrite (Op.Delete key)
        | 6 | 7 | 8 ->
            (* 2-4 distinct keys: under the router this is usually a
               genuine cross-chain transaction. *)
            let n = 2 + Rng.int rng 3 in
            let rec draw acc = function
              | 0 -> acc
              | n ->
                  let k = Rng.int rng key_space in
                  if List.mem_assoc k acc then draw acc n
                  else draw ((k, Printf.sprintf "s%dm%d.%d" seed i k) :: acc) (n - 1)
            in
            Cmulti (List.rev (draw [] n))
        | _ -> Cread key
      in
      (!at, cmd))

let count_multis steps =
  List.length (List.filter (fun (_, c) -> match c with Cmulti _ -> true | _ -> false) steps)

let gen_schedule ~seed ~faults ~shards ~nodes_per_chain ~events ~multis =
  let rng = Rng.create ((seed * 137) + 5) in
  List.init faults (fun _ ->
      let at_event = 1 + Rng.int rng (max 1 events) in
      let shard = Rng.int rng shards in
      let node = Rng.int rng nodes_per_chain in
      match Rng.int rng 100 with
      | k when k < 32 ->
          Reboot { shard; node; at_event; downtime_ns = Rng.int rng 20_000 }
      | k when k < 48 -> Fail_stop { shard; node; at_event }
      | k when k < 60 -> Stale_probe { shard; node; at_event }
      | k when k < 72 ->
          Hop_jitter { shard; at_event; amplitude_ns = 500 + Rng.int rng 4_000 }
      | k when k < 87 && multis > 0 ->
          Prepare_head_fail { cross = Rng.int rng multis; shard }
      | k when k < 100 && multis > 0 ->
          Marker_head_fail { cross = Rng.int rng multis; shard }
      | _ -> Reboot { shard; node; at_event; downtime_ns = Rng.int rng 20_000 })
  |> List.stable_sort (fun a b -> compare (fault_at_event a) (fault_at_event b))

(* --- run records ------------------------------------------------------------ *)

(* One chain-level write view: a single-key write, or one participant
   slice of a multi_put, as the owning chain saw it. *)
type vrec = {
  v_seq : int;
  v_op : Op.t;
  v_at : int;
  v_ack : int;  (* -1 if the client completion never fired *)
}

type wrec = {
  w_index : int;
  w_op : Op.t;
  w_at : int;
  mutable w_shard : int;
  mutable w_seq : int;
  mutable w_ack : int;
}

type mrec = {
  m_index : int;
  m_bindings : (int * string) list;
  m_at : int;
  mutable m_parts : (int * int) list;  (* (shard, seq), ascending shard *)
  mutable m_marker : bool;  (* the commit point was reached *)
  mutable m_ack : int;
}

type rrec = {
  r_index : int;
  r_key : int;
  r_at : int;
  r_shard : int;
  mutable r_fired : bool;
  mutable r_value : string option;
  mutable r_done : int;
}

let rec op_to_string = function
  | Op.Put (k, v) -> Printf.sprintf "Put(%d,%S)" k v
  | Op.Delete k -> Printf.sprintf "Delete(%d)" k
  | Op.Append (k, v) -> Printf.sprintf "Append(%d,%S)" k v
  | Op.Batch ops ->
      Printf.sprintf "Batch[%s]" (String.concat ";" (List.map op_to_string ops))

let rec apply_model model = function
  | Op.Put (k, v) -> Hashtbl.replace model k v
  | Op.Delete k -> Hashtbl.remove model k
  | Op.Append (k, suffix) ->
      let prev = Option.value (Hashtbl.find_opt model k) ~default:"" in
      Hashtbl.replace model k (prev ^ suffix)
  | Op.Batch ops -> List.iter (apply_model model) ops

let rec op_keys = function
  | Op.Put (k, _) | Op.Delete k | Op.Append (k, _) -> [ k ]
  | Op.Batch ops -> List.concat_map op_keys ops

let model_contents model =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) model [] |> List.sort compare

let kv_contents kv =
  let acc = ref [] in
  Kv.iter kv (fun k v -> acc := (k, v) :: !acc);
  List.sort compare !acc

(* --- oracles --------------------------------------------------------------- *)

(* Durable prefix, per chain (the same contract as {!Chaos}, with the
   chain's write view assembled from singles and multi_put slices). *)
let check_durable_prefix ~shard chain (views : vrec list) =
  let ( let* ) = Result.bind in
  let fail fmt = Printf.ksprintf (fun m -> Error (Printf.sprintf "shard %d: %s" shard m)) fmt in
  let survivors = Async.members chain in
  let head = List.hd survivors in
  let applied = Async.applied_seqs chain head in
  let* () =
    List.fold_left
      (fun acc m ->
        let* () = acc in
        let theirs = Async.applied_seqs chain m in
        if theirs = applied then Ok ()
        else
          fail "durable-prefix: replica %d applied a different op set than head %d"
            m head)
      (Ok ()) (List.tl survivors)
  in
  let by_seq = Hashtbl.create 64 in
  List.iter (fun v -> if v.v_seq >= 0 then Hashtbl.replace by_seq v.v_seq v) views;
  let* () =
    List.fold_left
      (fun acc seq ->
        let* () = acc in
        if Hashtbl.mem by_seq seq then Ok ()
        else fail "durable-prefix: phantom op seq %d was executed" seq)
      (Ok ()) applied
  in
  let applied_set = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace applied_set s ()) applied;
  let* () =
    List.fold_left
      (fun acc v ->
        let* () = acc in
        if v.v_ack >= 0 && not (Hashtbl.mem applied_set v.v_seq) then
          fail "durable-prefix: acknowledged write seq %d lost from survivors" v.v_seq
        else Ok ())
      (Ok ()) views
  in
  let model = Hashtbl.create 64 in
  List.iter (fun seq -> apply_model model (Hashtbl.find by_seq seq).v_op) applied;
  let expected = model_contents model in
  let* () =
    List.fold_left
      (fun acc m ->
        let* () = acc in
        if kv_contents (Async.kv_at chain m) = expected then Ok ()
        else
          fail
            "durable-prefix: replica %d's durable image diverges from the replay of \
             its applied set"
            m)
      (Ok ()) survivors
  in
  let* () =
    Result.map_error (fun e -> Printf.sprintf "shard %d: %s" shard e)
      (Async.replicas_consistent chain)
  in
  let* () =
    Result.map_error
      (fun e -> Printf.sprintf "shard %d: durable-prefix: head backup: %s" shard e)
      (Engine.verify_backup (Async.engine_at chain head))
  in
  Ok applied

(* Cluster atomicity: a cross-shard multi_put is all-or-nothing across its
   participant chains, and a decided one (marker written — or client
   acknowledged, which is later) is applied on all of them. *)
let check_cluster_atomicity cluster multis =
  let applied_on (s, seq) =
    let ch = Cluster.chain cluster s in
    List.mem seq (Async.applied_seqs ch (Async.head_id ch))
  in
  List.fold_left
    (fun acc m ->
      Result.bind acc (fun () ->
          if List.length m.m_parts < 2 then Ok ()
          else begin
            let states = List.map (fun p -> (p, applied_on p)) m.m_parts in
            let all = List.for_all snd states in
            let none = List.for_all (fun (_, a) -> not a) states in
            if not (all || none) then
              Error
                (Printf.sprintf
                   "cluster-atomicity: multi m%d is torn: applied on [%s] but not [%s]"
                   m.m_index
                   (String.concat ";"
                      (List.filter_map
                         (fun ((s, q), a) ->
                           if a then Some (Printf.sprintf "%d:%d" s q) else None)
                         states))
                   (String.concat ";"
                      (List.filter_map
                         (fun ((s, q), a) ->
                           if a then None else Some (Printf.sprintf "%d:%d" s q))
                         states)))
            else if (m.m_marker || m.m_ack >= 0) && not all then
              Error
                (Printf.sprintf
                   "cluster-atomicity: multi m%d was decided (marker%s) but is not \
                    applied on every participant chain"
                   m.m_index
                   (if m.m_ack >= 0 then "+ack" else ""))
            else Ok ()
          end))
    (Ok ()) multis

(* Linearizability of completed reads, per chain, against the chain's
   applied write view — multi_put slices carry their client ack time. *)
let check_linearizable views reads applied =
  let by_seq = Hashtbl.create 64 in
  List.iter (fun v -> if v.v_seq >= 0 then Hashtbl.replace by_seq v.v_seq v) views;
  let model = Hashtbl.create 16 in
  let timelines = Hashtbl.create 16 in
  let push key state =
    let tl = Option.value (Hashtbl.find_opt timelines key) ~default:[] in
    Hashtbl.replace timelines key (state :: tl)
  in
  List.iter
    (fun seq ->
      let v = Hashtbl.find by_seq seq in
      apply_model model v.v_op;
      List.iter (fun key -> push key (seq, v.v_at, Hashtbl.find_opt model key)) (op_keys v.v_op))
    applied;
  let check_read acc r =
    Result.bind acc (fun () ->
        if not r.r_fired then Ok ()
        else begin
          let lo =
            List.fold_left
              (fun lo v ->
                if
                  List.mem r.r_key (op_keys v.v_op)
                  && v.v_ack >= 0 && v.v_ack <= r.r_at
                then max lo v.v_seq
                else lo)
              0 views
          in
          let timeline =
            List.rev (Option.value (Hashtbl.find_opt timelines r.r_key) ~default:[])
          in
          let candidates =
            (if lo = 0 then [ None ] else [])
            @ List.filter_map
                (fun (seq, at, state) ->
                  if seq >= lo && at <= r.r_done then Some state else None)
                timeline
          in
          if List.exists (fun c -> c = r.r_value) candidates then Ok ()
          else
            Error
              (Printf.sprintf
                 "linearizability: read r%d of key %d returned %s, not a legal state \
                  in its window"
                 r.r_index r.r_key
                 (match r.r_value with
                 | Some v -> Printf.sprintf "%S" v
                 | None -> "absent"))
        end)
  in
  List.fold_left check_read (Ok ()) reads

(* --- the runner ------------------------------------------------------------ *)

let cluster_shards = 3
let cluster_f = 1
let nodes_per_chain = cluster_f + 2

let chaos_engine_config =
  {
    Engine.default_config with
    Engine.heap_bytes = 1 lsl 18;
    log_slots = 64;
    data_log_bytes = 1 lsl 16;
  }

let make_cluster ~seed () =
  Cluster.create ~engine_config:chaos_engine_config ~hop_ns:5000 ~rpc_ns:500
    ~promote_ns:40_000 ~retry_ns:10_000 ~queue_slots:256 ~shards:cluster_shards
    ~f:cluster_f ~value_size:64 ~node_size:512 ~seed ()

(* Event-boundary faults; inapplicable ones become deterministic no-ops so
   a schedule replays identically (same contract as {!Chaos}). *)
let apply_fault cluster ~seed log fault =
  let note verdict = Buffer.add_string log (fault_to_string fault ^ verdict ^ "\n") in
  let chain s = Cluster.chain cluster s in
  let alive s node =
    s < Cluster.shards cluster
    && node < Async.length (chain s)
    && List.mem node (Async.members (chain s))
  in
  match fault with
  | Reboot { shard; node; downtime_ns; _ } ->
      if alive shard node then begin
        Async.reboot_now ~downtime_ns (chain shard) node;
        note " -> applied"
      end
      else note " -> skipped (not a member)"
  | Fail_stop { shard; node; _ } ->
      if alive shard node && List.length (Async.members (chain shard)) > 2 then begin
        Async.fail_stop_now (chain shard) node;
        note " -> applied"
      end
      else note " -> skipped (not a member, or chain too short)"
  | Stale_probe { shard; node; _ } ->
      if alive shard node then begin
        Async.inject_stale_probe_now (chain shard) node;
        note " -> applied"
      end
      else note " -> skipped (not a member)"
  | Hop_jitter { shard; at_event; amplitude_ns } ->
      if shard < Cluster.shards cluster then begin
        Async.set_hop_jitter (chain shard)
          (Some (Rng.create ((seed * 1_000_003) + at_event), amplitude_ns));
        note " -> applied"
      end
      else note " -> skipped (no such shard)"
  | Prepare_head_fail _ | Marker_head_fail _ ->
      (* Armed on protocol steps, never at event boundaries. *)
      note " -> skipped (targeted fault at boundary)"

(* Fail-stop a shard's current head, as triggered from a 2PC protocol
   step. Only legal while the chain keeps >= 2 members afterwards. *)
let fire_targeted cluster log name ~cross ~shard =
  let ch = Cluster.chain cluster shard in
  let label = Printf.sprintf "%s cross=%d shard=%d" name cross shard in
  if List.length (Async.members ch) > 2 then begin
    Async.fail_stop_now ch (Async.head_id ch);
    Buffer.add_string log (label ^ " -> applied (head fail-stopped)\n")
  end
  else Buffer.add_string log (label ^ " -> skipped (chain too short)\n")

let run ?(recovery_fault = Async.No_fault) ~seed ~ops ~schedule () =
  let cluster = make_cluster ~seed () in
  Array.iter
    (fun s -> Async.set_recovery_fault (Cluster.chain cluster s) recovery_fault)
    (Array.init (Cluster.shards cluster) Fun.id);
  let steps = gen_workload ~seed ~ops in
  let fault_log = Buffer.create 256 in
  (* Targeted 2PC faults, armed by (cross index, shard). *)
  let prep_armed = Hashtbl.create 8 and marker_armed = Hashtbl.create 8 in
  List.iter
    (fun f ->
      match f with
      | Prepare_head_fail { cross; shard } ->
          Hashtbl.replace prep_armed (cross, shard) ()
      | Marker_head_fail { cross; shard } ->
          Hashtbl.replace marker_armed (cross, shard) ()
      | _ -> ())
    schedule;
  let writes = ref [] and multis = ref [] and reads = ref [] in
  let multi_idx = ref 0 in
  List.iteri
    (fun i (at, cmd) ->
      match cmd with
      | Cwrite op ->
          let w =
            { w_index = i; w_op = op; w_at = at; w_shard = -1; w_seq = -1; w_ack = -1 }
          in
          writes := w :: !writes;
          Cluster.submit cluster ~at
            ~on_submit:(fun ~shard ~seq ->
              w.w_shard <- shard;
              w.w_seq <- seq)
            op
            ~on_complete:(fun t -> w.w_ack <- t)
      | Cmulti bindings ->
          let mi = !multi_idx in
          incr multi_idx;
          let m =
            { m_index = i; m_bindings = bindings; m_at = at; m_parts = [];
              m_marker = false; m_ack = -1 }
          in
          multis := (mi, m) :: !multis;
          Cluster.multi_put cluster ~at
            ~on_seq:(fun ~shard ~seq ->
              if not (List.mem_assoc shard m.m_parts) then
                m.m_parts <- List.sort compare ((shard, seq) :: m.m_parts))
            ~on_step:(fun step ->
              match step with
              | Cluster.Prepared s ->
                  if Hashtbl.mem prep_armed (mi, s) then begin
                    Hashtbl.remove prep_armed (mi, s);
                    fire_targeted cluster fault_log "prepare-head-fail" ~cross:mi
                      ~shard:s
                  end
              | Cluster.Marker_written ->
                  m.m_marker <- true;
                  List.iter
                    (fun (s, _) ->
                      if Hashtbl.mem marker_armed (mi, s) then begin
                        Hashtbl.remove marker_armed (mi, s);
                        fire_targeted cluster fault_log "marker-head-fail"
                          ~cross:mi ~shard:s
                      end)
                    m.m_parts
              | Cluster.Committed _ | Cluster.Marker_cleared -> ())
            bindings
            ~on_complete:(fun t -> m.m_ack <- t)
      | Cread key ->
          let r =
            { r_index = i; r_key = key; r_at = at; r_shard = Cluster.route cluster key;
              r_fired = false; r_value = None; r_done = -1 }
          in
          reads := r :: !reads;
          Cluster.read cluster ~at key ~on_result:(fun v t ->
              r.r_fired <- true;
              r.r_value <- v;
              r.r_done <- t))
    steps;
  let writes = List.rev !writes
  and multis = List.rev_map snd !multis
  and reads = List.rev !reads in
  (* Arm event-boundary faults. *)
  let sim = Cluster.sim cluster in
  let boundary =
    List.filter
      (fun f ->
        match f with Prepare_head_fail _ | Marker_head_fail _ -> false | _ -> true)
      schedule
  in
  let pending = ref boundary in
  Sim.set_boundary_hook sim
    (Some
       (fun () ->
         let n = Sim.events_executed sim in
         let rec fire () =
           match !pending with
           | f :: rest when fault_at_event f <= n ->
               pending := rest;
               apply_fault cluster ~seed fault_log f;
               fire ()
           | _ -> ()
         in
         fire ()));
  let events = Cluster.run cluster in
  Sim.set_boundary_hook sim None;
  List.iter
    (fun f -> Buffer.add_string fault_log (fault_to_string f ^ " -> unfired\n"))
    !pending;
  List.iter
    (fun (tbl, name) ->
      Hashtbl.iter
        (fun (cross, shard) () ->
          Buffer.add_string fault_log
            (Printf.sprintf "%s cross=%d shard=%d -> unfired\n" name cross shard))
        tbl)
    [ (prep_armed, "prepare-head-fail"); (marker_armed, "marker-head-fail") ];
  (* Assemble each chain's write view: singles plus multi_put slices. *)
  let views = Array.make (Cluster.shards cluster) [] in
  List.iter
    (fun w ->
      if w.w_seq >= 0 then
        views.(w.w_shard) <-
          { v_seq = w.w_seq; v_op = w.w_op; v_at = w.w_at; v_ack = w.w_ack }
          :: views.(w.w_shard))
    writes;
  List.iter
    (fun m ->
      let by_shard = Cluster.group_bindings cluster m.m_bindings in
      List.iter
        (fun (s, seq) ->
          match List.assoc_opt s by_shard with
          | Some op ->
              views.(s) <-
                { v_seq = seq; v_op = op; v_at = m.m_at; v_ack = m.m_ack }
                :: views.(s)
          | None -> ())
        m.m_parts)
    multis;
  (* Oracles. *)
  let verdict =
    let ( let* ) = Result.bind in
    let* () =
      Result.map_error (fun e -> "quiescence: " ^ e) (Cluster.quiescent cluster)
    in
    let* () = check_cluster_atomicity cluster multis in
    let rec chains s =
      if s >= Cluster.shards cluster then Ok ()
      else
        let ch = Cluster.chain cluster s in
        let chain_views = List.rev views.(s) in
        let* applied = check_durable_prefix ~shard:s ch chain_views in
        let chain_reads = List.filter (fun r -> r.r_shard = s) reads in
        let* () =
          Result.map_error (fun e -> Printf.sprintf "shard %d: %s" s e)
            (check_linearizable chain_views chain_reads applied)
        in
        chains (s + 1)
    in
    chains 0
  in
  let fingerprint = Cluster.fingerprint cluster in
  (* Render the history. *)
  let b = Buffer.create 4096 in
  Printf.bprintf b "# cluster-chaos seed=%d ops=%d shards=%d f=%d faults=%d\n" seed
    ops cluster_shards cluster_f (List.length schedule);
  if schedule <> [] then begin
    Buffer.add_string b "# schedule:\n";
    List.iter (fun f -> Printf.bprintf b "#   %s\n" (fault_to_string f)) schedule
  end;
  List.iter
    (fun (at, cmd) ->
      match cmd with
      | Cwrite _ ->
          let w = List.find (fun w -> w.w_at = at) writes in
          Printf.bprintf b "w%d at=%d %s shard=%s seq=%s ack=%s\n" w.w_index w.w_at
            (op_to_string w.w_op)
            (if w.w_shard >= 0 then string_of_int w.w_shard else "-")
            (if w.w_seq >= 0 then string_of_int w.w_seq else "-")
            (if w.w_ack >= 0 then string_of_int w.w_ack else "-")
      | Cmulti _ ->
          let m = List.find (fun m -> m.m_at = at) multis in
          Printf.bprintf b "m%d at=%d multi[%s] parts=[%s]%s ack=%s\n" m.m_index
            m.m_at
            (String.concat ";"
               (List.map (fun (k, v) -> Printf.sprintf "%d=%S" k v) m.m_bindings))
            (String.concat ";"
               (List.map (fun (s, q) -> Printf.sprintf "%d:%d" s q) m.m_parts))
            (if m.m_marker then " marker" else "")
            (if m.m_ack >= 0 then string_of_int m.m_ack else "-")
      | Cread _ ->
          let r = List.find (fun r -> r.r_at = at) reads in
          if r.r_fired then
            Printf.bprintf b "r%d at=%d key=%d shard=%d -> %s done=%d\n" r.r_index
              r.r_at r.r_key r.r_shard
              (match r.r_value with
              | Some v -> Printf.sprintf "%S" v
              | None -> "absent")
              r.r_done
          else
            Printf.bprintf b "r%d at=%d key=%d shard=%d -> (no response)\n" r.r_index
              r.r_at r.r_key r.r_shard)
    steps;
  if Buffer.length fault_log > 0 then begin
    Buffer.add_string b "# faults:\n";
    String.split_on_char '\n' (Buffer.contents fault_log)
    |> List.iter (fun l -> if l <> "" then Printf.bprintf b "#   %s\n" l)
  end;
  let stale_drops = ref 0 in
  for s = 0 to Cluster.shards cluster - 1 do
    let ch = Cluster.chain cluster s in
    stale_drops := !stale_drops + Async.stale_drops ch;
    Printf.bprintf b "# shard%d view=%d members=[%s] stale-drops=%d\n" s
      (Async.view_id ch)
      (String.concat ";" (List.map string_of_int (Async.members ch)))
      (Async.stale_drops ch)
  done;
  Printf.bprintf b "# events=%d crossed=%d redrives=%d fingerprint=%s\n" events
    (Cluster.crossed cluster) (Cluster.redrives cluster) fingerprint;
  Printf.bprintf b "verdict: %s\n"
    (match verdict with Ok () -> "PASS" | Error e -> "FAIL: " ^ e);
  let commit_h =
    Kamino_obs.Metrics.hist (Cluster.registry cluster) "cluster.commit_ns"
  in
  {
    seed;
    ops;
    schedule;
    verdict;
    history = Buffer.contents b;
    events;
    submitted = List.length (List.filter (fun w -> w.w_seq >= 0) writes);
    acked = List.length (List.filter (fun w -> w.w_ack >= 0) writes);
    multis = List.length multis;
    multis_acked = List.length (List.filter (fun m -> m.m_ack >= 0) multis);
    crossed = Cluster.crossed cluster;
    redrives = Cluster.redrives cluster;
    reads = List.length reads;
    stale_drops = !stale_drops;
    fingerprint;
    p50_ns = Kamino_obs.Metrics.percentile commit_h 50.;
    p95_ns = Kamino_obs.Metrics.percentile commit_h 95.;
    p99_ns = Kamino_obs.Metrics.percentile commit_h 99.;
  }

let explore ?(recovery_fault = Async.No_fault) ?(ops = 30) ?(faults = 6) ~seed () =
  (* Dry run: measure the fault-free event count so the schedule spans the
     whole workload. *)
  let dry = run ~seed ~ops ~schedule:[] () in
  let multis = count_multis (gen_workload ~seed ~ops) in
  let schedule =
    gen_schedule ~seed ~faults ~shards:cluster_shards ~nodes_per_chain
      ~events:dry.events ~multis
  in
  run ~recovery_fault ~seed ~ops ~schedule ()

let shrink ?(recovery_fault = Async.No_fault) ~seed ~ops schedule =
  let fails s = (run ~recovery_fault ~seed ~ops ~schedule:s ()).verdict <> Ok () in
  if not (fails schedule) then schedule
  else begin
    let rec minimize s =
      let n = List.length s in
      let rec try_drop i =
        if i >= n then s
        else
          let s' = List.filteri (fun j _ -> j <> i) s in
          if fails s' then minimize s' else try_drop (i + 1)
      in
      try_drop 0
    in
    minimize schedule
  end
