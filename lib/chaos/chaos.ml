module Sim = Kamino_sim.Engine
module Rng = Kamino_sim.Rng
module Engine = Kamino_core.Engine
module Kv = Kamino_kv.Kv
module Op = Kamino_chain.Op
module Async = Kamino_chain.Async_chain
module Obs = Kamino_obs.Obs

type fault =
  | Reboot of { node : int; at_event : int; downtime_ns : int }
  | Fail_stop of { node : int; at_event : int }
  | Stale_probe of { node : int; at_event : int }
  | Hop_jitter of { at_event : int; amplitude_ns : int }

type outcome = {
  seed : int;
  mode : Async.mode;
  ops : int;
  schedule : fault list;
  verdict : (unit, string) result;
  history : string;
  events : int;
  submitted : int;
  acked : int;
  reads : int;
  stale_drops : int;
  survivors : int list;
}

let mode_name = function
  | Async.Traditional -> "traditional"
  | Async.Kamino_chain -> "kamino"

let mode_of_string s =
  match String.lowercase_ascii s with
  | "traditional" -> Some Async.Traditional
  | "kamino" | "kamino-chain" -> Some Async.Kamino_chain
  | _ -> None

(* --- schedule serialization ------------------------------------------------ *)

let fault_at_event = function
  | Reboot { at_event; _ }
  | Fail_stop { at_event; _ }
  | Stale_probe { at_event; _ }
  | Hop_jitter { at_event; _ } ->
      at_event

let fault_to_string = function
  | Reboot { node; at_event; downtime_ns } ->
      Printf.sprintf "reboot node=%d at-event=%d downtime-ns=%d" node at_event downtime_ns
  | Fail_stop { node; at_event } -> Printf.sprintf "fail-stop node=%d at-event=%d" node at_event
  | Stale_probe { node; at_event } ->
      Printf.sprintf "stale-probe node=%d at-event=%d" node at_event
  | Hop_jitter { at_event; amplitude_ns } ->
      Printf.sprintf "hop-jitter at-event=%d amplitude-ns=%d" at_event amplitude_ns

let schedule_to_string schedule =
  String.concat "" (List.map (fun f -> fault_to_string f ^ "\n") schedule)

let schedule_of_string s =
  let parse_line ln line =
    let fields = String.split_on_char ' ' (String.trim line) in
    let kind = List.hd fields in
    let kvs =
      List.filter_map
        (fun tok ->
          match String.index_opt tok '=' with
          | Some i ->
              Some
                ( String.sub tok 0 i,
                  String.sub tok (i + 1) (String.length tok - i - 1) )
          | None -> None)
        (List.tl fields)
    in
    let field name =
      match List.assoc_opt name kvs with
      | Some v -> (
          match int_of_string_opt v with
          | Some n -> n
          | None -> failwith (Printf.sprintf "line %d: bad integer for %s" ln name))
      | None -> failwith (Printf.sprintf "line %d: missing field %s" ln name)
    in
    match kind with
    | "reboot" ->
        Reboot
          { node = field "node"; at_event = field "at-event"; downtime_ns = field "downtime-ns" }
    | "fail-stop" -> Fail_stop { node = field "node"; at_event = field "at-event" }
    | "stale-probe" -> Stale_probe { node = field "node"; at_event = field "at-event" }
    | "hop-jitter" ->
        Hop_jitter { at_event = field "at-event"; amplitude_ns = field "amplitude-ns" }
    | k -> failwith (Printf.sprintf "line %d: unknown fault kind %S" ln k)
  in
  let lines =
    String.split_on_char '\n' s
    |> List.mapi (fun i l -> (i + 1, l))
    |> List.filter (fun (_, l) ->
           let l = String.trim l in
           l <> "" && l.[0] <> '#')
  in
  match List.map (fun (i, l) -> parse_line i l) lines with
  | schedule -> Ok schedule
  | exception Failure msg -> Error msg

(* --- workload -------------------------------------------------------------- *)

(* Small key space and short payloads: the adversary is the fault schedule,
   not data volume. Submission times overlap the 5 us hop latency so faults
   land mid-propagation. *)
let key_space = 12

type cmd = Cwrite of Op.t | Cread of int

let gen_workload ~seed ~ops =
  let rng = Rng.create ((seed * 31) + 7) in
  let at = ref 0 in
  List.init ops (fun i ->
      at := !at + 800 + Rng.int rng 3_500;
      let key = Rng.int rng key_space in
      let cmd =
        match Rng.int rng 10 with
        | 0 | 1 | 2 -> Cwrite (Op.Put (key, Printf.sprintf "s%dw%d" seed i))
        | 3 | 4 -> Cwrite (Op.Append (key, Printf.sprintf "+%d" i))
        | 5 -> Cwrite (Op.Delete key)
        | _ -> Cread key
      in
      (!at, cmd))

let gen_schedule ~seed ~faults ~nodes ~events =
  let rng = Rng.create ((seed * 131) + 3) in
  List.init faults (fun _ ->
      let at_event = 1 + Rng.int rng (max 1 events) in
      match Rng.int rng 100 with
      | k when k < 45 ->
          Reboot { node = Rng.int rng nodes; at_event; downtime_ns = Rng.int rng 20_000 }
      | k when k < 65 -> Fail_stop { node = Rng.int rng nodes; at_event }
      | k when k < 85 -> Stale_probe { node = Rng.int rng nodes; at_event }
      | _ -> Hop_jitter { at_event; amplitude_ns = 500 + Rng.int rng 4_000 })
  |> List.stable_sort (fun a b -> compare (fault_at_event a) (fault_at_event b))

(* --- run record ------------------------------------------------------------ *)

type wrec = {
  w_index : int;
  w_op : Op.t;
  w_at : int;
  mutable w_seq : int;  (* -1 until the head assigns one *)
  mutable w_ack : int;  (* -1 until the tail acknowledgment completes *)
}

type rrec = {
  r_index : int;
  r_key : int;
  r_at : int;
  mutable r_fired : bool;
  mutable r_value : string option;
  mutable r_done : int;
}

let rec op_to_string = function
  | Op.Put (k, v) -> Printf.sprintf "Put(%d,%S)" k v
  | Op.Delete k -> Printf.sprintf "Delete(%d)" k
  | Op.Append (k, v) -> Printf.sprintf "Append(%d,%S)" k v
  | Op.Batch ops ->
      Printf.sprintf "Batch[%s]" (String.concat ";" (List.map op_to_string ops))

let rec apply_model model = function
  | Op.Put (k, v) -> Hashtbl.replace model k v
  | Op.Delete k -> Hashtbl.remove model k
  | Op.Append (k, suffix) ->
      let prev = Option.value (Hashtbl.find_opt model k) ~default:"" in
      Hashtbl.replace model k (prev ^ suffix)
  | Op.Batch ops -> List.iter (apply_model model) ops

let model_contents model =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) model [] |> List.sort compare

let kv_contents kv =
  let acc = ref [] in
  Kv.iter kv (fun k v -> acc := (k, v) :: !acc);
  List.sort compare !acc

(* --- oracles --------------------------------------------------------------- *)

(* Durable prefix: every member of the final view holds exactly the ops in
   the head's applied set; that set contains every acknowledged write and
   nothing that was never submitted; replaying it in sequence order through
   a sequential model reproduces each survivor's durable image; and the
   head's backup agrees with its heap. *)
let check_durable_prefix chain writes =
  let ( let* ) = Result.bind in
  let survivors = Async.members chain in
  let head = List.hd survivors in
  let applied = Async.applied_seqs chain head in
  let* () =
    List.fold_left
      (fun acc m ->
        let* () = acc in
        let theirs = Async.applied_seqs chain m in
        if theirs = applied then Ok ()
        else
          let missing = List.filter (fun s -> not (List.mem s theirs)) applied in
          let extra = List.filter (fun s -> not (List.mem s applied)) theirs in
          Error
            (Printf.sprintf
               "durable-prefix: replica %d applied a different op set than head %d \
                (missing [%s], extra [%s])"
               m head
               (String.concat ";" (List.map string_of_int missing))
               (String.concat ";" (List.map string_of_int extra))))
      (Ok ()) (List.tl survivors)
  in
  let by_seq = Hashtbl.create 64 in
  List.iter (fun w -> if w.w_seq >= 0 then Hashtbl.replace by_seq w.w_seq w) writes;
  let* () =
    List.fold_left
      (fun acc seq ->
        let* () = acc in
        if Hashtbl.mem by_seq seq then Ok ()
        else Error (Printf.sprintf "durable-prefix: phantom op seq %d was executed" seq))
      (Ok ()) applied
  in
  let applied_set = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace applied_set s ()) applied;
  let* () =
    List.fold_left
      (fun acc w ->
        let* () = acc in
        if w.w_ack >= 0 && not (Hashtbl.mem applied_set w.w_seq) then
          Error
            (Printf.sprintf
               "durable-prefix: acknowledged write w%d (seq %d) lost from survivors"
               w.w_index w.w_seq)
        else Ok ())
      (Ok ()) writes
  in
  let model = Hashtbl.create 64 in
  List.iter (fun seq -> apply_model model (Hashtbl.find by_seq seq).w_op) applied;
  let expected = model_contents model in
  let* () =
    List.fold_left
      (fun acc m ->
        let* () = acc in
        if kv_contents (Async.kv_at chain m) = expected then Ok ()
        else
          Error
            (Printf.sprintf
               "durable-prefix: replica %d's durable image diverges from the replay of \
                its applied set"
               m))
      (Ok ()) survivors
  in
  let* () = Async.replicas_consistent chain in
  let* () =
    Result.map_error
      (fun e -> Printf.sprintf "durable-prefix: head backup: %s" e)
      (Engine.verify_backup (Async.engine_at chain head))
  in
  Ok applied

(* Linearizability of completed operations against a sequential model:
   writes are linearized in head-sequence order; a read must have returned
   a state of its key no older than the last write to that key that
   completed before the read began, and containing no write invoked after
   the read returned. *)
let check_linearizable writes reads applied =
  let applied_set = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace applied_set s ()) applied;
  let by_seq = Hashtbl.create 64 in
  List.iter (fun w -> if w.w_seq >= 0 then Hashtbl.replace by_seq w.w_seq w) writes;
  (* Per-key value timelines over the applied writes, in sequence order. *)
  let model = Hashtbl.create 16 in
  let timelines = Hashtbl.create 16 in
  let push key state =
    let tl = Option.value (Hashtbl.find_opt timelines key) ~default:[] in
    Hashtbl.replace timelines key (state :: tl)
  in
  List.iter
    (fun seq ->
      let w = Hashtbl.find by_seq seq in
      apply_model model w.w_op;
      let key =
        match w.w_op with
        | Op.Put (k, _) | Op.Delete k | Op.Append (k, _) -> k
        (* The single-chain workload never generates batches. *)
        | Op.Batch _ -> assert false
      in
      push key (seq, w.w_at, Hashtbl.find_opt model key))
    applied;
  let check_read acc r =
    Result.bind acc (fun () ->
        if not r.r_fired then Ok ()
        else begin
          (* The newest write to this key acknowledged before the read began
             must be visible. *)
          let lo =
            List.fold_left
              (fun lo w ->
                match w.w_op with
                | (Op.Put (k, _) | Op.Delete k | Op.Append (k, _))
                  when k = r.r_key && w.w_ack >= 0 && w.w_ack <= r.r_at ->
                    max lo w.w_seq
                | _ -> lo)
              0 writes
          in
          let timeline =
            List.rev (Option.value (Hashtbl.find_opt timelines r.r_key) ~default:[])
          in
          let candidates =
            (if lo = 0 then [ None ] else [])
            @ List.filter_map
                (fun (seq, at, state) ->
                  if seq >= lo && at <= r.r_done then Some state else None)
                timeline
          in
          if List.exists (fun c -> c = r.r_value) candidates then Ok ()
          else
            Error
              (Printf.sprintf
                 "linearizability: read r%d of key %d returned %s, not a legal state \
                  in its window"
                 r.r_index r.r_key
                 (match r.r_value with Some v -> Printf.sprintf "%S" v | None -> "absent"))
        end)
  in
  List.fold_left check_read (Ok ()) reads

(* --- the runner ------------------------------------------------------------ *)

let chaos_engine_config =
  {
    Engine.default_config with
    Engine.heap_bytes = 1 lsl 18;
    log_slots = 64;
    data_log_bytes = 1 lsl 16;
  }

let make_chain ?(obs = Obs.null) ~mode ~seed () =
  Async.create ~engine_config:chaos_engine_config ~obs ~hop_ns:5000 ~rpc_ns:500
    ~promote_ns:40_000 ~queue_slots:256 ~mode ~f:2 ~value_size:64 ~node_size:512 ~seed ()

(* Apply one fault at an event boundary. Faults drawn against a dry run can
   be inapplicable by the time they fire (the node was removed, the chain
   is too short to shrink further); they become deterministic no-ops so a
   schedule replays identically. *)
let apply_fault chain ~seed ~obs log fault =
  let note verdict = Buffer.add_string log (fault_to_string fault ^ verdict ^ "\n") in
  let alive node =
    node < Async.length chain && List.mem node (Async.members chain)
  in
  (* Fault codes in the trace: 0 = reboot, 1 = fail-stop, 2 = stale-view
     probe, 3 = hop jitter (see {!Obs.k_fault}). Only applied faults leave
     an instant — a skipped fault never touched the system. *)
  let trace code node at_event =
    if Obs.enabled obs then
      Obs.emit obs ~kind:Obs.k_fault ~track:0
        ~ts:(Sim.now (Async.sim chain))
        ~dur:(-1) ~a:code ~b:node ~c:at_event
  in
  match fault with
  | Reboot { node; downtime_ns; at_event } ->
      if alive node then begin
        trace 0 node at_event;
        Async.reboot_now ~downtime_ns chain node;
        note " -> applied"
      end
      else note " -> skipped (not a member)"
  | Fail_stop { node; at_event } ->
      if alive node && List.length (Async.members chain) > 2 then begin
        trace 1 node at_event;
        Async.fail_stop_now chain node;
        note " -> applied"
      end
      else note " -> skipped (not a member, or chain too short)"
  | Stale_probe { node; at_event } ->
      if alive node then begin
        trace 2 node at_event;
        Async.inject_stale_probe_now chain node;
        note " -> applied"
      end
      else note " -> skipped (not a member)"
  | Hop_jitter { at_event; amplitude_ns } ->
      trace 3 (-1) at_event;
      Async.set_hop_jitter chain
        (Some (Rng.create ((seed * 1_000_003) + at_event), amplitude_ns));
      note " -> applied"

let run ?(recovery_fault = Async.No_fault) ?(obs = Obs.null) ~mode ~seed ~ops
    ~schedule () =
  let chain = make_chain ~obs ~mode ~seed () in
  Async.set_recovery_fault chain recovery_fault;
  let steps = gen_workload ~seed ~ops in
  let writes = ref [] and reads = ref [] in
  List.iteri
    (fun i (at, cmd) ->
      match cmd with
      | Cwrite op ->
          let w = { w_index = i; w_op = op; w_at = at; w_seq = -1; w_ack = -1 } in
          writes := w :: !writes;
          Async.submit chain ~at
            ~on_submit:(fun seq -> w.w_seq <- seq)
            op
            ~on_complete:(fun t -> w.w_ack <- t)
      | Cread key ->
          let r =
            { r_index = i; r_key = key; r_at = at; r_fired = false; r_value = None; r_done = -1 }
          in
          reads := r :: !reads;
          Async.read chain ~at key ~on_result:(fun v t ->
              r.r_fired <- true;
              r.r_value <- v;
              r.r_done <- t))
    steps;
  let writes = List.rev !writes and reads = List.rev !reads in
  (* Arm the schedule on the simulation's event boundaries. *)
  let sim = Async.sim chain in
  let fault_log = Buffer.create 256 in
  let pending = ref schedule in
  Sim.set_boundary_hook sim
    (Some
       (fun () ->
         let n = Sim.events_executed sim in
         let rec fire () =
           match !pending with
           | f :: rest when fault_at_event f <= n ->
               pending := rest;
               apply_fault chain ~seed ~obs fault_log f;
               fire ()
           | _ -> ()
         in
         fire ()));
  let events = Async.run chain in
  Sim.set_boundary_hook sim None;
  List.iter (fun f -> Buffer.add_string fault_log (fault_to_string f ^ " -> unfired\n")) !pending;
  (* Oracles. *)
  let verdict =
    match check_durable_prefix chain writes with
    | Error _ as e -> e
    | Ok applied -> check_linearizable writes reads applied
  in
  (* Render the history. *)
  let b = Buffer.create 4096 in
  Printf.bprintf b "# chaos mode=%s seed=%d ops=%d faults=%d\n" (mode_name mode) seed ops
    (List.length schedule);
  if schedule <> [] then begin
    Buffer.add_string b "# schedule:\n";
    List.iter (fun f -> Printf.bprintf b "#   %s\n" (fault_to_string f)) schedule
  end;
  List.iter
    (fun (at, cmd) ->
      match cmd with
      | Cwrite _ ->
          let w = List.find (fun w -> w.w_at = at) writes in
          Printf.bprintf b "w%d at=%d %s seq=%s ack=%s\n" w.w_index w.w_at
            (op_to_string w.w_op)
            (if w.w_seq >= 0 then string_of_int w.w_seq else "-")
            (if w.w_ack >= 0 then string_of_int w.w_ack else "-")
      | Cread _ ->
          let r = List.find (fun r -> r.r_at = at) reads in
          if r.r_fired then
            Printf.bprintf b "r%d at=%d key=%d -> %s done=%d\n" r.r_index r.r_at r.r_key
              (match r.r_value with Some v -> Printf.sprintf "%S" v | None -> "absent")
              r.r_done
          else Printf.bprintf b "r%d at=%d key=%d -> (no response)\n" r.r_index r.r_at r.r_key)
    steps;
  if Buffer.length fault_log > 0 then begin
    Buffer.add_string b "# faults:\n";
    String.split_on_char '\n' (Buffer.contents fault_log)
    |> List.iter (fun l -> if l <> "" then Printf.bprintf b "#   %s\n" l)
  end;
  let survivors = Async.members chain in
  Printf.bprintf b "# events=%d view=%d members=[%s] stale-drops=%d\n" events
    (Async.view_id chain)
    (String.concat ";" (List.map string_of_int survivors))
    (Async.stale_drops chain);
  Printf.bprintf b "verdict: %s\n"
    (match verdict with Ok () -> "PASS" | Error e -> "FAIL: " ^ e);
  {
    seed;
    mode;
    ops;
    schedule;
    verdict;
    history = Buffer.contents b;
    events;
    submitted = List.length (List.filter (fun w -> w.w_seq >= 0) writes);
    acked = List.length (List.filter (fun w -> w.w_ack >= 0) writes);
    reads = List.length reads;
    stale_drops = Async.stale_drops chain;
    survivors;
  }

let explore ?(recovery_fault = Async.No_fault) ?obs ?(ops = 40) ?(faults = 6)
    ~mode ~seed () =
  (* Dry run: measure the fault-free event count so the schedule spans the
     whole workload. Only the faulted run is traced. *)
  let dry = run ~mode ~seed ~ops ~schedule:[] () in
  let nodes = match mode with Async.Traditional -> 3 | Async.Kamino_chain -> 4 in
  let schedule = gen_schedule ~seed ~faults ~nodes ~events:dry.events in
  run ~recovery_fault ?obs ~mode ~seed ~ops ~schedule ()

let shrink ?(recovery_fault = Async.No_fault) ~mode ~seed ~ops schedule =
  let fails s =
    (run ~recovery_fault ~mode ~seed ~ops ~schedule:s ()).verdict <> Ok ()
  in
  if not (fails schedule) then schedule
  else begin
    let rec minimize s =
      let n = List.length s in
      let rec try_drop i =
        if i >= n then s
        else
          let s' = List.filteri (fun j _ -> j <> i) s in
          if fails s' then minimize s' else try_drop (i + 1)
      in
      try_drop 0
    in
    minimize schedule
  end
