(** Chaos exploration over the replicated shard-cluster: the {!Chaos}
    harness shape (seeded workload + fault schedule + oracles + greedy
    shrinking) pointed at {!Kamino_cluster.Cluster}. Beyond the per-node
    event-boundary faults, two {e targeted} kinds arm on the cross-shard
    2PC protocol steps themselves: [Prepare_head_fail] fail-stops a
    participant's head the moment that shard prepares (head promotion
    lands {e between} prepare and commit-marker persist), and
    [Marker_head_fail] fail-stops it the moment the marker persists (the
    decided transaction must be re-driven through the promoted head).

    Oracles: per-chain durable prefix (survivor agreement, no phantoms,
    acked implies applied, sequential replay, verified head backup),
    cluster atomicity (every cross-shard multi_put is all-or-nothing, and
    a decided one is applied on all participants), per-chain
    linearizability of completed reads, and cluster quiescence. *)

module Op = Kamino_chain.Op
module Async = Kamino_chain.Async_chain
module Cluster = Kamino_cluster.Cluster

type fault =
  | Reboot of { shard : int; node : int; at_event : int; downtime_ns : int }
  | Fail_stop of { shard : int; node : int; at_event : int }
  | Stale_probe of { shard : int; node : int; at_event : int }
  | Hop_jitter of { shard : int; at_event : int; amplitude_ns : int }
  | Prepare_head_fail of { cross : int; shard : int }
      (** fail-stop shard [shard]'s head when multi_put number [cross]
          (0-based over the workload's multi_puts) reports it prepared *)
  | Marker_head_fail of { cross : int; shard : int }
      (** fail-stop shard [shard]'s head when that multi_put's commit
          marker persists *)

type outcome = {
  seed : int;
  ops : int;
  schedule : fault list;
  verdict : (unit, string) result;
  history : string;  (** deterministic human-readable run transcript *)
  events : int;
  submitted : int;  (** single writes that reached a head *)
  acked : int;  (** single writes acknowledged to the client *)
  multis : int;
  multis_acked : int;
  crossed : int;  (** cross-chain transactions fully acknowledged *)
  redrives : int;  (** view-change re-drives of committed operations *)
  reads : int;
  stale_drops : int;  (** summed across all chains *)
  fingerprint : string;
  p50_ns : int;  (** cluster commit latency percentiles, all commits *)
  p95_ns : int;
  p99_ns : int;
}

val fault_to_string : fault -> string

(** One fault per line, [kind k=v k=v...]; round-trips with
    {!schedule_of_string}. *)
val schedule_to_string : fault list -> string

(** Parses {!schedule_to_string} output; blank lines and [#] comments are
    ignored. *)
val schedule_of_string : string -> (fault list, string) result

type cmd =
  | Cwrite of Op.t
  | Cmulti of (int * string) list
  | Cread of int

(** Deterministic workload for [seed]: single writes, cross-shard
    multi_puts (2-4 distinct keys) and reads with strictly increasing
    submission times. *)
val gen_workload : seed:int -> ops:int -> (int * cmd) list

(** Multi_put commands in a workload (the [multis] input of
    {!gen_schedule}). *)
val count_multis : (int * cmd) list -> int

(** Deterministic fault schedule for [seed]: [faults] draws across all
    kinds, targeted 2PC faults included whenever the workload has
    multi_puts ([multis] > 0), event-indexed faults spread over
    [events]. *)
val gen_schedule :
  seed:int ->
  faults:int ->
  shards:int ->
  nodes_per_chain:int ->
  events:int ->
  multis:int ->
  fault list

(** Cluster geometry of every run: 3 shard-chains of f+2 = 3 replicas. *)
val cluster_shards : int

val cluster_f : int

val nodes_per_chain : int

(** [run ~seed ~ops ~schedule ()] builds a fresh cluster, replays seed
    [seed]'s workload under [schedule], drains the simulation and checks
    every oracle. Identical inputs produce byte-identical histories and
    fingerprints. *)
val run :
  ?recovery_fault:Async.recovery_fault ->
  seed:int ->
  ops:int ->
  schedule:fault list ->
  unit ->
  outcome

(** [explore ~seed ()] — dry fault-free run to size the event horizon,
    then a drawn schedule replayed under faults. *)
val explore :
  ?recovery_fault:Async.recovery_fault ->
  ?ops:int ->
  ?faults:int ->
  seed:int ->
  unit ->
  outcome

(** Greedy drop-one minimisation: returns a subset of [schedule] that
    still fails the oracles (or [schedule] itself if it passes). *)
val shrink :
  ?recovery_fault:Async.recovery_fault ->
  seed:int ->
  ops:int ->
  fault list ->
  fault list
