(** Deterministic fault-schedule explorer for the chain layer.

    The single-node engines are validated by an exhaustive crash matrix;
    this module gives the replicated chain (§5.2–§5.3) the same adversarial
    treatment. A {e schedule} is a list of faults addressed by the
    simulation's logical event counter ("after the Nth event"), injected
    through {!Kamino_sim.Engine.set_boundary_hook} while a seeded random
    workload streams through an {!Kamino_chain.Async_chain}:

    - quick reboots of any replica mid-propagation (including during the
      cleanup-ack cascade), with randomized downtime;
    - fail-stop removals with chain repair and — for a failed Kamino head —
      promotion of the next replica (its backup build is itself a separate,
      crashable event);
    - stale-view probes: messages stamped with an out-of-date view id that
      replicas must reject;
    - per-hop latency jitter (FIFO links preserved).

    Every run records the client-visible history and checks two oracles at
    quiescence:

    - {e linearizability}: completed operations agree with a sequential
      key-value model in head-sequence order, and every read returned a
      state of its key consistent with its invocation/response window;
    - {e durable prefix}: every acknowledged write survives on every
      surviving replica; every unacknowledged write is atomically
      present-or-absent and identical across survivors after repair; the
      head's backup agrees with its heap ({!Kamino_core.Engine.verify_backup}).

    Everything is deterministic from [(mode, seed, ops, schedule)]: the same
    seed reproduces a byte-identical history and verdict. *)

module Async = Kamino_chain.Async_chain

type fault =
  | Reboot of { node : int; at_event : int; downtime_ns : int }
  | Fail_stop of { node : int; at_event : int }
  | Stale_probe of { node : int; at_event : int }
  | Hop_jitter of { at_event : int; amplitude_ns : int }

type outcome = {
  seed : int;
  mode : Async.mode;
  ops : int;
  schedule : fault list;
  verdict : (unit, string) result;
  history : string;  (** rendered run record; byte-identical across replays *)
  events : int;  (** simulation events executed *)
  submitted : int;  (** writes that reached the head *)
  acked : int;  (** writes whose tail acknowledgment completed *)
  reads : int;
  stale_drops : int;  (** messages rejected by view validation *)
  survivors : int list;  (** members of the final view *)
}

val mode_name : Async.mode -> string

val mode_of_string : string -> Async.mode option

(** [run ~mode ~seed ~ops ~schedule ()] drives one workload under one
    fault schedule to quiescence and applies both oracles.
    [recovery_fault] deliberately breaks replica recovery — for validating
    that the oracles catch a broken protocol. [obs] (default
    {!Kamino_obs.Obs.null}) traces the run: chain hops, view changes and
    promotions, every node's engine events, plus one instant per {e
    applied} fault on track 0 ([a] = 0 reboot / 1 fail-stop / 2 stale
    probe / 3 jitter, [b] = node, [c] = the fault's event index). Tracing
    never perturbs the simulation: history and verdict are byte-identical
    with and without it. *)
val run :
  ?recovery_fault:Async.recovery_fault ->
  ?obs:Kamino_obs.Obs.t ->
  mode:Async.mode ->
  seed:int ->
  ops:int ->
  schedule:fault list ->
  unit ->
  outcome

(** [gen_schedule ~seed ~faults ~nodes ~events] draws a random schedule:
    [faults] faults at event indices in [\[1, events\]]. *)
val gen_schedule : seed:int -> faults:int -> nodes:int -> events:int -> fault list

(** [explore ~mode ~seed ~ops ~faults ()] — the front door: a fault-free
    dry run measures the workload's event count, a schedule is drawn over
    that range, and the faulted run is checked. Deterministic from
    [(mode, seed, ops, faults)]. *)
val explore :
  ?recovery_fault:Async.recovery_fault ->
  ?obs:Kamino_obs.Obs.t ->
  ?ops:int ->
  ?faults:int ->
  mode:Async.mode ->
  seed:int ->
  unit ->
  outcome

(** [shrink ~mode ~seed ~ops schedule] greedily minimizes a failing
    schedule: faults are dropped one at a time while the run still fails
    either oracle. Returns the original schedule if it does not fail. *)
val shrink :
  ?recovery_fault:Async.recovery_fault ->
  mode:Async.mode ->
  seed:int ->
  ops:int ->
  fault list ->
  fault list

(** {1 Schedule serialization} — one fault per line, for replaying a
    failure from a CI artifact. *)

val fault_to_string : fault -> string

val schedule_to_string : fault list -> string

val schedule_of_string : string -> (fault list, string) result
