(** YCSB core workloads (Table 3 of the paper).

    | Workload | Read | Update | Insert | Read-modify-write | Distribution |
    |----------|------|--------|--------|-------------------|--------------|
    | A        | 50%  | 50%    |        |                   | zipfian      |
    | B        | 95%  | 5%     |        |                   | zipfian      |
    | C        | 100% |        |        |                   | zipfian      |
    | D        | 95%  |        | 5%     |                   | latest       |
    | F        | 50%  |        |        | 50%               | zipfian      |

    [next t rng] draws one operation; inserts extend the key space, and the
    "latest" distribution skews reads towards recently inserted keys. *)

type workload =
  | A
  | B
  | C
  | D
  | E  (** 95% short range scans / 5% inserts — an extension beyond the
           paper's Table 3, exercising the B+Tree's leaf chain *)
  | F

val workload_of_string : string -> workload option

val name : workload -> string

val all : workload list

type op =
  | Read of int
  | Update of int
  | Insert of int  (** a fresh key *)
  | Scan of int * int  (** start key, length *)
  | Rmw of int

type t

(** [create workload ~record_count ~theta] — [record_count] keys are
    assumed preloaded as keys [0 .. record_count-1]. [~uniform:true]
    replaces the zipfian key choice with a uniform one ([theta] is then
    ignored) — the distribution ablation for skew-sensitive paths. *)
val create : ?uniform:bool -> workload -> record_count:int -> theta:float -> t

val next : t -> Kamino_sim.Rng.t -> op

(** Current key-space size (grows with inserts). *)
val key_space : t -> int

val op_name : op -> string
